package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/obs"
)

// writeTrace materializes nRuns synthetic trace runs into one JSONL
// file, driving a real obs.Recorder so the bytes are exactly what the
// producers write.
func writeTrace(t *testing.T, path string, nRuns, rounds int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for run := 0; run < nRuns; run++ {
		rec := &obs.Recorder{MemEvery: 2}
		cfg := colorcfg.Config{600, 300, 100}
		for r := 1; r <= rounds; r++ {
			cfg[0] += 10
			cfg[1] -= 10
			rec.ObserveRound(r, 1000, int64(1000*(r+1)), cfg)
		}
		h := obs.Header{Engine: "sampled", Rule: "3-majority", N: 1000, K: 3,
			Seed: uint64(100 + run), Job: "cell/a", Rep: run}
		if err := rec.WriteTrace(f, h); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReportSingleRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "one.jsonl")
	writeTrace(t, path, 1, 25)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, 5); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"job=cell/a", "engine=sampled", "rule=3-majority", "n=1000 k=3",
		"rounds: 25 observed, 25 retained, 0 dropped",
		"speed:  ns/agent min=",
		"memory: heap high-water",
		"drift:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The drift table samples 5 rows and always includes both endpoints.
	if rows := strings.Count(out, "\n        "); rows != 5 {
		t.Errorf("drift table has %d rows, want 5:\n%s", rows, out)
	}
	if strings.Contains(out, "aggregate") {
		t.Errorf("single run should not print an aggregate:\n%s", out)
	}
}

func TestReportMultiRunAggregate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cell.jsonl")
	writeTrace(t, path, 3, 12)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if got := strings.Count(out, "run:    "); got != 3 {
		t.Fatalf("got %d run profiles, want 3:\n%s", got, out)
	}
	if strings.Contains(out, "drift:") {
		t.Errorf("-drift 0 still printed a drift table:\n%s", out)
	}
	if !strings.Contains(out, "aggregate: 3 runs") {
		t.Errorf("missing aggregate:\n%s", out)
	}
	if !strings.Contains(out, "rounds:    min=12 p50=12 mean=12.0 max=12") {
		t.Errorf("aggregate rounds roll-up wrong:\n%s", out)
	}
}

func TestReportTolerantInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.jsonl")
	good := filepath.Join(dir, "good.jsonl")
	writeTrace(t, good, 1, 4)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the summary line off and splice in garbage: the report must
	// still render, flag the torn run, and count the skipped line.
	cut := bytes.LastIndexByte(bytes.TrimRight(data, "\n"), '\n')
	torn := append(append([]byte{}, data[:cut+1]...), []byte("not json\n")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, 3); err != nil {
		t.Fatalf("run on torn input: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "no summary line") {
		t.Errorf("torn run not flagged:\n%s", out)
	}
	if !strings.Contains(out, "1 corrupt/unknown lines skipped") {
		t.Errorf("skipped count not reported:\n%s", out)
	}

	// Empty input is reported, not an error.
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(&buf, []string{empty}, 3); err != nil {
		t.Fatalf("run on empty input: %v", err)
	}
	if !strings.Contains(buf.String(), "no trace runs") {
		t.Errorf("empty input not reported:\n%s", buf.String())
	}

	// A missing file is a real error.
	if err := run(&buf, []string{filepath.Join(dir, "nope.jsonl")}, 3); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSampleIdx(t *testing.T) {
	if got := sampleIdx(3, 10); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("k>=n: %v", got)
	}
	got := sampleIdx(100, 7)
	if len(got) != 7 || got[0] != 0 || got[len(got)-1] != 99 {
		t.Fatalf("endpoints not included: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("indices not strictly increasing: %v", got)
		}
	}
}
