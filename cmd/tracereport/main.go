// Command tracereport renders the JSONL telemetry traces written by
// plurality -trace, sweep -trace-dir, and pluralityd's
// GET /v1/jobs/{id}/trace into a human-readable run profile: where the
// wall time went, how fast the bias drifted, and what the memory
// high-water was.
//
//	tracereport run-trace.jsonl
//	tracereport traces/*.jsonl              # per-run profiles + aggregate
//	tracereport -drift 0 grid-cell.jsonl    # summaries only, no round table
//	curl -s localhost:8080/v1/jobs/$ID/trace | tracereport -
//
// The reader is the tolerant internal/obs one: torn tails and corrupt
// lines are counted and reported, never fatal.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"plurality/internal/obs"
)

func main() {
	drift := flag.Int("drift", 10, "rows in each run's sampled drift table (0 disables it)")
	flag.Parse()
	paths := flag.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracereport [-drift N] FILE... (or - for stdin)")
		os.Exit(2)
	}
	if err := run(os.Stdout, paths, *drift); err != nil {
		fmt.Fprintln(os.Stderr, "tracereport:", err)
		os.Exit(1)
	}
}

// run reads every input, prints one profile per trace run, and closes
// with a cross-run aggregate when the inputs carried more than one run.
func run(w io.Writer, paths []string, drift int) error {
	var all []obs.Trace
	skippedTotal := 0
	for _, path := range paths {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		traces, skipped, err := obs.ReadTraces(r)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		skippedTotal += skipped
		if len(traces) == 0 {
			fmt.Fprintf(w, "%s: no trace runs\n", path)
			continue
		}
		all = append(all, traces...)
	}
	for i, tr := range all {
		if i > 0 {
			fmt.Fprintln(w)
		}
		profile(w, tr, drift)
	}
	if len(all) > 1 {
		fmt.Fprintln(w)
		aggregate(w, all)
	}
	if skippedTotal > 0 {
		fmt.Fprintf(w, "\nwarning: %d corrupt/unknown lines skipped\n", skippedTotal)
	}
	return nil
}

// profile prints one run's report: identity, round/wall totals, the
// ns/agent distribution over the retained rounds, memory, and a sampled
// drift table showing how the configuration converged.
func profile(w io.Writer, tr obs.Trace, drift int) {
	h := tr.Header
	id := make([]string, 0, 7)
	if h.Job != "" {
		id = append(id, "job="+h.Job, fmt.Sprintf("rep=%d", h.Rep))
	}
	if h.Engine != "" {
		id = append(id, "engine="+h.Engine)
	}
	if h.Rule != "" {
		id = append(id, "rule="+h.Rule)
	}
	id = append(id, fmt.Sprintf("n=%d", h.N), fmt.Sprintf("k=%d", h.K))
	if h.Seed != 0 {
		id = append(id, fmt.Sprintf("seed=%d", h.Seed))
	}
	fmt.Fprintf(w, "run:    %s\n", strings.Join(id, " "))

	sum := tr.Summary
	if sum == nil {
		// Torn file: synthesize what the round lines alone support.
		s := obs.Summary{Rounds: len(tr.Rounds), Retained: len(tr.Rounds)}
		for _, r := range tr.Rounds {
			s.WallNs += r.WallNs
		}
		if h.N > 0 && s.Rounds > 0 {
			s.NsPerAgent = float64(s.WallNs) / float64(s.Rounds) / float64(h.N)
		}
		sum = &s
		fmt.Fprintf(w, "note:   no summary line (torn trace?); totals cover retained rounds only\n")
	}
	fmt.Fprintf(w, "rounds: %d observed, %d retained, %d dropped from the ring\n",
		sum.Rounds, sum.Retained, sum.Dropped)
	perRound := float64(0)
	if sum.Rounds > 0 {
		perRound = float64(sum.WallNs) / float64(sum.Rounds)
	}
	fmt.Fprintf(w, "wall:   %s total, %s/round, %.2f ns/agent\n",
		ns(float64(sum.WallNs)), ns(perRound), sum.NsPerAgent)

	if len(tr.Rounds) > 0 {
		v := make([]float64, len(tr.Rounds))
		mean := 0.0
		for i, r := range tr.Rounds {
			v[i] = r.NsPerAgent
			mean += r.NsPerAgent
		}
		mean /= float64(len(v))
		sort.Float64s(v)
		fmt.Fprintf(w, "speed:  ns/agent min=%.2f p50=%.2f mean=%.2f p95=%.2f max=%.2f\n",
			v[0], quantile(v, 0.50), mean, quantile(v, 0.95), v[len(v)-1])
		last := tr.Rounds[len(tr.Rounds)-1]
		fmt.Fprintf(w, "final:  c_max=%d/%d bias=%d support=%d (round %d)\n",
			last.CMax, h.N, last.Bias, last.Support, last.Round)
	}
	if sum.HeapMax > 0 {
		fmt.Fprintf(w, "memory: heap high-water %s\n", bytesHuman(sum.HeapMax))
	}
	if drift > 0 && len(tr.Rounds) > 0 {
		fmt.Fprintf(w, "drift:  %8s %12s %12s %8s %10s\n", "round", "c_max", "bias", "support", "ns/agent")
		for _, i := range sampleIdx(len(tr.Rounds), drift) {
			r := tr.Rounds[i]
			fmt.Fprintf(w, "        %8d %12d %12d %8d %10.2f\n",
				r.Round, r.CMax, r.Bias, r.Support, r.NsPerAgent)
		}
	}
}

// aggregate prints the cross-run roll-up for multi-run inputs (a sweep
// cell's replicates, a traced pluralityd job).
func aggregate(w io.Writer, all []obs.Trace) {
	var rounds []float64
	var wallNs, agents float64
	for _, tr := range all {
		if tr.Summary == nil {
			continue
		}
		rounds = append(rounds, float64(tr.Summary.Rounds))
		wallNs += float64(tr.Summary.WallNs)
		agents += float64(tr.Summary.Rounds) * float64(tr.Header.N)
	}
	fmt.Fprintf(w, "aggregate: %d runs\n", len(all))
	if len(rounds) == 0 {
		return
	}
	sort.Float64s(rounds)
	mean := 0.0
	for _, r := range rounds {
		mean += r
	}
	mean /= float64(len(rounds))
	fmt.Fprintf(w, "rounds:    min=%.0f p50=%.0f mean=%.1f max=%.0f\n",
		rounds[0], quantile(rounds, 0.50), mean, rounds[len(rounds)-1])
	if agents > 0 {
		fmt.Fprintf(w, "speed:     %.2f ns/agent over %s of simulation\n",
			wallNs/agents, ns(wallNs))
	}
}

// sampleIdx picks up to k evenly spaced indices from [0, n), always
// including the first and last.
func sampleIdx(n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, i*(n-1)/(k-1))
	}
	return out
}

// quantile reads the q-quantile from an ascending slice (nearest rank).
func quantile(sorted []float64, q float64) float64 {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ns renders a nanosecond quantity with an adaptive unit.
func ns(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fµs", v/1e3)
	}
	return fmt.Sprintf("%.0fns", v)
}

// bytesHuman renders a byte count with an adaptive binary unit.
func bytesHuman(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(v)/(1<<10))
	}
	return fmt.Sprintf("%d B", v)
}
