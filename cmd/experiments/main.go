// Command experiments regenerates the paper-reproduction tables E1–E12
// (see DESIGN.md §4 for the experiment index). By default it runs every
// experiment with the quick profile and prints aligned text tables;
// -profile full produces the EXPERIMENTS.md numbers, and -format md/csv
// switches the output format.
//
//	experiments                      # all experiments, quick profile
//	experiments -id E5               # one experiment
//	experiments -profile full -format md > results.md
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"plurality/internal/expt"
)

func main() {
	var (
		id      = flag.String("id", "all", "experiment id (E1..E19) or 'all'")
		profile = flag.String("profile", "quick", "workload profile: quick | full")
		format  = flag.String("format", "text", "output format: text | md | csv")
		seed    = flag.Uint64("seed", 2014, "base random seed (2014 = SPAA year of the paper)")
		workers = flag.Int("workers", 0, "replicate parallelism (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list the registered experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	var p expt.Profile
	switch *profile {
	case "quick":
		p = expt.Quick
	case "full":
		p = expt.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown profile %q\n", *profile)
		os.Exit(1)
	}
	p.Workers = *workers

	var toRun []expt.Experiment
	if *id == "all" {
		toRun = expt.All()
	} else {
		e, ok := expt.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", *id)
			os.Exit(1)
		}
		toRun = []expt.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		tables := e.Run(p, *seed)
		elapsed := time.Since(start).Round(time.Millisecond)
		for _, t := range tables {
			switch *format {
			case "md":
				fmt.Println(t.Markdown())
			case "csv":
				fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			default:
				fmt.Println(t.Text())
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n", e.ID, elapsed)
	}
}
