// Command experiments regenerates the paper-reproduction tables E1–E19
// (see DESIGN.md §4 for the experiment index). By default it runs every
// experiment with the quick profile and prints aligned text tables;
// -profile full produces the heavyweight numbers, -format md/csv switches
// the output format, and -doc emits the whole generated EXPERIMENTS.md
// document (index, every table, per-experiment seeds and wall-clock).
//
// Replicates run on the internal/mc pool with pre-derived seeds, so any
// table — and the -doc output up to its wall-clock lines — is
// byte-reproducible from (-profile, -seed) regardless of -workers. That
// is what lets CI regenerate EXPERIMENTS.md and fail on drift.
//
//	experiments                      # all experiments, quick profile
//	experiments -id E5               # one experiment
//	experiments -profile full -format md > results.md
//	experiments -profile quick -doc > EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"plurality/internal/expt"
)

func main() {
	var (
		id      = flag.String("id", "all", "experiment id (E1..E19) or 'all'")
		profile = flag.String("profile", "quick", "workload profile: quick | full")
		format  = flag.String("format", "text", "output format: text | md | csv")
		seed    = flag.Uint64("seed", 2014, "base random seed (2014 = SPAA year of the paper)")
		workers = flag.Int("workers", 0, "replicate parallelism (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list the registered experiments and exit")
		doc     = flag.Bool("doc", false, "emit the generated EXPERIMENTS.md document to stdout")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	var p expt.Profile
	switch *profile {
	case "quick":
		p = expt.Quick
	case "full":
		p = expt.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown profile %q\n", *profile)
		os.Exit(1)
	}
	p.Workers = *workers

	if *doc {
		// The doc is the whole document — a partial or reformatted one
		// would silently diverge from the committed EXPERIMENTS.md.
		if *id != "all" || *format != "text" {
			fmt.Fprintln(os.Stderr, "experiments: -doc emits the full markdown document; it cannot be combined with -id or -format")
			os.Exit(1)
		}
		writeDoc(os.Stdout, p, *seed)
		return
	}

	var toRun []expt.Experiment
	if *id == "all" {
		toRun = expt.All()
	} else {
		e, ok := expt.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", *id)
			os.Exit(1)
		}
		toRun = []expt.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		tables := e.Run(p, *seed)
		elapsed := time.Since(start).Round(time.Millisecond)
		for _, t := range tables {
			switch *format {
			case "md":
				fmt.Println(t.Markdown())
			case "csv":
				fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			default:
				fmt.Println(t.Text())
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n", e.ID, elapsed)
	}
}

// writeDoc renders the full EXPERIMENTS.md document: provenance header,
// experiment index, and every table in markdown with a wall-clock line.
// Everything except the "_wall-clock:" lines is deterministic for a fixed
// (profile, seed), which is what the CI staleness check relies on (it
// normalizes those lines before diffing).
func writeDoc(w io.Writer, p expt.Profile, seed uint64) {
	fmt.Fprintf(w, "# EXPERIMENTS — generated paper-reproduction tables\n\n")
	fmt.Fprintf(w, "**Generated file — do not edit by hand.** Regenerate with:\n\n")
	fmt.Fprintf(w, "```\ngo run ./cmd/experiments -profile %s -seed %d -doc > EXPERIMENTS.md\n```\n\n", p.Name, seed)
	fmt.Fprintf(w, "Profile `%s` (n=%d, %d replicates per sweep point), base seed %d.\n", p.Name, p.N, p.Reps, seed)
	fmt.Fprintf(w, "Every table is reproducible from the seed and independent of `-workers`;\n")
	fmt.Fprintf(w, "CI regenerates this file (normalizing the wall-clock lines) and fails on\n")
	fmt.Fprintf(w, "drift. `-profile full` yields tighter numbers with the same layout; see\n")
	fmt.Fprintf(w, "DESIGN.md §4 for what each experiment reproduces.\n\n")

	all := expt.All()
	fmt.Fprintf(w, "## Index\n\n| ID | Title |\n|---|---|\n")
	for _, e := range all {
		fmt.Fprintf(w, "| %s | %s |\n", e.ID, e.Title)
	}
	fmt.Fprintln(w)

	for _, e := range all {
		start := time.Now()
		tables := e.Run(p, seed)
		elapsed := time.Since(start).Round(time.Millisecond)
		for _, t := range tables {
			fmt.Fprintln(w, t.Markdown())
		}
		fmt.Fprintf(w, "_wall-clock: %s (%s, profile %s, seed %d)_\n\n", elapsed, e.ID, p.Name, seed)
	}
}
