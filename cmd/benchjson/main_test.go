package main

import (
	"math"
	"os/exec"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: plurality
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkEngineMultinomialRound/k=2-8         	       1	        67.40 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineMultinomialRound/k=2-8         	       1	        72.60 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineSampledRound/w=1-8             	       1	   1390000 ns/op	      16 B/op	       1 allocs/op
BenchmarkFullRunConvergence-8                 	       1	     42600 ns/op
BenchmarkEngineGraphRoundSparse/n=10000000-8  	       1	 494800000 ns/op	        49.00 ns/agent	       0 B/op	       0 allocs/op
BenchmarkEngineGraphRoundSparse/n=10000000-8  	       1	 504800000 ns/op	        51.00 ns/agent	       0 B/op	       0 allocs/op
PASS
ok  	plurality	1.234s
`

func TestParseAggregates(t *testing.T) {
	report, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || !strings.Contains(report.CPU, "Xeon") {
		t.Errorf("header not captured: %+v", report)
	}
	multi, ok := report.Benchmarks["EngineMultinomialRound/k=2"]
	if !ok {
		t.Fatalf("missing aggregated benchmark; have %v", report.Benchmarks)
	}
	if multi.Samples != 2 || math.Abs(multi.NsPerOp-70.0) > 1e-9 {
		t.Errorf("bad aggregation: %+v", multi)
	}
	if multi.AllocsPerOp != 0 {
		t.Errorf("allocs = %v, want 0", multi.AllocsPerOp)
	}
	sampled := report.Benchmarks["EngineSampledRound/w=1"]
	if sampled.Samples != 1 || sampled.BytesPerOp != 16 || sampled.AllocsPerOp != 1 {
		t.Errorf("bad single sample: %+v", sampled)
	}
	// ns/op-only lines (no -benchmem) must still parse.
	if conv := report.Benchmarks["FullRunConvergence"]; conv.NsPerOp != 42600 {
		t.Errorf("bad ns-only line: %+v", conv)
	}
	// The custom ns/agent metric aggregates alongside ns/op.
	sparse := report.Benchmarks["EngineGraphRoundSparse/n=10000000"]
	if sparse.Samples != 2 || math.Abs(sparse.NsPerAgent-50.0) > 1e-9 {
		t.Errorf("bad ns/agent aggregation: %+v", sparse)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestParseStripsProcsSuffixOnly(t *testing.T) {
	in := "BenchmarkX/n=10-4 	 5	 100 ns/op\n"
	report, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := report.Benchmarks["X/n=10"]; !ok {
		t.Errorf("suffix handling wrong: %v", report.Benchmarks)
	}
}

// TestEndToEndAgainstRealBenchOutput runs one real micro-benchmark and
// pipes it through the parser, so the format assumption can't silently
// rot against future go versions.
func TestEndToEndAgainstRealBenchOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go test")
	}
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", "BenchmarkAliasSample$",
		"-benchtime", "1x", "-benchmem", "plurality/internal/dist")
	raw, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("bench run failed: %v\n%s", err, raw)
	}
	report, err := Parse(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("parse of real output failed: %v\n%s", err, raw)
	}
	if _, ok := report.Benchmarks["AliasSample"]; !ok {
		t.Errorf("real benchmark not captured: %v", report.Benchmarks)
	}
}
