package main

import (
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: plurality
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkEngineMultinomialRound/k=2-8         	       1	        67.40 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineMultinomialRound/k=2-8         	       1	        72.60 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineSampledRound/w=1-8             	       1	   1390000 ns/op	      16 B/op	       1 allocs/op
BenchmarkFullRunConvergence-8                 	       1	     42600 ns/op
BenchmarkEngineGraphRoundSparse/n=10000000-8  	       1	 494800000 ns/op	        49.00 ns/agent	       0 B/op	       0 allocs/op
BenchmarkEngineGraphRoundSparse/n=10000000-8  	       1	 504800000 ns/op	        51.00 ns/agent	       0 B/op	       0 allocs/op
PASS
ok  	plurality	1.234s
`

func TestParseAggregates(t *testing.T) {
	report, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || !strings.Contains(report.CPU, "Xeon") {
		t.Errorf("header not captured: %+v", report)
	}
	multi, ok := report.Benchmarks["EngineMultinomialRound/k=2"]
	if !ok {
		t.Fatalf("missing aggregated benchmark; have %v", report.Benchmarks)
	}
	if multi.Samples != 2 || math.Abs(multi.NsPerOp-70.0) > 1e-9 {
		t.Errorf("bad aggregation: %+v", multi)
	}
	if multi.AllocsPerOp != 0 {
		t.Errorf("allocs = %v, want 0", multi.AllocsPerOp)
	}
	sampled := report.Benchmarks["EngineSampledRound/w=1"]
	if sampled.Samples != 1 || sampled.BytesPerOp != 16 || sampled.AllocsPerOp != 1 {
		t.Errorf("bad single sample: %+v", sampled)
	}
	// ns/op-only lines (no -benchmem) must still parse.
	if conv := report.Benchmarks["FullRunConvergence"]; conv.NsPerOp != 42600 {
		t.Errorf("bad ns-only line: %+v", conv)
	}
	// The custom ns/agent metric aggregates alongside ns/op.
	sparse := report.Benchmarks["EngineGraphRoundSparse/n=10000000"]
	if sparse.Samples != 2 || math.Abs(sparse.NsPerAgent-50.0) > 1e-9 {
		t.Errorf("bad ns/agent aggregation: %+v", sparse)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestParseStripsProcsSuffixOnly(t *testing.T) {
	in := "BenchmarkX/n=10-4 	 5	 100 ns/op\n"
	report, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := report.Benchmarks["X/n=10"]; !ok {
		t.Errorf("suffix handling wrong: %v", report.Benchmarks)
	}
}

// TestEndToEndAgainstRealBenchOutput runs one real micro-benchmark and
// pipes it through the parser, so the format assumption can't silently
// rot against future go versions.
func TestEndToEndAgainstRealBenchOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go test")
	}
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", "BenchmarkAliasSample$",
		"-benchtime", "1x", "-benchmem", "plurality/internal/dist")
	raw, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("bench run failed: %v\n%s", err, raw)
	}
	report, err := Parse(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("parse of real output failed: %v\n%s", err, raw)
	}
	if _, ok := report.Benchmarks["AliasSample"]; !ok {
		t.Errorf("real benchmark not captured: %v", report.Benchmarks)
	}
}

// mergeReport writes one Report file for Merge tests.
func mergeReport(t *testing.T, dir, name, commit, date string, ns float64) string {
	t.Helper()
	r := Report{Commit: commit, Date: date, Benchmarks: map[string]Result{
		"EngineGraphRoundSparse/n=10000000": {NsPerOp: ns, Samples: 5},
	}}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// readHistory parses a merged history file back into Reports.
func readHistory(t *testing.T, path string) []Report {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []Report
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var r Report
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("history line %q: %v", line, err)
		}
		out = append(out, r)
	}
	return out
}

// TestMergeAccumulates pins the -merge contract: reports accumulate
// across calls, entries stay date-sorted, same-commit reports
// deduplicate with the latest date winning, and re-merging an
// already-present report leaves the file byte-identical (idempotence —
// CI runs the merge unconditionally).
func TestMergeAccumulates(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "BENCH_HISTORY.jsonl")

	b := mergeReport(t, dir, "b.json", "bbb", "2026-02-01T00:00:00Z", 2)
	a := mergeReport(t, dir, "a.json", "aaa", "2026-01-01T00:00:00Z", 1)
	if err := Merge(hist, []string{b}); err != nil {
		t.Fatalf("first merge: %v", err)
	}
	if err := Merge(hist, []string{a}); err != nil {
		t.Fatalf("second merge: %v", err)
	}
	got := readHistory(t, hist)
	if len(got) != 2 || got[0].Commit != "aaa" || got[1].Commit != "bbb" {
		t.Fatalf("history not date-sorted: %+v", got)
	}

	// Re-running a commit replaces its entry (latest date wins) rather
	// than appending a duplicate.
	b2 := mergeReport(t, dir, "b2.json", "bbb", "2026-03-01T00:00:00Z", 3)
	if err := Merge(hist, []string{b2}); err != nil {
		t.Fatalf("re-merge: %v", err)
	}
	got = readHistory(t, hist)
	if len(got) != 2 || got[1].Date != "2026-03-01T00:00:00Z" {
		t.Fatalf("same-commit dedupe failed: %+v", got)
	}
	if got[1].Benchmarks["EngineGraphRoundSparse/n=10000000"].NsPerOp != 3 {
		t.Fatalf("latest report did not win: %+v", got[1])
	}

	// Idempotence: merging the winning report again changes nothing.
	before, _ := os.ReadFile(hist)
	if err := Merge(hist, []string{b2}); err != nil {
		t.Fatalf("idempotent merge: %v", err)
	}
	after, _ := os.ReadFile(hist)
	if string(before) != string(after) {
		t.Fatal("idempotent re-merge rewrote the history differently")
	}
}

func TestMergeRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "h.jsonl")
	if err := Merge("", []string{"x"}); err == nil {
		t.Error("missing -history accepted")
	}
	if err := Merge(hist, nil); err == nil {
		t.Error("no report files accepted")
	}
	if err := Merge(hist, []string{filepath.Join(dir, "nope.json")}); err == nil {
		t.Error("missing report file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if err := Merge(hist, []string{bad}); err == nil {
		t.Error("corrupt report accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"commit":"x","benchmarks":{}}`), 0o644)
	if err := Merge(hist, []string{empty}); err == nil {
		t.Error("benchmark-free report accepted")
	}
	// A corrupt history line fails loudly rather than silently dropping
	// committed perf data.
	good := mergeReport(t, dir, "g.json", "ccc", "2026-01-01T00:00:00Z", 1)
	os.WriteFile(hist, []byte("garbage\n"), 0o644)
	if err := Merge(hist, []string{good}); err == nil {
		t.Error("corrupt history accepted")
	}
}
