// Command benchjson converts `go test -bench` output into a
// machine-readable JSON summary. CI pipes the bench-regression run
// through it and uploads BENCH_RESULTS.json as an artifact, so the perf
// trajectory of the repository is a sequence of structured files instead
// of raw benchmark logs:
//
//	go test -run='^$' -bench=BenchmarkEngine -benchtime=1x -count=5 . | go run ./cmd/benchjson > BENCH_RESULTS.json
//
// Repeated samples of one benchmark (from -count=N) are aggregated to
// their mean; the trailing GOMAXPROCS suffix (`-8`) is stripped so names
// are stable across runners.
//
// -merge folds per-commit report files into a committed history — one
// compact Report per line, deduplicated by commit (latest date wins)
// and sorted by date — so the perf trajectory lives in the repository
// instead of scattered CI artifacts:
//
//	go run ./cmd/benchjson -merge -history BENCH_HISTORY.jsonl BENCH_RESULTS.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Stamp flags: without a commit and date in the document, the uploaded
// artifacts are indistinguishable snapshots and the perf trajectory cannot
// be reconstructed from them. CI passes both explicitly; -commit falls
// back to $GITHUB_SHA so a bare `go run ./cmd/benchjson` inside an Actions
// step is stamped even without flags.
var (
	commitFlag  = flag.String("commit", os.Getenv("GITHUB_SHA"), "git commit the benchmarks were run at (default $GITHUB_SHA)")
	dateFlag    = flag.String("date", "", "UTC timestamp of the run, RFC 3339 (default: now)")
	mergeFlag   = flag.Bool("merge", false, "fold the report files given as arguments into -history instead of parsing bench output")
	historyFlag = flag.String("history", "", "history JSONL file for -merge (created if missing, rewritten deduplicated and date-sorted)")
)

// Result is the aggregated measurement of one benchmark.
type Result struct {
	NsPerOp float64 `json:"ns_per_op"`
	// NsPerAgent is the custom ReportMetric of the sparse graph-round
	// benchmarks (per-op time divided by n) — the unit the hot-path perf
	// budget is written in.
	NsPerAgent  float64 `json:"ns_per_agent,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Report is the top-level JSON document.
type Report struct {
	Commit     string            `json:"commit,omitempty"`
	Date       string            `json:"date,omitempty"`
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	flag.Parse()
	if *mergeFlag {
		if err := Merge(*historyFlag, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	report, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	report.Commit = *commitFlag
	report.Date = *dateFlag
	if report.Date == "" {
		report.Date = time.Now().UTC().Format(time.RFC3339)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Merge folds the Report files in paths into the history JSONL file:
// existing history lines are read back, reports with the same commit
// are deduplicated (the latest date wins), and the file is rewritten as
// one compact Report per line in ascending date order. The rewrite is
// idempotent — merging an already-present report is a no-op — which is
// what lets CI run it unconditionally on every push.
func Merge(history string, paths []string) error {
	if history == "" {
		return fmt.Errorf("-merge needs -history FILE")
	}
	if len(paths) == 0 {
		return fmt.Errorf("-merge needs at least one report file argument")
	}
	var entries []Report
	if data, err := os.ReadFile(history); err == nil {
		sc := bufio.NewScanner(strings.NewReader(string(data)))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var r Report
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				return fmt.Errorf("%s:%d: %v", history, lineNo, err)
			}
			entries = append(entries, r)
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("%s: %v", history, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var r Report
		if err := json.Unmarshal(data, &r); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		if len(r.Benchmarks) == 0 {
			return fmt.Errorf("%s: no benchmarks in report", path)
		}
		entries = append(entries, r)
	}
	// Dedupe by commit, latest date winning; unstamped reports key on
	// their date so hand-run snapshots still accumulate.
	latest := map[string]Report{}
	for _, r := range entries {
		key := r.Commit
		if key == "" {
			key = "@" + r.Date
		}
		if prev, ok := latest[key]; !ok || r.Date > prev.Date {
			latest[key] = r
		}
	}
	merged := make([]Report, 0, len(latest))
	for _, r := range latest {
		merged = append(merged, r)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Date != merged[j].Date {
			return merged[i].Date < merged[j].Date
		}
		return merged[i].Commit < merged[j].Commit
	})
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	for _, r := range merged {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return os.WriteFile(history, []byte(buf.String()), 0o644)
}

// benchLine matches one benchmark result line: name, iteration count,
// then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// procsSuffix is the trailing -GOMAXPROCS tag appended by the testing
// package.
var procsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and aggregates per-benchmark
// samples. Header lines (goos/goarch/cpu) are captured; non-benchmark
// lines are ignored. An input with no benchmark lines is an error.
func Parse(r io.Reader) (*Report, error) {
	type acc struct {
		ns, nsAgent, bytes, allocs float64
		samples                    int
	}
	accs := map[string]*acc{}
	report := &Report{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := procsSuffix.ReplaceAllString(m[1], "")
		name = strings.TrimPrefix(name, "Benchmark")
		a := accs[name]
		if a == nil {
			a = &acc{}
			accs[name] = a
		}
		fields := strings.Fields(m[2])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("line %d: odd value/unit fields in %q", lineNo, line)
		}
		sampled := false
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, fields[i], err)
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
				sampled = true
			case "ns/agent":
				a.nsAgent += v
			case "B/op":
				a.bytes += v
			case "allocs/op":
				a.allocs += v
			}
		}
		if sampled {
			a.samples++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(accs) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	names := make([]string, 0, len(accs))
	for name := range accs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := accs[name]
		if a.samples == 0 {
			continue
		}
		s := float64(a.samples)
		report.Benchmarks[name] = Result{
			NsPerOp:     a.ns / s,
			NsPerAgent:  a.nsAgent / s,
			BytesPerOp:  a.bytes / s,
			AllocsPerOp: a.allocs / s,
			Samples:     a.samples,
		}
	}
	return report, nil
}
