package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"plurality/internal/mc"
	"plurality/internal/obs"
)

// testCfg is a grid small enough for unit tests that still exercises both
// engine paths: 3majority (closed-form multinomial) and 2choices
// (agent-level sampled).
func testCfg() config {
	return config{
		rules:     "3majority,2choices",
		graphs:    "complete",
		ns:        "1000",
		ks:        "2,4",
		cs:        "1",
		reps:      5,
		seed:      7,
		maxRounds: 5000,
		workers:   2,
		format:    "csv",
	}
}

func runSweep(t *testing.T, cfg config, done map[string]map[int]mc.Record) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sweep(context.Background(), cfg, &buf, done); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return buf.String()
}

func TestSweepCSVShape(t *testing.T) {
	cfg := testCfg()
	out := runSweep(t, cfg, nil)
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output is not parseable CSV: %v", err)
	}
	header := strings.Split(csvHeader, ",")
	if len(rows) == 0 || strings.Join(rows[0], ",") != csvHeader {
		t.Fatalf("header mismatch: %v", rows[0])
	}
	wantRows := 2 * 1 * 2 * 1 // rules × ns × ks × cs
	if len(rows)-1 != wantRows {
		t.Fatalf("got %d data rows, want %d", len(rows)-1, wantRows)
	}
	col := func(row []string, name string) float64 {
		for i, h := range header {
			if h == name {
				v, err := strconv.ParseFloat(row[i], 64)
				if err != nil {
					t.Fatalf("column %s = %q is not numeric: %v", name, row[i], err)
				}
				return v
			}
		}
		t.Fatalf("no column %s", name)
		return 0
	}
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			t.Fatalf("row has %d cells, header has %d: %v", len(row), len(header), row)
		}
		lo, hi := col(row, "wilson_lo"), col(row, "wilson_hi")
		rate := col(row, "success_rate")
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("Wilson interval [%g, %g] outside [0,1] or inverted: %v", lo, hi, row)
		}
		if rate < 0 || rate > 1 {
			t.Errorf("success_rate %g outside [0,1]", rate)
		}
		if got := int(col(row, "reps")); got != testCfg().reps {
			t.Errorf("reps column = %d, want %d", got, testCfg().reps)
		}
	}
}

// TestSweepGraphGrid runs a grid across topology families resolved
// through the topo registry: the graph dimension multiplies the cells,
// non-clique cells run the CSR graph engine, and the output stays
// deterministic across worker counts (quenched graphs are derived from
// the cell name, not from scheduling).
func TestSweepGraphGrid(t *testing.T) {
	cfg := testCfg()
	cfg.rules = "3majority"
	cfg.ks = "2"
	cfg.graphs = "complete,regular:4,smallworld:4:0.1,barbell:4"
	cfg.reps = 3
	out := runSweep(t, cfg, nil)
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("unparseable CSV: %v", err)
	}
	if len(rows)-1 != 4 {
		t.Fatalf("got %d data rows, want one per graph", len(rows)-1)
	}
	for i, wantGraph := range []string{"complete", "regular:4", "smallworld:4:0.1", "barbell:4"} {
		if got := rows[i+1][1]; got != wantGraph {
			t.Errorf("row %d graph column = %q, want %q", i, got, wantGraph)
		}
	}
	cfg.workers = 1
	if runSweep(t, cfg, nil) != out {
		t.Fatal("graph grid output depends on -workers")
	}
}

// TestSweepBatchSampler pins the -sampler batch semantics: graph-only
// grids run (deterministically, with the sampler stamped into the cell
// name), clique cells are refused, and unknown samplers fail fast.
func TestSweepBatchSampler(t *testing.T) {
	cfg := testCfg()
	cfg.rules = "2choices"
	cfg.graphs = "regular:4"
	cfg.ks = "2"
	cfg.reps = 3
	cfg.sampler = "batch"
	cfg.format = "jsonl"
	out := runSweep(t, cfg, nil)
	if !strings.Contains(out, "/sampler=batch") {
		t.Errorf("batch cell records lack the sampler suffix:\n%s", out)
	}
	if runSweep(t, cfg, nil) != out {
		t.Fatal("batch grid is not deterministic across reruns")
	}
	cfg.graphs = "complete,regular:4"
	if err := sweep(context.Background(), cfg, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "graph-engine cells") {
		t.Fatalf("batch + complete error = %v, want graph-engine cells", err)
	}
	cfg.graphs = "regular:4"
	cfg.sampler = "turbo"
	if err := sweep(context.Background(), cfg, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown sampler") {
		t.Fatalf("unknown sampler error = %v, want unknown sampler", err)
	}
}

func TestSweepRejectsBadGraphSpec(t *testing.T) {
	cfg := testCfg()
	cfg.graphs = "moebius"
	if err := sweep(context.Background(), cfg, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown graph") {
		t.Fatalf("bad -graphs error = %v, want unknown graph", err)
	}
	cfg.graphs = "regular:3"
	cfg.ns = "999" // odd n with odd d → n·d odd
	if err := sweep(context.Background(), cfg, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "even") {
		t.Fatalf("parity error = %v, want n·d even", err)
	}
}

func TestSweepDeterministicAcrossRunsAndWorkers(t *testing.T) {
	cfg := testCfg()
	first := runSweep(t, cfg, nil)
	if runSweep(t, cfg, nil) != first {
		t.Fatal("identical (seed, workers) reruns are not byte-identical")
	}
	cfg.workers = 1
	if runSweep(t, cfg, nil) != first {
		t.Fatal("output depends on -workers")
	}
	cfg.workers = 2
	cfg.format = "jsonl"
	j1 := runSweep(t, cfg, nil)
	cfg.workers = 4
	if runSweep(t, cfg, nil) != j1 {
		t.Fatal("JSONL output depends on -workers")
	}
}

func TestSweepJSONLRecords(t *testing.T) {
	cfg := testCfg()
	cfg.format = "jsonl"
	out := runSweep(t, cfg, nil)
	recs, err := mc.ReadRecords(strings.NewReader(out))
	if err != nil {
		t.Fatalf("JSONL output unparseable: %v", err)
	}
	wantCells := 2 * 2
	if len(recs) != wantCells*cfg.reps {
		t.Fatalf("got %d records, want %d", len(recs), wantCells*cfg.reps)
	}
	byJob := mc.GroupByJob(recs)
	if len(byJob) != wantCells {
		t.Fatalf("got %d jobs, want %d", len(byJob), wantCells)
	}
	for job, byRep := range byJob {
		if len(byRep) != cfg.reps {
			t.Errorf("job %s has %d replicates, want %d", job, len(byRep), cfg.reps)
		}
		for rep, rec := range byRep {
			if rec.Rounds <= 0 || rec.Seed == 0 {
				t.Errorf("job %s rep %d has implausible record %+v", job, rep, rec)
			}
		}
	}
	// One line per record, each valid JSON.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
	}
}

// TestSweepResume interrupts a JSONL grid by truncating its output file
// to a record prefix, resumes, and requires the completed file to be
// byte-identical to an uninterrupted run.
func TestSweepResume(t *testing.T) {
	cfg := testCfg()
	cfg.format = "jsonl"
	dir := t.TempDir()

	full := filepath.Join(dir, "full.jsonl")
	cfg.out = full
	if err := run(context.Background(), cfg); err != nil {
		t.Fatalf("full run: %v", err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	lines := bytes.SplitAfter(want, []byte("\n"))
	cut := len(lines) / 3
	partial := filepath.Join(dir, "partial.jsonl")
	if err := os.WriteFile(partial, bytes.Join(lines[:cut], nil), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.out = partial
	cfg.resume = true
	if err := run(context.Background(), cfg); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	got, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed grid differs from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
}

func TestSweepResumeRejectsForeignGrid(t *testing.T) {
	cfg := testCfg()
	cfg.format = "jsonl"
	dir := t.TempDir()
	cfg.out = filepath.Join(dir, "grid.jsonl")
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	cfg.resume = true
	cfg.ks = "2" // narrower grid: the k=4 records on disk are now foreign
	if err := run(context.Background(), cfg); err == nil {
		t.Fatal("resume with a changed grid must fail, not mix stale records into the file")
	}
}

func TestSweepResumeRejectsReorderedGrid(t *testing.T) {
	cfg := testCfg()
	cfg.format = "jsonl"
	dir := t.TempDir()
	cfg.out = filepath.Join(dir, "grid.jsonl")
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// Truncate to a prefix ending inside the first rule's cells, then
	// resume with the rules reversed: same cell set, different order, so
	// appending would interleave job blocks.
	raw, err := os.ReadFile(cfg.out)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if err := os.WriteFile(cfg.out, bytes.Join(lines[:3], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.resume = true
	cfg.rules = "2choices,3majority"
	if err := run(context.Background(), cfg); err == nil {
		t.Fatal("resume with reordered cells must fail, not append a misordered file")
	}
}

func TestSweepResumeRejectsWrongSeed(t *testing.T) {
	cfg := testCfg()
	cfg.format = "jsonl"
	dir := t.TempDir()
	cfg.out = filepath.Join(dir, "grid.jsonl")
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	cfg.resume = true
	cfg.seed++
	if err := run(context.Background(), cfg); err == nil {
		t.Fatal("resume with a different -seed must fail, not silently mix streams")
	}
}

func TestRunFlagValidation(t *testing.T) {
	cfg := testCfg()
	cfg.format = "xml"
	if err := run(context.Background(), cfg); err == nil {
		t.Error("unknown -format accepted")
	}
	cfg = testCfg()
	cfg.resume = true // csv + no -out
	if err := run(context.Background(), cfg); err == nil {
		t.Error("-resume without -format jsonl -out accepted")
	}
}

func TestParseRule(t *testing.T) {
	for _, ok := range []string{"3majority", "median", "polling", "2choices", "hplurality:3"} {
		if _, err := parseRule(ok); err != nil {
			t.Errorf("parseRule(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"4majority", "hplurality:0", "hplurality:x", ""} {
		if _, err := parseRule(bad); err == nil {
			t.Errorf("parseRule(%q) accepted", bad)
		}
	}
}

func TestCellSeedStable(t *testing.T) {
	a := cellSeed(1, "rule/n=10/k=2/c=1")
	if a != cellSeed(1, "rule/n=10/k=2/c=1") {
		t.Error("cellSeed not deterministic")
	}
	if a == cellSeed(1, "rule/n=10/k=4/c=1") || a == cellSeed(2, "rule/n=10/k=2/c=1") {
		t.Error("cellSeed collides across cells/seeds")
	}
}

// TestSweepTraceDir pins the -trace-dir surface: one JSONL trace file
// per grid cell, one parseable trace run per replicate in replicate
// order, headers tied to the cell, and — because the observer consumes
// no rng — output records identical to an untraced run of the same grid.
func TestSweepTraceDir(t *testing.T) {
	cfg := testCfg()
	cfg.format = "jsonl"
	plain := runSweep(t, cfg, nil)

	cfg.traceDir = t.TempDir()
	if err := os.MkdirAll(cfg.traceDir, 0o755); err != nil {
		t.Fatal(err)
	}
	traced := runSweep(t, cfg, nil)
	if traced != plain {
		t.Fatal("tracing changed the sweep's record output")
	}

	recs, err := mc.ReadRecords(strings.NewReader(traced))
	if err != nil {
		t.Fatal(err)
	}
	byJob := mc.GroupByJob(recs)
	files, err := filepath.Glob(filepath.Join(cfg.traceDir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(byJob) {
		t.Fatalf("got %d trace files, want one per cell (%d)", len(files), len(byJob))
	}
	seenJobs := map[string]bool{}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		traces, skipped, err := obs.ReadTraces(f)
		f.Close()
		if err != nil || skipped != 0 {
			t.Fatalf("%s: err=%v skipped=%d", path, err, skipped)
		}
		if len(traces) != cfg.reps {
			t.Fatalf("%s: %d trace runs, want %d", path, len(traces), cfg.reps)
		}
		job := traces[0].Header.Job
		byRep := byJob[job]
		if byRep == nil {
			t.Fatalf("%s: trace job %q not in the sweep output", path, job)
		}
		seenJobs[job] = true
		for i, tr := range traces {
			if tr.Header.Rep != i || tr.Header.Job != job {
				t.Fatalf("%s: trace %d is rep %d of %q, want replicate order", path, i, tr.Header.Rep, tr.Header.Job)
			}
			if tr.Header.N != 1000 || tr.Header.Seed != byRep[i].Seed {
				t.Fatalf("%s rep %d: header %+v not tied to record %+v", path, i, tr.Header, byRep[i])
			}
			if tr.Summary == nil || tr.Summary.Rounds != byRep[i].Rounds {
				t.Fatalf("%s rep %d: summary %+v disagrees with record rounds %d", path, i, tr.Summary, byRep[i].Rounds)
			}
		}
	}
	if len(seenJobs) != len(byJob) {
		t.Fatalf("trace files cover %d cells, want %d", len(seenJobs), len(byJob))
	}
}

// TestTraceFileName pins the sanitization: output is filesystem-safe on
// every platform and distinct cells map to distinct names in practice.
func TestTraceFileName(t *testing.T) {
	got := traceFileName("3majority/g=smallworld:4:0.1/n=1000/k=2/c=0.5")
	want := "3majority_g_smallworld_4_0.1_n_1000_k_2_c_0.5.jsonl"
	if got != want {
		t.Fatalf("traceFileName = %q, want %q", got, want)
	}
	if strings.ContainsAny(got, "/\\:=") {
		t.Fatalf("unsafe bytes survived: %q", got)
	}
}
