// Command sweep runs a parameter grid of plurality-consensus processes on
// the replicate-parallel internal/mc runner and emits either one
// aggregated CSV row per (rule, n, k, bias-multiplier) cell — mean rounds,
// success rate, 95% Wilson interval — or one JSONL record per replicate,
// the raw material for custom plots beyond the canned experiments of
// cmd/experiments.
//
//	sweep -rules 3majority,median -ns 10000,100000 -ks 2,8,32 -cs 0.5,1,2 -reps 20
//	sweep -graphs complete,regular:8,smallworld:10:0.1 -ns 10000 -reps 20
//	sweep -workers 8 -format jsonl -out grid.jsonl        # stream replicates
//	sweep -format jsonl -out grid.jsonl -resume           # finish an interrupted grid
//	sweep -ns 100000 -reps 8 -trace-dir traces/           # per-cell telemetry traces
//
// Topology specs resolve through the internal/topo registry (the same
// names the service and cmd/validate accept). "complete" runs the paper's
// clique on the closed-form/sampled clique engines; every other family
// runs the CSR-sharded graph engine on one quenched graph per cell (built
// once from a seed derived from the cell name, shared by all replicates).
//
// Replicate seeds are pre-derived per cell from (-seed, cell name), so a
// grid is deterministic for a fixed -seed regardless of -workers, cells
// are reproducible in isolation, and an interrupted -format jsonl grid
// resumes from its own output file: records already on disk are not
// re-simulated, and the completed file is byte-identical to an
// uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/mc"
	"plurality/internal/obs"
	"plurality/internal/rng"
	"plurality/internal/topo"
)

// csvHeader is the aggregated per-cell output schema.
const csvHeader = "rule,graph,n,k,bias_mult,bias,reps,rounds_mean,rounds_std,success_rate,wilson_lo,wilson_hi"

// config collects the sweep flags.
type config struct {
	rules     string
	graphs    string
	graphMode string
	graphDir  string
	sampler   string
	ns        string
	ks        string
	cs        string
	reps      int
	seed      uint64
	maxRounds int
	workers   int
	format    string
	out       string
	resume    bool
	traceDir  string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.rules, "rules", "3majority", "comma-separated rules: 3majority | 3majority-utie | median | polling | 2choices | hplurality:H")
	flag.StringVar(&cfg.graphs, "graphs", "complete",
		"comma-separated topology specs ("+strings.Join(topo.FamilyUsages(), " | ")+")")
	flag.StringVar(&cfg.graphMode, "graph-mode", "auto", "topology backend: auto | implicit | csr | mmap (mmap caches built graphs under -graph-dir, keyed by spec, n, and graph seed)")
	flag.StringVar(&cfg.graphDir, "graph-dir", "", "directory for -graph-mode mmap CSR files (required there)")
	flag.StringVar(&cfg.sampler, "sampler", "default", "graph-engine rng draw discipline: default (per-draw byte contract) | batch (bulk block draws; faster, not draw-compatible with default)")
	flag.StringVar(&cfg.ns, "ns", "100000", "comma-separated population sizes")
	flag.StringVar(&cfg.ks, "ks", "2,8,32", "comma-separated color counts")
	flag.StringVar(&cfg.cs, "cs", "1", "comma-separated bias multipliers applied to the Cor-1 threshold")
	flag.IntVar(&cfg.reps, "reps", 20, "replicates per cell")
	flag.Uint64Var(&cfg.seed, "seed", 1, "base seed")
	flag.IntVar(&cfg.maxRounds, "max-rounds", 200_000, "round budget per run")
	flag.IntVar(&cfg.workers, "workers", 0, "replicate parallelism (0 = GOMAXPROCS)")
	flag.StringVar(&cfg.format, "format", "csv", "output format: csv (one aggregated row per cell) | jsonl (one record per replicate)")
	flag.StringVar(&cfg.out, "out", "", "output file (default stdout; required for -resume)")
	flag.BoolVar(&cfg.resume, "resume", false, "resume an interrupted -format jsonl -out grid, simulating only missing replicates")
	flag.StringVar(&cfg.traceDir, "trace-dir", "", "write one JSONL telemetry trace file per grid cell (one trace run per replicate simulated this process; cmd/tracereport renders them) into this directory")
	flag.Parse()

	// Ctrl-C cancels cleanly: in-flight replicates drain, the JSONL file
	// keeps a valid prefix, and -resume picks up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// run validates the config, wires the output file and resume index, and
// hands off to sweep.
func run(ctx context.Context, cfg config) error {
	if cfg.format != "csv" && cfg.format != "jsonl" {
		return fmt.Errorf("unknown -format %q (want csv or jsonl)", cfg.format)
	}
	if mode, err := topo.ParseMode(cfg.graphMode); err != nil {
		return err
	} else if mode == topo.ModeMmap && cfg.graphDir == "" {
		return errors.New("-graph-mode mmap requires -graph-dir")
	}
	if _, err := engine.ParseSampler(cfg.sampler); err != nil {
		return err
	}
	if cfg.traceDir != "" {
		if err := os.MkdirAll(cfg.traceDir, 0o755); err != nil {
			return err
		}
	}
	var done map[string]map[int]mc.Record
	if cfg.resume {
		if cfg.format != "jsonl" || cfg.out == "" {
			return errors.New("-resume requires -format jsonl and -out FILE")
		}
		var (
			err   error
			valid int64
			torn  bool
		)
		done, valid, torn, err = mc.ReadResumePrefix(cfg.out)
		if err != nil {
			return err
		}
		if torn {
			// A crash mid-write left a torn trailing line. Drop it before
			// appending — the lost replicate is re-executed deterministically.
			fmt.Fprintf(os.Stderr, "sweep: %s has a torn trailing write; truncating to %d bytes and re-running the lost replicate\n", cfg.out, valid)
			if err := os.Truncate(cfg.out, valid); err != nil {
				return err
			}
		}
	}
	if cfg.out == "" {
		return sweep(ctx, cfg, os.Stdout, done)
	}
	mode := os.O_CREATE | os.O_WRONLY
	if cfg.resume {
		mode |= os.O_APPEND
	} else {
		mode |= os.O_TRUNC
	}
	f, err := os.OpenFile(cfg.out, mode, 0o644)
	if err != nil {
		return err
	}
	err = sweep(ctx, cfg, f, done)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// sweep drives the grid: one mc.Job per cell, replicates fanned out
// across a persistent pool.
func sweep(ctx context.Context, cfg config, w io.Writer, done map[string]map[int]mc.Record) error {
	ruleNames := strings.Split(cfg.rules, ",")
	nVals, err := parseInts(cfg.ns)
	if err != nil {
		return err
	}
	kVals, err := parseInts(cfg.ks)
	if err != nil {
		return err
	}
	cVals, err := parseFloats(cfg.cs)
	if err != nil {
		return err
	}

	rules := make([]dynamics.Rule, 0, len(ruleNames))
	for _, ruleName := range ruleNames {
		rule, err := parseRule(strings.TrimSpace(ruleName))
		if err != nil {
			return err
		}
		rules = append(rules, rule)
	}
	// Canonicalize every (graph, n) pair up front through the topo
	// registry: a bad spec fails the whole grid before any simulation.
	graphNames := strings.Split(cfg.graphs, ",")
	graphs := make([]string, 0, len(graphNames))
	for _, gname := range graphNames {
		gname = strings.TrimSpace(gname)
		canon := ""
		for _, n := range nVals {
			c, err := topo.Canonical(gname, n)
			if err != nil {
				return fmt.Errorf("-graphs %s at n=%d: %w", gname, n, err)
			}
			canon = c
		}
		graphs = append(graphs, canon)
	}
	sampler, err := engine.ParseSampler(cfg.sampler)
	if err != nil {
		return err
	}
	if sampler == engine.SamplerBatch {
		// The clique cells run the dedicated clique engines, which have no
		// sampler notion; refuse rather than silently run them on the
		// default discipline under a -sampler batch grid.
		for _, g := range graphs {
			if g == "complete" {
				return errors.New(`-sampler batch applies only to graph-engine cells; drop "complete" from -graphs`)
			}
		}
	}
	cells := make([]string, 0, len(rules)*len(graphs)*len(nVals)*len(kVals)*len(cVals))
	for _, rule := range rules {
		for _, g := range graphs {
			for _, n := range nVals {
				for _, k := range kVals {
					for _, c := range cVals {
						cells = append(cells, cellName(rule.Name(), g, n, int(k), c, sampler))
					}
				}
			}
		}
	}
	if err := checkResumeJobs(done, cells, cfg.reps); err != nil {
		return err
	}

	pool := mc.NewPool(cfg.workers)
	defer pool.Close()

	if cfg.format == "csv" {
		if _, err := fmt.Fprintln(w, csvHeader); err != nil {
			return err
		}
	}
	for _, rule := range rules {
		for _, g := range graphs {
			for _, n := range nVals {
				for _, k := range kVals {
					for _, c := range cVals {
						if err := runCell(ctx, cfg, pool, w, done, rule, g, n, int(k), c); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// checkResumeJobs rejects a resume file that is not a record prefix of
// this grid run: jobs outside the grid, records past a cell boundary that
// an uninterrupted run would not have reached yet, or non-contiguous
// replicate indices. Appending to such a file would mix stale or
// misordered records into the output, breaking the
// byte-identical-to-uninterrupted guarantee.
func checkResumeJobs(done map[string]map[int]mc.Record, cells []string, reps int) error {
	if len(done) == 0 {
		return nil
	}
	inGrid := map[string]bool{}
	for _, cell := range cells {
		inGrid[cell] = true
	}
	for job := range done {
		if !inGrid[job] {
			return fmt.Errorf("resume file contains job %q which is not in this grid (flags changed since the interrupted run?)", job)
		}
	}
	// Records are written cell by cell in grid order and replicate by
	// replicate within a cell, so a valid interrupted file is a complete
	// run of leading cells, at most one partial cell with replicates
	// 0..m-1, and nothing after it.
	partialSeen := false
	for _, cell := range cells {
		byRep := done[cell]
		if len(byRep) == 0 {
			partialSeen = true
			continue
		}
		if partialSeen {
			return fmt.Errorf("resume file is not a prefix of this grid: cell %q has records after an incomplete cell (cell order changed since the interrupted run?)", cell)
		}
		if len(byRep) > reps {
			return fmt.Errorf("resume file has %d replicates for cell %q, more than -reps %d", len(byRep), cell, reps)
		}
		for i := 0; i < len(byRep); i++ {
			if _, ok := byRep[i]; !ok {
				return fmt.Errorf("resume file records for cell %q are not a replicate prefix (rep %d missing)", cell, i)
			}
		}
		if len(byRep) < reps {
			partialSeen = true
		}
	}
	return nil
}

// runCell executes one grid cell as an mc.Job and writes its output. For
// gname != "complete" the cell runs the CSR-sharded graph engine on one
// quenched topology: built lazily from the cell's derived graph seed and
// shared read-only across all replicates.
func runCell(ctx context.Context, cfg config, pool *mc.Pool, w io.Writer,
	done map[string]map[int]mc.Record, rule dynamics.Rule, gname string, n int64, k int, c float64) error {
	s := core.Corollary1Bias(n, k, c)
	sampler, _ := engine.ParseSampler(cfg.sampler) // validated in sweep
	name := cellName(rule.Name(), gname, n, k, c, sampler)
	_, isProb := rule.(dynamics.ProbModel)
	onClique := gname == "complete"
	sharedGraph := sync.OnceValue(func() topo.NeighborSource {
		// The graph seed is a pure function of (base seed, cell name), so
		// in mmap mode the cache file name is too: re-running the same
		// sweep reuses the on-disk graph instead of rebuilding it.
		mode, _ := topo.ParseMode(cfg.graphMode)
		gseed := cellSeed(cfg.seed, "graph/"+name)
		opts := topo.BuildOpts{Mode: mode}
		if mode == topo.ModeMmap {
			opts.Path = filepath.Join(cfg.graphDir, topo.CacheFileName(gname, n, gseed))
		}
		g, err := topo.BuildSource(gname, n, rng.New(gseed), opts)
		if err != nil {
			panic(fmt.Sprintf("sweep: graph revalidation failed for %q: %v", gname, err))
		}
		return g
	})
	var ct *cellTracer
	if cfg.traceDir != "" {
		engLabel := "graph"
		switch {
		case onClique && isProb:
			engLabel = "multinomial"
		case onClique:
			engLabel = "sampled"
		}
		f, err := os.Create(filepath.Join(cfg.traceDir, traceFileName(name)))
		if err != nil {
			return err
		}
		ct = &cellTracer{f: f, engine: engLabel, rule: rule.Name(), n: n, k: k}
	}
	job := mc.Job{
		Name:       name,
		Seed:       cellSeed(cfg.seed, name),
		Replicates: cfg.reps,
		MaxRounds:  cfg.maxRounds,
	}
	job.New = func(seed uint64) mc.Run {
		maxRounds := job.MaxRounds // the Job carries the round budget
		return func() mc.Record {
			r := rng.New(seed)
			init := colorcfg.Biased(n, k, s)
			var e engine.Engine
			switch {
			case onClique && isProb:
				e = engine.NewCliqueMultinomial(rule, init)
			case onClique:
				// Replicates already saturate the cores; keep the
				// agent-level engine single-worker per replicate.
				e = engine.NewCliqueSampled(rule, init, 1, r.Uint64())
			default:
				e = engine.NewGraphEngineOpts(rule, sharedGraph(), init, 1, r.Uint64(), r,
					engine.GraphOpts{Sampler: sampler})
			}
			defer e.Close()
			opts := core.Options{MaxRounds: maxRounds, Rand: r}
			if ct != nil {
				opts.Observer = ct.tracer.Recorder(seed)
			}
			res := core.Run(e, opts)
			return mc.Record{Rounds: res.Rounds, Success: res.WonInitialPlurality}
		}
	}
	var sink func(mc.Record) error
	if cfg.format == "jsonl" {
		sink = func(rec mc.Record) error { return mc.AppendRecord(w, rec) }
	}
	var onProgress func(mc.Record, int, int)
	if ct != nil {
		onProgress = ct.flush
	}
	recs, err := pool.Run(ctx, job, mc.RunOpts{Done: done[name], Sink: sink, OnProgress: onProgress})
	if ct != nil {
		if cerr := ct.f.Close(); err == nil {
			err = ct.err
			if err == nil {
				err = cerr
			}
		}
	}
	if err != nil {
		return err
	}
	if cfg.format == "csv" {
		agg := mc.Aggregate(recs)
		sum := agg.Rounds()
		lo, hi := agg.Wilson(1.96)
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%g,%d,%d,%.2f,%.2f,%.3f,%.3f,%.3f\n",
			rule.Name(), gname, n, k, c, s, agg.N, sum.Mean, sum.Std,
			agg.SuccessRate(), lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// cellTracer owns one cell's -trace-dir output: an obs.Tracer handing
// per-replicate Recorders to the job closures, and the cell's JSONL
// trace file. Replicates execute concurrently, but flush runs on the
// coordinating goroutine in replicate order (OnProgress contract), so
// the file carries one trace run per replicate in replicate order —
// deterministic for a fixed seed regardless of -workers. Replicates
// adopted from a -resume file never re-execute, so their traces are not
// re-created: a resumed cell's trace file covers only the replicates
// simulated by this process.
type cellTracer struct {
	tracer obs.Tracer
	f      *os.File
	engine string
	rule   string
	n      int64
	k      int
	err    error // first WriteTrace failure; latches, surfaced after the cell
}

// flush claims the finished replicate's recorder and appends its trace
// run to the cell file. mc fills rec.Seed for every computed replicate,
// which is the key the job closure registered the recorder under.
func (ct *cellTracer) flush(rec mc.Record, done, total int) {
	r := ct.tracer.Take(rec.Seed)
	if r == nil || ct.err != nil {
		return
	}
	ct.err = r.WriteTrace(ct.f, obs.Header{
		Engine: ct.engine, Rule: ct.rule, N: ct.n, K: ct.k,
		Seed: rec.Seed, Job: rec.Job, Rep: rec.Rep,
	})
}

// traceFileName maps a cell name to a filesystem-safe JSONL file name:
// every byte outside [A-Za-z0-9._-] becomes '_' (the full cell name
// still rides inside the file, in each trace run's job field).
func traceFileName(cell string) string {
	out := []byte(cell)
	for i, b := range out {
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9',
			b == '.', b == '_', b == '-':
		default:
			out[i] = '_'
		}
	}
	return string(out) + ".jsonl"
}

// cellName is the stable grid-cell identifier used in JSONL records and
// resume files. The batch sampler changes every replicate's rng stream, so
// it is part of the identity; the default is omitted so that grids written
// before the sampler existed still resume.
func cellName(rule, gname string, n int64, k int, c float64, sampler engine.Sampler) string {
	name := fmt.Sprintf("%s/g=%s/n=%d/k=%d/c=%g", rule, gname, n, k, c)
	if sampler == engine.SamplerBatch {
		name += "/sampler=batch"
	}
	return name
}

// cellSeed derives the cell's job seed from the base seed and the cell
// name, so a cell's replicates are reproducible regardless of the grid
// shape it is embedded in.
func cellSeed(base uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rng.New(base ^ h.Sum64()).Uint64()
}

// parseRule resolves the shared rule names (see dynamics.ParseRule).
func parseRule(s string) (dynamics.Rule, error) {
	return dynamics.ParseRule(s)
}

func parseInts(csv string) ([]int64, error) {
	parts := strings.Split(csv, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
