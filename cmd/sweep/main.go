// Command sweep runs a parameter grid of plurality-consensus processes and
// emits one CSV row per (rule, n, k, bias-multiplier) cell with mean
// rounds, success rate and a 95% Wilson interval — the raw material for
// custom plots beyond the canned experiments of cmd/experiments.
//
//	sweep -rules 3majority,median -ns 10000,100000 -ks 2,8,32 -cs 0.5,1,2 -reps 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

func main() {
	var (
		rules = flag.String("rules", "3majority", "comma-separated rules: 3majority | median | polling | 2choices | hplurality:H")
		ns    = flag.String("ns", "100000", "comma-separated population sizes")
		ks    = flag.String("ks", "2,8,32", "comma-separated color counts")
		cs    = flag.String("cs", "1", "comma-separated bias multipliers applied to the Cor-1 threshold")
		reps  = flag.Int("reps", 20, "replicates per cell")
		seed  = flag.Uint64("seed", 1, "base seed")
		cap   = flag.Int("max-rounds", 200_000, "round budget per run")
	)
	flag.Parse()

	if err := sweep(*rules, *ns, *ks, *cs, *reps, *seed, *cap); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func sweep(rulesCSV, nsCSV, ksCSV, csCSV string, reps int, seed uint64, maxRounds int) error {
	ruleNames := strings.Split(rulesCSV, ",")
	nVals, err := parseInts(nsCSV)
	if err != nil {
		return err
	}
	kVals, err := parseInts(ksCSV)
	if err != nil {
		return err
	}
	cVals, err := parseFloats(csCSV)
	if err != nil {
		return err
	}

	fmt.Println("rule,n,k,bias_mult,bias,reps,rounds_mean,rounds_std,success_rate,wilson_lo,wilson_hi")
	base := rng.New(seed)
	for _, ruleName := range ruleNames {
		rule, err := parseRule(strings.TrimSpace(ruleName))
		if err != nil {
			return err
		}
		for _, n := range nVals {
			for _, k := range kVals {
				for _, c := range cVals {
					s := core.Corollary1Bias(n, int(k), c)
					rounds := make([]float64, 0, reps)
					wins := 0
					for rep := 0; rep < reps; rep++ {
						init := colorcfg.Biased(n, int(k), s)
						var e engine.Engine
						if _, ok := rule.(dynamics.ProbModel); ok {
							e = engine.NewCliqueMultinomial(rule, init)
						} else {
							e = engine.NewCliqueSampled(rule, init, 4, base.Uint64())
						}
						res := core.Run(e, core.Options{MaxRounds: maxRounds, Rand: base.NewStream()})
						e.Close()
						rounds = append(rounds, float64(res.Rounds))
						if res.WonInitialPlurality {
							wins++
						}
					}
					sum := stats.Summarize(rounds)
					lo, hi := stats.WilsonInterval(wins, reps, 1.96)
					fmt.Printf("%s,%d,%d,%g,%d,%d,%.2f,%.2f,%.3f,%.3f,%.3f\n",
						rule.Name(), n, k, c, s, reps, sum.Mean, sum.Std,
						float64(wins)/float64(reps), lo, hi)
				}
			}
		}
	}
	return nil
}

func parseRule(s string) (dynamics.Rule, error) {
	switch {
	case s == "3majority":
		return dynamics.ThreeMajority{}, nil
	case s == "median":
		return dynamics.Median{}, nil
	case s == "polling":
		return dynamics.Polling{}, nil
	case s == "2choices":
		return dynamics.TwoChoices{}, nil
	case strings.HasPrefix(s, "hplurality:"):
		h, err := strconv.Atoi(strings.TrimPrefix(s, "hplurality:"))
		if err != nil || h < 1 {
			return nil, fmt.Errorf("bad h in %q", s)
		}
		return dynamics.NewHPlurality(h), nil
	}
	return nil, fmt.Errorf("unknown rule %q", s)
}

func parseInts(csv string) ([]int64, error) {
	parts := strings.Split(csv, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
