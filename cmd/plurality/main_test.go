package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/obs"
	"plurality/internal/rng"
)

func TestParseRule(t *testing.T) {
	good := map[string]string{
		"3majority":      "3-majority",
		"3majority-utie": "3-majority(uniform-tie)",
		"median":         "median",
		"polling":        "polling",
		"2choices":       "2-choices",
		"hplurality:7":   "7-plurality",
	}
	for in, want := range good {
		r, err := parseRule(in)
		if err != nil {
			t.Errorf("parseRule(%q): %v", in, err)
			continue
		}
		if r.Name() != want {
			t.Errorf("parseRule(%q).Name() = %q, want %q", in, r.Name(), want)
		}
	}
	for _, bad := range []string{"", "nope", "hplurality:", "hplurality:0", "hplurality:x"} {
		if _, err := parseRule(bad); err == nil {
			t.Errorf("parseRule(%q) should fail", bad)
		}
	}
}

func TestParseBias(t *testing.T) {
	if v, err := parseBias("123", 1000, 4); err != nil || v != 123 {
		t.Errorf("explicit bias: %v %v", v, err)
	}
	if v, err := parseBias("auto", 100000, 4); err != nil || v <= 0 {
		t.Errorf("auto bias: %v %v", v, err)
	}
	if _, err := parseBias("abc", 100, 2); err == nil {
		t.Error("bad bias accepted")
	}
}

func TestBuildEngineGraphSpecs(t *testing.T) {
	// -graph resolves through the topo registry: every family is
	// reachable from this CLI by name, and bad specs error out.
	r := rng.New(1)
	init := colorcfg.Biased(100, 3, 20)
	for _, spec := range []string{
		"complete", "cycle", "star", "torus", "hypercube",
		"regular:4", "gnp:0.3", "smallworld:4:0.1", "ba:3",
		"sbm:2:0.2:0.02", "barbell:4",
	} {
		n := int64(100)
		if spec == "hypercube" {
			n = 128
		}
		e, err := buildEngine("graph", spec, "auto", "", "default", dynamics.ThreeMajority{},
			colorcfg.Biased(n, 3, 20), 1, 5, r)
		if err != nil {
			t.Errorf("buildEngine(graph, %q): %v", spec, err)
			continue
		}
		if e.N() != n {
			t.Errorf("%q: engine n = %d, want %d", spec, e.N(), n)
		}
		e.Close()
	}
	for _, bad := range []string{"nope", "regular:x", "gnp:y", "torus:0"} {
		if _, err := buildEngine("graph", bad, "auto", "", "default", dynamics.ThreeMajority{}, init, 1, 5, r); err == nil {
			t.Errorf("buildEngine(graph, %q) should fail", bad)
		}
	}
	if _, err := buildEngine("graph", "torus", "auto", "", "default", dynamics.ThreeMajority{},
		colorcfg.Biased(101, 3, 20), 1, 5, r); err == nil {
		t.Error("non-square torus accepted")
	}

	// Backend modes: implicit needs no file, mmap builds one and reuses it,
	// and mmap without a path is rejected up front.
	for _, mode := range []string{"implicit", "csr"} {
		e, err := buildEngine("graph", "torus", mode, "", "default", dynamics.ThreeMajority{}, init, 1, 5, r)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		e.Close()
	}
	path := filepath.Join(t.TempDir(), "t.csr")
	for i := 0; i < 2; i++ { // second pass exercises cache reuse
		e, err := buildEngine("graph", "torus", "mmap", path, "default", dynamics.ThreeMajority{}, init, 1, 5, r)
		if err != nil {
			t.Fatalf("mmap pass %d: %v", i, err)
		}
		e.Close()
	}
	if _, err := buildEngine("graph", "torus", "mmap", "", "default", dynamics.ThreeMajority{}, init, 1, 5, r); err == nil {
		t.Error("mmap without -graph-file accepted")
	}
	if _, err := buildEngine("graph", "torus", "nope", "", "default", dynamics.ThreeMajority{}, init, 1, 5, r); err == nil {
		t.Error("unknown graph mode accepted")
	}

	// The batch sampler is a graph-engine notion: accepted there (and
	// stamped into the engine name), rejected for the clique engines and
	// for unknown sampler strings.
	e, err := buildEngine("graph", "torus", "auto", "", "batch", dynamics.ThreeMajority{}, init, 1, 5, r)
	if err != nil {
		t.Fatalf("batch sampler on graph engine: %v", err)
	}
	if name := e.Name(); !strings.Contains(name, "batch") {
		t.Errorf("batch engine name %q does not advertise the sampler", name)
	}
	e.Close()
	if _, err := buildEngine("sampled", "complete", "auto", "", "batch", dynamics.ThreeMajority{}, init, 1, 5, r); err == nil {
		t.Error("batch sampler accepted on a non-graph engine")
	}
	if _, err := buildEngine("graph", "torus", "auto", "", "turbo", dynamics.ThreeMajority{}, init, 1, 5, r); err == nil {
		t.Error("unknown sampler accepted")
	}
}

func TestParseAdversary(t *testing.T) {
	for in, wantBudget := range map[string]int64{
		"strongest:5": 5, "spread:7": 7, "random:9": 9, "boost:3": 3,
	} {
		a, err := parseAdversary(in)
		if err != nil {
			t.Errorf("parseAdversary(%q): %v", in, err)
			continue
		}
		if a.Budget() != wantBudget {
			t.Errorf("parseAdversary(%q).Budget() = %d", in, a.Budget())
		}
	}
	if a, err := parseAdversary("none"); err != nil || a.Budget() != 0 {
		t.Error("none adversary broken")
	}
	for _, bad := range []string{"strongest", "strongest:-1", "strongest:x", "nope:5"} {
		if _, err := parseAdversary(bad); err == nil {
			t.Errorf("parseAdversary(%q) should fail", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Small end-to-end run through the CLI plumbing (no flags).
	err := run("3majority", "auto", "complete", "auto", "", "default", 2000, 3, "auto", 1, 10000,
		"none", 2, false, "", -1, "", false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Undecided path.
	err = run("undecided", "auto", "complete", "auto", "", "default", 2000, 3, "500", 1, 10000,
		"none", 2, false, "", -1, "", false)
	if err != nil {
		t.Fatalf("run undecided: %v", err)
	}
	// Keep-own path with adversary and M-plurality stop.
	err = run("2choices-keepown", "auto", "complete", "auto", "", "default", 2000, 3, "auto", 1, 10000,
		"strongest:2", 2, false, "", 50, "", true)
	if err != nil {
		t.Fatalf("run keep-own: %v", err)
	}
	// Error paths.
	if err := run("nope", "auto", "complete", "auto", "", "default", 100, 2, "auto", 1, 10, "none", 1, false, "", -1, "", false); err == nil {
		t.Error("bad rule accepted")
	}
	if err := run("3majority", "nope", "complete", "auto", "", "default", 100, 2, "auto", 1, 10, "none", 1, false, "", -1, "", false); err == nil {
		t.Error("bad engine accepted")
	}
}

// TestRunTraceFile pins the -trace flag: the run writes a parseable
// JSONL trace whose round count matches the run and whose bytes the
// tolerant reader consumes without skips.
func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	err := run("3majority", "auto", "complete", "auto", "", "default", 2000, 3, "auto", 1, 10000,
		"none", 2, false, path, -1, "", false)
	if err != nil {
		t.Fatalf("run with -trace: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	defer f.Close()
	traces, skipped, err := obs.ReadTraces(f)
	if err != nil || skipped != 0 {
		t.Fatalf("parsing trace: err=%v skipped=%d", err, skipped)
	}
	if len(traces) != 1 {
		t.Fatalf("got %d trace runs, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Header.Rule != "3majority" || tr.Header.N != 2000 || tr.Header.K != 3 || tr.Header.Seed != 1 {
		t.Fatalf("trace header %+v does not describe the run", tr.Header)
	}
	if tr.Summary == nil || tr.Summary.Rounds < 1 || len(tr.Rounds) != tr.Summary.Retained {
		t.Fatalf("trace summary inconsistent: %+v with %d round lines", tr.Summary, len(tr.Rounds))
	}
	last := tr.Rounds[len(tr.Rounds)-1]
	if last.CMax <= 0 || last.CMax > 2000 {
		t.Fatalf("implausible final c_max %d", last.CMax)
	}
}
