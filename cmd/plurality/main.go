// Command plurality runs a single plurality-consensus process and prints
// its trajectory and outcome.
//
// Examples:
//
//	plurality -n 100000 -k 8 -bias auto
//	plurality -rule median -n 100000 -k 32 -bias 2000 -print-rounds
//	plurality -n 1000000 -k 8 -bias auto -trace run-trace.jsonl
//	plurality -rule hplurality:9 -engine sampled -n 50000 -k 16 -bias auto
//	plurality -rule undecided -n 100000 -k 8 -bias 20000
//	plurality -engine graph -graph torus -n 10000 -k 4 -bias 2000
//	plurality -engine graph -graph torus:3 -graph-mode implicit -n 1000000000 -k 3 -bias auto
//	plurality -engine graph -graph smallworld:2:0.1 -graph-mode mmap -graph-file /data/sw.csr -n 100000000 -k 3 -bias auto
//	plurality -adversary strongest:200 -n 200000 -k 4 -bias auto
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"plurality/internal/adversary"
	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/obs"
	"plurality/internal/rng"
	"plurality/internal/topo"
	"plurality/internal/trace"
)

func main() {
	var (
		ruleName    = flag.String("rule", "3majority", "dynamics: 3majority | 3majority-utie | hplurality:H | median | polling | 2choices | 2choices-keepown | undecided")
		engName     = flag.String("engine", "auto", "engine: auto | multinomial | sampled | graph | population")
		graphName   = flag.String("graph", "complete", "topology for -engine graph (internal/topo registry spec): complete | cycle | star | torus[:DIMS] | hypercube | regular:D | gnp:P | smallworld:K:BETA | ba:M | sbm:B:PIN:POUT | barbell:D")
		graphMode   = flag.String("graph-mode", "auto", "topology backend for -engine graph: auto | implicit (zero materialization) | csr (force in-RAM) | mmap (serve from -graph-file, building it first if absent)")
		graphFile   = flag.String("graph-file", "", "CSR file for -graph-mode mmap (created atomically when missing)")
		sampler     = flag.String("sampler", "default", "rng draw discipline for -engine graph: default (per-draw byte contract, golden-pinned) | batch (bulk block draws; faster, certified by its own golden)")
		n           = flag.Int64("n", 100_000, "number of agents")
		k           = flag.Int("k", 8, "number of colors")
		biasFlag    = flag.String("bias", "auto", "initial additive bias (integer) or 'auto' for the Corollary 1 threshold")
		seed        = flag.Uint64("seed", 1, "random seed")
		maxRounds   = flag.Int("max-rounds", 1_000_000, "round budget")
		advName     = flag.String("adversary", "none", "adversary: none | strongest:F | spread:F | random:F | boost:F")
		workers     = flag.Int("workers", 4, "worker goroutines for the sampled/graph engines")
		printRounds = flag.Bool("print-rounds", false, "print the configuration every round")
		traceFile   = flag.String("trace", "", "write a JSONL telemetry trace (per-round wall time, convergence stats, memory samples; cmd/tracereport renders it) to this file")
		mPlur       = flag.Int64("m-plurality", -1, "stop at M-plurality consensus instead of full consensus")
		dumpPath    = flag.String("dump-trajectory", "", "write the per-round trajectory to this CSV file")
		phases      = flag.Bool("phases", false, "print the Lemma 3/4/5 phase segmentation after the run")
	)
	flag.Parse()

	if err := run(*ruleName, *engName, *graphName, *graphMode, *graphFile, *sampler, *n, *k, *biasFlag, *seed,
		*maxRounds, *advName, *workers, *printRounds, *traceFile, *mPlur, *dumpPath, *phases); err != nil {
		fmt.Fprintln(os.Stderr, "plurality:", err)
		os.Exit(1)
	}
}

func run(ruleName, engName, graphName, graphMode, graphFile, samplerName string, n int64, k int,
	biasFlag string, seed uint64, maxRounds int, advName string, workers int,
	printRounds bool, traceFile string, mPlur int64, dumpPath string, phases bool) error {

	bias, err := parseBias(biasFlag, n, k)
	if err != nil {
		return err
	}
	init := colorcfg.Biased(n, k, bias)

	r := rng.New(seed)

	// The undecided-state protocol and the keep-own rules are stateful and
	// have dedicated engines.
	var eng engine.Engine
	if ruleName == "undecided" {
		eng = engine.NewUndecidedExact(init)
	} else if ruleName == "2choices-keepown" {
		eng = engine.NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, init)
	} else {
		rule, err := parseRule(ruleName)
		if err != nil {
			return err
		}
		eng, err = buildEngine(engName, graphName, graphMode, graphFile, samplerName, rule, init, workers, seed, r)
		if err != nil {
			return err
		}
	}

	adv, err := parseAdversary(advName)
	if err != nil {
		return err
	}

	stop := core.WhenConsensusOf(n)
	if mPlur >= 0 {
		stop = core.WhenMPlurality(n, mPlur)
	}

	var rec *trace.Recorder
	if dumpPath != "" || phases {
		rec = trace.NewRecorder(n)
		rec.ObserveInitial(init)
	}
	opts := core.Options{
		MaxRounds: maxRounds,
		Rand:      r,
		Adversary: adv,
		Stop:      stop,
		TrackBias: true,
	}
	var telemetry *obs.Recorder
	if traceFile != "" {
		telemetry = &obs.Recorder{}
		opts.Observer = telemetry // typed pointer assigned only when non-nil
	}
	opts.OnRound = func(round int, c colorcfg.Config) {
		if rec != nil {
			rec.Observe(round, c)
		}
		if printRounds {
			first, second := c.TopTwo()
			fmt.Printf("round %5d  top=%d  c1=%d  c2=%d  bias=%d  support=%d\n",
				round, c.Plurality(), first, second, c.Bias(), c.Support())
		}
	}

	fmt.Printf("engine: %s\n", eng.Name())
	fmt.Printf("start:  n=%d k=%d bias=%d (cor1 threshold: %d)\n",
		n, k, bias, core.Corollary1Bias(n, k, 1.0))
	res := core.Run(eng, opts)

	fmt.Printf("rounds: %d (stopped=%v)\n", res.Rounds, res.Stopped)
	fmt.Printf("winner: color %d (initial plurality %d, won=%v)\n",
		res.Winner, res.InitialPlurality, res.WonInitialPlurality)
	first, _ := res.Final.TopTwo()
	fmt.Printf("final:  c_max=%d/%d minority-mass=%d\n", first, n, n-first)
	lambda := core.Lambda(n, k)
	fmt.Printf("theory: λ=%.3g, predicted O(λ·ln n)=%.0f rounds\n",
		lambda, core.UpperBoundRounds(n, lambda, 1))
	if phases && rec != nil {
		fmt.Printf("\nphase segmentation (Lemmas 3/4/5):\n%s", rec.Summary())
	}
	if dumpPath != "" && rec != nil {
		f, err := os.Create(dumpPath)
		if err != nil {
			return fmt.Errorf("dump trajectory: %w", err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return fmt.Errorf("dump trajectory: %w", err)
		}
		fmt.Printf("trajectory: %d rounds written to %s\n", rec.Len(), dumpPath)
	}
	if telemetry != nil {
		f, err := os.Create(traceFile)
		if err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		werr := telemetry.WriteTrace(f, obs.Header{
			Engine: eng.Name(), Rule: ruleName, N: n, K: k, Seed: seed,
		})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("write trace: %w", werr)
		}
		sum := telemetry.Summarize()
		fmt.Printf("trace:  %d rounds (%d retained) written to %s, %.1f ns/agent\n",
			sum.Rounds, sum.Retained, traceFile, sum.NsPerAgent)
	}
	return nil
}

func parseBias(s string, n int64, k int) (int64, error) {
	if s == "auto" {
		return core.Corollary1Bias(n, k, 1.0), nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad -bias %q: %v", s, err)
	}
	return v, nil
}

// parseRule resolves the shared rule names (see dynamics.ParseRule).
func parseRule(s string) (dynamics.Rule, error) {
	return dynamics.ParseRule(s)
}

func buildEngine(engName, graphName, graphMode, graphFile, samplerName string, rule dynamics.Rule,
	init colorcfg.Config, workers int, seed uint64, r *rng.Rand) (engine.Engine, error) {
	if engName == "auto" {
		if _, ok := rule.(dynamics.ProbModel); ok {
			engName = "multinomial"
		} else {
			engName = "sampled"
		}
	}
	sampler, err := engine.ParseSampler(samplerName)
	if err != nil {
		return nil, err
	}
	if sampler == engine.SamplerBatch && engName != "graph" {
		return nil, fmt.Errorf("-sampler batch applies only to -engine graph, not %q", engName)
	}
	switch engName {
	case "multinomial":
		return engine.NewCliqueMultinomial(rule, init), nil
	case "sampled":
		return engine.NewCliqueSampled(rule, init, workers, seed^0xdead), nil
	case "population":
		return engine.NewPopulation(rule, init), nil
	case "graph":
		// Topology specs resolve through the internal/topo registry —
		// the same names sweep, the service, and validate accept. The
		// backend mode picks the representation (implicit / in-RAM CSR /
		// mmap); every mode yields the same seeded run.
		mode, err := topo.ParseMode(graphMode)
		if err != nil {
			return nil, err
		}
		if mode == topo.ModeMmap && graphFile == "" {
			return nil, fmt.Errorf("-graph-mode mmap needs -graph-file")
		}
		g, err := topo.BuildSource(graphName, init.N(), r, topo.BuildOpts{Mode: mode, Path: graphFile})
		if err != nil {
			return nil, err
		}
		return engine.NewGraphEngineOpts(rule, g, init, workers, seed^0xbeef, r,
			engine.GraphOpts{Sampler: sampler}), nil
	}
	return nil, fmt.Errorf("unknown engine %q", engName)
}

func parseAdversary(s string) (adversary.Adversary, error) {
	if s == "none" {
		return adversary.None{}, nil
	}
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("adversary %q needs a budget, e.g. strongest:100", s)
	}
	f, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || f < 0 {
		return nil, fmt.Errorf("bad adversary budget in %q", s)
	}
	switch parts[0] {
	case "strongest":
		return adversary.Strongest{F: f}, nil
	case "spread":
		return adversary.Spread{F: f}, nil
	case "random":
		return adversary.Random{F: f}, nil
	case "boost":
		return adversary.Boost{F: f}, nil
	}
	return nil, fmt.Errorf("unknown adversary %q", parts[0])
}
