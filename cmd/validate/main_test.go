package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuickTierPassesAndReports runs the real quick tier end to end: it
// must succeed, and the JSONL report must contain one parseable line per
// check with the negative control marked and failing.
func TestQuickTierPassesAndReports(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.jsonl")
	var buf bytes.Buffer
	if err := run("quick", out, 1, 2, 2000, &buf); err != nil {
		t.Fatalf("quick tier failed: %v\n%s", err, buf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	type line struct {
		Name    string  `json:"name"`
		Kind    string  `json:"kind"`
		Pass    bool    `json:"pass"`
		Control bool    `json:"control"`
		Tier    string  `json:"tier"`
		Seed    uint64  `json:"seed"`
		Stat    float64 `json:"stat"`
	}
	var lines []line
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	controlFailed := false
	for _, l := range lines {
		kinds[l.Kind]++
		if l.Tier != "quick" {
			t.Errorf("line %q has tier %q", l.Name, l.Tier)
		}
		if l.Control && l.Kind == "chain-chi2" && !l.Pass {
			controlFailed = true
		}
		if !l.Control && !l.Pass {
			t.Errorf("regular check failed: %q", l.Name)
		}
	}
	if kinds["chain-chi2"] == 0 || kinds["chain-ks"] == 0 || kinds["golden"] == 0 {
		t.Errorf("report missing check kinds: %v", kinds)
	}
	if !controlFailed {
		t.Error("negative control did not fail in the report")
	}
	if !strings.Contains(buf.String(), "control-escapes=0") {
		t.Errorf("summary missing: %s", buf.String())
	}
}

// TestDeterministicAcrossWorkers: the summary and report must be
// byte-identical for different pool widths (replicate seeds are
// pre-derived; nothing may depend on scheduling).
func TestDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) (string, string) {
		out := filepath.Join(t.TempDir(), "r.jsonl")
		var buf bytes.Buffer
		if err := run("quick", out, 3, workers, 1500, &buf); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), string(raw)
	}
	sum1, rep1 := render(1)
	sum3, rep3 := render(3)
	if sum1 != sum3 {
		t.Error("stdout summary differs between -workers 1 and 3")
	}
	if rep1 != rep3 {
		t.Error("JSONL report differs between -workers 1 and 3")
	}
}

func TestUnknownTier(t *testing.T) {
	var buf bytes.Buffer
	if err := run("nope", "", 1, 1, 10, &buf); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

// TestChainGridShape: the full grid must strictly extend the quick one
// and keep state spaces within the exact package's bound (n ≤ 8 would be
// the acceptance floor; the full tier may go slightly beyond).
func TestChainGridShape(t *testing.T) {
	qs, qc := chainGrid("quick")
	fs, fc := chainGrid("full")
	if len(fs) <= len(qs) || len(fc) <= len(qc) {
		t.Errorf("full grid (%d specs, %d controls) does not extend quick (%d, %d)",
			len(fs), len(fc), len(qs), len(qc))
	}
	for _, s := range qs {
		if s.Initial.N() > 8 || s.Initial.K() > 3 {
			t.Errorf("quick spec %q outside the n<=8, k<=3 acceptance envelope", s.Name)
		}
	}
}
