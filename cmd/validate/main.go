// Command validate runs the statistical cross-validation harness
// (internal/validate) as a grid over rule × engine × configuration and
// emits a JSONL report: every line is one validate.CheckResult.
//
//	go run ./cmd/validate -tier quick -out report.jsonl
//	go run ./cmd/validate -tier full -workers 8 -seed 7
//
// The quick tier (CI on every PR) certifies all clique engines against
// the exact chain on small state spaces plus the golden-trace suite; the
// full tier (scheduled CI / the validate-full PR label) widens the grid,
// raises the replicate budget, and adds the mean-field and paper-level
// property checks.
//
// Negative controls are part of both tiers: deliberately mis-sampling
// engines run through the same machinery and MUST fail. The process
// exits non-zero if any regular check fails or any control passes, so a
// green run certifies both the engines and the harness's power.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/mc"
	"plurality/internal/validate"
)

func main() {
	var (
		tier       = flag.String("tier", "quick", "validation tier: quick | full")
		out        = flag.String("out", "", "JSONL report path (empty: no file, stdout summary only)")
		seed       = flag.Uint64("seed", 1, "base seed; verdicts are deterministic per seed")
		workers    = flag.Int("workers", 0, "replicate-pool parallelism (<= 0: GOMAXPROCS; results are worker-independent)")
		replicates = flag.Int("replicates", 0, "override replicates per chain check (0: tier default)")
	)
	flag.Parse()
	if err := run(*tier, *out, *seed, *workers, *replicates, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

func run(tier, out string, seed uint64, workers, replicates int, w io.Writer) error {
	var reps int
	switch tier {
	case "quick":
		reps = 4000
	case "full":
		reps = 12000
	default:
		return fmt.Errorf("unknown tier %q (want quick or full)", tier)
	}
	if replicates > 0 {
		reps = replicates
	}
	pool := mc.NewPool(workers)
	defer pool.Close()
	opts := validate.Options{Pool: pool, Replicates: reps, FamilyAlpha: 1e-3, Seed: seed}

	specs, controls := chainGrid(tier)
	var results, controlResults []validate.CheckResult
	results = append(results, validate.CertifyChainFamily(specs, opts)...)
	controlResults = validate.CertifyChainFamily(controls, validate.Options{
		Pool: pool, Replicates: reps, FamilyAlpha: 1e-3, Seed: seed + 5000,
	})

	results = append(results, goldenChecks()...)

	// Topology contracts: every post-clique family in the topo registry is
	// resolved by name, rebuilt deterministically, and its CSR engine path
	// certified byte-for-byte against the generic interface path.
	results = append(results, validate.CertifyGraphContracts(
		validate.StandardGraphSpecs(), validate.Options{Pool: pool, Seed: seed + 8000})...)

	if tier == "full" {
		for i, spec := range validate.StandardMeanFieldSpecs() {
			mo := opts
			mo.Seed = seed + 9000 + uint64(i)
			results = append(results, validate.CheckMeanField(spec, mo))
		}
		po := opts
		po.Seed = seed + 9500
		results = append(results,
			validate.CheckConsensusWHP(validate.DefaultConsensusWHPSpec(), po),
			validate.CheckBiasMonotonicity(validate.DefaultBiasMonotonicitySpec(), po),
			validate.CheckMDScaling(validate.DefaultMDScalingSpec(), po),
		)
	}

	var sink *json.Encoder
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = json.NewEncoder(f)
	}
	failures, controlEscapes := 0, 0
	emit := func(r validate.CheckResult, control bool) error {
		fmt.Fprintln(w, r)
		if sink != nil {
			line := struct {
				validate.CheckResult
				Control bool   `json:"control,omitempty"`
				Tier    string `json:"tier"`
			}{r, control, tier}
			if err := sink.Encode(line); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range results {
		if !r.Pass {
			failures++
		}
		if err := emit(r, false); err != nil {
			return err
		}
	}
	// Controls invert: a chi-square pass is a harness-power failure. The
	// KS companion of a control cell is informational (the chi-square
	// test carries the power requirement).
	for _, r := range controlResults {
		if r.Kind == "chain-chi2" && r.Pass {
			controlEscapes++
		}
		if err := emit(r, true); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "tier=%s checks=%d controls=%d failures=%d control-escapes=%d seed=%d replicates=%d\n",
		tier, len(results), len(controlResults), failures, controlEscapes, seed, reps)
	if failures > 0 {
		return fmt.Errorf("%d check(s) failed", failures)
	}
	if controlEscapes > 0 {
		return fmt.Errorf("%d negative control(s) passed — the harness has lost statistical power", controlEscapes)
	}
	return nil
}

// chainGrid builds the tier's certification family and its negative
// controls: engines × rules × start configurations × horizons.
func chainGrid(tier string) (specs, controls []validate.ChainSpec) {
	specs = append(specs, validate.CliqueSpecs(colorcfg.FromCounts(3, 2, 1), 1)...)
	specs = append(specs, validate.CliqueSpecs(colorcfg.FromCounts(4, 3, 1), 3)...)
	specs = append(specs,
		validate.RuleSpec(dynamics.Median{}, colorcfg.FromCounts(3, 2, 2), 2),
		validate.RuleSpec(dynamics.Polling{}, colorcfg.FromCounts(4, 2), 2),
		validate.MarkovSpec(dynamics.TwoChoicesKeepOwn{}, colorcfg.FromCounts(4, 2, 2), 2),
	)
	controls = append(controls,
		validate.NegativeControlSpec(0.15, colorcfg.FromCounts(3, 2, 1), 1),
	)
	if tier == "full" {
		specs = append(specs, validate.CliqueSpecs(colorcfg.FromCounts(4, 4), 2)...)
		specs = append(specs, validate.CliqueSpecs(colorcfg.FromCounts(6, 4, 2), 4)...)
		specs = append(specs,
			validate.RuleSpec(dynamics.TwoChoices{}, colorcfg.FromCounts(3, 3, 1), 1),
			validate.RuleSpec(dynamics.ThreeMajority{UniformTie: true}, colorcfg.FromCounts(4, 3, 1), 2),
			validate.RuleSpec(dynamics.Median{}, colorcfg.FromCounts(5, 4, 3), 3),
		)
		controls = append(controls,
			validate.NegativeControlSpec(0.08, colorcfg.FromCounts(4, 3, 1), 3),
		)
	}
	return specs, controls
}

// goldenChecks verifies the committed golden traces byte for byte,
// reported through the same CheckResult stream. (The test suite owns
// regeneration via -update-golden; the CLI only verifies.)
func goldenChecks() []validate.CheckResult {
	var out []validate.CheckResult
	for _, spec := range validate.StandardGoldenSpecs() {
		res := validate.CheckResult{
			Name: "golden/" + spec.Name,
			Kind: "golden",
			Seed: spec.Seed,
			Pass: true,
		}
		got := validate.TraceBytes(spec)
		want, err := validate.GoldenBytes(spec.Name)
		switch {
		case err != nil:
			res.Pass = false
			res.Detail = "missing golden trace: " + err.Error()
		case string(got) != string(want):
			res.Pass = false
			res.Detail = "trace bytes diverged from committed golden"
		}
		out = append(out, res)
	}
	return out
}
