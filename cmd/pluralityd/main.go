// Command pluralityd is the long-running simulation service: an
// HTTP/JSON daemon that accepts plurality-consensus jobs, executes their
// replicates on the process-wide internal/mc worker pool, and serves
// per-replicate results as JSONL. Unlike the one-shot CLIs (cmd/plurality,
// cmd/sweep) it keeps the alloc-free engines and the replicate-parallel
// pool hot across requests.
//
//	pluralityd -addr :8080 -workers 8 -executors 2 -backlog 16
//
//	# submit a job and wait for the result
//	curl -s 'localhost:8080/v1/jobs?wait=1' -d '{"n": 100000, "k": 8, "seed": 1, "replicates": 20}'
//
//	# submit asynchronously, poll, stream records
//	curl -s localhost:8080/v1/jobs -d '{"engine": "sampled", "n": 1000000, "k": 8, "seed": 1, "replicates": 100}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -sN 'localhost:8080/v1/jobs/j1/records?follow=1'
//
// Results are deterministic: a job's JSONL records are a pure function of
// its spec (see internal/service), so replaying a spec — on any -workers
// setting — reproduces the bytes. See DESIGN.md §6 for the job lifecycle
// and backpressure contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"plurality/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "replicate-pool parallelism (0 = GOMAXPROCS)")
		executors = flag.Int("executors", 2, "async jobs executing concurrently")
		backlog   = flag.Int("backlog", 16, "async jobs admitted beyond the executing ones (full backlog = HTTP 429)")
		maxSync   = flag.Int("max-sync", 4, "synchronous submissions executing concurrently")
		syncCost  = flag.Int64("sync-cost", 0, "cost threshold for the auto-sync path in agent updates (0 = default)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *addr, service.Options{
		Workers:   *workers,
		Executors: *executors,
		Backlog:   *backlog,
		MaxSync:   *maxSync,
		SyncCost:  *syncCost,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "pluralityd:", err)
		os.Exit(1)
	}
}

// run binds the listener and serves until ctx is cancelled.
func run(ctx context.Context, addr string, opts service.Options) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serve(ctx, ln, opts)
}

// serve serves until ctx is cancelled, then drains: the listener stops
// accepting, in-flight handlers get a grace period, and the service
// cancels every job (in-flight replicates finish; see mc.Pool).
func serve(ctx context.Context, ln net.Listener, opts service.Options) error {
	svc := service.New(opts)
	httpSrv := &http.Server{Handler: svc}

	errc := make(chan error, 1)
	go func() {
		log.Printf("pluralityd: listening on %s (workers=%d executors=%d backlog=%d)",
			ln.Addr(), opts.Workers, opts.Executors, opts.Backlog)
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Print("pluralityd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	svc.Close()
	if errors.Is(err, context.DeadlineExceeded) {
		// Stragglers (e.g. a follow stream on a job that never ends) are
		// cut off by Close cancelling their jobs; report a clean exit.
		err = nil
	}
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
