// Command pluralityd is the long-running simulation service: an
// HTTP/JSON daemon that accepts plurality-consensus jobs, executes their
// replicates on the process-wide internal/mc worker pool, and serves
// per-replicate results as JSONL. Unlike the one-shot CLIs (cmd/plurality,
// cmd/sweep) it keeps the alloc-free engines and the replicate-parallel
// pool hot across requests.
//
//	pluralityd -addr :8080 -workers 8 -executors 2 -backlog 16 -data-dir /var/lib/pluralityd
//
//	# submit a job and wait for the result
//	curl -s 'localhost:8080/v1/jobs?wait=1' -d '{"n": 100000, "k": 8, "seed": 1, "replicates": 20}'
//
//	# submit asynchronously, poll, stream records
//	curl -s localhost:8080/v1/jobs -d '{"engine": "sampled", "n": 1000000, "k": 8, "seed": 1, "replicates": 100}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -sN 'localhost:8080/v1/jobs/j1/records?follow=1'
//
// Results are deterministic: a job's JSONL records are a pure function of
// its spec (see internal/service), so replaying a spec — on any -workers
// setting — reproduces the bytes. With -data-dir the determinism extends
// across crashes: jobs are journaled, a restarted daemon resumes every
// interrupted job from its completed replicate prefix, and the final
// record stream is byte-identical to a crash-free run (DESIGN.md §9).
//
// Observability (DESIGN.md §10): GET /metrics serves Prometheus text
// exposition, GET /v1/events streams job lifecycle + progress as SSE,
// and GET / serves a live dashboard rendered off that stream. Profiling
// is opt-in via -pprof-addr, which serves net/http/pprof on a separate
// listener only — the API address never exposes /debug/pprof.
//
// Shutdown is two-stage: the first SIGTERM/SIGINT starts a graceful
// drain (new submissions get 503 + Retry-After, in-flight replicates
// finish, the journal gets its clean-shutdown marker) bounded by
// -drain-timeout; a second signal forces an immediate exit(1), leaving
// the journal dirty so the next start replays exactly as after a crash.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"plurality/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "replicate-pool parallelism (0 = GOMAXPROCS)")
		executors    = flag.Int("executors", 2, "async jobs executing concurrently")
		backlog      = flag.Int("backlog", 16, "async jobs admitted beyond the executing ones (full backlog = HTTP 429)")
		maxSync      = flag.Int("max-sync", 4, "synchronous submissions executing concurrently")
		syncCost     = flag.Int64("sync-cost", 0, "cost threshold for the auto-sync path in agent updates (0 = default)")
		dataDir      = flag.String("data-dir", "", "journal directory for crash-survivable jobs (empty = in-memory only)")
		retain       = flag.Int("retain", 0, "terminal jobs kept in memory before LRU eviction (0 = default 1024, negative = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline after the first SIGTERM/SIGINT")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (empty = disabled; never exposed on -addr)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pluralityd: pprof listener:", err)
			os.Exit(1)
		}
		log.Printf("pluralityd: pprof on %s (profiles at /debug/pprof/)", pln.Addr())
		go func() { _ = http.Serve(pln, pprofMux()) }()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		cancel()
		<-sigc
		log.Print("pluralityd: second signal — exiting without draining")
		os.Exit(1)
	}()

	if err := run(ctx, *addr, service.Options{
		Workers:   *workers,
		Executors: *executors,
		Backlog:   *backlog,
		MaxSync:   *maxSync,
		SyncCost:  *syncCost,
		DataDir:   *dataDir,
		Retain:    *retain,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "pluralityd:", err)
		os.Exit(1)
	}
}

// pprofMux is the profiling surface served only on -pprof-addr: a
// dedicated mux (never http.DefaultServeMux, never the API handler), so
// the main listener cannot leak /debug/pprof no matter what packages
// register on the default mux.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// run binds the listener and serves until ctx is cancelled.
func run(ctx context.Context, addr string, opts service.Options, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serve(ctx, ln, opts, drainTimeout)
}

// serve serves until ctx is cancelled, then drains gracefully: new
// submissions are refused with 503 while the status endpoints keep
// answering, every job is cancelled so in-flight replicates finish and
// are journaled, and — within drainTimeout — the journal is closed with
// its clean-shutdown marker. On a blown deadline the marker is withheld
// and the next start replays the journal exactly as after a crash.
func serve(ctx context.Context, ln net.Listener, opts service.Options, drainTimeout time.Duration) error {
	svc, err := service.New(opts)
	if err != nil {
		ln.Close()
		return err
	}
	httpSrv := &http.Server{Handler: svc}

	errc := make(chan error, 1)
	go func() {
		log.Printf("pluralityd: listening on %s (workers=%d executors=%d backlog=%d data-dir=%q)",
			ln.Addr(), opts.Workers, opts.Executors, opts.Backlog, opts.DataDir)
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("pluralityd: draining (submissions get 503, deadline %s)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		// The journal stays dirty on purpose: the next start resumes the
		// jobs this drain could not finish.
		log.Printf("pluralityd: %v (journal left dirty; next start resumes)", err)
	} else {
		log.Print("pluralityd: drained cleanly")
	}
	err = httpSrv.Shutdown(drainCtx)
	svc.Close()
	if errors.Is(err, context.DeadlineExceeded) {
		// Stragglers (e.g. a follow stream on a job that never ends) are
		// cut off by Close cancelling their jobs; report a clean exit.
		err = nil
	}
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
