package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"plurality/internal/service"
)

// TestMain doubles as the daemon entry point for the subprocess
// lifecycle tests: when re-executed with PLURALITYD_TEST_CHILD=1 the
// test binary runs main() — real flags, real signal handling, real
// os.Exit — so the tests below exercise the exact code path a
// production SIGTERM or SIGKILL hits.
func TestMain(m *testing.M) {
	if os.Getenv("PLURALITYD_TEST_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one pluralityd child process under test.
type daemon struct {
	cmd    *exec.Cmd
	base   string        // http://host:port
	pprof  string        // http://host:port of the -pprof-addr listener, if any
	exited chan struct{} // closed once the child has been reaped
	stderr *bytes.Buffer
}

// startDaemon re-executes the test binary as pluralityd with the given
// extra flags, waits for its "listening on" line, and returns a handle.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PLURALITYD_TEST_CHILD=1")
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, exited: make(chan struct{}), stderr: &bytes.Buffer{}}
	t.Cleanup(func() { cmd.Process.Kill(); <-d.exited })

	addrc := make(chan string, 1)
	pprofc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.stderr.WriteString(line + "\n")
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.Index(rest, " "); j >= 0 {
					select {
					case addrc <- rest[:j]:
					default:
					}
				}
			}
			if i := strings.Index(line, "pprof on "); i >= 0 {
				rest := line[i+len("pprof on "):]
				if j := strings.Index(rest, " "); j >= 0 {
					select {
					case pprofc <- rest[:j]:
					default:
					}
				}
			}
		}
		cmd.Wait()
		close(d.exited)
	}()
	select {
	case addr := <-addrc:
		d.base = "http://" + addr
		// The pprof line (if -pprof-addr was given) is logged before the
		// listening line, so it is already buffered by now.
		select {
		case p := <-pprofc:
			d.pprof = "http://" + p
		default:
		}
	case <-d.exited:
		t.Fatalf("daemon exited before listening: %v\n%s", cmd.ProcessState, d.stderr.Bytes())
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address\n%s", d.stderr.Bytes())
	}
	return d
}

// wait blocks until the child exits and returns its exit code.
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	select {
	case <-d.exited:
		return d.cmd.ProcessState.ExitCode()
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not exit\n%s", d.stderr.Bytes())
		return -1
	}
}

func (d *daemon) signal(t *testing.T, sig os.Signal) {
	t.Helper()
	if err := d.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
}

// slowJob is a spec whose replicates take long enough that a signal
// lands while the job is demonstrably mid-flight: bias "0" never
// resolves, so every replicate runs all max_rounds rounds.
const slowJob = `{"rule": "3majority", "engine": "sampled", "n": 50000, "k": 2,
	"bias": "0", "seed": 21, "replicates": 100, "max_rounds": 30}`

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func getInfo(t *testing.T, base, id string) service.JobInfo {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info service.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// waitRecords polls until the job has at least n records, returning the
// latest info.
func waitRecords(t *testing.T, base, id string, n int) service.JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		info := getInfo(t, base, id)
		if info.Records >= n || info.State.Terminal() {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %d records", id, info.Records)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitTerminal(t *testing.T, base, id string) service.JobInfo {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		info := getInfo(t, base, id)
		if info.State.Terminal() {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, info)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getRecords(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/records")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("records fetch: status %d err %v", resp.StatusCode, err)
	}
	return b
}

// TestSIGKILLRestartResumes is the tentpole claim end to end: kill -9 a
// daemon mid-job, restart it on the same data dir, and the job — same
// ID — finishes with a record stream byte-identical to a run that was
// never interrupted.
func TestSIGKILLRestartResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()

	d := startDaemon(t, "-data-dir", dir, "-workers", "2")
	status, body := postJSON(t, d.base+"/v1/jobs", slowJob)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", status, body)
	}
	var sub service.JobInfo
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	info := waitRecords(t, d.base, sub.ID, 3)
	if info.State.Terminal() {
		t.Fatalf("job finished before the kill; use a slower spec (%+v)", info)
	}
	d.signal(t, syscall.SIGKILL)
	if code := d.wait(t); code == 0 {
		t.Fatal("SIGKILL produced exit code 0")
	}

	d2 := startDaemon(t, "-data-dir", dir, "-workers", "2")
	info = waitTerminal(t, d2.base, sub.ID)
	if info.State != service.StateDone || info.ID != sub.ID {
		t.Fatalf("resumed job: %+v", info)
	}
	got := getRecords(t, d2.base, sub.ID)

	// Baseline: the same spec run in-process, never interrupted.
	svc, err := service.New(service.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	status, body = postJSON(t, ts.URL+"/v1/jobs", slowJob)
	if status != http.StatusAccepted {
		t.Fatalf("baseline submit: status %d body %s", status, body)
	}
	var ref service.JobInfo
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ts.URL, ref.ID)
	want := getRecords(t, ts.URL, ref.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed records diverge from crash-free run: %d vs %d bytes", len(got), len(want))
	}
}

// TestSIGTERMDrainsAndExitsZero: one SIGTERM refuses new work, finishes
// the drain, writes the clean-shutdown marker as the journal's final
// entry, and exits 0.
func TestSIGTERMDrainsAndExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	d := startDaemon(t, "-data-dir", dir, "-drain-timeout", "30s")

	// A quick job that completes before the drain, so the journal has
	// real content under the marker.
	status, body := postJSON(t, d.base+"/v1/jobs?wait=1",
		`{"n": 100000, "k": 8, "seed": 1, "replicates": 3, "max_rounds": 2000}`)
	if status != http.StatusOK {
		t.Fatalf("sync job: status %d body %s", status, body)
	}

	d.signal(t, syscall.SIGTERM)
	if code := d.wait(t); code != 0 {
		t.Fatalf("graceful shutdown exited %d\n%s", code, d.stderr.Bytes())
	}

	meta, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(meta), "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"shutdown"`) {
		t.Fatalf("journal's last line is %q, want the clean-shutdown marker", last)
	}
}

// TestDoubleSIGTERMForcesExit: a second signal during a long drain
// abandons it immediately with exit code 1, leaving the journal dirty.
func TestDoubleSIGTERMForcesExit(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	// One worker and a spec whose single replicate runs for seconds
	// (agent-level engine, large n, bias "0" so it never resolves): the
	// drain must wait for it, keeping the daemon alive for the second
	// signal. The drain deadline itself is far longer than the test.
	d := startDaemon(t, "-data-dir", dir, "-workers", "1", "-drain-timeout", "5m")
	status, body := postJSON(t, d.base+"/v1/jobs",
		`{"rule": "3majority", "engine": "sampled", "n": 10000000, "k": 2,
		  "bias": "0", "seed": 7, "replicates": 4, "max_rounds": 2000}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", status, body)
	}
	var sub service.JobInfo
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	// Wait until the replicate is actually executing.
	deadline := time.Now().Add(30 * time.Second)
	for getInfo(t, d.base, sub.ID).State != service.StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	d.signal(t, syscall.SIGTERM)
	// healthz keeps answering during the drain; wait for the flag so the
	// second signal provably lands mid-drain.
	deadline = time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		var h struct {
			Draining bool `json:"draining"`
		}
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
		}
		if err == nil && h.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.signal(t, syscall.SIGTERM)
	if code := d.wait(t); code != 1 {
		t.Fatalf("forced shutdown exited %d, want 1\n%s", code, d.stderr.Bytes())
	}

	// The journal was left dirty: a replay does not read clean, so the
	// next start resumes the interrupted job.
	meta, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(meta), `"shutdown"`) {
		t.Fatal("forced exit still wrote the clean-shutdown marker")
	}
}
