package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"plurality/internal/service"
)

// TestServeLifecycle boots the daemon on an ephemeral port, round-trips
// one synchronous job, and checks that cancelling the context shuts the
// listener down cleanly. The full API behavior is covered by the
// internal/service httptest suite; this is the wiring smoke test.
func TestServeLifecycle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, service.Options{Workers: 2}, 10*time.Second) }()
	base := "http://" + ln.Addr().String()

	var resp *http.Response
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp.Body.Close()

	resp, err = http.Post(base+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"n": 100000, "k": 8, "seed": 1, "replicates": 3, "max_rounds": 2000}`))
	if err != nil {
		t.Fatal(err)
	}
	var info service.JobInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || info.State != service.StateDone || info.Records != 3 {
		t.Fatalf("sync job: status %d, info %+v", resp.StatusCode, info)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit after context cancellation")
	}
	if _, err := http.Get(fmt.Sprintf("%s/healthz", base)); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
