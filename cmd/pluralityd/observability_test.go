package main

// Subprocess tests of the observability surface against a real daemon:
// the CI metrics smoke (scrape → kill -9 → restart → re-scrape, with
// every scrape certified by the strict in-repo parser), SIGTERM drain
// as seen by a connected SSE client, the embedded dashboard, and the
// pprof listener isolation.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"plurality/internal/service"
	"plurality/internal/service/promtext"
)

// scrapeDaemon fetches and certifies /metrics from a live daemon.
func scrapeDaemon(t *testing.T, base string) map[string]*promtext.Family {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d err %v", resp.StatusCode, err)
	}
	fams, err := promtext.Parse(raw)
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, raw)
	}
	if err := promtext.Validate(fams); err != nil {
		t.Fatalf("scrape fails validation: %v\n%s", err, raw)
	}
	return fams
}

func counter(t *testing.T, fams map[string]*promtext.Family, family string, labels map[string]string) float64 {
	t.Helper()
	f, ok := fams[family]
	if !ok {
		t.Fatalf("scrape has no family %q", family)
	}
	v, _ := f.Get(labels)
	return v
}

// TestMetricsSmokeAcrossRestart is the CI metrics smoke: boot, run a
// job, scrape twice (counters must be monotone within one process),
// kill -9 mid-job, restart on the same data dir, and after resume
// require executed + resumed replicates to sum to the job's replicate
// count exactly — no double-counted work across the crash.
func TestMetricsSmokeAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	d := startDaemon(t, "-data-dir", dir, "-workers", "2")

	status, body := postJSON(t, d.base+"/v1/jobs", slowJob)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", status, body)
	}
	var sub service.JobInfo
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	labels := map[string]string{"engine": "sampled", "rule": "3majority"}
	monotone := []struct {
		family string
		labels map[string]string
	}{
		{"pluralityd_replicates_total", labels},
		{"pluralityd_rounds_total", labels},
		{"pluralityd_journal_fsyncs_total", nil},
		{"pluralityd_journal_bytes_total", nil},
		{"pluralityd_jobs_submitted_total", map[string]string{"path": "async"}},
	}

	waitRecords(t, d.base, sub.ID, 3)
	first := scrapeDaemon(t, d.base)
	// Records >= 18 with the default SyncEvery of 16 guarantees at least
	// one fsynced batch survives the SIGKILL.
	info := waitRecords(t, d.base, sub.ID, 18)
	if info.State.Terminal() {
		t.Fatalf("job finished before the kill; use a slower spec (%+v)", info)
	}
	second := scrapeDaemon(t, d.base)
	for _, m := range monotone {
		a, b := counter(t, first, m.family, m.labels), counter(t, second, m.family, m.labels)
		if b < a {
			t.Errorf("%s went backwards within one process: %v then %v", m.family, a, b)
		}
	}
	if got := counter(t, second, "pluralityd_replicates_total", labels); got < 18 {
		t.Errorf("replicates_total = %v after 18 records, want >= 18", got)
	}

	d.signal(t, syscall.SIGKILL)
	if code := d.wait(t); code == 0 {
		t.Fatal("SIGKILL produced exit code 0")
	}

	d2 := startDaemon(t, "-data-dir", dir, "-workers", "2")
	if info := waitTerminal(t, d2.base, sub.ID); info.State != service.StateDone {
		t.Fatalf("resumed job: %+v", info)
	}
	final := scrapeDaemon(t, d2.base)
	executed := counter(t, final, "pluralityd_replicates_total", labels)
	resumed := counter(t, final, "pluralityd_replicates_resumed_total", labels)
	if executed+resumed != 100 {
		t.Fatalf("executed (%v) + resumed (%v) = %v, want exactly 100: replicates were double-counted or lost across the restart",
			executed, resumed, executed+resumed)
	}
	if resumed < 16 {
		t.Fatalf("resumed = %v, want >= 16 (the fsynced prefix was re-executed instead of adopted)", resumed)
	}
}

// TestSIGTERMDrainWithSSEClient: a client streaming /v1/events through
// a graceful drain receives a terminal shutdown event and a clean
// end-of-stream — no reset, no truncated frame — while the daemon still
// exits 0.
func TestSIGTERMDrainWithSSEClient(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	d := startDaemon(t, "-data-dir", dir, "-drain-timeout", "30s")

	resp, err := http.Get(d.base + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/events: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	events := make(chan string, 64)
	scanErr := make(chan error, 1)
	go func() {
		for sc.Scan() {
			if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
				events <- ev
			}
		}
		scanErr <- sc.Err()
		close(events)
	}()
	waitEvent := func(want string) {
		t.Helper()
		for {
			select {
			case ev, ok := <-events:
				if !ok {
					t.Fatalf("stream ended before %q event", want)
				}
				if ev == want {
					return
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("no %q event within 30s", want)
			}
		}
	}
	waitEvent("hello")

	// Traffic before the drain, so the shutdown event terminates a live
	// stream rather than an idle one.
	status, body := postJSON(t, d.base+"/v1/jobs?wait=1",
		`{"n": 100000, "k": 8, "seed": 5, "replicates": 3, "max_rounds": 2000}`)
	if status != http.StatusOK {
		t.Fatalf("sync job: status %d body %s", status, body)
	}
	waitEvent("progress")

	d.signal(t, syscall.SIGTERM)
	waitEvent("shutdown")
	// After the terminal event the stream must end cleanly: scanner
	// drained with no error (EOF, not a connection reset).
	select {
	case err := <-scanErr:
		if err != nil {
			t.Fatalf("stream ended uncleanly after shutdown event: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream never closed after the shutdown event")
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("drain with a connected SSE client exited %d\n%s", code, d.stderr.Bytes())
	}
}

// TestDashboardServed: the embedded dashboard answers on exactly the
// root path; everything else stays API-clean.
func TestDashboardServed(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	d := startDaemon(t)
	resp, err := http.Get(d.base + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /: status %d err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("GET /: Content-Type %q, want text/html", ct)
	}
	if !strings.Contains(string(body), "EventSource(\"/v1/events\")") {
		t.Fatal("dashboard HTML does not subscribe to /v1/events")
	}
	resp, err = http.Get(d.base + "/nosuchpage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nosuchpage: status %d, want 404 (dashboard must match only the exact root)", resp.StatusCode)
	}
}

// TestPprofListenerIsolation: -pprof-addr serves the profiling surface
// on its own listener, and the API address never exposes /debug/pprof —
// with or without the flag.
func TestPprofListenerIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	d := startDaemon(t, "-pprof-addr", "127.0.0.1:0")
	if d.pprof == "" {
		t.Fatalf("daemon never announced its pprof address\n%s", d.stderr.Bytes())
	}
	resp, err := http.Get(d.pprof + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET pprof index: status %d err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
	// The API listener must not serve any of it.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		resp, err := http.Get(d.base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on the API address: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Without the flag there is no pprof surface at all.
	plain := startDaemon(t)
	if plain.pprof != "" {
		t.Fatalf("daemon without -pprof-addr announced a pprof listener %q", plain.pprof)
	}
	resp, err = http.Get(plain.base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ without the flag: status %d, want 404", resp.StatusCode)
	}
}
