package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"plurality/internal/colorcfg"
)

func TestRecorderStats(t *testing.T) {
	r := &Recorder{MemEvery: -1}
	cfg := colorcfg.Config{3, 10, 7, 0}
	r.ObserveRound(1, 25, 500, cfg)
	if r.Total() != 1 || r.Len() != 1 {
		t.Fatalf("Total=%d Len=%d, want 1,1", r.Total(), r.Len())
	}
	st := r.At(0)
	if st.Round != 1 || st.WallNs != 500 {
		t.Errorf("round/wall = %d/%d, want 1/500", st.Round, st.WallNs)
	}
	if st.NsPerAgent != 20 {
		t.Errorf("NsPerAgent = %v, want 20", st.NsPerAgent)
	}
	if st.CMax != 10 || st.CSecond != 7 || st.Bias != 3 || st.Plurality != 1 {
		t.Errorf("cmax/csecond/bias/plur = %d/%d/%d/%d, want 10/7/3/1", st.CMax, st.CSecond, st.Bias, st.Plurality)
	}
	// n=25 includes 5 agents outside the colored counts (e.g. undecided);
	// minority mass is measured against the full population.
	if st.MinorityMass != 15 {
		t.Errorf("MinorityMass = %d, want 15", st.MinorityMass)
	}
	if st.Support != 3 {
		t.Errorf("Support = %d, want 3", st.Support)
	}
	if st.HeapAlloc != 0 {
		t.Errorf("HeapAlloc sampled with MemEvery<0")
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := &Recorder{Cap: 4, MemEvery: -1}
	cfg := colorcfg.Config{5, 5}
	for round := 1; round <= 10; round++ {
		r.ObserveRound(round, 10, int64(round), cfg)
	}
	if r.Total() != 10 || r.Len() != 4 || r.Dropped() != 6 {
		t.Fatalf("Total/Len/Dropped = %d/%d/%d, want 10/4/6", r.Total(), r.Len(), r.Dropped())
	}
	got := r.Rounds(nil)
	for i, st := range got {
		if want := 7 + i; st.Round != want {
			t.Errorf("retained[%d].Round = %d, want %d", i, st.Round, want)
		}
	}
	if r.WallNs() != 55 {
		t.Errorf("WallNs = %d, want 55", r.WallNs())
	}
	s := r.Summarize()
	if s.Rounds != 10 || s.Retained != 4 || s.Dropped != 6 || s.WallNs != 55 {
		t.Errorf("summary = %+v", s)
	}
}

func TestRecorderMemSampling(t *testing.T) {
	r := &Recorder{MemEvery: 3}
	cfg := colorcfg.Config{1, 2}
	for round := 1; round <= 7; round++ {
		r.ObserveRound(round, 3, 1, cfg)
	}
	// Rounds 1, 4, 7 (total counter 0, 3, 6) carry samples.
	for i, want := range []bool{true, false, false, true, false, false, true} {
		if got := r.At(i).HeapAlloc != 0; got != want {
			t.Errorf("round %d sampled = %v, want %v", i+1, got, want)
		}
	}
	if r.HeapMax() == 0 {
		t.Errorf("HeapMax = 0 after sampling")
	}
}

// TestRecorderSteadyStateAllocs pins the observer-attached hot path: after
// the first round allocates the ring, ObserveRound must be alloc-free even
// on rounds that sample ReadMemStats.
func TestRecorderSteadyStateAllocs(t *testing.T) {
	r := &Recorder{Cap: 64, MemEvery: 1}
	cfg := make(colorcfg.Config, 32)
	for i := range cfg {
		cfg[i] = int64(i)
	}
	r.ObserveRound(1, 1000, 123, cfg)
	round := 1
	avg := testing.AllocsPerRun(100, func() {
		round++
		r.ObserveRound(round, 1000, 123, cfg)
	})
	if avg != 0 {
		t.Errorf("ObserveRound allocates %.1f allocs/op in steady state, want 0", avg)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for rep := 0; rep < 2; rep++ {
		r := &Recorder{MemEvery: -1}
		cfg := colorcfg.Config{int64(90 + rep), 10}
		for round := 1; round <= 3; round++ {
			r.ObserveRound(round, 100, int64(100*round), cfg)
		}
		h := Header{Engine: "multinomial", Rule: "3majority", N: 100, K: 2, Seed: uint64(7 + rep), Job: "j", Rep: rep}
		if err := r.WriteTrace(&buf, h); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
	}
	traces, skipped, err := ReadTraces(bytes.NewReader(buf.Bytes()))
	if err != nil || skipped != 0 {
		t.Fatalf("ReadTraces err=%v skipped=%d", err, skipped)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	for rep, tr := range traces {
		if tr.Header.Rep != rep || tr.Header.Seed != uint64(7+rep) || tr.Header.Engine != "multinomial" {
			t.Errorf("trace %d header = %+v", rep, tr.Header)
		}
		if len(tr.Rounds) != 3 {
			t.Fatalf("trace %d: %d rounds, want 3", rep, len(tr.Rounds))
		}
		if tr.Rounds[2].CMax != int64(90+rep) || tr.Rounds[2].WallNs != 300 {
			t.Errorf("trace %d round 3 = %+v", rep, tr.Rounds[2])
		}
		if tr.Summary == nil || tr.Summary.Rounds != 3 || tr.Summary.WallNs != 600 {
			t.Errorf("trace %d summary = %+v", rep, tr.Summary)
		}
	}
}

func TestReadTracesTolerant(t *testing.T) {
	in := strings.Join([]string{
		`{"type":"round","round":1,"wall_ns":5}`, // round before any header: implicit run
		`not json at all`,
		`{"type":"run","engine":"e","n":10,"k":2}`,
		`{"type":"round","round":1,"wall_ns":7}`,
		`{"type":"mystery","round":2}`,
		`{"type":"round","round":"oops"}`, // wrong field type
		`{"type":"summary","rounds":1,"wall_ns":7}`,
		`{"type":"round","wall_ns`, // torn tail
	}, "\n")
	traces, skipped, err := ReadTraces(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadTraces: %v", err)
	}
	if skipped != 4 {
		t.Errorf("skipped = %d, want 4", skipped)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	if len(traces[0].Rounds) != 1 || traces[0].Header.N != 0 {
		t.Errorf("implicit run = %+v", traces[0])
	}
	if traces[1].Header.Engine != "e" || len(traces[1].Rounds) != 1 || traces[1].Summary == nil {
		t.Errorf("second run = %+v", traces[1])
	}
}

func TestReadTracesOverlongLine(t *testing.T) {
	in := `{"type":"run","engine":"e","n":1,"k":1}` + "\n" +
		`{"type":"round","round":1,"rule":"` + strings.Repeat("x", maxTraceLine+10) + `"}`
	traces, skipped, err := ReadTraces(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadTraces: %v", err)
	}
	if len(traces) != 1 || skipped != 1 {
		t.Errorf("traces=%d skipped=%d, want 1,1", len(traces), skipped)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := &Tracer{Cap: 8, MemEvery: -1}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := 0; s < 50; s++ {
				seed := uint64(g*50 + s)
				rec := tr.Recorder(seed)
				rec.ObserveRound(1, 10, 1, colorcfg.Config{10})
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 400 {
		t.Fatalf("Len = %d, want 400", tr.Len())
	}
	for seed := uint64(0); seed < 400; seed++ {
		rec := tr.Take(seed)
		if rec == nil || rec.Total() != 1 {
			t.Fatalf("Take(%d) = %v", seed, rec)
		}
	}
	if tr.Take(99999) != nil {
		t.Errorf("Take of unknown seed should be nil")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after draining, want 0", tr.Len())
	}
}

func TestBegan(t *testing.T) {
	if !Began(nil).IsZero() {
		t.Errorf("Began(nil) should be the zero time")
	}
	if Began(&Recorder{}).IsZero() {
		t.Errorf("Began(observer) should read the clock")
	}
}
