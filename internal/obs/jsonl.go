// JSONL trace serialization. A trace file is a stream of one-object
// lines, each tagged with a "type" field:
//
//	{"type":"run", "engine":..., "rule":..., "n":..., "k":..., "seed":..., "job":..., "rep":...}
//	{"type":"round", "round":1, "wall_ns":..., "ns_per_agent":..., "c_max":..., "c_second":..., "bias":..., ...}
//	...
//	{"type":"summary", "rounds":..., "retained":..., "dropped":..., "wall_ns":..., "ns_per_agent":..., "heap_max":...}
//
// Round lines reuse the trace package's record shape (the same field
// names as trace.WriteCSV's columns), so any consumer of the CSV trace
// format can read the convergence columns here unchanged. Multiple runs
// may be concatenated in one file (cmd/sweep and pluralityd's
// per-replicate traces do exactly that); ReadTraces splits them back
// apart. The reader is tolerant by construction — torn tails, corrupt
// lines and unknown record types are counted and skipped, never fatal —
// because trace files are written by processes that may crash mid-line.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
)

// Header identifies the run a trace belongs to.
type Header struct {
	Engine string `json:"engine,omitempty"`
	Rule   string `json:"rule,omitempty"`
	N      int64  `json:"n"`
	K      int    `json:"k"`
	Seed   uint64 `json:"seed,omitempty"`
	// Job/Rep tie a trace back to an mc job: the job name and the
	// replicate index within it.
	Job string `json:"job,omitempty"`
	Rep int    `json:"rep,omitempty"`
}

// Summary closes a run's trace with its aggregate telemetry.
type Summary struct {
	// Rounds is the total observed; Retained is how many round lines
	// precede the summary (the ring bound); Dropped = Rounds - Retained.
	Rounds     int     `json:"rounds"`
	Retained   int     `json:"retained"`
	Dropped    int     `json:"dropped,omitempty"`
	WallNs     int64   `json:"wall_ns"`
	NsPerAgent float64 `json:"ns_per_agent"`
	HeapMax    uint64  `json:"heap_max,omitempty"`
}

// Line wrappers: the embedded struct's fields are flattened alongside
// the type tag by encoding/json.
type (
	headerLine struct {
		Type string `json:"type"`
		Header
	}
	roundLine struct {
		Type string `json:"type"`
		RoundStats
	}
	summaryLine struct {
		Type string `json:"type"`
		Summary
	}
)

// Summarize builds the closing summary for the recorder's current
// contents.
func (r *Recorder) Summarize() Summary {
	s := Summary{
		Rounds:   r.total,
		Retained: r.Len(),
		Dropped:  r.Dropped(),
		WallNs:   r.wallNs,
		HeapMax:  r.heapMax,
	}
	if r.total > 0 && r.n > 0 {
		s.NsPerAgent = float64(r.wallNs) / float64(r.total) / float64(r.n)
	}
	return s
}

// WriteTrace serializes the recorder as one JSONL run: header, the
// retained rounds oldest-first, then a summary. The recorder is not
// reset; callers streaming many runs into one file call WriteTrace once
// per run.
func (r *Recorder) WriteTrace(w io.Writer, h Header) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(headerLine{Type: "run", Header: h}); err != nil {
		return err
	}
	for i, n := 0, r.Len(); i < n; i++ {
		if err := enc.Encode(roundLine{Type: "round", RoundStats: r.At(i)}); err != nil {
			return err
		}
	}
	if err := enc.Encode(summaryLine{Type: "summary", Summary: r.Summarize()}); err != nil {
		return err
	}
	return bw.Flush()
}

// Trace is one parsed run from a JSONL trace stream.
type Trace struct {
	Header  Header
	Rounds  []RoundStats
	Summary *Summary
}

// maxTraceLine bounds a single input line; anything longer is treated
// as corrupt (a well-formed round line is a few hundred bytes).
const maxTraceLine = 1 << 20

// ReadTraces parses a JSONL trace stream into its runs. It never
// panics and never fails on malformed content: corrupt or torn lines,
// unknown record types, and an over-long line (which also terminates
// the scan, since framing is lost) are counted in skipped and dropped.
// Round/summary lines arriving before any "run" header open an
// implicit run with a zero Header. The returned error is only ever an
// underlying read error.
func ReadTraces(r io.Reader) (traces []Trace, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	var cur *Trace
	open := func() *Trace {
		if cur == nil {
			traces = append(traces, Trace{})
			cur = &traces[len(traces)-1]
		}
		return cur
	}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(line, &probe) != nil {
			skipped++
			continue
		}
		switch probe.Type {
		case "run":
			var h headerLine
			if json.Unmarshal(line, &h) != nil {
				skipped++
				continue
			}
			traces = append(traces, Trace{Header: h.Header})
			cur = &traces[len(traces)-1]
		case "round":
			var rl roundLine
			if json.Unmarshal(line, &rl) != nil {
				skipped++
				continue
			}
			t := open()
			t.Rounds = append(t.Rounds, rl.RoundStats)
		case "summary":
			var sl summaryLine
			if json.Unmarshal(line, &sl) != nil {
				skipped++
				continue
			}
			t := open()
			s := sl.Summary
			t.Summary = &s
			cur = nil // a summary closes the run
		default:
			skipped++
		}
	}
	if serr := sc.Err(); serr != nil {
		if errors.Is(serr, bufio.ErrTooLong) {
			return traces, skipped + 1, nil
		}
		return traces, skipped, serr
	}
	return traces, skipped, nil
}
