package obs

import "sync"

// Tracer hands out per-replicate Recorders to the concurrently
// executing replicates of an mc job, keyed by the replicate's private
// rng seed (the one value both the job closure and the serialized
// result path can see — mc.Record carries it back as rec.Seed).
//
// Usage: the job's New closure calls Recorder(seed) and attaches the
// result as the run's observer; the coordinator's serialized
// Sink/OnProgress hook calls Take(rec.Seed) to claim the finished
// recorder and flush it. Recorder/Take are safe for concurrent use;
// each individual Recorder is still owned by exactly one goroutine at
// a time (the replicate until it finishes, then the coordinator).
type Tracer struct {
	// Cap / MemEvery configure every Recorder handed out (Recorder
	// semantics: zero means default, negative MemEvery disables).
	Cap      int
	MemEvery int

	mu sync.Mutex
	m  map[uint64]*Recorder
}

// Recorder returns the recorder for the replicate seeded with seed,
// creating it on first use.
func (t *Tracer) Recorder(seed uint64) *Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[uint64]*Recorder)
	}
	r := t.m[seed]
	if r == nil {
		r = &Recorder{Cap: t.Cap, MemEvery: t.MemEvery}
		t.m[seed] = r
	}
	return r
}

// Take removes and returns the recorder for seed, or nil if none was
// ever created (e.g. a resumed replicate that never ran this process).
func (t *Tracer) Take(seed uint64) *Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.m[seed]
	delete(t.m, seed)
	return r
}

// Len is the number of outstanding (not yet taken) recorders.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
