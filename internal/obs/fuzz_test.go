package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTraces pins the reader's tolerance contract: arbitrary bytes —
// torn lines, corrupt JSON, hostile field types, embedded NULs — must
// never panic and never surface an error from a non-erroring reader.
func FuzzReadTraces(f *testing.F) {
	f.Add([]byte(`{"type":"run","engine":"e","n":10,"k":2}` + "\n" +
		`{"type":"round","round":1,"wall_ns":7,"c_max":9}` + "\n" +
		`{"type":"summary","rounds":1,"wall_ns":7}` + "\n"))
	f.Add([]byte(`{"type":"round","round":1`))
	f.Add([]byte("\x00\xff{}\n{\"type\":\"round\"}\n"))
	f.Add([]byte(`{"type":"round","round":1e309}`))
	f.Add([]byte(strings.Repeat(`{"type":"run"}`+"\n", 100)))
	f.Add([]byte(`{"type":` + strings.Repeat("[", 1000)))
	f.Fuzz(func(t *testing.T, data []byte) {
		traces, _, err := ReadTraces(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadTraces returned error on in-memory input: %v", err)
		}
		// Sanity: every parsed round line consumed at least the bytes of
		// its minimal encoding, so the output cannot outgrow the input.
		total := 0
		for _, tr := range traces {
			total += len(tr.Rounds) + 1
		}
		if total > len(data) {
			t.Fatalf("parsed %d records from %d input bytes", total, len(data))
		}
	})
}
