// Package obs is the run-level telemetry layer: per-round wall-clock
// timing, convergence statistics and sampled memory readings for any
// engine, captured behind a strict zero-cost-when-off contract.
//
// The contract has three clauses, all load-bearing:
//
//  1. Detached is free. An engine with no observer pays exactly one
//     nil-check branch per Step — no time.Now, no allocation, no
//     indirect call. The engine hot-path budget (TestStepZeroAllocs,
//     the <50 ns/agent sparse target) is written against this state.
//  2. The observer sits outside the per-agent loop. ObserveRound fires
//     once per completed Step with the post-round configuration; it
//     never sees (and can never perturb) the inner sampling loops.
//  3. The observer consumes zero rng. Nothing it is handed can reach
//     the run's generator, so every golden trace stays byte-identical
//     with an observer attached — certified by
//     internal/validate.TraceBytesObserved against all committed
//     goldens.
//
// Recorder is the standard implementation: a bounded ring of per-round
// statistics (the trace package's record shape — c_max, c_second, bias,
// minority_mass, support, plurality — plus wall_ns, ns/agent and
// sampled runtime.ReadMemStats readings) that serializes to a JSONL
// trace (jsonl.go) consumed by cmd/tracereport and served by
// pluralityd's GET /v1/jobs/{id}/trace. Recorder.ObserveRound performs
// zero steady-state allocations, so it is safe to attach even to the
// n=10⁷ sparse benchmark (the CI overhead budget pins it within 2% of
// the detached run).
package obs

import (
	"runtime"
	"time"

	"plurality/internal/colorcfg"
)

// Observer receives one callback per completed engine round.
//
// Implementations must not retain cfg (it is the engine's live count
// array), must not consume any rng, and should return quickly — the
// callback runs on the engine's stepping goroutine, inside the round's
// measured wall time as seen by the caller above.
type Observer interface {
	// ObserveRound reports one completed round: the number of completed
	// rounds, the total agent count, the wall-clock nanoseconds the Step
	// took, and a read-only view of the post-round configuration.
	ObserveRound(round int, n int64, wallNs int64, cfg colorcfg.Config)
}

// RoundStats is one observed round. The convergence fields mirror
// trace.Point (and serialize under the same names as trace.WriteCSV's
// columns); the timing and memory fields are the telemetry this package
// adds on top.
type RoundStats struct {
	Round        int     `json:"round"`
	WallNs       int64   `json:"wall_ns"`
	NsPerAgent   float64 `json:"ns_per_agent"`
	CMax         int64   `json:"c_max"`
	CSecond      int64   `json:"c_second"`
	Bias         int64   `json:"bias"`
	MinorityMass int64   `json:"minority_mass"`
	Support      int     `json:"support"`
	Plurality    int     `json:"plurality"`
	// HeapAlloc/NumGC are non-zero only on rounds where the recorder
	// sampled runtime.ReadMemStats (every MemEvery-th round).
	HeapAlloc uint64 `json:"heap_alloc,omitempty"`
	NumGC     uint32 `json:"num_gc,omitempty"`
}

// Default recorder bounds.
const (
	// DefaultCap is the ring size: the most recent DefaultCap rounds are
	// retained; earlier ones are summarized (total count, cumulative wall
	// time, memory high-water) but dropped from the ring.
	DefaultCap = 4096
	// DefaultMemEvery is the runtime.ReadMemStats sampling stride.
	// ReadMemStats briefly stops the world, so it is amortized across
	// rounds instead of paid per round.
	DefaultMemEvery = 64
)

// Recorder is an Observer that captures RoundStats into a bounded ring
// buffer. The zero value is ready to use with the default bounds; set
// Cap / MemEvery before the first ObserveRound to change them. Not safe
// for concurrent use — one Recorder per engine.
type Recorder struct {
	// Cap bounds the retained rounds (0: DefaultCap). The ring is
	// allocated once, on the first ObserveRound; after that the recorder
	// performs zero allocations per round.
	Cap int
	// MemEvery is the ReadMemStats sampling stride (0: DefaultMemEvery;
	// negative: never sample).
	MemEvery int

	ring    []RoundStats
	total   int   // rounds observed, including dropped ones
	n       int64 // agent count of the observed engine (from the last round)
	wallNs  int64 // cumulative wall time across all observed rounds
	heapMax uint64
	numGC   uint32
	mem     runtime.MemStats
}

// ObserveRound implements Observer.
func (r *Recorder) ObserveRound(round int, n int64, wallNs int64, cfg colorcfg.Config) {
	if r.ring == nil {
		cap := r.Cap
		if cap <= 0 {
			cap = DefaultCap
		}
		r.ring = make([]RoundStats, cap)
	}
	var first, second int64
	var plur, support int
	for j, cj := range cfg {
		if cj > 0 {
			support++
		}
		if cj > first {
			second, first, plur = first, cj, j
		} else if cj > second {
			second = cj
		}
	}
	st := RoundStats{
		Round:        round,
		WallNs:       wallNs,
		NsPerAgent:   float64(wallNs) / float64(n),
		CMax:         first,
		CSecond:      second,
		Bias:         first - second,
		MinorityMass: n - first,
		Support:      support,
		Plurality:    plur,
	}
	if stride := r.memStride(); stride > 0 && r.total%stride == 0 {
		runtime.ReadMemStats(&r.mem)
		st.HeapAlloc = r.mem.HeapAlloc
		st.NumGC = r.mem.NumGC
		if r.mem.HeapAlloc > r.heapMax {
			r.heapMax = r.mem.HeapAlloc
		}
		r.numGC = r.mem.NumGC
	}
	r.ring[r.total%len(r.ring)] = st
	r.total++
	r.n = n
	r.wallNs += wallNs
}

func (r *Recorder) memStride() int {
	if r.MemEvery < 0 {
		return 0
	}
	if r.MemEvery == 0 {
		return DefaultMemEvery
	}
	return r.MemEvery
}

// Total is the number of rounds observed, including any dropped from
// the ring.
func (r *Recorder) Total() int { return r.total }

// Len is the number of rounds retained in the ring.
func (r *Recorder) Len() int {
	if r.total < len(r.ring) {
		return r.total
	}
	return len(r.ring)
}

// Dropped is the number of early rounds the ring has overwritten.
func (r *Recorder) Dropped() int { return r.total - r.Len() }

// At returns the i-th retained round, oldest first (i in [0, Len())).
func (r *Recorder) At(i int) RoundStats {
	return r.ring[(r.Dropped()+i)%len(r.ring)]
}

// Rounds appends the retained rounds, oldest first, to dst and returns
// the extended slice.
func (r *Recorder) Rounds(dst []RoundStats) []RoundStats {
	for i, n := 0, r.Len(); i < n; i++ {
		dst = append(dst, r.At(i))
	}
	return dst
}

// WallNs is the cumulative wall time of all observed rounds.
func (r *Recorder) WallNs() int64 { return r.wallNs }

// HeapMax is the high-water HeapAlloc across the memory samples taken
// so far (0 when sampling is disabled or no sample has fired yet).
func (r *Recorder) HeapMax() uint64 { return r.heapMax }

// Reset clears the recorder for reuse, keeping the allocated ring.
func (r *Recorder) Reset() {
	r.total, r.n, r.wallNs, r.heapMax, r.numGC = 0, 0, 0, 0, 0
}

// Began returns the current wall clock when an observer is attached and
// the zero time otherwise — the begin-timestamp helper engines call at
// the top of Step so a detached engine never reads the clock.
func Began(o Observer) time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}
