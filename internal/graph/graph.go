// Package graph provides the communication-topology substrate. The paper's
// model is the clique with uniform sampling (self included, with
// repetitions); Complete reproduces it exactly. The remaining topologies
// (cycle, torus, random regular, Erdős–Rényi, star) support the
// beyond-the-clique extension experiments.
package graph

import (
	"fmt"
	"math"

	"plurality/internal/rng"
)

// Graph is a static undirected topology over vertices [0, n). Engines only
// require uniform neighbor sampling; Degree and Neighbor expose the
// structure for tests and for exhaustive iteration.
//
// Deprecated as an engine-facing contract: the engine now consumes
// topo.NeighborSource, which has this exact method set — every Graph value
// satisfies it by plain interface conversion, so existing callers keep
// working, but new topology backends belong in internal/topo (see
// DESIGN.md §11 for the migration notes). This package remains the home
// of the small closed-form graphs the topo registry builds on.
type Graph interface {
	// Name identifies the topology in experiment tables.
	Name() string
	// N is the number of vertices.
	N() int64
	// Degree returns the number of neighbors of v (for Complete with
	// IncludeSelf, v counts itself).
	Degree(v int64) int64
	// Neighbor returns the i-th neighbor of v, 0 <= i < Degree(v).
	Neighbor(v, i int64) int64
	// SampleNeighbor returns a uniformly random neighbor of v.
	SampleNeighbor(v int64, r *rng.Rand) int64
}

// ----- complete graph -----

// Complete is the paper's topology: every agent can sample every agent.
// With IncludeSelf (the paper's convention) samples are uniform over all n
// vertices including the sampler; without it they are uniform over the
// other n-1.
type Complete struct {
	Vertices    int64
	IncludeSelf bool
}

// NewComplete returns the paper's clique (self included).
func NewComplete(n int64) Complete {
	if n <= 0 {
		panic("graph: Complete needs n > 0")
	}
	return Complete{Vertices: n, IncludeSelf: true}
}

// Name implements Graph.
func (g Complete) Name() string {
	if g.IncludeSelf {
		return "complete+self"
	}
	return "complete"
}

// N implements Graph.
func (g Complete) N() int64 { return g.Vertices }

// Degree implements Graph.
func (g Complete) Degree(int64) int64 {
	if g.IncludeSelf {
		return g.Vertices
	}
	return g.Vertices - 1
}

// Neighbor implements Graph.
func (g Complete) Neighbor(v, i int64) int64 {
	if g.IncludeSelf {
		return i
	}
	if i >= v {
		return i + 1
	}
	return i
}

// SampleNeighbor implements Graph.
func (g Complete) SampleNeighbor(v int64, r *rng.Rand) int64 {
	if g.IncludeSelf {
		return r.Int63n(g.Vertices)
	}
	u := r.Int63n(g.Vertices - 1)
	if u >= v {
		u++
	}
	return u
}

// ----- cycle -----

// Cycle is the n-vertex ring.
type Cycle struct {
	Vertices int64
}

// NewCycle returns a ring on n >= 3 vertices.
func NewCycle(n int64) Cycle {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	return Cycle{Vertices: n}
}

// Name implements Graph.
func (Cycle) Name() string { return "cycle" }

// N implements Graph.
func (g Cycle) N() int64 { return g.Vertices }

// Degree implements Graph.
func (Cycle) Degree(int64) int64 { return 2 }

// Neighbor implements Graph.
func (g Cycle) Neighbor(v, i int64) int64 {
	if i == 0 {
		return (v + 1) % g.Vertices
	}
	return (v - 1 + g.Vertices) % g.Vertices
}

// SampleNeighbor implements Graph.
func (g Cycle) SampleNeighbor(v int64, r *rng.Rand) int64 {
	return g.Neighbor(v, r.Int63n(2))
}

// UniformDegree implements topo's degree-class hint: every vertex has
// degree 2.
func (Cycle) UniformDegree() int64 { return 2 }

// ----- torus -----

// Torus is the rows×cols grid with wraparound (4-regular).
type Torus struct {
	Rows, Cols int64
}

// NewTorus returns a torus; both dimensions must be >= 3 so the four
// neighbors are distinct.
func NewTorus(rows, cols int64) Torus {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs rows, cols >= 3")
	}
	return Torus{Rows: rows, Cols: cols}
}

// Name implements Graph.
func (Torus) Name() string { return "torus" }

// N implements Graph.
func (g Torus) N() int64 { return g.Rows * g.Cols }

// Degree implements Graph.
func (Torus) Degree(int64) int64 { return 4 }

// Neighbor implements Graph.
func (g Torus) Neighbor(v, i int64) int64 {
	row, col := v/g.Cols, v%g.Cols
	switch i {
	case 0:
		col = (col + 1) % g.Cols
	case 1:
		col = (col - 1 + g.Cols) % g.Cols
	case 2:
		row = (row + 1) % g.Rows
	default:
		row = (row - 1 + g.Rows) % g.Rows
	}
	return row*g.Cols + col
}

// SampleNeighbor implements Graph.
func (g Torus) SampleNeighbor(v int64, r *rng.Rand) int64 {
	return g.Neighbor(v, r.Int63n(4))
}

// UniformDegree implements topo's degree-class hint: every vertex has
// degree 4 (both sides >= 3 keep the four neighbors distinct).
func (Torus) UniformDegree() int64 { return 4 }

// ----- star -----

// Star has vertex 0 as the hub adjacent to all leaves.
type Star struct {
	Vertices int64
}

// NewStar returns a star on n >= 2 vertices with hub 0.
func NewStar(n int64) Star {
	if n < 2 {
		panic("graph: Star needs n >= 2")
	}
	return Star{Vertices: n}
}

// Name implements Graph.
func (Star) Name() string { return "star" }

// N implements Graph.
func (g Star) N() int64 { return g.Vertices }

// Degree implements Graph.
func (g Star) Degree(v int64) int64 {
	if v == 0 {
		return g.Vertices - 1
	}
	return 1
}

// Neighbor implements Graph.
func (g Star) Neighbor(v, i int64) int64 {
	if v == 0 {
		return i + 1
	}
	return 0
}

// SampleNeighbor implements Graph.
func (g Star) SampleNeighbor(v int64, r *rng.Rand) int64 {
	if v == 0 {
		return 1 + r.Int63n(g.Vertices-1)
	}
	return 0
}

// ----- adjacency-list graphs (random regular, Erdős–Rényi) -----
//
// Determinism contract: NewRandomRegular and NewErdosRenyi draw every bit
// of randomness from the caller's *rng.Rand and nothing else (no maps are
// ranged over, no scheduling enters), so for a fixed seed the generated
// graph — offsets and adjacency arrays both — is byte-identical across
// runs, machines, and worker counts. Callers that persist records derived
// from a generated graph (e.g. service JobSpecs) must treat the generator
// seed as part of the record identity.
//
// These constructors remain for the legacy engine path and the golden
// traces pinned to their historical byte streams; new code should build
// topologies through the internal/topo registry, whose CSR store adds
// serialization, more families, and the engine's direct-slice fast path.

// AdjList is a general adjacency-list graph used by the random
// constructions. CSR layout: the neighbors of v are
// adj[offsets[v]:offsets[v+1]].
type AdjList struct {
	GraphName string
	Offsets   []int64
	Adj       []int64
}

// Name implements Graph.
func (g *AdjList) Name() string { return g.GraphName }

// N implements Graph.
func (g *AdjList) N() int64 { return int64(len(g.Offsets)) - 1 }

// Degree implements Graph.
func (g *AdjList) Degree(v int64) int64 { return g.Offsets[v+1] - g.Offsets[v] }

// Neighbor implements Graph.
func (g *AdjList) Neighbor(v, i int64) int64 { return g.Adj[g.Offsets[v]+i] }

// SampleNeighbor implements Graph. A vertex with no neighbors samples
// itself, so isolated vertices in sparse G(n,p) keep their color forever.
func (g *AdjList) SampleNeighbor(v int64, r *rng.Rand) int64 {
	d := g.Degree(v)
	if d == 0 {
		return v
	}
	return g.Adj[g.Offsets[v]+r.Int63n(d)]
}

// FlatRows exposes the flat CSR arrays (topo.Flat), so legacy adjacency
// lists take the engine's flat fast path like any other materialized
// representation. The flat loop consumes the rng identically to
// SampleNeighbor, so this changes nothing about seeded runs.
func (g *AdjList) FlatRows() (offsets, neighbors []int64) { return g.Offsets, g.Adj }

// buildCSR converts per-vertex neighbor slices into CSR form.
func buildCSR(name string, nbrs [][]int64) *AdjList {
	n := len(nbrs)
	offsets := make([]int64, n+1)
	var total int64
	for v, ns := range nbrs {
		offsets[v] = total
		total += int64(len(ns))
	}
	offsets[n] = total
	adj := make([]int64, total)
	i := int64(0)
	for _, ns := range nbrs {
		copy(adj[i:], ns)
		i += int64(len(ns))
	}
	return &AdjList{GraphName: name, Offsets: offsets, Adj: adj}
}

// NewRandomRegular samples a random d-regular simple graph on n vertices
// with the configuration (pairing) model followed by edge-swap repair:
// self-loops and parallel edges left by the pairing are removed by
// swapping endpoints with uniformly random other edges (each swap
// preserves all degrees). The repair touches O(d²) edges in expectation,
// so the construction is near-linear for the degrees used here. n·d must
// be even and 1 <= d < n.
func NewRandomRegular(n int64, d int, r *rng.Rand) *AdjList {
	if int64(d) >= n || d < 1 {
		panic("graph: random regular needs 1 <= d < n")
	}
	if n*int64(d)%2 != 0 {
		panic("graph: random regular needs n*d even")
	}
	m := n * int64(d) / 2
	key := func(a, b int64) [2]int64 {
		if a > b {
			a, b = b, a
		}
		return [2]int64{a, b}
	}

	const restarts = 100
	for attempt := 0; attempt < restarts; attempt++ {
		// Random pairing of stubs.
		stubs := make([]int64, 2*m)
		idx := 0
		for v := int64(0); v < n; v++ {
			for j := 0; j < d; j++ {
				stubs[idx] = v
				idx++
			}
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		edges := make([][2]int64, m)
		count := make(map[[2]int64]int, m)
		for i := int64(0); i < m; i++ {
			edges[i] = [2]int64{stubs[2*i], stubs[2*i+1]}
			count[key(edges[i][0], edges[i][1])]++
		}
		isBad := func(i int64) bool {
			e := edges[i]
			return e[0] == e[1] || count[key(e[0], e[1])] > 1
		}

		// Degree-preserving swap repair.
		budget := 200*m + 10000
		ok := true
		for i := int64(0); i < m; i++ {
			for isBad(i) {
				if budget <= 0 {
					ok = false
					break
				}
				budget--
				j := r.Int63n(m)
				if j == i {
					continue
				}
				e1, e2 := edges[i], edges[j]
				n1 := [2]int64{e1[0], e2[1]}
				n2 := [2]int64{e2[0], e1[1]}
				if n1[0] == n1[1] || n2[0] == n2[1] {
					continue
				}
				k1, k2 := key(n1[0], n1[1]), key(n2[0], n2[1])
				ko1, ko2 := key(e1[0], e1[1]), key(e2[0], e2[1])
				count[ko1]--
				count[ko2]--
				if k1 == k2 || count[k1] > 0 || count[k2] > 0 {
					count[ko1]++
					count[ko2]++
					continue
				}
				count[k1]++
				count[k2]++
				edges[i], edges[j] = n1, n2
				// edges[j] may have become bad only if it was already bad;
				// re-sweeping j is handled by the outer loop when j > i,
				// and j < i cannot become bad: its new key was verified
				// fresh. edges[i] is rechecked by the while condition.
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		nbrs := make([][]int64, n)
		for v := range nbrs {
			nbrs[v] = make([]int64, 0, d)
		}
		for _, e := range edges {
			nbrs[e[0]] = append(nbrs[e[0]], e[1])
			nbrs[e[1]] = append(nbrs[e[1]], e[0])
		}
		return buildCSR(fmt.Sprintf("random-%d-regular", d), nbrs)
	}
	panic("graph: failed to sample a simple random regular graph")
}

// NewErdosRenyi samples G(n, p): every unordered pair is an edge
// independently with probability p. Edge generation skips over non-edges
// with geometric jumps, so the cost is O(n + m) rather than O(n²).
func NewErdosRenyi(n int64, p float64, r *rng.Rand) *AdjList {
	if n < 1 {
		panic("graph: ErdosRenyi needs n >= 1")
	}
	if p < 0 || p > 1 {
		panic("graph: ErdosRenyi needs p in [0,1]")
	}
	nbrs := make([][]int64, n)
	if p > 0 {
		// Row-wise geometric skipping over candidate pairs (v, u), u > v.
		for v := int64(0); v < n-1; v++ {
			u := v
			for {
				if p >= 1 {
					u++
				} else {
					u += geometricSkip(r, p)
				}
				if u >= n {
					break
				}
				nbrs[v] = append(nbrs[v], u)
				nbrs[u] = append(nbrs[u], v)
			}
		}
	}
	return buildCSR(fmt.Sprintf("gnp(p=%g)", p), nbrs)
}

// geometricSkip returns 1 + Geometric(p): the gap to the next success in a
// Bernoulli(p) sequence.
func geometricSkip(r *rng.Rand, p float64) int64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	s := int64(math.Log(u)/math.Log(1-p)) + 1
	if s < 1 {
		s = 1
	}
	return s
}
