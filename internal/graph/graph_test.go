package graph

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/rng"
)

// checkGraphInvariants verifies Neighbor validity and the handshake lemma
// consistency between Degree and Neighbor enumeration.
func checkGraphInvariants(t *testing.T, g Graph) {
	t.Helper()
	n := g.N()
	for v := int64(0); v < n; v++ {
		d := g.Degree(v)
		for i := int64(0); i < d; i++ {
			u := g.Neighbor(v, i)
			if u < 0 || u >= n {
				t.Fatalf("%s: Neighbor(%d,%d) = %d out of range", g.Name(), v, i, u)
			}
		}
	}
}

// checkSymmetric verifies undirected symmetry: u ∈ N(v) ⟺ v ∈ N(u).
func checkSymmetric(t *testing.T, g Graph) {
	t.Helper()
	n := g.N()
	type edge struct{ a, b int64 }
	fwd := map[edge]int{}
	for v := int64(0); v < n; v++ {
		for i := int64(0); i < g.Degree(v); i++ {
			u := g.Neighbor(v, i)
			if u == v {
				continue // self-loops are their own mirror
			}
			fwd[edge{v, u}]++
		}
	}
	for e, c := range fwd {
		if fwd[edge{e.b, e.a}] != c {
			t.Fatalf("%s: asymmetric adjacency %v", g.Name(), e)
		}
	}
}

func TestCompleteWithSelf(t *testing.T) {
	g := NewComplete(10)
	if g.Degree(3) != 10 {
		t.Errorf("degree = %d, want 10 (self included)", g.Degree(3))
	}
	checkGraphInvariants(t, g)
	// Sampling must be uniform over all vertices including self.
	r := rng.New(1)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[g.SampleNeighbor(3, r)]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-draws/10) > 5*math.Sqrt(draws/10) {
			t.Errorf("vertex %d sampled %d times", v, c)
		}
	}
}

func TestCompleteWithoutSelf(t *testing.T) {
	g := Complete{Vertices: 8, IncludeSelf: false}
	if g.Degree(0) != 7 {
		t.Errorf("degree = %d, want 7", g.Degree(0))
	}
	checkGraphInvariants(t, g)
	r := rng.New(2)
	for i := 0; i < 10000; i++ {
		if g.SampleNeighbor(5, r) == 5 {
			t.Fatal("sampled self with IncludeSelf=false")
		}
	}
	// Neighbor enumeration must skip self.
	seen := map[int64]bool{}
	for i := int64(0); i < 7; i++ {
		u := g.Neighbor(5, i)
		if u == 5 || seen[u] {
			t.Fatalf("Neighbor(5,%d) = %d invalid", i, u)
		}
		seen[u] = true
	}
}

func TestCycle(t *testing.T) {
	g := NewCycle(5)
	checkGraphInvariants(t, g)
	checkSymmetric(t, g)
	if g.Neighbor(0, 0) != 1 || g.Neighbor(0, 1) != 4 {
		t.Errorf("cycle neighbors of 0: %d %d", g.Neighbor(0, 0), g.Neighbor(0, 1))
	}
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		u := g.SampleNeighbor(2, r)
		if u != 1 && u != 3 {
			t.Fatalf("cycle sampled non-neighbor %d of 2", u)
		}
	}
}

func TestTorus(t *testing.T) {
	g := NewTorus(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	checkGraphInvariants(t, g)
	checkSymmetric(t, g)
	// Vertex 0 = (0,0): right 1, left 3, down 4, up 8.
	want := map[int64]bool{1: true, 3: true, 4: true, 8: true}
	for i := int64(0); i < 4; i++ {
		if !want[g.Neighbor(0, i)] {
			t.Errorf("unexpected torus neighbor %d", g.Neighbor(0, i))
		}
	}
}

func TestStar(t *testing.T) {
	g := NewStar(6)
	checkGraphInvariants(t, g)
	checkSymmetric(t, g)
	if g.Degree(0) != 5 || g.Degree(3) != 1 {
		t.Errorf("star degrees: hub %d leaf %d", g.Degree(0), g.Degree(3))
	}
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		if g.SampleNeighbor(2, r) != 0 {
			t.Fatal("leaf must sample the hub")
		}
		if g.SampleNeighbor(0, r) == 0 {
			t.Fatal("hub must sample a leaf")
		}
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(5)
	g := NewRandomRegular(50, 4, r)
	if g.N() != 50 {
		t.Fatalf("N = %d", g.N())
	}
	checkGraphInvariants(t, g)
	checkSymmetric(t, g)
	for v := int64(0); v < 50; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
		// Simple graph: no self-loops, no parallel edges.
		seen := map[int64]bool{}
		for i := int64(0); i < 4; i++ {
			u := g.Neighbor(v, i)
			if u == v {
				t.Errorf("self-loop at %d", v)
			}
			if seen[u] {
				t.Errorf("parallel edge %d-%d", v, u)
			}
			seen[u] = true
		}
	}
}

func TestRandomRegularPanics(t *testing.T) {
	r := rng.New(6)
	for name, f := range map[string]func(){
		"oddProduct": func() { NewRandomRegular(5, 3, r) },
		"dTooBig":    func() { NewRandomRegular(4, 4, r) },
		"dZero":      func() { NewRandomRegular(4, 0, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestErdosRenyi(t *testing.T) {
	r := rng.New(7)
	const n, p = 400, 0.05
	g := NewErdosRenyi(n, p, r)
	checkGraphInvariants(t, g)
	checkSymmetric(t, g)
	// Edge count ~ Binomial(C(n,2), p); mean 3990, sd ~ 61.6.
	var twiceEdges int64
	for v := int64(0); v < n; v++ {
		twiceEdges += g.Degree(v)
	}
	edges := float64(twiceEdges) / 2
	mean := float64(n*(n-1)) / 2 * p
	sd := math.Sqrt(float64(n*(n-1)) / 2 * p * (1 - p))
	if math.Abs(edges-mean) > 6*sd {
		t.Errorf("edge count %v far from mean %v (sd %v)", edges, mean, sd)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	r := rng.New(8)
	empty := NewErdosRenyi(10, 0, r)
	for v := int64(0); v < 10; v++ {
		if empty.Degree(v) != 0 {
			t.Errorf("G(n,0) has an edge at %d", v)
		}
		// Isolated vertices sample themselves.
		if empty.SampleNeighbor(v, r) != v {
			t.Error("isolated vertex must sample itself")
		}
	}
	full := NewErdosRenyi(10, 1, r)
	for v := int64(0); v < 10; v++ {
		if full.Degree(v) != 9 {
			t.Errorf("G(n,1) vertex %d degree %d, want 9", v, full.Degree(v))
		}
	}
}

func TestErdosRenyiPanics(t *testing.T) {
	r := rng.New(9)
	for name, f := range map[string]func(){
		"n0":   func() { NewErdosRenyi(0, 0.5, r) },
		"pNeg": func() { NewErdosRenyi(5, -0.1, r) },
		"pBig": func() { NewErdosRenyi(5, 1.1, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSampleNeighborIsNeighborProperty(t *testing.T) {
	r := rng.New(10)
	graphs := []Graph{
		NewCycle(9),
		NewTorus(4, 5),
		NewStar(7),
		NewRandomRegular(20, 3, r),
		NewErdosRenyi(30, 0.3, r),
	}
	for _, g := range graphs {
		f := func(vRaw uint16) bool {
			v := int64(vRaw) % g.N()
			if g.Degree(v) == 0 {
				return g.SampleNeighbor(v, r) == v
			}
			u := g.SampleNeighbor(v, r)
			for i := int64(0); i < g.Degree(v); i++ {
				if g.Neighbor(v, i) == u {
					return true
				}
			}
			return false
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Complete0": func() { NewComplete(0) },
		"Cycle2":    func() { NewCycle(2) },
		"Torus2":    func() { NewTorus(2, 5) },
		"Star1":     func() { NewStar(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
