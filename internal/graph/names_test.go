package graph

import (
	"slices"
	"strings"
	"testing"

	"plurality/internal/rng"
)

func TestNames(t *testing.T) {
	r := rng.New(1)
	cases := map[string]Graph{
		"complete+self":    NewComplete(5),
		"complete":         Complete{Vertices: 5},
		"cycle":            NewCycle(5),
		"torus":            NewTorus(3, 3),
		"star":             NewStar(4),
		"random-2-regular": NewRandomRegular(6, 2, r),
	}
	for want, g := range cases {
		if g.Name() != want {
			t.Errorf("Name() = %q, want %q", g.Name(), want)
		}
	}
	er := NewErdosRenyi(10, 0.5, r)
	if !strings.HasPrefix(er.Name(), "gnp(") {
		t.Errorf("ER name %q", er.Name())
	}
}

// TestGeneratorsByteDeterministic pins the documented determinism
// contract: for a fixed seed the random constructions are byte-identical
// across runs — offsets and adjacency arrays both — and different seeds
// produce different graphs. Service records and sweep cells rely on this
// to stay pure functions of their specs.
func TestGeneratorsByteDeterministic(t *testing.T) {
	equal := func(a, b *AdjList) bool {
		return slices.Equal(a.Offsets, b.Offsets) && slices.Equal(a.Adj, b.Adj)
	}
	regA := NewRandomRegular(500, 6, rng.New(11))
	regB := NewRandomRegular(500, 6, rng.New(11))
	if !equal(regA, regB) {
		t.Error("NewRandomRegular not byte-identical for a fixed seed")
	}
	if equal(regA, NewRandomRegular(500, 6, rng.New(12))) {
		t.Error("NewRandomRegular ignores the seed")
	}
	erA := NewErdosRenyi(500, 0.02, rng.New(21))
	erB := NewErdosRenyi(500, 0.02, rng.New(21))
	if !equal(erA, erB) {
		t.Error("NewErdosRenyi not byte-identical for a fixed seed")
	}
	if equal(erA, NewErdosRenyi(500, 0.02, rng.New(22))) {
		t.Error("NewErdosRenyi ignores the seed")
	}
}

func TestGeometricSkipAlwaysPositive(t *testing.T) {
	r := rng.New(2)
	for _, p := range []float64{0.001, 0.5, 0.999} {
		for i := 0; i < 10000; i++ {
			if s := geometricSkip(r, p); s < 1 {
				t.Fatalf("skip %d < 1 at p=%v", s, p)
			}
		}
	}
}

func TestGeometricSkipMean(t *testing.T) {
	// E[skip] = 1/p.
	r := rng.New(3)
	const p, draws = 0.2, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(geometricSkip(r, p))
	}
	mean := sum / draws
	if mean < 4.8 || mean > 5.2 {
		t.Fatalf("mean skip %v, want ~5", mean)
	}
}
