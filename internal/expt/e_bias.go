package expt

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

func init() {
	register("E6", "Lemma 10 — bias s = O(sqrt(kn)) is non-monotone", runE6)
	register("E9", "Lemmas 3-5 — the three phases of 3-majority", runE9)
	register("E12", "Lemmas 1-2 — drift validation against closed forms", runE12)
}

// runE6 estimates, for the Lemma 10 configuration (x+s, x, ..., x), the
// probability that the bias *decreases* within one round, sweeping s from
// well below sqrt(kn)/6 up past the Corollary 1 threshold. Lemma 10
// guarantees probability >= 1/(16e) ≈ 0.023 for s <= sqrt(kn)/6 (against a
// fixed rival color; against the worst of the k-1 rivals it is only
// larger); at the Corollary 1 bias the probability should collapse
// toward 0 — the paper's "why we need that bias" figure.
func runE6(p Profile, seed uint64) []*Table {
	n := p.N
	k := 16
	reps := p.Reps * 250 // one-round experiments are cheap: O(k) each
	lemmaBias := core.Lemma10MaxBias(n, k)
	cor1Bias := core.Corollary1Bias(n, k, 1.0)
	svals := []int64{lemmaBias / 4, lemmaBias / 2, lemmaBias, 2 * lemmaBias, cor1Bias, 2 * cor1Bias}
	t := &Table{
		ID:    "E6",
		Title: "P(bias decreases in one round) vs initial bias s",
		Note: fmt.Sprintf("n=%d, k=%d, Lemma-10 configuration, %d reps/point; sqrt(kn)/6=%d, Cor-1 bias=%d, Lemma-10 floor=%.3f",
			n, k, reps, lemmaBias, cor1Bias, core.Lemma10FailureLowerBound),
		Columns: []string{"s", "s/sqrt(kn)", "P(bias_drops)", "wilson95", "meets_lemma10_floor"},
	}
	sqrtKN := math.Sqrt(float64(k) * float64(n))
	for _, s := range svals {
		s := s
		if s > n/int64(k) {
			continue // Lemma 10 requires s <= x
		}
		results := ParallelReps(p, reps, seed+uint64(s), func(_ int, r *rng.Rand) bool {
			init := colorcfg.Lemma10(n, k, s)
			initBias := init.Bias()
			e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			e.Step(r)
			return e.Config().Bias() < initBias
		})
		drops := 0
		for _, d := range results {
			if d {
				drops++
			}
		}
		rate := float64(drops) / float64(len(results))
		lo, hi := stats.WilsonInterval(drops, len(results), 1.96)
		floorMet := "n/a"
		if s <= lemmaBias {
			floorMet = fmt.Sprintf("%v", rate >= core.Lemma10FailureLowerBound)
		}
		t.AddRow(fmtI(s), fmtF(float64(s)/sqrtKN), fmtF(rate),
			fmt.Sprintf("[%.3f,%.3f]", lo, hi), floorMet)
	}
	return []*Table{t}
}

// runE9 traces single trajectories and aggregates per-phase statistics:
//
//	phase 1 (c1 < 2n/3):  per-round bias growth factor vs Lemma 3's 1+c1/4n;
//	phase 2 (c1 >= 2n/3): per-round minority-mass decay factor vs Lemma 4's 8/9;
//	phase 3 (c1 >= n - polylog): rounds spent before extinction (Lemma 5: ~1).
func runE9(p Profile, seed uint64) []*Table {
	n := p.N * 5
	k := 8
	s := core.Corollary1Bias(n, k, 1.0)
	t := &Table{
		ID:    "E9",
		Title: "phase portrait of 3-majority (growth, decay, extinction)",
		Note: fmt.Sprintf("n=%d, k=%d, s=%d, %d reps; Lemma 3: growth ≥ 1+c1/4n while c1<2n/3; Lemma 4: minority decay ≤ 8/9 while c1≥2n/3; Lemma 5: last step ≈ 1 round",
			n, k, s, p.Reps),
		Columns: []string{"quantity", "measured_mean", "measured_min", "measured_max", "lemma_bound", "satisfied"},
	}
	type phaseStats struct {
		growthRatios []float64 // (bias growth per round)/(Lemma 3 factor)
		decayRatios  []float64 // minority decay per round (should be < 8/9 on average... <= with noise)
		lastRounds   []float64 // rounds from c1 >= n - log^2 n to consensus
	}
	all := ParallelReps(p, p.Reps, seed, func(_ int, r *rng.Rand) phaseStats {
		var ps phaseStats
		init := colorcfg.Biased(n, k, s)
		e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
		prev := e.Config()
		logSq := math.Pow(math.Log(float64(n)), 2)
		lastPhaseStart := -1
		for round := 1; round < 200_000; round++ {
			e.Step(r)
			cur := e.Config()
			pf, _ := prev.TopTwo()
			cf, _ := cur.TopTwo()
			switch {
			case float64(pf) >= float64(n)-logSq:
				if lastPhaseStart < 0 {
					lastPhaseStart = round
				}
			case pf >= 2*n/3:
				prevMass := float64(n - pf)
				curMass := float64(n - cf)
				if prevMass > 0 {
					ps.decayRatios = append(ps.decayRatios, curMass/prevMass)
				}
			default:
				pb, cb := float64(prev.Bias()), float64(cur.Bias())
				if pb > 0 {
					predicted := core.Lemma3GrowthFactor(prev)
					ps.growthRatios = append(ps.growthRatios, (cb/pb)/predicted)
				}
			}
			if cur.IsMonochromatic() {
				if lastPhaseStart >= 0 {
					ps.lastRounds = append(ps.lastRounds, float64(round-lastPhaseStart+1))
				}
				break
			}
			prev = cur
		}
		return ps
	})
	var growth, decay, last []float64
	for _, ps := range all {
		growth = append(growth, ps.growthRatios...)
		decay = append(decay, ps.decayRatios...)
		last = append(last, ps.lastRounds...)
	}
	if len(growth) > 0 {
		g := stats.Summarize(growth)
		t.AddRow("bias growth / (1+c1/4n)", fmtF(g.Mean), fmtF(g.Min), fmtF(g.Max),
			">= 1 (Lemma 3)", fmt.Sprintf("%v", g.Mean >= 1))
	}
	if len(decay) > 0 {
		d := stats.Summarize(decay)
		t.AddRow("minority decay factor", fmtF(d.Mean), fmtF(d.Min), fmtF(d.Max),
			"<= 8/9 (Lemma 4)", fmt.Sprintf("%v", d.Mean <= core.Lemma4DecayFactor+0.02))
	}
	if len(last) > 0 {
		l := stats.Summarize(last)
		t.AddRow("rounds in last phase", fmtF(l.Mean), fmtF(l.Min), fmtF(l.Max),
			"O(1) (Lemma 5)", fmt.Sprintf("%v", l.Mean < 10))
	}
	return []*Table{t}
}

// runE12 validates the closed forms the exact engine is built on: for a zoo
// of configuration shapes it compares (a) the empirical one-round mean of
// every color count against Lemma 1's µ_j, reporting the worst z-score, and
// (b) the empirical plurality-vs-runner-up drift against Lemma 2's lower
// bound. Both the multinomial and the agent-sampled engines are checked —
// this is the equivalence ablation of DESIGN.md §5.
func runE12(p Profile, seed uint64) []*Table {
	reps := p.Reps * 50
	shapes := []struct {
		name string
		cfg  colorcfg.Config
	}{
		{"biased k=4", colorcfg.Biased(10000, 4, 800)},
		{"balanced k=16", colorcfg.Balanced(10000, 16)},
		{"two-block k=8", colorcfg.TwoBlock(10000, 8, 300, 0.9)},
		{"zipf k=32", colorcfg.Zipf(10000, 32, 1.2, rng.New(seed^7))},
		{"lemma10 k=16", colorcfg.Lemma10(10000, 16, core.Lemma10MaxBias(10000, 16))},
	}
	t := &Table{
		ID:    "E12",
		Title: "one-round drift: empirical vs Lemma 1 / Lemma 2",
		Note: fmt.Sprintf("n=10000, %d reps per shape; worst |z| across colors should be ≾ 4; Lemma-2 column: empirical E[C1−C2] ≥ bound",
			reps),
		Columns: []string{"shape", "engine", "worst|z|_lemma1", "drift_emp", "drift_lemma2_bound", "ok"},
	}
	for _, shape := range shapes {
		mu := core.ExpectedNext(shape.cfg)
		n := shape.cfg.N()
		k := shape.cfg.K()
		bound := core.ExpectedBiasLowerBound(shape.cfg)
		for _, engName := range []string{"multinomial", "sampled"} {
			engName := engName
			shapeCfg := shape.cfg
			sums := ParallelReps(p, reps, seed+hashName(shape.name+engName), func(rep int, r *rng.Rand) []float64 {
				var e engine.Engine
				if engName == "multinomial" {
					e = engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, shapeCfg)
				} else {
					e = engine.NewCliqueSampled(dynamics.ThreeMajority{}, shapeCfg, 1, seed^uint64(rep)^hashName(engName))
				}
				defer e.Close()
				e.Step(r)
				out := make([]float64, k)
				for j, v := range e.Config() {
					out[j] = float64(v)
				}
				return out
			})
			mean := make([]float64, k)
			for _, row := range sums {
				for j, v := range row {
					mean[j] += v / float64(len(sums))
				}
			}
			worstZ := 0.0
			for j := range mean {
				// Var of one count <= n/4; se of the mean across reps.
				se := math.Sqrt(float64(n)/4) / math.Sqrt(float64(len(sums)))
				z := math.Abs(mean[j]-mu[j]) / se
				if z > worstZ {
					worstZ = z
				}
			}
			// Empirical drift between the top two expected colors.
			best, second := -1, -1
			for j := range mu {
				if best < 0 || mu[j] > mu[best] {
					best, second = j, best
				} else if second < 0 || mu[j] > mu[second] {
					second = j
				}
			}
			drift := mean[best] - mean[second]
			seDrift := math.Sqrt(float64(n)) / math.Sqrt(float64(len(sums))) * 2
			ok := worstZ < 5 && drift > bound-4*seDrift
			t.AddRow(shape.name, engName, fmtF(worstZ), fmtF(drift), fmtF(bound),
				fmt.Sprintf("%v", ok))
		}
	}
	return []*Table{t}
}
