package expt

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

func init() {
	register("E1", "Theorem 1 / Corollary 1 — 3-majority upper bound scaling", runE1)
	register("E2", "Corollaries 2/3 — polylogarithmic regime via large c1", runE2)
	register("E3", "Theorem 2 — Ω(k log n) lower bound from balanced starts", runE3)
}

// quickish reports whether the profile is a scaled-down run.
func quickish(p Profile) bool { return p.Reps <= 10 }

// runE1 sweeps k at fixed n with the Corollary 1 bias and measures the
// convergence time of 3-majority to the initial plurality. The paper
// predicts rounds = Θ(min{2k, (n/ln n)^(1/3)}·ln n): the normalized column
// rounds/(λ·ln n) should be flat across the sweep, and the success rate 1.
func runE1(p Profile, seed uint64) []*Table {
	n := p.N
	ks := []int{2, 4, 8, 16, 32, 64, 128}
	if quickish(p) {
		ks = []int{2, 8, 32}
	}
	t := &Table{
		ID:    "E1",
		Title: "3-majority rounds to plurality consensus vs k (clique)",
		Note: fmt.Sprintf("n=%d, bias s = sqrt(λ n ln n) (Cor. 1 shape, practical constant 1), %d reps; prediction: rounds/(λ ln n) ≈ const, success = 1",
			n, p.Reps),
		Columns: []string{"k", "lambda", "bias_s", "success", "rounds_mean", "rounds_std", "rounds/(λ·ln n)"},
	}
	for _, k := range ks {
		lambda := core.Lambda(n, k)
		s := core.Corollary1Bias(n, k, 1.0)
		results := ParallelReps(p, p.Reps, seed+uint64(k), func(_ int, r *rng.Rand) core.Result {
			init := colorcfg.Biased(n, k, s)
			e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			return core.Run(e, core.Options{MaxRounds: 200_000, Rand: r})
		})
		rounds := make([]float64, 0, len(results))
		wins := 0
		for _, res := range results {
			rounds = append(rounds, float64(res.Rounds))
			if res.WonInitialPlurality {
				wins++
			}
		}
		sum := stats.Summarize(rounds)
		norm := sum.Mean / (lambda * math.Log(float64(n)))
		t.AddRow(fmt.Sprintf("%d", k), fmtF(lambda), fmtI(s),
			fmt.Sprintf("%d/%d", wins, len(results)),
			fmtF(sum.Mean), fmtF(sum.Std), fmtF(norm))
	}
	return []*Table{t}
}

// runE2 exercises the Theorem 1 general form: when c1 >= n/λ the time is
// O(λ·ln n) regardless of k. The sweep plants a leader with c1 = n/λ among
// k = sqrt(n) colors — k is enormous, yet the time tracks λ·ln n, which is
// polylogarithmic for λ = polylog(n) (Corollary 2) and Θ(log n) for
// constant λ (Corollary 3).
func runE2(p Profile, seed uint64) []*Table {
	n := p.N
	k := int(math.Sqrt(float64(n)))
	lambdas := []float64{2, 4, 8, 16}
	if quickish(p) {
		lambdas = []float64{2, 8}
	}
	t := &Table{
		ID:    "E2",
		Title: "rounds vs λ with planted leader c1 = n/λ and k = sqrt(n) colors",
		Note: fmt.Sprintf("n=%d, k=%d, s = sqrt(λ n ln n), %d reps; prediction: rounds ≈ const·λ·ln n independent of k",
			n, k, p.Reps),
		Columns: []string{"lambda", "c1", "bias_s", "success", "rounds_mean", "rounds/(λ·ln n)"},
	}
	for _, lambda := range lambdas {
		s := core.PracticalBias(n, lambda, 1.0)
		c1 := int64(float64(n) / lambda)
		// Ensure the planted leader actually realizes the required bias.
		perOther := (n - c1) / int64(k-1)
		if c1-perOther < s {
			c1 = perOther + s
		}
		results := ParallelReps(p, p.Reps, seed+uint64(lambda*1000), func(_ int, r *rng.Rand) core.Result {
			init := colorcfg.PlantedLeader(n, k, c1)
			e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			return core.Run(e, core.Options{MaxRounds: 200_000, Rand: r})
		})
		rounds := make([]float64, 0, len(results))
		wins := 0
		for _, res := range results {
			rounds = append(rounds, float64(res.Rounds))
			if res.WonInitialPlurality {
				wins++
			}
		}
		sum := stats.Summarize(rounds)
		t.AddRow(fmtF(lambda), fmtI(c1), fmtI(s),
			fmt.Sprintf("%d/%d", wins, len(results)),
			fmtF(sum.Mean), fmtF(sum.Mean/(lambda*math.Log(float64(n)))))
	}
	return []*Table{t}
}

// runE3 measures the Theorem 2 lower bound: from the near-balanced
// configuration (max c_j <= n/k + (n/k)^(1-ε)) the dynamics needs
// Ω(k·ln n) rounds, already to double the leading color to 2n/k. The
// normalized columns divide by k·ln n and should be bounded away from 0.
func runE3(p Profile, seed uint64) []*Table {
	n := p.N
	ks := []int{4, 8, 16, 32, 64}
	if quickish(p) {
		ks = []int{4, 16}
	}
	const eps = 0.5
	t := &Table{
		ID:    "E3",
		Title: "rounds from balanced start: doubling time and consensus time vs k",
		Note: fmt.Sprintf("n=%d, Theorem-2 start (imbalance (n/k)^%0.1f), %d reps; prediction: both times = Ω(k·ln n), i.e. normalized columns stay ≳ const > 0",
			n, 1-eps, p.Reps),
		Columns: []string{"k", "rounds_to_2n/k", "rounds_to_consensus", "double/(k·ln n)", "consensus/(k·ln n)"},
	}
	for _, k := range ks {
		k := k
		type outcome struct{ double, total float64 }
		results := ParallelReps(p, p.Reps, seed+uint64(k)*17, func(_ int, r *rng.Rand) outcome {
			init := colorcfg.Theorem2(n, k, eps)
			e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			target := 2 * n / int64(k)
			doubleRound := -1
			res := core.Run(e, core.Options{
				MaxRounds: 500_000,
				Rand:      r,
				OnRound: func(round int, c colorcfg.Config) {
					if doubleRound < 0 {
						if first, _ := c.TopTwo(); first >= target {
							doubleRound = round
						}
					}
				},
			})
			if doubleRound < 0 {
				doubleRound = res.Rounds
			}
			return outcome{double: float64(doubleRound), total: float64(res.Rounds)}
		})
		doubles := make([]float64, len(results))
		totals := make([]float64, len(results))
		for i, o := range results {
			doubles[i] = o.double
			totals[i] = o.total
		}
		dm := stats.Mean(doubles)
		tm := stats.Mean(totals)
		norm := float64(k) * math.Log(float64(n))
		t.AddRow(fmt.Sprintf("%d", k), fmtF(dm), fmtF(tm), fmtF(dm/norm), fmtF(tm/norm))
	}
	return []*Table{t}
}
