package expt

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

func init() {
	register("E19", "Fault injection — lazy/crashed agents slow 3-majority by only 1/(1−q)", runE19)
}

// runE19 injects omission faults: each round every agent independently
// fails to update with probability q (keeping its color). The faulted
// chain's drift is the original drift scaled by (1−q), so the convergence
// time should grow by ≈ 1/(1−q) and the winner should never change — a
// robustness property beyond the paper's Byzantine model (Corollary 4
// covers adaptive corruption; this covers benign crash/omission faults).
func runE19(p Profile, seed uint64) []*Table {
	n := p.N
	k := 8
	s := core.Corollary1Bias(n, k, 1.0)
	qs := []float64{0, 0.25, 0.5, 0.75, 0.9}
	if quickish(p) {
		qs = []float64{0, 0.5, 0.9}
	}
	t := &Table{
		ID:    "E19",
		Title: "3-majority with omission faults: rounds vs failure probability q",
		Note: fmt.Sprintf("n=%d, k=%d, Cor-1 bias, %d reps; prediction: rounds ≈ rounds(q=0)/(1−q), success unaffected",
			n, k, p.Reps),
		Columns: []string{"q", "rounds_mean", "rounds_std", "success", "rounds·(1−q)", "slowdown_vs_pred"},
	}
	var base float64
	for _, q := range qs {
		q := q
		type out struct {
			rounds float64
			won    bool
		}
		results := ParallelReps(p, p.Reps, seed+uint64(q*1000), func(_ int, r *rng.Rand) out {
			init := colorcfg.Biased(n, k, s)
			var e engine.Engine
			if q == 0 {
				e = engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			} else {
				e = engine.NewCliqueMarkov(dynamics.NewLazy(dynamics.ThreeMajority{}, q), init)
			}
			res := core.Run(e, core.Options{MaxRounds: 200_000, Rand: r})
			return out{rounds: float64(res.Rounds), won: res.WonInitialPlurality}
		})
		rounds := make([]float64, len(results))
		wins := 0
		for i, o := range results {
			rounds[i] = o.rounds
			if o.won {
				wins++
			}
		}
		sm := stats.Summarize(rounds)
		if q == 0 {
			base = sm.Mean
		}
		predicted := base / (1 - q)
		t.AddRow(fmtF(q), fmtF(sm.Mean), fmtF(sm.Std),
			fmt.Sprintf("%d/%d", wins, len(results)),
			fmtF(sm.Mean*(1-q)), fmtF(sm.Mean/math.Max(predicted, 1e-9)))
	}
	return []*Table{t}
}
