package expt

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/stats"
	"plurality/internal/topo"
)

func init() {
	register("E13", "Extension — 2-choices-keep-own vs 3-majority", runE13)
	register("E14", "Extension — 3-majority beyond the clique", runE14)
	register("E15", "Ablations — tie-breaking and self-sampling", runE15)
	register("E16", "Extension — asynchronous (population) 3-majority", runE16)
}

// runE13 compares the 2-choices-keep-own dynamics of the follow-on
// literature with 3-majority on two workloads. Linearizing both drifts
// around the balanced configuration gives the same first-order growth
// a·(1+Θ(1))/k for a color at n/k + a, so with the Corollary-1 bias and
// for moderate k the two processes track each other closely. The
// difference is laziness, not drift: a keep-own agent switches only when
// its pair agrees (probability Σ(c_h/n)² ≈ 1/k from balanced), so its
// per-round movement — and the noise that breaks exact symmetry — shrinks
// with k, and the doubling-time ratio drifts up slowly with k rather than
// staying at 1.
func runE13(p Profile, seed uint64) []*Table {
	n := p.N
	ks := []int{2, 4, 8, 16, 32}
	if quickish(p) {
		ks = []int{2, 8}
	}
	t := &Table{
		ID:    "E13",
		Title: "2-choices-keep-own vs 3-majority: biased consensus and balanced doubling",
		Note: fmt.Sprintf("n=%d, %d reps; biased columns use the Cor-1 bias; doubling columns start balanced and wait for c_max ≥ 2n/k — prediction: near-identical at small k (same first-order drift), ratio creeping up with k (keep-own's lazier, lower-noise updates)",
			n, p.Reps),
		Columns: []string{"k", "keepown_biased", "3maj_biased", "keepown_double", "3maj_double", "double_ratio"},
	}
	doubleTime := func(e engine.Engine, r *rng.Rand, k int) float64 {
		target := 2 * n / int64(k)
		rounds := 0
		for rounds < 200_000 {
			if first, _ := e.Config().TopTwo(); first >= target {
				break
			}
			e.Step(r)
			rounds++
		}
		return float64(rounds)
	}
	for _, k := range ks {
		k := k
		s := core.Corollary1Bias(n, k, 1.0)
		biased := func(markov bool, offset uint64) float64 {
			results := ParallelReps(p, p.Reps, seed+uint64(k)*7+offset, func(_ int, r *rng.Rand) float64 {
				var e engine.Engine
				if markov {
					e = engine.NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, colorcfg.Biased(n, k, s))
				} else {
					e = engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.Biased(n, k, s))
				}
				res := core.Run(e, core.Options{MaxRounds: 200_000, Rand: r})
				return float64(res.Rounds)
			})
			return stats.Mean(results)
		}
		double := func(markov bool, offset uint64) float64 {
			results := ParallelReps(p, p.Reps, seed+uint64(k)*19+offset, func(_ int, r *rng.Rand) float64 {
				var e engine.Engine
				if markov {
					e = engine.NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, colorcfg.Balanced(n, k))
				} else {
					e = engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.Balanced(n, k))
				}
				return doubleTime(e, r, k)
			})
			return stats.Mean(results)
		}
		kb, jb := biased(true, 0), biased(false, 1)
		kd, jd := double(true, 2), double(false, 3)
		t.AddRow(fmt.Sprintf("%d", k), fmtF(kb), fmtF(jb), fmtF(kd), fmtF(jd),
			fmtF(kd/math.Max(jd, 1)))
	}
	return []*Table{t}
}

// runE14 formalizes the beyond-clique extension: the same 3-majority rule
// with local neighbor sampling across topologies of decreasing expansion.
// Expanders track the clique; the torus pays a polynomial mixing penalty;
// the cycle coarsens into segments and stalls.
func runE14(p Profile, seed uint64) []*Table {
	n := p.N / 8
	side := int64(math.Sqrt(float64(n)))
	n = side * side // square for the torus
	k := 4
	bias := n / 8
	limit := 10_000
	if quickish(p) {
		limit = 2_000
	}
	t := &Table{
		ID:    "E14",
		Title: "3-majority with local sampling across topologies",
		Note: fmt.Sprintf("n=%d, k=%d, bias=%d, %d reps, cap %d rounds; expansion governs convergence: expanders ≈ clique, torus polynomially slower, cycle stalls",
			n, k, bias, p.Reps, limit),
		Columns: []string{"topology", "converged", "rounds_mean", "final_cmax_share"},
	}
	// Topology specs resolve through the topo registry (the same names
	// sweep/service/validate accept); each family runs on one quenched
	// graph shared across replicates.
	specs := []string{"complete", "regular:8", fmt.Sprintf("gnp:%g", 16.0/float64(n)), "torus", "cycle"}
	for _, spec := range specs {
		g, err := topo.Build(spec, n, rng.New(seed^hashName(spec)))
		if err != nil {
			panic(fmt.Sprintf("expt: E14 build %q at n=%d: %v", spec, n, err))
		}
		type out struct {
			rounds float64
			conv   bool
			share  float64
		}
		results := ParallelReps(p, p.Reps, seed+hashName(spec), func(rep int, r *rng.Rand) out {
			e := engine.NewGraphEngine(dynamics.ThreeMajority{}, g,
				colorcfg.Biased(n, k, bias), 2, seed^uint64(rep)<<8^hashName(spec), r)
			defer e.Close()
			res := core.Run(e, core.Options{MaxRounds: limit, Rand: r})
			first, _ := res.Final.TopTwo()
			return out{rounds: float64(res.Rounds), conv: res.Stopped,
				share: float64(first) / float64(n)}
		})
		conv := 0
		var rounds, share float64
		for _, o := range results {
			if o.conv {
				conv++
			}
			rounds += o.rounds / float64(len(results))
			share += o.share / float64(len(results))
		}
		t.AddRow(spec, fmt.Sprintf("%d/%d", conv, len(results)), fmtF(rounds), fmtF(share))
	}
	return []*Table{t}
}

// runE15 runs the DESIGN.md §5 ablations as a table: (a) the two rainbow
// tie-breaks of the 3-majority rule (the paper asserts their equivalence);
// (b) sampling with vs without self on the clique (an O(1/n) perturbation).
// Both pairs must produce statistically indistinguishable convergence
// times and identical success rates.
func runE15(p Profile, seed uint64) []*Table {
	n := p.N
	k := 8
	s := core.Corollary1Bias(n, k, 1.0)
	reps := p.Reps * 4
	t := &Table{
		ID:    "E15",
		Title: "ablations: tie-break variant and self-sampling",
		Note: fmt.Sprintf("n=%d, k=%d, Cor-1 bias, %d reps; the paper asserts first-sample and uniform tie-breaks are the same process; self-exclusion perturbs sampling by O(1/n)",
			n, k, reps),
		Columns: []string{"variant", "rounds_mean", "rounds_std", "success"},
	}
	type variant struct {
		name string
		mk   func(rep int) engine.Engine
	}
	variants := []variant{
		{"ties→first (paper)", func(rep int) engine.Engine {
			return engine.NewCliqueSampled(dynamics.ThreeMajority{},
				colorcfg.Biased(n, k, s), 1, seed^uint64(rep)*3)
		}},
		{"ties→uniform", func(rep int) engine.Engine {
			return engine.NewCliqueSampled(dynamics.ThreeMajority{UniformTie: true},
				colorcfg.Biased(n, k, s), 1, seed^uint64(rep)*5)
		}},
		{"with self (paper)", func(rep int) engine.Engine {
			return engine.NewGraphEngine(dynamics.ThreeMajority{}, graph.NewComplete(n),
				colorcfg.Biased(n, k, s), 2, seed^uint64(rep)*7, nil)
		}},
		{"without self", func(rep int) engine.Engine {
			return engine.NewGraphEngine(dynamics.ThreeMajority{},
				graph.Complete{Vertices: n, IncludeSelf: false},
				colorcfg.Biased(n, k, s), 2, seed^uint64(rep)*11, nil)
		}},
	}
	for _, v := range variants {
		v := v
		type out struct {
			rounds float64
			won    bool
		}
		results := ParallelReps(p, reps, seed+hashName(v.name), func(rep int, r *rng.Rand) out {
			e := v.mk(rep)
			defer e.Close()
			res := core.Run(e, core.Options{MaxRounds: 50_000, Rand: r})
			return out{rounds: float64(res.Rounds), won: res.WonInitialPlurality}
		})
		rounds := make([]float64, len(results))
		wins := 0
		for i, o := range results {
			rounds[i] = o.rounds
			if o.won {
				wins++
			}
		}
		sm := stats.Summarize(rounds)
		t.AddRow(v.name, fmtF(sm.Mean), fmtF(sm.Std), fmt.Sprintf("%d/%d", wins, len(results)))
	}
	return []*Table{t}
}

// runE16 compares the synchronous process with its sequential
// (population-model) counterpart, counting one round as n micro-steps.
// The asynchronous chain has the same drift per n updates, so round counts
// should be comparable — the paper's parallel model is not load-bearing
// for the upper-bound shape, only for the w.h.p. concentration argument.
func runE16(p Profile, seed uint64) []*Table {
	n := p.N / 4
	ks := []int{2, 8, 32}
	if quickish(p) {
		ks = []int{2, 8}
	}
	t := &Table{
		ID:    "E16",
		Title: "synchronous vs sequential 3-majority (1 round = n micro-steps)",
		Note: fmt.Sprintf("n=%d, Cor-1 bias, %d reps; prediction: comparable round counts — the dynamics' drift, not the scheduler, sets the timescale",
			n, p.Reps),
		Columns: []string{"k", "sync_rounds", "sync_won", "async_rounds", "async_won", "ratio"},
	}
	for _, k := range ks {
		k := k
		s := core.Corollary1Bias(n, k, 1.0)
		type out struct {
			rounds float64
			won    bool
		}
		sync := ParallelReps(p, p.Reps, seed+uint64(k), func(_ int, r *rng.Rand) out {
			e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.Biased(n, k, s))
			res := core.Run(e, core.Options{MaxRounds: 100_000, Rand: r})
			return out{rounds: float64(res.Rounds), won: res.WonInitialPlurality}
		})
		async := ParallelReps(p, p.Reps, seed+uint64(k)+13, func(_ int, r *rng.Rand) out {
			e := engine.NewPopulation(dynamics.ThreeMajority{}, colorcfg.Biased(n, k, s))
			res := core.Run(e, core.Options{MaxRounds: 100_000, Rand: r})
			return out{rounds: float64(res.Rounds), won: res.WonInitialPlurality}
		})
		sum := func(os []out) (float64, int) {
			tot, wins := 0.0, 0
			for _, o := range os {
				tot += o.rounds / float64(len(os))
				if o.won {
					wins++
				}
			}
			return tot, wins
		}
		sm, sw := sum(sync)
		am, aw := sum(async)
		t.AddRow(fmt.Sprintf("%d", k), fmtF(sm), fmt.Sprintf("%d/%d", sw, len(sync)),
			fmtF(am), fmt.Sprintf("%d/%d", aw, len(async)), fmtF(am/math.Max(sm, 1)))
	}
	return []*Table{t}
}
