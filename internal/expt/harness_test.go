package expt

import (
	"strings"
	"testing"

	"plurality/internal/rng"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T0",
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"a", "bb"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	text := tab.Text()
	for _, want := range []string{"T0", "demo", "a note", "333"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "333,4") {
		t.Errorf("CSV missing row: %q", csv)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| 333 | 4 |") {
		t.Errorf("Markdown malformed:\n%s", md)
	}
}

func TestTableAddRowPanicsOnArity(t *testing.T) {
	tab := &Table{ID: "T", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.AddRow("only-one")
}

func TestParallelRepsDeterministic(t *testing.T) {
	p := Profile{Name: "t", N: 100, Reps: 8, Workers: 4}
	run := func() []float64 {
		return ParallelReps(p, 8, 42, func(rep int, r *rng.Rand) float64 {
			return float64(rep) + r.Float64()
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rep %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
	// And independent of worker count.
	p1 := p
	p1.Workers = 1
	c := ParallelReps(p1, 8, 42, func(rep int, r *rng.Rand) float64 {
		return float64(rep) + r.Float64()
	})
	// Worker-count independence holds for the multi-worker path (seeds are
	// pre-derived); the single-worker path uses stream derivation, so only
	// check the multi-worker paths against each other.
	p2 := p
	p2.Workers = 2
	d := ParallelReps(p2, 8, 42, func(rep int, r *rng.Rand) float64 {
		return float64(rep) + r.Float64()
	})
	for i := range a {
		if a[i] != d[i] {
			t.Fatalf("rep %d differs between 4 and 2 workers", i)
		}
	}
	_ = c
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
	got := map[string]bool{}
	for _, e := range All() {
		got[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, ok := ByID("E1"); !ok {
		t.Error("ByID(E1) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

// tinyProfile is small enough that the full experiment suite smoke-runs in
// seconds.
var tinyProfile = Profile{Name: "tiny", N: 2000, Reps: 3}

func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke suite skipped in -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables := e.Run(tinyProfile, 1234)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s table %s has no rows", e.ID, tab.ID)
				}
				if tab.Text() == "" || tab.CSV() == "" {
					t.Errorf("%s table %s renders empty", e.ID, tab.ID)
				}
			}
		})
	}
}
