package expt

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

func init() {
	register("E7", "Median vs 3-majority — the exponential time/answer gap", runE7)
	register("E10", "Polling & 2-choices fail; 3-majority does not", runE10)
	register("E11", "Undecided-state dynamics — md-linear time and plurality death", runE11)
}

// runE7 contrasts the median dynamics (Doerr et al.) with 3-majority on the
// same biased k-color inputs. Median stabilizes in O(log n) rounds
// regardless of k — but on an approximate median color, not the plurality —
// while 3-majority takes Θ(k·ln n) and returns the right answer. The two
// columns "rounds" and "won plurality" make both halves of the gap visible:
// as k grows the time ratio diverges (exponentially in the exponent of
// k = n^a) and median's plurality success stays ≈ 0.
func runE7(p Profile, seed uint64) []*Table {
	n := p.N
	ks := []int{8, 16, 32, 64, 128}
	if quickish(p) {
		ks = []int{8, 32}
	}
	t := &Table{
		ID:    "E7",
		Title: "median vs 3-majority: rounds and correctness vs k",
		Note: fmt.Sprintf("n=%d, Theorem-2-style start with slight plurality on color 0, %d reps; prediction: median rounds ≈ O(ln n) flat, 3-majority rounds ∝ k·ln n, median never returns the plurality",
			n, p.Reps),
		Columns: []string{"k", "median_rounds", "median_won", "3maj_rounds", "3maj_won", "time_ratio"},
	}
	for _, k := range ks {
		k := k
		type out struct {
			rounds float64
			won    bool
		}
		run := func(rule dynamics.Rule, offset uint64) []out {
			return ParallelReps(p, p.Reps, seed+uint64(k)*31+offset, func(_ int, r *rng.Rand) out {
				// Near-balanced start with a small planted plurality on
				// color 0 — enough for 3-majority to find, invisible to
				// median (whose fixed point is the middle color).
				init := colorcfg.Theorem2(n, k, 0.4)
				e := engine.NewCliqueMultinomial(rule, init)
				res := core.Run(e, core.Options{MaxRounds: 500_000, Rand: r})
				return out{rounds: float64(res.Rounds), won: res.WonInitialPlurality}
			})
		}
		med := run(dynamics.Median{}, 0)
		maj := run(dynamics.ThreeMajority{}, 7777)
		summarize := func(os []out) (stats.Summary, int) {
			rs := make([]float64, len(os))
			wins := 0
			for i, o := range os {
				rs[i] = o.rounds
				if o.won {
					wins++
				}
			}
			return stats.Summarize(rs), wins
		}
		ms, mw := summarize(med)
		js, jw := summarize(maj)
		t.AddRow(fmt.Sprintf("%d", k),
			fmtF(ms.Mean), fmt.Sprintf("%d/%d", mw, len(med)),
			fmtF(js.Mean), fmt.Sprintf("%d/%d", jw, len(maj)),
			fmtF(js.Mean/math.Max(ms.Mean, 1)))
	}
	return []*Table{t}
}

// runE10 reproduces the paper's motivation for sampling three: the polling
// (1-majority) dynamics converges to the minority color with constant
// probability even for k = 2 and bias s = n/2, and 2-choices with uniform
// tie-breaking is provably the same process. 3-majority's failure
// probability vanishes. The voter-model martingale predicts polling's
// minority-win probability = initial minority share = 1/4 independent of n.
func runE10(p Profile, seed uint64) []*Table {
	reps := p.Reps * 10
	ns := []int64{1000, 4000, 16000}
	if quickish(p) {
		ns = []int64{1000, 4000}
	}
	rules := []dynamics.Rule{dynamics.Polling{}, dynamics.TwoChoices{}, dynamics.ThreeMajority{}}
	t := &Table{
		ID:    "E10",
		Title: "P(converge to minority) for k=2, c = (3n/4, n/4)",
		Note: fmt.Sprintf("%d reps; voter-model prediction: polling and 2-choices lose with prob ≈ 0.25 at every n and take Θ(n) rounds; 3-majority loses with prob → 0 in O(log n) rounds",
			reps),
		Columns: []string{"rule", "n", "P(minority_wins)", "wilson95", "rounds_mean"},
	}
	for _, rule := range rules {
		for _, n := range ns {
			rule, n := rule, n
			type out struct {
				minority bool
				rounds   float64
			}
			results := ParallelReps(p, reps, seed+hashName(rule.Name())+uint64(n), func(_ int, r *rng.Rand) out {
				init := colorcfg.FromCounts(3*n/4, n/4)
				e := engine.NewCliqueMultinomial(rule, init)
				res := core.Run(e, core.Options{MaxRounds: 2_000_000, Rand: r})
				return out{minority: res.Stopped && res.Winner == 1, rounds: float64(res.Rounds)}
			})
			losses := 0
			rounds := make([]float64, len(results))
			for i, o := range results {
				if o.minority {
					losses++
				}
				rounds[i] = o.rounds
			}
			rate := float64(losses) / float64(len(results))
			lo, hi := stats.WilsonInterval(losses, len(results), 1.96)
			t.AddRow(rule.Name(), fmtI(n), fmtF(rate),
				fmt.Sprintf("[%.3f,%.3f]", lo, hi), fmtF(stats.Mean(rounds)))
		}
	}
	return []*Table{t}
}

// runE11 measures the undecided-state dynamics. Table 1: rounds to full
// consensus across configuration shapes with increasing monochromatic
// distance md(c); the SODA'15 analysis predicts time ≈ Θ(md·ln n), so the
// normalized column is roughly flat, while 3-majority on the same inputs
// is governed by bias/λ, not md. Table 2: the k = ω(sqrt n) failure mode —
// from a balanced configuration with k = n/2 colors the plurality color
// dies within a few rounds with probability ≈ 1.
func runE11(p Profile, seed uint64) []*Table {
	n := p.N
	type shape struct {
		name string
		mk   func() colorcfg.Config
	}
	shapes := []shape{
		{"planted c1=n/2", func() colorcfg.Config { return colorcfg.PlantedLeader(n, 64, n/2) }},
		{"two-block k=8", func() colorcfg.Config { return colorcfg.TwoBlock(n, 8, n/50, 0.95) }},
		{"near-balanced k=4", func() colorcfg.Config { return colorcfg.Biased(n, 4, n/100) }},
		{"near-balanced k=16", func() colorcfg.Config { return colorcfg.Biased(n, 16, n/100) }},
		{"near-balanced k=64", func() colorcfg.Config { return colorcfg.Biased(n, 64, n/100) }},
	}
	if quickish(p) {
		shapes = shapes[:4]
	}
	t1 := &Table{
		ID:    "E11",
		Title: "undecided-state dynamics: rounds vs monochromatic distance",
		Note: fmt.Sprintf("n=%d, %d reps; prediction: undecided rounds ≈ Θ(md·ln n) — normalized column flat; 3-majority columns for reference",
			n, p.Reps),
		Columns: []string{"shape", "md(c)", "und_rounds", "und/(md·ln n)", "und_won", "3maj_rounds"},
	}
	for _, sh := range shapes {
		sh := sh
		init := sh.mk()
		md := init.MonochromaticDistance()
		type out struct {
			rounds float64
			won    bool
		}
		und := ParallelReps(p, p.Reps, seed+hashName(sh.name), func(_ int, r *rng.Rand) out {
			e := engine.NewUndecidedExact(sh.mk())
			res := core.Run(e, core.Options{
				MaxRounds: 500_000,
				Rand:      r,
				Stop:      core.WhenConsensusOf(n),
			})
			return out{rounds: float64(res.Rounds), won: res.Stopped && res.Winner == res.InitialPlurality}
		})
		maj := ParallelReps(p, p.Reps, seed+hashName(sh.name)+99, func(_ int, r *rng.Rand) float64 {
			e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, sh.mk())
			res := core.Run(e, core.Options{MaxRounds: 500_000, Rand: r})
			return float64(res.Rounds)
		})
		uRounds := make([]float64, len(und))
		uWins := 0
		for i, o := range und {
			uRounds[i] = o.rounds
			if o.won {
				uWins++
			}
		}
		us := stats.Summarize(uRounds)
		t1.AddRow(sh.name, fmtF(md), fmtF(us.Mean),
			fmtF(us.Mean/(md*math.Log(float64(n)))),
			fmt.Sprintf("%d/%d", uWins, len(und)),
			fmtF(stats.Mean(maj)))
	}

	// Table 2: plurality death at k = ω(sqrt n).
	t2 := &Table{
		ID:    "E11b",
		Title: "undecided-state dynamics: plurality death at k = n/2",
		Note:  "balanced config, 2 agents per color, +1 planted on color 0; P(color 0 extinct within 10 rounds) should be ≈ 1 for the undecided dynamics (SODA'15 §3 failure mode), while 3-majority retains color 0 with constant probability",
		Columns: []string{
			"n", "k", "rule", "P(plurality_dead_by_r10)", "wilson95",
		},
	}
	nd := p.N / 2
	kd := int(nd / 2)
	deathProb := func(und bool, offset uint64) (int, int) {
		results := ParallelReps(p, p.Reps, seed+offset, func(_ int, r *rng.Rand) bool {
			init := colorcfg.Balanced(nd, kd)
			init[0]++
			init[kd-1]--
			var e engine.Engine
			if und {
				e = engine.NewUndecidedExact(init)
			} else {
				e = engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			}
			for i := 0; i < 10; i++ {
				e.Step(r)
				if e.Config()[0] == 0 {
					return true
				}
			}
			return false
		})
		dead := 0
		for _, d := range results {
			if d {
				dead++
			}
		}
		return dead, len(results)
	}
	for _, cfg := range []struct {
		name   string
		und    bool
		offset uint64
	}{{"undecided", true, 555}, {"3-majority", false, 556}} {
		dead, total := deathProb(cfg.und, cfg.offset)
		lo, hi := stats.WilsonInterval(dead, total, 1.96)
		t2.AddRow(fmtI(nd), fmt.Sprintf("%d", kd), cfg.name,
			fmt.Sprintf("%d/%d", dead, total), fmt.Sprintf("[%.2f,%.2f]", lo, hi))
	}
	return []*Table{t1, t2}
}
