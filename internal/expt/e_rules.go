package expt

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

func init() {
	register("E4", "Theorem 3 — only uniform clear-majority rules solve plurality", runE4)
	register("E5", "Theorem 4 — h-plurality speedup is only ~h²", runE5)
}

// runE4 runs the Theorem 3 rule zoo from the Lemma 8 starting shape
// (n/3 + s, n/3, n/3 − s) with s = 5% of n and reports how often each rule
// drives the network to the *initial plurality* color. Rules with both the
// clear-majority and uniform properties (3-majority) must win essentially
// always; every other rule fails with at least constant probability
// (median-like rules converge to the middle color; polling-like rules to a
// proportional lottery).
func runE4(p Profile, seed uint64) []*Table {
	n := p.N / 2
	if n < 3000 {
		n = 3000
	}
	if n > 30000 {
		n = 30000 // the agent-sampled engine is O(n) per round
	}
	s := n / 20
	// Generous horizon: 3-majority needs tens of rounds here; rules that
	// have not reached plurality consensus within the cap have long
	// dissolved the initial bias (the polling-like rule wanders for Θ(n)
	// rounds toward a proportional lottery) and count as failures.
	maxRounds := 1500
	t := &Table{
		ID:    "E4",
		Title: "plurality success rate of the 3-input rule zoo",
		Note: fmt.Sprintf("n=%d, start (n/3+s, n/3, n/3−s) with s=n/20 planted on each rule's weakest rainbow rank (Lemma 8), %d reps, horizon %d rounds; Theorem 3: only rules with clear-majority AND uniform properties succeed from o(n) bias",
			n, p.Reps, maxRounds),
		Columns: []string{"rule", "clear-majority", "uniform", "won_plurality", "rate", "wilson95"},
	}
	probeRng := rng.New(seed ^ 0xabc)
	for _, rule := range dynamics.RuleZoo() {
		rule := rule
		clear := dynamics.HasClearMajority(rule, []colorcfg.Color{0, 1, 2, 3}, probeRng)
		uniform := dynamics.IsUniform(rule, 0, 1, 2, probeRng, 1, 0.01)
		// Lemma 8 plants the plurality on the color the rule treats worst:
		// the rank (lo/mid/hi) with the smallest rainbow δ. Uniform rules
		// have no weak rank, so the placement is irrelevant for them.
		weak := 0
		if pr, ok := rule.(*dynamics.PermutationRule); ok {
			dLo, dMid, dHi := pr.DeltaProfile()
			if dMid < dLo {
				weak = 1
			}
			if dHi < []int{dLo, dMid, dHi}[weak] {
				weak = 2
			}
		}
		results := ParallelReps(p, p.Reps, seed+hashName(rule.Name()), func(rep int, r *rng.Rand) bool {
			// Lemma 8 shape (x+s, x, x−s) with the leader on the weak
			// rank; rounding absorbed by the leader.
			x := n / 3
			init := colorcfg.New(3)
			init[weak] = x + s + n - 3*x
			init[(weak+1)%3] = x
			init[(weak+2)%3] = x - s
			e := engine.NewCliqueSampled(rule, init, 1, seed^uint64(rep)*0x9e37+hashName(rule.Name()))
			defer e.Close()
			res := core.Run(e, core.Options{
				MaxRounds: maxRounds,
				Rand:      r,
				Stop:      core.Any(core.WhenMonochromatic(), core.WhenColorDead(0)),
			})
			return res.WonInitialPlurality
		})
		wins := 0
		for _, w := range results {
			if w {
				wins++
			}
		}
		rate := float64(wins) / float64(len(results))
		lo, hi := stats.WilsonInterval(wins, len(results), 1.96)
		t.AddRow(rule.Name(), fmt.Sprintf("%v", clear), fmt.Sprintf("%v", uniform),
			fmt.Sprintf("%d/%d", wins, len(results)), fmtF(rate),
			fmt.Sprintf("[%.2f,%.2f]", lo, hi))
	}
	return []*Table{t}
}

// hashName derives a stable seed offset from a rule name.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// runE5 sweeps the sample size h of the h-plurality dynamics from the
// near-balanced Theorem 4 start (max c_j <= 3n/(2k)) and measures the time
// for the leading color to double to 2n/k — exactly the quantity Theorem 4
// lower-bounds by Ω(k/h²). The normalized column rounds·h²/k should stay
// bounded away from 0 (and roughly flat), showing that growing h buys only
// a quadratic speedup.
func runE5(p Profile, seed uint64) []*Table {
	n := p.N
	k := 32
	hs := []int{3, 5, 9, 17, 33}
	if quickish(p) {
		n = p.N / 2
		hs = []int{3, 9, 17}
	}
	t := &Table{
		ID:    "E5",
		Title: "h-plurality: doubling time vs sample size h (balanced start)",
		Note: fmt.Sprintf("n=%d, k=%d, balanced start, %d reps; Theorem 4: doubling time = Ω(k/h²), so rounds·h²/k ≳ const",
			n, k, p.Reps),
		Columns: []string{"h", "rounds_to_2n/k_mean", "rounds_std", "rounds·h²/k", "speedup_vs_h3", "samples/agent"},
	}
	var base float64
	for _, h := range hs {
		h := h
		results := ParallelReps(p, p.Reps, seed+uint64(h)*131, func(rep int, r *rng.Rand) float64 {
			init := colorcfg.Balanced(n, k)
			e := engine.NewCliqueSampled(dynamics.NewHPlurality(h), init, 1, seed^(uint64(h)<<32)^uint64(rep))
			defer e.Close()
			target := 2 * n / int64(k)
			rounds := 0
			for rounds < 100_000 {
				if first, _ := e.Config().TopTwo(); first >= target {
					break
				}
				e.Step(r)
				rounds++
			}
			return float64(rounds)
		})
		sum := stats.Summarize(results)
		if h == hs[0] {
			base = sum.Mean
		}
		norm := sum.Mean * float64(h*h) / float64(k)
		speedup := base / math.Max(sum.Mean, 1e-9)
		// Communication: every agent pulls h colors per round, so the
		// total per-agent sample traffic is rounds·h — the quantity the
		// paper's "scalable protocols need small h" remark is about.
		t.AddRow(fmt.Sprintf("%d", h), fmtF(sum.Mean), fmtF(sum.Std), fmtF(norm),
			fmtF(speedup), fmtF(sum.Mean*float64(h)))
	}
	return []*Table{t}
}
