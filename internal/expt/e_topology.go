package expt

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
	"plurality/internal/topo"
	"plurality/internal/topo/spectral"
)

func init() {
	register("E20", "Extension — spectral gap vs rounds to consensus", runE20)
}

// runE20 quantifies the E14 story: for every topology family in the topo
// registry, the table pairs the structure's estimated spectral gap (and
// sweep conductance) with the 3-majority rounds-to-consensus on it. The
// paper's clique guarantee sits at gap 1/2; as the gap shrinks through the
// expander families down to the torus, the barbell bottleneck, and the
// cycle, convergence slows and eventually stalls at the round cap — the
// gap, not the degree, is the controlling quantity (the 8-regular expander
// and the barbell have identical degrees and gaps five orders apart).
func runE20(p Profile, seed uint64) []*Table {
	n := p.N / 8
	side := int64(math.Sqrt(float64(n)))
	side -= side % 2 // even side → n even (barbell) and square (torus)
	n = side * side
	k := 4
	bias := n * 3 / 20
	limit := 10_000
	if quickish(p) {
		limit = 2_000
	}
	t := &Table{
		ID:    "E20",
		Title: "spectral gap vs 3-majority rounds to consensus across topology families",
		Note: fmt.Sprintf("n=%d, k=%d, bias=%d, %d reps, cap %d rounds; one quenched graph per family (registry spec, seed-derived); gap/conductance of the lazy walk estimated by topo/spectral (clique analytic); prediction: rounds grow as the gap falls, stalling on the Θ(1/n²)-gap families",
			n, k, bias, p.Reps, limit),
		Columns: []string{"graph", "spectral_gap", "conductance", "converged", "rounds_mean", "final_cmax_share"},
	}
	deg := 8.0
	specs := []string{
		"complete",
		"regular:8",
		fmt.Sprintf("gnp:%g", deg/float64(n)),
		"smallworld:8:0.1",
		"ba:4",
		fmt.Sprintf("sbm:2:%g:%g", deg/float64(n)*2, 2.0/float64(n)),
		"torus",
		"barbell:8",
		"cycle",
	}
	for _, spec := range specs {
		spec := spec
		canon, err := topo.Canonical(spec, n)
		if err != nil {
			panic(fmt.Sprintf("expt: E20 spec %q invalid at n=%d: %v", spec, n, err))
		}
		g, err := topo.Build(canon, n, rng.New(seed^hashName(canon)))
		if err != nil {
			panic(fmt.Sprintf("expt: E20 build %q: %v", canon, err))
		}
		gapCell, condCell := "-", "-"
		if diag, err := spectral.Diagnose(g, rng.New(seed+1), spectral.Options{}); err == nil {
			gapCell = fmt.Sprintf("%.2e", diag.SpectralGap)
			condCell = fmt.Sprintf("%.2e", diag.Conductance)
		}
		type out struct {
			rounds float64
			conv   bool
			share  float64
		}
		results := ParallelReps(p, p.Reps, seed+hashName(canon), func(rep int, r *rng.Rand) out {
			e := engine.NewGraphEngine(dynamics.ThreeMajority{}, g,
				colorcfg.Biased(n, k, bias), 2, seed^uint64(rep)<<8^hashName(canon), r)
			defer e.Close()
			res := core.Run(e, core.Options{MaxRounds: limit, Rand: r})
			first, _ := res.Final.TopTwo()
			return out{rounds: float64(res.Rounds), conv: res.Stopped,
				share: float64(first) / float64(n)}
		})
		conv := 0
		var rounds, share float64
		for _, o := range results {
			if o.conv {
				conv++
			}
			rounds += o.rounds / float64(len(results))
			share += o.share / float64(len(results))
		}
		t.AddRow(canon, gapCell, condCell, fmt.Sprintf("%d/%d", conv, len(results)),
			fmtF(rounds), fmtF(share))
	}
	return []*Table{t}
}
