package expt

import (
	"fmt"

	"plurality/internal/adversary"
	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

func init() {
	register("E8", "Corollary 4 — self-stabilization against an F-bounded adversary", runE8)
}

// runE8 sweeps the adversary budget F around the Corollary 4 threshold
// s/λ. For F well below s/(4λ) (the per-round bias gain of Lemma 3) the
// process reaches M-plurality consensus with M = s/λ + 10F in O(λ·ln n)
// rounds and then *stays* there (the stability window column tracks the
// worst minority mass over a post-convergence window). Budgets at or above
// the per-round gain stall or reverse the process — the threshold the
// corollary's F = o(s/λ) condition protects against.
func runE8(p Profile, seed uint64) []*Table {
	n := p.N * 2
	k := 4
	lambda := core.Lambda(n, k)
	s := core.Corollary1Bias(n, k, 1.0)
	gain := float64(s) / (4 * lambda) // Lemma 3 per-round bias gain at the start
	budgets := []int64{0, int64(gain / 16), int64(gain / 4), int64(gain), int64(4 * gain)}
	if quickish(p) {
		budgets = []int64{0, int64(gain / 4), int64(4 * gain)}
	}
	const window = 100
	t := &Table{
		ID:    "E8",
		Title: "3-majority vs F-bounded 'strongest-rival' adversary",
		Note: fmt.Sprintf("n=%d, k=%d, s=%d, λ=%.3g, Lemma-3 gain s/4λ=%.0f, %d reps; Corollary 4: for F = o(s/λ), O(s/λ + F)-plurality is reached and held; F ≳ gain stalls the process",
			n, k, s, lambda, gain, p.Reps),
		Columns: []string{"F", "F/(s/4λ)", "reached_Mplur", "rounds_mean", "window_worst_minority", "plurality_survived"},
	}
	for _, f := range budgets {
		f := f
		m := int64(core.SelfStabilizationResidue(s, lambda)) + 10*f
		type out struct {
			reached   bool
			rounds    float64
			worstMass int64
			survived  bool
		}
		results := ParallelReps(p, p.Reps, seed+uint64(f)*3, func(_ int, r *rng.Rand) out {
			init := colorcfg.Biased(n, k, s)
			e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			adv := adversary.Strongest{F: f}
			res := core.Run(e, core.Options{
				MaxRounds: 3000,
				Rand:      r,
				Adversary: adv,
				Stop:      core.WhenMPlurality(n, m),
			})
			o := out{reached: res.Stopped, rounds: float64(res.Rounds)}
			if !res.Stopped {
				o.survived = res.Final.Plurality() == 0
				return o
			}
			// Stability window: keep the adversary running and record the
			// worst minority mass (Corollary 4's "almost-stability" phase).
			for i := 0; i < window; i++ {
				e.Step(r)
				adv.Corrupt(e, r)
				c := e.Config()
				first, _ := c.TopTwo()
				if mass := n - first; mass > o.worstMass {
					o.worstMass = mass
				}
			}
			o.survived = e.Config().Plurality() == 0
			return o
		})
		reached := 0
		survived := 0
		rounds := make([]float64, 0, len(results))
		var worst int64
		for _, o := range results {
			if o.reached {
				reached++
				rounds = append(rounds, o.rounds)
				if o.worstMass > worst {
					worst = o.worstMass
				}
			}
			if o.survived {
				survived++
			}
		}
		meanRounds := 0.0
		if len(rounds) > 0 {
			meanRounds = stats.Mean(rounds)
		}
		t.AddRow(fmtI(f), fmtF(float64(f)/gain),
			fmt.Sprintf("%d/%d", reached, len(results)),
			fmtF(meanRounds), fmtI(worst),
			fmt.Sprintf("%d/%d", survived, len(results)))
	}
	return []*Table{t}
}
