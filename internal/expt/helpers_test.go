package expt

import (
	"testing"

	"plurality/internal/rng"
)

func TestHashNameStableAndDistinct(t *testing.T) {
	a1 := hashName("3-majority")
	a2 := hashName("3-majority")
	b := hashName("median")
	if a1 != a2 {
		t.Fatal("hashName not deterministic")
	}
	if a1 == b {
		t.Fatal("hashName collides on distinct rules")
	}
	if hashName("") == 0 {
		t.Fatal("empty-name hash should be the FNV offset basis, not 0")
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtF(1234.5678) != "1.23e+03" {
		t.Errorf("fmtF = %q", fmtF(1234.5678))
	}
	if fmtF(0.5) != "0.5" {
		t.Errorf("fmtF = %q", fmtF(0.5))
	}
	if fmtI(-42) != "-42" {
		t.Errorf("fmtI = %q", fmtI(-42))
	}
}

func TestQuickish(t *testing.T) {
	if !quickish(Quick) {
		t.Error("Quick profile must be quickish")
	}
	if quickish(Full) {
		t.Error("Full profile must not be quickish")
	}
}

func TestProfileWorkers(t *testing.T) {
	p := Profile{Workers: 3}
	if p.workers() != 3 {
		t.Errorf("workers() = %d", p.workers())
	}
	p.Workers = 0
	if p.workers() < 1 {
		t.Error("default workers must be >= 1")
	}
}

func TestParallelRepsSingleWorker(t *testing.T) {
	p := Profile{Workers: 1}
	out := ParallelReps(p, 5, 9, func(rep int, _ *rng.Rand) int {
		return rep * 2
	})
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
