// Package expt implements the benchmark harness: the nineteen experiments
// E1–E19 of DESIGN.md §4, each regenerating one of the paper's
// theorem-level "tables/figures" (convergence-time scaling, lower bounds,
// rule-zoo failure probabilities, adversarial self-stabilization, drift
// validation, and the extension studies E13–E19).
//
// Experiments are pure functions from (Profile, seed) to a Table; the
// Profile selects the workload scale (Quick for tests/benches, Full for
// the heavyweight EXPERIMENTS.md numbers — the committed file is the
// quick profile so CI can regenerate it; see cmd/experiments -doc).
// Replicates run on the shared internal/mc worker pool with pre-derived
// per-replicate seeds, so every table is reproducible from its seed and
// independent of the worker count.
package expt

import (
	"context"
	"encoding/csv"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"plurality/internal/mc"
	"plurality/internal/rng"
)

// Table is a rendered experiment result: one table (or figure series) of
// the reproduction.
type Table struct {
	ID      string
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; the cell count must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("expt: row has %d cells, table %s has %d columns",
			len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Text renders the table with aligned columns for terminal output.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as CSV (header + rows).
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Columns)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Profile scales an experiment. Quick keeps unit tests and benchmarks
// fast; Full produces the EXPERIMENTS.md numbers.
type Profile struct {
	Name string
	// N is the base population size.
	N int64
	// Reps is the number of replicates per sweep point.
	Reps int
	// Workers bounds replicate parallelism (0 = GOMAXPROCS).
	Workers int
}

// Quick is the test/bench profile.
var Quick = Profile{Name: "quick", N: 20_000, Reps: 8}

// Full is the report profile.
var Full = Profile{Name: "full", N: 200_000, Reps: 40}

func (p Profile) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelReps evaluates f on reps independent replicates across the
// shared internal/mc worker pool. Replicate i receives a private rng
// stream derived from (seed, i) before any work is scheduled, so results
// are independent of scheduling and worker count. The returned slice is
// indexed by replicate.
func ParallelReps[T any](p Profile, reps int, seed uint64, f func(rep int, r *rng.Rand) T) []T {
	out, _ := mc.Map(context.Background(), mc.Shared(p.workers()), reps, seed, f)
	return out
}

// Experiment is a registered experiment: a function from profile and seed
// to a set of result tables (most produce one table; E9 produces two).
type Experiment struct {
	ID    string
	Title string
	Run   func(p Profile, seed uint64) []*Table
}

// registry holds the experiments in display order.
var registry []Experiment

func register(id, title string, run func(p Profile, seed uint64) []*Table) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by numeric ID (E1, E2, …).
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool {
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

// idNum extracts the numeric part of an "E<number>" id (0 on parse error,
// which sorts malformed ids first and keeps All total).
func idNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "E"))
	return n
}

// ByID returns the experiment with the given ID, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fmtF renders a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.3g", v) }

// fmtI renders an int64.
func fmtI(v int64) string { return fmt.Sprintf("%d", v) }
