package expt

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/exact"
	"plurality/internal/meanfield"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

func init() {
	register("E17", "Validation — simulators vs the exact Markov chain", runE17)
	register("E18", "Validation — stochastic process vs mean-field recursion", runE18)
}

// runE17 solves the full configuration chain exactly for a small system
// (linear algebra, no sampling) and compares absorption probabilities and
// expected absorption times against Monte-Carlo estimates from the
// engines. Agreement here certifies the whole simulation stack end to
// end; polling doubles as an analytic control (its absorption law is the
// martingale c_j/n exactly).
func runE17(p Profile, seed uint64) []*Table {
	n := int64(15)
	start := colorcfg.FromCounts(7, 5, 3)
	reps := p.Reps * 1000
	t := &Table{
		ID:    "E17",
		Title: "exact chain vs Monte-Carlo (n=15, k=3, start (7,5,3))",
		Note: fmt.Sprintf("%d Monte-Carlo reps per rule; exact values from the absorbing-chain linear system; polling's exact column must equal the martingale (7/15, 5/15, 3/15)",
			reps),
		Columns: []string{"rule", "quantity", "exact", "monte-carlo", "|z|"},
	}
	rules := []struct {
		name  string
		model dynamics.ProbModel
		rule  dynamics.Rule
	}{
		{"3-majority", dynamics.ThreeMajority{}, dynamics.ThreeMajority{}},
		{"median", dynamics.Median{}, dynamics.Median{}},
		{"polling", dynamics.Polling{}, dynamics.Polling{}},
	}
	for _, rl := range rules {
		rl := rl
		chain := exact.New(n, 3, rl.model)
		wantProbs, wantTime := chain.AbsorptionFrom(start)

		type out struct {
			winner colorcfg.Color
			rounds float64
		}
		results := ParallelReps(p, reps, seed+hashName(rl.name), func(_ int, r *rng.Rand) out {
			e := engine.NewCliqueMultinomial(rl.rule, start)
			rounds := 0
			for !e.Config().IsMonochromatic() {
				e.Step(r)
				rounds++
			}
			return out{winner: e.Config().Plurality(), rounds: float64(rounds)}
		})
		wins := make([]int, 3)
		meanRounds := 0.0
		for _, o := range results {
			wins[o.winner]++
			meanRounds += o.rounds / float64(len(results))
		}
		for j := 0; j < 3; j++ {
			got := float64(wins[j]) / float64(len(results))
			se := math.Sqrt(wantProbs[j]*(1-wantProbs[j])/float64(len(results))) + 1e-12
			t.AddRow(rl.name, fmt.Sprintf("P(absorb color %d)", j),
				fmt.Sprintf("%.5f", wantProbs[j]), fmt.Sprintf("%.5f", got),
				fmtF(math.Abs(got-wantProbs[j])/se))
		}
		// Expected time z-score against the replicate spread.
		roundsAll := make([]float64, len(results))
		for i, o := range results {
			roundsAll[i] = o.rounds
		}
		sm := stats.Summarize(roundsAll)
		se := sm.Std/math.Sqrt(float64(sm.N)) + 1e-12
		t.AddRow(rl.name, "E[rounds]",
			fmt.Sprintf("%.4f", wantTime), fmt.Sprintf("%.4f", meanRounds),
			fmtF(math.Abs(meanRounds-wantTime)/se))
	}
	return []*Table{t}
}

// runE18 measures how far the n-agent stochastic process strays from the
// deterministic mean-field recursion over a fixed 10-round window,
// sweeping n. Concentration predicts max-round L1 deviation Θ(1/sqrt n):
// the fitted log-log slope should be ≈ -1/2.
func runE18(p Profile, seed uint64) []*Table {
	ns := []int64{1000, 4000, 16000, 64000, 256000}
	if quickish(p) {
		ns = []int64{1000, 16000, 256000}
	}
	const rounds = 10
	k := 4
	t := &Table{
		ID:    "E18",
		Title: "stochastic vs mean-field: L1 deviation over 10 rounds vs n",
		Note: fmt.Sprintf("k=%d, 20%%-biased start, %d reps; prediction: deviation ∝ n^(-1/2) — the log-log slope row reports the fit",
			k, p.Reps),
		Columns: []string{"n", "mean_L1_deviation", "deviation·sqrt(n)"},
	}
	devs := make([]float64, 0, len(ns))
	for _, n := range ns {
		n := n
		init := colorcfg.Biased(n, k, n/5)
		mf := meanfield.Iterate(dynamics.ThreeMajority{}, init.Fractions(), rounds)
		results := ParallelReps(p, p.Reps, seed+uint64(n), func(_ int, r *rng.Rand) float64 {
			e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			worst := 0.0
			for tt := 1; tt <= rounds; tt++ {
				e.Step(r)
				d := meanfield.Distance(e.Config().Fractions(), mf[tt])
				if d > worst {
					worst = d
				}
			}
			return worst
		})
		mean := stats.Mean(results)
		devs = append(devs, mean)
		t.AddRow(fmtI(n), fmtF(mean), fmtF(mean*math.Sqrt(float64(n))))
	}
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	fit := stats.LogLogSlope(xs, devs)
	t.Note += fmt.Sprintf(" | fitted slope: %.3f (R²=%.3f)", fit.Slope, fit.R2)
	return []*Table{t}
}
