package dist

import (
	"math/bits"
	"testing"

	"plurality/internal/rng"
)

// TestFillUniformMatchesInt63n pins the exact kernel's contract: for any n,
// FillUniform produces the same values AND leaves the generator in the same
// state as sequential Int63n calls — the property that makes batching
// invisible to the golden traces. The n values cover the shift fast path
// (1, powers of two), small odd degrees, and huge n where Lemire's
// rejection actually fires.
func TestFillUniformMatchesInt63n(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 6, 8, 1000, 1 << 20, (1 << 61) + 1, 3 << 61} {
		r1, r2 := rng.New(99), rng.New(99)
		got := make([]int64, 1000)
		FillUniform(r1, n, got)
		for i, v := range got {
			want := r2.Int63n(n)
			if v != want {
				t.Fatalf("n=%d: dst[%d] = %d, want Int63n's %d", n, i, v, want)
			}
			if v < 0 || v >= n {
				t.Fatalf("n=%d: dst[%d] = %d out of range", n, i, v)
			}
		}
		if r1.Uint64() != r2.Uint64() {
			t.Errorf("n=%d: generator state diverged from sequential Int63n", n)
		}
	}
}

// TestFillUniformRelaxedContract pins the relaxed kernel's discipline:
// exactly one raw Uint64 per slot (in block order), each mapped to the high
// word of x·n, values in range, and deterministic per seed.
func TestFillUniformRelaxedContract(t *testing.T) {
	for _, n := range []int64{1, 2, 6, 8, 1000, 3 << 61} {
		r1, r2 := rng.New(1234), rng.New(1234)
		got := make([]int64, 700) // not a multiple of the 256-wide block
		FillUniformRelaxed(r1, n, got)
		for i, v := range got {
			hi, _ := bits.Mul64(r2.Uint64(), uint64(n))
			if v != int64(hi) {
				t.Fatalf("n=%d: dst[%d] = %d, want multiply-shift %d", n, i, v, hi)
			}
			if v < 0 || v >= n {
				t.Fatalf("n=%d: dst[%d] = %d out of range", n, i, v)
			}
		}
		if r1.Uint64() != r2.Uint64() {
			t.Errorf("n=%d: relaxed kernel consumed draws beyond one per slot", n)
		}
	}
}

func TestFillUniformPanicsOnBadN(t *testing.T) {
	for name, fn := range map[string]func(*rng.Rand, int64, []int64){
		"FillUniform": FillUniform, "FillUniformRelaxed": FillUniformRelaxed,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(0) did not panic", name)
				}
			}()
			fn(rng.New(1), 0, make([]int64, 4))
		}()
	}
}

// TestFillUniformUniformity is a coarse GOF guard on both kernels: over a
// small modulus every residue class should be hit roughly equally.
func TestFillUniformUniformity(t *testing.T) {
	const n, draws = 7, 70_000
	for name, fn := range map[string]func(*rng.Rand, int64, []int64){
		"FillUniform": FillUniform, "FillUniformRelaxed": FillUniformRelaxed,
	} {
		dst := make([]int64, draws)
		fn(rng.New(5), n, dst)
		var counts [n]float64
		for _, v := range dst {
			counts[v]++
		}
		exp := float64(draws) / n
		var chi2 float64
		for _, c := range counts {
			d := c - exp
			chi2 += d * d / exp
		}
		// df=6, α≈0.001 critical value 22.46.
		if chi2 > 22.46 {
			t.Errorf("%s: χ² = %.1f over %d classes (want < 22.46)", name, chi2, n)
		}
	}
}
