// Package dist is the performance-critical sampling kernel layer of the
// simulator. Every engine hot path — the O(k)-per-round exact clique engine,
// the stateful Markov engine, the undecided-state dynamics, and the
// agent-sampling engines — draws its randomness through this package, so the
// samplers here determine whether a round costs O(k) or O(n).
//
// The kernels (complexities per draw; see DESIGN.md §5 for the measured
// numbers):
//
//   - Binomial — O(1) amortized for any (n, p): inversion (BINV) when
//     n·min(p,1-p) is small, Hörmann's transformed-rejection sampler with
//     squeeze (BTRS) otherwise. Never O(n) Bernoulli trials.
//   - Multinomial — the conditional-binomial chain: k-1 Binomial draws, so a
//     configuration-level round is O(k) and independent of n up to 10⁹+.
//   - MultinomialPMF / LogMultinomialPMF — evaluated in log-space via
//     math.Lgamma so the exact-chain transition matrices stay finite for
//     counts far beyond factorial overflow.
//   - Alias (alias.go) — Vose's alias method over a flat slot array, with an
//     allocation-free ResetCounts rebuild and a batched SampleMany.
//
// All functions are deterministic given the *rng.Rand stream and allocate
// nothing, making them safe for per-round use in steady-state 0 allocs/op
// engine loops.
package dist

import (
	"math"

	"plurality/internal/rng"
)

// binvThreshold is the n·min(p,1-p) value below which binomial inversion
// (expected n·p iterations, no transcendental calls per iteration) beats the
// rejection sampler's constant setup. 14 follows Hörmann's recommendation.
const binvThreshold = 14.0

// Binomial returns one draw X ~ Binomial(n, p) in O(1) amortized time.
//
// For n·min(p,1-p) < 14 it uses sequential inversion (BINV); otherwise it
// uses BTRS, Hörmann's transformed-rejection algorithm with squeeze (W.
// Hörmann, "The generation of binomial random variates", J. Statist. Comput.
// Simul. 46, 1993), which is exact and needs ~1.15 uniform pairs per draw
// regardless of n. p outside [0,1] is clamped; n <= 0 returns 0.
func Binomial(r *rng.Rand, n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Work with q = min(p, 1-p) and mirror the result back: both samplers
	// below require p <= 1/2 for their run-time guarantees.
	if p > 0.5 {
		return n - Binomial(r, n, 1-p)
	}
	if float64(n)*p < binvThreshold {
		return binomialInversion(r, n, p)
	}
	return binomialBTRS(r, n, p)
}

// binomialInversion is BINV: walk the CDF from 0. Expected iterations n·p,
// so only used when that product is small. Requires 0 < p <= 1/2, where
// (1-p)^n >= e^(-2·binvThreshold) keeps the starting mass far from
// underflow.
func binomialInversion(r *rng.Rand, n int64, p float64) int64 {
	q := 1 - p
	s := p / q
	f := math.Exp(float64(n) * math.Log(q)) // (1-p)^n without pow-loop
	u := r.Float64()
	var x int64
	for u > f {
		u -= f
		x++
		if x > n {
			// Float round-off exhausted the tail; resample.
			x = 0
			f = math.Exp(float64(n) * math.Log(q))
			u = r.Float64()
			continue
		}
		f *= s * float64(n-x+1) / float64(x)
	}
	return x
}

// binomialBTRS is Hörmann's transformed-rejection sampler with squeeze.
// Requires n·p >= 10 and p <= 1/2. The squeeze step accepts ~85% of
// proposals without any transcendental call; the exact acceptance test
// compares against the log-PMF via Lgamma.
func binomialBTRS(r *rng.Rand, n int64, p float64) int64 {
	nf := float64(n)
	q := 1 - p
	spq := math.Sqrt(nf * p * q)

	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b

	// Constants of the exact test, computed lazily: the squeeze accepts the
	// bulk of draws without ever needing them.
	var (
		alpha, lpq, h float64
		m             float64
		haveExact     bool
	)

	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + c)
		if kf < 0 || kf > nf {
			continue
		}
		if us >= 0.07 && v <= vr {
			return int64(kf) // squeeze acceptance: no log/lgamma needed
		}
		if !haveExact {
			alpha = (2.83 + 5.1/b) * spq
			lpq = math.Log(p / q)
			m = math.Floor((nf + 1) * p)
			h = lgamma(m+1) + lgamma(nf-m+1)
			haveExact = true
		}
		v = v * alpha / (a/(us*us) + b)
		if math.Log(v) <= h-lgamma(kf+1)-lgamma(nf-kf+1)+(kf-m)*lpq {
			return int64(kf)
		}
	}
}

// lgamma wraps math.Lgamma, discarding the sign (arguments here are always
// positive, where Gamma > 0).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Multinomial fills out with one draw (X_1, ..., X_k) ~ Multinomial(n, probs)
// using the conditional-binomial chain:
//
//	X_j | X_1..X_{j-1}  ~  Binomial(n - Σ_{i<j} X_i,  p_j / (1 - Σ_{i<j} p_i)).
//
// Cost is at most k-1 Binomial draws — O(k) total, independent of n — and
// the chain short-circuits as soon as all n trials are spent, which on
// concentrated configurations (the common late-round case) makes it cheaper
// still. probs must be non-negative; it is treated as normalized (the last
// color absorbs any round-off so that Σ out = n always holds exactly).
// len(out) must equal len(probs). Allocation-free.
func Multinomial(r *rng.Rand, n int64, probs []float64, out []int64) {
	if len(out) != len(probs) {
		panic("dist: Multinomial output length mismatch")
	}
	k := len(probs)
	if k == 0 {
		if n > 0 {
			panic("dist: Multinomial with no categories and n > 0")
		}
		return
	}
	remaining := n
	rest := 1.0 // probability mass not yet consumed
	for j := 0; j < k-1; j++ {
		if remaining == 0 {
			clear(out[j:])
			return
		}
		if rest <= 0 {
			// Round-off consumed the mass early: dump the remainder here
			// (probabilistically negligible; preserves Σ out = n).
			out[j] = remaining
			clear(out[j+1:])
			return
		}
		p := probs[j] / rest
		if p > 1 {
			p = 1
		}
		x := Binomial(r, remaining, p)
		out[j] = x
		remaining -= x
		rest -= probs[j]
	}
	out[k-1] = remaining
}

// LogMultinomialPMF returns log P(X = counts) for X ~ Multinomial(n, probs)
// with n = Σ counts, computed in log-space via math.Lgamma:
//
//	log n! - Σ log c_j! + Σ c_j · log p_j.
//
// Categories with c_j = 0 contribute nothing even when p_j = 0 (the 0·log 0
// convention); a category with c_j > 0 and p_j <= 0 makes the probability
// zero (-Inf). Allocation-free.
func LogMultinomialPMF(counts []int64, probs []float64) float64 {
	if len(counts) != len(probs) {
		panic("dist: MultinomialPMF length mismatch")
	}
	var n int64
	logp := 0.0
	for j, c := range counts {
		if c < 0 {
			panic("dist: MultinomialPMF negative count")
		}
		if c == 0 {
			continue
		}
		n += c
		if probs[j] <= 0 {
			return math.Inf(-1)
		}
		cf := float64(c)
		logp += cf*math.Log(probs[j]) - lgamma(cf+1)
	}
	return logp + lgamma(float64(n)+1)
}

// MultinomialPMF returns P(X = counts) for X ~ Multinomial(Σ counts, probs).
// It exponentiates LogMultinomialPMF, so it underflows gracefully to 0 for
// astronomically unlikely configurations instead of overflowing factorials.
func MultinomialPMF(counts []int64, probs []float64) float64 {
	return math.Exp(LogMultinomialPMF(counts, probs))
}

// BinomialPMF returns P(X = x) for X ~ Binomial(n, p), evaluated in
// log-space. Used by tests and exact-chain cross-checks.
func BinomialPMF(n, x int64, p float64) float64 {
	if x < 0 || x > n {
		return 0
	}
	if p <= 0 {
		if x == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if x == n {
			return 1
		}
		return 0
	}
	nf, xf := float64(n), float64(x)
	return math.Exp(lgamma(nf+1) - lgamma(xf+1) - lgamma(nf-xf+1) +
		xf*math.Log(p) + (nf-xf)*math.Log(1-p))
}
