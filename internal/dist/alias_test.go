package dist

import (
	"testing"

	"plurality/internal/rng"
)

func TestAliasMatchesCounts(t *testing.T) {
	counts := []int64{1, 0, 3, 6, 0, 10, 100}
	var total int64
	for _, c := range counts {
		total += c
	}
	a := NewAliasCounts(counts)
	r := rng.New(42)
	const draws = 1_000_000
	obs := make([]float64, len(counts))
	for i := 0; i < draws; i++ {
		j := a.Sample(r)
		if j < 0 || j >= len(counts) {
			t.Fatalf("sample %d out of range", j)
		}
		obs[j]++
	}
	exp := make([]float64, len(counts))
	for j, c := range counts {
		exp[j] = float64(c) / float64(total) * draws
	}
	for j, c := range counts {
		if c == 0 && obs[j] != 0 {
			t.Errorf("zero-count category %d sampled %v times", j, obs[j])
		}
	}
	stat, df := chiSquareStat(t, obs, exp)
	if crit := chiSquareCrit(df); stat > crit {
		t.Errorf("alias χ² = %.1f > crit %.1f (df=%d)", stat, crit, df)
	}
}

// TestAliasSampleManyMatchesSample: the batched sampler must consume the
// rng stream identically to repeated single draws.
func TestAliasSampleManyMatchesSample(t *testing.T) {
	counts := []int64{5, 1, 9, 4, 11, 3}
	a := NewAliasCounts(counts)
	r1, r2 := rng.New(9), rng.New(9)
	batch := make([]int32, 1000)
	a.SampleMany(r1, batch)
	for i, got := range batch {
		if want := int32(a.Sample(r2)); got != want {
			t.Fatalf("draw %d: SampleMany %d != Sample %d", i, got, want)
		}
	}
}

func TestAliasResetCounts(t *testing.T) {
	a := NewAliasCounts([]int64{1, 1, 1, 1})
	// Concentrate all mass on category 2 and verify the rebuild took.
	a.ResetCounts([]int64{0, 0, 7, 0})
	r := rng.New(4)
	for i := 0; i < 10_000; i++ {
		if j := a.Sample(r); j != 2 {
			t.Fatalf("after reset, sampled %d, want 2", j)
		}
	}
	// Rebuild and rebuild again: chi-square after several cycles.
	counts := []int64{10, 30, 20, 40}
	for cycle := 0; cycle < 3; cycle++ {
		a.ResetCounts([]int64{1, 1, 1, 1})
		a.ResetCounts(counts)
	}
	const draws = 500_000
	obs := make([]float64, 4)
	for i := 0; i < draws; i++ {
		obs[a.Sample(r)]++
	}
	exp := []float64{0.1 * draws, 0.3 * draws, 0.2 * draws, 0.4 * draws}
	stat, df := chiSquareStat(t, obs, exp)
	if crit := chiSquareCrit(df); stat > crit {
		t.Errorf("post-reset χ² = %.1f > crit %.1f (df=%d)", stat, crit, df)
	}
}

// TestAliasResetAllocs: rebuilds and draws must be allocation-free — the
// sampled engine rebuilds the table every round.
func TestAliasResetAllocs(t *testing.T) {
	counts := make([]int64, 128)
	for j := range counts {
		counts[j] = int64(j + 1)
	}
	a := NewAliasCounts(counts)
	r := rng.New(8)
	buf := make([]int32, 256)
	if n := testing.AllocsPerRun(100, func() {
		a.ResetCounts(counts)
		a.Sample(r)
		a.SampleMany(r, buf)
	}); n != 0 {
		t.Errorf("Reset+Sample allocates %.1f objects/op, want 0", n)
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a := NewAliasCounts([]int64{5})
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if j := a.Sample(r); j != 0 {
			t.Fatalf("k=1 sampled %d", j)
		}
	}
}

func TestAliasWeights(t *testing.T) {
	a := NewAliasCounts([]int64{1, 1})
	a.ResetWeights([]float64{0.75, 0.25})
	r := rng.New(77)
	const draws = 400_000
	var zero float64
	for i := 0; i < draws; i++ {
		if a.Sample(r) == 0 {
			zero++
		}
	}
	got := zero / draws
	if got < 0.745 || got > 0.755 {
		t.Errorf("weight 0.75 sampled at rate %.4f", got)
	}
}

func TestAliasPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero-total":     func() { NewAliasCounts([]int64{0, 0}) },
		"negative-count": func() { NewAliasCounts([]int64{3, -1}) },
		"reset-mismatch": func() { NewAliasCounts([]int64{1, 1}).ResetCounts([]int64{1, 1, 1}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func BenchmarkAliasSample(b *testing.B) {
	counts := make([]int64, 64)
	for j := range counts {
		counts[j] = int64(j + 1)
	}
	a := NewAliasCounts(counts)
	r := rng.New(1)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += a.Sample(r)
	}
	_ = sink
}

func BenchmarkAliasSampleMany(b *testing.B) {
	counts := make([]int64, 64)
	for j := range counts {
		counts[j] = int64(j + 1)
	}
	a := NewAliasCounts(counts)
	r := rng.New(1)
	buf := make([]int32, 1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		a.SampleMany(r, buf)
	}
}

func BenchmarkAliasResetCounts(b *testing.B) {
	counts := make([]int64, 1024)
	for j := range counts {
		counts[j] = int64(j%37 + 1)
	}
	a := NewAliasCounts(counts)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.ResetCounts(counts)
	}
}
