package dist

import (
	"math/bits"

	"plurality/internal/rng"
)

// Batched uniform-index kernels for the graph engine's sparse hot path.
// Filling a whole block of neighbor indices in one tight loop (instead of
// one rng call interleaved per sample) lets the loop body stay in registers
// and lets the engine's subsequent color gathers pipeline their cache
// misses. Two disciplines are offered:
//
//   - FillUniform — exact: byte-identical to sequential r.Int63n(n) calls,
//     so batching is invisible to seeded runs (this is what keeps the
//     committed golden traces unchanged on the default sampler).
//   - FillUniformRelaxed — the sampler=batch discipline: exactly one raw
//     Uint64 per slot, mapped by 128-bit multiply-shift with no rejection.
//
// Both are deterministic and allocation-free.

// FillUniform fills dst with independent uniform draws from [0, n),
// consuming the rng exactly as len(dst) sequential r.Int63n(n) calls would —
// the output values and the generator's end state are byte-identical for
// any seed. Powers of two take a branch-free shift path (Lemire's rejection
// region is empty there, so the shift is exactly Int63n). Panics if n <= 0.
func FillUniform(r *rng.Rand, n int64, dst []int64) {
	if n <= 0 {
		panic("dist: FillUniform called with n <= 0")
	}
	un := uint64(n)
	if un&(un-1) == 0 {
		// n = 2^k: Int63n reduces to taking the top k bits (the rejection
		// threshold -n % n is zero, so the redraw loop can never run).
		// n = 1 has shift 64, which Go defines to yield 0 — one draw, index
		// 0, exactly like Int63n(1).
		shift := uint(bits.LeadingZeros64(un)) + 1
		for i := range dst {
			dst[i] = int64(r.Uint64() >> shift)
		}
		return
	}
	// General n: Lemire multiply-shift with rejection, the exact loop from
	// rng.Uint64n with the threshold hoisted (thresh < n, so the single
	// `lo < thresh` test subsumes Uint64n's `lo < n` pre-test without
	// changing which draws are rejected).
	thresh := -un % un
	for i := range dst {
		hi, lo := bits.Mul64(r.Uint64(), un)
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
		dst[i] = int64(hi)
	}
}

// FillUniformRelaxed fills dst with near-uniform draws from [0, n) under
// the sampler=batch rng discipline: exactly one raw Uint64 per slot (drawn
// in bulk via Uint64Block), mapped to an index by the high word of the
// 128-bit product x·n with no rejection step. The map is monotone and its
// bias is at most n·2⁻⁶⁴ per index — immaterial for degrees, but the output
// is NOT byte-identical to Int63n, which is why the relaxed discipline is
// opt-in and certified by its own golden trace. Panics if n <= 0.
func FillUniformRelaxed(r *rng.Rand, n int64, dst []int64) {
	if n <= 0 {
		panic("dist: FillUniformRelaxed called with n <= 0")
	}
	un := uint64(n)
	var raw [256]uint64
	for len(dst) > 0 {
		m := min(len(dst), len(raw))
		r.Uint64Block(raw[:m])
		for i, x := range raw[:m] {
			hi, _ := bits.Mul64(x, un)
			dst[i] = int64(hi)
		}
		dst = dst[m:]
	}
}
