package dist

import (
	"math"
	"testing"

	"plurality/internal/rng"
	"plurality/internal/stats"
)

// alpha999: each individual chi-square test rejects a correct sampler
// with probability ~1e-3. Seeds are fixed, so the tests are deterministic
// regardless.
const alpha999 = 0.001

// chiSquareCrit delegates to the shared GOF toolkit (internal/stats).
func chiSquareCrit(df int) float64 {
	return stats.ChiSquareCritical(df, alpha999)
}

// chiSquareStat wraps stats.ChiSquareGOF, failing the test on a
// degenerate (too-few-bins) comparison.
func chiSquareStat(t *testing.T, obs []float64, exp []float64) (stat float64, df int) {
	t.Helper()
	stat, df = stats.ChiSquareGOF(obs, exp)
	if df < 1 {
		t.Fatalf("too few usable bins (df=%d)", df)
	}
	return stat, df
}

func TestBinomialEdgeCases(t *testing.T) {
	r := rng.New(1)
	if got := Binomial(r, 0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d, want 0", got)
	}
	if got := Binomial(r, 100, 0); got != 0 {
		t.Errorf("Binomial(100, 0) = %d, want 0", got)
	}
	if got := Binomial(r, 100, 1); got != 100 {
		t.Errorf("Binomial(100, 1) = %d, want 100", got)
	}
	for i := 0; i < 1000; i++ {
		x := Binomial(r, 10, 0.5)
		if x < 0 || x > 10 {
			t.Fatalf("Binomial(10, .5) = %d out of range", x)
		}
		y := Binomial(r, 1_000_000_000, 0.25)
		if y < 0 || y > 1_000_000_000 {
			t.Fatalf("Binomial(1e9, .25) = %d out of range", y)
		}
	}
}

// TestBinomialChiSquare checks goodness of fit against the exact PMF across
// parameter regimes covering both samplers (inversion and BTRS) and the
// p > 1/2 mirror.
func TestBinomialChiSquare(t *testing.T) {
	cases := []struct {
		name  string
		n     int64
		p     float64
		draws int
		seed  uint64
	}{
		{"inversion-small", 10, 0.3, 200_000, 11},
		{"inversion-rare", 5000, 0.001, 200_000, 12},     // np = 5
		{"btrs-moderate", 100, 0.3, 200_000, 13},         // np = 30
		{"btrs-large-n", 1_000_000, 0.0001, 200_000, 14}, // np = 100
		{"mirror-high-p", 40, 0.9, 200_000, 15},
		{"btrs-half", 500, 0.5, 200_000, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(tc.seed)
			// Histogram over a window around the mean covering essentially
			// all mass; out-of-window draws land in the edge bins via clamp.
			mean := float64(tc.n) * tc.p
			sd := math.Sqrt(mean * (1 - tc.p))
			lo := int64(math.Max(0, mean-12*sd-2))
			hi := int64(math.Min(float64(tc.n), mean+12*sd+2))
			nb := int(hi - lo + 1)
			obs := make([]float64, nb)
			for i := 0; i < tc.draws; i++ {
				x := Binomial(r, tc.n, tc.p)
				if x < lo {
					x = lo
				}
				if x > hi {
					x = hi
				}
				obs[x-lo]++
			}
			exp := make([]float64, nb)
			for b := range exp {
				exp[b] = BinomialPMF(tc.n, lo+int64(b), tc.p) * float64(tc.draws)
			}
			// Account for truncated tail mass in the edge bins.
			var tail float64
			for x := int64(0); x < lo; x++ {
				tail += BinomialPMF(tc.n, x, tc.p)
			}
			exp[0] += tail * float64(tc.draws)
			stat, df := chiSquareStat(t, obs, exp)
			if crit := chiSquareCrit(df); stat > crit {
				t.Errorf("χ² = %.1f > crit %.1f (df=%d): %s fit rejected", stat, crit, df, tc.name)
			}
		})
	}
}

// TestBinomialMean sanity-checks first and second moments in the extreme-n
// regime where PMF-based histograms are impractical.
func TestBinomialMean(t *testing.T) {
	r := rng.New(99)
	const n, p, draws = int64(2_000_000_000), 0.37, 20_000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		x := float64(Binomial(r, n, p))
		sum += x
		sumSq += x * x
	}
	mean := sum / draws
	wantMean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if d := math.Abs(mean - wantMean); d > 6*sd/math.Sqrt(draws) {
		t.Errorf("mean %.1f deviates from %.1f by %.1f (> 6 standard errors)", mean, wantMean, d)
	}
	variance := sumSq/draws - mean*mean
	if ratio := variance / (sd * sd); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("variance ratio %.3f outside [0.9, 1.1]", ratio)
	}
}

func TestBinomialDeterminism(t *testing.T) {
	a, b := rng.New(7), rng.New(7)
	for i := 0; i < 1000; i++ {
		x := Binomial(a, 1000, 0.3)
		y := Binomial(b, 1000, 0.3)
		if x != y {
			t.Fatalf("draw %d: %d != %d for identical seeds", i, x, y)
		}
	}
}

func TestMultinomialSumInvariant(t *testing.T) {
	r := rng.New(3)
	probs := []float64{0.25, 0.25, 0.2, 0.15, 0.1, 0.05}
	out := make([]int64, len(probs))
	for _, n := range []int64{0, 1, 7, 1000, 1_000_000, 1_000_000_000} {
		for rep := 0; rep < 50; rep++ {
			Multinomial(r, n, probs, out)
			var sum int64
			for _, v := range out {
				if v < 0 {
					t.Fatalf("negative category count %v (n=%d)", out, n)
				}
				sum += v
			}
			if sum != n {
				t.Fatalf("Σ out = %d, want %d", sum, n)
			}
		}
	}
}

// TestMultinomialChiSquareJoint tests the full joint distribution on a
// small system by enumerating every composition of n into k parts.
func TestMultinomialChiSquareJoint(t *testing.T) {
	const n, draws = 6, 300_000
	probs := []float64{0.5, 0.3, 0.2}
	r := rng.New(21)
	// Index compositions (a, b, n-a-b) by a*(n+1)+b.
	obs := make([]float64, (n+1)*(n+1))
	exp := make([]float64, (n+1)*(n+1))
	out := make([]int64, 3)
	for i := 0; i < draws; i++ {
		Multinomial(r, n, probs, out)
		obs[out[0]*(n+1)+out[1]]++
	}
	counts := make([]int64, 3)
	for a := int64(0); a <= n; a++ {
		for b := int64(0); a+b <= n; b++ {
			counts[0], counts[1], counts[2] = a, b, n-a-b
			exp[a*(n+1)+b] = MultinomialPMF(counts, probs) * draws
		}
	}
	stat, df := chiSquareStat(t, obs, exp)
	if crit := chiSquareCrit(df); stat > crit {
		t.Errorf("joint χ² = %.1f > crit %.1f (df=%d)", stat, crit, df)
	}
}

// TestMultinomialMarginal checks that a non-leading category's marginal is
// Binomial(n, p_j) — the conditional-binomial chain must not distort later
// categories.
func TestMultinomialMarginal(t *testing.T) {
	const n, draws = int64(200), 200_000
	probs := []float64{0.1, 0.4, 0.3, 0.2}
	const j = 2 // deep in the chain
	r := rng.New(33)
	out := make([]int64, len(probs))
	obs := make([]float64, n+1)
	for i := 0; i < draws; i++ {
		Multinomial(r, n, probs, out)
		obs[out[j]]++
	}
	exp := make([]float64, n+1)
	for x := int64(0); x <= n; x++ {
		exp[x] = BinomialPMF(n, x, probs[j]) * draws
	}
	stat, df := chiSquareStat(t, obs, exp)
	if crit := chiSquareCrit(df); stat > crit {
		t.Errorf("marginal χ² = %.1f > crit %.1f (df=%d)", stat, crit, df)
	}
}

func TestLogMultinomialPMFSumsToOne(t *testing.T) {
	probs := []float64{0.45, 0.3, 0.15, 0.1}
	const n = 8
	var total float64
	counts := make([]int64, 4)
	for a := int64(0); a <= n; a++ {
		for b := int64(0); a+b <= n; b++ {
			for c := int64(0); a+b+c <= n; c++ {
				counts[0], counts[1], counts[2], counts[3] = a, b, c, n-a-b-c
				total += MultinomialPMF(counts, probs)
			}
		}
	}
	if math.Abs(total-1) > 1e-10 {
		t.Errorf("PMF total = %.15f, want 1", total)
	}
}

func TestMultinomialPMFZeroProb(t *testing.T) {
	if p := MultinomialPMF([]int64{1, 2}, []float64{0, 1}); p != 0 {
		t.Errorf("impossible outcome has pmf %g, want 0", p)
	}
	if p := MultinomialPMF([]int64{0, 3}, []float64{0, 1}); math.Abs(p-1) > 1e-12 {
		t.Errorf("certain outcome has pmf %g, want 1", p)
	}
	// k=2 must agree with the binomial PMF.
	for x := int64(0); x <= 10; x++ {
		got := MultinomialPMF([]int64{x, 10 - x}, []float64{0.3, 0.7})
		want := BinomialPMF(10, x, 0.3)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("k=2 pmf(%d) = %g, want %g", x, got, want)
		}
	}
}

// TestHotPathAllocs asserts the samplers allocate nothing: they sit inside
// every engine's per-round loop.
func TestHotPathAllocs(t *testing.T) {
	r := rng.New(5)
	probs := []float64{0.4, 0.3, 0.2, 0.1}
	out := make([]int64, 4)
	if a := testing.AllocsPerRun(200, func() {
		Binomial(r, 1_000_000, 0.3)
		Multinomial(r, 1_000_000, probs, out)
		LogMultinomialPMF(out, probs)
	}); a != 0 {
		t.Errorf("sampler hot path allocates %.1f objects/op, want 0", a)
	}
}

func BenchmarkBinomialInversion(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Binomial(r, 1000, 0.005)
	}
}

func BenchmarkBinomialBTRS(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Binomial(r, 1_000_000_000, 0.3)
	}
}

func BenchmarkMultinomialK(b *testing.B) {
	for _, k := range []int{2, 16, 128, 1024} {
		b.Run(map[int]string{2: "k=2", 16: "k=16", 128: "k=128", 1024: "k=1024"}[k], func(b *testing.B) {
			r := rng.New(1)
			probs := make([]float64, k)
			for j := range probs {
				probs[j] = 1 / float64(k)
			}
			out := make([]int64, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Multinomial(r, 1_000_000_000, probs, out)
			}
		})
	}
}
