package dist

import (
	"math"
	"math/bits"

	"plurality/internal/rng"
)

// aliasSlot is one bucket of the alias table: a 64-bit fixed-point
// acceptance threshold and the alias category. 16 bytes, so the whole table
// for k colors is a single k·16-byte flat array — four slots per cache line.
type aliasSlot struct {
	thresh uint64 // accept this slot when the fractional draw is < thresh
	alias  int32  // category to return otherwise
	_      int32  // pad to 16 bytes so slots never straddle cache lines unevenly
}

// Alias samples from a discrete distribution over k categories in O(1) per
// draw using Vose's alias method. The table is built in O(k) and — crucially
// for per-round use in CliqueSampled — can be rebuilt in place with
// ResetCounts without allocating: construction worklists and the slot array
// are retained across rebuilds.
//
// Sampling consumes a single 64-bit variate: the high bits select a slot via
// Lemire's multiply-shift and the low 64 fixed-point bits are compared
// against the slot threshold. The residual bias of reusing the fractional
// part is < k·2⁻⁶⁴ per draw — unobservable at any feasible sample size.
//
// An Alias is immutable during sampling and therefore safe for concurrent
// Sample/SampleMany calls from multiple goroutines (each with its own
// *rng.Rand); ResetCounts must not race with sampling.
type Alias struct {
	slots []aliasSlot
	// Rebuild scratch, retained so ResetCounts is allocation-free.
	scaled []float64
	small  []int32
	large  []int32
}

// NewAliasCounts builds an alias table proportional to integer counts
// (weights[j] >= 0, Σ weights > 0). This is the shape engines use: a color
// configuration is exactly such a count vector.
func NewAliasCounts(counts []int64) *Alias {
	a := &Alias{
		slots:  make([]aliasSlot, len(counts)),
		scaled: make([]float64, len(counts)),
		small:  make([]int32, 0, len(counts)),
		large:  make([]int32, 0, len(counts)),
	}
	a.ResetCounts(counts)
	return a
}

// K returns the number of categories.
func (a *Alias) K() int { return len(a.slots) }

// ResetCounts rebuilds the table in place for a new count vector with the
// same number of categories. O(k), zero allocations.
func (a *Alias) ResetCounts(counts []int64) {
	if len(counts) != len(a.slots) {
		panic("dist: Alias.ResetCounts category count mismatch")
	}
	var total int64
	for _, c := range counts {
		if c < 0 {
			panic("dist: Alias negative count")
		}
		total += c
	}
	if total <= 0 {
		panic("dist: Alias needs a positive total count")
	}
	k := len(counts)
	kOverTotal := float64(k) / float64(total)
	for j, c := range counts {
		a.scaled[j] = float64(c) * kOverTotal
	}
	a.rebuild()
}

// ResetWeights rebuilds the table for arbitrary non-negative float weights.
func (a *Alias) ResetWeights(weights []float64) {
	if len(weights) != len(a.slots) {
		panic("dist: Alias.ResetWeights category count mismatch")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("dist: Alias negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("dist: Alias needs positive total weight")
	}
	k := float64(len(weights))
	for j, w := range weights {
		a.scaled[j] = w * k / total
	}
	a.rebuild()
}

// rebuild runs Vose's pairing over a.scaled (each entry = k·p_j, mean 1).
func (a *Alias) rebuild() {
	small := a.small[:0]
	large := a.large[:0]
	for j, s := range a.scaled {
		if s < 1 {
			small = append(small, int32(j))
		} else {
			large = append(large, int32(j))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]

		a.slots[s] = aliasSlot{thresh: toFixed64(a.scaled[s]), alias: l}
		a.scaled[l] -= 1 - a.scaled[s]
		if a.scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers (from either list, due to float round-off) are full slots.
	for _, j := range large {
		a.slots[j] = aliasSlot{thresh: math.MaxUint64, alias: j}
	}
	for _, j := range small {
		a.slots[j] = aliasSlot{thresh: math.MaxUint64, alias: j}
	}
	a.small = small[:0]
	a.large = large[:0]
}

// toFixed64 maps x in [0,1] to 64-bit fixed point, saturating at MaxUint64.
func toFixed64(x float64) uint64 {
	if x <= 0 {
		return 0
	}
	v := x * (1 << 64)
	if v >= (1 << 64) { // x within one ulp of 1 rounds up to 2^64
		return math.MaxUint64
	}
	return uint64(v)
}

// Sample returns one category drawn from the table's distribution.
func (a *Alias) Sample(r *rng.Rand) int {
	hi, lo := bits.Mul64(r.Uint64(), uint64(len(a.slots)))
	s := a.slots[hi]
	if lo < s.thresh {
		return int(hi)
	}
	return int(s.alias)
}

// SampleMany fills dst with independent draws. One tight loop over the flat
// slot array amortizes call overhead and keeps the table hot in cache; the
// agent-sampling engines use it to draw whole batches of agent samples at
// once. dst is an int32 slice so engines can pass their []Color buffers
// directly (Color = int32).
func (a *Alias) SampleMany(r *rng.Rand, dst []int32) {
	slots := a.slots
	k := uint64(len(slots))
	for i := range dst {
		hi, lo := bits.Mul64(r.Uint64(), k)
		s := slots[hi]
		if lo < s.thresh {
			dst[i] = int32(hi)
		} else {
			dst[i] = s.alias
		}
	}
}
