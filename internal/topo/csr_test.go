package topo

import (
	"bytes"
	"slices"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/rng"
)

// checkCSR verifies the structural invariants every CSR in this package
// must satisfy: well-formed offsets, sorted rows, in-range neighbors, no
// self-loops, symmetry (u in v's row iff v in u's row, with multiplicity),
// and — because every generator produces simple graphs — no duplicate row
// entries. Returns the degree sum for handshake checks.
func checkCSR(t *testing.T, g *CSR) int64 {
	t.Helper()
	n := g.N()
	if g.Offsets[0] != 0 || g.Offsets[n] != int64(len(g.Neighbors)) {
		t.Fatalf("offsets endpoints: [%d, %d], want [0, %d]", g.Offsets[0], g.Offsets[n], len(g.Neighbors))
	}
	var degreeSum int64
	for v := int64(0); v < n; v++ {
		row := g.Neighbors[g.Offsets[v]:g.Offsets[v+1]]
		degreeSum += int64(len(row))
		if !slices.IsSorted(row) {
			t.Fatalf("row %d not sorted", v)
		}
		for i, u := range row {
			if u < 0 || u >= n {
				t.Fatalf("vertex %d: neighbor %d out of range", v, u)
			}
			if u == v {
				t.Fatalf("vertex %d has a self-loop", v)
			}
			if i > 0 && row[i-1] == u {
				t.Fatalf("vertex %d has duplicate neighbor %d", v, u)
			}
			// Symmetry: v must appear in u's row.
			urow := g.Neighbors[g.Offsets[u]:g.Offsets[u+1]]
			if _, found := slices.BinarySearch(urow, v); !found {
				t.Fatalf("edge {%d,%d} missing its mirror", v, u)
			}
		}
	}
	if degreeSum%2 != 0 {
		t.Fatalf("handshake violated: degree sum %d is odd", degreeSum)
	}
	if degreeSum != 2*g.Edges() {
		t.Fatalf("degree sum %d != 2·edges %d", degreeSum, 2*g.Edges())
	}
	return degreeSum
}

// connected reports whether the graph is connected (BFS from 0).
func connected(g graph.Graph) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	queue := []int64{0}
	seen[0] = true
	visited := int64(1)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i := int64(0); i < g.Degree(v); i++ {
			u := g.Neighbor(v, i)
			if !seen[u] {
				seen[u] = true
				visited++
				queue = append(queue, u)
			}
		}
	}
	return visited == n
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("triangle+leaf", 4)
	b.AddEdge(2, 1) // any insertion order
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(3, 0)
	g := b.Finalize()
	checkCSR(t, g)
	wantDeg := []int64{3, 2, 2, 1}
	for v, want := range wantDeg {
		if got := g.Degree(int64(v)); got != want {
			t.Errorf("degree(%d) = %d, want %d", v, got, want)
		}
	}
	if got := g.Neighbors[g.Offsets[0]:g.Offsets[1]]; !slices.Equal(got, []int64{1, 2, 3}) {
		t.Errorf("row 0 = %v, want [1 2 3]", got)
	}
	if g.Edges() != 4 {
		t.Errorf("edges = %d, want 4", g.Edges())
	}
}

func TestBuilderCanonicalAcrossInsertionOrder(t *testing.T) {
	edges := [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}
	b1 := NewBuilder("g", 4)
	for _, e := range edges {
		b1.AddEdge(e[0], e[1])
	}
	b2 := NewBuilder("g", 4)
	for i := len(edges) - 1; i >= 0; i-- {
		b2.AddEdge(edges[i][1], edges[i][0]) // reversed order and endpoints
	}
	g1, g2 := b1.Finalize(), b2.Finalize()
	if !slices.Equal(g1.Offsets, g2.Offsets) || !slices.Equal(g1.Neighbors, g2.Neighbors) {
		t.Fatal("CSR bytes depend on edge insertion order")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	NewBuilder("bad", 3).AddEdge(1, 1)
}

func TestCSRSampleNeighborUniform(t *testing.T) {
	b := NewBuilder("path", 5) // 0-1-2-3-4
	for v := int64(0); v < 4; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Finalize()
	r := rng.New(7)
	counts := map[int64]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[g.SampleNeighbor(2, r)]++
	}
	if len(counts) != 2 {
		t.Fatalf("vertex 2 sampled %v, want exactly {1, 3}", counts)
	}
	for _, u := range []int64{1, 3} {
		if c := counts[u]; c < draws/2-600 || c > draws/2+600 {
			t.Errorf("neighbor %d sampled %d times, want ~%d", u, c, draws/2)
		}
	}
}

func TestCSRIsolatedVertexSamplesSelf(t *testing.T) {
	b := NewBuilder("lonely", 3)
	b.AddEdge(0, 1) // vertex 2 isolated
	g := b.Finalize()
	if got := g.SampleNeighbor(2, rng.New(1)); got != 2 {
		t.Fatalf("isolated vertex sampled %d, want itself", got)
	}
}

func TestCSRSerializationRoundTrip(t *testing.T) {
	for _, g := range []*CSR{
		RandomRegular("regular:4", 50, 4, rng.New(3)),
		Gnp("gnp:0.1", 40, 0.1, rng.New(4)),
		NewBuilder("empty", 7).Finalize(),
	} {
		var buf bytes.Buffer
		wrote, err := g.WriteTo(&buf)
		if err != nil {
			t.Fatalf("%s: WriteTo: %v", g.GraphName, err)
		}
		if wrote != int64(buf.Len()) {
			t.Fatalf("%s: WriteTo reported %d bytes, wrote %d", g.GraphName, wrote, buf.Len())
		}
		got, err := ReadCSR(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadCSR: %v", g.GraphName, err)
		}
		if got.GraphName != g.GraphName ||
			!slices.Equal(got.Offsets, g.Offsets) || !slices.Equal(got.Neighbors, g.Neighbors) {
			t.Fatalf("%s: round trip changed the graph", g.GraphName)
		}
		// Serialized bytes are canonical: re-serializing reproduces them.
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: serialization not canonical", g.GraphName)
		}
	}
}

func TestReadCSRRejectsCorruption(t *testing.T) {
	g := RandomRegular("regular:4", 20, 4, rng.New(5))
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("WRONGMAG"), full[8:]...),
		"truncated":   full[:len(full)-9],
		"extra short": full[:12],
	}
	// Out-of-range neighbor: flip a neighbor to a huge value (last 8
	// bytes encode the final neighbor).
	corrupt := slices.Clone(full)
	corrupt[len(corrupt)-1] = 0x7f
	cases["neighbor out of range"] = corrupt
	for name, data := range cases {
		if _, err := ReadCSR(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadCSR accepted corrupted input", name)
		}
	}
}

func TestFromGraphMatchesEdgeList(t *testing.T) {
	// CSR↔edge-list round trip: materializing the implicit torus and
	// re-deriving neighbor sets must agree with the implicit structure.
	impl := graph.NewTorus(4, 5)
	g := FromGraph(impl)
	checkCSR(t, g)
	if g.N() != impl.N() {
		t.Fatalf("n = %d, want %d", g.N(), impl.N())
	}
	for v := int64(0); v < impl.N(); v++ {
		want := make([]int64, 0, 4)
		for i := int64(0); i < impl.Degree(v); i++ {
			want = append(want, impl.Neighbor(v, i))
		}
		slices.Sort(want)
		got := g.Neighbors[g.Offsets[v]:g.Offsets[v+1]]
		if !slices.Equal(got, want) {
			t.Fatalf("vertex %d: row %v, want %v", v, got, want)
		}
	}
}
