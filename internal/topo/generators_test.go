package topo

import (
	"math"
	"slices"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/rng"
)

func TestRandomRegularInvariants(t *testing.T) {
	for _, tc := range []struct{ n, d int64 }{
		{10, 3}, {50, 4}, {64, 8}, {101, 4}, {200, 7}, {33, 32},
	} {
		g := RandomRegular("regular", tc.n, tc.d, rng.New(uint64(tc.n*31+tc.d)))
		degreeSum := checkCSR(t, g)
		if degreeSum != tc.n*tc.d {
			t.Errorf("n=%d d=%d: degree sum %d, want %d", tc.n, tc.d, degreeSum, tc.n*tc.d)
		}
		for v := int64(0); v < tc.n; v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("n=%d d=%d: degree(%d) = %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
		if tc.d >= 3 && !connected(g) {
			// A random d-regular graph with d >= 3 is connected w.h.p.;
			// at these sizes a disconnection indicates a generator bug.
			t.Errorf("n=%d d=%d: disconnected", tc.n, tc.d)
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a := RandomRegular("regular:6", 80, 6, rng.New(42))
	b := RandomRegular("regular:6", 80, 6, rng.New(42))
	if !slices.Equal(a.Neighbors, b.Neighbors) || !slices.Equal(a.Offsets, b.Offsets) {
		t.Fatal("RandomRegular not byte-deterministic for a fixed seed")
	}
	c := RandomRegular("regular:6", 80, 6, rng.New(43))
	if slices.Equal(a.Neighbors, c.Neighbors) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGnpInvariantsAndDensity(t *testing.T) {
	const n, p = 600, 0.05
	g := Gnp("gnp", n, p, rng.New(9))
	checkCSR(t, g)
	mean := p * float64(n) * float64(n-1) / 2
	sd := math.Sqrt(mean * (1 - p))
	if got := float64(g.Edges()); math.Abs(got-mean) > 6*sd {
		t.Errorf("edges = %v, want %v ± %v", got, mean, 6*sd)
	}
	if g0 := Gnp("gnp", 50, 0, rng.New(1)); g0.Edges() != 0 {
		t.Errorf("G(n, 0) has %d edges", g0.Edges())
	}
	if g1 := Gnp("gnp", 30, 1, rng.New(1)); g1.Edges() != 30*29/2 {
		t.Errorf("G(n, 1) has %d edges, want complete", g1.Edges())
	}
}

func TestSmallWorldInvariants(t *testing.T) {
	for _, beta := range []float64{0, 0.1, 0.5, 1} {
		const n, k = 400, 6
		g := SmallWorld("smallworld", n, k, beta, rng.New(uint64(beta*100)+3))
		degreeSum := checkCSR(t, g)
		// Rewiring keeps the edge count (an edge is dropped only when 64
		// redraw attempts fail, essentially impossible at k ≪ n).
		if degreeSum != n*k {
			t.Errorf("beta=%g: degree sum %d, want %d", beta, degreeSum, int64(n*k))
		}
		if beta == 0 {
			// Pure lattice: every vertex has exactly the band neighbors.
			for v := int64(0); v < n; v++ {
				if g.Degree(v) != k {
					t.Fatalf("lattice degree(%d) = %d, want %d", v, g.Degree(v), k)
				}
			}
		}
		if !connected(g) {
			t.Errorf("beta=%g: disconnected", beta)
		}
	}
}

func TestSmallWorldRewiringChangesGraph(t *testing.T) {
	const n, k = 200, 4
	lattice := SmallWorld("sw", n, k, 0, rng.New(1))
	rewired := SmallWorld("sw", n, k, 0.3, rng.New(1))
	if slices.Equal(lattice.Neighbors, rewired.Neighbors) {
		t.Fatal("beta=0.3 left the lattice untouched")
	}
}

func TestBarabasiAlbertInvariants(t *testing.T) {
	const n, m = 500, 3
	g := BarabasiAlbert("ba", n, m, rng.New(11))
	degreeSum := checkCSR(t, g)
	wantEdges := int64(m*(m+1)/2 + (n-m-1)*m)
	if g.Edges() != wantEdges {
		t.Errorf("edges = %d, want %d", g.Edges(), wantEdges)
	}
	if degreeSum != 2*wantEdges {
		t.Errorf("degree sum %d, want %d", degreeSum, 2*wantEdges)
	}
	// Every vertex attaches with m edges, so min degree is m; growth is
	// connected by construction.
	for v := int64(0); v < n; v++ {
		if g.Degree(v) < m {
			t.Fatalf("degree(%d) = %d < m", v, g.Degree(v))
		}
	}
	if !connected(g) {
		t.Error("BA graph disconnected")
	}
	// Preferential attachment produces hubs: the max degree should far
	// exceed the mean (4·mean is loose enough to be deterministic-ish
	// across seeds yet rules out uniform attachment).
	var maxDeg int64
	for v := int64(0); v < n; v++ {
		maxDeg = max(maxDeg, g.Degree(v))
	}
	meanDeg := float64(degreeSum) / float64(n)
	if float64(maxDeg) < 4*meanDeg {
		t.Errorf("max degree %d vs mean %.1f: no hubs — attachment looks uniform", maxDeg, meanDeg)
	}
}

func TestSBMInvariantsAndCommunityStructure(t *testing.T) {
	const n, blocks = 600, 3
	const pin, pout = 0.08, 0.004
	g := SBM("sbm", n, blocks, pin, pout, rng.New(13))
	checkCSR(t, g)
	// Count within- vs cross-block adjacency entries; block = contiguous
	// range of n/blocks vertices.
	size := int64(n / blocks)
	var within, cross float64
	for v := int64(0); v < n; v++ {
		for _, u := range g.Neighbors[g.Offsets[v]:g.Offsets[v+1]] {
			if v/size == u/size {
				within++
			} else {
				cross++
			}
		}
	}
	wantWithin := float64(blocks) * pin * float64(size) * float64(size-1)
	wantCross := pout * float64(n) * float64(n-size)
	if math.Abs(within-wantWithin) > 6*math.Sqrt(wantWithin) {
		t.Errorf("within-block entries %v, want ~%v", within, wantWithin)
	}
	if math.Abs(cross-wantCross) > 6*math.Sqrt(wantCross) {
		t.Errorf("cross-block entries %v, want ~%v", cross, wantCross)
	}
}

func TestSBMOneBlockIsGnp(t *testing.T) {
	// blocks=1 must reproduce G(n, pin) exactly (identical rng stream).
	a := SBM("x", 100, 1, 0.07, 0.9, rng.New(21))
	b := Gnp("x", 100, 0.07, rng.New(21))
	if !slices.Equal(a.Neighbors, b.Neighbors) {
		t.Fatal("SBM with one block diverged from Gnp")
	}
}

func TestBarbellInvariants(t *testing.T) {
	const n, d = 200, 4
	g := Barbell("barbell", n, d, rng.New(17))
	checkCSR(t, g)
	h := int64(n / 2)
	for v := int64(0); v < n; v++ {
		want := int64(d)
		if v == h-1 || v == h {
			want = d + 1
		}
		if g.Degree(v) != want {
			t.Fatalf("degree(%d) = %d, want %d", v, g.Degree(v), want)
		}
	}
	if !connected(g) {
		t.Fatal("barbell disconnected")
	}
	// Exactly one edge crosses the halves: the bridge.
	crossing := 0
	for v := int64(0); v < h; v++ {
		for _, u := range g.Neighbors[g.Offsets[v]:g.Offsets[v+1]] {
			if u >= h {
				crossing++
			}
		}
	}
	if crossing != 1 {
		t.Fatalf("%d crossing edges, want exactly 1 bridge", crossing)
	}
}

func TestHypercubeStructure(t *testing.T) {
	g := NewHypercube(16)
	if g.N() != 16 || g.Dim != 4 {
		t.Fatalf("hypercube(16): n=%d dim=%d", g.N(), g.Dim)
	}
	csr := FromGraph(g)
	checkCSR(t, csr)
	if !connected(g) {
		t.Fatal("hypercube disconnected")
	}
	for v := int64(0); v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	// Neighbors differ in exactly one bit.
	for i := int64(0); i < 4; i++ {
		u := g.Neighbor(5, i)
		if x := u ^ 5; x&(x-1) != 0 || x == 0 {
			t.Fatalf("neighbor %d of 5 is %d (not one bit away)", i, u)
		}
	}
}

func TestTorusDStructure(t *testing.T) {
	g := NewTorusD(27, 3) // 3×3×3
	if g.Side != 3 || g.Dims != 3 || g.N() != 27 {
		t.Fatalf("torus3: side=%d dims=%d n=%d", g.Side, g.Dims, g.N())
	}
	csr := FromGraph(g)
	checkCSR(t, csr)
	if !connected(g) {
		t.Fatal("torus3 disconnected")
	}
	for v := int64(0); v < 27; v++ {
		if csr.Degree(v) != 6 {
			t.Fatalf("degree(%d) = %d, want 6", v, csr.Degree(v))
		}
	}
	// The 2-d TorusD must agree with the legacy square torus edge set.
	a := FromGraph(NewTorusD(25, 2))
	legacy := FromGraph(graph.NewTorus(5, 5))
	if !slices.Equal(a.Neighbors, legacy.Neighbors) {
		t.Fatal("TorusD(25, 2) edge set diverges from graph.Torus(5, 5)")
	}
}

func TestIntRoot(t *testing.T) {
	cases := []struct {
		n    int64
		dims int
		root int64
		ok   bool
	}{
		{27, 3, 3, true}, {16, 4, 2, true}, {10000, 2, 100, true},
		{26, 3, 0, false}, {1, 2, 1, true}, {int64(1) << 62, 62, 2, true},
		{math.MaxInt64, 2, 0, false}, {0, 2, 0, false},
	}
	for _, tc := range cases {
		root, ok := intRoot(tc.n, tc.dims)
		if ok != tc.ok || (ok && root != tc.root) {
			t.Errorf("intRoot(%d, %d) = (%d, %v), want (%d, %v)", tc.n, tc.dims, root, ok, tc.root, tc.ok)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	// Every random family: same seed → byte-identical CSR.
	builds := map[string]func(r *rng.Rand) *CSR{
		"regular":    func(r *rng.Rand) *CSR { return RandomRegular("g", 60, 4, r) },
		"gnp":        func(r *rng.Rand) *CSR { return Gnp("g", 60, 0.1, r) },
		"smallworld": func(r *rng.Rand) *CSR { return SmallWorld("g", 60, 4, 0.2, r) },
		"ba":         func(r *rng.Rand) *CSR { return BarabasiAlbert("g", 60, 3, r) },
		"sbm":        func(r *rng.Rand) *CSR { return SBM("g", 60, 3, 0.2, 0.02, r) },
		"barbell":    func(r *rng.Rand) *CSR { return Barbell("g", 60, 4, r) },
	}
	for name, mk := range builds {
		a, b := mk(rng.New(5)), mk(rng.New(5))
		if !slices.Equal(a.Offsets, b.Offsets) || !slices.Equal(a.Neighbors, b.Neighbors) {
			t.Errorf("%s: not byte-deterministic", name)
		}
	}
}
