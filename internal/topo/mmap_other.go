//go:build !unix

package topo

import (
	"io"
	"os"
)

// mapFile on platforms without syscall.Mmap falls back to reading the
// whole file into the heap. Same byte-view API, none of the beyond-RAM
// benefit — the mmap backend degrades to ReadCSR-level memory use but
// stays correct.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	data = make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
