// Package topo is the topology subsystem: a compressed-sparse-row graph
// store (CSR), a generator suite covering the expansion spectrum from the
// clique down to bottleneck graphs, and a single name→constructor registry
// that every surface (cmd/sweep, internal/service, cmd/validate,
// examples/topologies) resolves topology specs through.
//
// CSR replaces the old graph.AdjList as the backbone for materialized
// graphs: neighbors live in one flat int64 array indexed by a flat offset
// array, so degree lookup is O(1), neighbor scans are cache-linear, and the
// whole structure serializes to disk (WriteTo/ReadFrom) so an expensive
// generated graph is buildable once and reusable across sweep cells. The
// engine layer (engine.GraphEngine) special-cases *CSR with a direct-slice
// sampling path; the rng draw sequence (one Int63n(degree) per sample) is
// byte-identical to the generic graph.Graph interface path.
//
// All generators draw exclusively from an explicit *rng.Rand, so every
// graph is a pure function of (spec, n, seed): byte-identical across runs,
// machines, and worker counts.
package topo

import (
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"plurality/internal/graph"
	"plurality/internal/rng"
)

// CSR is a static undirected graph in compressed-sparse-row form: the
// neighbors of vertex v are Neighbors[Offsets[v]:Offsets[v+1]]. Each
// undirected edge {a, b} appears twice (b in a's row and a in b's row), so
// len(Neighbors) is twice the edge count and the handshake identity
// Σ degree(v) = len(Neighbors) holds by construction.
type CSR struct {
	// GraphName is the registry spec the graph was built from (e.g.
	// "regular:8", "smallworld:10:0.1"); it identifies the topology in
	// engine names and experiment tables.
	GraphName string
	// Offsets has length N()+1 with Offsets[0] = 0, nondecreasing.
	Offsets []int64
	// Neighbors holds the concatenated, per-vertex sorted adjacency rows.
	Neighbors []int64
}

var _ graph.Graph = (*CSR)(nil)

// Name implements graph.Graph.
func (g *CSR) Name() string { return g.GraphName }

// N implements graph.Graph.
func (g *CSR) N() int64 { return int64(len(g.Offsets)) - 1 }

// Degree implements graph.Graph.
func (g *CSR) Degree(v int64) int64 { return g.Offsets[v+1] - g.Offsets[v] }

// Neighbor implements graph.Graph.
func (g *CSR) Neighbor(v, i int64) int64 { return g.Neighbors[g.Offsets[v]+i] }

// SampleNeighbor implements graph.Graph: one Int63n(degree) draw per
// sample, the same consumption as the legacy adjacency-list path, so
// swapping the backing store never perturbs a seeded run. An isolated
// vertex samples itself and therefore keeps its color forever.
func (g *CSR) SampleNeighbor(v int64, r *rng.Rand) int64 {
	lo, hi := g.Offsets[v], g.Offsets[v+1]
	if lo == hi {
		return v
	}
	return g.Neighbors[lo+r.Int63n(hi-lo)]
}

// Edges returns the number of undirected edges.
func (g *CSR) Edges() int64 { return int64(len(g.Neighbors)) / 2 }

// MaxBuilderN bounds builder vertex counts so edge endpoints pack into one
// uint64 (and so a single graph cannot address more than 2^31 vertices —
// far beyond the memory any materialized topology fits in anyway).
const MaxBuilderN = int64(1) << 31

// Builder accumulates an undirected edge stream and finalizes it into a
// CSR in two counting passes (no per-vertex slice allocations). Edges may
// arrive in any order; Finalize sorts each adjacency row, so the resulting
// bytes depend only on the edge multiset.
type Builder struct {
	name  string
	n     int64
	edges []uint64 // packed a<<32 | b
}

// NewBuilder returns a builder for a graph on n vertices (n in
// [1, MaxBuilderN)).
func NewBuilder(name string, n int64) *Builder {
	if n < 1 || n >= MaxBuilderN {
		panic(fmt.Sprintf("topo: Builder needs 1 <= n < 2^31, got %d", n))
	}
	return &Builder{name: name, n: n}
}

// Grow reserves capacity for m additional edges.
func (b *Builder) Grow(m int) { b.edges = slices.Grow(b.edges, m) }

// AddEdge records the undirected edge {x, y}. Self-loops and out-of-range
// endpoints panic: every generator in this package produces simple graphs,
// so a loop reaching the builder is a generator bug, not an input error.
func (b *Builder) AddEdge(x, y int64) {
	if x == y {
		panic("topo: Builder rejects self-loops")
	}
	if x < 0 || y < 0 || x >= b.n || y >= b.n {
		panic(fmt.Sprintf("topo: edge {%d, %d} out of range [0, %d)", x, y, b.n))
	}
	b.edges = append(b.edges, uint64(x)<<32|uint64(y))
}

// Len returns the number of edges recorded so far.
func (b *Builder) Len() int { return len(b.edges) }

// Finalize builds the CSR. The builder must not be reused afterwards.
func (b *Builder) Finalize() *CSR {
	offsets := make([]int64, b.n+1)
	for _, e := range b.edges {
		offsets[e>>32+1]++
		offsets[uint32(e)+1]++
	}
	for v := int64(0); v < b.n; v++ {
		offsets[v+1] += offsets[v]
	}
	neighbors := make([]int64, offsets[b.n])
	cursor := make([]int64, b.n)
	for _, e := range b.edges {
		x, y := int64(e>>32), int64(uint32(e))
		neighbors[offsets[x]+cursor[x]] = y
		cursor[x]++
		neighbors[offsets[y]+cursor[y]] = x
		cursor[y]++
	}
	b.edges = nil
	g := &CSR{GraphName: b.name, Offsets: offsets, Neighbors: neighbors}
	sortRows(g)
	return g
}

// sortRows sorts each adjacency row ascending: the canonical on-disk and
// in-memory layout, independent of edge insertion order.
func sortRows(g *CSR) {
	n := g.N()
	for v := int64(0); v < n; v++ {
		slices.Sort(g.Neighbors[g.Offsets[v]:g.Offsets[v+1]])
	}
}

// ----- binary serialization -----

// csrMagic versions the on-disk format: magic, name (uvarint length +
// bytes), n and nnz (uvarint), then Offsets[1:] and Neighbors as
// little-endian uint64s. Offsets[0] is always 0 and is not stored.
const csrMagic = "topoCSR1"

// ioChunk is the staging-buffer size for (de)serializing the int64 arrays.
const ioChunk = 8192

// WriteTo implements io.WriterTo: the exact bytes are a pure function of
// the CSR contents, so serialized graphs are content-addressable.
func (g *CSR) WriteTo(w io.Writer) (int64, error) {
	var total int64
	wr := func(p []byte) error {
		m, err := w.Write(p)
		total += int64(m)
		return err
	}
	var hdr []byte
	hdr = append(hdr, csrMagic...)
	hdr = binary.AppendUvarint(hdr, uint64(len(g.GraphName)))
	hdr = append(hdr, g.GraphName...)
	hdr = binary.AppendUvarint(hdr, uint64(g.N()))
	hdr = binary.AppendUvarint(hdr, uint64(len(g.Neighbors)))
	if err := wr(hdr); err != nil {
		return total, err
	}
	for _, arr := range [][]int64{g.Offsets[1:], g.Neighbors} {
		buf := make([]byte, 0, 8*ioChunk)
		for _, v := range arr {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			if len(buf) == cap(buf) {
				if err := wr(buf); err != nil {
					return total, err
				}
				buf = buf[:0]
			}
		}
		if err := wr(buf); err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadCSR deserializes a CSR written by WriteTo, validating the structural
// invariants (nondecreasing offsets, in-range neighbors) so a truncated or
// corrupted file is an error, never a later panic.
func ReadCSR(r io.Reader) (*CSR, error) {
	br := &byteReader{r: r}
	magic := make([]byte, len(csrMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("topo: reading magic: %w", err)
	}
	if string(magic) != csrMagic {
		return nil, fmt.Errorf("topo: bad magic %q", magic)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > 1<<16 {
		return nil, fmt.Errorf("topo: bad name length (%v)", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("topo: reading name: %w", err)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil || int64(n64) < 1 || int64(n64) >= MaxBuilderN {
		return nil, fmt.Errorf("topo: bad vertex count (%v)", err)
	}
	nnz64, err := binary.ReadUvarint(br)
	if err != nil || nnz64 > 1<<40 {
		return nil, fmt.Errorf("topo: bad neighbor count (%v)", err)
	}
	n, nnz := int64(n64), int64(nnz64)
	g := &CSR{
		GraphName: string(name),
		Offsets:   make([]int64, n+1),
		Neighbors: make([]int64, nnz),
	}
	if err := readInt64s(br, g.Offsets[1:]); err != nil {
		return nil, fmt.Errorf("topo: reading offsets: %w", err)
	}
	if err := readInt64s(br, g.Neighbors); err != nil {
		return nil, fmt.Errorf("topo: reading neighbors: %w", err)
	}
	for v := int64(0); v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] || g.Offsets[v+1] > nnz {
			return nil, fmt.Errorf("topo: offsets not nondecreasing at vertex %d", v)
		}
	}
	if g.Offsets[n] != nnz {
		return nil, fmt.Errorf("topo: offsets end at %d, want %d", g.Offsets[n], nnz)
	}
	for _, u := range g.Neighbors {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("topo: neighbor %d out of range [0, %d)", u, n)
		}
	}
	return g, nil
}

// readInt64s fills dst from little-endian uint64s in chunks.
func readInt64s(r io.Reader, dst []int64) error {
	buf := make([]byte, 8*ioChunk)
	for len(dst) > 0 {
		m := min(len(dst), ioChunk)
		if _, err := io.ReadFull(r, buf[:8*m]); err != nil {
			return err
		}
		for i := 0; i < m; i++ {
			dst[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		dst = dst[m:]
	}
	return nil
}

// byteReader adapts any reader for binary.ReadUvarint without buffering
// past the varint (a bufio.Reader would swallow bytes the array reads need).
type byteReader struct{ r io.Reader }

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) ReadByte() (byte, error) {
	var one [1]byte
	if _, err := io.ReadFull(b.r, one[:]); err != nil {
		return 0, err
	}
	return one[0], nil
}

// FromGraph materializes any graph.Graph as a CSR by exhaustive neighbor
// iteration (test/diagnostic helper; generators build CSR directly).
func FromGraph(g graph.Graph) *CSR {
	n := g.N()
	out := &CSR{GraphName: g.Name(), Offsets: make([]int64, n+1)}
	var total int64
	for v := int64(0); v < n; v++ {
		out.Offsets[v] = total
		total += g.Degree(v)
	}
	out.Offsets[n] = total
	out.Neighbors = make([]int64, total)
	for v := int64(0); v < n; v++ {
		row := out.Neighbors[out.Offsets[v]:out.Offsets[v+1]]
		for i := range row {
			row[i] = g.Neighbor(v, int64(i))
		}
	}
	sortRows(out)
	return out
}
