package topo

import (
	"strings"
	"testing"
	"time"

	"plurality/internal/rng"
)

func TestRegistryBuildAllFamilies(t *testing.T) {
	// One resolvable spec per family at a size every constraint accepts.
	cases := []struct {
		spec string
		n    int64
	}{
		{"complete", 100},
		{"cycle", 100},
		{"star", 100},
		{"torus", 100},
		{"torus:3", 125},
		{"hypercube", 128},
		{"regular:4", 100},
		{"gnp:0.05", 100},
		{"smallworld:6:0.1", 100},
		{"ba:3", 100},
		{"sbm:4:0.2:0.01", 100},
		{"barbell:4", 100},
	}
	if len(cases) != len(families)+1 { // torus appears twice
		t.Fatalf("test covers %d specs, registry has %d families", len(cases), len(families))
	}
	for _, tc := range cases {
		if err := Validate(tc.spec, tc.n); err != nil {
			t.Errorf("Validate(%q, %d): %v", tc.spec, tc.n, err)
			continue
		}
		g, err := Build(tc.spec, tc.n, rng.New(1))
		if err != nil {
			t.Errorf("Build(%q, %d): %v", tc.spec, tc.n, err)
			continue
		}
		if g.N() != tc.n {
			t.Errorf("%q: built n = %d, want %d", tc.spec, g.N(), tc.n)
		}
		if csr, ok := g.(*CSR); ok {
			checkCSR(t, csr)
			if csr.GraphName == "" || !strings.HasPrefix(csr.GraphName, strings.Split(tc.spec, ":")[0]) {
				t.Errorf("%q: CSR name %q not canonical", tc.spec, csr.GraphName)
			}
		}
	}
}

func TestRegistryCanonicalNormalizes(t *testing.T) {
	cases := map[string]string{
		"gnp:0.5000":          "gnp:0.5",
		"regular:08":          "regular:8",
		"smallworld:10:0.100": "smallworld:10:0.1",
		"torus":               "torus",
		"sbm:3:0.5:0.0250":    "sbm:3:0.5:0.025",
	}
	for spec, want := range cases {
		got, err := Canonical(spec, 10000)
		if err != nil {
			t.Errorf("Canonical(%q): %v", spec, err)
			continue
		}
		if got != want {
			t.Errorf("Canonical(%q) = %q, want %q", spec, got, want)
		}
	}
}

func TestRegistryRejectsHostileSpecs(t *testing.T) {
	// Every rejection must be an error — never a panic, never a spin.
	// (The service admission path 400s on these.)
	cases := []struct {
		spec string
		n    int64
		frag string // substring the error must contain
	}{
		{"moebius", 100, "unknown graph"},
		{"", 100, "unknown graph"},
		{"complete:3", 100, "no parameters"},
		{"torus", 10, "side"},
		{"torus:0", 100, "outside"},
		{"torus:99", 100, "outside"},
		{"torus:3", 100, "side^3"},
		{"hypercube", 100, "power of two"},
		{"regular:0", 100, "outside"},
		{"regular:x", 100, "bad D"},
		{"regular:101", 100, "degree < n"},
		{"regular:3", 101, "even"},
		{"regular:8", 1 << 40, "2^31 materialized vertex cap"},
		// A hostile huge n must fail validation, not panic later in the
		// builder — even when the expected edge count is tiny (gnp:0) or
		// n·d overflows int64 past the MaxAdjEntries comparison.
		{"gnp:0", 4_000_000_000, "2^31 materialized vertex cap"},
		{"sbm:1:0:0", 4_000_000_000, "2^31 materialized vertex cap"},
		{"regular:2", 1 << 62, "2^31 materialized vertex cap"},
		{"smallworld:2:0", 1 << 33, "2^31 materialized vertex cap"},
		{"ba:1", 1 << 33, "2^31 materialized vertex cap"},
		{"barbell:1", 1 << 33, "2^31 materialized vertex cap"},
		{"gnp:1.5", 100, "outside"},
		{"gnp:NaN", 100, "bad P"},
		{"gnp:0.5", 1 << 30, "cap"},
		{"smallworld:5:0.1", 100, "even"},
		{"smallworld:6:2", 100, "outside"},
		{"smallworld:6", 100, "two parameters"},
		{"ba:200", 100, "M+1"},
		{"sbm:0:0.5:0.5", 100, "outside"},
		{"sbm:4:0.5", 100, "three parameters"},
		{"barbell:4", 101, "even n"},
		{"barbell:60", 100, "even n"},
		{"regular:4:9", 100, "one parameter"},
	}
	for _, tc := range cases {
		start := time.Now()
		err := Validate(tc.spec, tc.n)
		if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
			t.Errorf("Validate(%q, %d) took %v — not constant-time", tc.spec, tc.n, elapsed)
		}
		if err == nil {
			t.Errorf("Validate(%q, %d) accepted a hostile spec", tc.spec, tc.n)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Validate(%q, %d) error %q missing %q", tc.spec, tc.n, err, tc.frag)
		}
	}
}

func TestRegistryIsRandom(t *testing.T) {
	random := map[string]bool{
		"complete": false, "cycle": false, "star": false, "torus": false,
		"hypercube": false, "regular:4": true, "gnp:0.1": true,
		"smallworld:4:0.1": true, "ba:2": true, "sbm:2:0.1:0.01": true,
		"barbell:4": true,
	}
	for spec, want := range random {
		got, err := IsRandom(spec)
		if err != nil {
			t.Errorf("IsRandom(%q): %v", spec, err)
			continue
		}
		if got != want {
			t.Errorf("IsRandom(%q) = %v, want %v", spec, got, want)
		}
	}
	if _, err := IsRandom("nope"); err == nil {
		t.Error("IsRandom accepted an unknown family")
	}
}

func TestRegistryBuildDeterministic(t *testing.T) {
	// Registry-resolved builds are pure functions of (spec, n, seed).
	for _, spec := range []string{"regular:4", "smallworld:6:0.2", "ba:3", "sbm:3:0.2:0.02", "barbell:4", "gnp:0.08"} {
		a, err := Build(spec, 120, rng.New(99))
		if err != nil {
			t.Fatalf("Build(%q): %v", spec, err)
		}
		b, _ := Build(spec, 120, rng.New(99))
		ca, cb := a.(*CSR), b.(*CSR)
		if ca.GraphName != cb.GraphName {
			t.Errorf("%q: names differ", spec)
		}
		for i, v := range ca.Neighbors {
			if cb.Neighbors[i] != v {
				t.Errorf("%q: graphs differ at entry %d", spec, i)
				break
			}
		}
	}
}
