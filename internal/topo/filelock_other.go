//go:build !unix

package topo

// flockPath is a no-op on platforms without flock: the in-process mutex in
// lockBuild still serializes builds within one process, which covers the
// sweep and pluralityd callers; cross-process coordination degrades to the
// pre-lock behavior (redundant builds, atomic last-writer-wins renames).
func flockPath(string) (func(), error) {
	return func() {}, nil
}
