package topo

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"plurality/internal/rng"
)

// MappedCSR is a read-only CSR served straight from an on-disk file in the
// WriteTo/ReadCSR binary format, memory-mapped instead of deserialized:
// opening a multi-gigabyte graph touches only the header, and a round's
// neighbor reads fault pages in on demand, so resident memory tracks the
// working set rather than the file size. This is the beyond-RAM backend —
// a graph too big to hold as heap arrays still serves SampleNeighbor at
// page-cache speed.
//
// The arrays are accessed through little-endian byte views rather than
// []int64 casts: the v1 header is variable-length (uvarint name), so the
// arrays have no alignment guarantee inside the mapping, and byte-wise
// loads are alignment-safe on every platform. Each access costs a couple
// of bounds-checked loads more than the in-RAM flat path; the rng draw
// sequence is exactly the NeighborSource contract, so a mapped graph is
// byte-identical in traces to the same graph deserialized with ReadCSR.
//
// A MappedCSR must be Closed when done (unmapping the file); using it
// after Close panics on the nil views. It is safe for concurrent readers,
// like the in-RAM CSR.
type MappedCSR struct {
	name string
	n    int64
	nnz  int64
	// offs holds Offsets[1:] (8n bytes), nbrs the neighbor array (8nnz
	// bytes); both are subslices of the mapping (or heap copy on
	// platforms without mmap).
	offs    []byte
	nbrs    []byte
	unmap   func() error
	mapping []byte
	// uniform is the common row width when every vertex has the same
	// positive degree, else 0; computed during OpenCSR's validation scan.
	uniform int64
}

var _ NeighborSource = (*MappedCSR)(nil)

// Name implements NeighborSource.
func (m *MappedCSR) Name() string { return m.name }

// N implements NeighborSource.
func (m *MappedCSR) N() int64 { return m.n }

// Edges returns the number of undirected edges.
func (m *MappedCSR) Edges() int64 { return m.nnz / 2 }

// off returns Offsets[i]; the stored array omits the leading zero.
func (m *MappedCSR) off(i int64) int64 {
	if i == 0 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(m.offs[8*(i-1):]))
}

// Degree implements NeighborSource.
func (m *MappedCSR) Degree(v int64) int64 { return m.off(v+1) - m.off(v) }

// Neighbor implements NeighborSource.
func (m *MappedCSR) Neighbor(v, i int64) int64 {
	return int64(binary.LittleEndian.Uint64(m.nbrs[8*(m.off(v)+i):]))
}

// UniformDegree implements the degree-class hint, answered for free from
// the offsets scan OpenCSR performs at open time.
func (m *MappedCSR) UniformDegree() int64 { return m.uniform }

// SampleNeighbor implements NeighborSource: one Int63n(degree) draw per
// sample, none for an isolated vertex — the same stream as every other
// backend.
func (m *MappedCSR) SampleNeighbor(v int64, r *rng.Rand) int64 {
	lo, hi := m.off(v), m.off(v+1)
	if lo == hi {
		return v
	}
	return int64(binary.LittleEndian.Uint64(m.nbrs[8*(lo+r.Int63n(hi-lo)):]))
}

// Close unmaps the file. Idempotent; the graph must not be used afterwards.
func (m *MappedCSR) Close() error {
	if m.mapping == nil && m.unmap == nil {
		return nil
	}
	m.offs, m.nbrs, m.mapping = nil, nil, nil
	u := m.unmap
	m.unmap = nil
	if u != nil {
		return u()
	}
	return nil
}

// maxHeaderLen bounds the v1 header: magic + uvarint name length (<= 3
// bytes for the 2^16 cap) + name + two uvarints (<= 10 bytes each).
const maxHeaderLen = len(csrMagic) + 3 + 1<<16 + 10 + 10

// OpenCSR memory-maps a CSR file written by WriteTo (e.g. via
// WriteCSRFile) and validates it as strictly as ReadCSR: magic and header
// bounds, exact file size (a truncated or padded file is an error, never a
// later fault), nondecreasing offsets, and in-range neighbor ids. The
// validation scans are sequential reads over the mapping — the one full
// pass the open pays so that stepping can trust every row.
func OpenCSR(path string) (*MappedCSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	head := make([]byte, min(size, int64(maxHeaderLen)))
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("topo: reading %s header: %w", path, err)
	}
	name, n, nnz, headerLen, err := parseCSRHeader(head)
	if err != nil {
		return nil, fmt.Errorf("topo: %s: %w", path, err)
	}
	want := headerLen + 8*(n+nnz)
	if size != want {
		return nil, fmt.Errorf("topo: %s is %d bytes, want %d for n=%d nnz=%d (truncated or trailing junk)", path, size, want, n, nnz)
	}
	data, unmap, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("topo: mapping %s: %w", path, err)
	}
	m := &MappedCSR{
		name:    name,
		n:       n,
		nnz:     nnz,
		offs:    data[headerLen : headerLen+8*n],
		nbrs:    data[headerLen+8*n : want],
		unmap:   unmap,
		mapping: data,
	}
	m.uniform = m.off(1) // candidate common degree; zeroed on any mismatch
	for v := int64(0); v < n; v++ {
		lo, hi := m.off(v), m.off(v+1)
		if hi < lo || hi > nnz {
			m.Close()
			return nil, fmt.Errorf("topo: %s: offsets not nondecreasing at vertex %d", path, v)
		}
		if hi-lo != m.uniform {
			m.uniform = 0
		}
	}
	if m.off(n) != nnz {
		m.Close()
		return nil, fmt.Errorf("topo: %s: offsets end at %d, want %d", path, m.off(n), nnz)
	}
	for i := int64(0); i < nnz; i++ {
		if u := int64(binary.LittleEndian.Uint64(m.nbrs[8*i:])); u < 0 || u >= n {
			m.Close()
			return nil, fmt.Errorf("topo: %s: neighbor %d out of range [0, %d)", path, u, n)
		}
	}
	return m, nil
}

// parseCSRHeader decodes the v1 header from a prefix of the file, applying
// the same bounds as ReadCSR, and returns the header's byte length.
func parseCSRHeader(head []byte) (name string, n, nnz, headerLen int64, err error) {
	if len(head) < len(csrMagic) || string(head[:len(csrMagic)]) != csrMagic {
		return "", 0, 0, 0, fmt.Errorf("bad magic (not a %s file)", csrMagic)
	}
	rest := head[len(csrMagic):]
	readUvarint := func() (uint64, error) {
		v, k := binary.Uvarint(rest)
		if k <= 0 {
			return 0, fmt.Errorf("truncated header varint")
		}
		rest = rest[k:]
		return v, nil
	}
	nameLen, err := readUvarint()
	if err != nil || nameLen > 1<<16 {
		return "", 0, 0, 0, fmt.Errorf("bad name length (%v)", err)
	}
	if uint64(len(rest)) < nameLen {
		return "", 0, 0, 0, fmt.Errorf("truncated header name")
	}
	name = string(rest[:nameLen])
	rest = rest[nameLen:]
	n64, err := readUvarint()
	if err != nil || int64(n64) < 1 || int64(n64) >= MaxBuilderN {
		return "", 0, 0, 0, fmt.Errorf("bad vertex count (%v)", err)
	}
	nnz64, err := readUvarint()
	if err != nil || nnz64 > 1<<40 {
		return "", 0, 0, 0, fmt.Errorf("bad neighbor count (%v)", err)
	}
	headerLen = int64(len(head) - len(rest))
	return name, int64(n64), int64(nnz64), headerLen, nil
}

// WriteCSRFile serializes g to path atomically: the bytes land in a
// same-directory temp file which is fsynced and renamed into place, so a
// crash mid-build never leaves a torn file for a later OpenCSR to trip
// over — it leaves either the old file or none.
func WriteCSRFile(g *CSR, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := g.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
