package topo

import (
	"errors"
	"path/filepath"
	"slices"
	"testing"

	"plurality/internal/rng"
)

// sourcesAgree requires two NeighborSources to describe the identical
// structure: same n, and the same neighbor enumeration row by row (which
// by the rng contract implies byte-identical seeded sampling).
func sourcesAgree(t *testing.T, label string, a, b NeighborSource) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("%s: n mismatch %d vs %d", label, a.N(), b.N())
	}
	for v := int64(0); v < a.N(); v++ {
		da, db := a.Degree(v), b.Degree(v)
		if da != db {
			t.Fatalf("%s: degree(%d) mismatch %d vs %d", label, v, da, db)
		}
		for i := int64(0); i < da; i++ {
			if na, nb := a.Neighbor(v, i), b.Neighbor(v, i); na != nb {
				t.Fatalf("%s: neighbor(%d, %d) mismatch %d vs %d", label, v, i, na, nb)
			}
		}
	}
}

// sampleStream draws k samples per vertex and returns the flattened
// stream; two sources with the same structure must produce identical
// streams from identical seeds (the byte contract).
func sampleStream(src NeighborSource, seed uint64, perVertex int) []int64 {
	r := rng.New(seed)
	out := make([]int64, 0, int(src.N())*perVertex)
	for v := int64(0); v < src.N(); v++ {
		for s := 0; s < perVertex; s++ {
			out = append(out, src.SampleNeighbor(v, r))
		}
	}
	return out
}

// TestBackendsAgreeOnStructure is the tentpole's core claim at the topo
// layer: for every implicit family, the implicit source, its materialized
// CSR, and the mmap round-trip of that CSR agree on (N, Degree, Neighbor)
// — and therefore on every seeded sample stream.
func TestBackendsAgreeOnStructure(t *testing.T) {
	cases := []struct {
		spec string
		n    int64
	}{
		{"torus:3", 216}, // 6³
		{"torus", 64},
		{"hypercube", 128},
		{"cycle", 50},
		{"star", 33},
		{"complete", 24},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			imp, err := BuildSource(tc.spec, tc.n, nil, BuildOpts{Mode: ModeImplicit})
			if err != nil {
				t.Fatal(err)
			}
			csr, err := BuildSource(tc.spec, tc.n, nil, BuildOpts{Mode: ModeCSR})
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, CacheFileName(tc.spec, tc.n, 1))
			mm, err := BuildSource(tc.spec, tc.n, nil, BuildOpts{Mode: ModeMmap, Path: path})
			if err != nil {
				t.Fatal(err)
			}
			defer mm.(*MappedCSR).Close()

			sourcesAgree(t, "implicit vs csr", imp, csr)
			sourcesAgree(t, "csr vs mmap", csr, mm)
			ref := sampleStream(imp, 99, 3)
			if !slices.Equal(ref, sampleStream(csr, 99, 3)) {
				t.Fatal("csr sample stream diverged from implicit")
			}
			if !slices.Equal(ref, sampleStream(mm, 99, 3)) {
				t.Fatal("mmap sample stream diverged from implicit")
			}
		})
	}
}

// TestMaterializeCSRPreservesEnumerationOrder pins the property backend
// identity rests on: materialization must NOT sort rows — torus neighbor
// enumeration (+1/-1 per dimension) is not ascending, and reordering it
// would remap draw indices to different neighbors.
func TestMaterializeCSRPreservesEnumerationOrder(t *testing.T) {
	src := NewTorusD(216, 3)
	csr, err := MaterializeCSR("torus:3", src)
	if err != nil {
		t.Fatal(err)
	}
	sorted := true
	for v := int64(0); v < csr.N() && sorted; v++ {
		row := csr.Neighbors[csr.Offsets[v]:csr.Offsets[v+1]]
		sorted = slices.IsSorted(row)
	}
	if sorted {
		t.Fatal("every materialized torus row is sorted — enumeration order was not preserved (or the test graph is degenerate)")
	}
	sourcesAgree(t, "torus vs materialized", src, csr)
}

// TestMaterializeCSRCapErrors checks that oversized sources are rejected
// with the typed ErrTooLarge, not a panic or an OOM attempt.
func TestMaterializeCSRCapErrors(t *testing.T) {
	// complete at n=2^15 wants ~2^30 entries > MaxAdjEntries (2^28).
	if _, err := MaterializeCSR("complete", completeSrc{1 << 15}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("adjacency cap: got %v, want ErrTooLarge", err)
	}
	if _, err := MaterializeCSR("x", completeSrc{MaxBuilderN}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("vertex cap: got %v, want ErrTooLarge", err)
	}
}

// completeSrc is a minimal n-clique NeighborSource for cap tests (degree
// n-1, never materialized past the cap check).
type completeSrc struct{ n int64 }

func (c completeSrc) Name() string       { return "complete" }
func (c completeSrc) N() int64           { return c.n }
func (c completeSrc) Degree(int64) int64 { return c.n - 1 }
func (c completeSrc) Neighbor(v, i int64) int64 {
	if i >= v {
		return i + 1
	}
	return i
}
func (c completeSrc) SampleNeighbor(v int64, r *rng.Rand) int64 {
	return c.Neighbor(v, r.Int63n(c.n-1))
}

// TestBuildSourceModes covers the registry's mode dispatch.
func TestBuildSourceModes(t *testing.T) {
	dir := t.TempDir()

	// auto matches Build for both family kinds.
	if src, err := BuildSource("torus", 64, nil, BuildOpts{}); err != nil {
		t.Fatal(err)
	} else if _, isCSR := src.(*CSR); isCSR {
		t.Fatal("auto mode materialized an implicit family")
	}
	if src, err := BuildSource("regular:4", 100, rng.New(3), BuildOpts{Mode: ModeAuto}); err != nil {
		t.Fatal(err)
	} else if _, isCSR := src.(*CSR); !isCSR {
		t.Fatal("auto mode did not build a CSR for a generator family")
	}

	// implicit refuses materialized-only families.
	if _, err := BuildSource("regular:4", 100, rng.New(3), BuildOpts{Mode: ModeImplicit}); err == nil {
		t.Fatal("implicit mode accepted a generator family")
	}

	// csr forces materialization of implicit families.
	if src, err := BuildSource("hypercube", 64, nil, BuildOpts{Mode: ModeCSR}); err != nil {
		t.Fatal(err)
	} else if _, isCSR := src.(*CSR); !isCSR {
		t.Fatal("csr mode did not materialize")
	}

	// mmap without a path is an error.
	if _, err := BuildSource("torus", 64, nil, BuildOpts{Mode: ModeMmap}); err == nil {
		t.Fatal("mmap mode without a path accepted")
	}

	// mmap builds the file once and reuses it; a mismatched reuse is
	// rejected.
	path := filepath.Join(dir, "g.csr")
	m1, err := BuildSource("regular:4", 100, rng.New(3), BuildOpts{Mode: ModeMmap, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	m1.(*MappedCSR).Close()
	m2, err := BuildSource("regular:4", 100, rng.New(3), BuildOpts{Mode: ModeMmap, Path: path})
	if err != nil {
		t.Fatalf("reopening cached mmap file: %v", err)
	}
	m2.(*MappedCSR).Close()
	if _, err := BuildSource("regular:4", 200, rng.New(3), BuildOpts{Mode: ModeMmap, Path: path}); err == nil {
		t.Fatal("mmap mode reused a file holding a different graph")
	}

	// The cached file round-trips the exact structure.
	want, err := BuildSource("regular:4", 100, rng.New(3), BuildOpts{Mode: ModeAuto})
	if err != nil {
		t.Fatal(err)
	}
	m3, err := OpenCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	sourcesAgree(t, "cached mmap vs rebuilt", want, m3)
}

// TestParseMode checks the user-facing mode strings.
func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"": ModeAuto, "auto": ModeAuto, "implicit": ModeImplicit,
		"csr": ModeCSR, "mmap": ModeMmap,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("ramdisk"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

// TestIsImplicit pins the implicit-family set the service caps key off.
func TestIsImplicit(t *testing.T) {
	for spec, want := range map[string]bool{
		"complete": true, "cycle": true, "star": true, "torus:3": true,
		"hypercube": true, "regular:4": false, "gnp:0.1": false,
		"smallworld:4:0.1": false, "ba:2": false, "sbm:2:0.1:0.01": false,
		"barbell:4": false,
	} {
		got, err := IsImplicit(spec)
		if err != nil || got != want {
			t.Errorf("IsImplicit(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := IsImplicit("nope"); err == nil {
		t.Error("IsImplicit accepted an unknown family")
	}
}

// TestCacheFileName checks sanitization and injectivity-relevant parts.
func TestCacheFileName(t *testing.T) {
	got := CacheFileName("smallworld:8:0.1", 1000, 7)
	want := "smallworld_8_0.1-n1000-g7.csr"
	if got != want {
		t.Errorf("CacheFileName = %q, want %q", got, want)
	}
	if CacheFileName("torus:3", 8, 1) == CacheFileName("torus:3", 8, 2) {
		t.Error("cache names ignore the generator seed")
	}
}

// TestValidateCapMessagesTyped verifies the satellite contract: size-cap
// rejections carry ErrTooLarge and the "materialized" wording, while
// shape errors carry neither.
func TestValidateCapMessagesTyped(t *testing.T) {
	if err := Validate("regular:100", 10_000_000); !errors.Is(err, ErrTooLarge) {
		t.Errorf("adjacency cap rejection not ErrTooLarge: %v", err)
	}
	if err := Validate("smallworld:2:0", 1<<33); !errors.Is(err, ErrTooLarge) {
		t.Errorf("vertex cap rejection not ErrTooLarge: %v", err)
	}
	if err := Validate("hypercube", 1<<32); !errors.Is(err, ErrTooLarge) {
		t.Errorf("hypercube vertex cap rejection not ErrTooLarge: %v", err)
	}
	// Shape errors are NOT too-large: no n fixes a non-power-of-two
	// hypercube or an odd-degree smallworld.
	if err := Validate("hypercube", 100); err == nil || errors.Is(err, ErrTooLarge) {
		t.Errorf("shape rejection mislabeled too-large: %v", err)
	}
	if err := Validate("smallworld:5:0.1", 100); err == nil || errors.Is(err, ErrTooLarge) {
		t.Errorf("parameter rejection mislabeled too-large: %v", err)
	}
	// Implicit families clear validation at n far beyond RAM.
	if err := Validate("torus:3", 1_000_000_000); err != nil {
		t.Errorf("implicit torus rejected at n=10^9: %v", err)
	}
}
