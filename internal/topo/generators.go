package topo

import (
	"fmt"
	"math"
	"slices"

	"plurality/internal/rng"
)

// All generators are pure functions of their arguments: every random draw
// comes from the caller's *rng.Rand, so a (spec, n, seed) triple yields a
// byte-identical CSR on every run, machine, and worker count. The name
// argument becomes CSR.GraphName (callers resolve it through the registry's
// canonical spec string).

// RandomRegular samples a random d-regular simple graph on n vertices with
// the configuration (pairing) model followed by in-place degree-preserving
// edge-swap repair, building the CSR directly (one int32 stub array + the
// final neighbor array — no per-vertex slices, no edge map), so the
// construction scales to n·d well past 10⁸ adjacency entries. Requires
// 1 <= d < n and n·d even.
func RandomRegular(name string, n, d int64, r *rng.Rand) *CSR {
	if d < 1 || d >= n || n >= MaxBuilderN {
		panic(fmt.Sprintf("topo: RandomRegular needs 1 <= d < n < 2^31, got n=%d d=%d", n, d))
	}
	if n*d%2 != 0 {
		panic("topo: RandomRegular needs n*d even")
	}
	const restarts = 100
	for attempt := 0; attempt < restarts; attempt++ {
		if g := tryRandomRegular(name, n, d, r); g != nil {
			return g
		}
	}
	panic("topo: failed to sample a simple random regular graph")
}

// tryRandomRegular is one pairing + repair attempt; nil means the swap
// budget ran out (essentially impossible except at adversarial d ≈ n).
func tryRandomRegular(name string, n, d int64, r *rng.Rand) *CSR {
	total := n * d
	neighbors := make([]int64, total)
	func() { // scope the stub arrays so they free before the repair sweep
		// Stub multiset: vertex v appears d times; a random pairing of
		// stubs is stubs[2i] — stubs[2i+1].
		stubs := make([]int32, total)
		for i := int64(0); i < total; i++ {
			stubs[i] = int32(i / d)
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		// Scatter the pairing into fixed-stride CSR rows (every vertex
		// has exactly d slots: row v is [v*d, v*d+d)).
		cursor := make([]int32, n)
		for i := int64(0); i < total; i += 2 {
			a, b := int64(stubs[i]), int64(stubs[i+1])
			neighbors[a*d+int64(cursor[a])] = b
			cursor[a]++
			neighbors[b*d+int64(cursor[b])] = a
			cursor[b]++
		}
	}()

	// Repair: sweep vertices; each self-loop or duplicate entry is swapped
	// with a uniformly random other edge. A successful swap never creates
	// a new loop or duplicate anywhere (all four incident rows are
	// checked), so one sweep converges.
	budget := 200*d*d + 10_000
	row := func(v int64) []int64 { return neighbors[v*d : v*d+d] }
	isBad := func(v int64, slot int64) bool {
		rv := row(v)
		u := rv[slot]
		if u == v {
			return true
		}
		for j := int64(0); j < d; j++ {
			if j != slot && rv[j] == u {
				return true
			}
		}
		return false
	}
	contains := func(v, u int64) bool {
		for _, x := range row(v) {
			if x == u {
				return true
			}
		}
		return false
	}
	replaceOne := func(v, from, to int64) {
		rv := row(v)
		for j := range rv {
			if rv[j] == from {
				rv[j] = to
				return
			}
		}
		panic("topo: repair lost an edge mirror")
	}
	for v := int64(0); v < n; v++ {
		for slot := int64(0); slot < d; slot++ {
			for isBad(v, slot) {
				if budget <= 0 {
					return nil
				}
				budget--
				p := r.Int63n(total)
				c := p / d
				if c == v {
					continue
				}
				old, w := row(v)[slot], neighbors[p]
				// New edges would be {v, w} and {c, old}: reject loops
				// and duplicates on all incident rows (symmetry covers
				// the mirrored rows).
				if w == v || c == old || contains(v, w) || contains(c, old) {
					continue
				}
				row(v)[slot] = w
				neighbors[p] = old
				replaceOne(old, v, c)
				replaceOne(w, c, v)
			}
		}
	}

	offsets := make([]int64, n+1)
	for v := int64(0); v <= n; v++ {
		offsets[v] = v * d
	}
	g := &CSR{GraphName: name, Offsets: offsets, Neighbors: neighbors}
	sortRows(g)
	return g
}

// Gnp samples the Erdős–Rényi graph G(n, p): every unordered pair is an
// edge independently with probability p. Non-edges are skipped with
// geometric jumps, so the cost is O(n + m), not O(n²).
func Gnp(name string, n int64, p float64, r *rng.Rand) *CSR {
	if n < 1 || p < 0 || p > 1 {
		panic(fmt.Sprintf("topo: Gnp needs n >= 1 and p in [0,1], got n=%d p=%v", n, p))
	}
	b := NewBuilder(name, n)
	if p > 0 {
		b.Grow(int(p * float64(n) * float64(n-1) / 2))
		for v := int64(0); v < n-1; v++ {
			u := v
			for {
				if p >= 1 {
					u++
				} else {
					u += geometricSkip(r, p)
				}
				if u >= n {
					break
				}
				b.AddEdge(v, u)
			}
		}
	}
	return b.Finalize()
}

// SmallWorld samples a Watts–Strogatz small-world graph: the ring lattice
// where each vertex is joined to its k/2 nearest neighbors on each side,
// with every lattice edge rewired (keeping its anchor endpoint) to a
// uniformly random target with probability beta. Rewiring rejects loops
// and lattice neighbors inline and resolves the rare rewired-rewired
// collisions in a deterministic sort-and-redraw pass, so the result is
// always a simple graph. Requires k even with 2 <= k < n.
func SmallWorld(name string, n, k int64, beta float64, r *rng.Rand) *CSR {
	if k < 2 || k%2 != 0 || k >= n {
		panic(fmt.Sprintf("topo: SmallWorld needs even k with 2 <= k < n, got n=%d k=%d", n, k))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("topo: SmallWorld needs beta in [0,1], got %v", beta))
	}
	half := k / 2
	isLattice := func(a, c int64) bool {
		delta := (c - a + n) % n
		return delta <= half || delta >= n-half
	}
	// Candidate target for anchor a: uniform, excluding a itself and a's
	// lattice band (the band over-excludes targets whose lattice edge was
	// itself rewired away — the standard WS approximation).
	draw := func(a int64) (int64, bool) {
		for attempt := 0; attempt < 64; attempt++ {
			u := r.Int63n(n)
			if u != a && !isLattice(a, u) {
				return u, true
			}
		}
		return 0, false
	}
	pack := func(a, c int64) uint64 {
		if a > c {
			a, c = c, a
		}
		return uint64(a)<<32 | uint64(c)
	}
	edges := make([]uint64, 0, n*half)
	for v := int64(0); v < n; v++ {
		for j := int64(1); j <= half; j++ {
			target := (v + j) % n
			if beta > 0 && r.Float64() < beta {
				if u, ok := draw(v); ok {
					target = u
				}
			}
			edges = append(edges, pack(v, target))
		}
	}
	// Collision repair: duplicates can only involve rewired edges (the
	// lattice is simple and rewires leave the band), so they are rare.
	// Identify duplicate keys from a sorted copy, then redraw all but one
	// copy of each in a single deterministic pass; membership checks run
	// against the sorted base (over-rejecting is harmless) plus the small
	// set of freshly drawn keys. An irreplaceable copy is dropped, so the
	// result is always simple and the pass always terminates.
	sorted := slices.Clone(edges)
	slices.Sort(sorted)
	extras := map[uint64]int64{} // duplicate key → copies to redraw
	for i := 0; i < len(sorted); {
		j := i + 1
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		if j-i > 1 {
			extras[sorted[i]] = int64(j - i - 1)
		}
		i = j
	}
	if len(extras) > 0 {
		fresh := map[uint64]bool{}
		out := edges[:0]
		for _, e := range edges {
			left, dup := extras[e]
			if !dup || left == 0 {
				out = append(out, e)
				continue
			}
			extras[e] = left - 1
			a := int64(e >> 32)
			for attempt := 0; attempt < 64; attempt++ {
				u, ok := draw(a)
				if !ok {
					break
				}
				ne := pack(a, u)
				if _, found := slices.BinarySearch(sorted, ne); !found && !fresh[ne] {
					out = append(out, ne)
					fresh[ne] = true
					break
				}
			}
		}
		edges = out
	}
	b := NewBuilder(name, n)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(int64(e>>32), int64(uint32(e)))
	}
	return b.Finalize()
}

// BarabasiAlbert grows a preferential-attachment graph: starting from a
// complete seed graph on m+1 vertices, each new vertex attaches m edges to
// existing vertices chosen proportionally to their degree (the classic
// repeated-endpoint-array construction). Requires 1 <= m and m+1 <= n.
func BarabasiAlbert(name string, n, m int64, r *rng.Rand) *CSR {
	if m < 1 || m+1 > n {
		panic(fmt.Sprintf("topo: BarabasiAlbert needs 1 <= m <= n-1, got n=%d m=%d", n, m))
	}
	b := NewBuilder(name, n)
	edgeCount := m*(m+1)/2 + (n-m-1)*m
	b.Grow(int(edgeCount))
	// ends lists every edge endpoint twice; uniform draws from it realize
	// degree-proportional attachment.
	ends := make([]int32, 0, 2*edgeCount)
	addEdge := func(a, c int64) {
		b.AddEdge(a, c)
		ends = append(ends, int32(a), int32(c))
	}
	for i := int64(0); i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			addEdge(i, j)
		}
	}
	chosen := make([]int64, 0, m)
	for v := m + 1; v < n; v++ {
		chosen = chosen[:0]
		for int64(len(chosen)) < m {
			t := int64(ends[r.Int63n(int64(len(ends)))])
			if !slices.Contains(chosen, t) {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			addEdge(v, t)
		}
	}
	return b.Finalize()
}

// SBM samples a stochastic block model with `blocks` contiguous
// near-equal communities: vertex pairs inside a block are edges with
// probability pin, pairs across blocks with probability pout. The planted
// pout ≪ pin regime is the adversarial case for plurality consensus —
// communities can lock onto different colors. Sampling skips non-edges
// geometrically per block pair, so the cost is O(n + m + blocks²).
func SBM(name string, n, blocks int64, pin, pout float64, r *rng.Rand) *CSR {
	if blocks < 1 || blocks > n {
		panic(fmt.Sprintf("topo: SBM needs 1 <= blocks <= n, got n=%d blocks=%d", n, blocks))
	}
	if pin < 0 || pin > 1 || pout < 0 || pout > 1 {
		panic(fmt.Sprintf("topo: SBM needs pin, pout in [0,1], got %v, %v", pin, pout))
	}
	start := func(i int64) int64 { // block i covers [start(i), start(i+1))
		base, rem := n/blocks, n%blocks
		return i*base + min(i, rem)
	}
	b := NewBuilder(name, n)
	for i := int64(0); i < blocks; i++ {
		ai, bi := start(i), start(i+1)
		// Within-block: upper-triangle row walk, like Gnp.
		if pin > 0 {
			for v := ai; v < bi-1; v++ {
				u := v
				for {
					if pin >= 1 {
						u++
					} else {
						u += geometricSkip(r, pin)
					}
					if u >= bi {
						break
					}
					b.AddEdge(v, u)
				}
			}
		}
		// Cross-block rectangles against every later block.
		if pout <= 0 {
			continue
		}
		for j := i + 1; j < blocks; j++ {
			aj, bj := start(j), start(j+1)
			cols := bj - aj
			cells := (bi - ai) * cols
			t := int64(-1)
			for {
				if pout >= 1 {
					t++
				} else {
					t += geometricSkip(r, pout)
				}
				if t >= cells {
					break
				}
				b.AddEdge(ai+t/cols, aj+t%cols)
			}
		}
	}
	return b.Finalize()
}

// Barbell is the bottleneck family: two independent random d-regular
// graphs on n/2 vertices each, joined by a single bridge edge between
// vertices n/2-1 and n/2. Its conductance is Θ(1/(n·d)) — the worst case
// for consensus — while each half remains an expander. Requires n even,
// 1 <= d < n/2, and (n/2)·d even.
func Barbell(name string, n, d int64, r *rng.Rand) *CSR {
	h := n / 2
	if n%2 != 0 || d < 1 || d >= h || h*d%2 != 0 {
		panic(fmt.Sprintf("topo: Barbell needs even n, 1 <= d < n/2, (n/2)·d even; got n=%d d=%d", n, d))
	}
	left := RandomRegular(name, h, d, r)
	right := RandomRegular(name, h, d, r)
	offsets := make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		deg := d
		if v == h-1 || v == h {
			deg = d + 1
		}
		offsets[v+1] = offsets[v] + deg
	}
	neighbors := make([]int64, offsets[n])
	for v := int64(0); v < h; v++ {
		dst := neighbors[offsets[v]:]
		copy(dst, left.Neighbors[left.Offsets[v]:left.Offsets[v+1]])
		if v == h-1 {
			dst[d] = h // bridge
		}
		dst2 := neighbors[offsets[h+v]:]
		src := right.Neighbors[right.Offsets[v]:right.Offsets[v+1]]
		for i, u := range src {
			dst2[i] = u + h
		}
		if v == 0 {
			dst2[d] = h - 1 // bridge
		}
	}
	g := &CSR{GraphName: name, Offsets: offsets, Neighbors: neighbors}
	sortRows(g)
	return g
}

// geometricSkip returns 1 + Geometric(p): the gap to the next success in a
// Bernoulli(p) sequence.
func geometricSkip(r *rng.Rand, p float64) int64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	s := int64(math.Log(u)/math.Log(1-p)) + 1
	if s < 1 {
		s = 1
	}
	return s
}

// ----- implicit families (O(1) memory, structure computed on the fly) -----

// Hypercube is the Dim-dimensional boolean hypercube on 2^Dim vertices:
// u ~ v iff they differ in exactly one bit. Deterministic and implicit —
// neighbor i of v is v with bit i flipped.
type Hypercube struct {
	Dim int
}

// NewHypercube returns the hypercube on n = 2^dim vertices; n must be a
// power of two with 2 <= n < 2^31.
func NewHypercube(n int64) Hypercube {
	if n < 2 || n >= MaxBuilderN || n&(n-1) != 0 {
		panic(fmt.Sprintf("topo: Hypercube needs n a power of two in [2, 2^31), got %d", n))
	}
	dim := 0
	for 1<<dim < n {
		dim++
	}
	return Hypercube{Dim: dim}
}

// Name implements graph.Graph.
func (Hypercube) Name() string { return "hypercube" }

// N implements graph.Graph.
func (g Hypercube) N() int64 { return 1 << g.Dim }

// Degree implements graph.Graph.
func (g Hypercube) Degree(int64) int64 { return int64(g.Dim) }

// Neighbor implements graph.Graph.
func (g Hypercube) Neighbor(v, i int64) int64 { return v ^ (1 << i) }

// UniformDegree implements the degree-class hint: every vertex has degree
// Dim.
func (g Hypercube) UniformDegree() int64 { return int64(g.Dim) }

// SampleNeighbor implements graph.Graph.
func (g Hypercube) SampleNeighbor(v int64, r *rng.Rand) int64 {
	return v ^ (1 << r.Int63n(int64(g.Dim)))
}

// TorusD is the Dims-dimensional torus with equal side length Side:
// vertices are base-Side digit strings, adjacent when exactly one digit
// differs by ±1 mod Side. Degree 2·Dims; implicit like Hypercube.
type TorusD struct {
	Side int64
	Dims int
}

// NewTorusD returns the dims-dimensional torus on n = side^dims vertices;
// n must be an exact dims-th power with side >= 3 (so the 2·dims neighbors
// are distinct) and dims >= 1.
func NewTorusD(n int64, dims int) TorusD {
	side, ok := intRoot(n, dims)
	if !ok || side < 3 {
		panic(fmt.Sprintf("topo: TorusD needs n = side^%d with side >= 3, got %d", dims, n))
	}
	return TorusD{Side: side, Dims: dims}
}

// intRoot returns the exact integer dims-th root of n, or false. It runs
// in O(63) regardless of n, so hostile inputs cannot make validation spin.
func intRoot(n int64, dims int) (int64, bool) {
	if n < 1 || dims < 1 {
		return 0, false
	}
	if dims == 1 {
		return n, true
	}
	if n == math.MaxInt64 {
		// satPow saturates here; 2^63-1 is not a perfect power, so reject
		// rather than let saturation masquerade as equality.
		return 0, false
	}
	// Binary search the root; powers computed with overflow saturation.
	lo, hi := int64(1), int64(1)<<((63+dims-1)/dims)
	for lo < hi {
		mid := (lo + hi) / 2
		switch p := satPow(mid, dims); {
		case p == n:
			return mid, true
		case p < n:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	if satPow(lo, dims) == n {
		return lo, true
	}
	return 0, false
}

// satPow computes b^e saturating at MaxInt64.
func satPow(b int64, e int) int64 {
	p := int64(1)
	for i := 0; i < e; i++ {
		if b != 0 && p > math.MaxInt64/b {
			return math.MaxInt64
		}
		p *= b
	}
	return p
}

// Name implements graph.Graph.
func (g TorusD) Name() string { return fmt.Sprintf("torus%dd", g.Dims) }

// N implements graph.Graph.
func (g TorusD) N() int64 { return satPow(g.Side, g.Dims) }

// Degree implements graph.Graph.
func (g TorusD) Degree(int64) int64 { return int64(2 * g.Dims) }

// Neighbor implements graph.Graph: neighbor 2j / 2j+1 steps +1 / -1 along
// dimension j.
func (g TorusD) Neighbor(v, i int64) int64 {
	dim := i / 2
	stride := int64(1)
	for j := int64(0); j < dim; j++ {
		stride *= g.Side
	}
	digit := (v / stride) % g.Side
	next := digit + 1
	if i%2 == 1 {
		next = digit - 1 + g.Side
	}
	next %= g.Side
	return v + (next-digit)*stride
}

// SampleNeighbor implements graph.Graph.
func (g TorusD) SampleNeighbor(v int64, r *rng.Rand) int64 {
	return g.Neighbor(v, r.Int63n(int64(2*g.Dims)))
}

// UniformDegree implements the degree-class hint: every vertex has degree
// 2·Dims (Side >= 3 keeps all 2·Dims neighbors distinct).
func (g TorusD) UniformDegree() int64 { return int64(2 * g.Dims) }
