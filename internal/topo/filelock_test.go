package topo

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"plurality/internal/rng"
)

// TestBuildSourceMmapSingleBuild pins the cache-stampede fix: many
// concurrent BuildSource calls on the same cold cache path perform exactly
// one CSR build between them — the rest block on the per-path lock and
// then mmap the winner's file. Every caller still gets the identical
// graph.
func TestBuildSourceMmapSingleBuild(t *testing.T) {
	const spec, n = "regular:6", 3000
	path := filepath.Join(t.TempDir(), CacheFileName(spec, n, 42))
	before := mmapCacheBuilds.Load()

	const callers = 8
	srcs := make([]NeighborSource, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			srcs[i], errs[i] = BuildSource(spec, n, rng.New(42), BuildOpts{Mode: ModeMmap, Path: path})
		}(i)
	}
	wg.Wait()

	if got := mmapCacheBuilds.Load() - before; got != 1 {
		t.Errorf("%d concurrent callers performed %d builds, want 1", callers, got)
	}
	ref := srcs[0]
	for i, src := range srcs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		defer src.(io.Closer).Close()
		if src.Name() != ref.Name() || src.N() != n {
			t.Errorf("caller %d got %q n=%d, want %q n=%d", i, src.Name(), src.N(), ref.Name(), int64(n))
		}
		for _, v := range []int64{0, 1, n / 2, n - 1} {
			if src.Degree(v) != ref.Degree(v) || src.Neighbor(v, 0) != ref.Neighbor(v, 0) {
				t.Errorf("caller %d disagrees with caller 0 at vertex %d", i, v)
			}
		}
	}

	// The lock file stays behind by design (unlinking it would reopen the
	// cross-process race); a warm-cache call must not build again.
	if _, err := os.Stat(path + ".lock"); err != nil {
		t.Errorf("lock file missing after build: %v", err)
	}
	warm, err := BuildSource(spec, n, rng.New(42), BuildOpts{Mode: ModeMmap, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	warm.(io.Closer).Close()
	if got := mmapCacheBuilds.Load() - before; got != 1 {
		t.Errorf("warm-cache call rebuilt the graph (%d builds total)", got)
	}
}

// TestBuildSourceMmapLockedRebuildMatches proves the serialized build
// yields the same bytes as an unserialized one: the cache file written
// under the lock equals a direct in-RAM build of the same (spec, n, seed).
func TestBuildSourceMmapLockedRebuildMatches(t *testing.T) {
	const spec, n = "regular:6", 1200
	path := filepath.Join(t.TempDir(), CacheFileName(spec, n, 7))
	src, err := BuildSource(spec, n, rng.New(7), BuildOpts{Mode: ModeMmap, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer src.(io.Closer).Close()
	direct, err := BuildSource(spec, n, rng.New(7), BuildOpts{Mode: ModeCSR})
	if err != nil {
		t.Fatal(err)
	}
	csr := direct.(*CSR)
	for v := int64(0); v < n; v++ {
		if src.Degree(v) != csr.Degree(v) {
			t.Fatalf("vertex %d: degree %d vs direct %d", v, src.Degree(v), csr.Degree(v))
		}
		row := make([]int64, 0, csr.Degree(v))
		for i := int64(0); i < csr.Degree(v); i++ {
			row = append(row, src.Neighbor(v, i))
		}
		if !slices.Equal(row, csr.Neighbors[csr.Offsets[v]:csr.Offsets[v+1]]) {
			t.Fatalf("vertex %d: rows differ", v)
		}
	}
}

// TestLockBuildErrorPath covers the flock acquisition failure branch: a
// lock path inside a nonexistent directory surfaces the error instead of
// silently skipping coordination.
func TestLockBuildErrorPath(t *testing.T) {
	_, err := lockBuild(filepath.Join(t.TempDir(), "no-such-dir", "x.csr"))
	if err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lockBuild under a missing directory = %v, want ErrNotExist", err)
	}
}
