package topo

import (
	"fmt"

	"plurality/internal/rng"
)

// NeighborSource is the engine↔topology contract: the minimal surface the
// graph engine samples neighbors through. It is deliberately identical to
// graph.Graph's method set, so every legacy graph value satisfies it by
// plain interface conversion — the engine has exactly one generic sampling
// loop, shared by implicit backends, mmap backends, and the legacy graph
// package alike.
//
// The rng byte contract every implementation must honor (the golden traces
// pin it): SampleNeighbor consumes exactly one Int63n(Degree(u)) draw per
// sample when Degree(u) > 0 and no draws at all when Degree(u) == 0 (the
// vertex samples itself), and the value returned for draw i must equal
// Neighbor(u, i). Two sources that agree on (N, Degree, Neighbor) therefore
// yield byte-identical seeded runs, whichever representation backs them —
// in-RAM CSR, mmap, or a pure function.
type NeighborSource interface {
	// Name identifies the topology in engine names and experiment tables.
	Name() string
	// N is the number of vertices.
	N() int64
	// Degree returns the number of neighbors of u.
	Degree(u int64) int64
	// Neighbor returns the i-th neighbor of u, 0 <= i < Degree(u). The
	// enumeration order is part of the byte contract: backends of the same
	// topology must enumerate identically.
	Neighbor(u, i int64) int64
	// SampleNeighbor returns a uniformly random neighbor of u, consuming
	// the rng exactly as documented above. A vertex of degree zero returns
	// u itself and consumes nothing.
	SampleNeighbor(u int64, r *rng.Rand) int64
}

// Flat is the optional fast-path surface: sources whose adjacency lives in
// flat int64 offset/neighbor arrays (in-RAM CSR, the legacy adjacency
// list) expose them so the engine's hot loop can index the slices directly
// instead of making two interface calls per sample. The arrays must satisfy
// the CSR invariants (offsets nondecreasing, len(offsets) == N()+1,
// neighbors of v at offsets[v]:offsets[v+1]) and must not be mutated while
// an engine is stepping.
//
// The flat path consumes the rng identically to SampleNeighbor, so whether
// the engine takes it is invisible to seeded runs.
type Flat interface {
	FlatRows() (offsets, neighbors []int64)
}

// FlatRows implements Flat: the CSR is its own flat representation.
func (g *CSR) FlatRows() (offsets, neighbors []int64) { return g.Offsets, g.Neighbors }

// UniformDegree is the optional degree-class hint: a source whose vertices
// all share one positive degree returns it, and the engine's bucketed hot
// loop hoists the per-vertex degree load, the zero-degree branch, and the
// rng rejection threshold out of the sampling loop. Return 0 when degrees
// vary (or are unknown) — the hint must never overclaim, as the bucketed
// loop indexes rows by the advertised width. Implicit regular families
// (torus, hypercube, cycle) answer in O(1); mmap CSRs answer from the scan
// OpenCSR already pays; for in-RAM flat sources the engine derives the
// hint itself from the offset array.
type UniformDegree interface {
	UniformDegree() int64
}

// MaterializeCSR materializes any NeighborSource into an in-RAM CSR
// preserving the source's neighbor enumeration order — Neighbor(v, i) of
// the result equals src.Neighbor(v, i) for every (v, i). Rows are NOT
// re-sorted: sorting would reorder the draw-index→neighbor mapping and
// break byte-identity between the implicit and materialized backends of
// the same topology. (Generator-built CSRs sort rows as their canonical
// layout; a materialized implicit family's canonical layout is its
// enumeration order.)
//
// The name becomes the CSR's GraphName (registry callers pass the
// canonical spec). Returns ErrTooLarge when the source exceeds the
// materialized caps (MaxBuilderN vertices, MaxAdjEntries adjacency
// entries).
func MaterializeCSR(name string, src NeighborSource) (*CSR, error) {
	n := src.N()
	if n < 1 || n >= MaxBuilderN {
		return nil, tooLargef("%s: n = %d exceeds the materialized vertex cap [1, 2^31)", name, n)
	}
	offsets := make([]int64, n+1)
	var total int64
	for v := int64(0); v < n; v++ {
		offsets[v] = total
		total += src.Degree(v)
		if total > MaxAdjEntries {
			return nil, tooLargef("%s at n = %d exceeds the %d materialized adjacency-entry cap", name, n, MaxAdjEntries)
		}
	}
	offsets[n] = total
	neighbors := make([]int64, total)
	for v := int64(0); v < n; v++ {
		row := neighbors[offsets[v]:offsets[v+1]]
		for i := range row {
			row[i] = src.Neighbor(v, int64(i))
		}
	}
	return &CSR{GraphName: name, Offsets: offsets, Neighbors: neighbors}, nil
}

// CacheFileName is the canonical on-disk file name for a materialized
// topology: a pure function of (canonical spec, n, generator seed), so
// mmap-mode callers that derive their graph seeds deterministically (e.g.
// cmd/sweep cells) agree on the file without coordination. Characters that
// are awkward in file names (':', '/') map to '_'.
func CacheFileName(canon string, n int64, seed uint64) string {
	safe := make([]byte, 0, len(canon))
	for i := 0; i < len(canon); i++ {
		c := canon[i]
		if c == ':' || c == '/' {
			c = '_'
		}
		safe = append(safe, c)
	}
	return fmt.Sprintf("%s-n%d-g%d.csr", safe, n, seed)
}
