package topo

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"plurality/internal/rng"
)

// writeFile serializes g to a fresh file under dir and returns the path.
func writeFile(t *testing.T, dir string, g *CSR) string {
	t.Helper()
	path := filepath.Join(dir, g.GraphName+".csr")
	if err := WriteCSRFile(g, path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenCSRRoundTrip maps serialized graphs back and requires exact
// structural agreement with the in-RAM original.
func TestOpenCSRRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, g := range []*CSR{
		RandomRegular("regular4", 50, 4, rng.New(3)),
		Gnp("gnp", 40, 0.1, rng.New(4)),
		SmallWorld("smallworld", 60, 4, 0.2, rng.New(5)),
	} {
		m, err := OpenCSR(writeFile(t, dir, g))
		if err != nil {
			t.Fatalf("%s: OpenCSR: %v", g.GraphName, err)
		}
		if m.Name() != g.GraphName || m.N() != g.N() || m.Edges() != g.Edges() {
			t.Fatalf("%s: header mismatch", g.GraphName)
		}
		sourcesAgree(t, g.GraphName, g, m)
		if !slices.Equal(sampleStream(g, 17, 2), sampleStream(m, 17, 2)) {
			t.Fatalf("%s: mapped sample stream diverged from in-RAM", g.GraphName)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%s: Close: %v", g.GraphName, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%s: second Close: %v", g.GraphName, err)
		}
	}
}

// TestOpenCSREdgeShapes covers the serialization edge cases that feed the
// mmap backend: zero-degree rows (isolated vertices), the n=1 graph, and
// an empty-but-valid graph.
func TestOpenCSREdgeShapes(t *testing.T) {
	dir := t.TempDir()

	// Isolated vertices: a 6-vertex graph where only 1-2 and 4-5 have
	// edges; vertices 0 and 3 have degree zero and must self-sample
	// without consuming the rng.
	b := NewBuilder("islands", 6)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	m, err := OpenCSR(writeFile(t, dir, b.Finalize()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, v := range []int64{0, 3} {
		if d := m.Degree(v); d != 0 {
			t.Fatalf("vertex %d degree %d, want 0", v, d)
		}
		r := rng.New(1)
		before := r.Uint64()
		r = rng.New(1)
		if got := m.SampleNeighbor(v, r); got != v {
			t.Fatalf("isolated vertex %d sampled %d, want itself", v, got)
		}
		if r.Uint64() != before {
			t.Fatal("isolated-vertex sample consumed randomness")
		}
	}
	if m.Degree(1) != 1 || m.Neighbor(1, 0) != 2 {
		t.Fatal("connected row wrong after round trip")
	}

	// n=1: the smallest legal graph, no neighbors at all.
	one, err := OpenCSR(writeFile(t, dir, &CSR{GraphName: "single", Offsets: []int64{0, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	if one.N() != 1 || one.Degree(0) != 0 || one.SampleNeighbor(0, rng.New(2)) != 0 {
		t.Fatal("n=1 graph broken after round trip")
	}

	// Empty n-vertex graph via the builder.
	empty, err := OpenCSR(writeFile(t, dir, NewBuilder("empty", 7).Finalize()))
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if empty.N() != 7 || empty.Edges() != 0 {
		t.Fatal("empty graph broken after round trip")
	}
}

// TestOpenCSRBoundaryNeighborIDs pins 64-bit id handling: a neighbor id
// of exactly n-1 round-trips, while ids >= n — including values past
// int32 that would alias to small ints under a narrowing bug — are
// rejected.
func TestOpenCSRBoundaryNeighborIDs(t *testing.T) {
	dir := t.TempDir()
	const n = 1 << 20
	g := &CSR{
		GraphName: "bound",
		Offsets:   make([]int64, n+1),
		Neighbors: []int64{n - 1, 0},
	}
	// One edge between the extreme vertices 0 and n-1.
	for v := int64(1); v <= n; v++ {
		g.Offsets[v] = 1
	}
	g.Offsets[n] = 2
	m, err := OpenCSR(writeFile(t, dir, g))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.Neighbor(0, 0); got != n-1 {
		t.Fatalf("Neighbor(0,0) = %d, want %d", got, int64(n-1))
	}
	if got := m.Neighbor(n-1, 0); got != 0 {
		t.Fatalf("Neighbor(n-1,0) = %d, want 0", got)
	}

	// A stored id >= n must be rejected at open, for both "just past n"
	// and "past int32" values (the latter catches 32-bit narrowing).
	for _, bad := range []int64{n, int64(1) << 33} {
		evil := &CSR{GraphName: "evil", Offsets: g.Offsets, Neighbors: []int64{bad, 0}}
		path := filepath.Join(dir, "evil.csr")
		if err := writeRaw(path, evil); err != nil {
			t.Fatal(err)
		}
		if m, err := OpenCSR(path); err == nil {
			m.Close()
			t.Fatalf("OpenCSR accepted neighbor id %d with n=%d", bad, int64(n))
		}
	}
}

// writeRaw serializes without WriteTo's own validation getting a chance to
// veto (WriteTo does not validate, but keep the escape hatch explicit).
func writeRaw(path string, g *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = g.WriteTo(f)
	return err
}

// TestOpenCSRRejectsTruncation sweeps every prefix length of a valid file
// (the faultfs torn-write pattern applied to real files): an interrupted
// or torn write must never map successfully, whatever byte it stopped at.
func TestOpenCSRRejectsTruncation(t *testing.T) {
	dir := t.TempDir()
	g := RandomRegular("reg", 20, 4, rng.New(5))
	full, err := os.ReadFile(writeFile(t, dir, g))
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.csr")
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := OpenCSR(torn); err == nil {
			m.Close()
			t.Fatalf("OpenCSR accepted a file truncated to %d of %d bytes", cut, len(full))
		}
	}
	// Trailing junk is corruption too: the format has no trailer, so the
	// size must match the header exactly.
	if err := os.WriteFile(torn, append(slices.Clone(full), 0xAA), 0o644); err != nil {
		t.Fatal(err)
	}
	if m, err := OpenCSR(torn); err == nil {
		m.Close()
		t.Fatal("OpenCSR accepted a file with trailing junk")
	}
}

// TestOpenCSRRejectsCorruption mirrors ReadCSR's corruption matrix on the
// mmap path: bad magic, nonmonotone offsets, out-of-range neighbors, and
// a missing file.
func TestOpenCSRRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	g := RandomRegular("reg", 20, 4, rng.New(5))
	path := writeFile(t, dir, g)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func([]byte) []byte{
		"bad magic": func(b []byte) []byte {
			c := slices.Clone(b)
			copy(c, "WRONGMAG")
			return c
		},
		"neighbor out of range": func(b []byte) []byte {
			c := slices.Clone(b)
			c[len(c)-1] = 0x7f // final neighbor becomes huge
			return c
		},
		"offsets decrease": func(b []byte) []byte {
			c := slices.Clone(b)
			// First stored offset (Offsets[1]) lives right after the
			// header; make it enormous so the monotonicity scan trips.
			hdr := len(b) - 8*(20+int(g.Offsets[20]))
			c[hdr+7] = 0x7f
			return c
		},
	}
	bad := filepath.Join(dir, "bad.csr")
	for name, mutate := range corruptions {
		if err := os.WriteFile(bad, mutate(full), 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := OpenCSR(bad); err == nil {
			m.Close()
			t.Errorf("%s: OpenCSR accepted corrupted file", name)
		}
	}
	if _, err := OpenCSR(filepath.Join(dir, "absent.csr")); err == nil {
		t.Error("OpenCSR accepted a missing file")
	}
}

// TestOpenCSRMaxVertexSparse opens a CSR at the format's vertex ceiling,
// n = MaxBuilderN-1 = 2³¹-1, whose single edge joins the two highest
// vertices — so the stored neighbor ids sit at the int32 boundary and a
// 32-bit narrowing anywhere in the mmap accessors would corrupt them.
// The 17 GB offsets region is written as a filesystem hole (all interior
// offsets are zero until the final vertex), so the file costs a few KB of
// disk; the env gate exists because validation still has to scan all 2³¹
// offsets, which takes seconds.
func TestOpenCSRMaxVertexSparse(t *testing.T) {
	if os.Getenv("PLURALITY_BIGMEM") != "1" {
		t.Skip("set PLURALITY_BIGMEM=1 to scan a 2^31-vertex sparse CSR")
	}
	const n = MaxBuilderN - 1
	const nnz = 2
	path := filepath.Join(t.TempDir(), "max.csr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// Header: magic, name, n, nnz — exactly WriteTo's layout.
	hdr := []byte("topoCSR1")
	name := "maxsparse"
	hdr = append(hdr, byte(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.AppendUvarint(hdr, uint64(n))
	hdr = binary.AppendUvarint(hdr, uint64(nnz))
	if _, err := f.Write(hdr); err != nil {
		t.Fatal(err)
	}
	h := int64(len(hdr))
	// Stored offsets are Offsets[1..n]; all zero except the last two
	// (vertex n-2 gets the first neighbor, n-1 the second). Everything
	// between the header and these trailing words is a hole.
	tail := make([]byte, 8*4)
	binary.LittleEndian.PutUint64(tail[0:], 1)            // Offsets[n-1]
	binary.LittleEndian.PutUint64(tail[8:], nnz)          // Offsets[n]
	binary.LittleEndian.PutUint64(tail[16:], uint64(n-1)) // neighbor of n-2
	binary.LittleEndian.PutUint64(tail[24:], uint64(n-2)) // neighbor of n-1
	if _, err := f.WriteAt(tail, h+8*(n-2)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := OpenCSR(path)
	if err != nil {
		t.Fatalf("OpenCSR at n=2^31-1: %v", err)
	}
	defer m.Close()
	if m.N() != n || m.Edges() != 1 {
		t.Fatalf("header: n=%d edges=%d", m.N(), m.Edges())
	}
	if m.Degree(0) != 0 || m.Degree(n/2) != 0 {
		t.Fatal("interior vertices should be isolated")
	}
	if m.Degree(n-2) != 1 || m.Neighbor(n-2, 0) != n-1 {
		t.Fatalf("Neighbor(n-2,0) = %d, want %d", m.Neighbor(n-2, 0), int64(n-1))
	}
	if m.Neighbor(n-1, 0) != n-2 {
		t.Fatalf("Neighbor(n-1,0) = %d, want %d", m.Neighbor(n-1, 0), int64(n-2))
	}
	if got := m.SampleNeighbor(n-1, rng.New(9)); got != n-2 {
		t.Fatalf("SampleNeighbor(n-1) = %d, want %d", got, int64(n-2))
	}
}

// TestWriteCSRFileAtomic checks the crash-safety contract: the temp file
// is renamed into place, so the target either holds the complete graph or
// (on failure) the previous content, never a partial write.
func TestWriteCSRFileAtomic(t *testing.T) {
	dir := t.TempDir()
	g := RandomRegular("reg", 30, 4, rng.New(6))
	path := filepath.Join(dir, "g.csr")
	if err := WriteCSRFile(g, path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a different graph: the swap must be complete.
	g2 := RandomRegular("reg2", 30, 4, rng.New(7))
	if err := WriteCSRFile(g2, path); err != nil {
		t.Fatal(err)
	}
	m, err := OpenCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Name() != "reg2" {
		t.Fatalf("after overwrite, file holds %q", m.Name())
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after atomic writes, want 1", len(entries))
	}
}
