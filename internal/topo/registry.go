package topo

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"plurality/internal/graph"
	"plurality/internal/rng"
)

// The registry is the one place topology specs are parsed. A spec is a
// family name plus colon-separated parameters ("regular:8",
// "smallworld:10:0.1", "sbm:4:0.01:0.0005"); Validate checks it in
// constant time against n and the resource caps below (never panicking,
// so a hostile service spec is a 400, not a crash), and Build constructs
// the validated graph. cmd/sweep, internal/service, cmd/validate, and
// examples/topologies all resolve names here — there is no other parser.

// Resource caps enforced by Validate. They bound what one topology can pin
// in memory: MaxAdjEntries bounds len(CSR.Neighbors) (2 edges per entry
// pair, 8 bytes per entry — 2 GiB at the cap), MaxDegreeParam bounds the
// degree-like parameters (d, k, m) so repair loops stay near-linear, and
// MaxBlocks bounds the SBM's O(blocks²) block-pair walk.
const (
	MaxAdjEntries  = int64(1) << 28
	MaxDegreeParam = int64(1) << 10
	MaxBlocks      = int64(1) << 10
)

// ErrTooLarge marks size-cap rejections: the spec is well-formed and the
// family supports the shape, but this n exceeds a materialization cap
// (MaxAdjEntries adjacency entries or MaxBuilderN vertices). It is a
// different failure from "unsupported at any n" (bad parameters, wrong n
// shape) — callers can match it with errors.Is and suggest a remediation:
// an implicit family (torus, hypercube, complete, cycle, star) has no
// materialization cost at all, and mmap mode moves a materialized family's
// adjacency out of RAM.
var ErrTooLarge = errors.New("exceeds a materialization cap")

// tooLargef builds a cap-rejection error wrapping ErrTooLarge.
func tooLargef(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrTooLarge)...)
}

// family describes one registered topology family.
type family struct {
	name  string
	usage string
	doc   string
	// random reports whether Build consumes randomness.
	random bool
	// implicit reports whether the family's default build is an O(1)-memory
	// functional graph (neighbors computed, never stored) rather than a
	// materialized CSR. Implicit families have no adjacency cap and scale
	// to n bounded only by the engine's color arrays.
	implicit bool
	// validate checks params (already split, family prefix stripped)
	// against n and returns the canonical spec. It must run in O(1) and
	// never panic.
	validate func(n int64, params []string) (canon string, err error)
	// build constructs the graph; the spec must have passed validate.
	build func(canon string, n int64, params []string, r *rng.Rand) graph.Graph
}

// families is the registry, in documentation order.
var families = []family{
	{
		name: "complete", usage: "complete",
		doc:    "the paper's clique; uniform sampling with self",
		random: false, implicit: true,
		validate: func(n int64, ps []string) (string, error) {
			if err := noParams("complete", ps); err != nil {
				return "", err
			}
			if n < 1 {
				return "", fmt.Errorf("complete needs n >= 1, got %d", n)
			}
			return "complete", nil
		},
		build: func(_ string, n int64, _ []string, _ *rng.Rand) graph.Graph {
			return graph.NewComplete(n)
		},
	},
	{
		name: "cycle", usage: "cycle",
		doc:    "the n-vertex ring; the slowest-mixing connected topology",
		random: false, implicit: true,
		validate: func(n int64, ps []string) (string, error) {
			if err := noParams("cycle", ps); err != nil {
				return "", err
			}
			if n < 3 {
				return "", fmt.Errorf("cycle needs n >= 3, got %d", n)
			}
			return "cycle", nil
		},
		build: func(_ string, n int64, _ []string, _ *rng.Rand) graph.Graph {
			return graph.NewCycle(n)
		},
	},
	{
		name: "star", usage: "star",
		doc:    "hub 0 adjacent to all leaves",
		random: false, implicit: true,
		validate: func(n int64, ps []string) (string, error) {
			if err := noParams("star", ps); err != nil {
				return "", err
			}
			if n < 2 {
				return "", fmt.Errorf("star needs n >= 2, got %d", n)
			}
			return "star", nil
		},
		build: func(_ string, n int64, _ []string, _ *rng.Rand) graph.Graph {
			return graph.NewStar(n)
		},
	},
	{
		name: "torus", usage: "torus[:DIMS]",
		doc:    "equal-sided DIMS-dimensional torus (default 2-d square); n must be an exact DIMS-th power with side >= 3",
		random: false, implicit: true,
		validate: func(n int64, ps []string) (string, error) {
			dims := int64(2)
			if len(ps) > 1 {
				return "", fmt.Errorf("torus takes at most one parameter (torus[:DIMS]), got %d", len(ps))
			}
			if len(ps) == 1 {
				var err error
				dims, err = intParam("torus", "DIMS", ps[0], 1, 20)
				if err != nil {
					return "", err
				}
			}
			side, ok := intRoot(n, int(dims))
			if !ok || side < 3 {
				return "", fmt.Errorf("torus:%d needs n = side^%d with side >= 3, got n=%d", dims, dims, n)
			}
			if len(ps) == 0 {
				return "torus", nil
			}
			return fmt.Sprintf("torus:%d", dims), nil
		},
		build: func(_ string, n int64, ps []string, _ *rng.Rand) graph.Graph {
			if len(ps) == 0 {
				side, _ := intRoot(n, 2)
				return graph.NewTorus(side, side)
			}
			dims, _ := strconv.ParseInt(ps[0], 10, 64)
			return NewTorusD(n, int(dims))
		},
	},
	{
		name: "hypercube", usage: "hypercube",
		doc:    "the log2(n)-dimensional boolean hypercube; n must be a power of two",
		random: false, implicit: true,
		validate: func(n int64, ps []string) (string, error) {
			if err := noParams("hypercube", ps); err != nil {
				return "", err
			}
			if n < 2 || n&(n-1) != 0 {
				return "", fmt.Errorf("hypercube needs n a power of two >= 2, got %d", n)
			}
			if n >= MaxBuilderN {
				return "", tooLargef("hypercube: n = %d exceeds the 2^31 vertex cap", n)
			}
			return "hypercube", nil
		},
		build: func(_ string, n int64, _ []string, _ *rng.Rand) graph.Graph {
			return NewHypercube(n)
		},
	},
	{
		name: "regular", usage: "regular:D",
		doc:    "uniform-ish random D-regular graph (configuration model + swap repair); an expander w.h.p.",
		random: true,
		validate: func(n int64, ps []string) (string, error) {
			d, err := oneIntParam("regular", "D", ps, 1, MaxDegreeParam)
			if err != nil {
				return "", err
			}
			if err := checkBuilderN("regular", n); err != nil {
				return "", err
			}
			if d >= n {
				return "", fmt.Errorf("regular:%d needs degree < n = %d", d, n)
			}
			if n*d%2 != 0 {
				return "", fmt.Errorf("regular:%d needs n·d even (n = %d)", d, n)
			}
			if n*d > MaxAdjEntries {
				return "", tooLargef("regular:%d at n = %d exceeds the %d materialized adjacency-entry cap", d, n, MaxAdjEntries)
			}
			return fmt.Sprintf("regular:%d", d), nil
		},
		build: func(canon string, n int64, ps []string, r *rng.Rand) graph.Graph {
			d, _ := strconv.ParseInt(ps[0], 10, 64)
			return RandomRegular(canon, n, d, r)
		},
	},
	{
		name: "gnp", usage: "gnp:P",
		doc:    "Erdős–Rényi G(n, P); sparse G(n, c/n) sits at the connectivity threshold",
		random: true,
		validate: func(n int64, ps []string) (string, error) {
			p, err := oneFloatParam("gnp", "P", ps, 0, 1)
			if err != nil {
				return "", err
			}
			if n < 1 {
				return "", fmt.Errorf("gnp needs n >= 1, got %d", n)
			}
			if err := checkBuilderN("gnp", n); err != nil {
				return "", err
			}
			if p*float64(n)*float64(n-1) > float64(MaxAdjEntries) {
				return "", tooLargef("gnp:%g at n = %d expects more than the %d materialized adjacency-entry cap", p, n, MaxAdjEntries)
			}
			return fmt.Sprintf("gnp:%g", p), nil
		},
		build: func(canon string, n int64, ps []string, r *rng.Rand) graph.Graph {
			p, _ := strconv.ParseFloat(ps[0], 64)
			return Gnp(canon, n, p, r)
		},
	},
	{
		name: "smallworld", usage: "smallworld:K:BETA",
		doc:    "Watts–Strogatz: ring lattice of even degree K with each edge rewired with probability BETA",
		random: true,
		validate: func(n int64, ps []string) (string, error) {
			if len(ps) != 2 {
				return "", fmt.Errorf("smallworld takes two parameters (smallworld:K:BETA), got %d", len(ps))
			}
			k, err := intParam("smallworld", "K", ps[0], 2, MaxDegreeParam)
			if err != nil {
				return "", err
			}
			beta, err := floatParam("smallworld", "BETA", ps[1], 0, 1)
			if err != nil {
				return "", err
			}
			if k%2 != 0 {
				return "", fmt.Errorf("smallworld:%d needs even K", k)
			}
			if err := checkBuilderN("smallworld", n); err != nil {
				return "", err
			}
			if k >= n {
				return "", fmt.Errorf("smallworld:%d needs K < n = %d", k, n)
			}
			if n*k > MaxAdjEntries {
				return "", tooLargef("smallworld:%d at n = %d exceeds the %d materialized adjacency-entry cap", k, n, MaxAdjEntries)
			}
			return fmt.Sprintf("smallworld:%d:%g", k, beta), nil
		},
		build: func(canon string, n int64, ps []string, r *rng.Rand) graph.Graph {
			k, _ := strconv.ParseInt(ps[0], 10, 64)
			beta, _ := strconv.ParseFloat(ps[1], 64)
			return SmallWorld(canon, n, k, beta, r)
		},
	},
	{
		name: "ba", usage: "ba:M",
		doc:    "Barabási–Albert preferential attachment, M edges per arriving vertex; heavy-tailed hubs",
		random: true,
		validate: func(n int64, ps []string) (string, error) {
			m, err := oneIntParam("ba", "M", ps, 1, MaxDegreeParam)
			if err != nil {
				return "", err
			}
			if err := checkBuilderN("ba", n); err != nil {
				return "", err
			}
			if m+1 > n {
				return "", fmt.Errorf("ba:%d needs M+1 <= n = %d", m, n)
			}
			if 2*m*n > MaxAdjEntries {
				return "", tooLargef("ba:%d at n = %d exceeds the %d materialized adjacency-entry cap", m, n, MaxAdjEntries)
			}
			return fmt.Sprintf("ba:%d", m), nil
		},
		build: func(canon string, n int64, ps []string, r *rng.Rand) graph.Graph {
			m, _ := strconv.ParseInt(ps[0], 10, 64)
			return BarabasiAlbert(canon, n, m, r)
		},
	},
	{
		name: "sbm", usage: "sbm:B:PIN:POUT",
		doc:    "stochastic block model: B planted communities, edge probability PIN inside and POUT across — the adversarial case for plurality",
		random: true,
		validate: func(n int64, ps []string) (string, error) {
			if len(ps) != 3 {
				return "", fmt.Errorf("sbm takes three parameters (sbm:B:PIN:POUT), got %d", len(ps))
			}
			blocks, err := intParam("sbm", "B", ps[0], 1, MaxBlocks)
			if err != nil {
				return "", err
			}
			pin, err := floatParam("sbm", "PIN", ps[1], 0, 1)
			if err != nil {
				return "", err
			}
			pout, err := floatParam("sbm", "POUT", ps[2], 0, 1)
			if err != nil {
				return "", err
			}
			if blocks > n {
				return "", fmt.Errorf("sbm:%d needs B <= n = %d", blocks, n)
			}
			if err := checkBuilderN("sbm", n); err != nil {
				return "", err
			}
			size := float64(n) / float64(blocks)
			expected := float64(n) * (pin*size + pout*(float64(n)-size))
			if expected > float64(MaxAdjEntries) {
				return "", tooLargef("sbm:%d:%g:%g at n = %d expects more than the %d materialized adjacency-entry cap", blocks, pin, pout, n, MaxAdjEntries)
			}
			return fmt.Sprintf("sbm:%d:%g:%g", blocks, pin, pout), nil
		},
		build: func(canon string, n int64, ps []string, r *rng.Rand) graph.Graph {
			blocks, _ := strconv.ParseInt(ps[0], 10, 64)
			pin, _ := strconv.ParseFloat(ps[1], 64)
			pout, _ := strconv.ParseFloat(ps[2], 64)
			return SBM(canon, n, blocks, pin, pout, r)
		},
	},
	{
		name: "barbell", usage: "barbell:D",
		doc:    "bottleneck: two random D-regular halves joined by one bridge edge; conductance Θ(1/(n·D))",
		random: true,
		validate: func(n int64, ps []string) (string, error) {
			d, err := oneIntParam("barbell", "D", ps, 1, MaxDegreeParam)
			if err != nil {
				return "", err
			}
			if err := checkBuilderN("barbell", n); err != nil {
				return "", err
			}
			h := n / 2
			if n%2 != 0 || d >= h {
				return "", fmt.Errorf("barbell:%d needs even n with D < n/2, got n = %d", d, n)
			}
			if h*d%2 != 0 {
				return "", fmt.Errorf("barbell:%d needs (n/2)·D even (n = %d)", d, n)
			}
			if n*d+2 > MaxAdjEntries {
				return "", tooLargef("barbell:%d at n = %d exceeds the %d materialized adjacency-entry cap", d, n, MaxAdjEntries)
			}
			return fmt.Sprintf("barbell:%d", d), nil
		},
		build: func(canon string, n int64, ps []string, r *rng.Rand) graph.Graph {
			d, _ := strconv.ParseInt(ps[0], 10, 64)
			return Barbell(canon, n, d, r)
		},
	},
}

// lookup splits a spec into its family descriptor and parameter list.
func lookup(spec string) (*family, []string, error) {
	parts := strings.Split(spec, ":")
	for i := range families {
		if families[i].name == parts[0] {
			return &families[i], parts[1:], nil
		}
	}
	return nil, nil, fmt.Errorf("unknown graph %q (families: %s)", spec, strings.Join(FamilyUsages(), ", "))
}

// FamilyUsages returns the usage string of every registered family, in
// documentation order (for help text and error messages).
func FamilyUsages() []string {
	out := make([]string, len(families))
	for i, f := range families {
		out[i] = f.usage
	}
	return out
}

// FamilyDocs returns usage → one-line description pairs in registry order.
func FamilyDocs() [][2]string {
	out := make([][2]string, len(families))
	for i, f := range families {
		out[i] = [2]string{f.usage, f.doc}
	}
	return out
}

// Validate checks a topology spec against n and the resource caps. It runs
// in constant time and never panics, so it is safe on hostile input (the
// service admission path depends on this).
func Validate(spec string, n int64) error {
	_, err := Canonical(spec, n)
	return err
}

// Canonical validates the spec and returns its canonical form (numeric
// parameters normalized), which is what Build stamps into CSR.GraphName
// and what callers should persist in records.
func Canonical(spec string, n int64) (string, error) {
	f, params, err := lookup(spec)
	if err != nil {
		return "", err
	}
	return f.validate(n, params)
}

// IsRandom reports whether the spec's generator consumes randomness (the
// implicit families — complete, cycle, star, torus, hypercube — do not).
func IsRandom(spec string) (bool, error) {
	f, _, err := lookup(spec)
	if err != nil {
		return false, err
	}
	return f.random, nil
}

// IsImplicit reports whether the spec's family has an implicit O(1)-memory
// backend (complete, cycle, star, torus, hypercube). Implicit families
// carry no adjacency materialization cost, so callers (e.g. the service's
// admission caps) may allow far larger n for them.
func IsImplicit(spec string) (bool, error) {
	f, _, err := lookup(spec)
	if err != nil {
		return false, err
	}
	return f.implicit, nil
}

// Build validates the spec and constructs the topology on n vertices. All
// randomness comes from r, so the graph is a pure function of
// (spec, n, r's state); deterministic families accept a nil r. Build is
// BuildSource in ModeAuto, kept for the many callers that want the family
// default and nothing else.
func Build(spec string, n int64, r *rng.Rand) (graph.Graph, error) {
	f, params, err := lookup(spec)
	if err != nil {
		return nil, err
	}
	canon, err := f.validate(n, params)
	if err != nil {
		return nil, err
	}
	return f.build(canon, n, params, r), nil
}

// Mode selects the backend representation BuildSource constructs behind
// the NeighborSource interface. Every mode honors the same rng byte
// contract, so for overlapping (spec, n, seed) the modes produce
// byte-identical seeded runs — the choice is purely a memory/latency
// trade.
type Mode string

const (
	// ModeAuto is the family default: implicit families stay implicit,
	// generator families build an in-RAM CSR. Identical to Build.
	ModeAuto Mode = "auto"
	// ModeImplicit requires the family's O(1)-memory functional backend
	// and errors for families that must materialize.
	ModeImplicit Mode = "implicit"
	// ModeCSR forces an in-RAM CSR, materializing implicit families in
	// their enumeration order (subject to the MaxAdjEntries cap).
	ModeCSR Mode = "csr"
	// ModeMmap serves the CSR from an on-disk file via OpenCSR: an
	// existing file at BuildOpts.Path is opened and verified against the
	// spec; otherwise the graph is built, written atomically, and mapped.
	ModeMmap Mode = "mmap"
)

// ParseMode parses a user-facing mode string ("" means auto).
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeAuto:
		return ModeAuto, nil
	case ModeImplicit, ModeCSR, ModeMmap:
		return Mode(s), nil
	}
	return "", fmt.Errorf("unknown graph mode %q (want auto, implicit, csr, or mmap)", s)
}

// BuildOpts selects the backend for BuildSource.
type BuildOpts struct {
	// Mode picks the representation; zero value is ModeAuto.
	Mode Mode
	// Path is the CSR file for ModeMmap (required there, ignored
	// elsewhere). Derive shared cache paths with CacheFileName.
	Path string
}

// BuildSource validates the spec and constructs it behind the selected
// backend. Like Build, the result is a pure function of (spec, n, r's
// state, opts) — in mmap mode a pre-existing file at opts.Path is reused
// without consuming r, which is only sound because files written by this
// function are themselves pure functions of the same inputs.
//
// The returned source may hold an OS resource (mmap mode): callers that
// care should close it via an io.Closer type assertion when done.
func BuildSource(spec string, n int64, r *rng.Rand, opts BuildOpts) (NeighborSource, error) {
	f, params, err := lookup(spec)
	if err != nil {
		return nil, err
	}
	canon, err := f.validate(n, params)
	if err != nil {
		return nil, err
	}
	mode := opts.Mode
	if mode == "" {
		mode = ModeAuto
	}
	switch mode {
	case ModeAuto:
		return f.build(canon, n, params, r), nil
	case ModeImplicit:
		if !f.implicit {
			return nil, fmt.Errorf("topo: %s has no implicit backend (implicit families: %s)", f.name, strings.Join(implicitFamilyNames(), ", "))
		}
		return f.build(canon, n, params, r), nil
	case ModeCSR:
		return buildCSR(f, canon, n, params, r)
	case ModeMmap:
		if opts.Path == "" {
			return nil, fmt.Errorf("topo: mmap mode needs a file path (BuildOpts.Path)")
		}
		// Serialize open-or-build per cache path (see filelock.go): of any
		// number of concurrent callers — goroutines here or other processes
		// via the <path>.lock flock — exactly one builds the CSR; the rest
		// block on the lock and then reuse the file through the OpenCSR
		// below.
		unlock, err := lockBuild(opts.Path)
		if err != nil {
			return nil, err
		}
		defer unlock()
		if m, err := OpenCSR(opts.Path); err == nil {
			if m.Name() != canon || m.N() != n {
				got, gotN := m.Name(), m.N()
				m.Close()
				return nil, fmt.Errorf("topo: %s holds %q with n=%d, want %q with n=%d", opts.Path, got, gotN, canon, n)
			}
			return m, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		mmapCacheBuilds.Add(1)
		csr, err := buildCSR(f, canon, n, params, r)
		if err != nil {
			return nil, err
		}
		if err := WriteCSRFile(csr, opts.Path); err != nil {
			return nil, err
		}
		return OpenCSR(opts.Path)
	}
	return nil, fmt.Errorf("unknown graph mode %q (want auto, implicit, csr, or mmap)", mode)
}

// buildCSR builds the family and forces an in-RAM CSR representation.
func buildCSR(f *family, canon string, n int64, params []string, r *rng.Rand) (*CSR, error) {
	g := f.build(canon, n, params, r)
	if csr, ok := g.(*CSR); ok {
		return csr, nil
	}
	return MaterializeCSR(canon, g)
}

// implicitFamilyNames lists the families carrying an implicit backend, in
// registry order (for error messages).
func implicitFamilyNames() []string {
	var out []string
	for _, f := range families {
		if f.implicit {
			out = append(out, f.name)
		}
	}
	return out
}

// ----- parameter parsing helpers (strict, constant-time) -----

// checkBuilderN guards every builder-backed (materialized) family: the CSR
// builder addresses at most 2^31 vertices, so Validate must reject larger
// n here or Build would panic — and with n < 2^31 and degree parameters
// capped at MaxDegreeParam, the n·d cap arithmetic cannot overflow int64.
// The n >= 2^31 branch is a size-cap rejection (ErrTooLarge), distinct
// from the malformed n < 1.
func checkBuilderN(name string, n int64) error {
	if n < 1 {
		return fmt.Errorf("%s needs n >= 1, got %d", name, n)
	}
	if n >= MaxBuilderN {
		return tooLargef("%s: n = %d exceeds the 2^31 materialized vertex cap", name, n)
	}
	return nil
}

func noParams(name string, ps []string) error {
	if len(ps) != 0 {
		return fmt.Errorf("%s takes no parameters, got %q", name, strings.Join(ps, ":"))
	}
	return nil
}

func oneIntParam(name, label string, ps []string, lo, hi int64) (int64, error) {
	if len(ps) != 1 {
		return 0, fmt.Errorf("%s takes one parameter (%s:%s), got %d", name, name, label, len(ps))
	}
	return intParam(name, label, ps[0], lo, hi)
}

func intParam(name, label, s string, lo, hi int64) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: bad %s %q (want an integer)", name, label, s)
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("%s: %s = %d outside [%d, %d]", name, label, v, lo, hi)
	}
	return v, nil
}

func oneFloatParam(name, label string, ps []string, lo, hi float64) (float64, error) {
	if len(ps) != 1 {
		return 0, fmt.Errorf("%s takes one parameter (%s:%s), got %d", name, name, label, len(ps))
	}
	return floatParam(name, label, ps[0], lo, hi)
}

func floatParam(name, label, s string, lo, hi float64) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) {
		return 0, fmt.Errorf("%s: bad %s %q (want a number)", name, label, s)
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("%s: %s = %g outside [%g, %g]", name, label, v, lo, hi)
	}
	return v, nil
}
