// Package spectral estimates the structural quantities that govern how
// plurality consensus degrades beyond the clique: the second eigenvalue of
// the (lazy, degree-normalized) random-walk matrix and the graph's
// conductance. The paper's guarantees are proved on the complete graph;
// on sparser topologies the 3-majority round count tracks the spectral gap
// — these estimators let every graph run report its gap alongside its
// convergence rounds (experiment E20).
//
// The estimators iterate neighbors through the graph.Graph interface, so
// they work on CSR and implicit topologies alike; cost is O(iterations ·
// Σ degree). The dense complete graph is answered analytically.
package spectral

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"plurality/internal/graph"
	"plurality/internal/rng"
)

// Result carries the spectral diagnostics of one topology.
type Result struct {
	// Lambda2 is the second-largest eigenvalue of the lazy walk matrix
	// W = (I + D^{-1/2} A D^{-1/2})/2; its eigenvalues lie in [0, 1], so
	// laziness removes the bipartite sign ambiguity of the plain walk.
	Lambda2 float64 `json:"lambda2"`
	// SpectralGap is 1 - Lambda2 (the lazy gap; the non-lazy normalized
	// gap is twice this). Larger means faster mixing: the clique has gap
	// 1/2, an expander Θ(1), the cycle Θ(1/n²).
	SpectralGap float64 `json:"spectral_gap"`
	// Conductance is the minimum sweep-cut conductance over the second
	// eigenvector's ordering: an upper bound on the true conductance,
	// tight in practice and Cheeger-consistent with the gap.
	Conductance float64 `json:"conductance"`
	// Iterations is the number of power iterations performed.
	Iterations int `json:"iterations"`
}

// Options tunes the estimator. Zero values select the defaults.
type Options struct {
	// MaxIters bounds the power iterations (default 500).
	MaxIters int
	// Tol stops iterating when the eigenvalue estimate moves less than
	// this between iterations (default 1e-9).
	Tol float64
}

// MaxVolume bounds Σ degree for the iterative estimator: beyond it a
// single matrix-vector product is too expensive and the caller should
// diagnose a sparser representative instead.
const MaxVolume = int64(1) << 30

// ErrTooDense reports a graph whose adjacency volume exceeds MaxVolume.
var ErrTooDense = errors.New("spectral: graph too dense to iterate (volume over MaxVolume)")

// Diagnose estimates Result for g. Randomness (the start vector) comes
// from r, so the estimate is deterministic per seed; the eigenvalue it
// converges to is seed-independent up to Tol.
func Diagnose(g graph.Graph, r *rng.Rand, opt Options) (Result, error) {
	if opt.MaxIters <= 0 {
		opt.MaxIters = 500
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-9
	}
	if c, ok := g.(graph.Complete); ok {
		return completeResult(c), nil
	}
	n := g.N()
	if n < 2 {
		return Result{}, fmt.Errorf("spectral: need n >= 2, got %d", n)
	}
	var volume int64
	deg := make([]float64, n)
	invSqrt := make([]float64, n)
	for v := int64(0); v < n; v++ {
		d := g.Degree(v)
		volume += d
		if volume > MaxVolume {
			return Result{}, ErrTooDense
		}
		if d == 0 {
			// Isolated vertices sample themselves in the engines; model
			// them as a self-loop so the walk matrix stays stochastic.
			d = 1
		}
		deg[v] = float64(d)
		invSqrt[v] = 1 / math.Sqrt(float64(d))
	}

	// Principal eigenvector of the lazy walk: φ_v ∝ sqrt(deg v).
	phi := make([]float64, n)
	var norm float64
	for v := range phi {
		phi[v] = math.Sqrt(deg[v])
		norm += deg[v]
	}
	norm = math.Sqrt(norm)
	for v := range phi {
		phi[v] /= norm
	}

	// Power iteration on W with φ deflated each step.
	x := make([]float64, n)
	for v := range x {
		x[v] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	lambda, prev := 0.0, math.Inf(1)
	iters := 0
	for ; iters < opt.MaxIters; iters++ {
		deflate(x, phi)
		if normalize(x) == 0 {
			// x collapsed onto φ (possible only on tiny graphs); restart.
			for v := range x {
				x[v] = r.Float64() - 0.5
			}
			continue
		}
		applyLazyWalk(g, invSqrt, x, y)
		// Rayleigh quotient before renormalizing: x is unit, so x·y = λ.
		lambda = dot(x, y)
		x, y = y, x
		if math.Abs(lambda-prev) < opt.Tol {
			iters++
			break
		}
		prev = lambda
	}
	// Lazy eigenvalues live in [0, 1]; clamp the float error at the rim.
	lambda = math.Max(0, math.Min(1, lambda))

	cond := sweepConductance(g, deg, x)
	return Result{
		Lambda2:     lambda,
		SpectralGap: 1 - lambda,
		Conductance: cond,
		Iterations:  iters,
	}, nil
}

// completeResult answers the dense clique analytically: with self-sampling
// the walk matrix is J/n (second eigenvalue 0), without it (J-I)/(n-1).
func completeResult(c graph.Complete) Result {
	n := float64(c.Vertices)
	walk2 := 0.0
	if !c.IncludeSelf {
		walk2 = -1 / (n - 1)
	}
	lazy := (1 + walk2) / 2
	// Balanced cut: cut = (n/2)², volume of a side = (n/2)·deg.
	cond := (n / 2) / n
	if !c.IncludeSelf {
		cond = (n / 2) / (n - 1)
	}
	return Result{Lambda2: lazy, SpectralGap: 1 - lazy, Conductance: cond}
}

// applyLazyWalk computes y = W x where W = (I + D^{-1/2} A D^{-1/2})/2,
// with isolated vertices treated as self-loops. invSqrt holds the
// precomputed 1/sqrt(degree) per vertex, so the per-edge work inside the
// up-to-500-iteration power loop is one multiply, not a sqrt and divide.
func applyLazyWalk(g graph.Graph, invSqrt, x, y []float64) {
	n := g.N()
	for v := int64(0); v < n; v++ {
		d := g.Degree(v)
		var acc float64
		if d == 0 {
			acc = x[v] // self-loop
		} else {
			for i := int64(0); i < d; i++ {
				u := g.Neighbor(v, i)
				acc += x[u] * invSqrt[u]
			}
			acc *= invSqrt[v]
		}
		y[v] = (x[v] + acc) / 2
	}
}

// deflate removes the φ component from x (φ must be unit).
func deflate(x, phi []float64) {
	c := dot(x, phi)
	for v := range x {
		x[v] -= c * phi[v]
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// normalize scales x to unit length and returns the prior norm.
func normalize(x []float64) float64 {
	n := math.Sqrt(dot(x, x))
	if n == 0 {
		return 0
	}
	for v := range x {
		x[v] /= n
	}
	return n
}

// sweepConductance orders vertices by the D^{-1/2}-transformed eigenvector
// (the walk eigenvector) and returns the minimum conductance
// cut(S)/min(vol S, vol V∖S) over all prefix cuts S — the classic Cheeger
// sweep, an upper bound on the graph's true conductance.
func sweepConductance(g graph.Graph, deg []float64, x []float64) float64 {
	n := g.N()
	order := make([]int64, n)
	for v := range order {
		order[v] = int64(v)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		return x[a]/math.Sqrt(deg[a]) < x[b]/math.Sqrt(deg[b])
	})
	var totalVol float64
	for _, d := range deg {
		totalVol += d
	}
	inS := make([]bool, n)
	best := math.Inf(1)
	var cut, vol float64
	for idx := int64(0); idx < n-1; idx++ {
		v := order[idx]
		inS[v] = true
		vol += deg[v]
		// An isolated vertex's modeled self-loop never crosses the cut.
		for i, d := int64(0), g.Degree(v); i < d; i++ {
			if inS[g.Neighbor(v, i)] {
				cut--
			} else {
				cut++
			}
		}
		if smaller := math.Min(vol, totalVol-vol); smaller > 0 {
			if phi := cut / smaller; phi < best {
				best = phi
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}
