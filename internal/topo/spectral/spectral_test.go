package spectral

import (
	"math"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/topo"
)

// diagnose runs with a deep iteration budget: the closed-form checks need
// tight eigenvalue accuracy even where adjacent eigenvalues nearly
// coincide (the cycle), which the production defaults don't aim for.
func diagnose(t *testing.T, g graph.Graph) Result {
	t.Helper()
	res, err := Diagnose(g, rng.New(7), Options{MaxIters: 30000, Tol: 1e-14})
	if err != nil {
		t.Fatalf("Diagnose(%s): %v", g.Name(), err)
	}
	return res
}

func TestCompleteAnalytic(t *testing.T) {
	res := diagnose(t, graph.NewComplete(1000))
	if math.Abs(res.Lambda2-0.5) > 1e-12 || math.Abs(res.SpectralGap-0.5) > 1e-12 {
		t.Errorf("clique+self: lambda2 %v gap %v, want 0.5 / 0.5", res.Lambda2, res.SpectralGap)
	}
	if math.Abs(res.Conductance-0.5) > 1e-12 {
		t.Errorf("clique+self conductance %v, want 0.5", res.Conductance)
	}
}

func TestCycleMatchesClosedForm(t *testing.T) {
	// Walk matrix of the n-cycle has second eigenvalue cos(2π/n); the
	// lazy version (1+cos(2π/n))/2.
	const n = 64
	res := diagnose(t, graph.NewCycle(n))
	want := (1 + math.Cos(2*math.Pi/n)) / 2
	if math.Abs(res.Lambda2-want) > 1e-6 {
		t.Errorf("cycle lambda2 %v, want %v", res.Lambda2, want)
	}
	// Cycle conductance: the best cut splits the ring into two arcs —
	// 2 crossing edges over volume n.
	if want := 2.0 / n; math.Abs(res.Conductance-want) > 1e-9 {
		t.Errorf("cycle conductance %v, want %v", res.Conductance, want)
	}
}

func TestHypercubeMatchesClosedForm(t *testing.T) {
	// Normalized adjacency eigenvalues of the d-cube are (d-2i)/d, so the
	// lazy second eigenvalue is (1 + (d-2)/d)/2 = 1 - 1/d.
	g := topo.NewHypercube(64) // d = 6
	res := diagnose(t, g)
	want := 1 - 1.0/6
	if math.Abs(res.Lambda2-want) > 1e-6 {
		t.Errorf("hypercube lambda2 %v, want %v", res.Lambda2, want)
	}
	// True conductance is 1/d (dimension cut); the sweep is an upper
	// bound and must stay within the Cheeger window (checked below), but
	// on the cube it should land close.
	if res.Conductance < 1.0/6-1e-9 || res.Conductance > 2.0/6 {
		t.Errorf("hypercube conductance %v, want in [1/6, 2/6]", res.Conductance)
	}
}

func TestExpanderVsBottleneck(t *testing.T) {
	r := rng.New(3)
	expander := topo.RandomRegular("regular:8", 2000, 8, r)
	barbell := topo.Barbell("barbell:8", 2000, 8, r)
	resE := diagnose(t, expander)
	resB := diagnose(t, barbell)
	if resE.SpectralGap < 0.08 {
		t.Errorf("random 8-regular gap %v, want expander-sized (> 0.08)", resE.SpectralGap)
	}
	if resE.Conductance < 0.15 {
		t.Errorf("random 8-regular conductance %v, want > 0.15", resE.Conductance)
	}
	// The barbell's bridge pins conductance near 2/(n·d) and the gap
	// below it (Cheeger upper bound).
	if resB.Conductance > 0.001 {
		t.Errorf("barbell conductance %v, want ≈ 1/8000", resB.Conductance)
	}
	if resB.SpectralGap > resE.SpectralGap/10 {
		t.Errorf("barbell gap %v not far below expander gap %v", resB.SpectralGap, resE.SpectralGap)
	}
}

func TestCheegerConsistency(t *testing.T) {
	// For every estimated pair: gap2/2 <= φ_sweep and the true φ <=
	// sqrt(2·gap2) — since the sweep upper-bounds true conductance we can
	// only check the lower branch plus sanity bounds. gap2 is the
	// non-lazy normalized gap = 2·SpectralGap.
	r := rng.New(5)
	gs := []graph.Graph{
		graph.NewCycle(100),
		topo.NewHypercube(128),
		topo.RandomRegular("regular:6", 500, 6, r),
		topo.SmallWorld("smallworld:6:0.2", 500, 6, 0.2, r),
		topo.Gnp("gnp:0.03", 400, 0.03, r),
		topo.SBM("sbm", 400, 2, 0.08, 0.002, r),
	}
	for _, g := range gs {
		res := diagnose(t, g)
		gap2 := 2 * res.SpectralGap
		if res.Conductance < gap2/2-1e-6 {
			t.Errorf("%s: sweep conductance %v below Cheeger floor %v", g.Name(), res.Conductance, gap2/2)
		}
		if res.Conductance < 0 || res.Conductance > 1+1e-9 {
			t.Errorf("%s: conductance %v outside [0, 1]", g.Name(), res.Conductance)
		}
		if res.Lambda2 < 0 || res.Lambda2 > 1 {
			t.Errorf("%s: lambda2 %v outside [0, 1]", g.Name(), res.Lambda2)
		}
	}
}

func TestDisconnectedGraphHasZeroGap(t *testing.T) {
	// Two components → eigenvalue 1 with multiplicity 2 → gap 0.
	b := topo.NewBuilder("two-triangles", 6)
	for _, e := range [][2]int64{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		b.AddEdge(e[0], e[1])
	}
	res := diagnose(t, b.Finalize())
	if res.SpectralGap > 1e-6 {
		t.Errorf("disconnected gap %v, want ~0", res.SpectralGap)
	}
	if res.Conductance > 1e-9 {
		t.Errorf("disconnected conductance %v, want 0", res.Conductance)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := topo.RandomRegular("regular:4", 300, 4, rng.New(9))
	deep := Options{MaxIters: 30000, Tol: 1e-14}
	a, err := Diagnose(g, rng.New(1), deep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Diagnose(g, rng.New(1), deep)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Diagnose(g, rng.New(2), deep)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Lambda2-c.Lambda2) > 1e-6 {
		t.Errorf("lambda2 seed-dependent beyond tolerance: %v vs %v", a.Lambda2, c.Lambda2)
	}
}
