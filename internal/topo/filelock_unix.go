//go:build unix

package topo

import (
	"os"
	"syscall"
)

// flockPath takes an exclusive advisory lock on the named file (created if
// absent), blocking until it is available, and returns the release
// function. Advisory locks only exclude other flock callers — which is
// exactly the contract here: every BuildSource mmap cache miss goes
// through lockBuild.
func flockPath(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
