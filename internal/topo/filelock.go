package topo

import (
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Concurrent sweep cells and pluralityd jobs that share a CacheFileName
// used to race on the same mmap cache miss: each caller rebuilt the
// multi-gigabyte CSR and the atomic renames last-writer-won. The result
// was correct (the files are pure functions of their inputs) but the work
// was multiplied by the caller count. BuildSource's mmap branch now
// serializes open-or-build per cache path: an in-process mutex covers
// goroutines sharing this process, and an advisory flock on <path>.lock
// covers separate processes pointed at the same cache directory. Losers
// of the race wake up, re-try OpenCSR, and reuse the winner's file.
//
// The .lock file is left in place after the build — unlinking it would
// reopen the race (a process holding the lock on an unlinked inode no
// longer excludes a process locking a fresh file at the same path).

// buildLocks maps absolute cache paths to their in-process mutexes.
var buildLocks sync.Map

// mmapCacheBuilds counts actual CSR builds taken on the mmap cache-miss
// path; tests use it to prove that concurrent callers build once.
var mmapCacheBuilds atomic.Int64

// lockBuild acquires the single-build lock for a cache path and returns
// the release function.
func lockBuild(path string) (func(), error) {
	key, err := filepath.Abs(path)
	if err != nil {
		key = path
	}
	muAny, _ := buildLocks.LoadOrStore(key, &sync.Mutex{})
	mu := muAny.(*sync.Mutex)
	mu.Lock()
	release, err := flockPath(path + ".lock")
	if err != nil {
		mu.Unlock()
		return nil, err
	}
	return func() {
		release()
		mu.Unlock()
	}, nil
}
