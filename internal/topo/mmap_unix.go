//go:build unix

package topo

import (
	"os"
	"syscall"
)

// mapFile maps the first size bytes of f read-only. The returned unmap
// releases the mapping; the file descriptor itself may be closed as soon
// as mapFile returns (the mapping outlives it).
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
