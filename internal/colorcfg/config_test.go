package colorcfg

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/rng"
)

func TestBasicAccessors(t *testing.T) {
	c := FromCounts(5, 3, 2)
	if c.K() != 3 {
		t.Errorf("K = %d", c.K())
	}
	if c.N() != 10 {
		t.Errorf("N = %d", c.N())
	}
	if c.Plurality() != 0 {
		t.Errorf("Plurality = %d", c.Plurality())
	}
	if c.Bias() != 2 {
		t.Errorf("Bias = %d", c.Bias())
	}
	if c.MinorityMass() != 5 {
		t.Errorf("MinorityMass = %d", c.MinorityMass())
	}
	if c.Support() != 3 {
		t.Errorf("Support = %d", c.Support())
	}
}

func TestPluralityTieBreaksLow(t *testing.T) {
	c := FromCounts(4, 4, 2)
	if c.Plurality() != 0 {
		t.Errorf("tie must break to lowest index, got %d", c.Plurality())
	}
	if c.Bias() != 0 {
		t.Errorf("tied config must have bias 0, got %d", c.Bias())
	}
}

func TestTopTwo(t *testing.T) {
	cases := []struct {
		c             Config
		first, second int64
	}{
		{FromCounts(9), 9, 0},
		{FromCounts(1, 9), 9, 1},
		{FromCounts(3, 3, 3), 3, 3},
		{FromCounts(0, 7, 2, 7), 7, 7},
	}
	for _, tc := range cases {
		f, s := tc.c.TopTwo()
		if f != tc.first || s != tc.second {
			t.Errorf("TopTwo(%v) = (%d,%d), want (%d,%d)", []int64(tc.c), f, s, tc.first, tc.second)
		}
	}
}

func TestBiasOf(t *testing.T) {
	c := FromCounts(10, 6, 8)
	if got := c.BiasOf(0); got != 2 {
		t.Errorf("BiasOf(0) = %d, want 2", got)
	}
	if got := c.BiasOf(1); got != -4 {
		t.Errorf("BiasOf(1) = %d, want -4", got)
	}
	if got := c.BiasOf(2); got != -2 {
		t.Errorf("BiasOf(2) = %d, want -2", got)
	}
	single := FromCounts(5)
	if got := single.BiasOf(0); got != 5 {
		t.Errorf("BiasOf on k=1 = %d, want 5", got)
	}
}

func TestMonochromatic(t *testing.T) {
	if !FromCounts(0, 10, 0).IsMonochromatic() {
		t.Error("(0,10,0) should be monochromatic")
	}
	if FromCounts(9, 1).IsMonochromatic() {
		t.Error("(9,1) should not be monochromatic")
	}
	if FromCounts(0, 0).IsMonochromatic() {
		t.Error("empty config should not be monochromatic")
	}
}

func TestValidate(t *testing.T) {
	if err := FromCounts(1, 2, 3).Validate(6); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := FromCounts(1, 2, 3).Validate(7); err == nil {
		t.Error("wrong total accepted")
	}
	bad := Config{1, -1}
	if err := bad.Validate(-1); err == nil {
		t.Error("negative count accepted")
	}
	if err := FromCounts(1, 2, 3).Validate(-1); err != nil {
		t.Errorf("total check not skipped: %v", err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	c := FromCounts(1, 2, 3)
	d := c.Clone()
	if !c.Equal(d) {
		t.Error("clone not equal")
	}
	d[0] = 99
	if c.Equal(d) {
		t.Error("mutating clone changed original comparison")
	}
	if c[0] != 1 {
		t.Error("clone aliases original")
	}
	if c.Equal(FromCounts(1, 2)) {
		t.Error("different k compared equal")
	}
}

func TestSorted(t *testing.T) {
	c := FromCounts(2, 9, 5)
	s := c.Sorted()
	if s[0] != 9 || s[1] != 5 || s[2] != 2 {
		t.Errorf("Sorted = %v", s)
	}
	if c[0] != 2 {
		t.Error("Sorted mutated receiver")
	}
}

func TestMonochromaticDistance(t *testing.T) {
	// md of a monochromatic config is 1.
	if md := FromCounts(0, 10).MonochromaticDistance(); math.Abs(md-1) > 1e-12 {
		t.Errorf("monochromatic md = %v", md)
	}
	// md of a perfectly balanced config is k.
	if md := FromCounts(5, 5, 5, 5).MonochromaticDistance(); math.Abs(md-4) > 1e-12 {
		t.Errorf("balanced md = %v, want 4", md)
	}
	if md := (Config{0, 0}).MonochromaticDistance(); md != 0 {
		t.Errorf("zero config md = %v", md)
	}
}

func TestSumSquaresAndFractions(t *testing.T) {
	c := FromCounts(3, 4)
	if ss := c.SumSquares(); ss != 25 {
		t.Errorf("SumSquares = %v", ss)
	}
	fr := c.Fractions()
	if math.Abs(fr[0]-3.0/7) > 1e-12 || math.Abs(fr[1]-4.0/7) > 1e-12 {
		t.Errorf("Fractions = %v", fr)
	}
	z := Config{0, 0}
	fr = z.Fractions()
	if fr[0] != 0 || fr[1] != 0 {
		t.Errorf("zero Fractions = %v", fr)
	}
}

func TestAgentsRoundTrip(t *testing.T) {
	c := FromCounts(2, 0, 3)
	agents := c.ToAgents(nil)
	if len(agents) != 5 {
		t.Fatalf("len(agents) = %d", len(agents))
	}
	back := FromAgents(agents, 3)
	if !c.Equal(back) {
		t.Errorf("round trip: %v -> %v", []int64(c), []int64(back))
	}
	// Reuse path.
	buf := make([]Color, 10)
	agents2 := c.ToAgents(buf)
	if len(agents2) != 5 {
		t.Fatalf("reused len = %d", len(agents2))
	}
}

func TestTally(t *testing.T) {
	agents := []Color{0, 2, 2, 1, 2}
	c := New(3)
	c[0] = 99 // must be zeroed
	Tally(agents, c)
	if !c.Equal(FromCounts(1, 1, 3)) {
		t.Errorf("Tally = %v", []int64(c))
	}
}

func TestFromAgentsPanicsOnBadColor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromAgents([]Color{0, 5}, 3)
}

func TestBiasedGenerator(t *testing.T) {
	c := Biased(1000, 7, 100)
	if err := c.Validate(1000); err != nil {
		t.Fatal(err)
	}
	if c.Plurality() != 0 {
		t.Errorf("plurality = %d", c.Plurality())
	}
	if c.Bias() < 100 {
		t.Errorf("bias = %d, want >= 100", c.Bias())
	}
	// Bias can exceed s only by the remainder spread (at most 1 here).
	if c.Bias() > 101 {
		t.Errorf("bias = %d, want <= 101", c.Bias())
	}
}

func TestBiasedProperty(t *testing.T) {
	f := func(nRaw uint16, kRaw, sRaw uint8) bool {
		n := int64(nRaw) + 1
		k := int(kRaw%20) + 1
		s := int64(sRaw) % (n + 1)
		c := Biased(n, k, s)
		return c.Validate(n) == nil && c.Bias() >= s-1 && c.Plurality() == 0 || k == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBalanced(t *testing.T) {
	c := Balanced(10, 3)
	if err := c.Validate(10); err != nil {
		t.Fatal(err)
	}
	if c.Bias() > 1 {
		t.Errorf("balanced bias = %d", c.Bias())
	}
}

func TestTheorem2Generator(t *testing.T) {
	n, k := int64(100000), 10
	c := Theorem2(n, k, 0.3)
	if err := c.Validate(n); err != nil {
		t.Fatal(err)
	}
	perColor := float64(n) / float64(k)
	maxAllowed := int64(perColor + math.Pow(perColor, 0.7) + 1)
	for j, v := range c {
		if v > maxAllowed {
			t.Errorf("color %d count %d exceeds Theorem-2 cap %d", j, v, maxAllowed)
		}
	}
	if c.Plurality() != 0 || c.Bias() == 0 {
		t.Errorf("Theorem2 config should lead with color 0: %v", c)
	}
}

func TestTheorem2Panics(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v did not panic", eps)
				}
			}()
			Theorem2(100, 4, eps)
		}()
	}
}

func TestLemma10Generator(t *testing.T) {
	n, k := int64(10000), 16
	s := int64(math.Sqrt(float64(k)*float64(n)) / 6)
	c := Lemma10(n, k, s)
	if err := c.Validate(n); err != nil {
		t.Fatal(err)
	}
	if c.Bias() < s {
		t.Errorf("bias %d < s %d", c.Bias(), s)
	}
}

func TestLemma10PanicsWhenBiasTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for s > x")
		}
	}()
	Lemma10(100, 10, 50) // x = 5 < s
}

func TestTwoBlock(t *testing.T) {
	c := TwoBlock(10000, 8, 200, 0.9)
	if err := c.Validate(10000); err != nil {
		t.Fatal(err)
	}
	if c[0]+c[1] < 9000 {
		t.Errorf("leading blocks hold %d, want >= 9000", c[0]+c[1])
	}
	if c[0]-c[1] < 199 || c[0]-c[1] > 201 {
		t.Errorf("lead gap = %d, want ~200", c[0]-c[1])
	}
	c2 := TwoBlock(1000, 2, 10, 0.5)
	if err := c2.Validate(1000); err != nil {
		t.Fatal(err)
	}
}

func TestZipf(t *testing.T) {
	r := rng.New(42)
	c := Zipf(100000, 20, 1.0, r)
	if err := c.Validate(100000); err != nil {
		t.Fatal(err)
	}
	if c.Plurality() != 0 {
		t.Errorf("Zipf plurality = %d", c.Plurality())
	}
	// Counts should be non-increasing up to rounding noise.
	for j := 1; j < 20; j++ {
		if c[j] > c[j-1]+10 {
			t.Errorf("Zipf counts not decreasing at %d: %d > %d", j, c[j], c[j-1])
		}
	}
}

func TestRandom(t *testing.T) {
	r := rng.New(7)
	c := Random(60000, 6, r)
	if err := c.Validate(60000); err != nil {
		t.Fatal(err)
	}
	for j, v := range c {
		if math.Abs(float64(v)-10000) > 500 {
			t.Errorf("Random color %d count %d far from 10000", j, v)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	r := rng.New(1)
	for name, f := range map[string]func(){
		"NewK0":        func() { New(0) },
		"FromNeg":      func() { FromCounts(1, -1) },
		"BiasedK0":     func() { Biased(10, 0, 0) },
		"BiasedNegS":   func() { Biased(10, 2, -1) },
		"BiasedBigS":   func() { Biased(10, 2, 11) },
		"TwoBlockK1":   func() { TwoBlock(10, 1, 0, 0.5) },
		"TwoBlockFrac": func() { TwoBlock(10, 2, 0, 0) },
		"ZipfK0":       func() { Zipf(10, 0, 1, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStringer(t *testing.T) {
	s := FromCounts(5, 3).String()
	if s == "" {
		t.Error("empty String()")
	}
}
