package colorcfg

import "testing"

// FuzzBiased checks the Biased generator's contract over arbitrary inputs.
func FuzzBiased(f *testing.F) {
	f.Add(int64(100), 4, int64(10))
	f.Add(int64(1), 1, int64(0))
	f.Add(int64(1000), 7, int64(999))
	f.Fuzz(func(t *testing.T, n int64, k int, s int64) {
		if n <= 0 || n > 1_000_000 || k <= 0 || k > 1024 || s < 0 || s > n {
			return
		}
		c := Biased(n, k, s)
		if err := c.Validate(n); err != nil {
			t.Fatal(err)
		}
		if k > 1 && c.Plurality() != 0 {
			t.Fatalf("plurality %d, want 0", c.Plurality())
		}
		if c.Bias() < s-1 {
			t.Fatalf("bias %d below requested %d", c.Bias(), s)
		}
	})
}

// FuzzAgentsRoundTrip checks ToAgents/FromAgents are inverse.
func FuzzAgentsRoundTrip(f *testing.F) {
	f.Add([]byte{3, 0, 5})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 32 {
			return
		}
		c := New(len(raw))
		var n int64
		for i, b := range raw {
			c[i] = int64(b)
			n += int64(b)
		}
		if n == 0 {
			return
		}
		back := FromAgents(c.ToAgents(nil), len(raw))
		if !c.Equal(back) {
			t.Fatalf("round trip %v -> %v", []int64(c), []int64(back))
		}
	})
}
