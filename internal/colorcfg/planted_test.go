package colorcfg

import (
	"testing"
	"testing/quick"
)

func TestPlantedLeader(t *testing.T) {
	c := PlantedLeader(1000, 5, 600)
	if err := c.Validate(1000); err != nil {
		t.Fatal(err)
	}
	if c[0] != 600 {
		t.Fatalf("leader = %d, want 600", c[0])
	}
	for j := 1; j < 5; j++ {
		if c[j] != 100 {
			t.Fatalf("follower %d = %d, want 100", j, c[j])
		}
	}
}

func TestPlantedLeaderRemainder(t *testing.T) {
	c := PlantedLeader(10, 4, 3)
	if err := c.Validate(10); err != nil {
		t.Fatal(err)
	}
	if c[0] != 3 {
		t.Fatalf("leader = %d", c[0])
	}
	// Rest = 7 over 3 colors: 3, 2, 2.
	if c[1] != 3 || c[2] != 2 || c[3] != 2 {
		t.Fatalf("followers = %v", []int64(c)[1:])
	}
}

func TestPlantedLeaderProperty(t *testing.T) {
	f := func(nRaw uint16, kRaw, c1Raw uint8) bool {
		n := int64(nRaw) + 2
		k := int(kRaw%10) + 2
		c1 := int64(c1Raw) % (n + 1)
		c := PlantedLeader(n, k, c1)
		if c.Validate(n) != nil || c[0] != c1 {
			return false
		}
		// Followers within 1 of each other.
		var lo, hi int64 = int64(^uint64(0) >> 1), -1
		for j := 1; j < k; j++ {
			if c[j] < lo {
				lo = c[j]
			}
			if c[j] > hi {
				hi = c[j]
			}
		}
		return hi-lo <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPlantedLeaderPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"k1":    func() { PlantedLeader(10, 1, 5) },
		"negC1": func() { PlantedLeader(10, 3, -1) },
		"bigC1": func() { PlantedLeader(10, 3, 11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
