// Package colorcfg defines the k-color configuration type used throughout
// the plurality-consensus simulator, together with the standard workload
// generators from the paper (biased, balanced, Theorem-2 and Lemma-10
// shapes, Zipf-skewed, ...).
//
// A configuration c = (c_1, ..., c_k) records how many of the n agents
// currently support each color; Σ c_j = n. Following the paper, the bias
// s(c) is the gap between the largest and the second-largest count, and a
// configuration is monochromatic when a single color holds all n agents.
package colorcfg

import (
	"fmt"
	"math"
	"sort"

	"plurality/internal/rng"
)

// Color identifies one of the k opinions. Colors are dense integers in
// [0, k); the semantics of a color are external to the simulator.
type Color = int32

// Config is a k-color configuration: Config[j] is the number of agents
// currently supporting color j. The invariant Σ Config[j] = n is maintained
// by the engines; Validate checks it.
type Config []int64

// New returns an all-zero configuration with k colors.
func New(k int) Config {
	if k <= 0 {
		panic("colorcfg: k must be positive")
	}
	return make(Config, k)
}

// FromCounts returns a configuration with the given explicit counts.
// It panics if any count is negative.
func FromCounts(counts ...int64) Config {
	c := make(Config, len(counts))
	for i, v := range counts {
		if v < 0 {
			panic(fmt.Sprintf("colorcfg: negative count %d for color %d", v, i))
		}
		c[i] = v
	}
	return c
}

// K returns the number of colors (including colors with zero support).
func (c Config) K() int { return len(c) }

// N returns the total number of agents Σ c_j.
func (c Config) N() int64 {
	var n int64
	for _, v := range c {
		n += v
	}
	return n
}

// Validate returns an error if any count is negative or the total does not
// equal want (pass want < 0 to skip the total check).
func (c Config) Validate(want int64) error {
	var n int64
	for j, v := range c {
		if v < 0 {
			return fmt.Errorf("colorcfg: color %d has negative count %d", j, v)
		}
		n += v
	}
	if want >= 0 && n != want {
		return fmt.Errorf("colorcfg: total %d, want %d", n, want)
	}
	return nil
}

// Clone returns a deep copy.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Equal reports whether two configurations have identical counts.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Plurality returns the color with the largest count. Ties are broken in
// favor of the smallest color index (deterministic).
func (c Config) Plurality() Color {
	best := 0
	for j := 1; j < len(c); j++ {
		if c[j] > c[best] {
			best = j
		}
	}
	return Color(best)
}

// TopTwo returns the largest and second-largest counts (which may belong to
// equal-count colors). For k = 1 the second value is 0.
func (c Config) TopTwo() (first, second int64) {
	for _, v := range c {
		if v > first {
			first, second = v, first
		} else if v > second {
			second = v
		}
	}
	return first, second
}

// Bias returns s(c) = c_(1) - c_(2), the additive gap between the plurality
// count and the runner-up count. A monochromatic configuration with k > 1
// has bias n.
func (c Config) Bias() int64 {
	first, second := c.TopTwo()
	return first - second
}

// BiasOf returns c_j - max_{h != j} c_h: how far color j leads (negative if
// it trails) every other color.
func (c Config) BiasOf(j Color) int64 {
	var rival int64 = math.MinInt64
	for h, v := range c {
		if Color(h) == j {
			continue
		}
		if v > rival {
			rival = v
		}
	}
	if rival == math.MinInt64 { // k == 1
		return c[j]
	}
	return c[j] - rival
}

// IsMonochromatic reports whether a single color holds every agent.
// The all-zero configuration (n = 0) is not considered monochromatic.
func (c Config) IsMonochromatic() bool {
	seen := false
	for _, v := range c {
		if v == 0 {
			continue
		}
		if seen {
			return false
		}
		seen = true
	}
	return seen
}

// Support returns the number of colors with at least one supporter.
func (c Config) Support() int {
	s := 0
	for _, v := range c {
		if v > 0 {
			s++
		}
	}
	return s
}

// MinorityMass returns n - c_m: the number of agents not supporting the
// plurality color. This is the quantity Lemma 4 shows decays geometrically.
func (c Config) MinorityMass() int64 {
	first, _ := c.TopTwo()
	return c.N() - first
}

// Sorted returns the counts in non-increasing order (the paper's convention
// c_1 >= c_2 >= ... >= c_k). The receiver is not modified.
func (c Config) Sorted() []int64 {
	out := make([]int64, len(c))
	copy(out, c)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// MonochromaticDistance returns md(c) = Σ_j (c_j / c_max)², the quantity
// governing the convergence time of the undecided-state dynamics in the
// SODA'15 follow-up discussed in the related-work section. md(c) ∈ [1, k].
func (c Config) MonochromaticDistance() float64 {
	first, _ := c.TopTwo()
	if first == 0 {
		return 0
	}
	fm := float64(first)
	md := 0.0
	for _, v := range c {
		r := float64(v) / fm
		md += r * r
	}
	return md
}

// SumSquares returns Σ c_j², the quantity appearing in the Lemma 1 drift.
func (c Config) SumSquares() float64 {
	s := 0.0
	for _, v := range c {
		fv := float64(v)
		s += fv * fv
	}
	return s
}

// Fractions returns c_j / n for every color. n must be positive.
func (c Config) Fractions() []float64 {
	n := float64(c.N())
	out := make([]float64, len(c))
	if n == 0 {
		return out
	}
	for j, v := range c {
		out[j] = float64(v) / n
	}
	return out
}

// String renders the configuration compactly, listing counts in color order.
func (c Config) String() string {
	return fmt.Sprintf("Config(n=%d,k=%d,bias=%d,top=%d)", c.N(), c.K(), c.Bias(), c.Plurality())
}

// ToAgents expands the configuration into an explicit agent-color array of
// length n, with agents of each color laid out contiguously in color order.
// If dst is non-nil and large enough it is reused. Engines shuffle agent
// order where it matters (it does not on the clique: the dynamics are
// anonymous).
func (c Config) ToAgents(dst []Color) []Color {
	n := c.N()
	if int64(cap(dst)) < n {
		dst = make([]Color, n)
	}
	dst = dst[:n]
	i := 0
	for j, v := range c {
		for x := int64(0); x < v; x++ {
			dst[i] = Color(j)
			i++
		}
	}
	return dst
}

// FromAgents tallies an agent-color array into a configuration with k
// colors. It panics if an agent holds a color outside [0, k).
func FromAgents(agents []Color, k int) Config {
	c := New(k)
	for _, col := range agents {
		if col < 0 || int(col) >= k {
			panic(fmt.Sprintf("colorcfg: agent color %d outside [0,%d)", col, k))
		}
		c[col]++
	}
	return c
}

// Tally recounts agents into an existing configuration (zeroing it first),
// avoiding allocation in per-round loops.
func Tally(agents []Color, c Config) {
	for j := range c {
		c[j] = 0
	}
	for _, col := range agents {
		c[col]++
	}
}

// ----- Workload generators -----

// Biased returns the canonical biased configuration used by the upper-bound
// experiments: the remaining n - s agents are split as evenly as possible
// across all k colors, and color 0 receives s additional agents. The
// resulting bias is at least s (slightly more when n - s is not divisible
// by k, since leftover agents go to the lowest color indices).
func Biased(n int64, k int, s int64) Config {
	if k <= 0 {
		panic("colorcfg: k must be positive")
	}
	if s < 0 || s > n {
		panic(fmt.Sprintf("colorcfg: bias %d outside [0, n=%d]", s, n))
	}
	c := New(k)
	base := (n - s) / int64(k)
	rem := (n - s) % int64(k)
	for j := 0; j < k; j++ {
		c[j] = base
		if int64(j) < rem {
			c[j]++
		}
	}
	c[0] += s
	return c
}

// Balanced returns the near-uniform configuration c_j = n/k (±1 for
// remainders), the worst case driving the Theorem 2 and Theorem 4 lower
// bounds.
func Balanced(n int64, k int) Config {
	return Biased(n, k, 0)
}

// Theorem2 returns the lower-bound configuration of Theorem 2: every color
// has n/k agents except color 0, which holds an extra (n/k)^(1-eps)
// imbalance (taken from the last color). Requires 0 < eps < 1.
func Theorem2(n int64, k int, eps float64) Config {
	if eps <= 0 || eps >= 1 {
		panic("colorcfg: Theorem2 requires 0 < eps < 1")
	}
	c := Balanced(n, k)
	perColor := float64(n) / float64(k)
	imb := int64(math.Pow(perColor, 1-eps))
	if imb >= c[len(c)-1] {
		imb = c[len(c)-1] - 1
	}
	if imb < 0 {
		imb = 0
	}
	c[0] += imb
	c[len(c)-1] -= imb
	return c
}

// Lemma10 returns the near-tight-bias configuration of Lemma 10:
// x = (n - s)/k agents on every color, plus s extra agents on color 0.
// The lemma shows that for s <= sqrt(kn)/6 the bias decreases in one round
// with constant probability. (Shape-wise this equals Biased; the separate
// constructor documents intent and applies the lemma's s <= x guard.)
func Lemma10(n int64, k int, s int64) Config {
	x := (n - s) / int64(k)
	if s > x {
		panic(fmt.Sprintf("colorcfg: Lemma10 requires s <= x = (n-s)/k; s=%d x=%d", s, x))
	}
	return Biased(n, k, s)
}

// PlantedLeader returns a configuration in which color 0 holds exactly c1
// agents and the remaining n - c1 agents are split as evenly as possible
// over the other k-1 colors. It is the Corollary 2/3 workload shape
// (c1 >= n/λ with the rest thin). Requires 0 <= c1 <= n and k >= 2.
func PlantedLeader(n int64, k int, c1 int64) Config {
	if k < 2 {
		panic("colorcfg: PlantedLeader requires k >= 2")
	}
	if c1 < 0 || c1 > n {
		panic(fmt.Sprintf("colorcfg: PlantedLeader c1=%d outside [0, n=%d]", c1, n))
	}
	c := New(k)
	c[0] = c1
	rest := n - c1
	per := rest / int64(k-1)
	rem := rest % int64(k-1)
	for j := 1; j < k; j++ {
		c[j] = per
		if int64(j-1) < rem {
			c[j]++
		}
	}
	return c
}

// TwoBlock returns a configuration in which colors 0 and 1 split nearly all
// agents (color 0 ahead by s) and the remaining k-2 colors share the rest
// thinly. frac is the fraction of agents in the two leading blocks.
func TwoBlock(n int64, k int, s int64, frac float64) Config {
	if k < 2 {
		panic("colorcfg: TwoBlock requires k >= 2")
	}
	if frac <= 0 || frac > 1 {
		panic("colorcfg: TwoBlock frac must be in (0, 1]")
	}
	lead := int64(frac * float64(n))
	if lead < s {
		lead = s
	}
	c := New(k)
	c[0] = (lead + s) / 2
	c[1] = lead - c[0]
	rest := n - c[0] - c[1]
	if k == 2 {
		c[0] += rest
		return c
	}
	per := rest / int64(k-2)
	rem := rest % int64(k-2)
	for j := 2; j < k; j++ {
		c[j] = per
		if int64(j-2) < rem {
			c[j]++
		}
	}
	return c
}

// Zipf returns a configuration whose counts follow a Zipf law with the given
// exponent (count of color j proportional to (j+1)^-exponent), randomly
// rounding so that the total is exactly n. The most popular color is color 0.
func Zipf(n int64, k int, exponent float64, r *rng.Rand) Config {
	if k <= 0 {
		panic("colorcfg: k must be positive")
	}
	weights := make([]float64, k)
	total := 0.0
	for j := 0; j < k; j++ {
		weights[j] = math.Pow(float64(j+1), -exponent)
		total += weights[j]
	}
	c := New(k)
	var assigned int64
	for j := 0; j < k; j++ {
		c[j] = int64(float64(n) * weights[j] / total)
		assigned += c[j]
	}
	// Distribute the rounding remainder uniformly at random.
	for assigned < n {
		c[r.Intn(k)]++
		assigned++
	}
	return c
}

// Random returns a uniformly random composition of n agents over k colors
// (each agent independently assigned a uniform color — i.e. a
// Multinomial(n, 1/k) draw realized by per-agent assignment for small n,
// which is what the lower-bound "random start" experiments use).
func Random(n int64, k int, r *rng.Rand) Config {
	c := New(k)
	for i := int64(0); i < n; i++ {
		c[r.Intn(k)]++
	}
	return c
}
