package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestReseed(t *testing.T) {
	a := New(7)
	first := make([]uint64, 64)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Seed(7)
	for i := range first {
		if got := a.Uint64(); got != first[i] {
			t.Fatalf("reseed did not reset state at draw %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(99)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniform(t *testing.T) {
	// Chi-square test over 16 buckets; threshold is the 0.999 quantile of
	// chi2 with 15 dof (~37.7), generous against flakes.
	r := New(42)
	const buckets, draws = 16, 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi-square %v too large; counts %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / 100000
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(11)
	const n, draws = 5, 50000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("Perm first element %d count %d deviates from %v", i, c, expected)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestJumpDisjoint(t *testing.T) {
	// After a jump the stream should not collide with the pre-jump stream
	// over a modest window.
	a := New(77)
	b := a.Clone()
	b.Jump()
	aVals := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		aVals[a.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 4096; i++ {
		if aVals[b.Uint64()] {
			collisions++
		}
	}
	if collisions > 1 {
		t.Fatalf("jumped stream collided %d times with base stream", collisions)
	}
}

func TestCloneProducesSameSequence(t *testing.T) {
	a := New(123)
	a.Uint64()
	b := a.Clone()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("clone diverged at draw %d", i)
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	ss := Streams(2024, 4)
	if len(ss) != 4 {
		t.Fatalf("expected 4 streams, got %d", len(ss))
	}
	seen := make(map[uint64]int)
	for si, s := range ss {
		for i := 0; i < 1000; i++ {
			v := s.Uint64()
			if prev, ok := seen[v]; ok {
				t.Fatalf("streams %d and %d collided on value %x", prev, si, v)
			}
			seen[v] = si
		}
	}
}

func TestNewStreamDiffers(t *testing.T) {
	parent := New(55)
	c1 := parent.NewStream()
	c2 := parent.NewStream()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams matched on %d/1000 draws", same)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(31)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-draws/2) > 4*math.Sqrt(draws/4) {
		t.Fatalf("Bool heavily biased: %d/%d", trues, draws)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
