package rng

import (
	"math"
	"testing"
)

func TestUint32Range(t *testing.T) {
	r := New(21)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		sum += float64(r.Uint32())
	}
	mean := sum / draws
	want := float64(1<<31) - 0.5
	if math.Abs(mean-want)/want > 0.01 {
		t.Fatalf("Uint32 mean %v far from %v", mean, want)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(22)
	for i := 0; i < 100000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned a negative value")
		}
	}
}

func TestInt63nBoundsAndUniform(t *testing.T) {
	r := New(23)
	var counts [7]int
	const draws = 140000
	for i := 0; i < draws; i++ {
		v := r.Int63n(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		counts[v]++
	}
	expected := float64(draws) / 7
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, expected)
		}
	}
}

func TestInt63nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	New(1).Int63n(0)
}

func TestUint64nSmallModuliUnbiased(t *testing.T) {
	// Exercise the Lemire rejection path with a modulus just below a power
	// of two (worst case for naive modulo).
	r := New(24)
	const m = (1 << 3) - 1 // 7
	var counts [m]int
	const draws = 70000
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(m)]++
	}
	expected := float64(draws) / m
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("bucket %d count %d deviates", i, c)
		}
	}
}

// TestUint64BlockMatchesSequential pins the bulk-generation contract:
// Uint64Block is byte-identical to sequential Uint64 calls — same outputs,
// same end state — including the empty block, and composes across calls.
func TestUint64BlockMatchesSequential(t *testing.T) {
	r1, r2 := New(77), New(77)
	for _, size := range []int{0, 1, 7, 256, 1000} {
		block := make([]uint64, size)
		r1.Uint64Block(block)
		for i, v := range block {
			if want := r2.Uint64(); v != want {
				t.Fatalf("size %d: block[%d] = %#x, want %#x", size, i, v, want)
			}
		}
	}
	if r1.Uint64() != r2.Uint64() {
		t.Error("generator state diverged after block generation")
	}
}
