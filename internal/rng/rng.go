// Package rng provides a fast, deterministic pseudo-random number generator
// for the simulation engines.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through splitmix64
// so that any 64-bit seed yields a well-mixed initial state. Every source of
// randomness in this repository flows through an explicit *Rand value — there
// is no global generator — which makes every simulation and experiment
// reproducible from a single seed.
//
// Independent parallel streams are derived either with Jump (which advances
// the state by 2^128 steps, giving non-overlapping subsequences) or with
// NewStream (which derives a child seed via splitmix64). Engines that shard
// agents across workers use one stream per worker.
package rng

import "math/bits"

// Rand is a xoshiro256++ pseudo-random number generator. It is NOT safe for
// concurrent use; derive one Rand per goroutine via Jump or NewStream.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x and returns a well-mixed 64-bit value. It is the
// recommended seeding procedure for the xoshiro family.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed. Different seeds
// yield independent-looking sequences; the same seed always yields the same
// sequence.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a 64-bit seed.
func (r *Rand) Seed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// A state of all zeros is invalid for xoshiro; splitmix64 cannot produce
	// four zero outputs in a row, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next value of the xoshiro256++ sequence.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Uint64Block fills dst with consecutive outputs of the sequence,
// byte-identical to len(dst) sequential Uint64 calls. The state lives in
// locals across the loop so the compiler keeps it in registers instead of
// re-loading the receiver per draw — this is the bulk-generation primitive
// behind the engines' batched sampling paths.
func (r *Rand) Uint64Block(dst []uint64) {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		result := bits.RotateLeft64(s0+s3, 23) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		dst[i] = result
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Int63 returns a non-negative int64 uniform on [0, 2^63).
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift bounded generation with rejection,
// which is exact (unbiased) and avoids the modulo operation on the
// fast path.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's method: multiply a 64-bit random value by n and keep the high
	// word; reject the small biased region of the low word.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// NewStream derives an independent child generator from this one. The child
// is seeded from fresh output of the parent, so distinct calls produce
// distinct streams. Use this to hand one generator to each worker goroutine.
func (r *Rand) NewStream() *Rand {
	return New(r.Uint64())
}

// jumpPoly is the xoshiro256 jump polynomial; Jump advances the state by
// 2^128 steps of the underlying sequence.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls to
// Uint64. It can be used to generate 2^128 non-overlapping subsequences for
// parallel computations: clone the state, Jump the clone, repeat.
func (r *Rand) Jump() {
	var t0, t1, t2, t3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				t0 ^= r.s0
				t1 ^= r.s1
				t2 ^= r.s2
				t3 ^= r.s3
			}
			r.Uint64()
		}
	}
	r.s0, r.s1, r.s2, r.s3 = t0, t1, t2, t3
}

// Clone returns a copy of the generator with identical state. The copy and
// the original produce the same subsequent sequence; typically the copy is
// Jumped immediately to obtain a disjoint stream.
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// Streams returns n independent generators derived from seed using the jump
// construction: stream i has the state of a seed-initialized generator
// advanced by i*2^128 steps. The streams are mutually non-overlapping for any
// realistic draw count.
func Streams(seed uint64, n int) []*Rand {
	out := make([]*Rand, n)
	base := New(seed)
	for i := 0; i < n; i++ {
		out[i] = base.Clone()
		base.Jump()
	}
	return out
}
