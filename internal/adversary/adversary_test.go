package adversary

import (
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

func newEngine(counts ...int64) engine.Engine {
	return engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.FromCounts(counts...))
}

func TestNone(t *testing.T) {
	e := newEngine(60, 40)
	a := None{}
	a.Corrupt(e, rng.New(1))
	if c := e.Config(); c[0] != 60 || c[1] != 40 {
		t.Fatalf("None mutated the configuration: %v", c)
	}
	if a.Budget() != 0 || a.Name() != "none" {
		t.Fatal("bad None metadata")
	}
}

func TestStrongest(t *testing.T) {
	e := newEngine(60, 40, 10)
	a := Strongest{F: 5}
	a.Corrupt(e, rng.New(1))
	c := e.Config()
	// Moves 5 from plurality (0) to strongest rival (1).
	if c[0] != 55 || c[1] != 45 || c[2] != 10 {
		t.Fatalf("Strongest moved wrong agents: %v", c)
	}
	if a.Budget() != 5 {
		t.Fatal("bad budget")
	}
}

func TestStrongestBudgetCap(t *testing.T) {
	e := newEngine(3, 2)
	Strongest{F: 100}.Corrupt(e, rng.New(1))
	c := e.Config()
	if c[0] != 0 || c[1] != 5 {
		t.Fatalf("over-budget corruption: %v", c)
	}
	if err := c.Validate(5); err != nil {
		t.Fatal(err)
	}
}

func TestStrongestSingleColorNoop(t *testing.T) {
	e := newEngine(10)
	Strongest{F: 5}.Corrupt(e, rng.New(1))
	if c := e.Config(); c[0] != 10 {
		t.Fatalf("k=1 corruption changed config: %v", c)
	}
}

func TestSpread(t *testing.T) {
	e := newEngine(90, 5, 5)
	Spread{F: 10}.Corrupt(e, rng.New(1))
	c := e.Config()
	if c[0] != 80 || c[1] != 10 || c[2] != 10 {
		t.Fatalf("Spread: %v", c)
	}
	if err := c.Validate(100); err != nil {
		t.Fatal(err)
	}
}

func TestSpreadUnevenRemainder(t *testing.T) {
	e := newEngine(90, 4, 3, 3)
	Spread{F: 7}.Corrupt(e, rng.New(1))
	c := e.Config()
	if c[0] != 83 {
		t.Fatalf("Spread moved %d, want 7: %v", 90-c[0], c)
	}
	if err := c.Validate(100); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConservesTotal(t *testing.T) {
	r := rng.New(2)
	e := newEngine(50, 30, 20)
	Random{F: 15}.Corrupt(e, r)
	if err := e.Config().Validate(100); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSingleColorTerminates(t *testing.T) {
	r := rng.New(3)
	e := newEngine(100)
	Random{F: 10}.Corrupt(e, r) // must not hang
	if c := e.Config(); c[0] != 100 {
		t.Fatalf("k=1 random corruption changed config: %v", c)
	}
}

func TestBoost(t *testing.T) {
	e := newEngine(60, 40)
	Boost{F: 10}.Corrupt(e, rng.New(4))
	c := e.Config()
	if c[0] != 70 || c[1] != 30 {
		t.Fatalf("Boost: %v", c)
	}
}

func TestNames(t *testing.T) {
	for _, a := range []Adversary{Strongest{F: 1}, Spread{F: 2}, Random{F: 3}, Boost{F: 4}} {
		if a.Name() == "" || a.Budget() == 0 {
			t.Errorf("%T: bad metadata", a)
		}
	}
}

// TestStrongestDelaysButDoesNotPreventConsensus reproduces the Corollary 4
// qualitative claim end-to-end at small scale: with F well below s/λ the
// process still reaches near-plurality consensus.
func TestStrongestDelaysButDoesNotPreventConsensus(t *testing.T) {
	r := rng.New(5)
	n := int64(50000)
	init := colorcfg.Biased(n, 4, 10000)
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	a := Strongest{F: 50}
	reached := false
	for round := 0; round < 2000; round++ {
		e.Step(r)
		a.Corrupt(e, r)
		first, _ := e.Config().TopTwo()
		if n-first <= 10*a.F {
			reached = true
			break
		}
	}
	if !reached {
		t.Fatalf("never reached M-plurality consensus; final %v", e.Config())
	}
	if e.Config().Plurality() != 0 {
		t.Fatalf("adversary flipped the winner: %v", e.Config())
	}
}
