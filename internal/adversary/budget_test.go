package adversary

import (
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

// budgetTracker wraps an engine and records how many agents each Corrupt
// call actually moved, so tests can pin the per-round budget contract:
// an adversary may move at most Budget() agents, and the greedy
// strategies move exactly Budget() whenever enough mass is available.
type budgetTracker struct {
	engine.Engine
	moved int64
}

func (b *budgetTracker) Repaint(from, to colorcfg.Color, m int64) int64 {
	n := b.Engine.Repaint(from, to, m)
	b.moved += n
	return n
}

// TestCorruptionNeverExceedsBudget: every strategy, across many rounds
// and configurations, must stay within its declared per-round budget.
func TestCorruptionNeverExceedsBudget(t *testing.T) {
	r := rng.New(11)
	for _, adv := range []Adversary{
		Strongest{F: 17}, Spread{F: 17}, Random{F: 17}, Boost{F: 17},
	} {
		e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.Biased(1000, 5, 100))
		tr := &budgetTracker{Engine: e}
		for round := 0; round < 50; round++ {
			tr.moved = 0
			e.Step(r)
			adv.Corrupt(tr, r)
			if tr.moved > adv.Budget() {
				t.Fatalf("%s: round %d moved %d > budget %d", adv.Name(), round, tr.moved, adv.Budget())
			}
			if err := e.Config().Validate(1000); err != nil {
				t.Fatalf("%s: round %d: %v", adv.Name(), round, err)
			}
		}
		e.Close()
	}
}

// TestGreedyStrategiesSpendExactBudget: with ample mass on the source
// colors, Strongest, Spread and Boost must spend exactly F — an
// adversary that silently under-spends would make the Corollary 4
// experiments report tolerance the paper does not claim.
func TestGreedyStrategiesSpendExactBudget(t *testing.T) {
	for _, adv := range []Adversary{Strongest{F: 23}, Spread{F: 23}, Boost{F: 23}} {
		e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.FromCounts(400, 300, 200, 100))
		tr := &budgetTracker{Engine: e}
		adv.Corrupt(tr, rng.New(1))
		if tr.moved != 23 {
			t.Errorf("%s moved %d agents, want exactly 23", adv.Name(), tr.moved)
		}
		e.Close()
	}
}

// TestBudgetExactlyDrainsSource: when F exactly equals the plurality
// mass, Strongest must move all of it and nothing else — the capped
// boundary of the Repaint contract.
func TestBudgetExactlyDrainsSource(t *testing.T) {
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.FromCounts(50, 30, 20))
	defer e.Close()
	tr := &budgetTracker{Engine: e}
	Strongest{F: 50}.Corrupt(tr, rng.New(1))
	if tr.moved != 50 {
		t.Fatalf("moved %d, want the full 50", tr.moved)
	}
	c := e.Config()
	if c[0] != 0 || c[1] != 80 || c[2] != 20 {
		t.Fatalf("post-corruption config %v", c)
	}
}

// TestToleratedBudgetStillConverges is the Corollary 4 boundary from
// below: with F at the tolerated order (well under s/λ), the process
// must still reach M-plurality consensus on the initial plurality color.
// The complementary boundary from above is TestOverwhelmingBudgetStalls.
func TestToleratedBudgetStillConverges(t *testing.T) {
	r := rng.New(21)
	const n = int64(50_000)
	init := colorcfg.Biased(n, 4, 8000)
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	defer e.Close()
	adv := Strongest{F: 200} // s/λ ≈ 8000/8 = 1000; F well below
	for round := 0; round < 3000; round++ {
		e.Step(r)
		adv.Corrupt(e, r)
		first, _ := e.Config().TopTwo()
		if n-first <= 10*adv.F {
			if e.Config().Plurality() != 0 {
				t.Fatalf("adversary flipped the winner: %v", e.Config())
			}
			return
		}
	}
	t.Fatalf("tolerated budget prevented consensus: %v", e.Config())
}

// TestOverwhelmingBudgetStalls is the boundary from above: an adversary
// whose budget dominates both the drift and the standard deviation of a
// near-balanced configuration keeps the process away from consensus
// indefinitely — the regime Corollary 4 explicitly does not cover
// (F ≫ s/λ). If this stalls stops stalling, the two-phase round order
// (step, then corrupt) has changed.
func TestOverwhelmingBudgetStalls(t *testing.T) {
	r := rng.New(22)
	const n = int64(10_000)
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.Balanced(n, 2))
	defer e.Close()
	adv := Strongest{F: n / 10} // 1000 ≫ sqrt(n) fluctuations near balance
	for round := 0; round < 500; round++ {
		e.Step(r)
		adv.Corrupt(e, r)
		if e.Config().IsMonochromatic() {
			t.Fatalf("round %d: consensus reached despite overwhelming adversary: %v", round, e.Config())
		}
	}
	// The adversary caps the bias: it must still be far from consensus.
	if bias := e.Config().Bias(); bias > n/2 {
		t.Fatalf("bias %d escaped the overwhelming adversary", bias)
	}
}
