package adversary

import (
	"testing"

	"plurality/internal/rng"
)

func TestStrongestZeroBudgetNoop(t *testing.T) {
	e := newEngine(10, 5)
	Strongest{F: 0}.Corrupt(e, rng.New(1))
	if c := e.Config(); c[0] != 10 || c[1] != 5 {
		t.Fatalf("zero-budget corruption changed config: %v", c)
	}
	Spread{F: 0}.Corrupt(e, rng.New(1))
	Boost{F: 0}.Corrupt(e, rng.New(1))
	if c := e.Config(); c[0] != 10 || c[1] != 5 {
		t.Fatalf("zero-budget corruption changed config: %v", c)
	}
}

func TestSpreadSingleColorNoop(t *testing.T) {
	e := newEngine(10)
	Spread{F: 5}.Corrupt(e, rng.New(2))
	if c := e.Config(); c[0] != 10 {
		t.Fatalf("k=1 spread changed config: %v", c)
	}
}

func TestBoostSingleColorNoop(t *testing.T) {
	e := newEngine(10)
	Boost{F: 5}.Corrupt(e, rng.New(3))
	if c := e.Config(); c[0] != 10 {
		t.Fatalf("k=1 boost changed config: %v", c)
	}
}

func TestRandomZeroBudget(t *testing.T) {
	e := newEngine(6, 4)
	Random{F: 0}.Corrupt(e, rng.New(4))
	if c := e.Config(); c[0] != 6 || c[1] != 4 {
		t.Fatalf("zero-budget random changed config: %v", c)
	}
}

func TestRandomWithEmptyColors(t *testing.T) {
	// Colors 1 and 2 are empty; the fallback scan path must still move
	// exactly F agents and terminate.
	r := rng.New(5)
	e := newEngine(100, 0, 0)
	Random{F: 10}.Corrupt(e, r)
	if err := e.Config().Validate(100); err != nil {
		t.Fatal(err)
	}
}

func TestRandomManyRounds(t *testing.T) {
	// Stress the corruption loop across many configurations.
	r := rng.New(6)
	e := newEngine(40, 30, 20, 10)
	for i := 0; i < 200; i++ {
		Random{F: 7}.Corrupt(e, r)
		if err := e.Config().Validate(100); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}
