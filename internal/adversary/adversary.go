// Package adversary implements the F-bounded dynamic adversaries of
// Section 3.1 / Corollary 4: after every round the adversary observes the
// full configuration and recolors up to F agents arbitrarily, trying to
// prevent plurality consensus. Corollary 4 shows 3-majority still reaches
// O(s/λ)-plurality consensus whenever F = o(s/λ).
//
// Adversaries act through the engine's Repaint primitive, so the same
// strategies run against every engine (count-level and agent-level).
package adversary

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

// Adversary corrupts up to a budget of agents between rounds.
type Adversary interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// Budget is the per-round corruption bound F.
	Budget() int64
	// Corrupt recolors up to Budget() agents of e.
	Corrupt(e engine.Engine, r *rng.Rand)
}

// None is the absent adversary (F = 0).
type None struct{}

// Name implements Adversary.
func (None) Name() string { return "none" }

// Budget implements Adversary.
func (None) Budget() int64 { return 0 }

// Corrupt implements Adversary (no-op).
func (None) Corrupt(engine.Engine, *rng.Rand) {}

// Strongest moves F agents per round from the current plurality color to
// the strongest rival — the greedy bias-erasing strategy, which is the
// worst case for the Lemma 3 drift argument.
type Strongest struct {
	F int64
}

// Name implements Adversary.
func (a Strongest) Name() string { return fmt.Sprintf("strongest(F=%d)", a.F) }

// Budget implements Adversary.
func (a Strongest) Budget() int64 { return a.F }

// Corrupt implements Adversary.
func (a Strongest) Corrupt(e engine.Engine, _ *rng.Rand) {
	if a.F <= 0 {
		return
	}
	c := e.Config()
	top := c.Plurality()
	rival := rivalOf(c, top)
	if rival < 0 {
		return // k == 1: nothing to corrupt toward
	}
	e.Repaint(top, rival, a.F)
}

// Spread moves F agents per round from the current plurality color,
// distributing them as evenly as possible over all other colors — it
// suppresses the leader without building up a rival.
type Spread struct {
	F int64
}

// Name implements Adversary.
func (a Spread) Name() string { return fmt.Sprintf("spread(F=%d)", a.F) }

// Budget implements Adversary.
func (a Spread) Budget() int64 { return a.F }

// Corrupt implements Adversary.
func (a Spread) Corrupt(e engine.Engine, _ *rng.Rand) {
	if a.F <= 0 {
		return
	}
	c := e.Config()
	top := c.Plurality()
	k := int64(c.K())
	if k < 2 {
		return
	}
	per := a.F / (k - 1)
	rem := a.F % (k - 1)
	for j := int64(0); j < k; j++ {
		if colorcfg.Color(j) == top {
			continue
		}
		m := per
		if rem > 0 {
			m++
			rem--
		}
		if m > 0 {
			e.Repaint(top, colorcfg.Color(j), m)
		}
	}
}

// Random moves F agents per round between uniformly random color pairs —
// a noise model rather than a worst case.
type Random struct {
	F int64
}

// Name implements Adversary.
func (a Random) Name() string { return fmt.Sprintf("random(F=%d)", a.F) }

// Budget implements Adversary.
func (a Random) Budget() int64 { return a.F }

// Corrupt implements Adversary.
func (a Random) Corrupt(e engine.Engine, r *rng.Rand) {
	k := e.K()
	if k < 2 {
		return
	}
	remaining := a.F
	for remaining > 0 {
		from := colorcfg.Color(r.Intn(k))
		to := colorcfg.Color(r.Intn(k))
		if from == to {
			continue
		}
		moved := e.Repaint(from, to, min64(remaining, 1+remaining/4))
		if moved == 0 {
			// Source color may be empty; try once more with a fresh pair.
			// To guarantee termination, fall back to scanning for any
			// non-empty color.
			c := e.Config()
			found := false
			for j, v := range c {
				if v > 0 && colorcfg.Color(j) != to {
					e.Repaint(colorcfg.Color(j), to, 1)
					remaining--
					found = true
					break
				}
			}
			if !found {
				return
			}
			continue
		}
		remaining -= moved
	}
}

// Boost moves F agents per round from the strongest rival TO the plurality
// color — a "helpful" adversary used as an experimental control.
type Boost struct {
	F int64
}

// Name implements Adversary.
func (a Boost) Name() string { return fmt.Sprintf("boost(F=%d)", a.F) }

// Budget implements Adversary.
func (a Boost) Budget() int64 { return a.F }

// Corrupt implements Adversary.
func (a Boost) Corrupt(e engine.Engine, _ *rng.Rand) {
	if a.F <= 0 {
		return
	}
	c := e.Config()
	top := c.Plurality()
	rival := rivalOf(c, top)
	if rival < 0 {
		return
	}
	e.Repaint(rival, top, a.F)
}

// rivalOf returns the color with the largest count other than top, or -1
// if there is none.
func rivalOf(c colorcfg.Config, top colorcfg.Color) colorcfg.Color {
	rival := colorcfg.Color(-1)
	var best int64 = -1
	for j, v := range c {
		if colorcfg.Color(j) == top {
			continue
		}
		if v > best {
			best = v
			rival = colorcfg.Color(j)
		}
	}
	return rival
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
