package exact

import (
	"math"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

func TestStateEnumeration(t *testing.T) {
	c := New(4, 3, dynamics.ThreeMajority{})
	// C(4+2, 2) = 15 compositions of 4 into 3 parts.
	if c.States() != 15 {
		t.Fatalf("states = %d, want 15", c.States())
	}
	// 3 absorbing states (one per color).
	if c.TransientStates() != 12 {
		t.Fatalf("transient = %d, want 12", c.TransientStates())
	}
	// Index round trip.
	cfg := colorcfg.FromCounts(2, 1, 1)
	i := c.IndexOf(cfg)
	if !c.State(i).Equal(cfg) {
		t.Fatal("IndexOf/State round trip failed")
	}
}

func TestTransitionRowsAreStochastic(t *testing.T) {
	c := New(6, 3, dynamics.ThreeMajority{})
	row := make([]float64, c.States())
	for i := 0; i < c.States(); i++ {
		c.TransitionRow(i, row)
		sum := 0.0
		for _, p := range row {
			if p < 0 || p > 1+1e-12 {
				t.Fatalf("state %d: invalid probability %v", i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("state %d: row sums to %v", i, sum)
		}
	}
}

func TestAbsorbingStatesAreFixed(t *testing.T) {
	c := New(5, 2, dynamics.ThreeMajority{})
	row := make([]float64, c.States())
	mono := c.IndexOf(colorcfg.FromCounts(5, 0))
	c.TransitionRow(mono, row)
	if row[mono] != 1 {
		t.Fatal("monochromatic state must self-loop with probability 1")
	}
}

// TestPollingMartingaleExact is the sharpest validation available: for the
// voter model the absorption probability into color j from configuration
// c is exactly c_j/n.
func TestPollingMartingaleExact(t *testing.T) {
	c := New(12, 2, dynamics.Polling{})
	probs := c.AbsorptionProbs()
	for tpos, i := range c.transient {
		st := c.State(i)
		for j := 0; j < 2; j++ {
			want := float64(st[j]) / 12
			if math.Abs(probs[tpos][j]-want) > 1e-9 {
				t.Fatalf("state %v: P(absorb %d) = %v, want %v",
					st, j, probs[tpos][j], want)
			}
		}
	}
}

func TestPollingMartingaleThreeColors(t *testing.T) {
	c := New(9, 3, dynamics.Polling{})
	probs, _ := c.AbsorptionFrom(colorcfg.FromCounts(5, 3, 1))
	want := []float64{5.0 / 9, 3.0 / 9, 1.0 / 9}
	for j := range want {
		if math.Abs(probs[j]-want[j]) > 1e-9 {
			t.Fatalf("P(absorb %d) = %v, want %v", j, probs[j], want[j])
		}
	}
}

func TestAbsorptionProbsSumToOne(t *testing.T) {
	for _, model := range []dynamics.ProbModel{
		dynamics.ThreeMajority{}, dynamics.Median{}, dynamics.Polling{},
	} {
		c := New(8, 3, model)
		probs := c.AbsorptionProbs()
		for tpos := range probs {
			sum := 0.0
			for _, p := range probs[tpos] {
				sum += p
			}
			if math.Abs(sum-1) > 1e-8 {
				t.Fatalf("%T state %v: absorption probs sum to %v",
					model, c.State(c.transient[tpos]), sum)
			}
		}
	}
}

func TestThreeMajorityBeatsPollingOnBias(t *testing.T) {
	// From a 2:1 biased binary configuration the 3-majority absorption
	// probability into the majority must exceed polling's martingale
	// value (that is the whole point of sampling three).
	n := int64(12)
	start := colorcfg.FromCounts(8, 4)
	maj := New(n, 2, dynamics.ThreeMajority{})
	pMaj, _ := maj.AbsorptionFrom(start)
	if pMaj[0] <= 8.0/12+0.05 {
		t.Fatalf("3-majority majority-win %v barely above martingale 2/3", pMaj[0])
	}
}

func TestExpectedTimesPositiveAndMonotone(t *testing.T) {
	c := New(10, 2, dynamics.ThreeMajority{})
	times := c.ExpectedAbsorptionTimes()
	for tpos, tau := range times {
		if tau <= 0 {
			t.Fatalf("state %v: non-positive expected time %v",
				c.State(c.transient[tpos]), tau)
		}
	}
	// The balanced state takes longest among binary states.
	balanced := c.TransientPos(c.IndexOf(colorcfg.FromCounts(5, 5)))
	nearMono := c.TransientPos(c.IndexOf(colorcfg.FromCounts(9, 1)))
	if times[balanced] <= times[nearMono] {
		t.Fatalf("balanced time %v should exceed near-mono time %v",
			times[balanced], times[nearMono])
	}
}

// TestSimulatorMatchesExactChain closes the loop: Monte-Carlo absorption
// frequencies from the engine must match the exact linear-algebra answer.
func TestSimulatorMatchesExactChain(t *testing.T) {
	n := int64(15)
	start := colorcfg.FromCounts(7, 5, 3)
	chain := New(n, 3, dynamics.ThreeMajority{})
	want, wantTime := chain.AbsorptionFrom(start)

	const reps = 20000
	r := rng.New(42)
	wins := make([]int, 3)
	totalRounds := 0.0
	for rep := 0; rep < reps; rep++ {
		e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, start)
		rounds := 0
		for !e.Config().IsMonochromatic() {
			e.Step(r)
			rounds++
		}
		wins[e.Config().Plurality()]++
		totalRounds += float64(rounds) / reps
	}
	for j := range want {
		got := float64(wins[j]) / reps
		se := math.Sqrt(want[j]*(1-want[j])/reps) + 1e-9
		if math.Abs(got-want[j]) > 5*se {
			t.Errorf("color %d: Monte-Carlo %v vs exact %v (se %v)", j, got, want[j], se)
		}
	}
	// Expected time: sd of the absorption time is a few rounds here; the
	// mean over 20000 reps is tight.
	if math.Abs(totalRounds-wantTime) > 0.2 {
		t.Errorf("Monte-Carlo mean time %v vs exact %v", totalRounds, wantTime)
	}
}

func TestMedianChainFavorsMedianColor(t *testing.T) {
	// (4, 5, 3): color 1 is the plurality AND holds the median; median
	// dynamics should absorb into it with the largest probability.
	chain := New(12, 3, dynamics.Median{})
	probs, _ := chain.AbsorptionFrom(colorcfg.FromCounts(4, 5, 3))
	if !(probs[1] > probs[0] && probs[1] > probs[2]) {
		t.Fatalf("median absorption probs %v should favor color 1", probs)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"badDims":   func() { New(0, 2, dynamics.Polling{}) },
		"tooBig":    func() { New(1000, 5, dynamics.Polling{}) },
		"wrongKDim": func() { New(4, 2, dynamics.Polling{}).IndexOf(colorcfg.FromCounts(2, 1, 1)) },
		"wrongNDim": func() { New(4, 2, dynamics.Polling{}).IndexOf(colorcfg.FromCounts(3, 3)) },
		"rowLen":    func() { New(4, 2, dynamics.Polling{}).TransitionRow(0, make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
