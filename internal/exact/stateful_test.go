package exact

import (
	"math"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
)

// TestStatefulMatchesAnonymous: ThreeMajorityKeepOwn ignores the own color
// (every transition row is the Lemma 1 adoption vector), so the stateful
// chain's convolution must reproduce the anonymous chain's multinomial law
// row for row — an exact identity, not a statistical one.
func TestStatefulMatchesAnonymous(t *testing.T) {
	const n, k = 6, 3
	anon := New(n, k, dynamics.ThreeMajority{})
	stf := NewStateful(n, k, dynamics.ThreeMajorityKeepOwn{})
	if anon.States() != stf.States() {
		t.Fatalf("state count mismatch: %d vs %d", anon.States(), stf.States())
	}
	rowA := make([]float64, anon.States())
	rowS := make([]float64, stf.States())
	for i := 0; i < anon.States(); i++ {
		anon.TransitionRow(i, rowA)
		stf.TransitionRow(i, rowS)
		for j := range rowA {
			if math.Abs(rowA[j]-rowS[j]) > 1e-12 {
				t.Fatalf("row %d col %d: anonymous %g vs stateful %g (state %v)",
					i, j, rowA[j], rowS[j], anon.State(i))
			}
		}
	}
}

// TestStatefulRowsSumToOne: the convolution must produce a stochastic
// matrix for a genuinely stateful rule.
func TestStatefulRowsSumToOne(t *testing.T) {
	c := NewStateful(7, 3, dynamics.TwoChoicesKeepOwn{})
	row := make([]float64, c.States())
	for i := 0; i < c.States(); i++ {
		c.TransitionRow(i, row)
		sum := 0.0
		for _, p := range row {
			if p < 0 {
				t.Fatalf("state %d: negative probability %g", i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("state %d (%v): row sums to %.15f", i, c.State(i), sum)
		}
	}
}

// TestStatefulKeepOwnStaysPut: hand-check the (1,1,1) diagonal entry of
// the 2-choices-keep-own chain at n=3. Each agent independently keeps its
// color with probability 7/9 and switches to each other color with (1/3)²
// = 1/9. The configuration (1,1,1) is preserved exactly when the joint
// move is a color permutation: identity (7/9)³, three transpositions at
// (1/9)²(7/9) each, two 3-cycles at (1/9)³ each — 366/729 in total.
func TestStatefulKeepOwnStaysPut(t *testing.T) {
	c := NewStateful(3, 3, dynamics.TwoChoicesKeepOwn{})
	row := make([]float64, c.States())
	i := c.IndexOf(colorcfg.FromCounts(1, 1, 1))
	c.TransitionRow(i, row)
	want := 366.0 / 729.0
	if math.Abs(row[i]-want) > 1e-12 {
		t.Errorf("P(stay at (1,1,1)) = %.12f, want %.12f", row[i], want)
	}
}

// TestStatefulAbsorptionSymmetry: from a symmetric two-color split the
// absorption probabilities must be exactly ½/½.
func TestStatefulAbsorptionSymmetry(t *testing.T) {
	c := NewStateful(6, 2, dynamics.TwoChoicesKeepOwn{})
	probs, rounds := c.AbsorptionFrom(colorcfg.FromCounts(3, 3))
	if math.Abs(probs[0]-0.5) > 1e-9 || math.Abs(probs[1]-0.5) > 1e-9 {
		t.Errorf("absorption from (3,3) = %v, want (0.5, 0.5)", probs)
	}
	if rounds <= 0 || math.IsInf(rounds, 0) || math.IsNaN(rounds) {
		t.Errorf("expected absorption time %v not finite positive", rounds)
	}
}

func TestDistributionAfter(t *testing.T) {
	c := New(6, 3, dynamics.ThreeMajority{})
	start := colorcfg.FromCounts(3, 2, 1)
	// T=0: point mass.
	d0 := c.DistributionAfter(start, 0)
	if d0[c.IndexOf(start)] != 1 {
		t.Fatal("T=0 is not a point mass on the start state")
	}
	// T=1 equals the transition row of the start state.
	d1 := c.DistributionAfter(start, 1)
	row := make([]float64, c.States())
	c.TransitionRow(c.IndexOf(start), row)
	for j := range row {
		if math.Abs(d1[j]-row[j]) > 1e-12 {
			t.Fatalf("T=1 distribution differs from transition row at state %d", j)
		}
	}
	// Mass conserved at every horizon; absorbing mass is non-decreasing.
	prevAbsorbed := 0.0
	for _, T := range []int{2, 5, 10, 40} {
		d := c.DistributionAfter(start, T)
		sum, absorbed := 0.0, 0.0
		for i, p := range d {
			if p < -1e-15 {
				t.Fatalf("T=%d: negative mass %g at state %d", T, p, i)
			}
			sum += p
			if c.absorbing[i] >= 0 {
				absorbed += p
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("T=%d: total mass %.12f", T, sum)
		}
		if absorbed+1e-12 < prevAbsorbed {
			t.Fatalf("T=%d: absorbed mass decreased %g -> %g", T, prevAbsorbed, absorbed)
		}
		prevAbsorbed = absorbed
	}
	// Long-horizon absorbed mass must approach the absorption probabilities.
	d := c.DistributionAfter(start, 400)
	probs, _ := c.AbsorptionFrom(start)
	for j := 0; j < c.K; j++ {
		mono := make(colorcfg.Config, c.K)
		mono[j] = c.N
		got := d[c.IndexOf(mono)]
		if math.Abs(got-probs[j]) > 1e-6 {
			t.Errorf("color %d: P^400 absorbed mass %.8f vs absorption prob %.8f", j, got, probs[j])
		}
	}
}
