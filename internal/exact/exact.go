// Package exact computes exact quantities of the configuration Markov
// chain for small systems: the full state space is enumerated (all
// compositions of n into k parts), transition probabilities follow from
// the multinomial law C(t+1) ~ Multinomial(n, p(C(t))), and absorption
// probabilities / expected absorption times are obtained by solving the
// absorbing-chain linear systems with dense Gaussian elimination.
//
// This is the strongest validation substrate in the repository: for n up
// to a few dozen agents the simulators must agree with these numbers to
// Monte-Carlo precision (experiment E17), and structural identities — the
// voter martingale P(absorb in j | c) = c_j/n for polling — hold exactly.
package exact

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/dist"
	"plurality/internal/dynamics"
)

// Chain is the exact configuration chain of a dynamics on the clique with
// n agents and k colors. It is built either from a ProbModel (anonymous
// rules: one adoption vector shared by every agent — New) or from a
// TransitionModel (stateful rules: a per-source-color transition row —
// NewStateful). Exactly one of model/tmodel is set.
type Chain struct {
	N      int64
	K      int
	model  dynamics.ProbModel
	tmodel dynamics.TransitionModel

	// states lists every configuration (composition of n into k parts) in
	// colex enumeration order; index maps the packed key back to the slot.
	states [][]int64
	index  map[string]int

	// absorbing[i] >= 0 gives the color of a monochromatic state.
	absorbing []int

	// transient lists the indices of non-absorbing states; trPos[i] is the
	// position of state i within that list (-1 for absorbing states).
	transient []int
	trPos     []int
}

// maxStates bounds the state-space size (Gaussian elimination is O(S³)).
const maxStates = 4000

// New enumerates the chain of an anonymous (ProbModel) dynamics:
// C(t+1) ~ Multinomial(n, p(C(t))). It panics if the state space would
// exceed maxStates states (choose smaller n or k).
func New(n int64, k int, model dynamics.ProbModel) *Chain {
	c := enumerate(n, k)
	c.model = model
	return c
}

// NewStateful enumerates the chain of a stateful (TransitionModel)
// dynamics: the agents of each source color j transition independently
// with the row distribution TransitionProbs(c, j, ·), so
//
//	C(t+1) = Σ_j Multinomial(c_j, P(j → ·)),
//
// and the transition probability between two configurations is the exact
// convolution of those k multinomials (computed by statefulRow). This is
// the ground truth the CliqueMarkov engine is validated against.
func NewStateful(n int64, k int, model dynamics.TransitionModel) *Chain {
	c := enumerate(n, k)
	c.tmodel = model
	return c
}

// enumerate builds the state space shared by both chain flavors.
func enumerate(n int64, k int) *Chain {
	if n < 1 || k < 1 {
		panic("exact: need n >= 1 and k >= 1")
	}
	if s := compositions(n, k); s > maxStates {
		panic(fmt.Sprintf("exact: state space %d exceeds %d (n=%d, k=%d)", s, maxStates, n, k))
	}
	c := &Chain{N: n, K: k, index: map[string]int{}}
	cur := make([]int64, k)
	var rec func(pos int, remaining int64)
	rec = func(pos int, remaining int64) {
		if pos == k-1 {
			cur[pos] = remaining
			st := append([]int64(nil), cur...)
			c.index[key(st)] = len(c.states)
			c.states = append(c.states, st)
			return
		}
		for v := int64(0); v <= remaining; v++ {
			cur[pos] = v
			rec(pos+1, remaining-v)
		}
	}
	rec(0, n)

	c.absorbing = make([]int, len(c.states))
	c.trPos = make([]int, len(c.states))
	for i, st := range c.states {
		c.absorbing[i] = -1
		c.trPos[i] = -1
		for j, v := range st {
			if v == n {
				c.absorbing[i] = j
				break
			}
		}
		if c.absorbing[i] < 0 {
			c.trPos[i] = len(c.transient)
			c.transient = append(c.transient, i)
		}
	}
	return c
}

// compositions returns C(n+k-1, k-1), capped to avoid overflow.
func compositions(n int64, k int) int64 {
	out := int64(1)
	for i := int64(1); i < int64(k); i++ {
		out = out * (n + i) / i
		if out > 10*maxStates {
			return out
		}
	}
	return out
}

func key(st []int64) string {
	b := make([]byte, 0, len(st)*3)
	for _, v := range st {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}

// States returns the number of states.
func (c *Chain) States() int { return len(c.states) }

// TransientStates returns the number of non-monochromatic states.
func (c *Chain) TransientStates() int { return len(c.transient) }

// State returns the configuration of state i (do not mutate).
func (c *Chain) State(i int) colorcfg.Config { return c.states[i] }

// IndexOf returns the state index of a configuration.
func (c *Chain) IndexOf(cfg colorcfg.Config) int {
	if int64(cfg.N()) != c.N || cfg.K() != c.K {
		panic("exact: configuration does not match the chain dimensions")
	}
	i, ok := c.index[key(cfg)]
	if !ok {
		panic("exact: configuration not found (internal error)")
	}
	return i
}

// TransitionRow fills row[j] with P(state i -> state j) for all j.
// row must have length States(). Monochromatic states are treated as
// absorbing; for stateful models this is verified against the model's own
// rows (a rule that leaves a monochromatic state would not be a consensus
// dynamics).
func (c *Chain) TransitionRow(i int, row []float64) {
	if len(row) != len(c.states) {
		panic("exact: row length mismatch")
	}
	for j := range row {
		row[j] = 0
	}
	if a := c.absorbing[i]; a >= 0 {
		if c.tmodel != nil {
			probs := make([]float64, c.K)
			c.tmodel.TransitionProbs(c.states[i], colorcfg.Color(a), probs)
			if math.Abs(probs[a]-1) > 1e-12 {
				panic(fmt.Sprintf("exact: stateful model leaves monochromatic state %v (stay prob %g)", c.states[i], probs[a]))
			}
		}
		row[i] = 1
		return
	}
	if c.tmodel != nil {
		c.statefulRow(i, row)
		return
	}
	probs := make([]float64, c.K)
	c.model.AdoptionProbs(c.states[i], probs)
	for j, st := range c.states {
		row[j] = dist.MultinomialPMF(st, probs)
	}
}

// statefulRow computes the transition row of a stateful chain by exact
// convolution: starting from the point mass on the empty partial
// configuration, fold in each source color j — every way to distribute its
// c_j agents over the k target colors, weighted by the multinomial PMF
// under the row distribution P(j → ·). After all source colors are folded
// the partials are full configurations of n agents, mapped onto row slots.
func (c *Chain) statefulRow(i int, row []float64) {
	state := c.states[i]
	type partial struct {
		cfg []int64
		p   float64
	}
	cur := map[string]partial{key(make([]int64, c.K)): {cfg: make([]int64, c.K), p: 1}}
	rowProbs := make([]float64, c.K)
	d := make([]int64, c.K)
	for j, cj := range state {
		if cj == 0 {
			continue
		}
		c.tmodel.TransitionProbs(state, colorcfg.Color(j), rowProbs)
		next := map[string]partial{}
		var rec func(pos int, remaining int64)
		rec = func(pos int, remaining int64) {
			if pos == c.K-1 {
				d[pos] = remaining
				pd := dist.MultinomialPMF(d, rowProbs)
				if pd == 0 {
					return
				}
				for _, pa := range cur {
					sum := make([]int64, c.K)
					for h := range sum {
						sum[h] = pa.cfg[h] + d[h]
					}
					kk := key(sum)
					np := next[kk]
					np.cfg = sum
					np.p += pa.p * pd
					next[kk] = np
				}
				return
			}
			for v := int64(0); v <= remaining; v++ {
				d[pos] = v
				rec(pos+1, remaining-v)
			}
		}
		rec(0, cj)
		cur = next
	}
	for _, pa := range cur {
		row[c.index[key(pa.cfg)]] += pa.p
	}
}

// DistributionAfter returns the exact distribution over states after the
// given number of rounds starting from the point mass on `start`:
// the row vector e_start · Pᵗ. The result has length States().
// Transition rows are memoized per occupied state for the duration of
// the call — the stateful convolution is far too expensive to re-derive
// every round for states that stay occupied.
func (c *Chain) DistributionAfter(start colorcfg.Config, rounds int) []float64 {
	cur := make([]float64, len(c.states))
	cur[c.IndexOf(start)] = 1
	if rounds <= 0 {
		return cur
	}
	next := make([]float64, len(c.states))
	rows := map[int][]float64{}
	rowOf := func(i int) []float64 {
		row, ok := rows[i]
		if !ok {
			row = make([]float64, len(c.states))
			c.TransitionRow(i, row)
			rows[i] = row
		}
		return row
	}
	for t := 0; t < rounds; t++ {
		for j := range next {
			next[j] = 0
		}
		for i, p := range cur {
			if p == 0 {
				continue
			}
			for j, q := range rowOf(i) {
				if q != 0 {
					next[j] += p * q
				}
			}
		}
		cur, next = next, cur
	}
	return cur
}

// AbsorptionProbs returns B where B[t][j] is the probability that the
// chain started in transient state c.transient[t] is eventually absorbed
// in the monochromatic state of color j. It solves (I-Q)B = R.
func (c *Chain) AbsorptionProbs() [][]float64 {
	nt := len(c.transient)
	// Build I-Q and R.
	a := make([][]float64, nt)
	rhs := make([][]float64, nt)
	row := make([]float64, len(c.states))
	for t, i := range c.transient {
		c.TransitionRow(i, row)
		a[t] = make([]float64, nt)
		rhs[t] = make([]float64, c.K)
		for j, p := range row {
			if tp := c.trPos[j]; tp >= 0 {
				a[t][tp] = -p
			} else {
				rhs[t][c.absorbing[j]] += p
			}
		}
		a[t][t] += 1
	}
	solveInPlace(a, rhs)
	return rhs
}

// ExpectedAbsorptionTimes returns E[rounds to absorption] from each
// transient state: the solution of (I-Q)τ = 1.
func (c *Chain) ExpectedAbsorptionTimes() []float64 {
	nt := len(c.transient)
	a := make([][]float64, nt)
	rhs := make([][]float64, nt)
	row := make([]float64, len(c.states))
	for t, i := range c.transient {
		c.TransitionRow(i, row)
		a[t] = make([]float64, nt)
		rhs[t] = []float64{1}
		for j, p := range row {
			if tp := c.trPos[j]; tp >= 0 {
				a[t][tp] = -p
			}
		}
		a[t][t] += 1
	}
	solveInPlace(a, rhs)
	out := make([]float64, nt)
	for t := range rhs {
		out[t] = rhs[t][0]
	}
	return out
}

// AbsorptionFrom returns, for the given start configuration, the
// absorption probability vector over colors and the expected absorption
// time. Monochromatic starts return a unit vector and time 0.
func (c *Chain) AbsorptionFrom(cfg colorcfg.Config) ([]float64, float64) {
	i := c.IndexOf(cfg)
	if a := c.absorbing[i]; a >= 0 {
		out := make([]float64, c.K)
		out[a] = 1
		return out, 0
	}
	probs := c.AbsorptionProbs()
	times := c.ExpectedAbsorptionTimes()
	t := c.trPos[i]
	return probs[t], times[t]
}

// TransientPos returns the transient index of state i, or -1.
func (c *Chain) TransientPos(i int) int { return c.trPos[i] }

// solveInPlace solves A·X = B by Gaussian elimination with partial
// pivoting, overwriting B with the solution. A is destroyed.
func solveInPlace(a [][]float64, b [][]float64) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		if best == 0 {
			panic("exact: singular linear system (chain not absorbing?)")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for cc := col; cc < n; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			for cc := range b[r] {
				b[r][cc] -= f * b[col][cc]
			}
		}
	}
	// Back-substitute.
	for col := n - 1; col >= 0; col-- {
		inv := 1 / a[col][col]
		for cc := range b[col] {
			b[col][cc] *= inv
		}
		for r := col - 1; r >= 0; r-- {
			f := a[r][col]
			if f == 0 {
				continue
			}
			for cc := range b[r] {
				b[r][cc] -= f * b[col][cc]
			}
		}
	}
}
