// Package exact computes exact quantities of the configuration Markov
// chain for small systems: the full state space is enumerated (all
// compositions of n into k parts), transition probabilities follow from
// the multinomial law C(t+1) ~ Multinomial(n, p(C(t))), and absorption
// probabilities / expected absorption times are obtained by solving the
// absorbing-chain linear systems with dense Gaussian elimination.
//
// This is the strongest validation substrate in the repository: for n up
// to a few dozen agents the simulators must agree with these numbers to
// Monte-Carlo precision (experiment E17), and structural identities — the
// voter martingale P(absorb in j | c) = c_j/n for polling — hold exactly.
package exact

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/dist"
	"plurality/internal/dynamics"
)

// Chain is the exact configuration chain of a ProbModel dynamics on the
// clique with n agents and k colors.
type Chain struct {
	N     int64
	K     int
	model dynamics.ProbModel

	// states lists every configuration (composition of n into k parts) in
	// colex enumeration order; index maps the packed key back to the slot.
	states [][]int64
	index  map[string]int

	// absorbing[i] >= 0 gives the color of a monochromatic state.
	absorbing []int

	// transient lists the indices of non-absorbing states; trPos[i] is the
	// position of state i within that list (-1 for absorbing states).
	transient []int
	trPos     []int
}

// maxStates bounds the state-space size (Gaussian elimination is O(S³)).
const maxStates = 4000

// New enumerates the chain. It panics if the state space would exceed
// maxStates states (choose smaller n or k).
func New(n int64, k int, model dynamics.ProbModel) *Chain {
	if n < 1 || k < 1 {
		panic("exact: need n >= 1 and k >= 1")
	}
	if s := compositions(n, k); s > maxStates {
		panic(fmt.Sprintf("exact: state space %d exceeds %d (n=%d, k=%d)", s, maxStates, n, k))
	}
	c := &Chain{N: n, K: k, model: model, index: map[string]int{}}
	cur := make([]int64, k)
	var rec func(pos int, remaining int64)
	rec = func(pos int, remaining int64) {
		if pos == k-1 {
			cur[pos] = remaining
			st := append([]int64(nil), cur...)
			c.index[key(st)] = len(c.states)
			c.states = append(c.states, st)
			return
		}
		for v := int64(0); v <= remaining; v++ {
			cur[pos] = v
			rec(pos+1, remaining-v)
		}
	}
	rec(0, n)

	c.absorbing = make([]int, len(c.states))
	c.trPos = make([]int, len(c.states))
	for i, st := range c.states {
		c.absorbing[i] = -1
		c.trPos[i] = -1
		for j, v := range st {
			if v == n {
				c.absorbing[i] = j
				break
			}
		}
		if c.absorbing[i] < 0 {
			c.trPos[i] = len(c.transient)
			c.transient = append(c.transient, i)
		}
	}
	return c
}

// compositions returns C(n+k-1, k-1), capped to avoid overflow.
func compositions(n int64, k int) int64 {
	out := int64(1)
	for i := int64(1); i < int64(k); i++ {
		out = out * (n + i) / i
		if out > 10*maxStates {
			return out
		}
	}
	return out
}

func key(st []int64) string {
	b := make([]byte, 0, len(st)*3)
	for _, v := range st {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}

// States returns the number of states.
func (c *Chain) States() int { return len(c.states) }

// TransientStates returns the number of non-monochromatic states.
func (c *Chain) TransientStates() int { return len(c.transient) }

// State returns the configuration of state i (do not mutate).
func (c *Chain) State(i int) colorcfg.Config { return c.states[i] }

// IndexOf returns the state index of a configuration.
func (c *Chain) IndexOf(cfg colorcfg.Config) int {
	if int64(cfg.N()) != c.N || cfg.K() != c.K {
		panic("exact: configuration does not match the chain dimensions")
	}
	i, ok := c.index[key(cfg)]
	if !ok {
		panic("exact: configuration not found (internal error)")
	}
	return i
}

// TransitionRow fills row[j] with P(state i -> state j) for all j.
// row must have length States().
func (c *Chain) TransitionRow(i int, row []float64) {
	if len(row) != len(c.states) {
		panic("exact: row length mismatch")
	}
	for j := range row {
		row[j] = 0
	}
	if a := c.absorbing[i]; a >= 0 {
		row[i] = 1
		return
	}
	probs := make([]float64, c.K)
	c.model.AdoptionProbs(c.states[i], probs)
	for j, st := range c.states {
		row[j] = dist.MultinomialPMF(st, probs)
	}
}

// AbsorptionProbs returns B where B[t][j] is the probability that the
// chain started in transient state c.transient[t] is eventually absorbed
// in the monochromatic state of color j. It solves (I-Q)B = R.
func (c *Chain) AbsorptionProbs() [][]float64 {
	nt := len(c.transient)
	// Build I-Q and R.
	a := make([][]float64, nt)
	rhs := make([][]float64, nt)
	row := make([]float64, len(c.states))
	for t, i := range c.transient {
		c.TransitionRow(i, row)
		a[t] = make([]float64, nt)
		rhs[t] = make([]float64, c.K)
		for j, p := range row {
			if tp := c.trPos[j]; tp >= 0 {
				a[t][tp] = -p
			} else {
				rhs[t][c.absorbing[j]] += p
			}
		}
		a[t][t] += 1
	}
	solveInPlace(a, rhs)
	return rhs
}

// ExpectedAbsorptionTimes returns E[rounds to absorption] from each
// transient state: the solution of (I-Q)τ = 1.
func (c *Chain) ExpectedAbsorptionTimes() []float64 {
	nt := len(c.transient)
	a := make([][]float64, nt)
	rhs := make([][]float64, nt)
	row := make([]float64, len(c.states))
	for t, i := range c.transient {
		c.TransitionRow(i, row)
		a[t] = make([]float64, nt)
		rhs[t] = []float64{1}
		for j, p := range row {
			if tp := c.trPos[j]; tp >= 0 {
				a[t][tp] = -p
			}
		}
		a[t][t] += 1
	}
	solveInPlace(a, rhs)
	out := make([]float64, nt)
	for t := range rhs {
		out[t] = rhs[t][0]
	}
	return out
}

// AbsorptionFrom returns, for the given start configuration, the
// absorption probability vector over colors and the expected absorption
// time. Monochromatic starts return a unit vector and time 0.
func (c *Chain) AbsorptionFrom(cfg colorcfg.Config) ([]float64, float64) {
	i := c.IndexOf(cfg)
	if a := c.absorbing[i]; a >= 0 {
		out := make([]float64, c.K)
		out[a] = 1
		return out, 0
	}
	probs := c.AbsorptionProbs()
	times := c.ExpectedAbsorptionTimes()
	t := c.trPos[i]
	return probs[t], times[t]
}

// TransientPos returns the transient index of state i, or -1.
func (c *Chain) TransientPos(i int) int { return c.trPos[i] }

// solveInPlace solves A·X = B by Gaussian elimination with partial
// pivoting, overwriting B with the solution. A is destroyed.
func solveInPlace(a [][]float64, b [][]float64) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		if best == 0 {
			panic("exact: singular linear system (chain not absorbing?)")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for cc := col; cc < n; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			for cc := range b[r] {
				b[r][cc] -= f * b[col][cc]
			}
		}
	}
	// Back-substitute.
	for col := n - 1; col >= 0; col-- {
		inv := 1 / a[col][col]
		for cc := range b[col] {
			b[col][cc] *= inv
		}
		for r := col - 1; r >= 0; r-- {
			f := a[r][col]
			if f == 0 {
				continue
			}
			for cc := range b[r] {
				b[r][cc] -= f * b[col][cc]
			}
		}
	}
}
