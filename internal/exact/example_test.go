package exact_test

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/exact"
)

// ExampleChain_AbsorptionFrom solves a small system exactly. Polling's
// absorption law is the voter martingale c_j/n, so the output is exact
// rational arithmetic up to float rounding.
func ExampleChain_AbsorptionFrom() {
	chain := exact.New(10, 2, dynamics.Polling{})
	probs, _ := chain.AbsorptionFrom(colorcfg.FromCounts(7, 3))
	fmt.Printf("%.1f %.1f\n", probs[0], probs[1])
	// Output:
	// 0.7 0.3
}

// ExampleNew shows the state-space size of a small chain.
func ExampleNew() {
	chain := exact.New(4, 3, dynamics.ThreeMajority{})
	fmt.Println(chain.States(), chain.TransientStates())
	// Output:
	// 15 12
}
