// Package integration holds cross-module tests: process-level equivalence
// of the engines that realize the same mathematical process, end-to-end
// theorem smoke checks, and adversary × engine interoperation.
package integration

import (
	"math"
	"testing"

	"plurality/internal/adversary"
	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

// meanRounds runs reps processes built by mk and returns summary stats of
// the rounds-to-consensus and the win count.
func meanRounds(t *testing.T, reps int, mk func(rep int) engine.Engine, seed uint64) (stats.Summary, int) {
	t.Helper()
	rounds := make([]float64, reps)
	wins := 0
	base := rng.New(seed)
	for rep := 0; rep < reps; rep++ {
		e := mk(rep)
		res := core.Run(e, core.Options{MaxRounds: 100_000, Rand: base.NewStream()})
		e.Close()
		if !res.Stopped {
			t.Fatalf("rep %d did not converge", rep)
		}
		rounds[rep] = float64(res.Rounds)
		if res.WonInitialPlurality {
			wins++
		}
	}
	return stats.Summarize(rounds), wins
}

// TestEnginesProcessLevelEquivalence verifies that the three realizations
// of the 3-majority process on the clique (exact multinomial,
// configuration sampling, literal agent array) produce statistically
// indistinguishable rounds-to-consensus distributions.
func TestEnginesProcessLevelEquivalence(t *testing.T) {
	n := int64(30000)
	k := 5
	s := core.Corollary1Bias(n, k, 1.0)
	init := colorcfg.Biased(n, k, s)
	const reps = 60

	mkMulti := func(rep int) engine.Engine {
		return engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	}
	mkSampled := func(rep int) engine.Engine {
		return engine.NewCliqueSampled(dynamics.ThreeMajority{}, init, 2, uint64(rep)*7+1)
	}
	mkGraph := func(rep int) engine.Engine {
		return engine.NewGraphEngine(dynamics.ThreeMajority{}, graph.NewComplete(n), init, 2, uint64(rep)*13+5, nil)
	}
	mkMarkov := func(rep int) engine.Engine {
		return engine.NewCliqueMarkov(dynamics.ThreeMajorityKeepOwn{}, init)
	}

	sums := map[string]stats.Summary{}
	for name, mk := range map[string]func(int) engine.Engine{
		"multinomial": mkMulti, "sampled": mkSampled, "graph": mkGraph, "markov": mkMarkov,
	} {
		sum, wins := meanRounds(t, reps, mk, 1000)
		if wins != reps {
			t.Errorf("%s: won only %d/%d", name, wins, reps)
		}
		sums[name] = sum
	}
	ref := sums["multinomial"]
	for name, sum := range sums {
		// Means must agree within a few pooled standard errors.
		se := math.Sqrt(sum.Std*sum.Std/float64(sum.N) + ref.Std*ref.Std/float64(ref.N))
		if math.Abs(sum.Mean-ref.Mean) > 5*se+0.5 {
			t.Errorf("%s mean rounds %v differs from multinomial %v (se %v)",
				name, sum.Mean, ref.Mean, se)
		}
	}
}

// TestTieBreakProcessEquivalence checks the paper's remark that rainbow
// tie-breaking (first sample vs uniform) does not change the process.
func TestTieBreakProcessEquivalence(t *testing.T) {
	n := int64(20000)
	init := colorcfg.Biased(n, 6, core.Corollary1Bias(n, 6, 1.0))
	const reps = 50
	a, winsA := meanRounds(t, reps, func(rep int) engine.Engine {
		return engine.NewCliqueSampled(dynamics.ThreeMajority{}, init, 1, uint64(rep)+11)
	}, 2000)
	b, winsB := meanRounds(t, reps, func(rep int) engine.Engine {
		return engine.NewCliqueSampled(dynamics.ThreeMajority{UniformTie: true}, init, 1, uint64(rep)+77)
	}, 3000)
	if winsA != reps || winsB != reps {
		t.Fatalf("wins %d/%d vs %d/%d", winsA, reps, winsB, reps)
	}
	se := math.Sqrt(a.Std*a.Std/float64(reps) + b.Std*b.Std/float64(reps))
	if math.Abs(a.Mean-b.Mean) > 5*se+0.5 {
		t.Errorf("tie-break variants differ: %v vs %v (se %v)", a.Mean, b.Mean, se)
	}
}

// TestTheorem1RoundsScaleWithLambda is an end-to-end check of the upper
// bound shape: quadrupling λ should roughly quadruple rounds (up to the
// log factor), never explode.
func TestTheorem1RoundsScaleWithLambda(t *testing.T) {
	n := int64(100000)
	mk := func(k int) float64 {
		s := core.Corollary1Bias(n, k, 1.0)
		sum, wins := meanRounds(t, 20, func(rep int) engine.Engine {
			return engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.Biased(n, k, s))
		}, uint64(4000+k))
		if wins != 20 {
			t.Fatalf("k=%d: wins %d/20", k, wins)
		}
		return sum.Mean
	}
	r2 := mk(2) // λ = 4
	r8 := mk(8) // λ = 16
	ratio := r8 / r2
	if ratio < 1.1 || ratio > 4.5 {
		t.Errorf("rounds ratio λ16/λ4 = %v, want within (1.1, 4.5): %v vs %v", ratio, r8, r2)
	}
}

// TestAdversaryAcrossEngines runs the strongest adversary against every
// engine type and checks M-plurality is reached with a small budget.
func TestAdversaryAcrossEngines(t *testing.T) {
	n := int64(30000)
	k := 4
	s := core.Corollary1Bias(n, k, 1.0)
	init := colorcfg.Biased(n, k, s)
	adv := adversary.Strongest{F: 20}
	m := int64(core.SelfStabilizationResidue(s, core.Lambda(n, k))) + 200

	engines := map[string]engine.Engine{
		"multinomial": engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init),
		"sampled":     engine.NewCliqueSampled(dynamics.ThreeMajority{}, init, 2, 5),
		"graph":       engine.NewGraphEngine(dynamics.ThreeMajority{}, graph.NewComplete(n), init, 2, 6, nil),
		"markov":      engine.NewCliqueMarkov(dynamics.ThreeMajorityKeepOwn{}, init),
	}
	for name, e := range engines {
		res := core.Run(e, core.Options{
			MaxRounds: 5000,
			Rand:      rng.New(77),
			Adversary: adv,
			Stop:      core.WhenMPlurality(n, m),
		})
		if !res.Stopped {
			t.Errorf("%s: did not reach M-plurality under adversary", name)
		}
		if res.Final.Plurality() != 0 {
			t.Errorf("%s: adversary flipped the plurality", name)
		}
	}
}

// TestUndecidedEnginesAgree compares the exact and population undecided
// engines on win rate and round count from the same biased input (the
// population engine counts n micro-steps per round, so the two are
// comparable only coarsely — same winner, same order of magnitude).
func TestUndecidedEnginesAgree(t *testing.T) {
	init := colorcfg.FromCounts(3000, 1500, 500)
	n := init.N()
	const reps = 20
	base := rng.New(10)
	runOne := func(exact bool, r *rng.Rand) (int, bool) {
		var e engine.Engine
		if exact {
			e = engine.NewUndecidedExact(init)
		} else {
			e = engine.NewUndecidedPopulation(init)
		}
		res := core.Run(e, core.Options{
			MaxRounds: 50000,
			Rand:      r,
			Stop:      core.WhenConsensusOf(n),
		})
		return res.Rounds, res.Stopped && res.Winner == 0
	}
	exactWins, popWins := 0, 0
	var exactRounds, popRounds float64
	for rep := 0; rep < reps; rep++ {
		er, ew := runOne(true, base.NewStream())
		pr, pw := runOne(false, base.NewStream())
		if ew {
			exactWins++
		}
		if pw {
			popWins++
		}
		exactRounds += float64(er) / reps
		popRounds += float64(pr) / reps
	}
	if exactWins < reps-2 || popWins < reps-2 {
		t.Errorf("win rates diverge: exact %d/%d, population %d/%d", exactWins, reps, popWins, reps)
	}
	if popRounds > 10*exactRounds+20 || exactRounds > 10*popRounds+20 {
		t.Errorf("round scales diverge: exact %v vs population %v", exactRounds, popRounds)
	}
}

// TestFullPipelineTrajectoryMonotoneAfterThreshold verifies the upper
// bound's key structural fact end-to-end: with the Corollary-1 bias the
// bias trajectory is (essentially) monotone increasing — the property
// Lemma 10 shows breaks below sqrt(kn)/6.
func TestFullPipelineTrajectoryMonotoneAfterThreshold(t *testing.T) {
	n := int64(200000)
	k := 8
	init := colorcfg.Biased(n, k, core.Corollary1Bias(n, k, 1.0))
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	res := core.Run(e, core.Options{MaxRounds: 1000, Rand: rng.New(3), TrackBias: true})
	if !res.WonInitialPlurality {
		t.Fatal("did not converge")
	}
	drops := 0
	for i := 1; i < len(res.BiasTrajectory); i++ {
		if res.BiasTrajectory[i] < res.BiasTrajectory[i-1] {
			drops++
		}
	}
	if drops > len(res.BiasTrajectory)/10 {
		t.Errorf("bias dropped in %d/%d rounds despite Cor-1 bias", drops, len(res.BiasTrajectory))
	}
}
