package engine

import (
	"plurality/internal/colorcfg"
	"plurality/internal/dist"
	"plurality/internal/obs"
	"plurality/internal/rng"
)

// Undecided is the sentinel state of the undecided-state dynamics. It is
// not a color: configurations returned by the undecided engines count only
// colored agents, and Undecided() reports the rest.
const Undecided Color = -1

// UndecidedExact simulates the undecided-state dynamics (Angluin et al.;
// analyzed on the synchronous gossip model by Becchetti et al., SODA'15)
// exactly at configuration level on the clique.
//
// Rule, per round, for every agent u pulling one agent v u.a.r.:
//   - u colored j, v colored j or undecided → u stays j;
//   - u colored j, v colored h ≠ j        → u becomes undecided;
//   - u undecided,  v colored h           → u adopts h;
//   - u undecided,  v undecided           → u stays undecided.
//
// At count level the next configuration is a sum of independent binomial /
// multinomial draws: colored-j agents survive with probability (c_j + q)/n
// and undecided agents adopt color h with probability c_h/n, where q is the
// number of undecided agents. O(k) per round, exact.
//
// The SODA'15 analysis shows convergence time Θ(md(c) · log n) w.h.p.
// (md = monochromatic distance) and that for k = ω(sqrt n) the plurality
// color can die in one round — both reproduced in experiment E11.
type UndecidedExact struct {
	cfg       colorcfg.Config
	undecided int64
	n         int64
	round     int
	// scratch
	recruitProbs []float64
	recruits     []int64
	obs          obs.Observer
}

// NewUndecidedExact starts the dynamics from a fully-colored configuration
// (no undecided agents, matching the protocol's standard initialization).
func NewUndecidedExact(initial colorcfg.Config) *UndecidedExact {
	n := initial.N()
	if n <= 0 {
		panic("engine: empty initial configuration")
	}
	k := initial.K()
	return &UndecidedExact{
		cfg:          initial.Clone(),
		n:            n,
		recruitProbs: make([]float64, k+1),
		recruits:     make([]int64, k+1),
	}
}

// Name implements Engine.
func (e *UndecidedExact) Name() string { return "undecided-exact" }

// N implements Engine: total agents, colored plus undecided.
func (e *UndecidedExact) N() int64 { return e.n }

// K implements Engine.
func (e *UndecidedExact) K() int { return e.cfg.K() }

// Round implements Engine.
func (e *UndecidedExact) Round() int { return e.round }

// Config implements Engine: counts of colored agents only; the sum is
// N() - Undecided().
func (e *UndecidedExact) Config() colorcfg.Config { return e.cfg.Clone() }

// UndecidedCount returns the number of agents currently undecided.
func (e *UndecidedExact) UndecidedCount() int64 { return e.undecided }

// Step implements Engine. All probabilities are computed from the
// start-of-round state before any count is mutated.
func (e *UndecidedExact) Step(r *rng.Rand) {
	began := obs.Began(e.obs)
	n := float64(e.n)
	q := e.undecided
	k := e.cfg.K()

	// Undecided recruits first (they need the pre-round colored counts):
	// Multinomial(q, (c_1, ..., c_k, q)/n); the final category is "stay
	// undecided".
	for j, cj := range e.cfg {
		e.recruitProbs[j] = float64(cj) / n
	}
	e.recruitProbs[k] = float64(q) / n
	if q > 0 {
		dist.Multinomial(r, q, e.recruitProbs, e.recruits)
	} else {
		clear(e.recruits)
	}

	// Colored survivors: stay_j ~ Binomial(c_j, (c_j + q)/n), independent
	// across colors given the start-of-round state.
	var becameUndecided int64
	for j, cj := range e.cfg {
		if cj == 0 {
			continue
		}
		pStay := (float64(cj) + float64(q)) / n
		stay := dist.Binomial(r, cj, pStay)
		becameUndecided += cj - stay
		e.cfg[j] = stay
	}

	for j := 0; j < k; j++ {
		e.cfg[j] += e.recruits[j]
	}
	e.undecided = becameUndecided + e.recruits[k]
	e.round++
	observeEnd(e.obs, began, e.round, e.n, e.cfg)
}

// SetObserver implements Observable.
func (e *UndecidedExact) SetObserver(o obs.Observer) { e.obs = o }

// Repaint implements Engine (corruption among colored agents only).
func (e *UndecidedExact) Repaint(from, to Color, m int64) int64 {
	return repaintCounts(e.cfg, from, to, m)
}

// Close implements Engine (no worker goroutines; no-op).
func (e *UndecidedExact) Close() {}

// ----- agent-level population variant -----

// UndecidedPopulation runs the undecided-state protocol in the sequential
// population model (Angluin et al., DISC'07): at every micro-step a uniform
// initiator u observes a uniform responder v ≠ u and applies the same
// update rule as UndecidedExact. One Step() performs n micro-steps (one
// "parallel round equivalent"), so Round() is comparable across engines.
type UndecidedPopulation struct {
	agents    []Color
	cfg       colorcfg.Config
	undecided int64
	n         int64
	round     int
	obs       obs.Observer
}

// NewUndecidedPopulation starts from a fully-colored configuration.
func NewUndecidedPopulation(initial colorcfg.Config) *UndecidedPopulation {
	n := initial.N()
	if n < 2 {
		panic("engine: population model needs at least 2 agents")
	}
	return &UndecidedPopulation{
		agents: initial.ToAgents(nil),
		cfg:    initial.Clone(),
		n:      n,
	}
}

// Name implements Engine.
func (e *UndecidedPopulation) Name() string { return "undecided-population" }

// N implements Engine.
func (e *UndecidedPopulation) N() int64 { return e.n }

// K implements Engine.
func (e *UndecidedPopulation) K() int { return e.cfg.K() }

// Round implements Engine (completed blocks of n micro-steps).
func (e *UndecidedPopulation) Round() int { return e.round }

// Config implements Engine: colored counts only.
func (e *UndecidedPopulation) Config() colorcfg.Config { return e.cfg.Clone() }

// UndecidedCount returns the number of undecided agents.
func (e *UndecidedPopulation) UndecidedCount() int64 { return e.undecided }

// Step implements Engine: n sequential pairwise interactions.
func (e *UndecidedPopulation) Step(r *rng.Rand) {
	began := obs.Began(e.obs)
	for i := int64(0); i < e.n; i++ {
		e.MicroStep(r)
	}
	e.round++
	observeEnd(e.obs, began, e.round, e.n, e.cfg)
}

// SetObserver implements Observable.
func (e *UndecidedPopulation) SetObserver(o obs.Observer) { e.obs = o }

// MicroStep performs a single pairwise interaction.
func (e *UndecidedPopulation) MicroStep(r *rng.Rand) {
	u := r.Int63n(e.n)
	v := r.Int63n(e.n - 1)
	if v >= u {
		v++
	}
	cu, cv := e.agents[u], e.agents[v]
	switch {
	case cu == Undecided && cv != Undecided:
		e.agents[u] = cv
		e.undecided--
		e.cfg[cv]++
	case cu != Undecided && cv != Undecided && cu != cv:
		e.agents[u] = Undecided
		e.undecided++
		e.cfg[cu]--
	}
}

// Close implements Engine (no worker goroutines; no-op).
func (e *UndecidedPopulation) Close() {}

// Repaint implements Engine.
func (e *UndecidedPopulation) Repaint(from, to Color, m int64) int64 {
	if m <= 0 || from == to {
		return 0
	}
	if int(from) >= e.K() || int(to) >= e.K() || from < 0 || to < 0 {
		panic("engine: Repaint color out of range")
	}
	var moved int64
	for i := range e.agents {
		if moved == m {
			break
		}
		if e.agents[i] == from {
			e.agents[i] = to
			moved++
		}
	}
	e.cfg[from] -= moved
	e.cfg[to] += moved
	return moved
}
