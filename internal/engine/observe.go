package engine

import (
	"time"

	"plurality/internal/colorcfg"
	"plurality/internal/obs"
)

// Observer support. Every concrete engine in this package carries an
// optional obs.Observer and reports each completed Step to it: round
// number, agent count, wall-clock nanoseconds, and the post-round count
// configuration. The zero-cost-when-off contract (DESIGN.md §13):
//
//   - Detached (the default), the entire cost is one nil check per Step.
//     No clock read, no allocation. TestStepZeroAllocs and the sparse
//     ns/agent budget run in this state.
//   - Attached, the engine reads the clock twice per round and makes one
//     interface call — all outside the per-agent loops, so worker
//     dispatch and the inner sampling plans are untouched.
//   - The observer is never handed the rng, so a seeded run's byte
//     stream is identical with and without one (certified against every
//     committed golden by internal/validate.TraceBytesObserved).
//
// The Engine interface itself is unchanged — observation is attached via
// the Observable side-interface so wrappers and test fakes that don't
// care keep compiling.

// Observable is implemented by engines that accept a round observer.
type Observable interface {
	// SetObserver attaches o (nil detaches). Must be called between
	// rounds, from the stepping goroutine.
	SetObserver(o obs.Observer)
}

// Observe attaches o to e if the engine supports observation, reporting
// whether it did. Attaching to a non-Observable engine is a no-op, not
// an error — telemetry is best-effort by design.
func Observe(e Engine, o obs.Observer) bool {
	oe, ok := e.(Observable)
	if ok {
		oe.SetObserver(o)
	}
	return ok
}

// observeEnd reports a completed round to o; no-op when detached. The
// cfg slice is the engine's live count array — obs.Observer documents
// that implementations must not retain it.
func observeEnd(o obs.Observer, began time.Time, round int, n int64, cfg colorcfg.Config) {
	if o == nil {
		return
	}
	o.ObserveRound(round, n, time.Since(began).Nanoseconds(), cfg)
}
