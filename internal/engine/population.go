package engine

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/obs"
	"plurality/internal/rng"
)

// Population runs a stateless dynamics (any dynamics.Rule) in the
// sequential population model on the clique: at every micro-step one
// uniform agent redraws its color by sampling h agents u.a.r. (with
// repetitions, self included — the clique semantics) and applying the
// rule. One Step() performs n micro-steps so Round() is comparable to the
// synchronous engines. This is the "asynchronous 3-majority" extension
// discussed alongside the population-model related work.
//
// On the clique agents are anonymous, so the engine is configuration-level:
// the updating agent's current color is drawn from c/n and the sampled
// colors likewise.
type Population struct {
	rule  dynamics.Rule
	cfg   colorcfg.Config
	n     int64
	round int
	buf   []Color
	obs   obs.Observer
}

// NewPopulation builds the sequential engine.
func NewPopulation(rule dynamics.Rule, initial colorcfg.Config) *Population {
	n := initial.N()
	if n <= 0 {
		panic("engine: empty initial configuration")
	}
	return &Population{
		rule: rule,
		cfg:  initial.Clone(),
		n:    n,
		buf:  make([]Color, rule.SampleSize()),
	}
}

// Name implements Engine.
func (e *Population) Name() string {
	return fmt.Sprintf("population[%s]", e.rule.Name())
}

// N implements Engine.
func (e *Population) N() int64 { return e.n }

// K implements Engine.
func (e *Population) K() int { return e.cfg.K() }

// Round implements Engine.
func (e *Population) Round() int { return e.round }

// Config implements Engine.
func (e *Population) Config() colorcfg.Config { return e.cfg.Clone() }

// Step implements Engine: n sequential micro-steps.
func (e *Population) Step(r *rng.Rand) {
	began := obs.Began(e.obs)
	for i := int64(0); i < e.n; i++ {
		e.MicroStep(r)
	}
	e.round++
	observeEnd(e.obs, began, e.round, e.n, e.cfg)
}

// SetObserver implements Observable.
func (e *Population) SetObserver(o obs.Observer) { e.obs = o }

// MicroStep updates a single uniform agent.
func (e *Population) MicroStep(r *rng.Rand) {
	old := e.sampleColor(r)
	for s := range e.buf {
		e.buf[s] = e.sampleColor(r)
	}
	next := e.rule.Apply(e.buf, r)
	if next != old {
		e.cfg[old]--
		e.cfg[next]++
	}
}

// sampleColor draws a color proportionally to the current counts by
// inversion over the count prefix (O(k); k is small in the sequential
// experiments, and the distribution changes every micro-step so an alias
// table would be rebuilt per draw anyway).
func (e *Population) sampleColor(r *rng.Rand) Color {
	t := r.Int63n(e.n)
	for j, cj := range e.cfg {
		if t < cj {
			return Color(j)
		}
		t -= cj
	}
	panic("engine: color sampling overran configuration (count invariant broken)")
}

// Close implements Engine (no worker goroutines; no-op).
func (e *Population) Close() {}

// Repaint implements Engine.
func (e *Population) Repaint(from, to Color, m int64) int64 {
	return repaintCounts(e.cfg, from, to, m)
}
