// Package engine provides the simulation engines that advance a color
// configuration one synchronous round at a time.
//
// Three engines cover the paper's model (the clique) and its extensions:
//
//   - CliqueMultinomial — exact configuration-level engine. On the clique
//     every sample is an i.i.d. draw from the color distribution c/n and an
//     agent's own color never enters its update, so the next configuration
//     is exactly Multinomial(n, p(c)) where p is the rule's closed-form
//     adoption-probability vector (Lemma 1 for 3-majority). O(k) per round;
//     scales to n = 10^9.
//   - CliqueSampled — exact agent-level sampling on the clique for any Rule
//     (needed for h-plurality and the Theorem 3 rule zoo, which have no
//     closed form). Each of the n agents draws h i.i.d. colors from an
//     alias table over c and applies the rule. O(n·h) per round,
//     parallelized across worker goroutines with independent rng streams.
//   - GraphEngine — literal agent-array engine on an arbitrary topology
//     (internal/graph), double-buffered; used to cross-validate the clique
//     engines and for the beyond-clique extension experiments.
//
// The stateful undecided-state dynamics and the sequential population model
// have their own engines in undecided.go and population.go.
//
// All engines implement Engine, expose an O(k) Config snapshot, and support
// Repaint, the primitive the F-bounded dynamic adversary of Corollary 4
// uses to corrupt agents between rounds.
package engine

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dist"
	"plurality/internal/dynamics"
	"plurality/internal/obs"
	"plurality/internal/rng"
)

// Color aliases colorcfg.Color.
type Color = colorcfg.Color

// Engine advances a population of n agents over k colors one synchronous
// round at a time. Engines are not safe for concurrent use.
type Engine interface {
	// Name identifies the engine in tables and errors.
	Name() string
	// N is the number of agents.
	N() int64
	// K is the number of colors.
	K() int
	// Round is the number of completed rounds.
	Round() int
	// Config returns a copy of the current configuration (O(k)).
	Config() colorcfg.Config
	// Step advances the process one synchronous round using r.
	Step(r *rng.Rand)
	// Repaint changes the color of up to m agents currently holding color
	// `from` to color `to`, returning how many were changed. This is the
	// corruption primitive of the F-bounded adversary.
	Repaint(from, to Color, m int64) int64
	// Close releases engine resources (persistent worker goroutines in the
	// multi-worker engines; a no-op elsewhere). The engine must not be
	// stepped afterwards. Calling Close is optional — an unreachable
	// engine's workers are reaped by a GC cleanup — but loops that build
	// many engines should Close each one promptly.
	Close()
}

// ----- CliqueMultinomial -----

// CliqueMultinomial is the exact O(k)-per-round clique engine for rules
// with closed-form adoption probabilities (dynamics.ProbModel).
type CliqueMultinomial struct {
	rule  dynamics.Rule
	model dynamics.ProbModel
	cfg   colorcfg.Config
	n     int64
	round int
	probs []float64
	next  []int64
	obs   obs.Observer
}

// NewCliqueMultinomial builds the exact engine from an initial
// configuration and a rule that implements dynamics.ProbModel. It panics if
// the rule has no closed form (use NewCliqueSampled instead).
func NewCliqueMultinomial(rule dynamics.Rule, initial colorcfg.Config) *CliqueMultinomial {
	model, ok := rule.(dynamics.ProbModel)
	if !ok {
		panic(fmt.Sprintf("engine: rule %q has no closed-form adoption probabilities; use CliqueSampled", rule.Name()))
	}
	n := initial.N()
	if n <= 0 {
		panic("engine: empty initial configuration")
	}
	return &CliqueMultinomial{
		rule:  rule,
		model: model,
		cfg:   initial.Clone(),
		n:     n,
		probs: make([]float64, initial.K()),
		next:  make([]int64, initial.K()),
	}
}

// Name implements Engine.
func (e *CliqueMultinomial) Name() string {
	return fmt.Sprintf("clique-multinomial[%s]", e.rule.Name())
}

// N implements Engine.
func (e *CliqueMultinomial) N() int64 { return e.n }

// K implements Engine.
func (e *CliqueMultinomial) K() int { return e.cfg.K() }

// Round implements Engine.
func (e *CliqueMultinomial) Round() int { return e.round }

// Config implements Engine.
func (e *CliqueMultinomial) Config() colorcfg.Config { return e.cfg.Clone() }

// Step implements Engine: C(t+1) ~ Multinomial(n, p(C(t))).
func (e *CliqueMultinomial) Step(r *rng.Rand) {
	began := obs.Began(e.obs)
	e.model.AdoptionProbs(e.cfg, e.probs)
	dist.Multinomial(r, e.n, e.probs, e.next)
	copy(e.cfg, e.next)
	e.round++
	observeEnd(e.obs, began, e.round, e.n, e.cfg)
}

// SetObserver implements Observable.
func (e *CliqueMultinomial) SetObserver(o obs.Observer) { e.obs = o }

// Repaint implements Engine.
func (e *CliqueMultinomial) Repaint(from, to Color, m int64) int64 {
	return repaintCounts(e.cfg, from, to, m)
}

// SetConfig replaces the current configuration (counts are copied). n and k
// must match the engine's. The round counter is unchanged; sweeps and
// benchmarks use this to re-run transient rounds without rebuilding the
// engine.
func (e *CliqueMultinomial) SetConfig(c colorcfg.Config) {
	if c.K() != e.cfg.K() || c.N() != e.n {
		panic("engine: SetConfig dimension mismatch")
	}
	copy(e.cfg, c)
}

// Close implements Engine (no worker goroutines; no-op).
func (e *CliqueMultinomial) Close() {}

// repaintCounts moves up to m agents between colors at count level.
func repaintCounts(c colorcfg.Config, from, to Color, m int64) int64 {
	if m <= 0 || from == to {
		return 0
	}
	if int(from) >= len(c) || int(to) >= len(c) || from < 0 || to < 0 {
		panic("engine: Repaint color out of range")
	}
	moved := min64(m, c[from])
	c[from] -= moved
	c[to] += moved
	return moved
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ----- CliqueSampled -----

// CliqueSampled is the exact agent-level clique engine for arbitrary rules:
// each agent independently draws h colors from the current configuration
// (alias table) and applies the rule. Agents are anonymous on the clique,
// so only counts are stored. Work is sharded across Workers goroutines,
// each with its own rng stream derived deterministically from the seed
// passed to NewCliqueSampled. The goroutines are persistent (see
// workerPool), so a steady-state Step performs zero allocations; call Close
// when discarding a multi-worker engine early, or let the garbage collector
// reap the workers via the attached cleanup.
type CliqueSampled struct {
	rule    dynamics.Rule
	cfg     colorcfg.Config
	n       int64
	round   int
	alias   *dist.Alias
	workers []*sampledWorker
	pool    *workerPool
	obs     obs.Observer
}

type sampledWorker struct {
	r     *rng.Rand
	from  int64 // agent range [from, to)
	to    int64
	tally []int64 // cache-line padded; see paddedTallies
	buf   []Color // batch sample buffer, a multiple of SampleSize() long
}

// NewCliqueSampled builds the sampled engine. workers <= 1 runs
// single-threaded; seed feeds the per-worker rng streams (the rng passed to
// Step is unused by this engine's sampling but kept for interface parity —
// pass the same generator you seed elsewhere for clarity).
func NewCliqueSampled(rule dynamics.Rule, initial colorcfg.Config, workers int, seed uint64) *CliqueSampled {
	n := initial.N()
	if n <= 0 {
		panic("engine: empty initial configuration")
	}
	h := rule.SampleSize()
	if h < 1 {
		panic("engine: rule sample size must be >= 1")
	}
	if workers < 1 {
		workers = 1
	}
	if int64(workers) > n {
		workers = int(n)
	}
	e := &CliqueSampled{
		rule:  rule,
		cfg:   initial.Clone(),
		n:     n,
		alias: dist.NewAliasCounts(initial),
	}
	streams := rng.Streams(seed, workers)
	tallies := paddedTallies(workers, initial.K())
	for w := 0; w < workers; w++ {
		from, to := shardRange(n, workers, w)
		e.workers = append(e.workers, &sampledWorker{
			r:     streams[w],
			from:  from,
			to:    to,
			tally: tallies[w],
			buf:   make([]Color, batchBufLen(h, to-from)),
		})
	}
	if workers > 1 {
		fns := make([]func(), workers)
		rule, alias := e.rule, e.alias
		for i, w := range e.workers {
			fns[i] = func() { w.run(rule, alias) }
		}
		e.pool = attachPool(e, fns)
	}
	return e
}

// Close stops the worker goroutines of a multi-worker engine. The engine
// must not be stepped afterwards. Optional: an unreachable engine's workers
// are stopped by a GC cleanup.
func (e *CliqueSampled) Close() {
	if e.pool != nil {
		e.pool.shutdown()
	}
}

// Name implements Engine.
func (e *CliqueSampled) Name() string {
	return fmt.Sprintf("clique-sampled[%s,w=%d]", e.rule.Name(), len(e.workers))
}

// N implements Engine.
func (e *CliqueSampled) N() int64 { return e.n }

// K implements Engine.
func (e *CliqueSampled) K() int { return e.cfg.K() }

// Round implements Engine.
func (e *CliqueSampled) Round() int { return e.round }

// Config implements Engine.
func (e *CliqueSampled) Config() colorcfg.Config { return e.cfg.Clone() }

// Step implements Engine: every agent draws h colors from c/n and applies
// the rule; the new counts are the sum of per-worker tallies. Steady-state
// cost is O(n·h) alias draws and zero allocations.
func (e *CliqueSampled) Step(_ *rng.Rand) {
	began := obs.Began(e.obs)
	e.alias.ResetCounts(e.cfg)
	if e.pool == nil {
		e.workers[0].run(e.rule, e.alias)
	} else {
		e.pool.step()
	}
	clear(e.cfg)
	for _, w := range e.workers {
		for j, v := range w.tally {
			e.cfg[j] += v
		}
	}
	e.round++
	observeEnd(e.obs, began, e.round, e.n, e.cfg)
}

// SetObserver implements Observable.
func (e *CliqueSampled) SetObserver(o obs.Observer) { e.obs = o }

// run processes the worker's agent shard. Samples are drawn in batches with
// SampleMany — one tight loop over the alias table — and then consumed h at
// a time by the rule, which amortizes per-draw call overhead.
func (w *sampledWorker) run(rule dynamics.Rule, alias *dist.Alias) {
	clear(w.tally)
	h := rule.SampleSize()
	perBatch := int64(len(w.buf) / h)
	for v := w.from; v < w.to; {
		m := min(perBatch, w.to-v)
		batch := w.buf[:int(m)*h]
		alias.SampleMany(w.r, batch)
		for i := 0; i < int(m); i++ {
			w.tally[rule.Apply(batch[i*h:(i+1)*h], w.r)]++
		}
		v += m
	}
}

// Repaint implements Engine.
func (e *CliqueSampled) Repaint(from, to Color, m int64) int64 {
	return repaintCounts(e.cfg, from, to, m)
}
