package engine

import (
	"runtime"
	"sync"
)

// workerPool runs a fixed set of closures on persistent goroutines, one per
// worker. The multi-worker engines used to spawn fresh goroutines and a
// `done` channel every Step, which cost one closure allocation per worker
// per round; the pool instead parks each worker on a pre-allocated request
// channel, so a steady-state step() is 0 allocs/op: a WaitGroup Add/Wait
// pair and len(workers) empty-struct channel sends.
//
// Pool goroutines capture only their closure and channel — never the owning
// engine — so an abandoned engine stays collectable; engines attach a
// runtime.AddCleanup that calls shutdown when they become unreachable, and
// expose Close for deterministic teardown.
type workerPool struct {
	wg   sync.WaitGroup
	reqs []chan struct{}
	stop sync.Once
}

// newWorkerPool starts one goroutine per closure. The closures must be safe
// to run concurrently with one another (they are never run concurrently with
// themselves: step waits for all workers before returning).
func newWorkerPool(fns []func()) *workerPool {
	p := &workerPool{reqs: make([]chan struct{}, len(fns))}
	for i, fn := range fns {
		ch := make(chan struct{}, 1)
		p.reqs[i] = ch
		go func(fn func(), ch <-chan struct{}) {
			for range ch {
				fn()
				p.wg.Done()
			}
		}(fn, ch)
	}
	return p
}

// step runs every worker once and waits for all of them.
func (p *workerPool) step() {
	p.wg.Add(len(p.reqs))
	for _, ch := range p.reqs {
		ch <- struct{}{}
	}
	p.wg.Wait()
}

// shutdown terminates the worker goroutines. Idempotent; the pool must not
// be stepped afterwards.
func (p *workerPool) shutdown() {
	p.stop.Do(func() {
		for _, ch := range p.reqs {
			close(ch)
		}
	})
}

// attachPool spawns a persistent pool for fns and ties its shutdown to the
// owning engine's lifetime via runtime.AddCleanup, so abandoned engines do
// not leak parked goroutines. The fns must not capture the owner (or the
// cleanup never fires); the owner should also expose Close for
// deterministic teardown.
func attachPool[E any](owner *E, fns []func()) *workerPool {
	p := newWorkerPool(fns)
	runtime.AddCleanup(owner, func(p *workerPool) { p.shutdown() }, p)
	return p
}

// sampleBatchDraws is the target number of alias draws per SampleMany batch
// in the agent-sampling engines: large enough to amortize per-call overhead
// and keep the alias table hot in cache, small enough that per-worker sample
// buffers stay a few KiB.
const sampleBatchDraws = 1024

// shardRange returns the [from, to) agent range of worker w out of
// `workers` when n agents are split into near-equal contiguous chunks (the
// last worker absorbs the remainder).
func shardRange(n int64, workers, w int) (from, to int64) {
	chunk := n / int64(workers)
	from = int64(w) * chunk
	to = from + chunk
	if w == workers-1 {
		to = n
	}
	return from, to
}

// batchBufLen sizes a worker's sample buffer: a whole multiple of the
// rule's sample size h targeting sampleBatchDraws draws, capped at the
// shard's total demand so tiny shards don't over-allocate.
func batchBufLen(h int, shard int64) int {
	batchAgents := max(int64(1), int64(sampleBatchDraws/h))
	if shard < batchAgents {
		batchAgents = shard
	}
	return int(batchAgents) * h
}

// paddedTallies carves per-worker int64 tally slices out of one backing
// array with at least a full cache line (64 bytes = 8 int64s) of separation
// between consecutive workers' regions, so concurrent tally writes never
// false-share a cache line.
func paddedTallies(workers, k int) [][]int64 {
	stride := (k+7)&^7 + 8
	backing := make([]int64, stride*workers)
	out := make([][]int64, workers)
	for w := range out {
		base := w * stride
		out[w] = backing[base : base+k : base+k]
	}
	return out
}
