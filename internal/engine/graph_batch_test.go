package engine

import (
	"slices"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/rng"
	"plurality/internal/topo"
)

// TestGraphBatchMatchesSerialBytes pins the tentpole's safety claim: for a
// rand-free rule under the default sampler, the batched two-pass loops
// consume the rng exactly like the legacy per-vertex loops, so the same
// (structure, seed, workers) triple yields byte-identical runs whichever
// plan executes. The serial engine is forced in-package by clearing
// loop.batch before the first Step; a golden can only pin the batched
// bytes, this test proves they equal the pre-rewrite serial bytes on
// every structural class.
func TestGraphBatchMatchesSerialBytes(t *testing.T) {
	const n = 900
	gnp, err := topo.Build("gnp:0.008", n, rng.New(41)) // skewed degrees, isolated vertices likely
	if err != nil {
		t.Fatal(err)
	}
	torus, err := topo.BuildSource("torus:3", 512, nil, topo.BuildOpts{Mode: topo.ModeImplicit})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		src  topo.NeighborSource
		n    int64
		rule dynamics.Rule
	}{
		// Uniform-degree flat: FillUniform + bucketed resolve vs serial.
		{"regular6-3majority", topo.RandomRegular("regular:6", n, 6, rng.New(31)), n, dynamics.ThreeMajority{}},
		// Skewed-degree flat: fillFlatExact (hoisted Lemire) vs serial.
		{"gnp-3majority", gnp, n, dynamics.ThreeMajority{}},
		// Non-fast3 batched apply (Median is rand-free, h=3, no fused kernel).
		{"regular6-median", topo.RandomRegular("regular:6", n, 6, rng.New(31)), n, dynamics.Median{}},
		// Generic source (no FlatRows): runGenericBatch over SampleNeighbor.
		{"opaque-regular6-3majority", hiddenCSR{topo.RandomRegular("regular:6", n, 6, rng.New(31))}, n, dynamics.ThreeMajority{}},
		// Implicit functional source.
		{"torus-implicit-3majority", torus, 512, dynamics.ThreeMajority{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			init := colorcfg.Biased(tc.n, 4, tc.n/8)
			for _, workers := range []int{1, 3} {
				batched := NewGraphEngine(tc.rule, tc.src, init, workers, 77, rng.New(5))
				serial := NewGraphEngine(tc.rule, tc.src, init, workers, 77, rng.New(5))
				if !batched.loop.batch {
					t.Fatalf("workers=%d: rand-free rule did not select the batched plan", workers)
				}
				serial.loop.batch = false // force the legacy per-vertex loops
				for round := 0; round < 12; round++ {
					batched.Step(nil)
					serial.Step(nil)
					if !batched.Config().Equal(serial.Config()) {
						t.Fatalf("workers=%d round %d: configs diverged: %v vs %v",
							workers, round, batched.Config(), serial.Config())
					}
					if !slices.Equal(batched.Colors(), serial.Colors()) {
						t.Fatalf("workers=%d round %d: per-vertex colors diverged", workers, round)
					}
				}
				batched.Close()
				serial.Close()
			}
		})
	}
}

// TestGraphBatchSamplerDeterministic pins the relaxed discipline's own
// guarantees: a sampler=batch run is reproducible for a fixed (seed,
// workers) pair, advertises itself in the engine name, and actually
// diverges from the default discipline (if the two streams coincided the
// mode would be pointless and its golden would not certify anything).
func TestGraphBatchSamplerDeterministic(t *testing.T) {
	const n = 900
	csr := topo.RandomRegular("regular:6", n, 6, rng.New(31))
	init := colorcfg.Biased(n, 4, n/8)
	rule := dynamics.ThreeMajority{UniformTie: true} // consumes rng in Apply
	mk := func(s Sampler) *GraphEngine {
		return NewGraphEngineOpts(rule, csr, init, 2, 77, rng.New(5), GraphOpts{Sampler: s})
	}
	a, b, def := mk(SamplerBatch), mk(SamplerBatch), mk(SamplerDefault)
	defer a.Close()
	defer b.Close()
	defer def.Close()
	if a.Name() == def.Name() {
		t.Errorf("batch engine name %q does not distinguish the sampler", a.Name())
	}
	diverged := false
	for round := 0; round < 12; round++ {
		a.Step(nil)
		b.Step(nil)
		def.Step(nil)
		if !slices.Equal(a.Colors(), b.Colors()) {
			t.Fatalf("round %d: identical batch runs diverged", round)
		}
		if err := a.Config().Validate(n); err != nil {
			t.Fatalf("round %d: conservation violated: %v", round, err)
		}
		if !slices.Equal(a.Colors(), def.Colors()) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("batch sampler never diverged from the default discipline")
	}
}

// TestGraphColorsSnapshot pins the Colors/AppendColors contract: Colors is
// a live view invalidated by the next Step (the swap turns it into scratch),
// while AppendColors is a caller-owned snapshot that keeps describing the
// round it was taken at.
func TestGraphColorsSnapshot(t *testing.T) {
	const n, k = 2000, 4
	csr := topo.RandomRegular("regular:6", n, 6, rng.New(31))
	e := NewGraphEngine(dynamics.ThreeMajority{}, csr, colorcfg.Biased(n, k, 300), 2, 77, rng.New(5))
	defer e.Close()
	e.Step(nil)

	cfgBefore := e.Config()
	live := e.Colors()
	snap := e.AppendColors(nil)
	if !slices.Equal(snap, live) {
		t.Fatal("AppendColors disagrees with Colors at the same round")
	}
	e.Step(nil)
	// The snapshot still tallies to the pre-step configuration; the live
	// view now aliases the engine's current buffer.
	if got := colorcfg.FromAgents(snap, k); !got.Equal(cfgBefore) {
		t.Errorf("snapshot drifted after Step: tallies to %v, want %v", got, cfgBefore)
	}
	if got := colorcfg.FromAgents(e.Colors(), k); !got.Equal(e.Config()) {
		t.Errorf("live view out of sync with Config: %v vs %v", got, e.Config())
	}
	// AppendColors appends rather than overwrites.
	both := e.AppendColors(snap)
	if len(both) != 2*n || !slices.Equal(both[:n], snap[:n]) {
		t.Error("AppendColors does not append to dst")
	}
}
