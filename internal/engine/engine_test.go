package engine

import (
	"math"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/rng"
)

// runToMono advances an engine until monochromatic or maxRounds.
func runToMono(t *testing.T, e Engine, r *rng.Rand, maxRounds int) (colorcfg.Config, bool) {
	t.Helper()
	for i := 0; i < maxRounds; i++ {
		c := e.Config()
		if c.IsMonochromatic() {
			return c, true
		}
		e.Step(r)
	}
	return e.Config(), e.Config().IsMonochromatic()
}

func TestCliqueMultinomialConservesN(t *testing.T) {
	r := rng.New(1)
	e := NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.Biased(10000, 5, 500))
	for i := 0; i < 50; i++ {
		e.Step(r)
		if err := e.Config().Validate(10000); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if e.Round() != 50 {
		t.Fatalf("Round() = %d", e.Round())
	}
}

func TestCliqueMultinomialConvergesWithBias(t *testing.T) {
	// Corollary 3 regime: constant λ, s >> sqrt(n log n) -> converges to
	// the plurality color in O(log n) rounds.
	r := rng.New(2)
	init := colorcfg.Biased(100000, 4, 8000)
	e := NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	final, mono := runToMono(t, e, r, 200)
	if !mono {
		t.Fatalf("did not converge in 200 rounds: %v", final)
	}
	if final.Plurality() != 0 {
		t.Fatalf("converged to color %d, want 0", final.Plurality())
	}
	if e.Round() > 100 {
		t.Errorf("took %d rounds, expected O(log n) ~ tens", e.Round())
	}
}

func TestCliqueMultinomialRejectsNoProbModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rule without ProbModel")
		}
	}()
	NewCliqueMultinomial(dynamics.NewHPlurality(5), colorcfg.Biased(100, 2, 10))
}

func TestCliqueMultinomialRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty config")
		}
	}()
	NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.New(3))
}

func TestCliqueSampledConservesN(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := rng.New(3)
		e := NewCliqueSampled(dynamics.ThreeMajority{}, colorcfg.Biased(5000, 4, 300), workers, 99)
		for i := 0; i < 30; i++ {
			e.Step(r)
			if err := e.Config().Validate(5000); err != nil {
				t.Fatalf("workers=%d round %d: %v", workers, i, err)
			}
		}
	}
}

func TestCliqueSampledDeterministicGivenSeed(t *testing.T) {
	run := func() colorcfg.Config {
		r := rng.New(7)
		e := NewCliqueSampled(dynamics.ThreeMajority{}, colorcfg.Biased(2000, 3, 100), 4, 123)
		for i := 0; i < 10; i++ {
			e.Step(r)
		}
		return e.Config()
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatalf("same seed, different outcomes: %v vs %v", a, b)
	}
}

func TestCliqueSampledConvergesWithBias(t *testing.T) {
	r := rng.New(4)
	e := NewCliqueSampled(dynamics.ThreeMajority{}, colorcfg.Biased(20000, 4, 3000), 4, 5)
	final, mono := runToMono(t, e, r, 300)
	if !mono || final.Plurality() != 0 {
		t.Fatalf("sampled engine failed to converge to plurality: %v (mono=%v)", final, mono)
	}
}

// TestEnginesAgreeOnDrift is the core cross-validation: after one round
// from the same configuration, the empirical mean of each engine's counts
// must match Lemma 1's µ within Monte-Carlo error.
func TestEnginesAgreeOnDrift(t *testing.T) {
	init := colorcfg.FromCounts(500, 300, 200)
	n := init.N()
	rule := dynamics.ThreeMajority{}

	mu := make([]float64, 3) // Lemma 1 expectation
	probs := make([]float64, 3)
	rule.AdoptionProbs(init, probs)
	for j := range mu {
		mu[j] = probs[j] * float64(n)
	}

	const reps = 3000
	check := func(name string, mean []float64) {
		for j := range mu {
			// sd of one count <= sqrt(n)/2; se of mean over reps.
			se := math.Sqrt(float64(n)) / math.Sqrt(reps)
			if math.Abs(mean[j]-mu[j]) > 6*se {
				t.Errorf("%s color %d: mean %v, lemma1 %v (se %v)", name, j, mean[j], mu[j], se)
			}
		}
	}

	// Multinomial engine.
	{
		r := rng.New(10)
		mean := make([]float64, 3)
		for i := 0; i < reps; i++ {
			e := NewCliqueMultinomial(rule, init)
			e.Step(r)
			for j, v := range e.Config() {
				mean[j] += float64(v) / reps
			}
		}
		check("multinomial", mean)
	}
	// Sampled engine.
	{
		mean := make([]float64, 3)
		for i := 0; i < reps; i++ {
			e := NewCliqueSampled(rule, init, 1, uint64(1000+i))
			e.Step(nil)
			for j, v := range e.Config() {
				mean[j] += float64(v) / reps
			}
		}
		check("sampled", mean)
	}
}

func TestRepaintCounts(t *testing.T) {
	e := NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.FromCounts(10, 5, 0))
	if moved := e.Repaint(0, 2, 3); moved != 3 {
		t.Fatalf("moved %d, want 3", moved)
	}
	c := e.Config()
	if c[0] != 7 || c[2] != 3 {
		t.Fatalf("after repaint: %v", c)
	}
	// More than available.
	if moved := e.Repaint(1, 0, 100); moved != 5 {
		t.Fatalf("moved %d, want 5", moved)
	}
	// No-ops.
	if e.Repaint(0, 0, 10) != 0 || e.Repaint(1, 2, 0) != 0 {
		t.Fatal("no-op repaint moved agents")
	}
	if err := e.Config().Validate(15); err != nil {
		t.Fatal(err)
	}
}

func TestRepaintPanicsOutOfRange(t *testing.T) {
	e := NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.FromCounts(5, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Repaint(0, 7, 1)
}

func TestMonochromaticIsAbsorbing(t *testing.T) {
	// Definition 1 implies monochromatic configurations are absorbing for
	// every engine realizing a dynamics.
	r := rng.New(11)
	mono := colorcfg.FromCounts(0, 1000, 0)
	engines := []Engine{
		NewCliqueMultinomial(dynamics.ThreeMajority{}, mono),
		NewCliqueSampled(dynamics.NewHPlurality(5), mono, 2, 1),
		NewPopulation(dynamics.ThreeMajority{}, mono),
	}
	for _, e := range engines {
		for i := 0; i < 5; i++ {
			e.Step(r)
		}
		c := e.Config()
		if !c.IsMonochromatic() || c[1] != 1000 {
			t.Errorf("%s: monochromatic state not absorbing: %v", e.Name(), c)
		}
	}
}

func TestPopulationConservesAndConverges(t *testing.T) {
	r := rng.New(12)
	e := NewPopulation(dynamics.ThreeMajority{}, colorcfg.Biased(2000, 3, 600))
	for i := 0; i < 20; i++ {
		e.Step(r)
		if err := e.Config().Validate(2000); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	final, mono := runToMono(t, e, r, 300)
	if !mono || final.Plurality() != 0 {
		t.Fatalf("population engine: mono=%v cfg=%v", mono, final)
	}
}

func TestPopulationRepaint(t *testing.T) {
	e := NewPopulation(dynamics.Polling{}, colorcfg.FromCounts(8, 2))
	if moved := e.Repaint(0, 1, 3); moved != 3 {
		t.Fatalf("moved %d", moved)
	}
	if c := e.Config(); c[0] != 5 || c[1] != 5 {
		t.Fatalf("after repaint %v", c)
	}
}

func TestEngineNames(t *testing.T) {
	init := colorcfg.Biased(100, 2, 10)
	for _, e := range []Engine{
		NewCliqueMultinomial(dynamics.ThreeMajority{}, init),
		NewCliqueSampled(dynamics.ThreeMajority{}, init, 2, 1),
		NewPopulation(dynamics.ThreeMajority{}, init),
		NewUndecidedExact(init),
		NewUndecidedPopulation(init),
	} {
		if e.Name() == "" {
			t.Errorf("%T has empty name", e)
		}
		if e.N() != 100 || e.K() != 2 {
			t.Errorf("%s: N=%d K=%d", e.Name(), e.N(), e.K())
		}
	}
}
