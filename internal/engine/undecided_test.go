package engine

import (
	"math"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/rng"
)

func undecidedTotal(e *UndecidedExact) int64 {
	return e.Config().N() + e.UndecidedCount()
}

func TestUndecidedExactConservesN(t *testing.T) {
	r := rng.New(1)
	e := NewUndecidedExact(colorcfg.Biased(10000, 5, 1000))
	for i := 0; i < 100; i++ {
		e.Step(r)
		if undecidedTotal(e) != 10000 {
			t.Fatalf("round %d: colored %d + undecided %d != 10000",
				i, e.Config().N(), e.UndecidedCount())
		}
		if e.UndecidedCount() < 0 {
			t.Fatalf("negative undecided count")
		}
	}
}

func TestUndecidedExactConvergesWithMultiplicativeBias(t *testing.T) {
	// SODA'15 regime: constant multiplicative bias, small md(c) ->
	// convergence to the plurality in O(md * log n) rounds.
	r := rng.New(2)
	init := colorcfg.FromCounts(6000, 3000, 1000)
	e := NewUndecidedExact(init)
	var final colorcfg.Config
	converged := false
	for i := 0; i < 500; i++ {
		e.Step(r)
		c := e.Config()
		if c.IsMonochromatic() && c.N() == 10000 {
			final = c
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("undecided dynamics did not converge; cfg=%v undecided=%d",
			e.Config(), e.UndecidedCount())
	}
	if final.Plurality() != 0 {
		t.Fatalf("converged to %d, want plurality 0", final.Plurality())
	}
	if e.Round() > 200 {
		t.Errorf("took %d rounds, expected fast convergence", e.Round())
	}
}

func TestUndecidedExactMonochromaticAbsorbing(t *testing.T) {
	r := rng.New(3)
	e := NewUndecidedExact(colorcfg.FromCounts(0, 500))
	for i := 0; i < 10; i++ {
		e.Step(r)
	}
	c := e.Config()
	if c[1] != 500 || e.UndecidedCount() != 0 {
		t.Fatalf("monochromatic not absorbing: %v undecided=%d", c, e.UndecidedCount())
	}
}

func TestUndecidedExactDriftOneRound(t *testing.T) {
	// One-round expectations from the pull rule, starting fully colored
	// (q = 0): E[c'_j] = c_j·(c_j/n) + 0 (no undecided to recruit) ... plus
	// survivors: stay prob = c_j/n. So E[c'_j] = c_j²/n and
	// E[q'] = n - Σ c_j²/n.
	init := colorcfg.FromCounts(600, 400)
	n := float64(init.N())
	const reps = 4000
	meanC := make([]float64, 2)
	meanQ := 0.0
	for i := 0; i < reps; i++ {
		e := NewUndecidedExact(init)
		e.Step(rng.New(uint64(i)))
		c := e.Config()
		for j := range meanC {
			meanC[j] += float64(c[j]) / reps
		}
		meanQ += float64(e.UndecidedCount()) / reps
	}
	se := math.Sqrt(n) / math.Sqrt(reps) * 3
	wantQ := n
	for j, cj := range init {
		want := float64(cj) * float64(cj) / n
		wantQ -= want
		if math.Abs(meanC[j]-want) > 6*se {
			t.Errorf("color %d: mean %v, want %v", j, meanC[j], want)
		}
	}
	if math.Abs(meanQ-wantQ) > 6*se {
		t.Errorf("undecided: mean %v, want %v", meanQ, wantQ)
	}
}

func TestUndecidedExactPluralityDeathAtHugeK(t *testing.T) {
	// Section 3 of SODA'15 (cited in related work): for k = ω(sqrt n) there
	// are configurations where the plurality dies quickly. With k = n/2
	// colors each supported by 2 agents, after one round most agents are
	// undecided and the "plurality" (any fixed color) usually vanishes
	// within a few rounds.
	r := rng.New(4)
	n := int64(10000)
	k := int(n / 2)
	init := colorcfg.Balanced(n, k) // 2 agents per color
	init[0]++                       // tiny plurality
	init[k-1]--
	e := NewUndecidedExact(init)
	died := false
	for i := 0; i < 10; i++ {
		e.Step(r)
		if e.Config()[0] == 0 {
			died = true
			break
		}
	}
	if !died {
		t.Errorf("plurality color survived 10 rounds with k=n/2; c0=%d", e.Config()[0])
	}
}

func TestUndecidedPopulationConservesN(t *testing.T) {
	r := rng.New(5)
	e := NewUndecidedPopulation(colorcfg.Biased(2000, 3, 400))
	for i := 0; i < 20; i++ {
		e.Step(r)
		if e.Config().N()+e.UndecidedCount() != 2000 {
			t.Fatalf("round %d: leaked agents", i)
		}
	}
}

func TestUndecidedPopulationConverges(t *testing.T) {
	r := rng.New(6)
	e := NewUndecidedPopulation(colorcfg.FromCounts(1200, 600, 200))
	converged := false
	for i := 0; i < 400; i++ {
		e.Step(r)
		c := e.Config()
		if c.N() == 2000 && c.IsMonochromatic() {
			converged = true
			if c.Plurality() != 0 {
				t.Fatalf("population undecided converged to %d", c.Plurality())
			}
			break
		}
	}
	if !converged {
		t.Fatal("population undecided did not converge in 400 rounds")
	}
}

func TestUndecidedPopulationMicroStepInvariants(t *testing.T) {
	r := rng.New(7)
	e := NewUndecidedPopulation(colorcfg.FromCounts(5, 5))
	for i := 0; i < 10000; i++ {
		e.MicroStep(r)
		c := e.Config()
		if c.N()+e.UndecidedCount() != 10 {
			t.Fatalf("microstep %d broke conservation", i)
		}
		if c[0] < 0 || c[1] < 0 || e.UndecidedCount() < 0 {
			t.Fatalf("negative count at microstep %d", i)
		}
	}
}

func TestUndecidedRepaint(t *testing.T) {
	e := NewUndecidedExact(colorcfg.FromCounts(10, 10))
	if moved := e.Repaint(0, 1, 4); moved != 4 {
		t.Fatalf("moved %d", moved)
	}
	ep := NewUndecidedPopulation(colorcfg.FromCounts(10, 10))
	if moved := ep.Repaint(1, 0, 3); moved != 3 {
		t.Fatalf("population moved %d", moved)
	}
	if c := ep.Config(); c[0] != 13 || c[1] != 7 {
		t.Fatalf("population after repaint: %v", c)
	}
}

func TestUndecidedConstructorsPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"exact":      func() { NewUndecidedExact(colorcfg.New(3)) },
		"population": func() { NewUndecidedPopulation(colorcfg.FromCounts(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
