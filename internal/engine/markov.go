package engine

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dist"
	"plurality/internal/dynamics"
	"plurality/internal/obs"
	"plurality/internal/rng"
)

// CliqueMarkov is the exact configuration-level engine for *stateful*
// rules (dynamics.StatefulRule / TransitionModel), whose update depends on
// the agent's own color: agents of each source color j transition
// independently with the row distribution TransitionProbs(c, j, ·), so
//
//	C(t+1) = Σ_j Multinomial(c_j, P(j → ·)),
//
// a sum of k independent multinomials. O(k²) per round, exact.
// It cross-validates against CliqueMultinomial when the rule ignores its
// own color (dynamics.ThreeMajorityKeepOwn).
type CliqueMarkov struct {
	rule  dynamics.StatefulRule
	model dynamics.TransitionModel
	cfg   colorcfg.Config
	n     int64
	round int
	row   []float64
	draw  []int64
	next  []int64
	obs   obs.Observer
}

// NewCliqueMarkov builds the engine; the rule must implement
// dynamics.TransitionModel.
func NewCliqueMarkov(rule dynamics.StatefulRule, initial colorcfg.Config) *CliqueMarkov {
	model, ok := rule.(dynamics.TransitionModel)
	if !ok {
		panic(fmt.Sprintf("engine: stateful rule %q has no TransitionModel", rule.Name()))
	}
	n := initial.N()
	if n <= 0 {
		panic("engine: empty initial configuration")
	}
	k := initial.K()
	return &CliqueMarkov{
		rule:  rule,
		model: model,
		cfg:   initial.Clone(),
		n:     n,
		row:   make([]float64, k),
		draw:  make([]int64, k),
		next:  make([]int64, k),
	}
}

// Name implements Engine.
func (e *CliqueMarkov) Name() string {
	return fmt.Sprintf("clique-markov[%s]", e.rule.Name())
}

// N implements Engine.
func (e *CliqueMarkov) N() int64 { return e.n }

// K implements Engine.
func (e *CliqueMarkov) K() int { return e.cfg.K() }

// Round implements Engine.
func (e *CliqueMarkov) Round() int { return e.round }

// Config implements Engine.
func (e *CliqueMarkov) Config() colorcfg.Config { return e.cfg.Clone() }

// Step implements Engine.
func (e *CliqueMarkov) Step(r *rng.Rand) {
	began := obs.Began(e.obs)
	clear(e.next)
	for j, cj := range e.cfg {
		if cj == 0 {
			continue
		}
		e.model.TransitionProbs(e.cfg, Color(j), e.row)
		dist.Multinomial(r, cj, e.row, e.draw)
		for h, v := range e.draw {
			e.next[h] += v
		}
	}
	copy(e.cfg, e.next)
	e.round++
	observeEnd(e.obs, began, e.round, e.n, e.cfg)
}

// SetObserver implements Observable.
func (e *CliqueMarkov) SetObserver(o obs.Observer) { e.obs = o }

// Repaint implements Engine.
func (e *CliqueMarkov) Repaint(from, to Color, m int64) int64 {
	return repaintCounts(e.cfg, from, to, m)
}

// Close implements Engine (no worker goroutines; no-op).
func (e *CliqueMarkov) Close() {}
