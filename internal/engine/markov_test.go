package engine

import (
	"math"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/rng"
)

func TestCliqueMarkovConservesN(t *testing.T) {
	r := rng.New(1)
	e := NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, colorcfg.Biased(10000, 5, 2000))
	for i := 0; i < 50; i++ {
		e.Step(r)
		if err := e.Config().Validate(10000); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if e.Round() != 50 {
		t.Fatalf("round = %d", e.Round())
	}
}

func TestCliqueMarkovMatchesMultinomialForAnonymousRule(t *testing.T) {
	// ThreeMajorityKeepOwn ignores the own color, so the Markov engine's
	// one-round mean must equal Lemma 1's µ.
	init := colorcfg.FromCounts(500, 300, 200)
	mu := make([]float64, 3)
	dynamics.ThreeMajority{}.AdoptionProbs(init, mu)
	n := float64(init.N())
	const reps = 3000
	mean := make([]float64, 3)
	r := rng.New(2)
	for i := 0; i < reps; i++ {
		e := NewCliqueMarkov(dynamics.ThreeMajorityKeepOwn{}, init)
		e.Step(r)
		for j, v := range e.Config() {
			mean[j] += float64(v) / reps
		}
	}
	for j := range mu {
		want := mu[j] * n
		se := math.Sqrt(n) / math.Sqrt(reps) * 2
		if math.Abs(mean[j]-want) > 6*se {
			t.Errorf("color %d: markov mean %v, lemma1 %v", j, mean[j], want)
		}
	}
}

func TestTwoChoicesKeepOwnDrift(t *testing.T) {
	// E[C'_j] = c_j + (n - c_j)(c_j/n)² - c_j·Σ_{h≠j}(c_h/n)².
	init := colorcfg.FromCounts(600, 400)
	n := float64(init.N())
	p0 := 0.6 * 0.6
	p1 := 0.4 * 0.4
	want0 := 600 + 400*p0 - 600*p1
	const reps = 4000
	mean0 := 0.0
	r := rng.New(3)
	for i := 0; i < reps; i++ {
		e := NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, init)
		e.Step(r)
		mean0 += float64(e.Config()[0]) / reps
	}
	se := math.Sqrt(n) / math.Sqrt(reps) * 2
	if math.Abs(mean0-want0) > 6*se {
		t.Errorf("keep-own drift: mean %v, want %v", mean0, want0)
	}
}

func TestTwoChoicesKeepOwnConvergesBinary(t *testing.T) {
	// k=2 with bias sqrt(n log n): converges to the majority w.h.p. in
	// O(log n) rounds (Cooper et al. / Doerr et al. two-choices result).
	r := rng.New(4)
	n := int64(100000)
	s := int64(math.Sqrt(float64(n)*math.Log(float64(n))) * 2)
	wins := 0
	for rep := 0; rep < 10; rep++ {
		e := NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, colorcfg.Biased(n, 2, s))
		rounds := 0
		for !e.Config().IsMonochromatic() && rounds < 10000 {
			e.Step(r)
			rounds++
		}
		if e.Config().IsMonochromatic() && e.Config().Plurality() == 0 {
			wins++
		}
		if rounds > 500 {
			t.Errorf("rep %d: took %d rounds, expected O(log n)", rep, rounds)
		}
	}
	if wins < 9 {
		t.Errorf("keep-own won only %d/10 from biased binary start", wins)
	}
}

func TestTwoChoicesKeepOwnRowsSumToOne(t *testing.T) {
	c := colorcfg.FromCounts(17, 29, 54, 0, 100)
	row := make([]float64, 5)
	for j := 0; j < 5; j++ {
		dynamics.TwoChoicesKeepOwn{}.TransitionProbs(c, colorcfg.Color(j), row)
		sum := 0.0
		for _, p := range row {
			if p < 0 || p > 1 {
				t.Fatalf("row %d has invalid prob %v", j, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", j, sum)
		}
	}
}

func TestTwoChoicesKeepOwnApply(t *testing.T) {
	r := rng.New(5)
	rule := dynamics.TwoChoicesKeepOwn{}
	if got := rule.ApplyOwn(7, []colorcfg.Color{3, 3}, r); got != 3 {
		t.Errorf("agreeing samples: got %d", got)
	}
	if got := rule.ApplyOwn(7, []colorcfg.Color{3, 4}, r); got != 7 {
		t.Errorf("disagreeing samples must keep own: got %d", got)
	}
}

func TestCliqueMarkovMonochromaticAbsorbing(t *testing.T) {
	r := rng.New(6)
	e := NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, colorcfg.FromCounts(0, 500, 0))
	for i := 0; i < 5; i++ {
		e.Step(r)
	}
	if c := e.Config(); c[1] != 500 {
		t.Fatalf("monochromatic not absorbing: %v", c)
	}
}

func TestCliqueMarkovRepaintAndPanics(t *testing.T) {
	e := NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, colorcfg.FromCounts(10, 5))
	if moved := e.Repaint(0, 1, 3); moved != 3 {
		t.Fatalf("moved %d", moved)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty config")
		}
	}()
	NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, colorcfg.New(2))
}

type noModelRule struct{}

func (noModelRule) Name() string    { return "no-model" }
func (noModelRule) SampleSize() int { return 2 }
func (noModelRule) ApplyOwn(own colorcfg.Color, _ []colorcfg.Color, _ *rng.Rand) colorcfg.Color {
	return own
}

func TestCliqueMarkovRejectsRuleWithoutModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCliqueMarkov(noModelRule{}, colorcfg.FromCounts(5, 5))
}
