package engine

import (
	"math"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/graph"
	"plurality/internal/rng"
)

func TestGraphEngineCliqueConservesN(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := rng.New(1)
		g := graph.NewComplete(3000)
		e := NewGraphEngine(dynamics.ThreeMajority{}, g, colorcfg.Biased(3000, 4, 200), workers, 77, rng.New(5))
		for i := 0; i < 20; i++ {
			e.Step(r)
			if err := e.Config().Validate(3000); err != nil {
				t.Fatalf("workers=%d round %d: %v", workers, i, err)
			}
			// The tallied config must match a recount of the agent array.
			recount := colorcfg.FromAgents(e.Colors(), 4)
			if !recount.Equal(e.Config()) {
				t.Fatalf("tally drifted from agents at round %d", i)
			}
		}
	}
}

func TestGraphEngineCliqueMatchesLemma1Drift(t *testing.T) {
	// One round on graph.Complete(+self) must have the Lemma 1 expectation.
	init := colorcfg.FromCounts(400, 350, 250)
	n := init.N()
	rule := dynamics.ThreeMajority{}
	probs := make([]float64, 3)
	rule.AdoptionProbs(init, probs)

	const reps = 2000
	mean := make([]float64, 3)
	for i := 0; i < reps; i++ {
		g := graph.NewComplete(n)
		e := NewGraphEngine(rule, g, init, 2, uint64(i), nil)
		e.Step(nil)
		for j, v := range e.Config() {
			mean[j] += float64(v) / reps
		}
	}
	for j := range probs {
		want := probs[j] * float64(n)
		se := math.Sqrt(float64(n)) / math.Sqrt(reps)
		if math.Abs(mean[j]-want) > 6*se {
			t.Errorf("color %d: graph-engine mean %v, lemma1 %v", j, mean[j], want)
		}
	}
}

func TestGraphEngineConvergesOnClique(t *testing.T) {
	r := rng.New(2)
	n := int64(10000)
	g := graph.NewComplete(n)
	e := NewGraphEngine(dynamics.ThreeMajority{}, g, colorcfg.Biased(n, 3, 1500), 4, 42, rng.New(1))
	for i := 0; i < 300 && !e.Config().IsMonochromatic(); i++ {
		e.Step(r)
	}
	final := e.Config()
	if !final.IsMonochromatic() || final.Plurality() != 0 {
		t.Fatalf("clique graph engine failed: %v", final)
	}
}

func TestGraphEngineDeterministic(t *testing.T) {
	run := func() colorcfg.Config {
		g := graph.NewTorus(20, 20)
		e := NewGraphEngine(dynamics.ThreeMajority{}, g, colorcfg.Biased(400, 3, 60), 3, 9, rng.New(4))
		for i := 0; i < 15; i++ {
			e.Step(nil)
		}
		return e.Config()
	}
	if a, b := run(), run(); !a.Equal(b) {
		t.Fatalf("graph engine not deterministic: %v vs %v", a, b)
	}
}

func TestGraphEngineOnTorusConservesN(t *testing.T) {
	g := graph.NewTorus(10, 10)
	e := NewGraphEngine(dynamics.ThreeMajority{}, g, colorcfg.Biased(100, 2, 30), 1, 3, rng.New(8))
	for i := 0; i < 50; i++ {
		e.Step(nil)
		if err := e.Config().Validate(100); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}

func TestGraphEngineRejectsSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on n mismatch")
		}
	}()
	NewGraphEngine(dynamics.ThreeMajority{}, graph.NewComplete(10), colorcfg.Biased(20, 2, 2), 1, 1, nil)
}

func TestGraphEngineRepaint(t *testing.T) {
	g := graph.NewComplete(100)
	e := NewGraphEngine(dynamics.ThreeMajority{}, g, colorcfg.FromCounts(60, 40), 1, 1, nil)
	if moved := e.Repaint(0, 1, 25); moved != 25 {
		t.Fatalf("moved %d", moved)
	}
	c := e.Config()
	if c[0] != 35 || c[1] != 65 {
		t.Fatalf("after repaint: %v", c)
	}
	recount := colorcfg.FromAgents(e.Colors(), 2)
	if !recount.Equal(c) {
		t.Fatal("repaint desynced tally from agents")
	}
	if e.Repaint(0, 0, 5) != 0 {
		t.Fatal("same-color repaint must be a no-op")
	}
}

func TestGraphEngineStarHubDominance(t *testing.T) {
	// On a star, leaves always sample the hub (h times), so after one
	// round every leaf adopts the hub's color; the hub samples uniform
	// leaves. Start with hub color 0 and all leaves color 1: after one
	// round all leaves are color 0.
	n := int64(101)
	g := graph.NewStar(n)
	// Agents laid out deterministically: color 0 first (vertex 0 = hub).
	init := colorcfg.FromCounts(1, 100)
	e := NewGraphEngine(dynamics.ThreeMajority{}, g, init, 1, 6, nil)
	e.Step(nil)
	c := e.Config()
	if c[0] < 100 {
		t.Fatalf("leaves did not adopt hub color: %v", c)
	}
}

func TestGraphEngineWithoutSelfDriftVanishes(t *testing.T) {
	// Ablation: excluding self from the sample perturbs the drift by
	// O(1/n); at n = 4000 the one-round means should agree within error.
	init := colorcfg.FromCounts(2000, 1200, 800)
	n := init.N()
	rule := dynamics.ThreeMajority{}
	const reps = 800
	meanWith := make([]float64, 3)
	meanWithout := make([]float64, 3)
	for i := 0; i < reps; i++ {
		eWith := NewGraphEngine(rule, graph.NewComplete(n), init, 2, uint64(i), nil)
		eWith.Step(nil)
		eWithout := NewGraphEngine(rule, graph.Complete{Vertices: n, IncludeSelf: false}, init, 2, uint64(i)+500000, nil)
		eWithout.Step(nil)
		for j := range meanWith {
			meanWith[j] += float64(eWith.Config()[j]) / reps
			meanWithout[j] += float64(eWithout.Config()[j]) / reps
		}
	}
	for j := range meanWith {
		se := math.Sqrt(float64(n)) / math.Sqrt(reps) * 2
		if math.Abs(meanWith[j]-meanWithout[j]) > 6*se {
			t.Errorf("color %d: with-self %v vs without-self %v differ beyond noise",
				j, meanWith[j], meanWithout[j])
		}
	}
}
