package engine

import (
	"testing"
	"testing/quick"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/rng"
)

// randomConfig builds a valid random configuration from fuzz bytes.
func randomConfig(raw []uint8, k int) colorcfg.Config {
	c := colorcfg.New(k)
	for i, v := range raw {
		c[i%k] += int64(v) + 1
	}
	if c.N() == 0 {
		c[0] = 1
	}
	return c
}

// TestPropertyConservationAllEngines: for arbitrary configurations and
// arbitrary valid rules, every engine conserves the agent count over
// multiple rounds.
func TestPropertyConservationAllEngines(t *testing.T) {
	r := rng.New(1)
	f := func(raw []uint8, kRaw uint8, ruleSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw%6) + 2
		init := randomConfig(raw, k)
		n := init.N()

		var rule dynamics.Rule
		switch ruleSel % 5 {
		case 0:
			rule = dynamics.ThreeMajority{}
		case 1:
			rule = dynamics.ThreeMajority{UniformTie: true}
		case 2:
			rule = dynamics.Median{}
		case 3:
			rule = dynamics.NewHPlurality(int(ruleSel%7) + 1)
		default:
			rule = dynamics.RuleZoo()[int(ruleSel)%len(dynamics.RuleZoo())]
		}

		engines := []Engine{
			NewCliqueSampled(rule, init, 2, uint64(kRaw)+1),
			NewPopulation(rule, init),
		}
		if _, ok := rule.(dynamics.ProbModel); ok {
			engines = append(engines, NewCliqueMultinomial(rule, init))
		}
		for _, e := range engines {
			for i := 0; i < 3; i++ {
				e.Step(r)
				if e.Config().Validate(n) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRandomTableRulesStayValid: arbitrary rainbow tables define
// valid members of D3 whose engines conserve mass and whose monochromatic
// states absorb.
func TestPropertyRandomTableRules(t *testing.T) {
	r := rng.New(2)
	f := func(table [6]uint8, raw []uint8) bool {
		for i := range table {
			table[i] %= 3
		}
		rule := &dynamics.PermutationRule{
			RuleName:        "fuzz",
			RainbowTable:    table,
			MajorityOnClear: true,
		}
		// Definition 1 validity.
		if dynamics.Validate(rule, []colorcfg.Color{0, 1, 2, 3, 4}, r, 300) != nil {
			return false
		}
		if len(raw) == 0 {
			return true
		}
		init := randomConfig(raw, 3)
		n := init.N()
		e := NewCliqueSampled(rule, init, 1, 99)
		for i := 0; i < 5; i++ {
			e.Step(r)
			if e.Config().Validate(n) != nil {
				return false
			}
		}
		// Monochromatic absorption.
		mono := colorcfg.FromCounts(0, n, 0)
		em := NewCliqueSampled(rule, mono, 1, 100)
		em.Step(r)
		return em.Config()[1] == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRepaintInverse: repainting m agents from a to b and back
// restores the configuration exactly (when both moves are feasible).
func TestPropertyRepaintInverse(t *testing.T) {
	f := func(raw []uint8, aRaw, bRaw, mRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := 4
		init := randomConfig(raw, k)
		a := colorcfg.Color(aRaw % uint8(k))
		b := colorcfg.Color(bRaw % uint8(k))
		m := int64(mRaw)
		e := NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
		before := e.Config()
		moved := e.Repaint(a, b, m)
		back := e.Repaint(b, a, moved)
		if back != moved {
			return false
		}
		return e.Config().Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUndecidedConservation: the undecided engines conserve
// colored + undecided mass for arbitrary inputs.
func TestPropertyUndecidedConservation(t *testing.T) {
	r := rng.New(3)
	f := func(raw []uint8, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw%5) + 2
		init := randomConfig(raw, k)
		n := init.N()
		if n < 2 {
			return true
		}
		e := NewUndecidedExact(init)
		p := NewUndecidedPopulation(init)
		for i := 0; i < 4; i++ {
			e.Step(r)
			p.Step(r)
			if e.Config().N()+e.UndecidedCount() != n {
				return false
			}
			if p.Config().N()+p.UndecidedCount() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
