package engine

import (
	"io"
	"path/filepath"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dist"
	"plurality/internal/dynamics"
	"plurality/internal/graph"
	"plurality/internal/obs"
	"plurality/internal/rng"
	"plurality/internal/stats"
	"plurality/internal/topo"
)

// TestStepZeroAllocs pins the headline perf property: the steady-state Step
// of every engine allocates nothing, including the multi-worker engines
// (persistent worker pools) and the graph engine on every backend — the
// clique alias path, the flat CSR path, the implicit functional path, and
// the mmap-backed path.
func TestStepZeroAllocs(t *testing.T) {
	r := rng.New(1)
	init := colorcfg.Biased(20_000, 8, 500)

	// The implicit torus samples neighbors functionally — nothing but the
	// color arrays is materialized. n must be an exact cube for torus:3.
	initTorus := colorcfg.Biased(13_824, 8, 500) // 24³
	torus, err := topo.BuildSource("torus:3", 13_824, nil, topo.BuildOpts{Mode: topo.ModeImplicit})
	if err != nil {
		t.Fatal(err)
	}

	// The mmap backend serves the same structure from an on-disk file.
	mmapPath := filepath.Join(t.TempDir(), "regular8.csr")
	mmapSrc, err := topo.BuildSource("regular:8", 20_000, rng.New(2), topo.BuildOpts{Mode: topo.ModeMmap, Path: mmapPath})
	if err != nil {
		t.Fatal(err)
	}
	defer mmapSrc.(io.Closer).Close()

	// A skewed-degree flat graph (gnp) exercises the per-vertex draw loops
	// rather than the uniform-degree bulk kernels.
	gnp, err := topo.Build("gnp:0.0008", 20_000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}

	batch := GraphOpts{Sampler: SamplerBatch}
	cases := map[string]Engine{
		"clique-multinomial": NewCliqueMultinomial(dynamics.ThreeMajority{}, init),
		"clique-markov":      NewCliqueMarkov(dynamics.ThreeMajorityKeepOwn{}, init),
		"clique-sampled-w1":  NewCliqueSampled(dynamics.ThreeMajority{}, init, 1, 7),
		"clique-sampled-w4":  NewCliqueSampled(dynamics.ThreeMajority{}, init, 4, 7),
		"graph-clique-w4": NewGraphEngine(dynamics.ThreeMajority{},
			graph.NewComplete(20_000), init, 4, 11, nil),
		"graph-regular-w4": NewGraphEngine(dynamics.ThreeMajority{},
			graph.NewRandomRegular(20_000, 8, rng.New(2)), init, 4, 11, nil),
		"graph-csr-w4": NewGraphEngine(dynamics.ThreeMajority{},
			topo.RandomRegular("regular:8", 20_000, 8, rng.New(2)), init, 4, 11, nil),
		"graph-implicit-w4": NewGraphEngine(dynamics.ThreeMajority{},
			torus, initTorus, 4, 11, nil),
		"graph-mmap-w4": NewGraphEngine(dynamics.ThreeMajority{},
			mmapSrc, init, 4, 11, nil),
		// Every dispatch row of the rewritten graph loop: the skewed-degree
		// batched path, the serial fallback for an rng-consuming rule, and
		// the relaxed batch sampler on flat, skewed and implicit sources.
		"graph-gnp-w4": NewGraphEngine(dynamics.ThreeMajority{}, gnp, init, 4, 11, nil),
		"graph-csr-utie-serial-w4": NewGraphEngine(dynamics.ThreeMajority{UniformTie: true},
			topo.RandomRegular("regular:8", 20_000, 8, rng.New(2)), init, 4, 11, nil),
		"graph-csr-batch-w4": NewGraphEngineOpts(dynamics.ThreeMajority{},
			topo.RandomRegular("regular:8", 20_000, 8, rng.New(2)), init, 4, 11, nil, batch),
		"graph-csr-utie-batch-w4": NewGraphEngineOpts(dynamics.ThreeMajority{UniformTie: true},
			topo.RandomRegular("regular:8", 20_000, 8, rng.New(2)), init, 4, 11, nil, batch),
		"graph-gnp-batch-w4":      NewGraphEngineOpts(dynamics.ThreeMajority{}, gnp, init, 4, 11, nil, batch),
		"graph-implicit-batch-w4": NewGraphEngineOpts(dynamics.ThreeMajority{}, torus, initTorus, 4, 11, nil, batch),
		"undecided-exact":         NewUndecidedExact(init),
	}
	for name, e := range cases {
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			e.Step(r) // warm up pools, lazy paths
			if a := testing.AllocsPerRun(20, func() { e.Step(r) }); a != 0 {
				t.Errorf("%s: steady-state Step allocates %.1f objects/op, want 0", name, a)
			}
			// Attaching a Recorder must not reintroduce allocations either:
			// the observer call passes the live cfg slice by interface value
			// and the ring is allocated once, on the first observed round
			// (absorbed by the warm-up Step below). MemEvery=1 keeps the
			// ReadMemStats branch inside the measured window.
			rec := &obs.Recorder{Cap: 8, MemEvery: 1}
			if !Observe(e, rec) {
				t.Fatalf("%s: engine is not Observable", name)
			}
			e.Step(r)
			if a := testing.AllocsPerRun(20, func() { e.Step(r) }); a != 0 {
				t.Errorf("%s: observed Step allocates %.1f objects/op, want 0", name, a)
			}
			if rec.Total() < 21 {
				t.Errorf("%s: observer saw %d rounds, want >= 21", name, rec.Total())
			}
		})
	}
}

// TestCloseStopsWorkers exercises explicit worker teardown; stepping after
// Close is forbidden, but Config and Repaint must still work.
func TestCloseStopsWorkers(t *testing.T) {
	init := colorcfg.Biased(1000, 4, 100)
	s := NewCliqueSampled(dynamics.ThreeMajority{}, init, 4, 3)
	s.Step(rng.New(1))
	s.Close()
	s.Close() // idempotent
	if s.Config().N() != 1000 {
		t.Error("Config broken after Close")
	}
	g := NewGraphEngine(dynamics.ThreeMajority{}, graph.NewComplete(1000), init, 4, 3, nil)
	g.Step(nil)
	g.Close()
	g.Close()
	if g.Config().N() != 1000 {
		t.Error("Config broken after Close")
	}
}

// ----- distribution cross-checks (DESIGN.md §5) -----
//
// On the clique with 3-majority, one round from configuration c produces
// C(t+1) ~ Multinomial(n, p(c)) in every engine, so the count of color 0
// after one round is marginally Binomial(n, p_0(c)). Each engine's one-round
// law is chi-square-tested against that exact marginal, which also proves
// the engines agree with one another in distribution.

// chiSquareCrit returns the α=0.001 critical value from the shared GOF
// toolkit (internal/stats).
func chiSquareCrit(df int) float64 {
	return stats.ChiSquareCritical(df, 0.001)
}

// oneRoundColor0 runs reps independent single rounds from init and returns
// the histogram of the color-0 count after the round.
func oneRoundColor0(t *testing.T, init colorcfg.Config, reps int, build func(rep int) Engine) []float64 {
	t.Helper()
	n := init.N()
	obs := make([]float64, n+1)
	for rep := 0; rep < reps; rep++ {
		e := build(rep)
		e.Step(rng.New(uint64(rep)*2654435761 + 1))
		c := e.Config()
		e.Close()
		if c.N() != n {
			t.Fatalf("rep %d: engine %s violated Σc = n: %d", rep, e.Name(), c.N())
		}
		obs[c[0]]++
	}
	return obs
}

func checkBinomialMarginal(t *testing.T, name string, obs []float64, n int64, p0 float64, reps int) {
	t.Helper()
	exp := make([]float64, n+1)
	for x := int64(0); x <= n; x++ {
		exp[x] = dist.BinomialPMF(n, x, p0) * float64(reps)
	}
	stat, df := stats.ChiSquareGOF(obs, exp)
	if df < 1 {
		t.Fatalf("%s: too few usable bins (df=%d)", name, df)
	}
	// α=0.001: each test rejects a correct engine with probability ~1e-3;
	// seeds are fixed so the outcome is deterministic.
	if crit := chiSquareCrit(df); stat > crit {
		t.Errorf("%s: one-round χ² = %.1f > crit %.1f (df=%d)", name, stat, crit, df)
	}
}

// opaqueGraph wraps a Graph so the concrete type is invisible to the
// GraphEngine's clique fast-path type assertion, forcing the literal
// neighbor-sampling path on any topology.
type opaqueGraph struct{ graph.Graph }

func TestEnginesAgreeInDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution cross-check is slow")
	}
	const reps = 6000
	init := colorcfg.Biased(300, 3, 30)
	probs := make([]float64, init.K())
	dynamics.ThreeMajority{}.AdoptionProbs(init, probs)
	p0 := probs[0]

	builds := map[string]func(rep int) Engine{
		"multinomial": func(rep int) Engine {
			return NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
		},
		"sampled-w1": func(rep int) Engine {
			return NewCliqueSampled(dynamics.ThreeMajority{}, init, 1, uint64(rep)*13+5)
		},
		"sampled-w3": func(rep int) Engine {
			return NewCliqueSampled(dynamics.ThreeMajority{}, init, 3, uint64(rep)*17+3)
		},
		"graph-clique": func(rep int) Engine {
			return NewGraphEngine(dynamics.ThreeMajority{}, graph.NewComplete(300),
				init, 1, uint64(rep)*29+7, nil)
		},
		// The opaque wrapper hides the graph.Complete concrete type, so the
		// engine takes the literal vertex-sampling path instead of the alias
		// fast path — keeping the agreement test an independent check of the
		// alias kernel rather than a self-comparison.
		"graph-clique-literal": func(rep int) Engine {
			return NewGraphEngine(dynamics.ThreeMajority{}, opaqueGraph{graph.NewComplete(300)},
				init, 1, uint64(rep)*31+11, nil)
		},
	}
	histograms := map[string][]float64{}
	for name, build := range builds {
		obs := oneRoundColor0(t, init, reps, build)
		histograms[name] = obs
		checkBinomialMarginal(t, name, obs, init.N(), p0, reps)
	}

	// Direct two-sample check between the exact engine and the sampled one:
	// χ² over shared bins of the two histograms.
	a, b := histograms["multinomial"], histograms["sampled-w1"]
	var stat, ca, cb float64
	df := 0
	for i := range a {
		ca += a[i]
		cb += b[i]
		if ca+cb >= 10 {
			d := ca - cb
			stat += d * d / (ca + cb)
			df++
			ca, cb = 0, 0
		}
	}
	df--
	if df < 1 {
		t.Fatal("two-sample test degenerate")
	}
	if crit := chiSquareCrit(df); stat > crit {
		t.Errorf("multinomial vs sampled two-sample χ² = %.1f > crit %.1f (df=%d)", stat, crit, df)
	}
}

// TestSampledBatchBoundary covers shard/batch edge interactions: shards
// smaller than one batch, shards that are not batch multiples, and h that
// does not divide the batch size.
func TestSampledBatchBoundary(t *testing.T) {
	r := rng.New(2)
	for _, tc := range []struct {
		n       int64
		k       int
		workers int
		h       int
	}{
		{5, 2, 1, 3},
		{1025, 4, 2, 3}, // odd split, batch remainder
		{4096, 4, 3, 5}, // h=5 does not divide 1024
		{30, 3, 8, 7},   // shards of ~4 agents, buf capped by shard size
	} {
		var rule dynamics.Rule = dynamics.ThreeMajority{}
		if tc.h != 3 {
			rule = dynamics.NewHPlurality(tc.h)
		}
		e := NewCliqueSampled(rule, colorcfg.Biased(tc.n, tc.k, tc.n/5), tc.workers, 9)
		for i := 0; i < 10; i++ {
			e.Step(r)
			if got := e.Config().N(); got != tc.n {
				t.Fatalf("n=%d k=%d w=%d h=%d: population drifted to %d", tc.n, tc.k, tc.workers, tc.h, got)
			}
		}
		e.Close()
	}
}
