package engine

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/graph"
	"plurality/internal/rng"
)

// GraphEngine is the literal agent-array engine: every vertex of an
// arbitrary topology holds a color; each round every vertex samples h
// neighbors (uniformly, with repetitions) and applies the rule.
// The update is synchronous (double-buffered). On graph.Complete with
// IncludeSelf it realizes exactly the paper's model and is used to
// cross-validate the configuration-level clique engines.
//
// Vertices are sharded across worker goroutines with independent rng
// streams, so a run is deterministic for a fixed (seed, workers) pair.
type GraphEngine struct {
	rule    dynamics.Rule
	g       graph.Graph
	colors  []Color
	next    []Color
	cfg     colorcfg.Config
	round   int
	workers []*graphWorker
	// WithoutSelfResample, when the topology itself excludes self-loops,
	// is implicit in the graph; nothing to configure here.
}

type graphWorker struct {
	r     *rng.Rand
	from  int64
	to    int64
	tally []int64
	buf   []Color
}

// NewGraphEngine builds the engine. The initial configuration is laid out
// over the vertices in color blocks and then shuffled with layoutRng so
// that topology experiments are not biased by block placement (on the
// clique the layout is irrelevant). workers <= 1 runs single-threaded.
func NewGraphEngine(rule dynamics.Rule, g graph.Graph, initial colorcfg.Config, workers int, seed uint64, layoutRng *rng.Rand) *GraphEngine {
	n := g.N()
	if initial.N() != n {
		panic(fmt.Sprintf("engine: configuration has %d agents but graph has %d vertices", initial.N(), n))
	}
	if workers < 1 {
		workers = 1
	}
	if int64(workers) > n {
		workers = int(n)
	}
	e := &GraphEngine{
		rule:   rule,
		g:      g,
		colors: initial.ToAgents(nil),
		next:   make([]Color, n),
		cfg:    initial.Clone(),
	}
	if layoutRng != nil {
		layoutRng.Shuffle(len(e.colors), func(i, j int) {
			e.colors[i], e.colors[j] = e.colors[j], e.colors[i]
		})
	}
	streams := rng.Streams(seed, workers)
	chunk := n / int64(workers)
	for w := 0; w < workers; w++ {
		from := int64(w) * chunk
		to := from + chunk
		if w == workers-1 {
			to = n
		}
		e.workers = append(e.workers, &graphWorker{
			r:     streams[w],
			from:  from,
			to:    to,
			tally: make([]int64, initial.K()),
			buf:   make([]Color, rule.SampleSize()),
		})
	}
	return e
}

// Name implements Engine.
func (e *GraphEngine) Name() string {
	return fmt.Sprintf("graph[%s,%s,w=%d]", e.g.Name(), e.rule.Name(), len(e.workers))
}

// N implements Engine.
func (e *GraphEngine) N() int64 { return e.g.N() }

// K implements Engine.
func (e *GraphEngine) K() int { return e.cfg.K() }

// Round implements Engine.
func (e *GraphEngine) Round() int { return e.round }

// Config implements Engine.
func (e *GraphEngine) Config() colorcfg.Config { return e.cfg.Clone() }

// Colors returns the live per-vertex color slice (read-only view for
// inspection; mutate only through Repaint).
func (e *GraphEngine) Colors() []Color { return e.colors }

// Step implements Engine.
func (e *GraphEngine) Step(_ *rng.Rand) {
	if len(e.workers) == 1 {
		e.workers[0].run(e)
	} else {
		done := make(chan struct{}, len(e.workers))
		for _, w := range e.workers {
			w := w
			go func() {
				w.run(e)
				done <- struct{}{}
			}()
		}
		for range e.workers {
			<-done
		}
	}
	e.colors, e.next = e.next, e.colors
	for j := range e.cfg {
		e.cfg[j] = 0
	}
	for _, w := range e.workers {
		for j, v := range w.tally {
			e.cfg[j] += v
		}
	}
	e.round++
}

func (w *graphWorker) run(e *GraphEngine) {
	for j := range w.tally {
		w.tally[j] = 0
	}
	h := len(w.buf)
	for v := w.from; v < w.to; v++ {
		for s := 0; s < h; s++ {
			w.buf[s] = e.colors[e.g.SampleNeighbor(v, w.r)]
		}
		c := e.rule.Apply(w.buf, w.r)
		e.next[v] = c
		w.tally[c]++
	}
}

// Repaint implements Engine: scans the vertex array and recolors the first
// m vertices holding `from`.
func (e *GraphEngine) Repaint(from, to Color, m int64) int64 {
	if m <= 0 || from == to {
		return 0
	}
	if int(from) >= e.K() || int(to) >= e.K() || from < 0 || to < 0 {
		panic("engine: Repaint color out of range")
	}
	var moved int64
	for i := range e.colors {
		if moved == m {
			break
		}
		if e.colors[i] == from {
			e.colors[i] = to
			moved++
		}
	}
	e.cfg[from] -= moved
	e.cfg[to] += moved
	return moved
}
