package engine

import (
	"fmt"
	"math/bits"

	"plurality/internal/colorcfg"
	"plurality/internal/dist"
	"plurality/internal/dynamics"
	"plurality/internal/graph"
	"plurality/internal/obs"
	"plurality/internal/rng"
	"plurality/internal/topo"
)

// GraphEngine is the literal agent-array engine: every vertex of an
// arbitrary topology holds a color; each round every vertex samples h
// neighbors (uniformly, with repetitions) and applies the rule.
// The update is synchronous (double-buffered). On graph.Complete with
// IncludeSelf it realizes exactly the paper's model and is used to
// cross-validate the configuration-level clique engines.
//
// The engine consumes its topology through topo.NeighborSource — the
// minimal sampling surface shared by implicit graphs (neighbors computed
// functionally, zero materialization), in-RAM CSRs, mmap-backed CSRs, and
// the legacy graph package (whose interface is the same method set, so
// legacy values pass through by plain conversion). Every source honors the
// same rng byte contract (one Int63n(degree) per sample, none for an
// isolated vertex), so swapping a graph's representation never perturbs a
// seeded run; only memory residency changes. That is what takes sparse
// runs past RAM: implicit torus to n = 10⁹, mmap smallworld to n = 10⁸.
//
// Vertices are sharded across worker goroutines with independent rng
// streams, so a run is deterministic for a fixed (seed, workers) pair. The
// goroutines are persistent (workerPool), so a steady-state Step performs
// zero allocations; Close stops them explicitly, and a GC cleanup reaps
// them when the engine is abandoned.
//
// On the paper's clique (Complete with IncludeSelf) a uniformly sampled
// neighbor's color is exactly an i.i.d. draw from the color distribution
// c/n, so the engine takes a fast path: workers draw sample batches from an
// alias table over the configuration (dist.Alias.SampleMany) instead of
// chasing random vertex indices through the n-sized color array. The
// processes are identical in distribution; the fast path just trades n
// random memory reads per round for k-sized table lookups.
//
// Every other topology runs one of the sampling plans described at
// graphLoop: batched two-pass loops whenever the rule is rand-free (the
// rng stream is provably unchanged by the reordering, so all goldens stay
// byte-identical), degree-bucketed flat loops when every vertex shares one
// degree, and the legacy per-vertex loops otherwise. The opt-in
// sampler=batch mode (GraphOpts.Sampler) trades the per-draw byte contract
// for bulk Uint64-block generation — see Sampler.
type GraphEngine struct {
	rule    dynamics.Rule
	src     topo.NeighborSource
	bufs    *graphBuffers
	cfg     colorcfg.Config
	round   int
	loop    *graphLoop
	workers []*graphWorker
	pool    *workerPool
	obs     obs.Observer
}

// Sampler selects the rng draw discipline of the graph engine's sampling
// loops.
type Sampler int

const (
	// SamplerDefault preserves the NeighborSource byte contract pinned by
	// the golden traces: every sample costs exactly one Int63n(degree) draw
	// (none for an isolated vertex), in per-vertex order interleaved with
	// any rng the rule consumes. The engine still batches draws under this
	// contract when the rule is rand-free — the reordering is then
	// invisible to the stream.
	SamplerDefault Sampler = iota
	// SamplerBatch is the opt-in relaxed discipline: every sample costs
	// exactly one raw Uint64 (generated in blocks), mapped to a neighbor
	// index by 128-bit multiply-shift with no rejection step (bias at most
	// degree·2⁻⁶⁴), and a block of draws completes before the block's rule
	// applications consume any rng. Runs remain fully deterministic for a
	// fixed (seed, workers) pair — the mode has its own golden trace — but
	// are not comparable draw-for-draw with the default discipline.
	SamplerBatch
)

// String implements fmt.Stringer ("default" / "batch").
func (s Sampler) String() string {
	if s == SamplerBatch {
		return "batch"
	}
	return "default"
}

// ParseSampler parses a user-facing sampler name; "" means default.
func ParseSampler(s string) (Sampler, error) {
	switch s {
	case "", "default":
		return SamplerDefault, nil
	case "batch":
		return SamplerBatch, nil
	}
	return 0, fmt.Errorf("unknown sampler %q (want default or batch)", s)
}

// GraphOpts carries the optional knobs of NewGraphEngineOpts.
type GraphOpts struct {
	// Sampler selects the rng draw discipline; zero value is
	// SamplerDefault.
	Sampler Sampler
}

// graphBuffers holds the double-buffered vertex color arrays. They live in
// a separate allocation so pool goroutines can reference them (the buffers
// swap every round) without pinning the engine itself.
type graphBuffers struct {
	colors []Color
	next   []Color
}

// graphLoop is the engine's sampling plan: everything the worker loops
// need, resolved once at construction and immutable afterwards. It lives in
// its own allocation (like graphBuffers) so pool goroutines never capture
// the engine itself. Dispatch order in graphWorker.run:
//
//	alias != nil            → clique fast path (batched alias draws)
//	offsets != nil && batch → flat two-pass loop: fill a neighbor-index
//	                          block in one tight rng loop (degree-bucketed
//	                          when unifDeg > 0), then gather colors, so the
//	                          random color reads pipeline instead of
//	                          serializing behind the rule
//	offsets != nil          → legacy per-vertex flat loop (rng-consuming
//	                          rules under the default byte contract)
//	batch                   → generic two-pass loop over SampleNeighbor
//	                          (relaxed mode: Degree+Neighbor with
//	                          multiply-shift draws)
//	otherwise               → legacy per-vertex generic loop
type graphLoop struct {
	src  topo.NeighborSource
	rule dynamics.Rule
	bufs *graphBuffers
	// alias is non-nil only on the complete+self fast path.
	alias *dist.Alias
	// offsets/neighbors are non-nil only when src exposes topo.Flat; the
	// workers then index these arrays directly.
	offsets   []int64
	neighbors []int64
	h         int
	// unifDeg, when positive, promises every vertex has exactly this
	// degree (from the topo.UniformDegree hint or a one-time offsets
	// scan); the flat batched loop then hoists the degree load, the
	// zero-degree branch, and the rejection threshold out of the rng loop.
	unifDeg int64
	// batch selects the two-pass (draw block, then gather+apply) loops:
	// always in relaxed mode, and under the default contract exactly when
	// the rule is rand-free (dynamics.IsRandFree), which makes the
	// reordering byte-invisible.
	batch bool
	// relaxed is the sampler=batch draw discipline (see SamplerBatch).
	relaxed bool
	// fast3 replaces rule.Apply in the batched loops with the inlined
	// first-sample 3-majority ("if s1 == s2 adopt s1, else adopt s0" — a
	// conditional move, no data-dependent branch). Set only for
	// dynamics.ThreeMajority without UniformTie, whose Apply it replicates
	// exactly.
	fast3 bool
}

type graphWorker struct {
	r     *rng.Rand
	from  int64
	to    int64
	tally []int64 // cache-line padded; see paddedTallies
	buf   []Color // h scratch colors; a block multiple on batched paths
	idx   []int64 // batched paths: per-block neighbor vertex ids
}

// NewGraphEngine builds the engine over any topo.NeighborSource (legacy
// graph.Graph values convert implicitly — same method set) with the default
// sampler. The initial configuration is laid out over the vertices in color
// blocks and then shuffled with layoutRng so that topology experiments are
// not biased by block placement (on the clique the layout is irrelevant).
// workers <= 1 runs single-threaded.
func NewGraphEngine(rule dynamics.Rule, src topo.NeighborSource, initial colorcfg.Config, workers int, seed uint64, layoutRng *rng.Rand) *GraphEngine {
	return NewGraphEngineOpts(rule, src, initial, workers, seed, layoutRng, GraphOpts{})
}

// NewGraphEngineOpts is NewGraphEngine with explicit options.
func NewGraphEngineOpts(rule dynamics.Rule, src topo.NeighborSource, initial colorcfg.Config, workers int, seed uint64, layoutRng *rng.Rand, opts GraphOpts) *GraphEngine {
	n := src.N()
	if initial.N() != n {
		panic(fmt.Sprintf("engine: configuration has %d agents but graph has %d vertices", initial.N(), n))
	}
	h := rule.SampleSize()
	if h < 1 {
		panic("engine: rule sample size must be >= 1")
	}
	if workers < 1 {
		workers = 1
	}
	if int64(workers) > n {
		workers = int(n)
	}
	e := &GraphEngine{
		rule: rule,
		src:  src,
		bufs: &graphBuffers{
			colors: initial.ToAgents(nil),
			next:   make([]Color, n),
		},
		cfg: initial.Clone(),
	}
	if layoutRng != nil {
		layoutRng.Shuffle(len(e.bufs.colors), func(i, j int) {
			e.bufs.colors[i], e.bufs.colors[j] = e.bufs.colors[j], e.bufs.colors[i]
		})
	}
	lp := &graphLoop{src: src, rule: rule, bufs: e.bufs, h: h}
	if c, ok := src.(graph.Complete); ok && c.IncludeSelf {
		lp.alias = dist.NewAliasCounts(initial)
	} else {
		if flat, ok := src.(topo.Flat); ok {
			lp.offsets, lp.neighbors = flat.FlatRows()
		}
		if ud, ok := src.(topo.UniformDegree); ok {
			lp.unifDeg = ud.UniformDegree()
		} else if lp.offsets != nil {
			lp.unifDeg = uniformFlatDegree(lp.offsets)
		}
		lp.relaxed = opts.Sampler == SamplerBatch
		lp.batch = lp.relaxed || dynamics.IsRandFree(rule)
		if tm, ok := rule.(dynamics.ThreeMajority); ok && !tm.UniformTie {
			lp.fast3 = true
		}
	}
	e.loop = lp
	streams := rng.Streams(seed, workers)
	tallies := paddedTallies(workers, initial.K())
	for w := 0; w < workers; w++ {
		from, to := shardRange(n, workers, w)
		bufLen := h
		idxLen := 0
		if lp.alias != nil || lp.batch {
			bufLen = batchBufLen(h, to-from)
		}
		if lp.batch {
			idxLen = bufLen
		}
		e.workers = append(e.workers, &graphWorker{
			r:     streams[w],
			from:  from,
			to:    to,
			tally: tallies[w],
			buf:   make([]Color, bufLen),
			idx:   make([]int64, idxLen),
		})
	}
	if workers > 1 {
		fns := make([]func(), workers)
		for i, w := range e.workers {
			fns[i] = func() { w.run(lp) }
		}
		e.pool = attachPool(e, fns)
	}
	return e
}

// uniformFlatDegree reports the common row width when every row of the
// offset array has the same positive width, else 0. The one sequential
// sweep at construction buys the bucketed hot loop for flat sources that
// carry no topo.UniformDegree hint (generated regular:D CSRs, the legacy
// adjacency list, materialized tori).
func uniformFlatDegree(offsets []int64) int64 {
	n := len(offsets) - 1
	if n < 1 {
		return 0
	}
	d := offsets[1] - offsets[0]
	if d == 0 {
		return 0
	}
	for v := 1; v < n; v++ {
		if offsets[v+1]-offsets[v] != d {
			return 0
		}
	}
	return d
}

// Close stops the worker goroutines of a multi-worker engine. The engine
// must not be stepped afterwards. Optional: an unreachable engine's workers
// are stopped by a GC cleanup.
func (e *GraphEngine) Close() {
	if e.pool != nil {
		e.pool.shutdown()
	}
}

// Name implements Engine.
func (e *GraphEngine) Name() string {
	if e.loop.relaxed {
		return fmt.Sprintf("graph[%s,%s,w=%d,batch]", e.src.Name(), e.rule.Name(), len(e.workers))
	}
	return fmt.Sprintf("graph[%s,%s,w=%d]", e.src.Name(), e.rule.Name(), len(e.workers))
}

// N implements Engine.
func (e *GraphEngine) N() int64 { return e.src.N() }

// K implements Engine.
func (e *GraphEngine) K() int { return e.cfg.K() }

// Round implements Engine.
func (e *GraphEngine) Round() int { return e.round }

// Config implements Engine.
func (e *GraphEngine) Config() colorcfg.Config { return e.cfg.Clone() }

// Colors returns the engine's live per-vertex color slice — a view, not a
// copy. The view is valid only until the next Step: the double-buffer swap
// turns the returned array into the following round's scratch target, so a
// caller holding it across Steps reads half-written data. Read it (or copy
// it out, e.g. with AppendColors) before stepping again; mutate only
// through Repaint.
func (e *GraphEngine) Colors() []Color { return e.bufs.colors }

// AppendColors appends a stable snapshot of the current per-vertex colors
// to dst (which may be nil) and returns the extended slice. Unlike Colors,
// the result is owned by the caller and survives any number of Steps.
func (e *GraphEngine) AppendColors(dst []Color) []Color {
	return append(dst, e.bufs.colors...)
}

// Step implements Engine.
func (e *GraphEngine) Step(_ *rng.Rand) {
	began := obs.Began(e.obs)
	if e.loop.alias != nil {
		e.loop.alias.ResetCounts(e.cfg)
	}
	if e.pool == nil {
		e.workers[0].run(e.loop)
	} else {
		e.pool.step()
	}
	e.bufs.colors, e.bufs.next = e.bufs.next, e.bufs.colors
	clear(e.cfg)
	for _, w := range e.workers {
		for j, v := range w.tally {
			e.cfg[j] += v
		}
	}
	e.round++
	observeEnd(e.obs, began, e.round, e.src.N(), e.cfg)
}

// SetObserver implements Observable.
func (e *GraphEngine) SetObserver(o obs.Observer) { e.obs = o }

// run processes the worker's vertex shard into bufs.next, dispatching on
// the engine's sampling plan (see graphLoop).
func (w *graphWorker) run(lp *graphLoop) {
	clear(w.tally)
	switch {
	case lp.alias != nil:
		w.runClique(lp)
	case lp.offsets != nil && lp.batch:
		w.runFlatBatch(lp)
	case lp.offsets != nil:
		w.runFlatSerial(lp)
	case lp.batch:
		w.runGenericBatch(lp)
	default:
		w.runGenericSerial(lp)
	}
}

// runClique is the complete+self fast path: batched i.i.d. color draws from
// the alias table.
func (w *graphWorker) runClique(lp *graphLoop) {
	h := lp.h
	next := lp.bufs.next
	perBatch := int64(len(w.buf) / h)
	for v := w.from; v < w.to; {
		m := min(perBatch, w.to-v)
		batch := w.buf[:int(m)*h]
		lp.alias.SampleMany(w.r, batch)
		for i := int64(0); i < m; i++ {
			c := lp.rule.Apply(batch[int(i)*h:int(i+1)*h], w.r)
			next[v+i] = c
			w.tally[c]++
		}
		v += m
	}
}

// runFlatBatch is the sparse hot loop: per block of vertices, pass 1 fills
// the reusable index buffer with one neighbor draw per sample in a tight
// rng loop (degree-bucketed when the degree is uniform), then pass 2
// gathers colors and applies the rule. Splitting the passes lets the
// out-of-order core overlap the block's random color-array reads — the
// dominant cache misses at n >= 10⁷ — instead of serializing them behind
// each vertex's rule application.
func (w *graphWorker) runFlatBatch(lp *graphLoop) {
	h := int64(lp.h)
	colors, next := lp.bufs.colors, lp.bufs.next
	offsets, neighbors := lp.offsets, lp.neighbors
	perBlock := int64(len(w.idx)) / h
	for v0 := w.from; v0 < w.to; {
		m := min(perBlock, w.to-v0)
		idx := w.idx[:m*h]
		if d := lp.unifDeg; d > 0 {
			// Bucketed pass 1: one FillUniform kernel call for the whole
			// block, then a branch-free sweep resolving draws to vertex ids
			// (row reads are near-sequential as v ascends).
			if lp.relaxed {
				dist.FillUniformRelaxed(w.r, d, idx)
			} else {
				dist.FillUniform(w.r, d, idx)
			}
			// Uniform degree means offsets is an arithmetic sequence, so
			// the resolve sweep steps lo by d instead of streaming the
			// offsets array.
			p := 0
			for lo := offsets[v0]; lo < offsets[v0+m]; lo += d {
				row := neighbors[lo : lo+d]
				for s := int64(0); s < h; s++ {
					idx[p] = row[idx[p]]
					p++
				}
			}
		} else if lp.relaxed {
			w.fillFlatRelaxed(lp, idx, v0, m)
		} else {
			w.fillFlatExact(lp, idx, v0, m)
		}
		if lp.fast3 {
			w.applyFused3(colors, next, idx, v0, m)
		} else {
			buf := w.buf[:len(idx)]
			for i, u := range idx {
				buf[i] = colors[u]
			}
			w.applyBlock(lp, buf, next, v0, m)
		}
		v0 += m
	}
}

// fillFlatExact fills idx with one resolved neighbor id per sample for
// vertices [v0, v0+m) of a flat source with varying degrees, consuming the
// rng exactly like the serial loop: one Int63n(degree) per draw (the
// inlined Lemire multiply-shift below is rng.Uint64n verbatim, with the
// rejection threshold hoisted per vertex), none for an isolated vertex,
// which samples itself.
func (w *graphWorker) fillFlatExact(lp *graphLoop, idx []int64, v0, m int64) {
	h := lp.h
	offsets, neighbors := lp.offsets, lp.neighbors
	r := w.r
	p := 0
	for v := v0; v < v0+m; v++ {
		lo := offsets[v]
		d := uint64(offsets[v+1] - lo)
		if d == 0 {
			for s := 0; s < h; s++ {
				idx[p] = v
				p++
			}
			continue
		}
		thresh := -d % d
		for s := 0; s < h; s++ {
			hi, lo2 := bits.Mul64(r.Uint64(), d)
			for lo2 < thresh {
				hi, lo2 = bits.Mul64(r.Uint64(), d)
			}
			idx[p] = neighbors[lo+int64(hi)]
			p++
		}
	}
}

// fillFlatRelaxed is fillFlatExact under the sampler=batch discipline:
// exactly one raw Uint64 per sample, multiply-shift, no rejection.
func (w *graphWorker) fillFlatRelaxed(lp *graphLoop, idx []int64, v0, m int64) {
	h := lp.h
	offsets, neighbors := lp.offsets, lp.neighbors
	r := w.r
	p := 0
	for v := v0; v < v0+m; v++ {
		lo := offsets[v]
		d := uint64(offsets[v+1] - lo)
		if d == 0 {
			for s := 0; s < h; s++ {
				idx[p] = v
				p++
			}
			continue
		}
		for s := 0; s < h; s++ {
			hi, _ := bits.Mul64(r.Uint64(), d)
			idx[p] = neighbors[lo+int64(hi)]
			p++
		}
	}
}

// runGenericBatch is the two-pass loop for non-flat sources (implicit
// families, mmap CSRs, opaque graphs): pass 1 fills the index buffer with
// sampled neighbor ids through the interface, pass 2 gathers colors and
// applies the rule. Under the default contract the draws go through
// SampleNeighbor (byte-identical to the serial loop); in relaxed mode they
// are multiply-shift indices resolved through Neighbor, so every backend of
// the same topology still draws identically in batch mode.
func (w *graphWorker) runGenericBatch(lp *graphLoop) {
	h := int64(lp.h)
	colors, next := lp.bufs.colors, lp.bufs.next
	src := lp.src
	r := w.r
	perBlock := int64(len(w.idx)) / h
	for v0 := w.from; v0 < w.to; {
		m := min(perBlock, w.to-v0)
		idx := w.idx[:m*h]
		if lp.relaxed {
			p := 0
			for v := v0; v < v0+m; v++ {
				d := lp.unifDeg
				if d == 0 {
					d = src.Degree(v)
				}
				if d == 0 {
					for s := int64(0); s < h; s++ {
						idx[p] = v
						p++
					}
					continue
				}
				ud := uint64(d)
				for s := int64(0); s < h; s++ {
					hi, _ := bits.Mul64(r.Uint64(), ud)
					idx[p] = src.Neighbor(v, int64(hi))
					p++
				}
			}
		} else {
			p := 0
			for v := v0; v < v0+m; v++ {
				for s := int64(0); s < h; s++ {
					idx[p] = src.SampleNeighbor(v, r)
					p++
				}
			}
		}
		if lp.fast3 {
			w.applyFused3(colors, next, idx, v0, m)
		} else {
			buf := w.buf[:len(idx)]
			for i, u := range idx {
				buf[i] = colors[u]
			}
			w.applyBlock(lp, buf, next, v0, m)
		}
		v0 += m
	}
}

// applyFused3 gathers a block's colors and applies first-sample 3-majority
// in one pass. The rule reduces to "if s1 == s2 adopt s1, else adopt s0"
// (when s0 matches either other sample both branches return the same
// color), which compiles to a conditional move — no data-dependent branch
// to mispredict while the three gather loads per vertex pipeline. (A
// split gather-then-apply variant was measured slower: the extra buffer
// pass costs more than the denser load window buys.)
func (w *graphWorker) applyFused3(colors, next []Color, idx []int64, v0, m int64) {
	tally := w.tally
	p := 0
	for i := int64(0); i < m; i++ {
		x := colors[idx[p]]
		y := colors[idx[p+1]]
		z := colors[idx[p+2]]
		p += 3
		if y == z {
			x = y
		}
		next[v0+i] = x
		tally[x]++
	}
}

// applyBlock applies the rule to each h-sample group of buf, writing
// next[v0:v0+m] and the worker tally.
func (w *graphWorker) applyBlock(lp *graphLoop, buf []Color, next []Color, v0, m int64) {
	h := lp.h
	p := 0
	for i := int64(0); i < m; i++ {
		c := lp.rule.Apply(buf[p:p+h], w.r)
		p += h
		next[v0+i] = c
		w.tally[c]++
	}
}

// runFlatSerial is the legacy per-vertex flat loop, kept for rng-consuming
// rules under the default byte contract (their draws must interleave with
// the samples in per-vertex order). Same stream as the interface path: one
// Int63n(degree) per draw; isolated vertices sample themselves, matching
// SampleNeighbor.
func (w *graphWorker) runFlatSerial(lp *graphLoop) {
	h := lp.h
	colors, next := lp.bufs.colors, lp.bufs.next
	offsets, neighbors := lp.offsets, lp.neighbors
	for v := w.from; v < w.to; v++ {
		lo := offsets[v]
		d := offsets[v+1] - lo
		for s := 0; s < h; s++ {
			u := v
			if d != 0 {
				u = neighbors[lo+w.r.Int63n(d)]
			}
			w.buf[s] = colors[u]
		}
		c := lp.rule.Apply(w.buf[:h], w.r)
		next[v] = c
		w.tally[c]++
	}
}

// runGenericSerial is the legacy per-vertex loop over any NeighborSource,
// kept for rng-consuming rules under the default byte contract. The
// source's SampleNeighbor contract guarantees the identical rng stream.
func (w *graphWorker) runGenericSerial(lp *graphLoop) {
	h := lp.h
	colors, next := lp.bufs.colors, lp.bufs.next
	for v := w.from; v < w.to; v++ {
		for s := 0; s < h; s++ {
			w.buf[s] = colors[lp.src.SampleNeighbor(v, w.r)]
		}
		c := lp.rule.Apply(w.buf[:h], w.r)
		next[v] = c
		w.tally[c]++
	}
}

// Repaint implements Engine: scans the vertex array and recolors the first
// m vertices holding `from`.
func (e *GraphEngine) Repaint(from, to Color, m int64) int64 {
	if m <= 0 || from == to {
		return 0
	}
	if int(from) >= e.K() || int(to) >= e.K() || from < 0 || to < 0 {
		panic("engine: Repaint color out of range")
	}
	colors := e.bufs.colors
	var moved int64
	for i := range colors {
		if moved == m {
			break
		}
		if colors[i] == from {
			colors[i] = to
			moved++
		}
	}
	e.cfg[from] -= moved
	e.cfg[to] += moved
	return moved
}
