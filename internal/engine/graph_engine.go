package engine

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dist"
	"plurality/internal/dynamics"
	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/topo"
)

// GraphEngine is the literal agent-array engine: every vertex of an
// arbitrary topology holds a color; each round every vertex samples h
// neighbors (uniformly, with repetitions) and applies the rule.
// The update is synchronous (double-buffered). On graph.Complete with
// IncludeSelf it realizes exactly the paper's model and is used to
// cross-validate the configuration-level clique engines.
//
// The engine consumes its topology through topo.NeighborSource — the
// minimal sampling surface shared by implicit graphs (neighbors computed
// functionally, zero materialization), in-RAM CSRs, mmap-backed CSRs, and
// the legacy graph package (whose interface is the same method set, so
// legacy values pass through by plain conversion). Every source honors the
// same rng byte contract (one Int63n(degree) per sample, none for an
// isolated vertex), so swapping a graph's representation never perturbs a
// seeded run; only memory residency changes. That is what takes sparse
// runs past RAM: implicit torus to n = 10⁹, mmap smallworld to n = 10⁸.
//
// Vertices are sharded across worker goroutines with independent rng
// streams, so a run is deterministic for a fixed (seed, workers) pair. The
// goroutines are persistent (workerPool), so a steady-state Step performs
// zero allocations; Close stops them explicitly, and a GC cleanup reaps
// them when the engine is abandoned.
//
// On the paper's clique (Complete with IncludeSelf) a uniformly sampled
// neighbor's color is exactly an i.i.d. draw from the color distribution
// c/n, so the engine takes a fast path: workers draw sample batches from an
// alias table over the configuration (dist.Alias.SampleMany) instead of
// chasing random vertex indices through the n-sized color array. The
// processes are identical in distribution; the fast path just trades n
// random memory reads per round for k-sized table lookups.
//
// Sources exposing topo.Flat (in-RAM CSR, the legacy adjacency list) take
// a second fast path: workers sample straight out of the flat
// offsets/neighbors arrays, removing two interface calls per sample from
// the hot loop — which is what makes n = 10⁷ in-RAM graph rounds
// practical. Everything else (implicit families, mmap) runs the one
// generic NeighborSource loop.
type GraphEngine struct {
	rule  dynamics.Rule
	src   topo.NeighborSource
	bufs  *graphBuffers
	cfg   colorcfg.Config
	round int
	// alias is non-nil only on the complete+self fast path.
	alias *dist.Alias
	// offsets/neighbors are non-nil only when src exposes topo.Flat; the
	// workers then index these arrays directly.
	offsets   []int64
	neighbors []int64
	workers   []*graphWorker
	pool      *workerPool
}

// graphBuffers holds the double-buffered vertex color arrays. They live in
// a separate allocation so pool goroutines can reference them (the buffers
// swap every round) without pinning the engine itself.
type graphBuffers struct {
	colors []Color
	next   []Color
}

type graphWorker struct {
	r     *rng.Rand
	from  int64
	to    int64
	tally []int64 // cache-line padded; see paddedTallies
	buf   []Color // h scratch colors; a batch multiple on the clique path
}

// NewGraphEngine builds the engine over any topo.NeighborSource (legacy
// graph.Graph values convert implicitly — same method set). The initial
// configuration is laid out over the vertices in color blocks and then
// shuffled with layoutRng so that topology experiments are not biased by
// block placement (on the clique the layout is irrelevant). workers <= 1
// runs single-threaded.
func NewGraphEngine(rule dynamics.Rule, src topo.NeighborSource, initial colorcfg.Config, workers int, seed uint64, layoutRng *rng.Rand) *GraphEngine {
	n := src.N()
	if initial.N() != n {
		panic(fmt.Sprintf("engine: configuration has %d agents but graph has %d vertices", initial.N(), n))
	}
	h := rule.SampleSize()
	if h < 1 {
		panic("engine: rule sample size must be >= 1")
	}
	if workers < 1 {
		workers = 1
	}
	if int64(workers) > n {
		workers = int(n)
	}
	e := &GraphEngine{
		rule: rule,
		src:  src,
		bufs: &graphBuffers{
			colors: initial.ToAgents(nil),
			next:   make([]Color, n),
		},
		cfg: initial.Clone(),
	}
	if layoutRng != nil {
		layoutRng.Shuffle(len(e.bufs.colors), func(i, j int) {
			e.bufs.colors[i], e.bufs.colors[j] = e.bufs.colors[j], e.bufs.colors[i]
		})
	}
	if c, ok := src.(graph.Complete); ok && c.IncludeSelf {
		e.alias = dist.NewAliasCounts(initial)
	} else if flat, ok := src.(topo.Flat); ok {
		e.offsets, e.neighbors = flat.FlatRows()
	}
	streams := rng.Streams(seed, workers)
	tallies := paddedTallies(workers, initial.K())
	for w := 0; w < workers; w++ {
		from, to := shardRange(n, workers, w)
		bufLen := h
		if e.alias != nil {
			bufLen = batchBufLen(h, to-from)
		}
		e.workers = append(e.workers, &graphWorker{
			r:     streams[w],
			from:  from,
			to:    to,
			tally: tallies[w],
			buf:   make([]Color, bufLen),
		})
	}
	if workers > 1 {
		fns := make([]func(), workers)
		src, offsets, neighbors, rule, alias, bufs := e.src, e.offsets, e.neighbors, e.rule, e.alias, e.bufs
		for i, w := range e.workers {
			fns[i] = func() { w.run(src, offsets, neighbors, rule, alias, bufs) }
		}
		e.pool = attachPool(e, fns)
	}
	return e
}

// Close stops the worker goroutines of a multi-worker engine. The engine
// must not be stepped afterwards. Optional: an unreachable engine's workers
// are stopped by a GC cleanup.
func (e *GraphEngine) Close() {
	if e.pool != nil {
		e.pool.shutdown()
	}
}

// Name implements Engine.
func (e *GraphEngine) Name() string {
	return fmt.Sprintf("graph[%s,%s,w=%d]", e.src.Name(), e.rule.Name(), len(e.workers))
}

// N implements Engine.
func (e *GraphEngine) N() int64 { return e.src.N() }

// K implements Engine.
func (e *GraphEngine) K() int { return e.cfg.K() }

// Round implements Engine.
func (e *GraphEngine) Round() int { return e.round }

// Config implements Engine.
func (e *GraphEngine) Config() colorcfg.Config { return e.cfg.Clone() }

// Colors returns the live per-vertex color slice (read-only view for
// inspection; mutate only through Repaint).
func (e *GraphEngine) Colors() []Color { return e.bufs.colors }

// Step implements Engine.
func (e *GraphEngine) Step(_ *rng.Rand) {
	if e.alias != nil {
		e.alias.ResetCounts(e.cfg)
	}
	if e.pool == nil {
		e.workers[0].run(e.src, e.offsets, e.neighbors, e.rule, e.alias, e.bufs)
	} else {
		e.pool.step()
	}
	e.bufs.colors, e.bufs.next = e.bufs.next, e.bufs.colors
	clear(e.cfg)
	for _, w := range e.workers {
		for j, v := range w.tally {
			e.cfg[j] += v
		}
	}
	e.round++
}

// run processes the worker's vertex shard into bufs.next.
func (w *graphWorker) run(src topo.NeighborSource, offsets, neighbors []int64, rule dynamics.Rule, alias *dist.Alias, bufs *graphBuffers) {
	clear(w.tally)
	next := bufs.next
	h := rule.SampleSize()
	if alias != nil {
		// Clique fast path: batched i.i.d. color draws from the alias table.
		perBatch := int64(len(w.buf) / h)
		for v := w.from; v < w.to; {
			m := min(perBatch, w.to-v)
			batch := w.buf[:int(m)*h]
			alias.SampleMany(w.r, batch)
			for i := int64(0); i < m; i++ {
				c := rule.Apply(batch[int(i)*h:int(i+1)*h], w.r)
				next[v+i] = c
				w.tally[c]++
			}
			v += m
		}
		return
	}
	colors := bufs.colors
	if offsets != nil {
		// Flat fast path: sample straight from the offset/neighbor arrays.
		// Same rng stream as the interface path (one Int63n(degree) per
		// draw); isolated vertices sample themselves, matching
		// SampleNeighbor.
		for v := w.from; v < w.to; v++ {
			lo := offsets[v]
			d := offsets[v+1] - lo
			for s := 0; s < h; s++ {
				u := v
				if d != 0 {
					u = neighbors[lo+w.r.Int63n(d)]
				}
				w.buf[s] = colors[u]
			}
			c := rule.Apply(w.buf[:h], w.r)
			next[v] = c
			w.tally[c]++
		}
		return
	}
	// Generic path: any NeighborSource (implicit families, mmap CSRs,
	// opaque graphs). The source's SampleNeighbor contract guarantees the
	// identical rng stream.
	for v := w.from; v < w.to; v++ {
		for s := 0; s < h; s++ {
			w.buf[s] = colors[src.SampleNeighbor(v, w.r)]
		}
		c := rule.Apply(w.buf[:h], w.r)
		next[v] = c
		w.tally[c]++
	}
}

// Repaint implements Engine: scans the vertex array and recolors the first
// m vertices holding `from`.
func (e *GraphEngine) Repaint(from, to Color, m int64) int64 {
	if m <= 0 || from == to {
		return 0
	}
	if int(from) >= e.K() || int(to) >= e.K() || from < 0 || to < 0 {
		panic("engine: Repaint color out of range")
	}
	colors := e.bufs.colors
	var moved int64
	for i := range colors {
		if moved == m {
			break
		}
		if colors[i] == from {
			colors[i] = to
			moved++
		}
	}
	e.cfg[from] -= moved
	e.cfg[to] += moved
	return moved
}
