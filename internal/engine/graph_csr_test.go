package engine

import (
	"slices"
	"sort"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/stats"
	"plurality/internal/topo"
)

// hiddenCSR wraps a CSR behind a bare interface (embedding the interface,
// not the concrete type, so FlatRows is not promoted) — NewGraphEngine's
// topo.Flat assertion fails and the engine takes the generic
// NeighborSource path over the exact same structure.
type hiddenCSR struct{ graph.Graph }

// TestGraphEngineCSRByteContract pins the representation-independence
// contract: the CSR direct-slice path and the graph.Graph interface path
// consume the rng identically, so the same (structure, seed, workers)
// triple yields byte-identical runs whichever path executes.
func TestGraphEngineCSRByteContract(t *testing.T) {
	csr := topo.RandomRegular("regular:6", 900, 6, rng.New(31))
	init := colorcfg.Biased(900, 4, 120)
	for _, workers := range []int{1, 3} {
		fast := NewGraphEngine(dynamics.ThreeMajority{}, csr, init, workers, 77, rng.New(5))
		slow := NewGraphEngine(dynamics.ThreeMajority{}, hiddenCSR{csr}, init, workers, 77, rng.New(5))
		if fast.loop.offsets == nil || slow.loop.offsets != nil {
			t.Fatal("fast-path detection broken: want flat path vs generic path")
		}
		for round := 0; round < 12; round++ {
			fast.Step(nil)
			slow.Step(nil)
			if !fast.Config().Equal(slow.Config()) {
				t.Fatalf("workers=%d round %d: configs diverged: %v vs %v",
					workers, round, fast.Config(), slow.Config())
			}
			if !slices.Equal(fast.Colors(), slow.Colors()) {
				t.Fatalf("workers=%d round %d: per-vertex colors diverged", workers, round)
			}
		}
		fast.Close()
		slow.Close()
	}
}

// oneRoundColor0Samples runs reps independent one-round executions and
// returns the color-0 count after the round for each.
func oneRoundColor0Samples(init colorcfg.Config, reps int, build func(rep int) Engine) []float64 {
	out := make([]float64, reps)
	for rep := 0; rep < reps; rep++ {
		e := build(rep)
		e.Step(rng.New(uint64(rep) + 900_001))
		out[rep] = float64(e.Config()[0])
		e.Close()
	}
	return out
}

// twoSampleChi2 bins two equal-size samples on combined deciles and
// returns the two-sample chi-square statistic with its degrees of freedom
// (χ² = Σ (R−S)²/(R+S) for equal sample counts).
func twoSampleChi2(t *testing.T, a, b []float64) (float64, int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("unequal sample sizes %d vs %d", len(a), len(b))
	}
	combined := append(slices.Clone(a), b...)
	sort.Float64s(combined)
	const bins = 10
	edges := make([]float64, 0, bins-1)
	for i := 1; i < bins; i++ {
		edges = append(edges, combined[i*len(combined)/bins])
	}
	binOf := func(x float64) int { return sort.SearchFloat64s(edges, x+0.5) } // counts are integers
	var r, s [bins]float64
	for _, x := range a {
		r[binOf(x)]++
	}
	for _, x := range b {
		s[binOf(x)]++
	}
	var stat float64
	df := -1
	for i := 0; i < bins; i++ {
		if r[i]+s[i] == 0 {
			continue
		}
		df++
		d := r[i] - s[i]
		stat += d * d / (r[i] + s[i])
	}
	return stat, df
}

// TestGraphEngineCSRCrossCheck is the statistical half of the port: on the
// clique and on a random 8-regular graph, the one-round color-0 count of
// the CSR-sharded engine must be distributed identically to the legacy
// path over the same structure (two-sample chi-square, α = 0.001).
func TestGraphEngineCSRCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check")
	}
	const n, reps = 360, 2500
	init := colorcfg.FromCounts(150, 120, 90)
	rule := dynamics.ThreeMajority{}

	cases := []struct {
		name   string
		csr    func() graph.Graph
		legacy func() graph.Graph
	}{
		{
			// The materialized clique (rows include self) against the
			// paper engine's alias fast path.
			name:   "clique",
			csr:    func() graph.Graph { return topo.FromGraph(graph.NewComplete(n)) },
			legacy: func() graph.Graph { return graph.NewComplete(n) },
		},
		{
			// The same 8-regular structure through both representations.
			name: "8-regular",
			csr: func() graph.Graph {
				return topo.FromGraph(graph.NewRandomRegular(n, 8, rng.New(12)))
			},
			legacy: func() graph.Graph { return graph.NewRandomRegular(n, 8, rng.New(12)) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gCSR, gLegacy := tc.csr(), tc.legacy()
			if _, ok := gCSR.(*topo.CSR); !ok {
				t.Fatal("csr builder did not produce *topo.CSR")
			}
			a := oneRoundColor0Samples(init, reps, func(rep int) Engine {
				return NewGraphEngine(rule, gCSR, init, 2, uint64(rep)*2+1, nil)
			})
			b := oneRoundColor0Samples(init, reps, func(rep int) Engine {
				return NewGraphEngine(rule, gLegacy, init, 1, uint64(rep)*2+800_000_001, nil)
			})
			stat, df := twoSampleChi2(t, a, b)
			if crit := stats.ChiSquareCritical(df, 0.001); stat > crit {
				t.Errorf("χ² = %.2f > crit %.2f (df %d): CSR path diverges from legacy path", stat, crit, df)
			}
		})
	}
}

// TestGraphEngineCSRLargeShardedRound exercises the sharded CSR path on a
// larger sparse graph across worker counts, checking tally/agent-array
// agreement (the n = 10⁷ scale claim is benchmarked, not unit-tested).
func TestGraphEngineCSRLargeShardedRound(t *testing.T) {
	const n = 200_000
	csr := topo.RandomRegular("regular:8", n, 8, rng.New(8))
	init := colorcfg.Biased(n, 5, 20_000)
	for _, workers := range []int{1, 4} {
		e := NewGraphEngine(dynamics.ThreeMajority{}, csr, init, workers, 13, rng.New(2))
		for i := 0; i < 3; i++ {
			e.Step(nil)
			if err := e.Config().Validate(n); err != nil {
				t.Fatalf("workers=%d round %d: %v", workers, i, err)
			}
		}
		if recount := colorcfg.FromAgents(e.Colors(), 5); !recount.Equal(e.Config()) {
			t.Fatalf("workers=%d: tally drifted from agent array", workers)
		}
		e.Close()
	}
}
