package dynamics

import (
	"math"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/rng"
)

func TestLazyRowsAreStochastic(t *testing.T) {
	l := NewLazy(ThreeMajority{}, 0.3)
	c := colorcfg.FromCounts(40, 35, 25)
	row := make([]float64, 3)
	for from := Color(0); from < 3; from++ {
		l.TransitionProbs(c, from, row)
		sum := 0.0
		for _, p := range row {
			if p < 0 || p > 1 {
				t.Fatalf("invalid prob %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row sums to %v", sum)
		}
		// The own color gets the laziness atom on top.
		base := make([]float64, 3)
		ThreeMajority{}.AdoptionProbs(c, base)
		want := 0.7*base[from] + 0.3
		if math.Abs(row[from]-want) > 1e-12 {
			t.Fatalf("diagonal %v, want %v", row[from], want)
		}
	}
}

func TestLazyZeroEqualsBase(t *testing.T) {
	l := NewLazy(ThreeMajority{}, 0)
	c := colorcfg.FromCounts(60, 40)
	row := make([]float64, 2)
	base := make([]float64, 2)
	l.TransitionProbs(c, 0, row)
	ThreeMajority{}.AdoptionProbs(c, base)
	for j := range row {
		if math.Abs(row[j]-base[j]) > 1e-12 {
			t.Fatalf("q=0 lazy differs from base at %d", j)
		}
	}
}

func TestLazyApplyOwnKeepRate(t *testing.T) {
	r := rng.New(1)
	l := NewLazy(ThreeMajority{}, 0.5)
	// own=9, samples unanimous on 3: half the updates keep 9.
	kept := 0
	const trials = 40000
	for i := 0; i < trials; i++ {
		if l.ApplyOwn(9, []Color{3, 3, 3}, r) == 9 {
			kept++
		}
	}
	rate := float64(kept) / trials
	if math.Abs(rate-0.5) > 0.01 {
		t.Fatalf("keep rate %v, want 0.5", rate)
	}
}

func TestLazyMetadata(t *testing.T) {
	l := NewLazy(Median{}, 0.25)
	if l.SampleSize() != 3 {
		t.Errorf("sample size %d", l.SampleSize())
	}
	if l.Name() != "lazy(0.25)[median]" {
		t.Errorf("name %q", l.Name())
	}
}

func TestLazyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"qNegative": func() { NewLazy(ThreeMajority{}, -0.1) },
		"qOne":      func() { NewLazy(ThreeMajority{}, 1) },
		"noModel":   func() { NewLazy(NewHPlurality(5), 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
