package dynamics

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseRule resolves the rule names shared by the CLI flags
// (cmd/plurality -rule, cmd/sweep -rules) and the service API
// (internal/service JobSpec.Rule) to their dynamics:
//
//	3majority | 3majority-utie | median | polling | 2choices | hplurality:H
//
// The stateful protocols (undecided, 2choices-keepown) carry their own
// engines and are dispatched by the callers before name parsing.
func ParseRule(s string) (Rule, error) {
	switch {
	case s == "3majority":
		return ThreeMajority{}, nil
	case s == "3majority-utie":
		return ThreeMajority{UniformTie: true}, nil
	case s == "median":
		return Median{}, nil
	case s == "polling":
		return Polling{}, nil
	case s == "2choices":
		return TwoChoices{}, nil
	case strings.HasPrefix(s, "hplurality:"):
		h, err := strconv.Atoi(strings.TrimPrefix(s, "hplurality:"))
		if err != nil || h < 1 {
			return nil, fmt.Errorf("bad h in rule %q", s)
		}
		return NewHPlurality(h), nil
	}
	return nil, fmt.Errorf("unknown rule %q", s)
}
