package dynamics

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/rng"
)

// Lazy wraps a dynamics with per-agent update failures: each round every
// agent independently fails to update with probability Q, keeping its
// current color (a crash/omission fault model; also the "lazy chain"
// standard trick). The wrapped rule must have a closed-form adoption
// vector (ProbModel), giving the transition row
//
//	P(from → ·) = Q·δ_from + (1−Q)·p(c),
//
// which runs on the CliqueMarkov engine. Laziness rescales the drift by
// (1−Q), so convergence slows by the factor 1/(1−Q) and no more —
// experiment E19 verifies this robustness property for 3-majority.
type Lazy struct {
	Rule Rule
	Q    float64
}

// NewLazy wraps rule; q must be in [0, 1) and rule must implement
// ProbModel.
func NewLazy(rule Rule, q float64) Lazy {
	if q < 0 || q >= 1 {
		panic("dynamics: Lazy requires 0 <= q < 1")
	}
	if _, ok := rule.(ProbModel); !ok {
		panic(fmt.Sprintf("dynamics: Lazy requires a ProbModel rule, got %q", rule.Name()))
	}
	return Lazy{Rule: rule, Q: q}
}

// Name implements StatefulRule.
func (l Lazy) Name() string { return fmt.Sprintf("lazy(%.2f)[%s]", l.Q, l.Rule.Name()) }

// SampleSize implements StatefulRule.
func (l Lazy) SampleSize() int { return l.Rule.SampleSize() }

// ApplyOwn implements StatefulRule: with probability Q keep the own color,
// otherwise apply the wrapped rule to the samples.
func (l Lazy) ApplyOwn(own Color, samples []Color, r *rng.Rand) Color {
	if l.Q > 0 && r.Float64() < l.Q {
		return own
	}
	return l.Rule.Apply(samples, r)
}

// TransitionProbs implements TransitionModel.
func (l Lazy) TransitionProbs(c colorcfg.Config, from Color, dst []float64) {
	l.Rule.(ProbModel).AdoptionProbs(c, dst)
	for j := range dst {
		dst[j] *= 1 - l.Q
	}
	dst[from] += l.Q
}
