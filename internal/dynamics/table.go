package dynamics

import (
	"fmt"

	"plurality/internal/rng"
)

// PermutationRule is a deterministic 3-input dynamics (a member of the class
// D3(k) of Definition 1) specified by its behaviour on rainbow triples.
//
// On a triple with a clear majority (at least two equal entries) it returns
// the majority color if MajorityOnClear is true (the clear-majority property
// of Definition 2) and the first sample otherwise.
//
// On a rainbow triple (three distinct colors) the behaviour is given by
// RainbowTable: sort the three sampled colors as lo < mid < hi; the triple's
// arrangement is one of the six permutations of (lo, mid, hi), indexed by
// PermIndex; RainbowTable[PermIndex] selects which of lo (0), mid (1) or
// hi (2) is returned. Every choice keeps the rule inside D3 (it always
// returns one of its inputs).
//
// The δ-profile of Definition 3 counts, over the six arrangements, how often
// each of lo/mid/hi is returned; DeltaProfile computes it. 3-majority has
// profile (2,2,2) — the uniform property; Theorem 3 proves every rule
// whose profile differs fails plurality consensus from o(n) bias.
type PermutationRule struct {
	// RuleName appears in experiment tables.
	RuleName string
	// RainbowTable maps the permutation index of a rainbow triple to the
	// rank (0 = lo, 1 = mid, 2 = hi) of the returned color.
	RainbowTable [6]uint8
	// MajorityOnClear selects the clear-majority behaviour (Definition 2).
	MajorityOnClear bool
}

// Name implements Rule.
func (p *PermutationRule) Name() string { return p.RuleName }

// SampleSize implements Rule.
func (p *PermutationRule) SampleSize() int { return 3 }

// PermIndex returns the index in [0, 6) of the arrangement of three distinct
// values: 0:(lo,mid,hi) 1:(lo,hi,mid) 2:(mid,lo,hi) 3:(mid,hi,lo)
// 4:(hi,lo,mid) 5:(hi,mid,lo).
func PermIndex(a, b, c Color) int {
	switch {
	case a < b && b < c:
		return 0
	case a < c && c < b:
		return 1
	case b < a && a < c:
		return 2
	case c < a && a < b:
		return 3
	case b < c && c < a:
		return 4
	default: // c < b && b < a
		return 5
	}
}

// Apply implements Rule.
func (p *PermutationRule) Apply(s []Color, _ *rng.Rand) Color {
	a, b, c := s[0], s[1], s[2]
	// Clear majority?
	switch {
	case a == b || a == c:
		if p.MajorityOnClear {
			return a
		}
		return s[0]
	case b == c:
		if p.MajorityOnClear {
			return b
		}
		return s[0]
	}
	// Rainbow triple: rank and dispatch.
	lo, mid, hi := sort3(a, b, c)
	switch p.RainbowTable[PermIndex(a, b, c)] {
	case 0:
		return lo
	case 1:
		return mid
	default:
		return hi
	}
}

// sort3 returns the three distinct values in increasing order.
func sort3(a, b, c Color) (lo, mid, hi Color) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// DeltaProfile returns (δ_lo, δ_mid, δ_hi): over the six arrangements of a
// rainbow triple, how many times the rule returns the smallest, middle and
// largest color. δ_lo + δ_mid + δ_hi = 6 for every 3-input dynamics.
func (p *PermutationRule) DeltaProfile() (dLo, dMid, dHi int) {
	for _, rank := range p.RainbowTable {
		switch rank {
		case 0:
			dLo++
		case 1:
			dMid++
		default:
			dHi++
		}
	}
	return
}

// Canonical Theorem 3 rule zoo. All have the clear-majority property (so
// Lemma 7 does not already rule them out); they differ in the rainbow
// δ-profile, which Lemma 8 shows must be uniform (2,2,2).
var (
	// FirstOnRainbow behaves exactly like 3-majority with the first-sample
	// tie-break; its profile is (2,2,2). Used as the positive control.
	FirstOnRainbow = &PermutationRule{
		RuleName: "3-majority(table)",
		// Arrangements: (l,m,h)->l (l,h,m)->l (m,l,h)->m (m,h,l)->m
		// (h,l,m)->h (h,m,l)->h — "return first sample".
		RainbowTable:    [6]uint8{0, 0, 1, 1, 2, 2},
		MajorityOnClear: true,
	}

	// Profile132 realizes δ = (1, 3, 2) (the "hardest" failing case of
	// Lemma 8: δ_lo = 1, δ_mid = 3, δ_hi = 2).
	Profile132 = &PermutationRule{
		RuleName:        "delta(1,3,2)",
		RainbowTable:    [6]uint8{1, 1, 1, 2, 2, 0},
		MajorityOnClear: true,
	}

	// Profile141 realizes δ = (1, 4, 1) (Lemma 8's second case).
	Profile141 = &PermutationRule{
		RuleName:        "delta(1,4,1)",
		RainbowTable:    [6]uint8{1, 1, 1, 1, 2, 0},
		MajorityOnClear: true,
	}

	// MedianTable realizes the median dynamics inside the table formalism:
	// always return the middle color, δ = (0, 6, 0). Clear-majority holds.
	MedianTable = &PermutationRule{
		RuleName:        "median(table)",
		RainbowTable:    [6]uint8{1, 1, 1, 1, 1, 1},
		MajorityOnClear: true,
	}

	// MinOnRainbow always returns the smallest color on rainbow triples,
	// δ = (6, 0, 0).
	MinOnRainbow = &PermutationRule{
		RuleName:        "delta(6,0,0)",
		RainbowTable:    [6]uint8{0, 0, 0, 0, 0, 0},
		MajorityOnClear: true,
	}

	// NoClearMajority violates Definition 2: it returns the first sample
	// on every triple (equivalent to polling). Lemma 7's counterexample.
	NoClearMajority = &PermutationRule{
		RuleName:        "first-sample(no-clear-majority)",
		RainbowTable:    [6]uint8{0, 0, 1, 1, 2, 2},
		MajorityOnClear: false,
	}
)

// RuleZoo returns the canonical Theorem 3 experiment set in display order.
func RuleZoo() []Rule {
	return []Rule{
		ThreeMajority{},
		FirstOnRainbow,
		Profile132,
		Profile141,
		MedianTable,
		MinOnRainbow,
		NoClearMajority,
	}
}

// ----- property checkers (Definitions 2 and 3) -----

// HasClearMajority checks the clear-majority property of Definition 2 by
// exhaustive enumeration over all triples (with repetitions) drawn from the
// probe colors: whenever at least two samples agree, the rule must return
// that majority color. Probe with at least three distinct colors for a
// meaningful verdict; permutation-invariant rules need no more.
func HasClearMajority(rule Rule, probe []Color, r *rng.Rand) bool {
	if rule.SampleSize() != 3 {
		panic("dynamics: clear-majority property is defined for 3-input rules")
	}
	s := make([]Color, 3)
	for _, a := range probe {
		for _, b := range probe {
			for _, c := range probe {
				maj, ok := clearMajority(a, b, c)
				if !ok {
					continue
				}
				s[0], s[1], s[2] = a, b, c
				if rule.Apply(s, r) != maj {
					return false
				}
			}
		}
	}
	return true
}

func clearMajority(a, b, c Color) (Color, bool) {
	switch {
	case a == b || a == c:
		return a, true
	case b == c:
		return b, true
	}
	return 0, false
}

// DeltaProfileOf measures the δ-profile of Definition 3 for an arbitrary
// 3-input rule on the specific rainbow triple (r, g, b) of distinct colors:
// it applies the rule to all six arrangements and counts how many times
// each color is returned. For randomized tie-break rules the profile is
// estimated over reps trials per arrangement and the modal outcome per
// arrangement contributes fractionally; deterministic rules need reps = 1.
func DeltaProfileOf(rule Rule, r, g, b Color, rnd *rng.Rand, reps int) map[Color]float64 {
	if rule.SampleSize() != 3 {
		panic("dynamics: δ-profile is defined for 3-input rules")
	}
	if reps < 1 {
		reps = 1
	}
	perms := [6][3]Color{
		{r, g, b}, {r, b, g}, {g, r, b}, {g, b, r}, {b, r, g}, {b, g, r},
	}
	out := map[Color]float64{r: 0, g: 0, b: 0}
	s := make([]Color, 3)
	for _, p := range perms {
		for i := 0; i < reps; i++ {
			s[0], s[1], s[2] = p[0], p[1], p[2]
			out[rule.Apply(s, rnd)] += 1 / float64(reps)
		}
	}
	return out
}

// IsUniform checks the uniform property of Definition 3 on the given rainbow
// triple: every color must receive exactly δ = 2 (within tol for randomized
// rules estimated with reps > 1).
func IsUniform(rule Rule, r, g, b Color, rnd *rng.Rand, reps int, tol float64) bool {
	prof := DeltaProfileOf(rule, r, g, b, rnd, reps)
	for _, v := range prof {
		if v < 2-tol || v > 2+tol {
			return false
		}
	}
	return true
}

// Validate checks that a rule is a well-formed member of Dh(k): applying it
// to random triples from the probe colors always returns one of its inputs.
// It returns an error naming the first violation.
func Validate(rule Rule, probe []Color, rnd *rng.Rand, trials int) error {
	h := rule.SampleSize()
	if h < 1 {
		return fmt.Errorf("dynamics: rule %q has sample size %d", rule.Name(), h)
	}
	s := make([]Color, h)
	for t := 0; t < trials; t++ {
		for i := range s {
			s[i] = probe[rnd.Intn(len(probe))]
		}
		out := rule.Apply(s, rnd)
		found := false
		for _, v := range s {
			if v == out {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("dynamics: rule %q returned %d not among samples %v",
				rule.Name(), out, s)
		}
	}
	return nil
}
