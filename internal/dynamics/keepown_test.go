package dynamics

import (
	"math"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/rng"
)

func TestKeepOwnMetadata(t *testing.T) {
	ko := TwoChoicesKeepOwn{}
	if ko.Name() != "2-choices-keep-own" || ko.SampleSize() != 2 {
		t.Errorf("metadata: %q %d", ko.Name(), ko.SampleSize())
	}
	mk := ThreeMajorityKeepOwn{}
	if mk.Name() != "3-majority(markov)" || mk.SampleSize() != 3 {
		t.Errorf("metadata: %q %d", mk.Name(), mk.SampleSize())
	}
	if (ThreeMajority{UniformTie: true}).Name() != "3-majority(uniform-tie)" {
		t.Error("uniform-tie name")
	}
	if (Polling{}).Name() != "polling" || (TwoChoices{}).Name() != "2-choices" ||
		(Median{}).Name() != "median" {
		t.Error("rule names")
	}
}

func TestKeepOwnApplyOwnBranches(t *testing.T) {
	r := rng.New(1)
	ko := TwoChoicesKeepOwn{}
	if ko.ApplyOwn(9, []Color{4, 4}, r) != 4 {
		t.Error("agreeing pair must be adopted")
	}
	if ko.ApplyOwn(9, []Color{4, 5}, r) != 9 {
		t.Error("disagreeing pair must keep own")
	}
	mk := ThreeMajorityKeepOwn{}
	if mk.ApplyOwn(9, []Color{4, 4, 5}, r) != 4 {
		t.Error("markov 3-majority must follow the sample majority")
	}
}

func TestKeepOwnTransitionProbsDirect(t *testing.T) {
	c := colorcfg.FromCounts(60, 40)
	row := make([]float64, 2)
	TwoChoicesKeepOwn{}.TransitionProbs(c, 0, row)
	// P(0 -> 1) = (0.4)² = 0.16; P(stay) = 0.84.
	if math.Abs(row[1]-0.16) > 1e-12 || math.Abs(row[0]-0.84) > 1e-12 {
		t.Fatalf("row = %v", row)
	}
	// Markov 3-majority row equals Lemma 1 regardless of `from`.
	rowA := make([]float64, 2)
	rowB := make([]float64, 2)
	ThreeMajorityKeepOwn{}.TransitionProbs(c, 0, rowA)
	ThreeMajorityKeepOwn{}.TransitionProbs(c, 1, rowB)
	base := make([]float64, 2)
	ThreeMajority{}.AdoptionProbs(c, base)
	for j := range base {
		if rowA[j] != base[j] || rowB[j] != base[j] {
			t.Fatalf("markov rows differ from Lemma 1: %v %v vs %v", rowA, rowB, base)
		}
	}
}

func TestKeepOwnTransitionProbsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TwoChoicesKeepOwn{}.TransitionProbs(colorcfg.New(2), 0, make([]float64, 2))
}
