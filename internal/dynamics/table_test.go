package dynamics

import (
	"testing"

	"plurality/internal/rng"
)

func TestPermIndexCoversAllArrangements(t *testing.T) {
	perms := [][3]Color{
		{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1},
	}
	want := []int{0, 1, 2, 3, 4, 5}
	for i, p := range perms {
		if got := PermIndex(p[0], p[1], p[2]); got != want[i] {
			t.Errorf("PermIndex(%v) = %d, want %d", p, got, want[i])
		}
	}
}

func TestFirstOnRainbowMatchesThreeMajority(t *testing.T) {
	r := rng.New(1)
	m := ThreeMajority{}
	s := make([]Color, 3)
	for a := Color(0); a < 5; a++ {
		for b := Color(0); b < 5; b++ {
			for c := Color(0); c < 5; c++ {
				s[0], s[1], s[2] = a, b, c
				if FirstOnRainbow.Apply(s, r) != m.Apply(s, r) {
					t.Errorf("table rule diverges from 3-majority on (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
}

func TestDeltaProfiles(t *testing.T) {
	cases := []struct {
		rule        *PermutationRule
		lo, mid, hi int
	}{
		{FirstOnRainbow, 2, 2, 2},
		{Profile132, 1, 3, 2},
		{Profile141, 1, 4, 1},
		{MedianTable, 0, 6, 0},
		{MinOnRainbow, 6, 0, 0},
	}
	for _, c := range cases {
		lo, mid, hi := c.rule.DeltaProfile()
		if lo != c.lo || mid != c.mid || hi != c.hi {
			t.Errorf("%s: profile (%d,%d,%d), want (%d,%d,%d)",
				c.rule.Name(), lo, mid, hi, c.lo, c.mid, c.hi)
		}
		if lo+mid+hi != 6 {
			t.Errorf("%s: profile does not sum to 6", c.rule.Name())
		}
	}
}

func TestDeltaProfileOfMeasured(t *testing.T) {
	// Measured profile must match the declared table profile.
	r := rng.New(2)
	for _, rule := range []*PermutationRule{FirstOnRainbow, Profile132, Profile141, MedianTable} {
		prof := DeltaProfileOf(rule, 3, 7, 9, r, 1)
		wantLo, wantMid, wantHi := rule.DeltaProfile()
		if int(prof[3]) != wantLo || int(prof[7]) != wantMid || int(prof[9]) != wantHi {
			t.Errorf("%s: measured %v, want (%d,%d,%d)", rule.Name(), prof, wantLo, wantMid, wantHi)
		}
	}
}

func TestDeltaProfileOfThreeMajorityUniformTie(t *testing.T) {
	// The uniform tie-break has expected profile (2,2,2); with many reps the
	// estimate should be close.
	r := rng.New(3)
	prof := DeltaProfileOf(ThreeMajority{UniformTie: true}, 0, 1, 2, r, 4000)
	for col, v := range prof {
		if v < 1.85 || v > 2.15 {
			t.Errorf("uniform-tie profile[%d] = %v, want ~2", col, v)
		}
	}
}

func TestHasClearMajority(t *testing.T) {
	r := rng.New(4)
	probe := []Color{0, 1, 2, 3}
	positives := []Rule{
		ThreeMajority{}, ThreeMajority{UniformTie: true},
		FirstOnRainbow, Profile132, Profile141, MedianTable, MinOnRainbow, Median{},
	}
	for _, rule := range positives {
		if !HasClearMajority(rule, probe, r) {
			t.Errorf("%s should have the clear-majority property", rule.Name())
		}
	}
	if HasClearMajority(NoClearMajority, probe, r) {
		t.Error("first-sample rule must fail the clear-majority check")
	}
}

func TestIsUniform(t *testing.T) {
	r := rng.New(5)
	if !IsUniform(ThreeMajority{}, 1, 4, 6, r, 1, 0.01) {
		t.Error("3-majority must be uniform")
	}
	if !IsUniform(FirstOnRainbow, 1, 4, 6, r, 1, 0.01) {
		t.Error("table 3-majority must be uniform")
	}
	for _, rule := range []Rule{Profile132, Profile141, MedianTable, MinOnRainbow, Median{}} {
		if IsUniform(rule, 1, 4, 6, r, 1, 0.01) {
			t.Errorf("%s must not be uniform", rule.Name())
		}
	}
	if !IsUniform(ThreeMajority{UniformTie: true}, 1, 4, 6, r, 8000, 0.2) {
		t.Error("uniform-tie 3-majority should measure uniform")
	}
}

func TestTheorem3Characterization(t *testing.T) {
	// Theorem 3: a rule solves plurality consensus iff it has both
	// properties. Verify the classification of the whole zoo.
	r := rng.New(6)
	probe := []Color{0, 1, 2, 3, 4}
	type verdict struct {
		clear, uniform bool
	}
	want := map[string]verdict{
		"3-majority":                      {true, true},
		"3-majority(table)":               {true, true},
		"delta(1,3,2)":                    {true, false},
		"delta(1,4,1)":                    {true, false},
		"median(table)":                   {true, false},
		"delta(6,0,0)":                    {true, false},
		"first-sample(no-clear-majority)": {false, true},
	}
	for _, rule := range RuleZoo() {
		w, ok := want[rule.Name()]
		if !ok {
			t.Fatalf("unexpected rule %q in zoo", rule.Name())
		}
		gotClear := HasClearMajority(rule, probe, r)
		gotUniform := IsUniform(rule, 0, 2, 4, r, 1, 0.01)
		if gotClear != w.clear || gotUniform != w.uniform {
			t.Errorf("%s: (clear=%v uniform=%v), want (%v %v)",
				rule.Name(), gotClear, gotUniform, w.clear, w.uniform)
		}
	}
}

func TestValidateCatchesBadRule(t *testing.T) {
	r := rng.New(7)
	bad := badRule{}
	if err := Validate(bad, []Color{0, 1, 2}, r, 100); err == nil {
		t.Error("Validate accepted a rule returning non-sampled colors")
	}
}

type badRule struct{}

func (badRule) Name() string                   { return "bad" }
func (badRule) SampleSize() int                { return 3 }
func (badRule) Apply([]Color, *rng.Rand) Color { return 999 }

func TestPropertyCheckersPanicOnWrongArity(t *testing.T) {
	r := rng.New(8)
	poll := Polling{}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("HasClearMajority must panic for h != 3")
			}
		}()
		HasClearMajority(poll, []Color{0, 1}, r)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DeltaProfileOf must panic for h != 3")
			}
		}()
		DeltaProfileOf(poll, 0, 1, 2, r, 1)
	}()
}
