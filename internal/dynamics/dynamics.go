// Package dynamics implements the update rules studied in the paper:
//
//   - ThreeMajority — the paper's headline 3-majority dynamics (sample three
//     agents u.a.r., adopt the majority color, break rainbow ties by taking
//     the first sample, or uniformly with the UniformTie option; the paper
//     notes the two tie-breaks are equivalent).
//   - HPlurality — the h-sample generalization of Section 4.3 (adopt the
//     plurality among h samples, ties u.a.r.).
//   - Median — the 3-input median dynamics of Doerr et al. (SPAA'11), the
//     comparator for the exponential-gap result.
//   - Polling — the 1-majority (voter) dynamics, which fails plurality
//     consensus with constant probability even for k = 2 and s = Θ(n).
//   - TwoChoices — 2 samples, ties u.a.r.; provably equivalent to Polling.
//   - PermutationRule — arbitrary members of the 3-input dynamics class
//     D3(k) (Definition 1) built from a δ-profile over rainbow triples,
//     used to exercise the Theorem 3 negative results.
//
// A Rule is a pure function of the sampled colors (dynamics are stateless by
// definition — Definition 1); stateful protocols such as the undecided-state
// dynamics live in internal/engine because they need per-agent state.
//
// Rules whose per-round adoption probabilities have a closed form also
// implement ProbModel, which the exact O(k)-per-round clique engine uses
// (Lemma 1 gives the form for 3-majority).
package dynamics

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/rng"
)

// Color aliases colorcfg.Color for brevity inside the package API.
type Color = colorcfg.Color

// Rule is a stateless anonymous update rule: given the colors of the
// sampled agents (in sampling order), it returns the agent's next color.
// Implementations must be pure up to the provided rng and must return one
// of the sampled colors (the defining constraint of Definition 1).
type Rule interface {
	// Name identifies the rule in experiment tables.
	Name() string
	// SampleSize is the number of agents sampled per update (h).
	SampleSize() int
	// Apply returns the next color given the sampled colors. len(samples)
	// equals SampleSize(). Apply must not retain or mutate samples.
	Apply(samples []Color, r *rng.Rand) Color
}

// RandFree is the optional marker for rules whose Apply never consumes the
// rng (for every input, not just typical ones). The graph engine's batched
// sampling path interleaves a block of neighbor draws before a block of rule
// applications; for a rand-free rule that reordering leaves the rng stream
// byte-identical to the sequential loop, so the engine may batch by default
// without perturbing seeded runs. Rules that consume randomness on any input
// (uniform tie-breaks, reservoir plurality) must not implement this, or must
// return false.
type RandFree interface {
	// RandFree reports whether Apply is guaranteed not to touch the rng.
	RandFree() bool
}

// IsRandFree reports whether the rule declares, via the RandFree marker,
// that Apply never consumes the rng.
func IsRandFree(rule Rule) bool {
	rf, ok := rule.(RandFree)
	return ok && rf.RandFree()
}

// ProbModel is implemented by rules whose adoption probabilities on the
// clique have a closed form: dst[j] receives the probability that a single
// agent adopts color j at the next round given configuration c. Σ dst = 1.
// The exact clique engine draws C(t+1) ~ Multinomial(n, dst).
type ProbModel interface {
	AdoptionProbs(c colorcfg.Config, dst []float64)
}

// ----- 3-majority -----

// ThreeMajority is the paper's 3-majority dynamics. The zero value uses the
// paper's deterministic tie-break (first sample); set UniformTie for the
// uniform variant, which the paper observes yields the same process.
type ThreeMajority struct {
	// UniformTie, if set, breaks three-distinct-color ties uniformly at
	// random instead of taking the first sample.
	UniformTie bool
}

// Name implements Rule.
func (m ThreeMajority) Name() string {
	if m.UniformTie {
		return "3-majority(uniform-tie)"
	}
	return "3-majority"
}

// SampleSize implements Rule.
func (ThreeMajority) SampleSize() int { return 3 }

// Apply implements Rule: majority of three, rainbow ties to the first
// sample (or uniform).
func (m ThreeMajority) Apply(s []Color, r *rng.Rand) Color {
	a, b, c := s[0], s[1], s[2]
	switch {
	case a == b || a == c:
		return a
	case b == c:
		return b
	}
	if m.UniformTie {
		return s[r.Intn(3)]
	}
	return a
}

// RandFree implements the batching marker: the first-sample tie-break never
// touches the rng; the uniform variant draws on rainbow ties.
func (m ThreeMajority) RandFree() bool { return !m.UniformTie }

// AdoptionProbs implements ProbModel using Lemma 1:
//
//	µ_j(c) = c_j · (1 + (n·c_j − Σ_h c_h²)/n²),  p_j = µ_j / n.
//
// The formula holds for both tie-break variants (the tie term contributes
// c_j/n · P(two distinct non-j colors) either way by symmetry).
func (ThreeMajority) AdoptionProbs(c colorcfg.Config, dst []float64) {
	n := float64(c.N())
	if n == 0 {
		panic("dynamics: AdoptionProbs on empty configuration")
	}
	sumSq := c.SumSquares()
	n2 := n * n
	n3 := n2 * n
	for j, cj := range c {
		fj := float64(cj)
		dst[j] = fj * (n2 + n*fj - sumSq) / n3
	}
}

// ----- h-plurality -----

// HPlurality is the h-sample plurality dynamics of Section 4.3: sample h
// agents u.a.r. and adopt the most frequent color among them, breaking ties
// uniformly at random among the tied colors.
type HPlurality struct {
	H int
}

// NewHPlurality returns the h-plurality rule; h must be >= 1.
func NewHPlurality(h int) HPlurality {
	if h < 1 {
		panic("dynamics: h-plurality requires h >= 1")
	}
	return HPlurality{H: h}
}

// Name implements Rule.
func (p HPlurality) Name() string { return fmt.Sprintf("%d-plurality", p.H) }

// SampleSize implements Rule.
func (p HPlurality) SampleSize() int { return p.H }

// Apply implements Rule. It counts multiplicities in O(h²) (h is small by
// design — the paper's point is that large h buys little), finds the
// maximum multiplicity, and picks uniformly among the distinct colors that
// achieve it. Reservoir-style selection avoids allocation.
func (p HPlurality) Apply(s []Color, r *rng.Rand) Color {
	best := s[0]
	bestCount := 0
	ties := 0
	for i := 0; i < len(s); i++ {
		ci := s[i]
		// Only the first occurrence of each distinct color is a candidate.
		dup := false
		for j := 0; j < i; j++ {
			if s[j] == ci {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		count := 1
		for j := i + 1; j < len(s); j++ {
			if s[j] == ci {
				count++
			}
		}
		switch {
		case count > bestCount:
			best, bestCount, ties = ci, count, 1
		case count == bestCount:
			ties++
			// Reservoir sampling over tied colors: replace with prob 1/ties.
			if r.Intn(ties) == 0 {
				best = ci
			}
		}
	}
	return best
}

// ----- median -----

// Median is the 3-input median dynamics of Doerr et al. (SPAA'11): adopt
// the median of the three sampled colors under the natural integer order.
// It solves stabilizing consensus on (an approximation of) the median in
// O(log n) rounds but does not solve plurality consensus: it has the
// clear-majority property (the median of {a, a, b} is a) but not the
// uniform property (its rainbow δ-profile is (0, 6, 0)).
type Median struct{}

// Name implements Rule.
func (Median) Name() string { return "median" }

// SampleSize implements Rule.
func (Median) SampleSize() int { return 3 }

// Apply implements Rule.
func (Median) Apply(s []Color, _ *rng.Rand) Color {
	a, b, c := s[0], s[1], s[2]
	// Median of three without branchy sorting.
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// RandFree implements the batching marker: the median is deterministic in
// its samples.
func (Median) RandFree() bool { return true }

// AdoptionProbs implements ProbModel. With F(j) = Σ_{h<=j} c_h / n the CDF
// of one sample, P(median <= j) = F(j)²·(3 − 2F(j)), so the per-color
// probability is the successive difference. O(k) per round.
func (Median) AdoptionProbs(c colorcfg.Config, dst []float64) {
	n := float64(c.N())
	if n == 0 {
		panic("dynamics: AdoptionProbs on empty configuration")
	}
	prevCDF := 0.0 // P(median <= j-1)
	cum := 0.0
	for j, cj := range c {
		cum += float64(cj) / n
		f := cum
		cdf := f * f * (3 - 2*f)
		dst[j] = cdf - prevCDF
		prevCDF = cdf
	}
}

// ----- polling (1-majority / voter) -----

// Polling is the 1-majority (voter) dynamics: adopt the color of a single
// sampled agent. On the clique it reaches consensus in Θ(n) expected rounds
// but converges to a minority color with constant probability even for
// k = 2 and bias s = Θ(n) — the paper's motivation for sampling three.
type Polling struct{}

// Name implements Rule.
func (Polling) Name() string { return "polling" }

// SampleSize implements Rule.
func (Polling) SampleSize() int { return 1 }

// Apply implements Rule.
func (Polling) Apply(s []Color, _ *rng.Rand) Color { return s[0] }

// RandFree implements the batching marker: polling copies its one sample.
func (Polling) RandFree() bool { return true }

// AdoptionProbs implements ProbModel: p_j = c_j / n.
func (Polling) AdoptionProbs(c colorcfg.Config, dst []float64) {
	n := float64(c.N())
	if n == 0 {
		panic("dynamics: AdoptionProbs on empty configuration")
	}
	for j, cj := range c {
		dst[j] = float64(cj) / n
	}
}

// ----- two choices -----

// TwoChoices samples two agents and adopts their color if they agree,
// otherwise picks one of the two uniformly at random. The paper remarks it
// is equivalent to Polling; the algebra confirms it:
// p_j = (c_j/n)² + Σ_{h≠j} 2·(c_j/n)(c_h/n)·½ = c_j/n.
type TwoChoices struct{}

// Name implements Rule.
func (TwoChoices) Name() string { return "2-choices" }

// SampleSize implements Rule.
func (TwoChoices) SampleSize() int { return 2 }

// Apply implements Rule.
func (TwoChoices) Apply(s []Color, r *rng.Rand) Color {
	if s[0] == s[1] || r.Bool() {
		return s[0]
	}
	return s[1]
}

// AdoptionProbs implements ProbModel (identical to Polling; kept separate so
// the equivalence is validated by tests rather than assumed).
func (TwoChoices) AdoptionProbs(c colorcfg.Config, dst []float64) {
	Polling{}.AdoptionProbs(c, dst)
}
