package dynamics

import (
	"plurality/internal/colorcfg"
	"plurality/internal/rng"
)

// StatefulRule is a rule whose update depends on the agent's own current
// color in addition to the sampled colors. Such rules are *not* dynamics
// in the strict sense of Definition 1 (which conditions only on the
// sample), but several natural comparators from the follow-on literature —
// notably 2-choices-keep-own — have this form, and the paper's own model
// remarks contrast against them. They run on the CliqueMarkov engine.
type StatefulRule interface {
	// Name identifies the rule.
	Name() string
	// SampleSize is the number of sampled agents per update.
	SampleSize() int
	// ApplyOwn returns the next color given the agent's own color and the
	// sampled colors.
	ApplyOwn(own Color, samples []Color, r *rng.Rand) Color
}

// TransitionModel is the closed-form counterpart of StatefulRule on the
// clique: TransitionProbs fills dst[h] with the probability that an agent
// currently holding color `from` holds color h after one round, given
// configuration c. Rows sum to 1. The CliqueMarkov engine draws the next
// configuration as a sum of independent multinomials, one per source
// color — exact, O(k²) per round.
type TransitionModel interface {
	TransitionProbs(c colorcfg.Config, from Color, dst []float64)
}

// TwoChoicesKeepOwn is the two-choices dynamics of the follow-on
// literature (Cooper, Elsässer, Radzik et al.): sample two agents; adopt
// their color if they *agree*, otherwise keep your own color. Unlike the
// paper's TwoChoices (ties broken uniformly — provably just polling), the
// keep-own variant has real drift: the probability of switching to color
// h is (c_h/n)², which amplifies the square of the leader's advantage.
// For k = 2 it solves majority w.h.p. in O(log n) given s = Ω(sqrt(n log n));
// with many colors it is slow from thin configurations because switching
// requires a same-color pair in the sample.
type TwoChoicesKeepOwn struct{}

// Name implements StatefulRule.
func (TwoChoicesKeepOwn) Name() string { return "2-choices-keep-own" }

// SampleSize implements StatefulRule.
func (TwoChoicesKeepOwn) SampleSize() int { return 2 }

// ApplyOwn implements StatefulRule.
func (TwoChoicesKeepOwn) ApplyOwn(own Color, s []Color, _ *rng.Rand) Color {
	if s[0] == s[1] {
		return s[0]
	}
	return own
}

// TransitionProbs implements TransitionModel:
// P(from → h) = (c_h/n)² for h ≠ from; P(stay) = 1 − Σ_{h≠from} (c_h/n)².
func (TwoChoicesKeepOwn) TransitionProbs(c colorcfg.Config, from Color, dst []float64) {
	n := float64(c.N())
	if n == 0 {
		panic("dynamics: TransitionProbs on empty configuration")
	}
	stay := 1.0
	for h, ch := range c {
		p := float64(ch) / n
		p *= p
		if Color(h) == from {
			continue
		}
		dst[h] = p
		stay -= p
	}
	dst[from] = stay
}

// ThreeMajorityKeepOwn is 3-majority restated as a stateful rule (the own
// color is ignored); it exists so the CliqueMarkov engine can be
// cross-validated against the anonymous engines.
type ThreeMajorityKeepOwn struct{}

// Name implements StatefulRule.
func (ThreeMajorityKeepOwn) Name() string { return "3-majority(markov)" }

// SampleSize implements StatefulRule.
func (ThreeMajorityKeepOwn) SampleSize() int { return 3 }

// ApplyOwn implements StatefulRule.
func (ThreeMajorityKeepOwn) ApplyOwn(_ Color, s []Color, r *rng.Rand) Color {
	return ThreeMajority{}.Apply(s, r)
}

// TransitionProbs implements TransitionModel: every row is the Lemma 1
// adoption vector (the own color does not matter).
func (ThreeMajorityKeepOwn) TransitionProbs(c colorcfg.Config, _ Color, dst []float64) {
	ThreeMajority{}.AdoptionProbs(c, dst)
}
