package dynamics

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/colorcfg"
	"plurality/internal/rng"
)

func TestThreeMajorityClearCases(t *testing.T) {
	r := rng.New(1)
	m := ThreeMajority{}
	cases := []struct {
		s    []Color
		want Color
	}{
		{[]Color{1, 1, 1}, 1},
		{[]Color{1, 1, 2}, 1},
		{[]Color{1, 2, 1}, 1},
		{[]Color{2, 1, 1}, 1},
		{[]Color{0, 3, 3}, 3},
		{[]Color{5, 5, 0}, 5},
	}
	for _, c := range cases {
		if got := m.Apply(c.s, r); got != c.want {
			t.Errorf("Apply(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestThreeMajorityRainbowFirst(t *testing.T) {
	r := rng.New(2)
	m := ThreeMajority{}
	if got := m.Apply([]Color{7, 2, 5}, r); got != 7 {
		t.Errorf("rainbow tie must return first sample, got %d", got)
	}
}

func TestThreeMajorityRainbowUniform(t *testing.T) {
	r := rng.New(3)
	m := ThreeMajority{UniformTie: true}
	counts := map[Color]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[m.Apply([]Color{7, 2, 5}, r)]++
	}
	for _, col := range []Color{7, 2, 5} {
		frac := float64(counts[col]) / trials
		if math.Abs(frac-1.0/3) > 0.01 {
			t.Errorf("color %d chosen with rate %v, want 1/3", col, frac)
		}
	}
}

func TestThreeMajorityAdoptionProbsMatchLemma1(t *testing.T) {
	// Lemma 1: µ_j = c_j(1 + (n c_j - Σ c_h²)/n²). Check p_j = µ_j/n for a
	// handful of configurations, and that probabilities sum to 1.
	configs := []colorcfg.Config{
		colorcfg.FromCounts(60, 25, 15),
		colorcfg.FromCounts(1, 1, 1, 97),
		colorcfg.Biased(1000, 10, 100),
		colorcfg.Balanced(999, 7),
	}
	for _, c := range configs {
		n := float64(c.N())
		dst := make([]float64, c.K())
		ThreeMajority{}.AdoptionProbs(c, dst)
		sum := 0.0
		sumSq := c.SumSquares()
		for j, p := range dst {
			cj := float64(c[j])
			mu := cj * (1 + (n*cj-sumSq)/(n*n))
			if math.Abs(p-mu/n) > 1e-12 {
				t.Errorf("config %v color %d: p=%v, lemma1 %v", c, j, p, mu/n)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("config %v: probs sum to %v", c, sum)
		}
	}
}

func TestThreeMajorityApplyMatchesAdoptionProbs(t *testing.T) {
	// Monte-Carlo: empirical adoption frequency from Apply with iid samples
	// must match the closed form within sampling error.
	r := rng.New(4)
	c := colorcfg.FromCounts(50, 30, 20)
	n := c.N()
	agents := c.ToAgents(nil)
	want := make([]float64, c.K())
	ThreeMajority{}.AdoptionProbs(c, want)

	const trials = 300000
	counts := make([]int, c.K())
	s := make([]Color, 3)
	for i := 0; i < trials; i++ {
		for j := range s {
			s[j] = agents[r.Int63n(n)]
		}
		counts[ThreeMajority{}.Apply(s, r)]++
	}
	for j := range want {
		got := float64(counts[j]) / trials
		se := math.Sqrt(want[j] * (1 - want[j]) / trials)
		if math.Abs(got-want[j]) > 5*se {
			t.Errorf("color %d: empirical %v, closed form %v (se %v)", j, got, want[j], se)
		}
	}
}

func TestTieBreakVariantsSameDistribution(t *testing.T) {
	// The paper notes first-sample and uniform tie-breaking yield the same
	// process; verify the single-agent adoption distribution matches.
	r := rng.New(5)
	c := colorcfg.FromCounts(40, 35, 25)
	agents := c.ToAgents(nil)
	n := c.N()
	const trials = 300000
	countsFirst := make([]int, c.K())
	countsUnif := make([]int, c.K())
	s := make([]Color, 3)
	for i := 0; i < trials; i++ {
		for j := range s {
			s[j] = agents[r.Int63n(n)]
		}
		countsFirst[ThreeMajority{}.Apply(s, r)]++
		countsUnif[ThreeMajority{UniformTie: true}.Apply(s, r)]++
	}
	for j := 0; j < c.K(); j++ {
		a := float64(countsFirst[j]) / trials
		b := float64(countsUnif[j]) / trials
		if math.Abs(a-b) > 0.006 {
			t.Errorf("color %d: first-tie %v vs uniform-tie %v", j, a, b)
		}
	}
}

func TestHPluralityBasics(t *testing.T) {
	r := rng.New(6)
	p := NewHPlurality(5)
	if p.Name() != "5-plurality" || p.SampleSize() != 5 {
		t.Fatalf("bad metadata: %q %d", p.Name(), p.SampleSize())
	}
	// Clear plurality.
	if got := p.Apply([]Color{3, 1, 3, 2, 3}, r); got != 3 {
		t.Errorf("plurality of (3,1,3,2,3) = %d", got)
	}
	// All same.
	if got := p.Apply([]Color{4, 4, 4, 4, 4}, r); got != 4 {
		t.Errorf("unanimous = %d", got)
	}
}

func TestHPluralityH3MatchesMajorityOnClear(t *testing.T) {
	r := rng.New(7)
	p := NewHPlurality(3)
	m := ThreeMajority{}
	for _, s := range [][]Color{{1, 1, 2}, {2, 1, 1}, {1, 2, 1}, {9, 9, 9}} {
		if p.Apply(s, r) != m.Apply(s, r) {
			t.Errorf("h=3 plurality diverges from 3-majority on %v", s)
		}
	}
}

func TestHPluralityTieUniform(t *testing.T) {
	r := rng.New(8)
	p := NewHPlurality(4)
	// Two colors tied at multiplicity 2.
	counts := map[Color]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[p.Apply([]Color{1, 2, 2, 1}, r)]++
	}
	for _, col := range []Color{1, 2} {
		frac := float64(counts[col]) / trials
		if math.Abs(frac-0.5) > 0.01 {
			t.Errorf("tied color %d rate %v, want 0.5", col, frac)
		}
	}
	if counts[0] != 0 {
		t.Error("h-plurality returned a color not in the sample")
	}
}

func TestHPluralityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHPlurality(0) must panic")
		}
	}()
	NewHPlurality(0)
}

func TestMedianRule(t *testing.T) {
	r := rng.New(9)
	m := Median{}
	cases := []struct {
		s    []Color
		want Color
	}{
		{[]Color{1, 2, 3}, 2},
		{[]Color{3, 1, 2}, 2},
		{[]Color{2, 3, 1}, 2},
		{[]Color{5, 5, 1}, 5},
		{[]Color{1, 5, 5}, 5},
		{[]Color{7, 7, 7}, 7},
		{[]Color{9, 0, 4}, 4},
	}
	for _, c := range cases {
		if got := m.Apply(c.s, r); got != c.want {
			t.Errorf("median(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestMedianAdoptionProbs(t *testing.T) {
	r := rng.New(10)
	c := colorcfg.FromCounts(30, 50, 20)
	want := make([]float64, 3)
	Median{}.AdoptionProbs(c, want)
	sum := 0.0
	for _, p := range want {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("median probs sum to %v", sum)
	}
	// Monte-Carlo cross-check.
	agents := c.ToAgents(nil)
	n := c.N()
	const trials = 300000
	counts := make([]int, 3)
	s := make([]Color, 3)
	for i := 0; i < trials; i++ {
		for j := range s {
			s[j] = agents[r.Int63n(n)]
		}
		counts[Median{}.Apply(s, r)]++
	}
	for j := range want {
		got := float64(counts[j]) / trials
		se := math.Sqrt(want[j]*(1-want[j])/trials) + 1e-9
		if math.Abs(got-want[j]) > 5*se {
			t.Errorf("median color %d: empirical %v, closed form %v", j, got, want[j])
		}
	}
}

func TestPollingAndTwoChoices(t *testing.T) {
	r := rng.New(11)
	if got := (Polling{}).Apply([]Color{5}, r); got != 5 {
		t.Errorf("polling = %d", got)
	}
	// TwoChoices on agreeing samples.
	if got := (TwoChoices{}).Apply([]Color{3, 3}, r); got != 3 {
		t.Errorf("2-choices agree = %d", got)
	}
	// TwoChoices on disagreeing samples: uniform.
	counts := map[Color]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[(TwoChoices{}).Apply([]Color{1, 2}, r)]++
	}
	if math.Abs(float64(counts[1])/trials-0.5) > 0.01 {
		t.Errorf("2-choices split %v", counts)
	}
}

func TestTwoChoicesEquivalentToPolling(t *testing.T) {
	// The closed forms must agree exactly (paper's remark).
	c := colorcfg.FromCounts(17, 4, 29, 50)
	a := make([]float64, 4)
	b := make([]float64, 4)
	Polling{}.AdoptionProbs(c, a)
	TwoChoices{}.AdoptionProbs(c, b)
	for j := range a {
		if a[j] != b[j] {
			t.Errorf("color %d: polling %v, 2-choices %v", j, a[j], b[j])
		}
	}
}

func TestRulesReturnSampledColor(t *testing.T) {
	// Definition 1 invariant: every rule returns one of its inputs.
	r := rng.New(12)
	probe := []Color{0, 1, 2, 3, 4, 5, 6, 7}
	rules := []Rule{
		ThreeMajority{}, ThreeMajority{UniformTie: true},
		NewHPlurality(1), NewHPlurality(3), NewHPlurality(7),
		Median{}, Polling{}, TwoChoices{},
	}
	rules = append(rules, RuleZoo()...)
	for _, rule := range rules {
		if err := Validate(rule, probe, r, 2000); err != nil {
			t.Error(err)
		}
	}
}

func TestRuleApplyIsPureQuick(t *testing.T) {
	// Deterministic rules must give identical outputs on identical inputs.
	r := rng.New(13)
	f := func(a, b, c uint8) bool {
		s := []Color{Color(a % 16), Color(b % 16), Color(c % 16)}
		m := ThreeMajority{}
		x := m.Apply(s, r)
		y := m.Apply(s, r)
		med := Median{}
		return x == y && med.Apply(s, r) == med.Apply(s, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAdoptionProbsPanicOnEmpty(t *testing.T) {
	empty := colorcfg.Config{0, 0}
	for _, pm := range []ProbModel{ThreeMajority{}, Median{}, Polling{}, TwoChoices{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T: expected panic on empty config", pm)
				}
			}()
			pm.AdoptionProbs(empty, make([]float64, 2))
		}()
	}
}
