package dynamics_test

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/rng"
)

// ExampleThreeMajority_Apply shows the paper's update rule: majority of
// three samples, rainbow ties to the first sample.
func ExampleThreeMajority_Apply() {
	r := rng.New(1)
	m := dynamics.ThreeMajority{}
	fmt.Println(m.Apply([]colorcfg.Color{2, 5, 2}, r)) // clear majority
	fmt.Println(m.Apply([]colorcfg.Color{4, 1, 9}, r)) // rainbow -> first
	// Output:
	// 2
	// 4
}

// ExampleThreeMajority_AdoptionProbs shows Lemma 1 as probabilities.
func ExampleThreeMajority_AdoptionProbs() {
	c := colorcfg.FromCounts(50, 30, 20)
	p := make([]float64, 3)
	dynamics.ThreeMajority{}.AdoptionProbs(c, p)
	fmt.Printf("%.3f %.3f %.3f\n", p[0], p[1], p[2])
	// Output:
	// 0.560 0.276 0.164
}

// ExampleMedian_Apply shows the Doerr et al. comparator.
func ExampleMedian_Apply() {
	fmt.Println(dynamics.Median{}.Apply([]colorcfg.Color{9, 2, 5}, nil))
	// Output:
	// 5
}

// ExampleHasClearMajority checks Definition 2 for two rules.
func ExampleHasClearMajority() {
	r := rng.New(1)
	probe := []colorcfg.Color{0, 1, 2}
	fmt.Println(dynamics.HasClearMajority(dynamics.ThreeMajority{}, probe, r))
	fmt.Println(dynamics.HasClearMajority(dynamics.NoClearMajority, probe, r))
	// Output:
	// true
	// false
}

// ExamplePermutationRule_DeltaProfile shows Definition 3's δ-profile for
// the median realized as a table rule: it always returns the middle color.
func ExamplePermutationRule_DeltaProfile() {
	lo, mid, hi := dynamics.MedianTable.DeltaProfile()
	fmt.Println(lo, mid, hi)
	// Output:
	// 0 6 0
}
