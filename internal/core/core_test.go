package core

import (
	"math"
	"testing"

	"plurality/internal/adversary"
	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

func TestRunConvergesToPlurality(t *testing.T) {
	init := colorcfg.Biased(50000, 4, 6000)
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	res := Run(e, Options{MaxRounds: 1000, Rand: rng.New(1)})
	if !res.Stopped {
		t.Fatalf("did not stop: %+v", res)
	}
	if !res.WonInitialPlurality || res.Winner != 0 {
		t.Fatalf("wrong winner: %+v", res)
	}
	if res.Rounds <= 0 || res.Rounds > 500 {
		t.Fatalf("implausible round count %d", res.Rounds)
	}
	if err := res.Final.Validate(50000); err != nil {
		t.Fatal(err)
	}
}

func TestRunMaxRounds(t *testing.T) {
	init := colorcfg.Balanced(1000, 100) // will not converge in 3 rounds
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	res := Run(e, Options{MaxRounds: 3, Rand: rng.New(2)})
	if res.Stopped {
		t.Fatal("balanced k=100 should not converge in 3 rounds")
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	if res.WonInitialPlurality {
		t.Fatal("non-stopped run cannot have won")
	}
}

func TestRunAlreadyStopped(t *testing.T) {
	init := colorcfg.FromCounts(0, 100)
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	res := Run(e, Options{MaxRounds: 100, Rand: rng.New(3)})
	if !res.Stopped || res.Rounds != 0 {
		t.Fatalf("monochromatic start must stop at round 0: %+v", res)
	}
	if res.Winner != 1 || !res.WonInitialPlurality {
		t.Fatalf("winner: %+v", res)
	}
}

func TestRunTracksBias(t *testing.T) {
	init := colorcfg.Biased(20000, 3, 4000)
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	res := Run(e, Options{MaxRounds: 500, Rand: rng.New(4), TrackBias: true})
	if len(res.BiasTrajectory) != res.Rounds+1 {
		t.Fatalf("trajectory length %d, rounds %d", len(res.BiasTrajectory), res.Rounds)
	}
	if res.BiasTrajectory[0] != init.Bias() {
		t.Fatalf("trajectory[0] = %d, want %d", res.BiasTrajectory[0], init.Bias())
	}
	last := res.BiasTrajectory[len(res.BiasTrajectory)-1]
	if last != 20000 {
		t.Fatalf("final bias %d, want n", last)
	}
}

func TestRunOnRoundHook(t *testing.T) {
	init := colorcfg.Biased(5000, 3, 1500)
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	calls := 0
	res := Run(e, Options{
		MaxRounds: 500,
		Rand:      rng.New(5),
		OnRound: func(round int, c colorcfg.Config) {
			calls++
			if round != calls {
				t.Fatalf("round %d on call %d", round, calls)
			}
		},
	})
	if calls != res.Rounds {
		t.Fatalf("hook called %d times for %d rounds", calls, res.Rounds)
	}
}

func TestRunWithAdversaryStopsAtMPlurality(t *testing.T) {
	n := int64(50000)
	init := colorcfg.Biased(n, 4, 10000)
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	res := Run(e, Options{
		MaxRounds: 5000,
		Rand:      rng.New(6),
		Adversary: adversary.Strongest{F: 40},
		Stop:      WhenMPlurality(n, 400),
	})
	if !res.Stopped {
		t.Fatalf("did not reach M-plurality: %+v", res.Final)
	}
	first, _ := res.Final.TopTwo()
	if n-first > 400 {
		t.Fatalf("minority mass %d > 400", n-first)
	}
}

func TestStopCombinators(t *testing.T) {
	c := colorcfg.FromCounts(90, 10, 0)
	if WhenMonochromatic()(c, 0) {
		t.Error("not monochromatic")
	}
	if !WhenMonochromatic()(colorcfg.FromCounts(0, 5), 0) {
		t.Error("monochromatic not detected")
	}
	if !WhenConsensusOf(100)(colorcfg.FromCounts(100, 0), 0) {
		t.Error("consensus not detected")
	}
	if WhenConsensusOf(100)(colorcfg.FromCounts(99, 0), 0) {
		t.Error("99/100 is not consensus (undecided engines)")
	}
	if !WhenMPlurality(100, 10)(c, 0) {
		t.Error("M-plurality not detected")
	}
	if WhenMPlurality(100, 5)(c, 0) {
		t.Error("M-plurality false positive")
	}
	if !WhenColorDominates(0, 100)(colorcfg.FromCounts(100, 0), 0) {
		t.Error("dominance not detected")
	}
	if !WhenColorDead(1)(colorcfg.FromCounts(100, 0), 0) {
		t.Error("death not detected")
	}
	any := Any(WhenColorDead(0), WhenColorDead(1))
	if !any(colorcfg.FromCounts(100, 0), 0) || any(colorcfg.FromCounts(50, 50), 0) {
		t.Error("Any combinator broken")
	}
}

func TestRunPanicsWithoutRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.Biased(100, 2, 10))
	Run(e, Options{})
}

// ----- theory helpers -----

func TestExpectedNextMatchesLemma1(t *testing.T) {
	c := colorcfg.FromCounts(50, 30, 20)
	mu := ExpectedNext(c)
	// Hand-computed: n=100, Σc² = 2500+900+400 = 3800.
	// µ_0 = 50(1 + (5000-3800)/10000) = 50·1.12 = 56.
	if math.Abs(mu[0]-56) > 1e-9 {
		t.Errorf("µ_0 = %v, want 56", mu[0])
	}
	// µ_1 = 30(1 + (3000-3800)/10000) = 30·0.92 = 27.6.
	if math.Abs(mu[1]-27.6) > 1e-9 {
		t.Errorf("µ_1 = %v, want 27.6", mu[1])
	}
	// µ_2 = 20(1 + (2000-3800)/10000) = 20·0.82 = 16.4.
	if math.Abs(mu[2]-16.4) > 1e-9 {
		t.Errorf("µ_2 = %v, want 16.4", mu[2])
	}
	// Expectations preserve n.
	sum := 0.0
	for _, m := range mu {
		sum += m
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("Σµ = %v", sum)
	}
}

func TestExpectedBiasLowerBoundHolds(t *testing.T) {
	// Lemma 2: µ_1 - µ_2 >= s(1 + c1/n(1-c1/n)). Check against Lemma 1's
	// exact expectations on assorted configurations.
	configs := []colorcfg.Config{
		colorcfg.FromCounts(50, 30, 20),
		colorcfg.Biased(10000, 8, 500),
		colorcfg.FromCounts(400, 350, 150, 100),
		colorcfg.TwoBlock(10000, 6, 300, 0.9),
	}
	for _, c := range configs {
		mu := ExpectedNext(c)
		sorted := append([]float64(nil), mu...)
		// plurality is color 0 in all these configs; runner-up expectation:
		best, second := -1.0, -1.0
		for _, m := range sorted {
			if m > best {
				best, second = m, best
			} else if m > second {
				second = m
			}
		}
		bound := ExpectedBiasLowerBound(c)
		if best-second < bound-1e-9 {
			t.Errorf("config %v: drift %v < Lemma 2 bound %v", c, best-second, bound)
		}
	}
}

func TestLambda(t *testing.T) {
	// Small k: λ = 2k.
	if l := Lambda(1000000, 3); l != 6 {
		t.Errorf("λ = %v, want 6", l)
	}
	// Huge k: λ = (n/ln n)^(1/3).
	n := int64(1000000)
	want := math.Cbrt(float64(n) / math.Log(float64(n)))
	if l := Lambda(n, 100000); math.Abs(l-want) > 1e-9 {
		t.Errorf("λ = %v, want %v", l, want)
	}
}

func TestBiasHelpers(t *testing.T) {
	n := int64(1 << 20)
	if TheoremBias(n, 4) <= float64(PracticalBias(n, 4, 1.0)) {
		// 72√2 ≈ 101.8 > 1.
		tb := TheoremBias(n, 4)
		pb := PracticalBias(n, 4, 1)
		t.Errorf("TheoremBias %v should exceed PracticalBias %v", tb, float64(pb))
	}
	// PracticalBias caps at n.
	if b := PracticalBias(100, 1000, 100); b > 100 {
		t.Errorf("bias %d exceeds n", b)
	}
	if Corollary1Bias(n, 4, 1) != PracticalBias(n, Lambda(n, 4), 1) {
		t.Error("Corollary1Bias inconsistent with Lambda")
	}
}

func TestRoundPredictors(t *testing.T) {
	n := int64(100000)
	if UpperBoundRounds(n, 8, 1) <= 0 || LowerBoundRounds(n, 8, 1) <= 0 {
		t.Error("non-positive round predictions")
	}
	if HPluralityLowerRounds(64, 4, 1) != 4 {
		t.Errorf("k/h² = %v", HPluralityLowerRounds(64, 4, 1))
	}
	if Theorem2MaxK(n) <= 1 {
		t.Error("Theorem2MaxK too small")
	}
	if Lemma10MaxBias(10000, 16) != int64(math.Sqrt(160000)/6) {
		t.Errorf("Lemma10MaxBias = %d", Lemma10MaxBias(10000, 16))
	}
	if Lemma10FailureLowerBound <= 0 || Lemma10FailureLowerBound >= 1 {
		t.Error("bad Lemma 10 constant")
	}
	if SelfStabilizationResidue(1000, 8) != 125 {
		t.Errorf("residue = %v", SelfStabilizationResidue(1000, 8))
	}
}

func TestLemma3And4Factors(t *testing.T) {
	c := colorcfg.FromCounts(500, 300, 200)
	if g := Lemma3GrowthFactor(c); math.Abs(g-(1+0.5/4)) > 1e-12 {
		t.Errorf("growth factor %v", g)
	}
	if Lemma4DecayFactor != 8.0/9.0 {
		t.Error("decay factor changed")
	}
}

func TestTheoryPanicsOnEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"ExpectedNext": func() { ExpectedNext(colorcfg.New(2)) },
		"BiasBound":    func() { ExpectedBiasLowerBound(colorcfg.New(2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
