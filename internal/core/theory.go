package core

import (
	"math"

	"plurality/internal/colorcfg"
)

// This file collects the paper's closed forms and thresholds so that
// experiments can compare measurements against predictions.

// ExpectedNext returns Lemma 1's exact next-round expectation for every
// color: µ_j(c) = c_j · (1 + (n·c_j − Σ_h c_h²)/n²).
func ExpectedNext(c colorcfg.Config) []float64 {
	n := float64(c.N())
	if n == 0 {
		panic("core: ExpectedNext on empty configuration")
	}
	sumSq := c.SumSquares()
	out := make([]float64, c.K())
	for j, cj := range c {
		fj := float64(cj)
		out[j] = fj * (1 + (n*fj-sumSq)/(n*n))
	}
	return out
}

// ExpectedBiasLowerBound returns Lemma 2's lower bound on the expected
// next-round bias between the plurality and any other color:
// µ_1 − µ_j ≥ s(c) · (1 + c_1/n · (1 − c_1/n)).
func ExpectedBiasLowerBound(c colorcfg.Config) float64 {
	n := float64(c.N())
	if n == 0 {
		panic("core: ExpectedBiasLowerBound on empty configuration")
	}
	first, _ := c.TopTwo()
	c1 := float64(first)
	s := float64(c.Bias())
	return s * (1 + c1/n*(1-c1/n))
}

// Lemma3GrowthFactor is the per-round w.h.p. bias growth factor of Lemma 3,
// 1 + c_1/(4n), valid while n/λ ≤ c_1 ≤ 2n/3 and the bias is above the
// Theorem 1 threshold.
func Lemma3GrowthFactor(c colorcfg.Config) float64 {
	n := float64(c.N())
	first, _ := c.TopTwo()
	return 1 + float64(first)/(4*n)
}

// Lemma4DecayFactor is the w.h.p. per-round decay factor 8/9 of the total
// minority mass once c_1 ≥ 2n/3 (Lemma 4).
const Lemma4DecayFactor = 8.0 / 9.0

// Lambda returns the paper's λ = min{2k, (n/ln n)^(1/3)} used in
// Corollary 1. n must be large enough that ln n > 0.
func Lambda(n int64, k int) float64 {
	nf := float64(n)
	cube := math.Cbrt(nf / math.Log(nf))
	if l := 2 * float64(k); l < cube {
		return l
	}
	return cube
}

// TheoremBias returns Theorem 1's literal bias requirement
// s ≥ 72·sqrt(2·λ·n·ln n). The constant 72√2 is an artifact of the proof;
// in simulations much smaller constants suffice (see PracticalBias), and
// experiment E1 uses PracticalBias with the constant recorded in its table.
func TheoremBias(n int64, lambda float64) float64 {
	nf := float64(n)
	return 72 * math.Sqrt(2*lambda*nf*math.Log(nf))
}

// PracticalBias returns c·sqrt(λ·n·ln n): the Theorem 1 bias shape with a
// tunable constant. c = 1 is comfortably sufficient in simulation (the
// proof constant 72√2 ≈ 102 is loose).
func PracticalBias(n int64, lambda, c float64) int64 {
	nf := float64(n)
	s := c * math.Sqrt(lambda*nf*math.Log(nf))
	if s > nf {
		s = nf
	}
	return int64(s)
}

// Corollary1Bias returns PracticalBias at λ = Lambda(n, k).
func Corollary1Bias(n int64, k int, c float64) int64 {
	return PracticalBias(n, Lambda(n, k), c)
}

// UpperBoundRounds returns the Theorem 1 convergence-time shape C·λ·ln n.
func UpperBoundRounds(n int64, lambda, c float64) float64 {
	return c * lambda * math.Log(float64(n))
}

// LowerBoundRounds returns the Theorem 2 lower-bound shape c·k·ln n for
// near-balanced starts (valid for k ≤ (n/ln n)^(1/4)).
func LowerBoundRounds(n int64, k int, c float64) float64 {
	return c * float64(k) * math.Log(float64(n))
}

// Theorem2MaxK returns (n/ln n)^(1/4), the largest k for which the Theorem
// 2 lower bound is proven.
func Theorem2MaxK(n int64) float64 {
	nf := float64(n)
	return math.Pow(nf/math.Log(nf), 0.25)
}

// HPluralityLowerRounds returns the Theorem 4 lower-bound shape c·k/h² for
// the h-plurality dynamics from near-balanced starts.
func HPluralityLowerRounds(k, h int, c float64) float64 {
	return c * float64(k) / float64(h*h)
}

// Lemma10MaxBias returns sqrt(k·n)/6 — Lemma 10 exhibits configurations
// with any bias below this value whose bias shrinks in one round with
// probability at least 1/(16e).
func Lemma10MaxBias(n int64, k int) int64 {
	return int64(math.Sqrt(float64(k)*float64(n)) / 6)
}

// Lemma10FailureLowerBound is the constant-probability floor 1/(16e) of
// Lemma 10.
var Lemma10FailureLowerBound = 1 / (16 * math.E)

// SelfStabilizationResidue returns the O(s/λ) residue of Corollary 4: with
// an F-bounded adversary, all but O(s/λ) agents agree w.h.p. once the
// process stabilizes, provided F = o(s/λ).
func SelfStabilizationResidue(s int64, lambda float64) float64 {
	return float64(s) / lambda
}
