package core_test

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

// ExampleRun demonstrates the basic workflow: build a biased configuration,
// pick the exact clique engine, and run to consensus.
func ExampleRun() {
	init := colorcfg.Biased(100_000, 8, core.Corollary1Bias(100_000, 8, 1.0))
	eng := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	res := core.Run(eng, core.Options{MaxRounds: 10_000, Rand: rng.New(7)})
	fmt.Println("winner:", res.Winner, "won plurality:", res.WonInitialPlurality)
	// Output:
	// winner: 0 won plurality: true
}

// ExampleExpectedNext shows Lemma 1's closed form.
func ExampleExpectedNext() {
	c := colorcfg.FromCounts(50, 30, 20)
	mu := core.ExpectedNext(c)
	fmt.Printf("%.1f %.1f %.1f\n", mu[0], mu[1], mu[2])
	// Output:
	// 56.0 27.6 16.4
}

// ExampleLambda shows the Corollary 1 parameter.
func ExampleLambda() {
	fmt.Println(core.Lambda(1_000_000, 3))
	// Output:
	// 6
}

// ExampleWhenMPlurality shows the Section 3.1 stopping rule.
func ExampleWhenMPlurality() {
	stop := core.WhenMPlurality(100, 10)
	fmt.Println(stop(colorcfg.FromCounts(95, 5), 0))
	fmt.Println(stop(colorcfg.FromCounts(80, 20), 0))
	// Output:
	// true
	// false
}
