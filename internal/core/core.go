// Package core orchestrates plurality-consensus processes: it wires an
// engine, an optional F-bounded adversary, a stopping condition and
// per-round hooks into a single reproducible run, and exposes the paper's
// closed-form theory (Lemma 1/2 drift, Theorem 1 / Corollary 1 thresholds,
// lower-bound predictions) for the experiment harness.
//
// The typical entry point is Run:
//
//	init := colorcfg.Biased(n, k, s)
//	eng := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
//	res := core.Run(eng, core.Options{MaxRounds: 10000, Rand: rng.New(seed)})
//	fmt.Println(res.Rounds, res.WonInitialPlurality)
package core

import (
	"plurality/internal/adversary"
	"plurality/internal/colorcfg"
	"plurality/internal/engine"
	"plurality/internal/obs"
	"plurality/internal/rng"
)

// Color aliases colorcfg.Color.
type Color = colorcfg.Color

// StopFunc decides whether the process should stop in the given state.
// round is the number of completed rounds.
type StopFunc func(c colorcfg.Config, round int) bool

// WhenMonochromatic stops when a single color holds all colored agents.
// For the undecided engines "all colored agents" excludes undecided ones;
// use WhenConsensusOf for full-population consensus.
func WhenMonochromatic() StopFunc {
	return func(c colorcfg.Config, _ int) bool { return c.IsMonochromatic() }
}

// WhenConsensusOf stops when some color is supported by all n agents —
// the absorbing monochromatic configuration of the paper.
func WhenConsensusOf(n int64) StopFunc {
	return func(c colorcfg.Config, _ int) bool {
		first, _ := c.TopTwo()
		return first == n
	}
}

// WhenMPlurality stops once all but at most m agents support the plurality
// color — the M-plurality consensus of Section 3.1.
func WhenMPlurality(n, m int64) StopFunc {
	return func(c colorcfg.Config, _ int) bool {
		first, _ := c.TopTwo()
		return n-first <= m
	}
}

// WhenColorDominates stops when the given color is supported by all n
// agents.
func WhenColorDominates(j Color, n int64) StopFunc {
	return func(c colorcfg.Config, _ int) bool { return c[j] == n }
}

// WhenColorDead stops when the given color has no supporters.
func WhenColorDead(j Color) StopFunc {
	return func(c colorcfg.Config, _ int) bool { return c[j] == 0 }
}

// Any combines stop conditions with OR.
func Any(fs ...StopFunc) StopFunc {
	return func(c colorcfg.Config, round int) bool {
		for _, f := range fs {
			if f(c, round) {
				return true
			}
		}
		return false
	}
}

// Options configures a Run.
type Options struct {
	// MaxRounds bounds the run; 0 means the DefaultMaxRounds safety bound.
	MaxRounds int
	// Stop is the stopping condition (default WhenMonochromatic).
	Stop StopFunc
	// Adversary corrupts the configuration after every round (default
	// none). Corruption happens after the dynamics step, matching the
	// two-phase round of Section 3.1.
	Adversary adversary.Adversary
	// OnRound is called after every completed round (post-corruption) with
	// a read-only view of the configuration. It must not retain c.
	OnRound func(round int, c colorcfg.Config)
	// Rand drives the run. Required.
	Rand *rng.Rand
	// TrackBias records the bias trajectory in Result.BiasTrajectory.
	TrackBias bool
	// Observer, if non-nil, is attached to the engine before the first
	// round and receives per-round telemetry (wall time, post-round
	// configuration — see obs.Observer). It never touches Rand, so a
	// seeded run is byte-identical with and without one. Engines that do
	// not support observation silently ignore it.
	Observer obs.Observer
}

// DefaultMaxRounds is the safety bound applied when Options.MaxRounds is 0.
const DefaultMaxRounds = 1_000_000

// Result reports the outcome of a Run.
type Result struct {
	// Rounds is the number of rounds executed when the run ended.
	Rounds int
	// Stopped is true if the stop condition fired (false = MaxRounds hit).
	Stopped bool
	// Final is the final configuration (colored agents).
	Final colorcfg.Config
	// Winner is the plurality color of the final configuration.
	Winner Color
	// InitialPlurality is the plurality color of the initial configuration.
	InitialPlurality Color
	// WonInitialPlurality is true if the run stopped monochromatic on the
	// initial plurality color — the paper's success event.
	WonInitialPlurality bool
	// BiasTrajectory is the per-round bias s(C(t)) (index 0 = initial),
	// recorded only when Options.TrackBias is set.
	BiasTrajectory []int64
}

// Run drives the engine until the stop condition fires or MaxRounds is
// reached and reports the outcome.
func Run(e engine.Engine, opts Options) Result {
	if opts.Rand == nil {
		panic("core: Options.Rand is required")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	stop := opts.Stop
	if stop == nil {
		stop = WhenMonochromatic()
	}
	var adv adversary.Adversary = adversary.None{}
	if opts.Adversary != nil {
		adv = opts.Adversary
	}
	if opts.Observer != nil {
		engine.Observe(e, opts.Observer)
	}

	initial := e.Config()
	res := Result{InitialPlurality: initial.Plurality()}
	if opts.TrackBias {
		res.BiasTrajectory = append(res.BiasTrajectory, initial.Bias())
	}

	cur := initial
	for round := 0; ; round++ {
		if stop(cur, round) {
			res.Stopped = true
			res.Rounds = round
			break
		}
		if round >= maxRounds {
			res.Rounds = round
			break
		}
		e.Step(opts.Rand)
		adv.Corrupt(e, opts.Rand)
		cur = e.Config()
		if opts.TrackBias {
			res.BiasTrajectory = append(res.BiasTrajectory, cur.Bias())
		}
		if opts.OnRound != nil {
			opts.OnRound(round+1, cur)
		}
	}
	res.Final = cur
	res.Winner = cur.Plurality()
	res.WonInitialPlurality = res.Stopped &&
		cur.IsMonochromatic() && res.Winner == res.InitialPlurality
	return res
}
