package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"plurality/internal/rng"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("single-element summary: %+v", s)
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if q := Quantile(xs, 0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 40 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 25 {
		t.Errorf("q0.5 = %v", q)
	}
	if q := Quantile(xs, 1.0/3); math.Abs(q-20) > 1e-12 {
		t.Errorf("q1/3 = %v", q)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := rng.New(1)
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := append([]float64(nil), raw...)
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = r.Float64()
			}
		}
		sort.Float64s(xs)
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatal("bad mean")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v,%v] must contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval too wide: [%v,%v]", lo, hi)
	}
	// Extreme proportions stay in [0,1].
	lo, hi = WilsonInterval(0, 20, 1.96)
	if lo != 0 || hi <= 0 || hi > 0.3 {
		t.Fatalf("zero-successes interval [%v,%v]", lo, hi)
	}
	lo, hi = WilsonInterval(20, 20, 1.96)
	if hi != 1 || lo >= 1 || lo < 0.7 {
		t.Fatalf("all-successes interval [%v,%v]", lo, hi)
	}
}

func TestWilsonCoverageProperty(t *testing.T) {
	// Simulated coverage of the 95% Wilson interval should be near 95%.
	r := rng.New(2)
	const trials, draws, p = 2000, 60, 0.3
	covered := 0
	for i := 0; i < trials; i++ {
		succ := 0
		for j := 0; j < draws; j++ {
			if r.Float64() < p {
				succ++
			}
		}
		lo, hi := WilsonInterval(succ, draws, 1.96)
		if lo <= p && p <= hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("Wilson coverage %v, want ~0.95", rate)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Float64() * 10 // mean 5
	}
	lo, hi := BootstrapMeanCI(xs, 0.95, 500, r)
	if lo >= hi {
		t.Fatalf("degenerate CI [%v,%v]", lo, hi)
	}
	// The percentile bootstrap CI is centered on the sample mean.
	m := Mean(xs)
	if lo > m || hi < m {
		t.Fatalf("CI [%v,%v] misses sample mean %v", lo, hi, m)
	}
	// Width should be a few standard errors (sd/sqrt(n) ~ 0.2).
	if hi-lo > 1.5 {
		t.Fatalf("CI implausibly wide: [%v,%v]", lo, hi)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := LinearFit(xs, ys)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-3) > 1e-12 {
		t.Fatalf("fit %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R² = %v", f.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*xs[i] + 10 + (r.Float64()-0.5)*8
	}
	f := LinearFit(xs, ys)
	if math.Abs(f.Slope-3) > 0.05 {
		t.Fatalf("slope %v, want ~3", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R² = %v", f.R2)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 5·x^1.7
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, 1.7)
	}
	f := LogLogSlope(xs, ys)
	if math.Abs(f.Slope-1.7) > 1e-9 {
		t.Fatalf("exponent %v, want 1.7", f.Slope)
	}
}

func TestLogLogSlopePanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogLogSlope([]float64{1, 0}, []float64{1, 2})
}

func TestGeometricMean(t *testing.T) {
	if gm := GeometricMean([]float64{1, 4, 16}); math.Abs(gm-4) > 1e-12 {
		t.Fatalf("gm = %v", gm)
	}
}

func TestFitPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"short":     func() { LinearFit([]float64{1}, []float64{1}) },
		"mismatch":  func() { LinearFit([]float64{1, 2}, []float64{1}) },
		"constantX": func() { LinearFit([]float64{2, 2}, []float64{1, 3}) },
		"gmEmpty":   func() { GeometricMean(nil) },
		"gmNeg":     func() { GeometricMean([]float64{1, -2}) },
		"meanEmpty": func() { Mean(nil) },
		"wilson0":   func() { WilsonInterval(1, 0, 1.96) },
		"quantile0": func() { Quantile(nil, 0.5) },
		"bootLevel": func() { BootstrapMeanCI([]float64{1}, 1.5, 10, rng.New(1)) },
		"bootEmpty": func() { BootstrapMeanCI(nil, 0.9, 10, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{40, 10, 30, 20} // unsorted on purpose
	got := Quantiles(xs, 0, 0.5, 1)
	if got[0] != 10 || got[1] != 25 || got[2] != 40 {
		t.Errorf("Quantiles = %v", got)
	}
	if xs[0] != 40 {
		t.Error("Quantiles must not mutate its input")
	}
	if out := Quantiles([]float64{7}); len(out) != 0 {
		t.Errorf("Quantiles with no qs = %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantiles on empty sample must panic")
		}
	}()
	Quantiles(nil, 0.5)
}
