// Package stats provides the small statistical toolkit used by the
// benchmark harness: summary statistics, quantiles, confidence intervals
// (Wilson for proportions, bootstrap for means), and least-squares fits
// (including log-log slope fits used to estimate scaling exponents).
package stats

import (
	"fmt"
	"math"
	"sort"

	"plurality/internal/rng"
)

// Summary holds the usual one-pass summary of a sample. The JSON field
// names are part of the service API (internal/service job aggregates).
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"` // sample standard deviation (n-1 denominator)
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
	Q25    float64 `json:"q25"`
	Q75    float64 `json:"q75"`
}

// Summarize computes a Summary. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize on empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.Q25 = Quantile(sorted, 0.25)
	s.Q75 = Quantile(sorted, 0.75)
	return s
}

// String renders the summary compactly for tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g ± %.2g med=%.3g [%.3g, %.3g]",
		s.N, s.Mean, s.Std, s.Median, s.Min, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile on empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Quantiles returns the q-quantiles of an unsorted sample, sorting a
// private copy once. It panics on an empty sample.
func Quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Quantiles on empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = Quantile(sorted, q)
	}
	return out
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean on empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion with successes/trials at confidence z (z = 1.96 for 95%).
func WilsonInterval(successes, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		panic("stats: WilsonInterval needs trials > 0")
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// BootstrapMeanCI returns a percentile bootstrap confidence interval for
// the mean at the given level (e.g. 0.95) using B resamples.
func BootstrapMeanCI(xs []float64, level float64, b int, r *rng.Rand) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapMeanCI on empty sample")
	}
	if level <= 0 || level >= 1 {
		panic("stats: BootstrapMeanCI level must be in (0,1)")
	}
	means := make([]float64, b)
	for i := 0; i < b; i++ {
		sum := 0.0
		for j := 0; j < len(xs); j++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}

// Fit is an ordinary least-squares line y = Slope·x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y = a·x + b by least squares. It panics unless
// len(xs) == len(ys) >= 2.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LinearFit needs matched samples of size >= 2")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: LinearFit with constant x")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R².
	meanY := sy / n
	ssTot, ssRes := 0.0, 0.0
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// LogLogSlope fits log(y) = a·log(x) + b, estimating the scaling exponent
// a of y ~ x^a. All inputs must be positive.
func LogLogSlope(xs, ys []float64) Fit {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: LogLogSlope needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(lx, ly)
}

// GeometricMean returns the geometric mean of positive values.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: GeometricMean on empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeometricMean needs positive data")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
