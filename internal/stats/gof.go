package stats

import (
	"math"
	"sort"
)

// This file holds the goodness-of-fit toolkit shared by the sampler tests
// (internal/dist), the engine distribution cross-checks (internal/engine)
// and the statistical validation harness (internal/validate): chi-square
// GOF with automatic bin collapsing, critical values at arbitrary α, a
// one-sample Kolmogorov–Smirnov test, and total-variation distance.

// MinExpectedPerBin is the smallest expected count a chi-square bin may
// carry; ChiSquareGOF collapses adjacent bins until each aggregated bin
// reaches it (the classical validity rule for the χ² approximation).
const MinExpectedPerBin = 5

// ChiSquareGOF computes the chi-square goodness-of-fit statistic
// Σ (obs−exp)²/exp between an observed histogram and its expected counts,
// collapsing adjacent low-expectation bins (expected < MinExpectedPerBin)
// left-to-right so the χ² approximation stays valid. It returns the
// statistic and the degrees of freedom (usable bins − 1, accounting for
// the matched-totals constraint). df < 1 signals a degenerate comparison
// (too few usable bins); callers must treat that as "no test performed".
// It panics if the slices differ in length.
func ChiSquareGOF(obs, exp []float64) (stat float64, df int) {
	if len(obs) != len(exp) {
		panic("stats: ChiSquareGOF length mismatch")
	}
	var co, ce float64
	for i := range obs {
		co += obs[i]
		ce += exp[i]
		if ce >= MinExpectedPerBin {
			stat += (co - ce) * (co - ce) / ce
			df++
			co, ce = 0, 0
		}
	}
	// Fold any remainder in as one final (possibly under-filled) bin
	// rather than discarding its mass. The co > 0 arm matters: observed
	// mass in a trailing run of zero-expectation bins is exactly the
	// "engine reaches impossible states" signal and must blow the
	// statistic up, not vanish.
	if (ce > 0 || co > 0) && df > 0 {
		stat += (co - ce) * (co - ce) / math.Max(ce, 1)
		df++
	}
	df--
	return stat, df
}

// ChiSquareCritical returns the upper-α critical value of the χ²
// distribution with df degrees of freedom via the Wilson–Hilferty cube
// approximation, accurate to a few percent for df ≥ 3 across the α range
// used here (1e-2 … 1e-6).
func ChiSquareCritical(df int, alpha float64) float64 {
	if df < 1 {
		panic("stats: ChiSquareCritical needs df >= 1")
	}
	z := NormalQuantile(1 - alpha)
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// NormalQuantile returns the standard-normal quantile Φ⁻¹(p) for
// p ∈ (0, 1) using Acklam's rational approximation refined by one
// Halley step (absolute error far below any statistical tolerance used
// in this repository). It panics outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile needs p in (0,1)")
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	// One Halley refinement against the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// KSTest computes the one-sample Kolmogorov–Smirnov statistic
// D = sup |F_empirical − F| of a sample against a theoretical CDF.
// The sample is sorted into a private copy. It panics on an empty sample.
func KSTest(sample []float64, cdf func(float64) float64) float64 {
	if len(sample) == 0 {
		panic("stats: KSTest on empty sample")
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// KSDiscrete returns sup_x |F_n(x) − F(x)| between an observed histogram
// and an expected one over the same integer-indexed support (both are
// normalized internally). This is the correct KS statistic for discrete
// data — the continuous-sample formula of KSTest over-counts at atoms
// with tied observations. Compared against KSCriticalValue the test is
// conservative for discrete laws (true α below nominal), which is the
// safe direction for a validation gate. It panics on a length mismatch
// or empty mass.
func KSDiscrete(obs, exp []float64) float64 {
	if len(obs) != len(exp) {
		panic("stats: KSDiscrete length mismatch")
	}
	var so, se float64
	for i := range obs {
		so += obs[i]
		se += exp[i]
	}
	if so <= 0 || se <= 0 {
		panic("stats: KSDiscrete on empty distribution")
	}
	d, co, ce := 0.0, 0.0, 0.0
	for i := range obs {
		co += obs[i] / so
		ce += exp[i] / se
		if diff := math.Abs(co - ce); diff > d {
			d = diff
		}
	}
	return d
}

// KSCriticalValue returns the asymptotic upper-α critical value of the
// one-sample KS statistic for n observations: sqrt(ln(2/α) / (2n)).
// The approximation is conservative-ish for n ≥ ~35; the validation
// harness uses n in the thousands.
func KSCriticalValue(n int, alpha float64) float64 {
	if n <= 0 {
		panic("stats: KSCriticalValue needs n > 0")
	}
	if alpha <= 0 || alpha >= 1 {
		panic("stats: KSCriticalValue needs alpha in (0,1)")
	}
	return math.Sqrt(math.Log(2/alpha) / (2 * float64(n)))
}

// TotalVariation returns ½ Σ |p_i − q_i| between two finite distributions
// (or histograms of equal mass — the inputs are normalized internally).
// It panics on a length mismatch or zero total mass.
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: TotalVariation length mismatch")
	}
	var sp, sq float64
	for i := range p {
		sp += p[i]
		sq += q[i]
	}
	if sp <= 0 || sq <= 0 {
		panic("stats: TotalVariation on empty distribution")
	}
	tv := 0.0
	for i := range p {
		tv += math.Abs(p[i]/sp - q[i]/sq)
	}
	return tv / 2
}
