package stats

import (
	"math"
	"testing"

	"plurality/internal/rng"
)

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.999, 3.090232},
		{0.001, -3.090232},
		{1 - 1e-6, 4.753424},
		{0.84134474, 0.999999}, // Φ(1)
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Symmetry across the whole range.
	for _, p := range []float64{1e-8, 1e-4, 0.01, 0.2, 0.49} {
		if d := NormalQuantile(p) + NormalQuantile(1-p); math.Abs(d) > 1e-8 {
			t.Errorf("asymmetry at p=%v: %v", p, d)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestChiSquareCritical(t *testing.T) {
	// Reference values from standard χ² tables.
	cases := []struct {
		df    int
		alpha float64
		want  float64
	}{
		{10, 0.05, 18.307},
		{10, 0.001, 29.588},
		{50, 0.01, 76.154},
		{5, 0.05, 11.070},
	}
	for _, c := range cases {
		got := ChiSquareCritical(c.df, c.alpha)
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("ChiSquareCritical(%d, %v) = %v, want ~%v", c.df, c.alpha, got, c.want)
		}
	}
}

func TestChiSquareGOFExactMatch(t *testing.T) {
	obs := []float64{10, 20, 30, 40}
	stat, df := ChiSquareGOF(obs, obs)
	if stat != 0 || df != 3 {
		t.Errorf("identical histograms: stat=%v df=%d, want 0, 3", stat, df)
	}
}

func TestChiSquareGOFCollapsesSmallBins(t *testing.T) {
	// Bins with expected < 5 must merge with neighbors: here the first
	// three bins (1+1+4=6) collapse into one.
	obs := []float64{2, 1, 3, 50, 50}
	exp := []float64{1, 1, 4, 50, 50}
	_, df := ChiSquareGOF(obs, exp)
	if df != 2 {
		t.Errorf("df = %d, want 2 (three small bins collapsed into one)", df)
	}
}

func TestChiSquareGOFTrailingImpossibleMass(t *testing.T) {
	// Observations landing in trailing bins the model declares impossible
	// (expected 0) must explode the statistic, not be silently dropped.
	obs := []float64{100, 100, 40}
	exp := []float64{120, 120, 0}
	stat, df := ChiSquareGOF(obs, exp)
	if df < 1 {
		t.Fatalf("degenerate df=%d", df)
	}
	if crit := ChiSquareCritical(df, 1e-6); stat <= crit {
		t.Errorf("impossible-state mass not detected: stat %v <= crit %v", stat, crit)
	}
}

func TestChiSquareGOFDegenerate(t *testing.T) {
	// Everything collapses into a single bin: df must signal degeneracy.
	if _, df := ChiSquareGOF([]float64{3}, []float64{3}); df >= 1 {
		t.Errorf("single-bin comparison returned df=%d, want < 1", df)
	}
}

func TestChiSquareGOFDetectsBias(t *testing.T) {
	// A grossly shifted histogram must blow past the 0.001 critical value.
	obs := []float64{500, 300, 200}
	exp := []float64{333, 333, 334}
	stat, df := ChiSquareGOF(obs, exp)
	if df != 2 {
		t.Fatalf("df = %d", df)
	}
	if crit := ChiSquareCritical(df, 0.001); stat <= crit {
		t.Errorf("biased histogram not detected: stat %v <= crit %v", stat, crit)
	}
}

func TestChiSquareGOFCalibration(t *testing.T) {
	// Sample a known discrete distribution many times; the chi-square
	// statistic against the true expectation must stay below the α=1e-4
	// critical value (fixed seed: deterministic).
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	r := rng.New(11)
	const draws = 200_000
	obs := make([]float64, len(probs))
	for i := 0; i < draws; i++ {
		u := r.Float64()
		acc := 0.0
		for j, p := range probs {
			acc += p
			if u < acc || j == len(probs)-1 {
				obs[j]++
				break
			}
		}
	}
	exp := make([]float64, len(probs))
	for j, p := range probs {
		exp[j] = p * draws
	}
	stat, df := ChiSquareGOF(obs, exp)
	if crit := ChiSquareCritical(df, 1e-4); stat > crit {
		t.Errorf("calibration: χ² = %v > crit %v (df=%d)", stat, crit, df)
	}
}

func TestKSTestUniform(t *testing.T) {
	r := rng.New(3)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = r.Float64()
	}
	d := KSTest(sample, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if crit := KSCriticalValue(len(sample), 0.001); d > crit {
		t.Errorf("uniform sample rejected: D=%v > crit %v", d, crit)
	}
	// A shifted sample must be rejected.
	for i := range sample {
		sample[i] = sample[i] * 0.8
	}
	d = KSTest(sample, func(x float64) float64 { return math.Min(math.Max(x, 0), 1) })
	if crit := KSCriticalValue(len(sample), 0.001); d <= crit {
		t.Errorf("shifted sample accepted: D=%v <= crit %v", d, crit)
	}
}

func TestTotalVariation(t *testing.T) {
	if tv := TotalVariation([]float64{1, 0}, []float64{0, 1}); math.Abs(tv-1) > 1e-12 {
		t.Errorf("disjoint TV = %v, want 1", tv)
	}
	if tv := TotalVariation([]float64{2, 2}, []float64{500, 500}); tv != 0 {
		t.Errorf("proportional TV = %v, want 0 (inputs are normalized)", tv)
	}
	if tv := TotalVariation([]float64{0.5, 0.5}, []float64{0.75, 0.25}); math.Abs(tv-0.25) > 1e-12 {
		t.Errorf("TV = %v, want 0.25", tv)
	}
}
