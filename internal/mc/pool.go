package mc

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"plurality/internal/rng"
)

// Pool is a persistent set of worker goroutines. One pool is meant to
// outlive many jobs (a whole sweep grid or experiment suite), so the
// per-round cost of replicate parallelism is a channel send, not a
// goroutine spawn. A Pool is safe for concurrent Run/Map calls.
//
// Each worker keeps cumulative busy-time and task counters (two clock
// reads per task — noise next to any real replicate), so long-lived
// holders like pluralityd can report per-worker utilization without
// instrumenting jobs: see WorkerBusy / WorkerTasks.
type Pool struct {
	workers int
	tasks   chan func(worker int)
	wg      sync.WaitGroup
	busyNs  []atomic.Int64 // cumulative busy nanoseconds per worker
	done    []atomic.Int64 // cumulative completed tasks per worker
}

// NewPool starts a pool with the given parallelism (<= 0 means
// GOMAXPROCS). Close releases the workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func(worker int)),
		busyNs:  make([]atomic.Int64, workers),
		done:    make([]atomic.Int64, workers),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			for f := range p.tasks {
				start := time.Now()
				f(w)
				p.busyNs[w].Add(time.Since(start).Nanoseconds())
				p.done[w].Add(1)
			}
		}(i)
	}
	return p
}

// Workers reports the pool's parallelism.
func (p *Pool) Workers() int { return p.workers }

// WorkerBusy returns a snapshot of each worker's cumulative busy time
// since the pool started. Safe to call concurrently with running jobs;
// in-flight tasks are not included until they finish.
func (p *Pool) WorkerBusy() []time.Duration {
	out := make([]time.Duration, p.workers)
	for i := range out {
		out[i] = time.Duration(p.busyNs[i].Load())
	}
	return out
}

// WorkerTasks returns a snapshot of each worker's cumulative completed
// task count since the pool started.
func (p *Pool) WorkerTasks() []int64 {
	out := make([]int64, p.workers)
	for i := range out {
		out[i] = p.done[i].Load()
	}
	return out
}

// Close stops the workers after in-flight tasks finish. It must not be
// called while a Run or Map is active.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

var (
	sharedMu sync.Mutex
	shared   = map[int]*Pool{}
)

// Shared returns a process-wide persistent pool with the given
// parallelism (<= 0 means GOMAXPROCS), creating it on first use. Shared
// pools are never closed; their idle workers cost nothing between jobs.
func Shared(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	p, ok := shared[workers]
	if !ok {
		p = NewPool(workers)
		shared[workers] = p
	}
	return p
}

// dispatch runs task(i, worker) on the pool for every i in [0, n) with
// skip(i) false, calling after(i) on the coordinating goroutine as each
// task completes. Submission stops on context cancellation or an after
// error; in-flight tasks always drain before dispatch returns. skip and
// after may be nil.
func (p *Pool) dispatch(ctx context.Context, n int, skip func(int) bool, task func(i, worker int), after func(int) error) error {
	todo := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if skip == nil || !skip(i) {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return nil
	}
	done := make(chan int, len(todo))
	recv := func(i int) error {
		if after != nil {
			return after(i)
		}
		return nil
	}
	var firstErr error
	sub, rcv := 0, 0
	for rcv < len(todo) {
		canSubmit := firstErr == nil && sub < len(todo)
		if !canSubmit && sub == rcv {
			break // aborted with nothing in flight
		}
		if canSubmit {
			i := todo[sub]
			t := func(w int) { task(i, w); done <- i }
			select {
			case p.tasks <- t:
				sub++
			case j := <-done:
				rcv++
				if err := recv(j); err != nil && firstErr == nil {
					firstErr = err
				}
			case <-ctx.Done():
				firstErr = ctx.Err()
			}
		} else {
			j := <-done
			rcv++
			if err := recv(j); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Map evaluates f on reps independent replicates across the pool and
// returns the results indexed by replicate. Replicate i receives
// rng.New(RepSeeds(seed, reps)[i]), so the output is deterministic for a
// fixed seed and independent of the pool's worker count. The error is
// non-nil only on context cancellation, in which case the slice holds
// zero values for replicates that did not run.
func Map[T any](ctx context.Context, p *Pool, reps int, seed uint64, f func(rep int, r *rng.Rand) T) ([]T, error) {
	out := make([]T, reps)
	if reps <= 0 {
		return out, nil
	}
	seeds := RepSeeds(seed, reps)
	err := p.dispatch(ctx, reps, nil, func(i, _ int) {
		out[i] = f(i, rng.New(seeds[i]))
	}, nil)
	return out, err
}
