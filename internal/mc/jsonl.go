package mc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// AppendRecord writes one record as a single JSON line. Records written
// through a Pool.Run sink arrive in replicate order, so two runs with the
// same (seed, grid) produce byte-identical files regardless of workers.
func AppendRecord(w io.Writer, rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadRecords parses a JSONL record stream. Blank lines are skipped; a
// malformed line is an error. Callers that need to survive a crash
// mid-write (a torn trailing line) use ScanRecords / ReadResumePrefix
// instead, which recover the valid prefix.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("mc: bad record on line %d: %v", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// GroupByJob indexes records by (job name, replicate) for RunOpts.Done.
// A duplicate (job, rep) pair keeps the first record seen.
func GroupByJob(recs []Record) map[string]map[int]Record {
	out := map[string]map[int]Record{}
	for _, rec := range recs {
		byRep, ok := out[rec.Job]
		if !ok {
			byRep = map[int]Record{}
			out[rec.Job] = byRep
		}
		if _, dup := byRep[rec.Rep]; !dup {
			byRep[rec.Rep] = rec
		}
	}
	return out
}

// ScanRecords parses the longest valid prefix of a JSONL record buffer.
// A line counts only when it is complete (newline-terminated) and
// unmarshals as a Record; blank lines are skipped but stay part of the
// prefix. Scanning stops at the first line that fails either test — the
// shape a crash mid-write leaves behind — without error. ends[i] is the
// byte offset just past record i's line, so a caller can truncate a
// damaged file to any record boundary; the valid prefix length is
// ends[len(ends)-1] (or 0 with no records, modulo leading blank lines).
func ScanRecords(data []byte) (recs []Record, ends []int64) {
	var off int64
	for int(off) < len(data) {
		rest := data[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // incomplete final line: a torn trailing write
		}
		line := rest[:nl]
		if len(bytes.TrimSpace(line)) > 0 {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				break
			}
			recs = append(recs, rec)
			ends = append(ends, off+int64(nl)+1)
		}
		off += int64(nl) + 1
	}
	return recs, ends
}

// ValidPrefix reports the byte length of the valid record prefix found
// by ScanRecords (0 when the buffer holds no complete record).
func ValidPrefix(ends []int64) int64 {
	if len(ends) == 0 {
		return 0
	}
	return ends[len(ends)-1]
}

// ReadResumePrefix loads a JSONL file written by a previous (interrupted)
// grid run, tolerating a torn trailing write: the records of the valid
// prefix are grouped for RunOpts.Done, valid is the prefix's byte length
// (the offset to truncate the file to before appending), and torn
// reports whether a damaged tail was skipped. A missing file yields an
// empty index. A damaged line *followed by further well-formed records*
// is not a torn write but genuine corruption, and is an error: silently
// dropping interior replicates could split a grid across two files.
func ReadResumePrefix(path string) (done map[string]map[int]Record, valid int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]map[int]Record{}, 0, false, nil
		}
		return nil, 0, false, err
	}
	recs, ends := ScanRecords(data)
	valid = ValidPrefix(ends)
	if int(valid) < len(data) {
		torn = true
		for _, line := range bytes.Split(data[valid:], []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec Record
			if json.Unmarshal(line, &rec) == nil && rec != (Record{}) {
				return nil, 0, false, fmt.Errorf("mc: resume file %s: corrupt record at byte %d followed by well-formed records; repair the file before resuming", path, valid)
			}
		}
	}
	return GroupByJob(recs), valid, torn, nil
}

// ReadResumeFile loads a JSONL file written by a previous (interrupted)
// grid run and groups it for RunOpts.Done. A missing file is not an
// error: it returns an empty index, so "-resume" also starts fresh
// grids. A torn trailing line (crash mid-write) is skipped — the lost
// replicate is simply re-executed; use ReadResumePrefix to also learn
// the truncation offset.
func ReadResumeFile(path string) (map[string]map[int]Record, error) {
	done, _, _, err := ReadResumePrefix(path)
	return done, err
}
