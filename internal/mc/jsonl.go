package mc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// AppendRecord writes one record as a single JSON line. Records written
// through a Pool.Run sink arrive in replicate order, so two runs with the
// same (seed, grid) produce byte-identical files regardless of workers.
func AppendRecord(w io.Writer, rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadRecords parses a JSONL record stream. Blank lines are skipped; a
// malformed line is an error (a file truncated mid-line must be repaired
// before resuming, so a resumed grid never silently drops replicates).
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("mc: bad record on line %d: %v", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// GroupByJob indexes records by (job name, replicate) for RunOpts.Done.
// A duplicate (job, rep) pair keeps the first record seen.
func GroupByJob(recs []Record) map[string]map[int]Record {
	out := map[string]map[int]Record{}
	for _, rec := range recs {
		byRep, ok := out[rec.Job]
		if !ok {
			byRep = map[int]Record{}
			out[rec.Job] = byRep
		}
		if _, dup := byRep[rec.Rep]; !dup {
			byRep[rec.Rep] = rec
		}
	}
	return out
}

// ReadResumeFile loads a JSONL file written by a previous (interrupted)
// grid run and groups it for RunOpts.Done. A missing file is not an
// error: it returns an empty index, so "-resume" also starts fresh grids.
func ReadResumeFile(path string) (map[string]map[int]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]map[int]Record{}, nil
		}
		return nil, err
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		return nil, fmt.Errorf("mc: resume file %s: %v", path, err)
	}
	return GroupByJob(recs), nil
}
