package mc

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"plurality/internal/rng"
)

func TestRepSeedsDeterministicAndDistinct(t *testing.T) {
	a := RepSeeds(7, 64)
	b := RepSeeds(7, 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RepSeeds not deterministic")
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate replicate seed %d", s)
		}
		seen[s] = true
	}
	// Jump isolation: the seed stream must not collide with the first
	// direct draws a caller makes from the same base seed.
	direct := rng.New(7)
	for i := 0; i < 64; i++ {
		if seen[direct.Uint64()] {
			t.Fatal("replicate seed collides with direct draws from the base seed")
		}
	}
}

func TestMapDeterministicAcrossWorkers(t *testing.T) {
	f := func(rep int, r *rng.Rand) float64 { return float64(rep) + r.Float64() }
	var want []float64
	for _, w := range []int{1, 2, 4, 7} {
		p := NewPool(w)
		got, err := Map(context.Background(), p, 16, 42, f)
		p.Close()
		if err != nil {
			t.Fatalf("Map(workers=%d): %v", w, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Map results differ between 1 and %d workers", w)
		}
	}
}

func TestMapCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPool(2)
	defer p.Close()
	_, err := Map(ctx, p, 8, 1, func(int, *rng.Rand) int { return 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// testJob simulates "rounds = small function of the replicate seed".
func testJob(name string, reps int) Job {
	return Job{
		Name:       name,
		Seed:       99,
		Replicates: reps,
		MaxRounds:  1000,
		New: func(seed uint64) Run {
			return func() Record {
				r := rng.New(seed)
				rounds := 1 + r.Intn(100)
				return Record{Rounds: rounds, Success: rounds%2 == 0, Value: r.Float64()}
			}
		},
	}
}

func TestRunFillsAndOrdersRecords(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	job := testJob("cell", 10)
	var sunk []Record
	recs, err := p.Run(context.Background(), job, RunOpts{
		Sink: func(rec Record) error { sunk = append(sunk, rec); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds := RepSeeds(job.Seed, job.Replicates)
	for i, rec := range recs {
		if rec.Job != "cell" || rec.Rep != i || rec.Seed != seeds[i] {
			t.Fatalf("record %d not normalized: %+v", i, rec)
		}
	}
	if !reflect.DeepEqual(sunk, recs) {
		t.Fatal("sink did not receive all records in replicate order")
	}
	// Determinism across reruns and worker counts.
	p2 := NewPool(1)
	defer p2.Close()
	again, err := p2.Run(context.Background(), job, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, recs) {
		t.Fatal("Run not deterministic across worker counts")
	}
}

func TestRunResume(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	job := testJob("cell", 12)
	full, err := p.Run(context.Background(), job, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	done := map[int]Record{}
	for _, rec := range full[:5] {
		done[rec.Rep] = rec
	}
	var sunk []Record
	resumed, err := p.Run(context.Background(), job, RunOpts{
		Done: done,
		Sink: func(rec Record) error { sunk = append(sunk, rec); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Fatal("resumed records differ from a fresh run")
	}
	if !reflect.DeepEqual(sunk, full[5:]) {
		t.Fatalf("sink must receive only the missing replicates, got %d records", len(sunk))
	}
}

func TestRunResumeRejectsForeignSeeds(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	job := testJob("cell", 4)
	_, err := p.Run(context.Background(), job, RunOpts{
		Done: map[int]Record{2: {Job: "cell", Rep: 2, Seed: 12345}},
	})
	if err == nil {
		t.Fatal("Run accepted a resume record with a mismatched seed")
	}
}

func TestRunSinkError(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	boom := errors.New("disk full")
	calls := 0
	_, err := p.Run(context.Background(), testJob("cell", 8), RunOpts{
		Sink: func(Record) error { calls++; return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
	// The failed record may be partially written by the sink; it must not
	// be retried while the in-flight replicates drain.
	if calls != 1 {
		t.Fatalf("sink called %d times after failing, want 1", calls)
	}
}

func TestRunValidation(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if _, err := p.Run(context.Background(), Job{Name: "x", Replicates: 0, New: testJob("x", 1).New}, RunOpts{}); err == nil {
		t.Error("Run accepted Replicates = 0")
	}
	if _, err := p.Run(context.Background(), Job{Name: "x", Replicates: 1}, RunOpts{}); err == nil {
		t.Error("Run accepted a nil factory")
	}
}

func TestAggregate(t *testing.T) {
	recs := []Record{
		{Rounds: 10, Success: true},
		{Rounds: 20, Success: true},
		{Rounds: 30, Success: false},
		{Rounds: 40, Success: true},
	}
	a := Aggregate(recs)
	if a.N != 4 || a.Wins != 3 {
		t.Fatalf("Agg = %+v", a)
	}
	if got := a.SuccessRate(); got != 0.75 {
		t.Errorf("SuccessRate = %g", got)
	}
	sum := a.Rounds()
	if sum.Mean != 25 || sum.Min != 10 || sum.Max != 40 {
		t.Errorf("Rounds summary = %+v", sum)
	}
	lo, hi := a.Wilson(1.96)
	if !(0 <= lo && lo <= 0.75 && 0.75 <= hi && hi <= 1) {
		t.Errorf("Wilson = [%g, %g]", lo, hi)
	}
	qs := a.RoundsQuantiles(0, 0.5, 1)
	if qs[0] != 10 || math.Abs(qs[1]-25) > 1e-9 || qs[2] != 40 {
		t.Errorf("RoundsQuantiles = %v", qs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{
		{Job: "a", Rep: 0, Seed: 1, Rounds: 5, Success: true, Value: 0.5},
		{Job: "a", Rep: 1, Seed: 2, Rounds: 7, Success: false},
		{Job: "b", Rep: 0, Seed: 3, Rounds: 9, Success: true},
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		if err := AppendRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	back, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, recs)
	}
	byJob := GroupByJob(back)
	if len(byJob) != 2 || len(byJob["a"]) != 2 || byJob["b"][0].Rounds != 9 {
		t.Fatalf("GroupByJob = %+v", byJob)
	}
}

func TestReadRecordsRejectsGarbage(t *testing.T) {
	_, err := ReadRecords(bytes.NewReader([]byte("{\"rep\":0}\nnot json\n")))
	if err == nil {
		t.Fatal("ReadRecords accepted a malformed line")
	}
}

func TestReadResumeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.jsonl")
	got, err := ReadResumeFile(path)
	if err != nil || len(got) != 0 {
		t.Fatalf("missing file: got %v, %v", got, err)
	}
	if err := os.WriteFile(path, []byte("{\"job\":\"a\",\"rep\":0,\"seed\":1,\"rounds\":3,\"success\":true}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReadResumeFile(path)
	if err != nil || got["a"][0].Rounds != 3 {
		t.Fatalf("ReadResumeFile = %v, %v", got, err)
	}
}

func TestSharedPoolReuse(t *testing.T) {
	if Shared(2) != Shared(2) {
		t.Error("Shared(2) must return one pool")
	}
	if Shared(0).Workers() < 1 {
		t.Error("Shared(0) must default to GOMAXPROCS")
	}
}
