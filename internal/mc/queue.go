package mc

import (
	"context"
	"sync"
)

// queued is one job waiting for an executor.
type queued struct {
	ctx  context.Context
	job  Job
	opts RunOpts
	done func(recs []Record, err error)
}

// Queue is the exported job-submission hook for long-running services: a
// bounded backlog of Jobs drained by a fixed number of executor
// goroutines, each of which runs one job at a time on the underlying Pool
// (so replicates of concurrent jobs interleave fairly on the same
// workers). Admission is non-blocking — TryEnqueue reports false when the
// backlog is full — which is what lets a server shed load (HTTP 429)
// instead of buffering unbounded work.
type Queue struct {
	pool    *Pool
	backlog chan queued
	quit    chan struct{}
	wg      sync.WaitGroup

	mu     sync.Mutex // guards closed and admission into backlog
	closed bool
}

// NewQueue starts executors goroutines draining a backlog of at most
// backlog jobs beyond the ones being executed. executors <= 0 means 1;
// backlog < 0 means 0 (admission succeeds only when an executor is about
// to pick the job up).
func NewQueue(pool *Pool, executors, backlog int) *Queue {
	if executors <= 0 {
		executors = 1
	}
	if backlog < 0 {
		backlog = 0
	}
	q := &Queue{
		pool:    pool,
		backlog: make(chan queued, backlog),
		quit:    make(chan struct{}),
	}
	for i := 0; i < executors; i++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for {
				select {
				case <-q.quit:
					return
				case item := <-q.backlog:
					item.run(q.pool)
				}
			}
		}()
	}
	return q
}

// run executes one backlog item and reports through its done callback. A
// job whose context was cancelled while it sat in the backlog is not
// started at all.
func (item queued) run(pool *Pool) {
	if err := item.ctx.Err(); err != nil {
		item.done(nil, err)
		return
	}
	recs, err := pool.Run(item.ctx, item.job, item.opts)
	item.done(recs, err)
}

// TryEnqueue submits a job for asynchronous execution. It never blocks:
// the return value reports whether the job was admitted. When it was,
// done is called exactly once — from an executor goroutine, or from Close
// if the queue shuts down first — with the job's records and error
// (pool.Run semantics: a cancelled job reports ctx.Err() and the records
// completed before the abort). After Close, TryEnqueue always reports
// false.
func (q *Queue) TryEnqueue(ctx context.Context, job Job, opts RunOpts, done func(recs []Record, err error)) bool {
	if done == nil {
		done = func([]Record, error) {}
	}
	item := queued{ctx: ctx, job: job, opts: opts, done: done}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.backlog <- item:
		return true
	default:
		return false
	}
}

// Backlog reports the number of admitted jobs not yet picked up by an
// executor (the queue depth a server would expose as a health metric).
func (q *Queue) Backlog() int { return len(q.backlog) }

// Close stops the executors after their in-flight jobs finish, then
// reports context.Canceled to every job still in the backlog. Jobs whose
// contexts the caller has already cancelled finish promptly; Close does
// not cancel contexts itself. Close is idempotent and safe to call
// concurrently with TryEnqueue.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.quit)
	}
	q.mu.Unlock()
	q.wg.Wait()
	for {
		select {
		case item := <-q.backlog:
			item.done(nil, context.Canceled)
		default:
			return
		}
	}
}
