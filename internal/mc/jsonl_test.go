package mc

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeRecords renders records as the JSONL AppendRecord produces.
func writeRecords(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		if err := AppendRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Job: "grid/a", Rep: i, Seed: uint64(1000 + i), Rounds: 10 + i, Success: i%2 == 0}
	}
	return recs
}

func TestScanRecordsCleanFile(t *testing.T) {
	recs := sampleRecords(4)
	data := writeRecords(t, recs)
	got, ends := ScanRecords(data)
	if len(got) != 4 || ValidPrefix(ends) != int64(len(data)) {
		t.Fatalf("clean file: %d records, valid %d, want 4 and %d", len(got), ValidPrefix(ends), len(data))
	}
	for i, rec := range got {
		if rec != recs[i] {
			t.Fatalf("record %d round-tripped to %+v", i, rec)
		}
	}
	// Each end offset is a line boundary: the byte before it is '\n'.
	for i, end := range ends {
		if data[end-1] != '\n' {
			t.Fatalf("ends[%d]=%d is not a line boundary", i, end)
		}
	}
}

// TestScanRecordsTruncationEveryOffset is the torn-write exhaustiveness
// proof: truncating the file at *every* byte offset of the last record
// must yield exactly the first m-1 records and a valid prefix that ends
// where record m-1's line does, so a resumed run re-executes only the
// replicate whose write was torn.
func TestScanRecordsTruncationEveryOffset(t *testing.T) {
	recs := sampleRecords(5)
	data := writeRecords(t, recs)
	_, fullEnds := ScanRecords(data)
	lastStart := fullEnds[len(fullEnds)-2] // byte where the last record's line begins
	for cut := lastStart; cut < int64(len(data)); cut++ {
		got, ends := ScanRecords(data[:cut])
		if len(got) != len(recs)-1 {
			t.Fatalf("cut at byte %d: %d records, want %d", cut, len(got), len(recs)-1)
		}
		if ValidPrefix(ends) != lastStart {
			t.Fatalf("cut at byte %d: valid prefix %d, want %d", cut, ValidPrefix(ends), lastStart)
		}
	}
}

func TestScanRecordsStopsAtGarbage(t *testing.T) {
	data := writeRecords(t, sampleRecords(3))
	valid := int64(len(data))
	data = append(data, []byte("{\"rep\": 3, \"seed\"")...) // torn mid-key
	got, ends := ScanRecords(data)
	if len(got) != 3 || ValidPrefix(ends) != valid {
		t.Fatalf("torn tail: %d records, valid %d, want 3 and %d", len(got), ValidPrefix(ends), valid)
	}
	// A complete but malformed line stops the scan too.
	data = append(writeRecords(t, sampleRecords(2)), []byte("not json\n")...)
	data = append(data, writeRecords(t, sampleRecords(1))...)
	got, ends = ScanRecords(data)
	if len(got) != 2 {
		t.Fatalf("garbage line: scanned %d records, want 2", len(got))
	}
	_ = ends
}

func TestReadResumePrefixTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords(4)
	data := writeRecords(t, recs)
	full := int64(len(data))
	path := filepath.Join(dir, "grid.jsonl")

	// Clean file: everything indexed, nothing torn.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	done, valid, torn, err := ReadResumePrefix(path)
	if err != nil || torn || valid != full || len(done["grid/a"]) != 4 {
		t.Fatalf("clean: done=%d valid=%d torn=%v err=%v", len(done["grid/a"]), valid, torn, err)
	}

	// Torn tail: last record half-written.
	_, ends := ScanRecords(data)
	cut := ends[2] + 7
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	done, valid, torn, err = ReadResumePrefix(path)
	if err != nil {
		t.Fatalf("torn tail errored: %v", err)
	}
	if !torn || valid != ends[2] || len(done["grid/a"]) != 3 {
		t.Fatalf("torn: done=%d valid=%d torn=%v", len(done["grid/a"]), valid, torn)
	}

	// ReadResumeFile shares the tolerance.
	if done, err := ReadResumeFile(path); err != nil || len(done["grid/a"]) != 3 {
		t.Fatalf("ReadResumeFile on torn file: done=%d err=%v", len(done["grid/a"]), err)
	}

	// Interior corruption followed by well-formed records is NOT a torn
	// write and must still refuse to resume.
	bad := append([]byte{}, data[:ends[1]]...)
	bad = append(bad, []byte("garbage line\n")...)
	bad = append(bad, data[ends[1]:]...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadResumePrefix(path); err == nil {
		t.Fatal("interior corruption did not error")
	}

	// Missing file: empty index, no error.
	done, valid, torn, err = ReadResumePrefix(filepath.Join(dir, "absent.jsonl"))
	if err != nil || torn || valid != 0 || len(done) != 0 {
		t.Fatalf("missing file: done=%d valid=%d torn=%v err=%v", len(done), valid, torn, err)
	}
}

// TestResumeAfterTornWriteReExecutesOnlyMissing wires a torn file back
// through RunOpts.Done and checks the run recomputes exactly the
// replicates that were lost, leaving the final stream byte-identical to
// an uninterrupted run.
func TestResumeAfterTornWriteReExecutesOnlyMissing(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	job := Job{Name: "grid/a", Seed: 9, Replicates: 6,
		New: func(seed uint64) Run {
			return func() Record { return Record{Rounds: int(seed % 97), Success: seed%2 == 0} }
		}}
	var want bytes.Buffer
	if _, err := pool.Run(t.Context(), job, RunOpts{Sink: func(r Record) error { return AppendRecord(&want, r) }}); err != nil {
		t.Fatal(err)
	}

	// Tear the file inside record 4: records 0..3 survive.
	_, ends := ScanRecords(want.Bytes())
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	if err := os.WriteFile(path, want.Bytes()[:ends[4]-3], 0o644); err != nil {
		t.Fatal(err)
	}
	done, valid, torn, err := ReadResumePrefix(path)
	if err != nil || !torn {
		t.Fatalf("prefix: torn=%v err=%v", torn, err)
	}
	if err := os.Truncate(path, valid); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	_, err = pool.Run(t.Context(), job, RunOpts{
		Done: done[job.Name],
		Sink: func(r Record) error { ran++; return AppendRecord(f, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("resume re-executed %d replicates, want 2 (reps 4 and 5)", ran)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("resumed file differs from uninterrupted run:\n got %q\nwant %q", got, want.Bytes())
	}
}

func TestScanRecordsSkipsBlankLines(t *testing.T) {
	data := []byte(fmt.Sprintf("\n%s\n\n%s\n",
		`{"job":"g","rep":0,"seed":1,"rounds":2}`, `{"job":"g","rep":1,"seed":2,"rounds":3}`))
	recs, ends := ScanRecords(data)
	if len(recs) != 2 || ValidPrefix(ends) != int64(len(data)) {
		t.Fatalf("blank lines: %d records, valid %d of %d", len(recs), ValidPrefix(ends), len(data))
	}
}
