// Package mc is the replicate-parallel Monte Carlo runner shared by the
// experiment harness (internal/expt), cmd/sweep and cmd/experiments.
//
// Every statistical claim reproduced from the paper — md(c)·log n
// convergence, rule-zoo failure rates, bias tightness — is a Monte Carlo
// statement over independent replicates. This package centralizes the
// replicate loop that used to be hand-rolled at each call site:
//
//   - a persistent worker Pool executes replicates in parallel;
//   - each replicate gets a private seed drawn from a jump-isolated
//     rng stream (RepSeeds), so results are deterministic for a fixed
//     base seed and — because seeds are pre-derived — independent of the
//     worker count and of goroutine scheduling;
//   - a Job streams one Record per replicate, in replicate order, to an
//     optional sink (typically a JSONL writer; see AppendRecord), and
//     returns the full record slice for in-memory aggregation (Aggregate);
//   - interrupted grids resume from their JSONL output: records already
//     on disk are passed back via RunOpts.Done and are not re-executed.
//
// The typical flow:
//
//	pool := mc.NewPool(workers) // or mc.Shared(workers)
//	defer pool.Close()
//	job := mc.Job{Name: "3majority/n=1e5/k=8", Seed: 1, Replicates: 20,
//	    MaxRounds: 200_000,
//	    New: func(seed uint64) mc.Run {
//	        return func() mc.Record { /* one full simulation */ },
//	    }}
//	recs, err := pool.Run(ctx, job, mc.RunOpts{Sink: sink})
//	agg := mc.Aggregate(recs)
package mc

import (
	"context"
	"fmt"
	"time"

	"plurality/internal/rng"
	"plurality/internal/stats"
)

// Record is the result of one replicate. The runner fills Job, Rep and
// Seed itself; the replicate's Run supplies the outcome fields.
type Record struct {
	// Job names the grid cell / experiment this record belongs to.
	Job string `json:"job,omitempty"`
	// Rep is the replicate index within the job, 0-based.
	Rep int `json:"rep"`
	// Seed is the replicate's private seed: rng.New(Seed) reproduces the
	// replicate in isolation.
	Seed uint64 `json:"seed"`
	// Rounds is the number of simulated rounds the replicate executed.
	Rounds int `json:"rounds"`
	// Success is the replicate's success event (for the paper's tables:
	// consensus on the initial plurality color).
	Success bool `json:"success"`
	// Value carries an optional rule-specific metric.
	Value float64 `json:"value,omitempty"`
}

// Run executes one fully-seeded replicate and returns its Record. The
// runner overwrites the Record's Job, Rep and Seed fields.
type Run func() Record

// Job describes one Monte Carlo estimate: Replicates independent
// executions of the closure produced by New.
type Job struct {
	// Name identifies the job in Records and resume files. Jobs in one
	// JSONL grid must have distinct names.
	Name string
	// Seed is the base seed; per-replicate seeds derive from it (RepSeeds).
	Seed uint64
	// Replicates is the number of independent executions.
	Replicates int
	// MaxRounds is the round budget the factory should apply to each
	// replicate (callers close over it when building New; it rides on the
	// Job so grid drivers have one place to thread the budget through).
	MaxRounds int
	// New builds the replicate closure from its private 64-bit seed.
	New func(seed uint64) Run
}

// RunOpts tunes one Pool.Run call.
type RunOpts struct {
	// Done maps replicate index to an already-computed Record (typically
	// read back from a JSONL file). Those replicates are not re-executed
	// and not re-emitted to Sink; their records are validated against the
	// job's derived seeds and included in the returned slice.
	Done map[int]Record
	// Sink, if non-nil, receives each newly computed Record in replicate
	// order. A Sink error aborts the run after in-flight replicates drain.
	Sink func(Record) error
	// OnStart, if non-nil, is called once when the job starts executing —
	// after validation, before any replicate runs. A job that waits in a
	// Queue backlog fires it only when an executor picks the job up, which
	// is how a service distinguishes "queued" from "running".
	OnStart func()
	// OnProgress, if non-nil, is called once per newly computed replicate,
	// in replicate order, after the record has cleared the Sink. done is
	// the number of records complete so far — including any resumed Done
	// prefix — and total is the job's replicate count. Records supplied
	// via Done never fire OnProgress: they were computed (and counted) by
	// a previous run, which is what lets a service's throughput counters
	// survive a crash-resume without double-counting. Like Sink, it runs
	// on the coordinating goroutine, never concurrently with itself.
	OnProgress func(rec Record, done, total int)
	// OnTiming, if non-nil, receives each newly computed replicate's
	// scheduling telemetry. Timing is measured only when OnTiming is set
	// and delivered on the coordinating goroutine in *completion* order
	// (unlike Sink/OnProgress it is not reordered to replicate order —
	// queue-wait telemetry is about when things actually ran). Timing is
	// a side channel by design: it never enters Record, which stays a
	// pure function of the job spec.
	OnTiming func(RepTiming)
}

// RepTiming is the scheduling telemetry of one executed replicate.
type RepTiming struct {
	// Rep is the replicate index; Worker is the pool worker that ran it.
	Rep    int
	Worker int
	// QueueWait is how long the replicate waited between job start and
	// the moment a worker picked it up; Exec is its run time.
	QueueWait time.Duration
	Exec      time.Duration
}

// RepSeeds returns the n per-replicate seeds derived from a job's base
// seed. The seed stream is jump-isolated: a seed-initialized generator is
// advanced by 2^128 steps before any seed is drawn, so replicate seeds
// never collide with draws a caller makes from rng.New(seed) directly.
// Seeds are pre-derived for all replicates, which is what makes results
// independent of worker count and scheduling.
func RepSeeds(seed uint64, n int) []uint64 {
	src := rng.New(seed)
	src.Jump()
	out := make([]uint64, n)
	for i := range out {
		out[i] = src.Uint64()
	}
	return out
}

// Run executes the job's replicates on the pool and returns the records
// indexed by replicate. Records in opts.Done are reused; the rest are
// computed. On a context or sink error the returned error is non-nil and
// the slice holds only the records completed before the abort.
func (p *Pool) Run(ctx context.Context, job Job, opts RunOpts) ([]Record, error) {
	n := job.Replicates
	if n <= 0 {
		return nil, fmt.Errorf("mc: job %q needs Replicates > 0", job.Name)
	}
	if job.New == nil {
		return nil, fmt.Errorf("mc: job %q has a nil factory", job.Name)
	}
	seeds := RepSeeds(job.Seed, n)
	recs := make([]Record, n)
	have := make([]bool, n) // provided via opts.Done
	comp := make([]bool, n) // computed this run
	for i, rec := range opts.Done {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("mc: job %q resume record rep %d out of range [0,%d)", job.Name, i, n)
		}
		if rec.Seed != seeds[i] {
			return nil, fmt.Errorf("mc: job %q resume record rep %d has seed %d, want %d (file from a different base seed?)",
				job.Name, i, rec.Seed, seeds[i])
		}
		rec.Job, rec.Rep = job.Name, i
		recs[i] = rec
		have[i] = true
	}
	if opts.OnStart != nil {
		opts.OnStart()
	}
	// flush emits computed records to the sink in replicate order, skipping
	// Done records (they are already wherever the sink writes). A sink
	// error latches: the failed record is never retried (the sink may have
	// partially written it) and no further records are emitted while the
	// in-flight replicates drain.
	flush := 0
	sinkFailed := false
	advance := func() error {
		if sinkFailed {
			return nil
		}
		for flush < n && (have[flush] || comp[flush]) {
			if !have[flush] {
				if opts.Sink != nil {
					if err := opts.Sink(recs[flush]); err != nil {
						sinkFailed = true
						return err
					}
				}
				if opts.OnProgress != nil {
					opts.OnProgress(recs[flush], flush+1, n)
				}
			}
			flush++
		}
		return nil
	}
	var timings []RepTiming
	var jobStart time.Time
	if opts.OnTiming != nil {
		timings = make([]RepTiming, n)
		jobStart = time.Now()
	}
	err := p.dispatch(ctx, n,
		func(i int) bool { return have[i] },
		func(i, w int) {
			var start time.Time
			if timings != nil {
				start = time.Now()
			}
			rec := job.New(seeds[i])()
			rec.Job, rec.Rep, rec.Seed = job.Name, i, seeds[i]
			recs[i] = rec
			if timings != nil {
				timings[i] = RepTiming{
					Rep: i, Worker: w,
					QueueWait: start.Sub(jobStart),
					Exec:      time.Since(start),
				}
			}
		},
		func(i int) error {
			comp[i] = true
			if opts.OnTiming != nil {
				opts.OnTiming(timings[i])
			}
			return advance()
		})
	if err != nil {
		return recs[:flush], err
	}
	return recs, nil
}

// Agg is the in-memory aggregate of a job's records: success counts for
// Wilson intervals and the rounds sample for mean/std/quantiles.
type Agg struct {
	// N is the number of aggregated records.
	N int
	// Wins is the number of records with Success set.
	Wins int

	rounds []float64
}

// Aggregate folds a record slice into an Agg.
func Aggregate(recs []Record) *Agg {
	a := &Agg{}
	for _, rec := range recs {
		a.Add(rec)
	}
	return a
}

// Add folds one record into the aggregate.
func (a *Agg) Add(rec Record) {
	a.N++
	if rec.Success {
		a.Wins++
	}
	a.rounds = append(a.rounds, float64(rec.Rounds))
}

// SuccessRate returns Wins/N. It panics on an empty aggregate.
func (a *Agg) SuccessRate() float64 {
	if a.N == 0 {
		panic("mc: SuccessRate on empty aggregate")
	}
	return float64(a.Wins) / float64(a.N)
}

// Wilson returns the Wilson score interval for the success proportion at
// confidence z (1.96 for 95%).
func (a *Agg) Wilson(z float64) (lo, hi float64) {
	return stats.WilsonInterval(a.Wins, a.N, z)
}

// Rounds summarizes the rounds sample (mean, std, median, quartiles).
func (a *Agg) Rounds() stats.Summary {
	return stats.Summarize(a.rounds)
}

// RoundsQuantiles returns the requested quantiles of the rounds sample.
func (a *Agg) RoundsQuantiles(qs ...float64) []float64 {
	return stats.Quantiles(a.rounds, qs...)
}
