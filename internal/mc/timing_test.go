package mc

import (
	"context"
	"testing"
	"time"
)

func timingJob(name string, reps int) Job {
	return Job{
		Name: name, Seed: 42, Replicates: reps,
		New: func(seed uint64) Run {
			return func() Record {
				time.Sleep(time.Millisecond)
				return Record{Rounds: int(seed % 100), Success: true}
			}
		},
	}
}

// TestOnTiming pins the timing side channel: one callback per computed
// replicate, plausible queue-wait/exec values, worker indexes within the
// pool, and no timing for resumed replicates.
func TestOnTiming(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	const reps = 12
	var timings []RepTiming
	recs, err := pool.Run(context.Background(), timingJob("t", reps), RunOpts{
		OnTiming: func(tm RepTiming) { timings = append(timings, tm) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != reps || len(timings) != reps {
		t.Fatalf("recs=%d timings=%d, want %d each", len(recs), len(timings), reps)
	}
	seen := make([]bool, reps)
	for _, tm := range timings {
		if tm.Rep < 0 || tm.Rep >= reps || seen[tm.Rep] {
			t.Fatalf("bad or duplicate rep in timing %+v", tm)
		}
		seen[tm.Rep] = true
		if tm.Worker < 0 || tm.Worker >= pool.Workers() {
			t.Errorf("rep %d ran on worker %d, pool has %d", tm.Rep, tm.Worker, pool.Workers())
		}
		if tm.Exec < time.Millisecond/2 {
			t.Errorf("rep %d exec %v, want >= ~1ms", tm.Rep, tm.Exec)
		}
		if tm.QueueWait < 0 {
			t.Errorf("rep %d negative queue wait %v", tm.Rep, tm.QueueWait)
		}
	}

	// Resumed replicates never fire OnTiming — they did not run here.
	done := map[int]Record{}
	for i, rec := range recs {
		if i%2 == 0 {
			done[i] = rec
		}
	}
	timings = timings[:0]
	if _, err := pool.Run(context.Background(), timingJob("t", reps), RunOpts{
		Done:     done,
		OnTiming: func(tm RepTiming) { timings = append(timings, tm) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(timings) != reps-len(done) {
		t.Errorf("resume fired %d timings, want %d", len(timings), reps-len(done))
	}
	for _, tm := range timings {
		if tm.Rep%2 == 0 {
			t.Errorf("resumed rep %d fired OnTiming", tm.Rep)
		}
	}
}

// TestWorkerBusy pins the pool utilization counters: all work is
// attributed, counters are cumulative and consistent with the number of
// tasks run.
func TestWorkerBusy(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	if _, err := pool.Run(context.Background(), timingJob("b", 8), RunOpts{}); err != nil {
		t.Fatal(err)
	}
	busy := pool.WorkerBusy()
	tasks := pool.WorkerTasks()
	if len(busy) != 2 || len(tasks) != 2 {
		t.Fatalf("snapshot lengths %d/%d, want 2", len(busy), len(tasks))
	}
	var totalTasks int64
	var totalBusy time.Duration
	for w := range busy {
		if busy[w] < 0 || (tasks[w] > 0 && busy[w] == 0) {
			t.Errorf("worker %d: %d tasks but busy %v", w, tasks[w], busy[w])
		}
		totalTasks += tasks[w]
		totalBusy += busy[w]
	}
	if totalTasks != 8 {
		t.Errorf("total tasks %d, want 8", totalTasks)
	}
	// 8 replicates × ≥1ms each must be attributed somewhere.
	if totalBusy < 8*time.Millisecond/2 {
		t.Errorf("total busy %v implausibly low", totalBusy)
	}
	// Counters are cumulative across jobs.
	if _, err := pool.Run(context.Background(), timingJob("b2", 4), RunOpts{}); err != nil {
		t.Fatal(err)
	}
	var after int64
	for _, v := range pool.WorkerTasks() {
		after += v
	}
	if after != 12 {
		t.Errorf("cumulative tasks %d, want 12", after)
	}
}
