package mc

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// enqueueWait admits a job and returns a wait function for its result.
func enqueueWait(t *testing.T, q *Queue, ctx context.Context, job Job) func() ([]Record, error) {
	t.Helper()
	type result struct {
		recs []Record
		err  error
	}
	ch := make(chan result, 1)
	ok := q.TryEnqueue(ctx, job, RunOpts{}, func(recs []Record, err error) {
		ch <- result{recs, err}
	})
	if !ok {
		t.Fatalf("TryEnqueue(%q) rejected on an empty queue", job.Name)
	}
	return func() ([]Record, error) {
		res := <-ch
		return res.recs, res.err
	}
}

func TestQueueRunsJobsLikePool(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	q := NewQueue(p, 2, 4)
	defer q.Close()

	job := testJob("queued-cell", 12)
	wait := enqueueWait(t, q, context.Background(), job)
	got, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Run(context.Background(), job, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("queue execution differs from direct pool.Run")
	}
}

func TestQueueBackpressure(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	q := NewQueue(p, 1, 1) // one running slot, one backlog slot
	defer q.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blocking := Job{
		Name: "blocking", Seed: 1, Replicates: 1,
		New: func(uint64) Run {
			return func() Record {
				once.Do(func() { close(started) })
				<-release
				return Record{}
			}
		},
	}
	waitBlocking := enqueueWait(t, q, context.Background(), blocking)
	<-started // the executor is busy; the backlog is empty

	waitQueued := enqueueWait(t, q, context.Background(), testJob("fills-backlog", 2))
	if q.Backlog() != 1 {
		t.Fatalf("Backlog() = %d, want 1", q.Backlog())
	}
	if q.TryEnqueue(context.Background(), testJob("overflow", 2), RunOpts{}, nil) {
		t.Fatal("TryEnqueue admitted a job past the backlog bound")
	}

	close(release)
	if _, err := waitBlocking(); err != nil {
		t.Fatal(err)
	}
	if _, err := waitQueued(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueCancelledWhileQueuedIsNotStarted(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	q := NewQueue(p, 1, 2)
	defer q.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blocking := Job{
		Name: "blocking", Seed: 1, Replicates: 1,
		New: func(uint64) Run {
			return func() Record {
				once.Do(func() { close(started) })
				<-release
				return Record{}
			}
		},
	}
	waitBlocking := enqueueWait(t, q, context.Background(), blocking)
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	job := testJob("cancelled-in-backlog", 2)
	job.New = func(uint64) Run {
		return func() Record { ran = true; return Record{} }
	}
	waitCancelled := enqueueWait(t, q, ctx, job)
	cancel()
	close(release)

	if _, err := waitBlocking(); err != nil {
		t.Fatal(err)
	}
	recs, err := waitCancelled()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(recs) != 0 || ran {
		t.Fatal("cancelled-in-backlog job still executed replicates")
	}
}

func TestQueueCloseReportsBacklog(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	q := NewQueue(p, 1, 4)

	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blocking := Job{
		Name: "blocking", Seed: 1, Replicates: 1,
		New: func(uint64) Run {
			return func() Record {
				once.Do(func() { close(started) })
				<-release
				return Record{}
			}
		},
	}
	waitBlocking := enqueueWait(t, q, context.Background(), blocking)
	<-started
	waitQueued := enqueueWait(t, q, context.Background(), testJob("stranded", 2))

	close(release)
	if _, err := waitBlocking(); err != nil {
		t.Fatal(err)
	}
	q.Close()
	// The stranded job is reported either by an executor that picked it up
	// before quitting (it runs normally) or by Close (context.Canceled).
	if _, err := waitQueued(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("stranded job reported %v", err)
	}
	if q.TryEnqueue(context.Background(), testJob("after-close", 1), RunOpts{}, nil) {
		t.Fatal("TryEnqueue admitted a job after Close")
	}
}
