package meanfield_test

import (
	"fmt"

	"plurality/internal/dynamics"
	"plurality/internal/meanfield"
)

// ExampleIterate runs the infinite-population recursion: a 40% leader
// among four colors races to 1 deterministically.
func ExampleIterate() {
	traj := meanfield.Iterate(dynamics.ThreeMajority{}, []float64{0.4, 0.2, 0.2, 0.2}, 20)
	last := traj[len(traj)-1]
	fmt.Printf("leader after 20 rounds: %.4f\n", last[0])
	// Output:
	// leader after 20 rounds: 1.0000
}

// ExampleIsFixedPoint shows that monochromatic points are absorbing and
// that polling's mean-field map is the identity (every point is fixed —
// the voter martingale).
func ExampleIsFixedPoint() {
	fmt.Println(meanfield.IsFixedPoint(dynamics.ThreeMajority{}, []float64{1, 0}, 1e-9))
	fmt.Println(meanfield.IsFixedPoint(dynamics.Polling{}, []float64{0.37, 0.63}, 1e-6))
	// Output:
	// true
	// true
}
