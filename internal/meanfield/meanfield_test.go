package meanfield

import (
	"math"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

func TestStepPreservesSimplex(t *testing.T) {
	x := []float64{0.5, 0.3, 0.2}
	dst := make([]float64, 3)
	Step(dynamics.ThreeMajority{}, x, dst)
	sum := 0.0
	for _, v := range dst {
		if v < 0 || v > 1 {
			t.Fatalf("fraction out of range: %v", dst)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestVerticesAreFixedPoints(t *testing.T) {
	for _, model := range []dynamics.ProbModel{
		dynamics.ThreeMajority{}, dynamics.Median{}, dynamics.Polling{},
	} {
		x := []float64{0, 1, 0}
		if !IsFixedPoint(model, x, 1e-9) {
			t.Errorf("%T: monochromatic vertex is not a fixed point", model)
		}
	}
}

func TestUniformIsFixedPointButUnstable(t *testing.T) {
	// The balanced point is fixed for 3-majority by symmetry...
	x := []float64{0.25, 0.25, 0.25, 0.25}
	if !IsFixedPoint(dynamics.ThreeMajority{}, x, 1e-6) {
		t.Error("uniform point should be fixed")
	}
	// ...but any perturbation grows (Lemma 2): after iterating, the
	// leader's fraction increases monotonically.
	y := []float64{0.28, 0.24, 0.24, 0.24}
	traj := Iterate(dynamics.ThreeMajority{}, y, 40)
	prev := traj[0][0]
	for i := 1; i < len(traj); i++ {
		if traj[i][0] < prev-1e-9 {
			t.Fatalf("leader fraction shrank at round %d: %v -> %v", i, prev, traj[i][0])
		}
		prev = traj[i][0]
	}
	if traj[len(traj)-1][0] < 0.99 {
		t.Fatalf("mean-field did not converge to the leader: %v", traj[len(traj)-1])
	}
}

func TestPollingMeanFieldIsConstant(t *testing.T) {
	// Polling's adoption probabilities are exactly the current fractions —
	// the mean-field map is the identity (the voter martingale).
	x := []float64{0.6, 0.3, 0.1}
	traj := Iterate(dynamics.Polling{}, x, 10)
	for _, row := range traj {
		if Distance(row, x) > 1e-6 {
			t.Fatalf("polling mean-field moved: %v", row)
		}
	}
}

func TestMedianMeanFieldConvergesToMedianColor(t *testing.T) {
	// Median dynamics: the color holding the median of the distribution
	// wins regardless of the plurality. Color 0 has 40%, but the median
	// sample (CDF crossing 1/2) is color 1.
	x := []float64{0.4, 0.35, 0.25}
	rounds, final := IterateUntil(dynamics.Median{}, x, 0.999, 200)
	if rounds >= 200 {
		t.Fatalf("median mean-field did not converge: %v", final)
	}
	if final[1] < 0.999 {
		t.Fatalf("median mean-field converged to wrong color: %v", final)
	}
}

func TestLemma2HoldsInMeanField(t *testing.T) {
	// The bias growth of the mean-field map must satisfy Lemma 2's bound
	// (it is exactly the expectation drift).
	x := []float64{0.30, 0.25, 0.25, 0.20}
	next := make([]float64, 4)
	Step(dynamics.ThreeMajority{}, x, next)
	s := x[0] - x[1]
	bound := s * (1 + x[0]*(1-x[0]))
	if next[0]-next[1] < bound-1e-6 {
		t.Fatalf("mean-field drift %v below Lemma 2 bound %v", next[0]-next[1], bound)
	}
}

func TestStochasticTracksMeanField(t *testing.T) {
	// The n-agent process after one round deviates from the mean-field
	// step by O(1/sqrt n) per color.
	n := int64(1_000_000)
	init := colorcfg.Biased(n, 4, 100_000)
	x := Fractions(init)
	want := make([]float64, 4)
	Step(dynamics.ThreeMajority{}, x, want)

	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	e.Step(rng.New(1))
	got := Fractions(e.Config())
	for j := range want {
		if math.Abs(got[j]-want[j]) > 5/math.Sqrt(float64(n)) {
			t.Errorf("color %d: stochastic %v vs mean-field %v", j, got[j], want[j])
		}
	}
}

func TestIterateTrajectoryShape(t *testing.T) {
	x := []float64{0.7, 0.3}
	traj := Iterate(dynamics.ThreeMajority{}, x, 5)
	if len(traj) != 6 {
		t.Fatalf("trajectory length %d, want 6", len(traj))
	}
	if Distance(traj[0], x) != 0 {
		t.Fatal("trajectory[0] must equal x0")
	}
	// Mutating the input must not affect the recorded trajectory.
	x[0] = 0
	if traj[0][0] != 0.7 {
		t.Fatal("trajectory aliases the input")
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"lenMismatch": func() { Step(dynamics.ThreeMajority{}, []float64{1}, make([]float64, 2)) },
		"negative":    func() { Step(dynamics.ThreeMajority{}, []float64{-1, 2}, make([]float64, 2)) },
		"zeroSum":     func() { Step(dynamics.ThreeMajority{}, []float64{0, 0}, make([]float64, 2)) },
		"distLen":     func() { Distance([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
