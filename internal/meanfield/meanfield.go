// Package meanfield iterates the deterministic infinite-population limit
// of a dynamics: the fraction vector evolves as x(t+1) = p(x(t)), where p
// is the rule's adoption-probability map (Lemma 1 for 3-majority). The
// stochastic process at population n stays within O(1/sqrt n) of this
// recursion over any constant number of rounds, which experiment E17
// verifies; the recursion also exposes the fixed-point structure (every
// vertex of the simplex is absorbing; the uniform point is the unstable
// balanced state).
package meanfield

import (
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
)

// scale converts a fraction vector to a pseudo-configuration for the
// ProbModel interface, which is scale-free for all rules in this
// repository (they depend only on c/n).
const scale = 1 << 30

// Step applies one round of the mean-field map to the fraction vector x
// (must sum to 1), writing the result to dst. x and dst may alias.
func Step(model dynamics.ProbModel, x []float64, dst []float64) {
	if len(x) != len(dst) {
		panic("meanfield: length mismatch")
	}
	c := make(colorcfg.Config, len(x))
	for j, f := range x {
		if f < 0 {
			panic("meanfield: negative fraction")
		}
		c[j] = int64(f * scale)
	}
	// Guard against an all-zero rounding artifact.
	if c.N() == 0 {
		panic("meanfield: fraction vector sums to zero")
	}
	model.AdoptionProbs(c, dst)
}

// Iterate runs the mean-field recursion for the given number of rounds and
// returns the full trajectory, trajectory[0] being a copy of x0.
func Iterate(model dynamics.ProbModel, x0 []float64, rounds int) [][]float64 {
	traj := make([][]float64, 0, rounds+1)
	cur := append([]float64(nil), x0...)
	traj = append(traj, append([]float64(nil), cur...))
	for t := 0; t < rounds; t++ {
		next := make([]float64, len(cur))
		Step(model, cur, next)
		cur = next
		traj = append(traj, append([]float64(nil), cur...))
	}
	return traj
}

// IterateUntil runs the recursion until the leading fraction exceeds the
// threshold or maxRounds is hit, returning the number of rounds used and
// the final vector.
func IterateUntil(model dynamics.ProbModel, x0 []float64, threshold float64, maxRounds int) (int, []float64) {
	cur := append([]float64(nil), x0...)
	buf := make([]float64, len(cur))
	for t := 0; t < maxRounds; t++ {
		if maxOf(cur) >= threshold {
			return t, cur
		}
		Step(model, cur, buf)
		cur, buf = buf, cur
	}
	return maxRounds, cur
}

// Fractions converts a configuration to its fraction vector.
func Fractions(c colorcfg.Config) []float64 { return c.Fractions() }

// Distance returns the L1 distance between two fraction vectors.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("meanfield: length mismatch")
	}
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// IsFixedPoint reports whether x is (numerically) a fixed point of the
// mean-field map within tol in L1.
func IsFixedPoint(model dynamics.ProbModel, x []float64, tol float64) bool {
	next := make([]float64, len(x))
	Step(model, x, next)
	return Distance(x, next) <= tol
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
