package service

import (
	"context"
	"fmt"

	"plurality/internal/mc"
)

// This file is the glue between the job lifecycle (store.go, server.go)
// and the durable journal (journal.go). Every method degrades to a
// no-op when the server runs without a DataDir, so the in-memory-only
// configuration pays nothing.

// journalSubmit journals a job submission. The fsynced entry is the
// admission barrier: the caller only acknowledges the job (202/200)
// after it returns nil, so an acknowledged job can never be forgotten
// by a crash.
func (s *Server) journalSubmit(j *jobState) error {
	if s.jr == nil {
		return nil
	}
	return s.jr.submit(j.id, j.spec)
}

// journalRunning journals the queued→running transition. Best-effort:
// losing it replays the job as queued, which re-runs it identically.
func (s *Server) journalRunning(j *jobState) {
	if s.jr == nil {
		return
	}
	_ = s.jr.state(j.id, StateRunning, "")
}

// journalTerminal journals a terminal transition, syncing the job's
// records file first (see journal.jobTerminal). Best-effort: a lost
// terminal entry replays the job, which recomputes the identical
// records and lands on the same terminal state.
func (s *Server) journalTerminal(j *jobState, st State, errmsg string) {
	if s.jr == nil {
		return
	}
	_ = s.jr.jobTerminal(j.id, st, errmsg)
}

// journalDelete journals a job deletion and removes its records file.
// Best-effort: a lost delete resurrects a terminal job on restart,
// which the client can simply delete again.
func (s *Server) journalDelete(id string) {
	if s.jr == nil {
		return
	}
	_ = s.jr.deleteJob(id)
}

// jobSink builds the mc record sink for one job: journal first, memory
// second, so a record visible to any API client is already on its way
// to stable storage. A journal append error (transient failures were
// already retried inside appendRecord) aborts the run and latches the
// job to failed.
func (s *Server) jobSink(j *jobState) func(mc.Record) error {
	return func(rec mc.Record) error {
		if s.jr != nil {
			if err := s.jr.appendRecord(j.id, rec); err != nil {
				return err
			}
		}
		return j.appendRecord(rec)
	}
}

// finishJob settles a job's terminal state from its run outcome and
// registers it with the retention LRU. Exactly one caller wins the
// transition; the rest are no-ops. Drain/shutdown cancellations of
// async jobs are NOT journaled as terminal — they stay non-terminal in
// the journal so a restart resumes them from their completed replicate
// prefix. API cancels and sync-path jobs (whose lifetime is the
// request's) are journaled terminal like any other outcome.
func (s *Server) finishJob(j *jobState, err error) {
	st, ok := j.finish(err)
	if !ok {
		return
	}
	resumable := st == StateCancelled && !j.userCancelled() && !j.syncPath
	if !resumable {
		s.journalTerminal(j, st, j.info().Error)
	}
	s.store.noteTerminal(j.id)
	s.publishJob(j)
}

// restore re-registers every replayed job before the server accepts its
// first request. Terminal jobs come back with their records and final
// state; non-terminal jobs are re-enqueued with their completed
// replicate prefix as RunOpts.Done, so only the lost suffix is
// re-executed and the record stream stays byte-identical to a
// crash-free run. A job the queue cannot re-admit latches to failed
// with an explicit error instead of vanishing.
func (s *Server) restore(rs *replayState) {
	// Seed the ID counter from the highest ID the journal has ever seen,
	// not just the replayed (non-deleted) jobs: reusing a deleted job's
	// ID would put its submit entry after the old delete entry, and the
	// next replay would silently drop the acknowledged job.
	s.store.setNext(rs.next)
	for _, rj := range rs.jobs {
		if rj.state.Terminal() {
			j := s.store.restore(rj.id, rj.spec, func() {})
			j.adopt(rj.records, rj.state, rj.errmsg)
			s.store.noteTerminal(j.id)
			continue
		}
		ctx, cancel := context.WithCancel(s.baseCtx)
		j := s.store.restore(rj.id, rj.spec, cancel)
		j.adopt(rj.records, "", "")
		done := make(map[int]mc.Record, len(rj.records))
		for _, rec := range rj.records {
			done[rec.Rep] = rec
		}
		// buildMCJob re-attaches tracing for traced jobs: the adopted prefix
		// keeps no traces (they are in-memory only), but the re-executed
		// suffix is traced like any fresh run.
		job, onProgress := s.buildMCJob(j)
		admitted := s.queue.TryEnqueue(ctx, job, mc.RunOpts{
			Done:       done,
			Sink:       s.jobSink(j),
			OnStart:    func() { j.setRunning(); s.journalRunning(j); s.publishJob(j) },
			OnProgress: onProgress,
		}, func(_ []mc.Record, err error) {
			s.finishJob(j, err)
			cancel()
		})
		if !admitted {
			s.finishJob(j, fmt.Errorf("service: could not re-admit replayed job %s: backlog full (%d executors, %d queued); restart with a larger -backlog", rj.id, s.opts.Executors, s.opts.Backlog))
			cancel()
		}
	}
}
