// Package service is the HTTP/JSON layer of pluralityd: it accepts
// simulation jobs (JobSpec), executes them on the process-wide mc.Shared
// worker pool, and serves per-replicate results as JSONL.
//
// Two execution paths share one store and one pool:
//
//   - synchronous: small jobs (Cost below Options.SyncCost, or an
//     explicit ?wait=1) run on the request goroutine, bounded by the
//     MaxSync semaphore, and the response carries the terminal JobInfo;
//   - asynchronous: everything else is admitted into an mc.Queue with
//     Options.Executors executors and an Options.Backlog-deep backlog.
//
// Both paths shed load instead of buffering it: a full backlog or a
// saturated sync semaphore is HTTP 429. Job records are a pure function
// of the spec (see JobSpec), so the service is byte-reproducible across
// restarts, worker counts and scheduling.
//
// API (all request/response bodies are JSON):
//
//	POST   /v1/jobs              submit (202 queued, 200 sync-done, 400, 429)
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         poll one job
//	GET    /v1/jobs/{id}/records JSONL records; ?follow=1 streams until terminal
//	POST   /v1/jobs/{id}/cancel  cancel a queued or running job
//	GET    /healthz              liveness + queue depth
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"plurality/internal/mc"
)

// Options tunes a Server. The zero value means "all defaults".
type Options struct {
	// Workers is the parallelism of the shared replicate pool
	// (<= 0: GOMAXPROCS).
	Workers int
	// Executors is the number of async jobs running concurrently
	// (<= 0: 2).
	Executors int
	// Backlog is the number of admitted-but-not-running async jobs
	// (< 0: 0; 0 means the default 16).
	Backlog int
	// MaxSync is the number of synchronous submissions running
	// concurrently (<= 0: 4).
	MaxSync int
	// SyncCost is the JobSpec.Cost threshold at or below which a
	// submission without an explicit ?wait runs synchronously
	// (<= 0: 50_000_000 agent updates).
	SyncCost int64
}

// withDefaults resolves the zero values.
func (o Options) withDefaults() Options {
	if o.Executors <= 0 {
		o.Executors = 2
	}
	if o.Backlog == 0 {
		o.Backlog = 16
	} else if o.Backlog < 0 {
		o.Backlog = 0
	}
	if o.MaxSync <= 0 {
		o.MaxSync = 4
	}
	if o.SyncCost <= 0 {
		o.SyncCost = 50_000_000
	}
	return o
}

// Server is the pluralityd HTTP handler plus the job machinery behind
// it. Create one with New, serve it (it implements http.Handler), and
// Close it after the HTTP server has stopped accepting requests.
type Server struct {
	opts    Options
	pool    *mc.Pool
	queue   *mc.Queue
	store   *store
	mux     *http.ServeMux
	baseCtx context.Context
	stop    context.CancelFunc
	syncSem chan struct{}
	once    sync.Once
}

// New builds a Server on the process-wide mc.Shared(opts.Workers) pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	pool := mc.Shared(opts.Workers)
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		pool:    pool,
		queue:   mc.NewQueue(pool, opts.Executors, opts.Backlog),
		store:   newStore(),
		baseCtx: ctx,
		stop:    stop,
		syncSem: make(chan struct{}, opts.MaxSync),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/records", s.handleRecords)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close cancels every job and stops the executors. It must be called
// after the HTTP listener has shut down; the shared worker pool itself
// stays alive for the rest of the process.
func (s *Server) Close() {
	s.once.Do(func() {
		s.stop()
		s.store.cancelAll()
		s.queue.Close()
	})
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the {"error": ...} body every failure path shares.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit decodes, validates and routes one submission.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	sync := spec.Cost() <= s.opts.SyncCost
	if v := r.URL.Query().Get("wait"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait=%q (want a boolean)", v)
			return
		}
		sync = b
	}
	if sync {
		s.submitSync(w, r, spec)
	} else {
		s.submitAsync(w, spec)
	}
}

// submitSync runs the job on the request goroutine under the MaxSync
// semaphore and returns its terminal snapshot.
func (s *Server) submitSync(w http.ResponseWriter, r *http.Request, spec JobSpec) {
	select {
	case s.syncSem <- struct{}{}:
		defer func() { <-s.syncSem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "all %d synchronous slots are busy; retry or submit with wait=0", s.opts.MaxSync)
		return
	}
	// The job dies with the client connection or with server shutdown,
	// whichever comes first.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopWatch := context.AfterFunc(s.baseCtx, cancel)
	defer stopWatch()

	j := s.store.create(spec, cancel)
	j.setRunning()
	_, err := s.pool.Run(ctx, spec.MCJob(), mc.RunOpts{Sink: j.appendRecord})
	j.finish(err)
	info := j.info()
	status := http.StatusOK
	if info.State == StateFailed {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, info)
}

// submitAsync admits the job into the queue, rolling the registration
// back with a 429 when the backlog is full.
func (s *Server) submitAsync(w http.ResponseWriter, spec JobSpec) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := s.store.create(spec, cancel)
	admitted := s.queue.TryEnqueue(ctx, spec.MCJob(), mc.RunOpts{
		Sink:    j.appendRecord,
		OnStart: func() { j.setRunning() },
	}, func(_ []mc.Record, err error) {
		j.finish(err)
		// Release the context registration on baseCtx; without this every
		// finished job would stay reachable until server shutdown.
		cancel()
	})
	if !admitted {
		cancel()
		s.store.remove(j.id)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job backlog is full (%d executors, %d queued); retry later", s.opts.Executors, s.opts.Backlog)
		return
	}
	writeJSON(w, http.StatusAccepted, j.info())
}

// handleList serves all jobs in submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.list()})
}

// jobOr404 resolves the {id} path segment.
func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*jobState, bool) {
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return j, ok
}

// handleGet serves one job snapshot.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleRecords streams the job's JSONL records.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	follow := false
	if v := r.URL.Query().Get("follow"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad follow=%q (want a boolean)", v)
			return
		}
		follow = b
	}
	w.Header().Set("Content-Type", "application/jsonl")
	var flush func()
	if f, ok := w.(http.Flusher); ok && follow {
		flush = f.Flush
	}
	_ = j.streamRecords(r.Context(), w, follow, flush)
}

// handleCancel requests cancellation. Cancelling a terminal job is a
// no-op; the response is always the current snapshot.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.info())
}

// handleHealthz reports liveness and queue depth.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.pool.Workers(),
		"backlog": s.queue.Backlog(),
	})
}
