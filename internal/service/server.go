// Package service is the HTTP/JSON layer of pluralityd: it accepts
// simulation jobs (JobSpec), executes them on the process-wide mc.Shared
// worker pool, and serves per-replicate results as JSONL.
//
// Two execution paths share one store and one pool:
//
//   - synchronous: small jobs (Cost below Options.SyncCost, or an
//     explicit ?wait=1) run on the request goroutine, bounded by the
//     MaxSync semaphore, and the response carries the terminal JobInfo;
//   - asynchronous: everything else is admitted into an mc.Queue with
//     Options.Executors executors and an Options.Backlog-deep backlog.
//
// Both paths shed load instead of buffering it: a full backlog or a
// saturated sync semaphore is HTTP 429. Job records are a pure function
// of the spec (see JobSpec), so the service is byte-reproducible across
// restarts, worker counts and scheduling.
//
// API (all request/response bodies are JSON):
//
//	POST   /v1/jobs              submit (202 queued, 200 sync-done, 400, 429, 503 draining)
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         poll one job
//	GET    /v1/jobs/{id}/records JSONL records; ?follow=1 streams until terminal
//	GET    /v1/jobs/{id}/trace   JSONL telemetry traces of a job submitted with "trace": true (trace.go)
//	POST   /v1/jobs/{id}/cancel  cancel a queued or running job
//	DELETE /v1/jobs/{id}         delete a terminal job and its records
//	GET    /healthz              liveness + queue depth + draining flag
//	GET    /metrics              Prometheus text exposition (metrics.go)
//	GET    /v1/events            SSE job lifecycle + progress stream (events.go)
//	GET    /                     embedded live dashboard (dashboard.go)
//
// With Options.DataDir set the server is crash-survivable: submissions,
// state transitions and per-replicate records are journaled to disk, a
// restarted server replays the journal and resumes every non-terminal
// job from its completed replicate prefix, and — because records are a
// pure function of the spec — the resumed record stream is
// byte-identical to a crash-free run. See journal.go and DESIGN.md §9.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"plurality/internal/mc"
)

// Options tunes a Server. The zero value means "all defaults".
type Options struct {
	// Workers is the parallelism of the shared replicate pool
	// (<= 0: GOMAXPROCS).
	Workers int
	// Executors is the number of async jobs running concurrently
	// (<= 0: 2).
	Executors int
	// Backlog is the number of admitted-but-not-running async jobs
	// (< 0: 0; 0 means the default 16).
	Backlog int
	// MaxSync is the number of synchronous submissions running
	// concurrently (<= 0: 4).
	MaxSync int
	// SyncCost is the JobSpec.Cost threshold at or below which a
	// submission without an explicit ?wait runs synchronously
	// (<= 0: 50_000_000 agent updates).
	SyncCost int64

	// DataDir, when non-empty, makes the server durable: jobs and
	// records are journaled there and replayed on the next start (see
	// journal.go for the layout and the durability contract). Empty
	// keeps the pre-existing in-memory-only behavior.
	DataDir string
	// Retain caps the terminal jobs kept in memory with full records;
	// beyond it the least-recently-touched are evicted to tombstones
	// (records stay servable from the journal). 0 means the default
	// 1024; negative means unlimited.
	Retain int
	// FS overrides the journal's filesystem (fault injection); nil
	// means the real filesystem.
	FS FS
	// SyncEvery is the number of record appends between fsyncs of a
	// job's records file (0: 16; 1 syncs every append). Terminal
	// transitions always sync regardless.
	SyncEvery int
	// JournalRetries is the attempt budget for transient journal write
	// failures before a job latches to failed (0: 3).
	JournalRetries int
	// JournalBackoff is the initial retry backoff, doubled per attempt
	// (0: 2ms).
	JournalBackoff time.Duration

	// EventBuffer is the per-client send buffer of the /v1/events SSE
	// stream, in events; a client that falls this far behind is dropped
	// instead of ever blocking the serving path (0: 64).
	EventBuffer int
}

// withDefaults resolves the zero values.
func (o Options) withDefaults() Options {
	if o.Executors <= 0 {
		o.Executors = 2
	}
	if o.Backlog == 0 {
		o.Backlog = 16
	} else if o.Backlog < 0 {
		o.Backlog = 0
	}
	if o.MaxSync <= 0 {
		o.MaxSync = 4
	}
	if o.SyncCost <= 0 {
		o.SyncCost = 50_000_000
	}
	if o.Retain == 0 {
		o.Retain = 1024
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 16
	}
	if o.JournalRetries <= 0 {
		o.JournalRetries = 3
	}
	if o.JournalBackoff <= 0 {
		o.JournalBackoff = 2 * time.Millisecond
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = 64
	}
	return o
}

// Server is the pluralityd HTTP handler plus the job machinery behind
// it. Create one with New, serve it (it implements http.Handler), and
// Close it after the HTTP server has stopped accepting requests.
type Server struct {
	opts     Options
	pool     *mc.Pool
	queue    *mc.Queue
	store    *store
	met      *serverMetrics
	hub      *hub
	jr       *journal // nil without DataDir
	mux      *http.ServeMux
	baseCtx  context.Context
	stop     context.CancelFunc
	syncSem  chan struct{}
	syncWG   sync.WaitGroup
	draining atomic.Bool
	once     sync.Once
}

// New builds a Server on the process-wide mc.Shared(opts.Workers) pool.
// With opts.DataDir set it replays the journal found there and
// re-enqueues every non-terminal job before returning; the error is
// non-nil only on real I/O failures (corrupt journals are recovered by
// truncation, never fatal).
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	pool := mc.Shared(opts.Workers)
	ctx, stop := context.WithCancel(context.Background())
	met := newServerMetrics()
	s := &Server{
		opts:    opts,
		pool:    pool,
		queue:   mc.NewQueue(pool, opts.Executors, opts.Backlog),
		store:   newStore(opts.Retain, met),
		met:     met,
		hub:     newHub(opts.EventBuffer, met),
		baseCtx: ctx,
		stop:    stop,
		syncSem: make(chan struct{}, opts.MaxSync),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/records", s.handleRecords)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	s.mux = mux
	if opts.DataDir != "" {
		jr, rs, err := openJournal(opts.FS, opts.DataDir,
			opts.SyncEvery, retryPolicy{attempts: opts.JournalRetries, backoff: opts.JournalBackoff})
		if err != nil {
			s.queue.Close()
			stop()
			return nil, err
		}
		jr.met = met
		s.jr = jr
		s.restore(rs)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// StartDrain flips the server into draining mode: new submissions are
// refused with 503 + Retry-After while the existing endpoints keep
// serving. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether the server is refusing new submissions.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully winds the server down: it stops admitting (503),
// cancels every job so in-flight replicates finish and are journaled,
// waits — bounded by ctx — for the executors and synchronous handlers
// to drain, and then journals the clean-shutdown marker. Cancelled jobs
// are *not* journaled as terminal: a restart replays them from their
// completed replicate prefix. On a ctx deadline the marker is withheld,
// so the next start replays exactly as it would after a crash.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	s.store.cancelAll()
	done := make(chan struct{})
	go func() {
		s.queue.Close()
		s.syncWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
	// Every in-flight job has finished and published its terminal event;
	// end the SSE streams with the shutdown marker before the journal
	// closes.
	s.hub.shutdown()
	if s.jr != nil {
		s.jr.close(true)
	}
	return nil
}

// Close cancels every job and stops the executors. It must be called
// after the HTTP listener has shut down; the shared worker pool itself
// stays alive for the rest of the process. Without a prior successful
// Drain the journal is closed *without* the clean-shutdown marker, so
// interrupted jobs replay on the next start.
func (s *Server) Close() {
	s.once.Do(func() {
		s.draining.Store(true)
		s.hub.shutdown()
		s.stop()
		s.store.cancelAll()
		s.queue.Close()
		if s.jr != nil {
			s.jr.close(false)
		}
	})
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the {"error": ...} body every failure path shares.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit decodes, validates and routes one submission.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.met.rejectedJob("draining")
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "server is draining; resubmit after the restart")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	sync := spec.Cost() <= s.opts.SyncCost
	if v := r.URL.Query().Get("wait"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait=%q (want a boolean)", v)
			return
		}
		sync = b
	}
	if sync {
		s.submitSync(w, r, spec)
	} else {
		s.submitAsync(w, spec)
	}
}

// submitSync runs the job on the request goroutine under the MaxSync
// semaphore and returns its terminal snapshot.
func (s *Server) submitSync(w http.ResponseWriter, r *http.Request, spec JobSpec) {
	select {
	case s.syncSem <- struct{}{}:
		defer func() { <-s.syncSem }()
	default:
		s.met.rejectedJob("sync_slots_busy")
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "all %d synchronous slots are busy; retry or submit with wait=0", s.opts.MaxSync)
		return
	}
	s.syncWG.Add(1)
	defer s.syncWG.Done()
	// Re-check draining after the Add: a submission that passed the
	// handleSubmit check just before StartDrain could otherwise Add after
	// Drain's syncWG.Wait returned and run against a closed journal. If
	// the flag is clear here, the Add is ordered before Drain's Wait and
	// the drain covers this job.
	if s.draining.Load() {
		s.met.rejectedJob("draining")
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "server is draining; resubmit after the restart")
		return
	}
	// The job dies with the client connection or with server shutdown,
	// whichever comes first.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopWatch := context.AfterFunc(s.baseCtx, cancel)
	defer stopWatch()

	j := s.store.create(spec, cancel)
	j.syncPath = true
	if err := s.journalSubmit(j); err != nil {
		s.store.remove(j.id)
		writeError(w, http.StatusInternalServerError, "could not journal the submission: %v", err)
		return
	}
	s.met.submittedJob("sync")
	s.publishJob(j)
	j.setRunning()
	s.journalRunning(j)
	s.publishJob(j)
	job, onProgress := s.buildMCJob(j)
	_, err := s.pool.Run(ctx, job, mc.RunOpts{Sink: s.jobSink(j), OnProgress: onProgress})
	s.finishJob(j, err)
	info := j.info()
	status := http.StatusOK
	if info.State == StateFailed {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, info)
}

// submitAsync admits the job into the queue, rolling the registration
// back with a 429 when the backlog is full. The submission is journaled
// before admission, so an acknowledged job can never be forgotten; a
// rejected one is journaled as deleted.
func (s *Server) submitAsync(w http.ResponseWriter, spec JobSpec) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := s.store.create(spec, cancel)
	if err := s.journalSubmit(j); err != nil {
		cancel()
		s.store.remove(j.id)
		writeError(w, http.StatusInternalServerError, "could not journal the submission: %v", err)
		return
	}
	job, onProgress := s.buildMCJob(j)
	admitted := s.queue.TryEnqueue(ctx, job, mc.RunOpts{
		Sink:       s.jobSink(j),
		OnStart:    func() { j.setRunning(); s.journalRunning(j); s.publishJob(j) },
		OnProgress: onProgress,
	}, func(_ []mc.Record, err error) {
		s.finishJob(j, err)
		// Release the context registration on baseCtx; without this every
		// finished job would stay reachable until server shutdown.
		cancel()
	})
	if !admitted {
		cancel()
		s.store.remove(j.id)
		s.journalDelete(j.id)
		s.met.rejectedJob("backlog_full")
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job backlog is full (%d executors, %d queued); retry later", s.opts.Executors, s.opts.Backlog)
		return
	}
	s.met.submittedJob("async")
	s.publishJob(j)
	writeJSON(w, http.StatusAccepted, j.info())
}

// handleList serves all jobs in submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.list()})
}

// jobOr404 resolves the {id} path segment.
func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*jobState, bool) {
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return j, ok
}

// handleGet serves one job snapshot.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	s.store.touch(j.id)
	writeJSON(w, http.StatusOK, j.info())
}

// handleRecords streams the job's JSONL records. Evicted jobs are
// served straight from the journal; without one the records are gone
// for good (410).
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	s.store.touch(j.id)
	follow := false
	if v := r.URL.Query().Get("follow"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad follow=%q (want a boolean)", v)
			return
		}
		follow = b
	}
	if j.isEvicted() {
		if s.jr == nil {
			writeError(w, http.StatusGone, "records of %s were evicted from memory; run with -data-dir to keep them durable", j.id)
			return
		}
		raw, err := s.jr.readRecords(j.id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "reading journaled records of %s: %v", j.id, err)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		_, _ = w.Write(raw)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	var flush func()
	if f, ok := w.(http.Flusher); ok && follow {
		flush = f.Flush
	}
	_ = j.streamRecords(r.Context(), w, follow, flush)
}

// handleCancel requests cancellation. Cancelling a terminal job is a
// no-op; the response is always the current snapshot.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if j.requestCancel(true) {
		// A still-queued job turned terminal right here; running jobs
		// journal their terminal state from the executor's finish path.
		s.journalTerminal(j, StateCancelled, context.Canceled.Error())
		s.store.noteTerminal(j.id)
		s.publishJob(j)
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleDelete removes a terminal job and its journaled records.
// Non-terminal jobs are a 409: cancel first, then delete.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, deleted := s.store.deleteTerminal(id)
	if !found {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if !deleted {
		writeError(w, http.StatusConflict, "job %s is not terminal; cancel it before deleting", id)
		return
	}
	s.journalDelete(id)
	s.met.jobDeleted()
	s.hub.publish(Event{Type: "deleted", ID: id, Backlog: s.queue.Backlog()})
	w.WriteHeader(http.StatusNoContent)
}

// handleHealthz reports liveness, queue depth and drain status.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"workers":  s.pool.Workers(),
		"backlog":  s.queue.Backlog(),
		"draining": s.draining.Load(),
	})
}
