// Package promtext is a minimal reader/writer toolkit for the
// Prometheus text exposition format (version 0.0.4): the escaping rules
// shared with the internal/service /metrics encoder, and a strict
// parser used by the observability test harness and the CI metrics
// smoke to certify every scrape.
//
// The parser is deliberately stricter than a Prometheus server:
//
//   - every sample must belong to a family declared by a preceding
//     # TYPE line (untyped stragglers are an error);
//   - a family may be declared only once (duplicate families silently
//     shadow each other in real scrapes — here they fail);
//   - within a family, two samples with the same name and label set
//     are an error;
//   - histogram families accept only the _bucket/_sum/_count suffixes,
//     and everything else accepts only the bare family name.
//
// That strictness is the point: the tests assert a scrape parses, so
// any drift in the hand-rolled encoder names itself.
package promtext

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// EscapeLabel escapes a label value for the text format: backslash,
// double-quote and newline. It is byte-transparent — arbitrary (even
// non-UTF-8) values survive the round-trip through UnescapeLabel.
func EscapeLabel(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// UnescapeLabel inverts EscapeLabel. Unknown escape sequences keep the
// escaped character (matching Prometheus' lenient reader), so the
// function is total; EscapeLabel output always round-trips exactly.
func UnescapeLabel(s string) string {
	var b strings.Builder
	esc := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if esc {
			switch c {
			case 'n':
				b.WriteByte('\n')
			default: // covers \\ and \" and anything unknown
				b.WriteByte(c)
			}
			esc = false
			continue
		}
		if c == '\\' {
			esc = true
			continue
		}
		b.WriteByte(c)
	}
	if esc {
		b.WriteByte('\\')
	}
	return b.String()
}

// EscapeHelp escapes a HELP line: backslash and newline (quotes are
// legal in help text).
func EscapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// Sample is one parsed metric line.
type Sample struct {
	// Name is the full sample name (family name plus any histogram
	// suffix).
	Name string
	// Labels maps label name to its unescaped value; no labels parses to
	// an empty, non-nil map.
	Labels map[string]string
	// Value is the sample value; Prometheus special values (+Inf, -Inf,
	// NaN) parse like strconv.ParseFloat.
	Value float64
}

// Family is one metric family: its TYPE, HELP and samples in scrape
// order.
type Family struct {
	Name    string
	Type    string // "counter", "gauge", "histogram", "summary" or "untyped"
	Help    string
	Samples []Sample
}

// Value returns the value of the sample whose label set equals labels
// exactly (nil matches the empty label set) under the given full sample
// name. The second result reports whether such a sample exists.
func (f *Family) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		if len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Get is Value for the bare family name.
func (f *Family) Get(labels map[string]string) (float64, bool) {
	return f.Value(f.Name, labels)
}

// labelKey canonicalizes a label set for duplicate detection.
func labelKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteString("\x00")
		b.WriteString(k)
		b.WriteString("\x01")
		b.WriteString(labels[k])
	}
	return b.String()
}

// validName matches the Prometheus metric/label name charset.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		digit := r >= '0' && r <= '9'
		colon := r == ':' && !label
		if !(alpha || colon || (digit && i > 0)) {
			return false
		}
	}
	return true
}

// familyOf maps a sample name to the family it must belong to given the
// declared families (histogram suffixes collapse onto their family).
func familyOf(name string, fams map[string]*Family) (*Family, bool) {
	if f, ok := fams[name]; ok {
		if f.Type == "histogram" || f.Type == "summary" {
			// The bare name is only legal for non-histogram types.
			return nil, false
		}
		return f, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if f, ok := fams[base]; ok {
			if f.Type != "histogram" && f.Type != "summary" {
				return nil, false
			}
			if suf == "_bucket" && f.Type == "summary" {
				return nil, false
			}
			return f, true
		}
	}
	return nil, false
}

// Parse parses one scrape. It returns the families keyed by name, or an
// error naming the first offending line.
func Parse(data []byte) (map[string]*Family, error) {
	fams := map[string]*Family{}
	seen := map[string]bool{} // duplicate (name, labels) detection
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f, ok := familyOf(s.Name, fams)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration (or an incompatible one)", lineNo, s.Name)
		}
		if key := labelKey(s.Name, s.Labels); seen[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %q with identical labels", lineNo, s.Name)
		} else {
			seen[key] = true
		}
		f.Samples = append(f.Samples, s)
	}
	return fams, nil
}

// parseComment handles # HELP / # TYPE lines (anything else after # is
// a free comment and is ignored).
func parseComment(line string, fams map[string]*Family) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // plain comment
	}
	switch fields[1] {
	case "TYPE":
		name, typ := fields[2], ""
		if len(fields) == 4 {
			typ = fields[3]
		}
		if !validName(name, false) {
			return fmt.Errorf("bad metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("bad type %q for family %q", typ, name)
		}
		if f, dup := fams[name]; dup {
			if f.Type != "" {
				return fmt.Errorf("duplicate family %q", name)
			}
			f.Type = typ // fill in a HELP-before-TYPE placeholder
		} else {
			fams[name] = &Family{Name: name, Type: typ}
		}
	case "HELP":
		name := fields[2]
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		if !validName(name, false) {
			return fmt.Errorf("bad metric name %q in HELP line", name)
		}
		if f, ok := fams[name]; ok {
			f.Help = UnescapeLabel(help) // HELP unescaping is \\ and \n, a subset of label unescaping
		} else {
			// HELP before TYPE is legal; remember the help on a placeholder
			// that the TYPE line must still declare.
			fams[name] = &Family{Name: name, Type: "", Help: UnescapeLabel(help)}
		}
	}
	return nil
}

// parseSample parses one `name{labels} value [timestamp]` line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 && brace < strings.IndexByte(rest+" ", ' ') {
		nameEnd = brace
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		nameEnd = sp
	}
	s.Name = rest[:nameEnd]
	if !validName(s.Name, false) {
		return s, fmt.Errorf("bad sample name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		var err error
		rest, err = parseLabels(rest[1:], s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", s.Name, err)
		}
	}
	rest = strings.TrimLeft(rest, " ")
	// An optional timestamp may follow the value.
	val := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		val = rest[:sp]
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", s.Name, val)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `name="value",...}` and returns what follows the
// closing brace.
func parseLabels(rest string, into map[string]string) (string, error) {
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validName(name, true) {
			return "", fmt.Errorf("bad label name %q", name)
		}
		rest = strings.TrimLeft(rest[eq+1:], " ")
		if !strings.HasPrefix(rest, `"`) {
			return "", fmt.Errorf("label %q value is not quoted", name)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return "", fmt.Errorf("label %q value never closes", name)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return "", fmt.Errorf("label %q value ends mid-escape", name)
				}
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := into[name]; dup {
			return "", fmt.Errorf("duplicate label %q", name)
		}
		into[name] = val.String()
		rest = rest[i:]
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		return "", fmt.Errorf("unexpected %q after label %q", rest, name)
	}
}

// Validate runs the family-level invariants the test harness asserts on
// every scrape beyond what Parse already enforces: every family has a
// TYPE (placeholders left by HELP-only declarations fail), counters
// never go negative, and histogram bucket counts are cumulative with a
// +Inf bucket equal to _count.
func Validate(fams map[string]*Family) error {
	for name, f := range fams {
		if f.Type == "" {
			return fmt.Errorf("family %q has HELP but no TYPE", name)
		}
		switch f.Type {
		case "counter":
			for _, s := range f.Samples {
				if s.Value < 0 {
					return fmt.Errorf("counter %q is negative: %v", name, s.Value)
				}
			}
		case "histogram":
			if err := validateHistogram(f); err != nil {
				return fmt.Errorf("histogram %q: %w", name, err)
			}
		}
	}
	return nil
}

// validateHistogram checks cumulative buckets and the +Inf/_count
// agreement for every label partition of the family.
func validateHistogram(f *Family) error {
	type part struct {
		last    float64
		lastLe  string
		inf     float64
		infSeen bool
		count   float64
		cntSeen bool
	}
	parts := map[string]*part{}
	get := func(labels map[string]string) *part {
		scoped := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				scoped[k] = v
			}
		}
		key := labelKey("", scoped)
		p, ok := parts[key]
		if !ok {
			p = &part{}
			parts[key] = p
		}
		return p
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			p := get(s.Labels)
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket without le label")
			}
			if s.Value < p.last {
				return fmt.Errorf("buckets not cumulative at le=%q (%v after %v at le=%q)", le, s.Value, p.last, p.lastLe)
			}
			p.last, p.lastLe = s.Value, le
			if le == "+Inf" {
				p.inf, p.infSeen = s.Value, true
			}
		case f.Name + "_count":
			p := get(s.Labels)
			p.count, p.cntSeen = s.Value, true
		}
	}
	for _, p := range parts {
		if !p.infSeen {
			return fmt.Errorf("no +Inf bucket")
		}
		if !p.cntSeen {
			return fmt.Errorf("no _count sample")
		}
		if p.inf != p.count {
			return fmt.Errorf("+Inf bucket %v != _count %v", p.inf, p.count)
		}
	}
	return nil
}
