package promtext

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// scrape is a well-formed exposition used by several tests.
const scrape = `# HELP demo_jobs Jobs by state.
# TYPE demo_jobs gauge
demo_jobs{state="queued"} 2
demo_jobs{state="running"} 1
# TYPE demo_total counter
demo_total 42
# HELP demo_rounds Rounds per replicate.
# TYPE demo_rounds histogram
demo_rounds_bucket{le="1"} 3
demo_rounds_bucket{le="4"} 7
demo_rounds_bucket{le="+Inf"} 9
demo_rounds_sum 31
demo_rounds_count 9
`

func TestParseScrape(t *testing.T) {
	fams, err := Parse([]byte(scrape))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Validate(fams); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	jobs := fams["demo_jobs"]
	if jobs == nil || jobs.Type != "gauge" || jobs.Help != "Jobs by state." {
		t.Fatalf("demo_jobs parsed wrong: %+v", jobs)
	}
	if v, ok := jobs.Get(map[string]string{"state": "queued"}); !ok || v != 2 {
		t.Fatalf("demo_jobs{state=queued} = %v, %v; want 2, true", v, ok)
	}
	if _, ok := jobs.Get(map[string]string{"state": "done"}); ok {
		t.Fatal("demo_jobs{state=done} should not exist")
	}
	if v, ok := fams["demo_total"].Get(nil); !ok || v != 42 {
		t.Fatalf("demo_total = %v, %v; want 42, true", v, ok)
	}
	hist := fams["demo_rounds"]
	if v, ok := hist.Value("demo_rounds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 9 {
		t.Fatalf("demo_rounds_bucket{le=+Inf} = %v, %v; want 9, true", v, ok)
	}
	if v, ok := hist.Value("demo_rounds_sum", nil); !ok || v != 31 {
		t.Fatalf("demo_rounds_sum = %v, %v; want 31, true", v, ok)
	}
}

func TestParseSpecialValues(t *testing.T) {
	fams, err := Parse([]byte("# TYPE x untyped\nx{a=\"1\"} +Inf\nx{a=\"2\"} -Inf\nx{a=\"3\"} NaN\nx{a=\"4\"} 1e9 1700000000000\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	x := fams["x"]
	if v, _ := x.Get(map[string]string{"a": "1"}); !math.IsInf(v, 1) {
		t.Fatalf("x{a=1} = %v, want +Inf", v)
	}
	if v, _ := x.Get(map[string]string{"a": "2"}); !math.IsInf(v, -1) {
		t.Fatalf("x{a=2} = %v, want -Inf", v)
	}
	if v, _ := x.Get(map[string]string{"a": "3"}); !math.IsNaN(v) {
		t.Fatalf("x{a=3} = %v, want NaN", v)
	}
	if v, _ := x.Get(map[string]string{"a": "4"}); v != 1e9 {
		t.Fatalf("x{a=4} = %v, want 1e9 (timestamp must be ignored)", v)
	}
}

func TestParseEscapedLabels(t *testing.T) {
	raw := "# TYPE esc counter\nesc{v=\"a\\\\b\\\"c\\nd\"} 1\n"
	fams, err := Parse([]byte(raw))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := "a\\b\"c\nd"
	if v, ok := fams["esc"].Get(map[string]string{"v": want}); !ok || v != 1 {
		t.Fatalf("esc{v=%q} = %v, %v; want 1, true", want, v, ok)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"no type", "loose 1\n", "no preceding # TYPE"},
		{"duplicate family", "# TYPE a counter\n# TYPE a counter\n", "duplicate family"},
		{"duplicate sample", "# TYPE a counter\na 1\na 2\n", "duplicate sample"},
		{"duplicate labelled sample", "# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n", "duplicate sample"},
		{"bad type", "# TYPE a flavor\n", "bad type"},
		{"bad metric name", "# TYPE 9a counter\n", "bad metric name"},
		{"bad sample name", "# TYPE a counter\n9a 1\n", "bad sample name"},
		{"no value", "# TYPE a counter\na\n", "no value"},
		{"bad value", "# TYPE a counter\na one\n", "bad value"},
		{"bare histogram name", "# TYPE h histogram\nh 1\n", "no preceding # TYPE"},
		{"bucket on counter", "# TYPE a counter\na_bucket{le=\"1\"} 1\n", "no preceding # TYPE"},
		{"summary bucket", "# TYPE s summary\ns_bucket{le=\"1\"} 1\n", "no preceding # TYPE"},
		{"unclosed label value", "# TYPE a counter\na{x=\"1} 1\n", "never closes"},
		{"unquoted label value", "# TYPE a counter\na{x=1} 1\n", "not quoted"},
		{"label without equals", "# TYPE a counter\na{x} 1\n", "label without '='"},
		{"bad label name", "# TYPE a counter\na{le:x=\"1\"} 1\n", "bad label name"},
		{"duplicate label", "# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n", "duplicate label"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.in, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Parse(%q) = %v, want error containing %q", tc.in, err, tc.wantSub)
			}
		})
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"help without type", "# HELP a ghost family\n", "HELP but no TYPE"},
		{"negative counter", "# TYPE a counter\na -1\n", "negative"},
		{"non-cumulative buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "not cumulative"},
		{"missing inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n", "no +Inf bucket"},
		{"missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\n", "no _count"},
		{"inf count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n", "!= _count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fams, err := Parse([]byte(tc.in))
			if err != nil {
				t.Fatalf("Parse(%q): %v (should only fail Validate)", tc.in, err)
			}
			err = Validate(fams)
			if err == nil {
				t.Fatalf("Validate(%q) succeeded, want error containing %q", tc.in, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate(%q) = %v, want error containing %q", tc.in, err, tc.wantSub)
			}
		})
	}
}

// TestValidateHistogramPartitions checks that cumulativity is enforced
// per label partition, not across the whole family.
func TestValidateHistogramPartitions(t *testing.T) {
	in := "# TYPE h histogram\n" +
		"h_bucket{job=\"a\",le=\"1\"} 10\nh_bucket{job=\"a\",le=\"+Inf\"} 10\nh_sum{job=\"a\"} 1\nh_count{job=\"a\"} 10\n" +
		"h_bucket{job=\"b\",le=\"1\"} 2\nh_bucket{job=\"b\",le=\"+Inf\"} 2\nh_sum{job=\"b\"} 1\nh_count{job=\"b\"} 2\n"
	fams, err := Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// job=b's le=1 bucket (2) is below job=a's +Inf (10); only a
	// partition-blind checker would call that non-cumulative.
	if err := Validate(fams); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{``, ``},
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{`"quoted"`, `\"quoted\"`},
		{"new\nline", `new\nline`},
		{"mix\\\"\n", `mix\\\"\n`},
	}
	for _, tc := range cases {
		if got := EscapeLabel(tc.in); got != tc.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
		if back := UnescapeLabel(EscapeLabel(tc.in)); back != tc.in {
			t.Errorf("round-trip of %q came back as %q", tc.in, back)
		}
	}
}

func TestUnescapeLabelLenient(t *testing.T) {
	// Unknown escapes keep the escaped character; a trailing lone
	// backslash survives. Matches Prometheus' lenient reader.
	cases := []struct{ in, want string }{
		{`\t`, `t`},
		{`\q`, `q`},
		{`trailing\`, `trailing\`},
	}
	for _, tc := range cases {
		if got := UnescapeLabel(tc.in); got != tc.want {
			t.Errorf("UnescapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// FuzzPromEscape asserts the escaping contract the encoder relies on:
// every string round-trips EscapeLabel → UnescapeLabel unchanged, the
// escaped form never contains a raw newline or unescaped quote (it must
// embed in a one-line sample), and a synthesized sample carrying the
// escaped value parses back to the original string.
func FuzzPromEscape(f *testing.F) {
	for _, seed := range []string{"", "plain", `back\slash`, `"q"`, "nl\n", `\`, "a\\\"\nz", "héllo", "\x00\xff"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := EscapeLabel(s)
		if got := UnescapeLabel(esc); got != s {
			t.Fatalf("round-trip: %q -> %q -> %q", s, esc, got)
		}
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("EscapeLabel(%q) = %q still contains a raw newline", s, esc)
		}
		for i := 0; i < len(esc); i++ {
			if esc[i] != '"' {
				continue
			}
			bs := 0
			for j := i - 1; j >= 0 && esc[j] == '\\'; j-- {
				bs++
			}
			if bs%2 == 0 {
				t.Fatalf("EscapeLabel(%q) = %q has an unescaped quote at %d", s, esc, i)
			}
		}
		line := fmt.Sprintf("# TYPE f counter\nf{v=\"%s\"} 1\n", esc)
		fams, err := Parse([]byte(line))
		if err != nil {
			t.Fatalf("Parse of escaped %q: %v", s, err)
		}
		if v, ok := fams["f"].Get(map[string]string{"v": s}); !ok || v != 1 {
			t.Fatalf("escaped %q did not parse back: got %v, %v", s, v, ok)
		}
	})
}
