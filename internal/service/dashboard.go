package service

import (
	_ "embed"
	"net/http"
)

// The embedded live dashboard: one self-contained HTML file (no build
// step, no external assets) rendering the job table, queue depth and
// per-engine throughput entirely off the GET /v1/events SSE stream.
//
//go:embed dashboard.html
var dashboardHTML []byte

// handleDashboard serves GET /{$} — exactly the root path, so unknown
// paths still 404 and the API namespace stays clean.
func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(dashboardHTML)
}
