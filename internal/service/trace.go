package service

import (
	"bytes"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"plurality/internal/colorcfg"
	"plurality/internal/mc"
	"plurality/internal/obs"
)

// Traced jobs: a JobSpec submitted with "trace": true runs its first
// traceRepCap replicates with an obs.Recorder attached. The captured
// JSONL traces accumulate in the jobState (in memory only — never
// journaled) and are served by GET /v1/jobs/{id}/trace; replicate 0
// additionally publishes sampled "round" events on the SSE hub, and
// every traced round feeds the pluralityd_round_duration_seconds
// histogram. None of this can perturb the records: observers consume
// zero rng (the internal/obs contract), and the trace bytes ride a side
// channel that never touches the record sink or the journal.

const (
	// traceRepCap bounds the traced replicates per job: the first
	// traceRepCap replicate indexes (a deterministic prefix — which
	// replicates are traced never depends on scheduling).
	traceRepCap = 16
	// traceRingCap bounds the retained rounds per traced replicate;
	// longer runs keep the most recent rounds plus the summary line.
	traceRingCap = 2048
	// traceMemEvery is the ReadMemStats sampling stride for traced
	// replicates.
	traceMemEvery = 64
	// traceRoundEventGap is the minimum spacing between SSE "round"
	// events of one job, so a fast run cannot flood the hub.
	traceRoundEventGap = 200 * time.Millisecond
)

// jobTracer owns one traced job's telemetry: it hands observers to the
// traced replicates as they start and folds each finished replicate's
// trace into the job state on the coordinating goroutine.
type jobTracer struct {
	srv *Server
	job *jobState
	// reps maps the traced replicates' private seeds to their indexes.
	// Built once before the job runs and read-only after, so the worker
	// goroutines calling observerFor need no lock for it.
	reps map[uint64]int
	// lastRound is the unix-nano timestamp of the last published SSE
	// round event (throttling state, touched from a worker goroutine).
	lastRound atomic.Int64

	mu   sync.Mutex
	recs map[uint64]*repObserver
}

func newJobTracer(s *Server, j *jobState) *jobTracer {
	cap := traceRepCap
	if cap > j.spec.Replicates {
		cap = j.spec.Replicates
	}
	seeds := mc.RepSeeds(j.spec.Seed, j.spec.Replicates)[:cap]
	reps := make(map[uint64]int, len(seeds))
	for i, seed := range seeds {
		reps[seed] = i
	}
	return &jobTracer{srv: s, job: j, reps: reps, recs: make(map[uint64]*repObserver, len(seeds))}
}

// repObserver instruments one traced replicate: the bounded recorder
// plus a private round-duration histogram (merged into the server
// registry once, when the replicate finishes — the hot path takes no
// locks beyond the recorder's own field writes).
type repObserver struct {
	rep  int
	jt   *jobTracer
	rec  obs.Recorder
	durs *histogram
}

// ObserveRound implements obs.Observer. It runs on the replicate's
// worker goroutine, once per completed engine round.
func (o *repObserver) ObserveRound(round int, n int64, wallNs int64, cfg colorcfg.Config) {
	o.rec.ObserveRound(round, n, wallNs, cfg)
	o.durs.observe(float64(wallNs) / 1e9)
	if o.rep == 0 {
		o.jt.maybePublishRound(o)
	}
}

// observerFor is the MCJobTraced hook: traced replicates get a fresh
// repObserver, the rest run bare. Called from worker goroutines.
func (jt *jobTracer) observerFor(seed uint64) obs.Observer {
	rep, ok := jt.reps[seed]
	if !ok {
		return nil
	}
	o := &repObserver{rep: rep, jt: jt, durs: newHistogram(roundDurBuckets)}
	o.rec.Cap = traceRingCap
	o.rec.MemEvery = traceMemEvery
	jt.mu.Lock()
	jt.recs[seed] = o
	jt.mu.Unlock()
	return o
}

// maybePublishRound emits a throttled SSE "round" event for replicate 0:
// the first round always, then at most one per traceRoundEventGap. The
// CAS keeps a racing scrape of the throttle cheap and lock-free; reading
// the recorder here is safe because it is replicate 0's own goroutine.
func (jt *jobTracer) maybePublishRound(o *repObserver) {
	now := time.Now().UnixNano()
	last := jt.lastRound.Load()
	if last != 0 && now-last < int64(traceRoundEventGap) {
		return
	}
	if !jt.lastRound.CompareAndSwap(last, now) {
		return
	}
	st := o.rec.At(o.rec.Len() - 1)
	jt.srv.hub.publish(Event{
		Type:    "round",
		ID:      jt.job.id,
		Round:   st.Round,
		Bias:    st.Bias,
		CMax:    st.CMax,
		Engine:  jt.job.engLabel,
		Rule:    jt.job.ruleLabel,
		Backlog: jt.srv.queue.Backlog(),
	})
}

// finishRep folds a finished replicate's telemetry into the job: the
// JSONL trace is appended to the in-memory buffer and the replicate's
// round durations merge into the registry histogram. Runs on the mc
// coordinating goroutine (via OnProgress), which the worker's
// completion handoff already synchronizes with, so the recorder is
// quiescent here. Untraced and resumed replicates are no-ops.
func (jt *jobTracer) finishRep(rec mc.Record) {
	jt.mu.Lock()
	o := jt.recs[rec.Seed]
	delete(jt.recs, rec.Seed)
	jt.mu.Unlock()
	if o == nil {
		return
	}
	var buf bytes.Buffer
	// bytes.Buffer writes cannot fail.
	_ = o.rec.WriteTrace(&buf, obs.Header{
		Engine: jt.job.engLabel,
		Rule:   jt.job.ruleLabel,
		N:      jt.job.spec.N,
		K:      jt.job.spec.K,
		Seed:   rec.Seed,
		Job:    rec.Job,
		Rep:    rec.Rep,
	})
	jt.job.appendTrace(buf.Bytes())
	jt.srv.met.mergeRoundDur(o.durs)
}

// buildMCJob compiles a job's spec and progress hook, attaching the
// tracing machinery when the spec asks for it. Both submission paths
// and nothing else go through here, so traced and untraced jobs share
// one wiring point.
func (s *Server) buildMCJob(j *jobState) (mc.Job, func(mc.Record, int, int)) {
	prog := s.jobProgress(j)
	if !j.spec.Trace {
		return j.spec.MCJob(), prog
	}
	jt := newJobTracer(s, j)
	job := j.spec.MCJobTraced(jt.observerFor)
	return job, func(rec mc.Record, done, total int) {
		jt.finishRep(rec)
		prog(rec, done, total)
	}
}

// handleTrace serves GET /v1/jobs/{id}/trace: the JSONL traces captured
// so far (one run per finished traced replicate, in completion order).
// Jobs not submitted with "trace": true are a 404; a traced job whose
// traces were evicted with its records — or that resumed after a
// restart, since traces are in-memory only — serves whatever it has,
// which may be empty.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if !j.spec.Trace {
		writeError(w, http.StatusNotFound, "job %s was not submitted with \"trace\": true", j.id)
		return
	}
	s.store.touch(j.id)
	w.Header().Set("Content-Type", "application/jsonl")
	_, _ = w.Write(j.traceSnapshot())
}
