package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"plurality/internal/mc"
)

// newTestServer wires a Server into an httptest listener with cleanup in
// the right order (listener first, then job machinery).
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		s.store.cancelAll() // unblock in-flight handlers before closing the listener
		ts.Close()
		s.Close()
	})
	return s, ts
}

// smallSpec is an O(k)-per-round job that finishes in milliseconds.
func smallSpec() JobSpec {
	return JobSpec{N: 100_000, K: 8, Seed: 3, Replicates: 5, MaxRounds: 2000}
}

// slowSpec is a job whose replicates are individually fast (so
// cancellation drains quickly) but numerous enough that the job never
// finishes within a test: the agent-sampling engine on a balanced
// two-color population burns its whole round budget every replicate.
func slowSpec() JobSpec {
	return JobSpec{Rule: "3majority", Engine: "sampled", N: 50_000, K: 2,
		Bias: "0", Seed: 11, Replicates: MaxReplicates, MaxRounds: 20}
}

// postJob submits a spec and decodes the response body.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec, query string) (int, JobInfo, string) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var info JobInfo
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &info); err != nil {
			t.Fatalf("bad %d response body %q: %v", resp.StatusCode, raw, err)
		}
	}
	return resp.StatusCode, info, string(raw)
}

// getJob polls a job snapshot once.
func getJob(t *testing.T, ts *httptest.Server, id string) JobInfo {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// waitFor polls until pred holds or the deadline expires.
func waitFor(t *testing.T, ts *httptest.Server, id string, what string, pred func(JobInfo) bool) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		info := getJob(t, ts, id)
		if pred(info) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (state %s, %d records)", id, what, info.State, info.Records)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetchRecords downloads a job's JSONL and parses it.
func fetchRecords(t *testing.T, ts *httptest.Server, id, query string) ([]byte, []mc.Record) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/records" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET records %s: status %d", id, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := mc.ReadRecords(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return raw, recs
}

func cancelJob(t *testing.T, ts *httptest.Server, id string) JobInfo {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs/"+id+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel %s: status %d", id, resp.StatusCode)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func TestSyncSubmitReturnsTerminalJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	status, info, raw := postJob(t, ts, smallSpec(), "?wait=1")
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	if info.State != StateDone {
		t.Fatalf("state %s, want done", info.State)
	}
	if info.Records != smallSpec().Replicates {
		t.Fatalf("records %d, want %d", info.Records, smallSpec().Replicates)
	}
	if info.Aggregate == nil {
		t.Fatal("terminal job has no aggregate")
	}
	if agg := info.Aggregate; agg.Replicates != info.Records ||
		agg.SuccessRate < 0 || agg.SuccessRate > 1 ||
		agg.WilsonLo > agg.SuccessRate || agg.WilsonHi < agg.SuccessRate ||
		agg.Rounds.Mean <= 0 {
		t.Fatalf("implausible aggregate %+v", agg)
	}
	// The records endpoint agrees with the snapshot.
	_, recs := fetchRecords(t, ts, info.ID, "")
	if len(recs) != info.Records {
		t.Fatalf("JSONL has %d records, snapshot says %d", len(recs), info.Records)
	}
	seeds := mc.RepSeeds(smallSpec().Seed, smallSpec().Replicates)
	for i, rec := range recs {
		if rec.Rep != i || rec.Seed != seeds[i] || rec.Job != info.Name {
			t.Fatalf("record %d not normalized: %+v", i, rec)
		}
	}
}

func TestAutoRoutingByCost(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	// Small cost → synchronous 200.
	status, info, raw := postJob(t, ts, smallSpec(), "")
	if status != http.StatusOK || !info.State.Terminal() {
		t.Fatalf("small job: status %d state %s (%s)", status, info.State, raw)
	}
	// Large cost → 202 queued/running.
	status, info, raw = postJob(t, ts, slowSpec(), "")
	if status != http.StatusAccepted {
		t.Fatalf("large job: status %d (%s)", status, raw)
	}
	if info.State.Terminal() {
		t.Fatalf("large job already terminal: %s", info.State)
	}
	cancelJob(t, ts, info.ID)
	waitFor(t, ts, info.ID, "terminal", func(i JobInfo) bool { return i.State.Terminal() })
}

func TestAsyncSubmitPollFetch(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	spec := smallSpec()
	status, info, raw := postJob(t, ts, spec, "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("status %d, body %s", status, raw)
	}
	done := waitFor(t, ts, info.ID, "done", func(i JobInfo) bool { return i.State == StateDone })
	if done.Records != spec.Replicates || done.Aggregate == nil {
		t.Fatalf("done job: %d records, aggregate %v", done.Records, done.Aggregate)
	}
	_, recs := fetchRecords(t, ts, info.ID, "")
	if len(recs) != spec.Replicates {
		t.Fatalf("JSONL has %d records, want %d", len(recs), spec.Replicates)
	}
}

// TestRecordsByteIdenticalAcrossWorkersAndPaths is the acceptance-
// criteria determinism proof: the same spec produces byte-identical
// JSONL whether it runs synchronously or asynchronously, on a 1-worker
// or a 3-worker pool.
func TestRecordsByteIdenticalAcrossWorkersAndPaths(t *testing.T) {
	spec := JobSpec{Rule: "3majority", Engine: "sampled", N: 20_000, K: 3,
		Seed: 21, Replicates: 6, MaxRounds: 5000}
	var want []byte
	check := func(raw []byte, label string) {
		t.Helper()
		if want == nil {
			want = raw
			return
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("%s records differ from the first run", label)
		}
	}
	for _, workers := range []int{1, 3} {
		_, ts := newTestServer(t, Options{Workers: workers})
		status, info, raw := postJob(t, ts, spec, "?wait=1")
		if status != http.StatusOK {
			t.Fatalf("workers=%d sync: status %d (%s)", workers, status, raw)
		}
		rawRecs, recs := fetchRecords(t, ts, info.ID, "")
		if len(recs) != spec.Replicates {
			t.Fatalf("workers=%d sync: %d records", workers, len(recs))
		}
		check(rawRecs, fmt.Sprintf("workers=%d sync", workers))

		status, info, raw = postJob(t, ts, spec, "?wait=0")
		if status != http.StatusAccepted {
			t.Fatalf("workers=%d async: status %d (%s)", workers, status, raw)
		}
		waitFor(t, ts, info.ID, "done", func(i JobInfo) bool { return i.State == StateDone })
		rawRecs, _ = fetchRecords(t, ts, info.ID, "")
		check(rawRecs, fmt.Sprintf("workers=%d async", workers))
	}
}

func TestCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Executors: 1})
	status, info, raw := postJob(t, ts, slowSpec(), "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("status %d (%s)", status, raw)
	}
	// Wait until the job is demonstrably mid-run: running, with at least
	// one replicate completed and streamed.
	waitFor(t, ts, info.ID, "mid-run", func(i JobInfo) bool {
		return i.State == StateRunning && i.Records >= 1
	})
	cancelJob(t, ts, info.ID)
	final := waitFor(t, ts, info.ID, "terminal", func(i JobInfo) bool { return i.State.Terminal() })
	if final.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	if final.Records == 0 || final.Records >= slowSpec().Replicates {
		t.Fatalf("cancelled with %d records, want a proper partial prefix", final.Records)
	}
	if final.Aggregate == nil || final.Aggregate.Replicates != final.Records {
		t.Fatalf("partial aggregate %+v does not match %d records", final.Aggregate, final.Records)
	}
	// The partial records are still the deterministic replicate prefix.
	_, recs := fetchRecords(t, ts, info.ID, "")
	seeds := mc.RepSeeds(slowSpec().Seed, slowSpec().Replicates)
	for i, rec := range recs {
		if rec.Rep != i || rec.Seed != seeds[i] {
			t.Fatalf("record %d is not the replicate prefix: %+v", i, rec)
		}
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Executors: 1, Backlog: 2})
	_, blocking, _ := postJob(t, ts, slowSpec(), "?wait=0")
	waitFor(t, ts, blocking.ID, "running", func(i JobInfo) bool { return i.State == StateRunning })

	_, queued, _ := postJob(t, ts, slowSpec(), "?wait=0")
	if got := getJob(t, ts, queued.ID); got.State != StateQueued {
		t.Fatalf("second job state %s, want queued behind the single executor", got.State)
	}
	info := cancelJob(t, ts, queued.ID)
	if info.State != StateCancelled || info.Records != 0 {
		t.Fatalf("cancelled queued job: state %s, %d records", info.State, info.Records)
	}
	cancelJob(t, ts, blocking.ID)
	waitFor(t, ts, blocking.ID, "terminal", func(i JobInfo) bool { return i.State.Terminal() })
}

func TestQueueFull429(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Executors: 1, Backlog: 1})
	_, running, _ := postJob(t, ts, slowSpec(), "?wait=0")
	waitFor(t, ts, running.ID, "running", func(i JobInfo) bool { return i.State == StateRunning })
	_, queued, _ := postJob(t, ts, slowSpec(), "?wait=0")

	status, _, raw := postJob(t, ts, slowSpec(), "?wait=0")
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d (%s), want 429", status, raw)
	}
	if !strings.Contains(raw, "backlog") {
		t.Fatalf("429 body %q does not explain the backlog", raw)
	}
	// The rejected job left no trace.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []JobInfo `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 2 {
		t.Fatalf("listing has %d jobs after a rejected submit, want 2", len(listing.Jobs))
	}
	for _, id := range []string{running.ID, queued.ID} {
		cancelJob(t, ts, id)
		waitFor(t, ts, id, "terminal", func(i JobInfo) bool { return i.State.Terminal() })
	}
	// With the backlog drained, submissions are admitted again.
	status, info, raw := postJob(t, ts, slowSpec(), "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("post-drain submit: status %d (%s)", status, raw)
	}
	cancelJob(t, ts, info.ID)
}

func TestSyncSlotsFull429(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxSync: 1})
	type result struct {
		status int
		info   JobInfo
	}
	ch := make(chan result, 1)
	go func() {
		var res result
		res.status, res.info, _ = postJob(t, ts, slowSpec(), "?wait=1")
		ch <- res
	}()
	// Wait until the sync job occupies the only slot.
	deadline := time.Now().Add(30 * time.Second)
	var blocking JobInfo
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var listing struct {
			Jobs []JobInfo `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&listing)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(listing.Jobs) == 1 && listing.Jobs[0].State == StateRunning {
			blocking = listing.Jobs[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sync job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	status, _, raw := postJob(t, ts, smallSpec(), "?wait=1")
	if status != http.StatusTooManyRequests {
		t.Fatalf("second sync submit: status %d (%s), want 429", status, raw)
	}
	cancelJob(t, ts, blocking.ID)
	res := <-ch
	if res.status != http.StatusOK || res.info.State != StateCancelled {
		t.Fatalf("cancelled sync submit: status %d state %s", res.status, res.info.State)
	}
}

func TestFollowStreamsUntilTerminal(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	spec := JobSpec{Rule: "3majority", Engine: "sampled", N: 50_000, K: 2,
		Bias: "0", Seed: 5, Replicates: 8, MaxRounds: 20}
	status, info, raw := postJob(t, ts, spec, "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("status %d (%s)", status, raw)
	}
	// follow=1 keeps the stream open until the job finishes; reading to
	// EOF therefore yields every record without any polling.
	rawRecs, recs := fetchRecords(t, ts, info.ID, "?follow=1")
	if len(recs) != spec.Replicates {
		t.Fatalf("followed stream has %d records, want %d", len(recs), spec.Replicates)
	}
	final := getJob(t, ts, info.ID)
	if final.State != StateDone {
		t.Fatalf("job state %s after follow EOF, want done", final.State)
	}
	snapshot, _ := fetchRecords(t, ts, info.ID, "")
	if !bytes.Equal(rawRecs, snapshot) {
		t.Fatal("followed stream differs from the terminal snapshot")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	bad := smallSpec()
	bad.K = 1
	status, _, raw := postJob(t, ts, bad, "")
	if status != http.StatusBadRequest || !strings.Contains(raw, "k must be") {
		t.Fatalf("invalid spec: status %d body %s", status, raw)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"n": 1000, "k": 4, "colour": "red"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "colour") {
		t.Fatalf("unknown field: status %d body %s", resp.StatusCode, body)
	}
	status, _, raw = postJob(t, ts, smallSpec(), "?wait=perhaps")
	if status != http.StatusBadRequest {
		t.Fatalf("bad wait param: status %d (%s)", status, raw)
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, url := range []string{"/v1/jobs/nope", "/v1/jobs/nope/records"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", url, resp.StatusCode)
		}
	}
}

func TestCancelTerminalJobIsIdempotent(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	status, info, _ := postJob(t, ts, smallSpec(), "?wait=1")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	after := cancelJob(t, ts, info.ID)
	if after.State != StateDone {
		t.Fatalf("cancelling a done job moved it to %s", after.State)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		Backlog int    `json:"backlog"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Workers != 2 {
		t.Fatalf("healthz %+v", body)
	}
}
