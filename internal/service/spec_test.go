package service

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"plurality/internal/mc"
)

// validSpec is a small, fully-defaulted spec used as the mutation base.
func validSpec() JobSpec {
	s := JobSpec{N: 10_000, K: 4, Seed: 7, Replicates: 3, MaxRounds: 2000}
	s.Normalize()
	return s
}

func TestNormalizeDefaults(t *testing.T) {
	var s JobSpec
	s.Normalize()
	want := JobSpec{Rule: "3majority", Engine: "auto", Graph: "complete",
		Bias: "auto", Replicates: 1, MaxRounds: DefaultMaxRounds, Sampler: "default"}
	if s != want {
		t.Fatalf("Normalize zero spec = %+v, want %+v", s, want)
	}
	s.Normalize()
	if s != want {
		t.Fatal("Normalize is not idempotent")
	}
}

func TestValidateAcceptsEveryEngine(t *testing.T) {
	cases := []func(*JobSpec){
		func(s *JobSpec) {}, // auto → multinomial
		func(s *JobSpec) { s.Engine = "sampled" },
		func(s *JobSpec) { s.Engine = "population" },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "cycle" },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "torus"; s.N = 10_000 },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "regular:4" },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "gnp:0.001"; s.N = 2000 },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "smallworld:6:0.1" },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "ba:3" },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "sbm:4:0.01:0.001" },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "barbell:4" },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "hypercube"; s.N = 8192 },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "torus:3"; s.N = 27_000 },
		func(s *JobSpec) { s.Rule = "hplurality:5" }, // auto → sampled
		func(s *JobSpec) { s.Rule = "median" },
		func(s *JobSpec) { s.Rule = "undecided" },
		func(s *JobSpec) { s.Rule = "2choices-keepown" },
		func(s *JobSpec) { s.Bias = "123" },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "regular:6"; s.Sampler = "batch" },
		func(s *JobSpec) { s.Sampler = "default" },
	}
	for i, mutate := range cases {
		s := validSpec()
		mutate(&s)
		if err := s.Validate(); err != nil {
			t.Errorf("case %d (%+v): unexpected error %v", i, s, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		mutate func(*JobSpec)
		want   string // substring of the error
	}{
		{func(s *JobSpec) { s.N = 0 }, "n must be"},
		{func(s *JobSpec) { s.K = 1 }, "k must be"},
		{func(s *JobSpec) { s.K = MaxK + 1 }, "k must be"},
		{func(s *JobSpec) { s.N = 3; s.K = 4 }, "exceeds n"},
		{func(s *JobSpec) { s.Replicates = MaxReplicates + 1 }, "replicates"},
		{func(s *JobSpec) { s.MaxRounds = MaxMaxRounds + 1 }, "max_rounds"},
		{func(s *JobSpec) { s.Rule = "gossip" }, "unknown rule"},
		{func(s *JobSpec) { s.Rule = "hplurality:0" }, "bad h"},
		{func(s *JobSpec) { s.Engine = "warp" }, "unknown engine"},
		{func(s *JobSpec) { s.Rule = "hplurality:3"; s.Engine = "multinomial" }, "closed-form"},
		{func(s *JobSpec) { s.Rule = "undecided"; s.Engine = "sampled" }, "its own engine"},
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "moebius" }, "unknown graph"},
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "torus"; s.N = 10 }, "side"},
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "regular:0" }, "outside"},
		{func(s *JobSpec) { s.N = 5; s.K = 2; s.Engine = "graph"; s.Graph = "regular:5" }, "degree < n"},
		{func(s *JobSpec) { s.N = 5; s.K = 2; s.Engine = "graph"; s.Graph = "regular:3" }, "even"},
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "gnp:1.5" }, "outside"},
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "smallworld:3:0.1" }, "even"},
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "sbm:2:0.1" }, "three parameters"},
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "hypercube"; s.N = 1000 }, "power of two"},
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "ba:4"; s.N = 4 }, "M+1"},
		// The adjacency-entry cap holds even under the raised n ceiling.
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "regular:100"; s.N = MaxNGraph }, "cap"},
		{func(s *JobSpec) { s.Bias = "-1" }, "bias"},
		{func(s *JobSpec) { s.Bias = "1000000000" }, "bias"},
		{func(s *JobSpec) { s.Bias = "lots" }, "bad bias"},
		{func(s *JobSpec) { s.N = MaxNExact + 1 }, "cap"},
		{func(s *JobSpec) { s.Engine = "sampled"; s.N = MaxNSampled + 1 }, "cap"},
		{func(s *JobSpec) { s.Engine = "population"; s.N = MaxNSampled + 1 }, "cap"},
		// Materialized families keep the RAM-bounded cap; implicit families
		// (complete here) get the raised one but still have a ceiling.
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "regular:8"; s.N = MaxNGraph + 4 }, "graph engine needs n"},
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "complete"; s.N = MaxNGraphImplicit + 4 }, "graph engine needs n"},
		// A hostile torus n must be rejected in constant time, not by a
		// √n-iteration side search or wrapping int64 arithmetic.
		{func(s *JobSpec) { s.Engine = "graph"; s.Graph = "torus"; s.N = 1<<63 - 1 }, "graph engine needs n"},
		{func(s *JobSpec) { s.Sampler = "turbo" }, "unknown sampler"},
		// The relaxed sampler is a graph-engine notion; mean-field engines
		// must refuse it rather than silently run the default discipline.
		{func(s *JobSpec) { s.Sampler = "batch" }, "graph engine"},
		{func(s *JobSpec) { s.Engine = "sampled"; s.Sampler = "batch" }, "graph engine"},
	}
	for i, tc := range cases {
		s := validSpec()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("case %d (%+v): Validate accepted an invalid spec", i, s)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestValidateReportsAllProblems(t *testing.T) {
	s := validSpec()
	s.K = 1
	s.Replicates = -2
	err := s.Validate()
	if err == nil {
		t.Fatal("Validate accepted a doubly-invalid spec")
	}
	if !strings.Contains(err.Error(), "k must be") || !strings.Contains(err.Error(), "replicates") {
		t.Fatalf("error %q does not report both problems", err)
	}
}

func TestNameCoversDistinguishingFields(t *testing.T) {
	base := validSpec()
	mutations := []func(*JobSpec){
		func(s *JobSpec) { s.Rule = "median" },
		func(s *JobSpec) { s.Engine = "sampled" },
		func(s *JobSpec) { s.N = 20_000 },
		func(s *JobSpec) { s.K = 8 },
		func(s *JobSpec) { s.Bias = "42" },
		func(s *JobSpec) { s.Seed = 8 },
		func(s *JobSpec) { s.MaxRounds = 99 },
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "cycle" },
		// Same topology, different generator seed → different quenched
		// graph → must be a different job identity.
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "cycle"; s.GraphSeed = 99; s.Normalize() },
		// The relaxed sampler changes the replicate streams, so it must be
		// part of the job identity.
		func(s *JobSpec) { s.Engine = "graph"; s.Graph = "cycle"; s.Sampler = "batch" },
	}
	seen := map[string]bool{base.Name(): true}
	for i, mutate := range mutations {
		s := base
		mutate(&s)
		name := s.Name()
		if seen[name] {
			t.Errorf("mutation %d does not change Name() = %q", i, name)
		}
		seen[name] = true
	}
}

func TestCostScalesWithEngineClass(t *testing.T) {
	exact := validSpec() // multinomial: O(k) per round
	if got, want := exact.Cost(), int64(exact.Replicates)*int64(exact.MaxRounds)*int64(exact.K); got != want {
		t.Fatalf("multinomial Cost = %d, want %d", got, want)
	}
	sampled := validSpec()
	sampled.Engine = "sampled"
	if got, want := sampled.Cost(), int64(sampled.Replicates)*int64(sampled.MaxRounds)*sampled.N; got != want {
		t.Fatalf("sampled Cost = %d, want %d", got, want)
	}
	// A spec whose exact product overflows int64 must saturate, not wrap
	// negative (a negative cost would route it onto the sync path).
	huge := validSpec()
	huge.Engine = "sampled"
	huge.N = MaxNSampled
	huge.Replicates = MaxReplicates
	huge.MaxRounds = MaxMaxRounds
	if err := huge.Validate(); err != nil {
		t.Fatalf("capped-per-field spec should validate: %v", err)
	}
	if got := huge.Cost(); got != math.MaxInt64 {
		t.Fatalf("overflowing Cost = %d, want saturation at MaxInt64", got)
	}
}

// TestMCJobDeterministicAcrossWorkers is the service half of the mc
// determinism contract: the compiled job's records depend only on the
// spec, not on pool parallelism.
func TestMCJobDeterministicAcrossWorkers(t *testing.T) {
	for _, engine := range []string{"auto", "sampled"} {
		s := validSpec()
		s.Engine = engine
		s.N = 5000
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		var want []mc.Record
		for _, workers := range []int{1, 4} {
			p := mc.NewPool(workers)
			recs, err := p.Run(context.Background(), s.MCJob(), mc.RunOpts{})
			p.Close()
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = recs
				continue
			}
			if !reflect.DeepEqual(recs, want) {
				t.Fatalf("engine %s: records differ between 1 and %d workers", engine, workers)
			}
		}
		if len(want) != s.Replicates {
			t.Fatalf("got %d records, want %d", len(want), s.Replicates)
		}
	}
}
