package service_test

// The crash matrix: every test in this file boots the server on the
// fault-injecting in-memory filesystem (internal/service/faultfs),
// hurts it — power cut, torn tail, failing disk — and checks the
// tentpole property: the daemon either recovers deterministically
// (resumed record streams byte-identical to a crash-free run) or lands
// on an explicit failed state. Never a hang, never a panic, never wrong
// records. The same scenarios against a real process and a real disk
// live in cmd/pluralityd's lifecycle tests.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"plurality/internal/service"
	"plurality/internal/service/faultfs"
)

const dataDir = "data"

// durableOpts is the standard durable configuration: a tight sync
// interval so crashes keep interesting prefixes, and a fast retry
// budget so failure tests don't sleep.
func durableOpts(fs *faultfs.FS) service.Options {
	return service.Options{
		Workers: 2, DataDir: dataDir, FS: fs,
		SyncEvery: 2, JournalRetries: 3, JournalBackoff: time.Millisecond,
	}
}

// boot starts a server on fs; the caller owns Close (crash tests close
// and restart explicitly).
func boot(t *testing.T, opts service.Options) (*service.Server, *httptest.Server) {
	t.Helper()
	s, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s)
}

// resumableSpec finishes in well under a second uninterrupted, but has
// enough replicates that a poll can catch it mid-run.
func resumableSpec() service.JobSpec {
	return service.JobSpec{Rule: "3majority", Engine: "sampled", N: 50_000, K: 2,
		Bias: "0", Seed: 21, Replicates: 12, MaxRounds: 20}
}

func submit(t *testing.T, ts *httptest.Server, spec service.JobSpec, query string) (int, service.JobInfo, string) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var info service.JobInfo
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &info); err != nil {
			t.Fatalf("bad %d body %q: %v", resp.StatusCode, raw, err)
		}
	}
	return resp.StatusCode, info, string(raw)
}

func jobInfo(t *testing.T, ts *httptest.Server, id string) service.JobInfo {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", id, resp.StatusCode)
	}
	var info service.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func waitJob(t *testing.T, ts *httptest.Server, id, what string, pred func(service.JobInfo) bool) service.JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		info := jobInfo(t, ts, id)
		if pred(info) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (state %s, %d records)", id, what, info.State, info.Records)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func recordBytes(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/records")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET records %s: status %d (%s)", id, resp.StatusCode, raw)
	}
	return raw
}

// baseline runs spec to completion on a throwaway in-memory server and
// returns the canonical record bytes.
func baseline(t *testing.T, spec service.JobSpec) []byte {
	t.Helper()
	s, ts := boot(t, service.Options{Workers: 2})
	defer func() { ts.Close(); s.Close() }()
	status, info, raw := submit(t, ts, spec, "?wait=1")
	if status != http.StatusOK || info.State != service.StateDone {
		t.Fatalf("baseline run: status %d state %s (%s)", status, info.State, raw)
	}
	return recordBytes(t, ts, info.ID)
}

// TestCrashResumeByteIdentical is the tentpole e2e at the package
// level: kill the server at three different instants (before any
// record, mid-run, and with a torn trailing record write), restart it
// on the post-crash disk image, and require the finished job's record
// stream to be byte-identical to a crash-free run — same job ID, same
// bytes, only the lost suffix re-executed.
func TestCrashResumeByteIdentical(t *testing.T) {
	spec := resumableSpec()
	want := baseline(t, spec)

	crashes := []struct {
		name  string
		crash func(fs *faultfs.FS, ts *httptest.Server, id string) *faultfs.FS
	}{
		{"before any record", func(fs *faultfs.FS, ts *httptest.Server, id string) *faultfs.FS {
			return fs.Crash()
		}},
		{"mid-run", func(fs *faultfs.FS, ts *httptest.Server, id string) *faultfs.FS {
			waitJob(t, ts, id, ">=3 records", func(i service.JobInfo) bool { return i.Records >= 3 })
			return fs.Crash()
		}},
		{"torn record tail", func(fs *faultfs.FS, ts *httptest.Server, id string) *faultfs.FS {
			waitJob(t, ts, id, ">=3 records", func(i service.JobInfo) bool { return i.Records >= 3 })
			return fs.CrashKeep(7) // keep 7 unsynced bytes: a half-written record
		}},
	}
	for _, tc := range crashes {
		t.Run(tc.name, func(t *testing.T) {
			fs := faultfs.New()
			s1, ts1 := boot(t, durableOpts(fs))
			status, info, raw := submit(t, ts1, spec, "?wait=0")
			if status != http.StatusAccepted {
				t.Fatalf("submit: status %d (%s)", status, raw)
			}
			post := tc.crash(fs, ts1, info.ID)
			ts1.Close()
			s1.Close()

			s2, ts2 := boot(t, durableOpts(post))
			defer func() { ts2.Close(); s2.Close() }()
			done := waitJob(t, ts2, info.ID, "done", func(i service.JobInfo) bool { return i.State == service.StateDone })
			if done.Records != spec.Replicates {
				t.Fatalf("resumed job finished with %d records, want %d", done.Records, spec.Replicates)
			}
			if got := recordBytes(t, ts2, info.ID); !bytes.Equal(got, want) {
				t.Fatalf("resumed records differ from the crash-free run:\n got %d bytes\nwant %d bytes", len(got), len(want))
			}
		})
	}
}

// TestCrashAfterTerminalKeepsJobDone proves the sync-before-terminal
// ordering: once a job is journaled done, a crash cannot lose records —
// the restarted server serves them without re-running anything.
func TestCrashAfterTerminalKeepsJobDone(t *testing.T) {
	spec := resumableSpec()
	want := baseline(t, spec)

	fs := faultfs.New()
	s1, ts1 := boot(t, durableOpts(fs))
	status, info, _ := submit(t, ts1, spec, "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	waitJob(t, ts1, info.ID, "done", func(i service.JobInfo) bool { return i.State == service.StateDone })
	post := fs.Crash()
	ts1.Close()
	s1.Close()

	s2, ts2 := boot(t, durableOpts(post))
	defer func() { ts2.Close(); s2.Close() }()
	got := jobInfo(t, ts2, info.ID)
	if got.State != service.StateDone || got.Records != spec.Replicates {
		t.Fatalf("replayed terminal job: state %s, %d records", got.State, got.Records)
	}
	if b := recordBytes(t, ts2, info.ID); !bytes.Equal(b, want) {
		t.Fatal("journaled records differ from the crash-free run")
	}
	// A journaled-done job is never re-executed: the restarted server
	// performed no writes at all (replay is read-and-truncate only).
	if writes, _ := post.Counts(); writes != 0 {
		t.Fatalf("restart re-ran a journaled-done job (%d writes)", writes)
	}
}

// TestTransientRecordWriteFailureRetried injects a single failing,
// partially-landed record write; the retry must repair the file
// (truncating the interior garbage) and the job must complete with
// byte-identical records.
func TestTransientRecordWriteFailureRetried(t *testing.T) {
	spec := resumableSpec()
	want := baseline(t, spec)

	fs := faultfs.New()
	// The 4th write to the records file fails after landing 3 bytes.
	fs.FailWrites("records/", 4, 1, 3)
	s, ts := boot(t, durableOpts(fs))
	defer func() { ts.Close(); s.Close() }()
	status, info, _ := submit(t, ts, spec, "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	done := waitJob(t, ts, info.ID, "done", func(i service.JobInfo) bool { return i.State == service.StateDone })
	if done.Records != spec.Replicates {
		t.Fatalf("finished with %d records", done.Records)
	}
	if got := recordBytes(t, ts, info.ID); !bytes.Equal(got, want) {
		t.Fatal("records differ after a repaired transient write failure")
	}
	if got := fs.Bytes(dataDir + "/records/" + info.ID + ".jsonl"); !bytes.Equal(got, want) {
		t.Fatal("journaled records file differs after repair (interior garbage left behind?)")
	}
}

// TestPermanentWriteFailureLatchesFailed breaks the records file for
// good: after the retry budget is spent the job must land on an
// explicit failed state (with the journal error visible), and the
// server must keep serving.
func TestPermanentWriteFailureLatchesFailed(t *testing.T) {
	fs := faultfs.New()
	fs.FailWrites("records/", 1, 1<<30, 0)
	s, ts := boot(t, durableOpts(fs))
	defer func() { ts.Close(); s.Close() }()
	status, info, _ := submit(t, ts, resumableSpec(), "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	failed := waitJob(t, ts, info.ID, "failed", func(i service.JobInfo) bool { return i.State.Terminal() })
	if failed.State != service.StateFailed || !strings.Contains(failed.Error, "journal") {
		t.Fatalf("broken-disk job: state %s error %q, want failed with a journal error", failed.State, failed.Error)
	}
	// The disk heals; the server is still usable.
	fs.ClearFaults()
	status, info2, raw := submit(t, ts, resumableSpec(), "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("post-failure submit: status %d (%s)", status, raw)
	}
	waitJob(t, ts, info2.ID, "done", func(i service.JobInfo) bool { return i.State == service.StateDone })
}

// TestSubmitJournalFailure500 breaks the meta journal: a submission
// that cannot be made durable must be refused (500) and leave no job
// behind — the acknowledged-implies-durable half of the contract.
func TestSubmitJournalFailure500(t *testing.T) {
	fs := faultfs.New()
	s, ts := boot(t, durableOpts(fs))
	defer func() { ts.Close(); s.Close() }()
	fs.FailWrites("journal.jsonl", 1, 1<<30, 0)
	status, _, raw := submit(t, ts, resumableSpec(), "?wait=0")
	if status != http.StatusInternalServerError || !strings.Contains(raw, "journal") {
		t.Fatalf("unjournalable submit: status %d (%s), want 500", status, raw)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []service.JobInfo `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil || len(listing.Jobs) != 0 {
		t.Fatalf("refused submission left %d jobs (err %v)", len(listing.Jobs), err)
	}
}

// TestDrainResumesCancelledJobs is the graceful half of the shutdown
// story: Drain refuses new work with 503 + Retry-After, cancels the
// running job WITHOUT journaling it terminal, and stamps the
// clean-shutdown marker; the restarted server resumes the job from its
// record prefix as if nothing happened.
func TestDrainResumesCancelledJobs(t *testing.T) {
	spec := resumableSpec()
	spec.Replicates = service.MaxReplicates // never finishes on its own

	fs := faultfs.New()
	s1, ts1 := boot(t, durableOpts(fs))
	status, info, _ := submit(t, ts1, spec, "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	waitJob(t, ts1, info.ID, ">=2 records", func(i service.JobInfo) bool { return i.Records >= 2 })

	drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s1.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Draining refuses new submissions.
	status, _, raw := submit(t, ts1, resumableSpec(), "?wait=0")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d (%s), want 503", status, raw)
	}
	// The journal carries the clean-shutdown marker...
	meta := fs.Bytes(dataDir + "/journal.jsonl")
	lines := bytes.Split(bytes.TrimRight(meta, "\n"), []byte("\n"))
	if last := lines[len(lines)-1]; !bytes.Contains(last, []byte(`"shutdown"`)) {
		t.Fatalf("journal's last entry after drain is %s, want the shutdown marker", last)
	}
	// ...and no terminal entry for the drained job: it must replay.
	if bytes.Contains(meta, []byte(`"cancelled"`)) {
		t.Fatal("drain journaled the job terminal; it would not resume")
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := boot(t, durableOpts(fs))
	defer func() { ts2.Close(); s2.Close() }()
	resumed := waitJob(t, ts2, info.ID, "running again", func(i service.JobInfo) bool { return i.State == service.StateRunning })
	if resumed.Records < 2 {
		t.Fatalf("resumed job lost its prefix: %d records", resumed.Records)
	}
	// A user cancel IS terminal and journaled: a third boot keeps it.
	resp, err := http.Post(ts2.URL+"/v1/jobs/"+info.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitJob(t, ts2, info.ID, "cancelled", func(i service.JobInfo) bool { return i.State == service.StateCancelled })
	atCancel := recordBytes(t, ts2, info.ID)
	ts2.Close()
	s2.Close()

	s3, ts3 := boot(t, durableOpts(fs))
	defer func() { ts3.Close(); s3.Close() }()
	final := jobInfo(t, ts3, info.ID)
	if final.State != service.StateCancelled {
		t.Fatalf("user-cancelled job replayed as %s, want cancelled", final.State)
	}
	// The records completed before the cancel survive byte-exactly.
	if got := recordBytes(t, ts3, info.ID); len(got) == 0 || !bytes.Equal(got, atCancel) {
		t.Fatalf("cancelled job's records changed across restart: %d bytes, had %d at cancel time", len(got), len(atCancel))
	}
}

// TestRetentionEvictsToJournal floods a Retain=1 server with terminal
// jobs: evicted ones keep answering the info endpoint from their
// tombstone and serve records straight from the journal file.
func TestRetentionEvictsToJournal(t *testing.T) {
	spec := resumableSpec()
	want := baseline(t, spec)

	fs := faultfs.New()
	opts := durableOpts(fs)
	opts.Retain = 1
	s, ts := boot(t, opts)
	defer func() { ts.Close(); s.Close() }()

	var ids []string
	for i := 0; i < 3; i++ {
		status, info, raw := submit(t, ts, spec, "?wait=1")
		if status != http.StatusOK {
			t.Fatalf("sync submit %d: status %d (%s)", i, status, raw)
		}
		ids = append(ids, info.ID)
	}
	// j1 and j2 are evicted (only the last terminal job is retained),
	// but their snapshots survive as tombstones...
	for _, id := range ids[:2] {
		info := jobInfo(t, ts, id)
		if info.State != service.StateDone || info.Records != spec.Replicates || info.Aggregate == nil {
			t.Fatalf("evicted %s tombstone: state %s records %d aggregate %v", id, info.State, info.Records, info.Aggregate)
		}
		// ...and their records are served from the journal, byte-exact.
		if got := recordBytes(t, ts, id); !bytes.Equal(got, want) {
			t.Fatalf("evicted %s records differ from the canonical bytes", id)
		}
	}
}

// TestRetentionWithoutJournalIs410 is the in-memory flavor: evicted
// records are gone for good, and the API says so instead of hanging or
// serving garbage.
func TestRetentionWithoutJournalIs410(t *testing.T) {
	spec := resumableSpec()
	s, ts := boot(t, service.Options{Workers: 2, Retain: 1})
	defer func() { ts.Close(); s.Close() }()
	var first string
	for i := 0; i < 2; i++ {
		status, info, raw := submit(t, ts, spec, "?wait=1")
		if status != http.StatusOK {
			t.Fatalf("sync submit %d: status %d (%s)", i, status, raw)
		}
		if i == 0 {
			first = info.ID
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + first + "/records")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted in-memory records: status %d, want 410", resp.StatusCode)
	}
	// The tombstone info endpoint still works.
	if info := jobInfo(t, ts, first); info.State != service.StateDone || info.Records != spec.Replicates {
		t.Fatalf("tombstone info: %+v", info)
	}
}

// TestDeleteEndpoint covers the DELETE lifecycle: 409 while running,
// 204 once terminal (removing the journal file too, proven by the job
// staying gone across a restart), 404 after.
func TestDeleteEndpoint(t *testing.T) {
	fs := faultfs.New()
	s1, ts1 := boot(t, durableOpts(fs))
	spec := resumableSpec()
	spec.Replicates = service.MaxReplicates
	status, info, _ := submit(t, ts1, spec, "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	waitJob(t, ts1, info.ID, "running", func(i service.JobInfo) bool { return i.State == service.StateRunning })

	del := func(ts *httptest.Server, id string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(ts1, info.ID); code != http.StatusConflict {
		t.Fatalf("DELETE running job: status %d, want 409", code)
	}
	resp, err := http.Post(ts1.URL+"/v1/jobs/"+info.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitJob(t, ts1, info.ID, "cancelled", func(i service.JobInfo) bool { return i.State.Terminal() })
	if code := del(ts1, info.ID); code != http.StatusNoContent {
		t.Fatalf("DELETE terminal job: status %d, want 204", code)
	}
	if code := del(ts1, info.ID); code != http.StatusNotFound {
		t.Fatalf("DELETE deleted job: status %d, want 404", code)
	}
	if got := fs.Bytes(dataDir + "/records/" + info.ID + ".jsonl"); got != nil {
		t.Fatalf("records file survived DELETE: %d bytes", len(got))
	}
	ts1.Close()
	s1.Close()

	// The deletion is durable: a restart does not resurrect the job.
	s2, ts2 := boot(t, durableOpts(fs))
	defer func() { ts2.Close(); s2.Close() }()
	resp, err = http.Get(ts2.URL + "/v1/jobs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted job after restart: status %d, want 404", resp.StatusCode)
	}
}

// TestDeletedIDNeverReused is the regression for the ID-reuse hole:
// deleting the highest-ID job and restarting must not hand that ID to a
// new submission — the reused ID's submit entry would sit after the old
// delete entry in the journal, and the next replay would silently drop
// the acknowledged job.
func TestDeletedIDNeverReused(t *testing.T) {
	fs := faultfs.New()
	s1, ts1 := boot(t, durableOpts(fs))
	status, info, raw := submit(t, ts1, resumableSpec(), "?wait=1")
	if status != http.StatusOK {
		t.Fatalf("submit: status %d (%s)", status, raw)
	}
	req, err := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/jobs/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE %s: status %d", info.ID, resp.StatusCode)
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := boot(t, durableOpts(fs))
	status, info2, raw := submit(t, ts2, resumableSpec(), "?wait=1")
	if status != http.StatusOK {
		t.Fatalf("post-restart submit: status %d (%s)", status, raw)
	}
	if info2.ID == info.ID {
		t.Fatalf("new submission reused deleted job's ID %s", info.ID)
	}
	ts2.Close()
	s2.Close()

	// The acknowledged job survives the next replay intact.
	s3, ts3 := boot(t, durableOpts(fs))
	defer func() { ts3.Close(); s3.Close() }()
	if got := jobInfo(t, ts3, info2.ID); got.State != service.StateDone {
		t.Fatalf("job %s replayed as %s, want done", info2.ID, got.State)
	}
}

// TestMetaRepairSurvivesTruncateFailure breaks the repair path itself:
// the submit append fails after landing a partial line AND the repair's
// truncate fails once. The retry must redo the repair and land the
// entry — with only the broken closed handle kept (the old behavior),
// the second and last attempt would fail on "file already closed" and
// the submission would be refused.
func TestMetaRepairSurvivesTruncateFailure(t *testing.T) {
	fs := faultfs.New()
	opts := durableOpts(fs)
	opts.JournalRetries = 2
	s1, ts1 := boot(t, opts)
	fs.FailWrites("journal.jsonl", 1, 1, 3)
	fs.FailTruncates("journal.jsonl", 1, 1)
	status, info, raw := submit(t, ts1, resumableSpec(), "?wait=1")
	if status != http.StatusOK {
		t.Fatalf("submit: status %d (%s)", status, raw)
	}
	ts1.Close()
	s1.Close()

	// The repaired journal replays cleanly: no interior garbage from the
	// partial write, and the job comes back done.
	s2, ts2 := boot(t, durableOpts(fs))
	defer func() { ts2.Close(); s2.Close() }()
	if got := jobInfo(t, ts2, info.ID); got.State != service.StateDone {
		t.Fatalf("job %s replayed as %s, want done", info.ID, got.State)
	}
}

// TestCorruptJournalNeverWedges scribbles over the middle of the meta
// journal and the records file; the restarted server must come up
// serving (the damage degrades to truncation/skipping) rather than
// refuse to boot.
func TestCorruptJournalNeverWedges(t *testing.T) {
	spec := resumableSpec()
	fs := faultfs.New()
	s1, ts1 := boot(t, durableOpts(fs))
	status, info, _ := submit(t, ts1, spec, "?wait=1")
	if status != http.StatusOK {
		t.Fatalf("submit status %d", status)
	}
	ts1.Close()
	s1.Close()

	fs.Corrupt(dataDir+"/journal.jsonl", 40, []byte{0xff, 0x00, 0x7f})
	fs.Corrupt(dataDir+"/records/"+info.ID+".jsonl", 10, []byte("XX"))

	s2, ts2 := boot(t, durableOpts(fs))
	defer func() { ts2.Close(); s2.Close() }()
	resp, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after corruption: %d", resp.StatusCode)
	}
}
