package service

// White-box hub tests: the slow-consumer drop rule and the frame
// encoding, deterministically — no sockets, no timing. The end-to-end
// versions (real connections, real backpressure) live in
// events_test.go.

import (
	"strings"
	"testing"
	"time"
)

// recv asserts a frame is immediately available and returns it.
func recv(t *testing.T, sub *subscriber, what string) string {
	t.Helper()
	select {
	case b, ok := <-sub.ch:
		if !ok {
			t.Fatalf("%s: channel closed", what)
		}
		return string(b)
	default:
		t.Fatalf("%s: no frame buffered", what)
		return ""
	}
}

func TestHubDropsSlowSubscriberWithoutBlocking(t *testing.T) {
	met := newServerMetrics()
	h := newHub(1, met)
	slow := h.subscribe()
	fast := h.subscribe()
	if n := h.clients(); n != 2 {
		t.Fatalf("clients = %d, want 2", n)
	}

	// First publish fits both 1-slot buffers.
	h.publish(Event{Type: "job"})
	recv(t, fast, "fast first frame")

	// Second publish: fast has room (drained), slow is full — the hub
	// must drop slow on the spot and never block. Guard with a timeout so
	// a blocking regression fails fast instead of hanging the suite.
	done := make(chan struct{})
	go func() { h.publish(Event{Type: "job"}); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a full subscriber buffer")
	}
	recv(t, fast, "fast second frame")

	if n := h.clients(); n != 1 {
		t.Fatalf("clients = %d after drop, want 1 (only fast)", n)
	}
	// Slow's channel: one buffered frame (the first), then closed — the
	// handler flushes what it has and ends the response.
	recv(t, slow, "slow buffered frame")
	if _, ok := <-slow.ch; ok {
		t.Fatal("slow subscriber channel not closed after drop")
	}
	met.mu.Lock()
	droppedTotal, eventsTotal := met.sseDropped, met.sseEvents
	met.mu.Unlock()
	if droppedTotal != 1 {
		t.Fatalf("sseDropped = %d, want 1", droppedTotal)
	}
	if eventsTotal != 2 {
		t.Fatalf("sseEvents = %d, want 2", eventsTotal)
	}
}

func TestHubShutdownDeliversTerminalFrame(t *testing.T) {
	h := newHub(4, newServerMetrics())
	sub := h.subscribe()
	h.publish(Event{Type: "job"})
	h.shutdown()
	h.shutdown() // idempotent

	if got := recv(t, sub, "queued frame"); !strings.Contains(got, `"type":"job"`) {
		t.Fatalf("first frame %q, want the queued job event", got)
	}
	if got := recv(t, sub, "shutdown frame"); !strings.Contains(got, `"type":"shutdown"`) {
		t.Fatalf("second frame %q, want the shutdown event", got)
	}
	if _, ok := <-sub.ch; ok {
		t.Fatal("channel not closed after shutdown")
	}
	if h.subscribe() != nil {
		t.Fatal("subscribe after shutdown must return nil")
	}
	// Publishing into a closed hub is a silent no-op.
	h.publish(Event{Type: "job"})
}

func TestFrameFormat(t *testing.T) {
	got := string(frame(Event{Seq: 7, Type: "progress", ID: "j1", Done: 3, Total: 12, Backlog: 2}))
	if !strings.HasPrefix(got, "id: 7\nevent: progress\ndata: {") {
		t.Fatalf("frame = %q, want id/event/data lines", got)
	}
	if !strings.HasSuffix(got, "}\n\n") {
		t.Fatalf("frame = %q, want a blank-line terminator", got)
	}
	if strings.Count(got, "\n\n") != 1 {
		t.Fatalf("frame = %q must contain exactly one blank line (the terminator)", got)
	}
}

func TestProgressStride(t *testing.T) {
	cases := []struct{ total, want int }{
		{1, 1}, {5, 1}, {64, 1}, {65, 1}, {128, 2}, {6400, 100}, {100_000, 1562},
	}
	for _, tc := range cases {
		if got := progressStride(tc.total); got != tc.want {
			t.Errorf("progressStride(%d) = %d, want %d", tc.total, got, tc.want)
		}
	}
}
