package service_test

// Black-box tests of the traced-job surface: GET /v1/jobs/{id}/trace,
// the byte-reproducibility guarantee (tracing never changes records),
// the round-duration metrics feed, and the concurrency of SSE round
// events against ?follow=1 record streaming (the -race certification
// for the telemetry fan-out).

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"plurality/internal/obs"
	"plurality/internal/service"
)

// tracedSpec is small enough for the sync path but has a few replicates
// and enough rounds to produce non-trivial traces.
func tracedSpec() service.JobSpec {
	return service.JobSpec{Rule: "3majority", Engine: "sampled", N: 20_000, K: 3,
		Bias: "0", Seed: 31, Replicates: 4, MaxRounds: 30, Trace: true}
}

func traceBody(t *testing.T, ts *httptest.Server, id string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw, resp.StatusCode
}

// TestTracedJob submits a traced job, reads its traces back through the
// API, and pins the whole contract: one parsed run per traced
// replicate, headers tied to the job, per-run round counts matching the
// replicate's record, records byte-identical to the untraced
// submission, and the round-duration histogram fed.
func TestTracedJob(t *testing.T) {
	s, ts := boot(t, service.Options{Workers: 2})
	defer func() { ts.Close(); s.Close() }()

	spec := tracedSpec()
	status, info, raw := submit(t, ts, spec, "?wait=1")
	if status != http.StatusOK || info.State != service.StateDone {
		t.Fatalf("traced submit: status %d state %s (%s)", status, info.State, raw)
	}
	body, code := traceBody(t, ts, info.ID)
	if code != http.StatusOK {
		t.Fatalf("GET trace: status %d (%s)", code, body)
	}
	traces, skipped, err := obs.ReadTraces(bytes.NewReader(body))
	if err != nil || skipped != 0 {
		t.Fatalf("parsing traces: err=%v skipped=%d", err, skipped)
	}
	if len(traces) != spec.Replicates {
		t.Fatalf("got %d traces, want %d (all replicates are under the traced-prefix cap)", len(traces), spec.Replicates)
	}
	// Records arrive in replicate order, so the trace runs do too.
	recs := strings.Count(string(recordBytes(t, ts, info.ID)), "\n")
	if recs != spec.Replicates {
		t.Fatalf("job has %d records, want %d", recs, spec.Replicates)
	}
	seenRep := map[int]bool{}
	for _, tr := range traces {
		if tr.Header.Job == "" || tr.Header.N != spec.N || tr.Header.K != spec.K {
			t.Fatalf("trace header %+v not tied to the job", tr.Header)
		}
		if tr.Header.Engine != "sampled" || tr.Header.Rule != "3majority" {
			t.Fatalf("trace header engine/rule = %s/%s", tr.Header.Engine, tr.Header.Rule)
		}
		if seenRep[tr.Header.Rep] {
			t.Fatalf("duplicate trace for rep %d", tr.Header.Rep)
		}
		seenRep[tr.Header.Rep] = true
		if tr.Summary == nil {
			t.Fatal("trace run has no summary line")
		}
		if tr.Summary.Rounds < 1 || tr.Summary.Rounds > spec.MaxRounds {
			t.Fatalf("rep %d summary rounds %d outside [1, %d]", tr.Header.Rep, tr.Summary.Rounds, spec.MaxRounds)
		}
		if len(tr.Rounds) != tr.Summary.Retained {
			t.Fatalf("rep %d has %d round lines, summary says %d retained", tr.Header.Rep, len(tr.Rounds), tr.Summary.Retained)
		}
		last := tr.Rounds[len(tr.Rounds)-1]
		if last.CMax <= 0 || last.CMax > spec.N {
			t.Fatalf("rep %d implausible final c_max %d", tr.Header.Rep, last.CMax)
		}
	}

	// Tracing is a side channel: the untraced twin must produce
	// byte-identical records.
	plain := spec
	plain.Trace = false
	status2, info2, raw2 := submit(t, ts, plain, "?wait=1")
	if status2 != http.StatusOK {
		t.Fatalf("untraced submit: status %d (%s)", status2, raw2)
	}
	if info2.Name != info.Name {
		t.Fatalf("trace flag changed the job name: %q vs %q", info2.Name, info.Name)
	}
	if a, b := recordBytes(t, ts, info.ID), recordBytes(t, ts, info2.ID); !bytes.Equal(a, b) {
		t.Fatalf("traced records diverged from untraced:\n%s\nvs\n%s", a, b)
	}
	if _, code := traceBody(t, ts, info2.ID); code != http.StatusNotFound {
		t.Fatalf("GET trace on untraced job: status %d, want 404", code)
	}

	// The traced rounds must have fed the duration histogram.
	fams := scrapeMetrics(t, ts)
	if got, ok := fams["pluralityd_round_duration_seconds"].Value("pluralityd_round_duration_seconds_count", nil); !ok || got < 1 {
		t.Fatalf("round_duration_seconds_count = %v, %v; want >= 1 after a traced job", got, ok)
	}
}

// TestTracedJobConcurrentStreams is the -race certification of the
// telemetry fan-out: while a traced async job runs, one client follows
// the record stream (?follow=1), another consumes the SSE event stream
// (which carries the sampled "round" events), and a third polls the
// trace endpoint — all concurrently with the workers publishing rounds
// and the coordinator folding finished traces.
func TestTracedJobConcurrentStreams(t *testing.T) {
	s, ts := boot(t, service.Options{Workers: 2, Executors: 2})
	defer func() { ts.Close(); s.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Subscribe to the SSE stream before submitting: the job's first
	// round event fires as soon as replicate 0 starts stepping, and a
	// subscription opened after submission could miss it.
	sseReq, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/events", nil)
	sseResp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	sse := bufio.NewScanner(sseResp.Body)
	for sse.Scan() { // handshake: the per-subscriber hello snapshot
		if strings.HasPrefix(sse.Text(), "event: hello") {
			break
		}
	}

	spec := service.JobSpec{Rule: "3majority", Engine: "sampled", N: 50_000, K: 3,
		Bias: "0", Seed: 33, Replicates: 8, MaxRounds: 40, Trace: true}
	status, info, raw := submit(t, ts, spec, "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("async traced submit: status %d (%s)", status, raw)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 3)

	// Follow the record stream until the job turns terminal.
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+info.ID+"/records?follow=1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errs <- err
			return
		}
		defer resp.Body.Close()
		n, err := io.Copy(io.Discard, resp.Body)
		if err != nil {
			errs <- err
			return
		}
		if n == 0 {
			errs <- io.ErrUnexpectedEOF
		}
	}()

	// Consume the SSE stream until the job's terminal event arrives.
	wg.Add(1)
	sawRound := make(chan bool, 1)
	go func() {
		defer wg.Done()
		round := false
		for sse.Scan() {
			line := sse.Text()
			if strings.HasPrefix(line, "event: round") {
				round = true
			}
			if strings.Contains(line, `"state":"done"`) && strings.Contains(line, `"id":"`+info.ID+`"`) {
				break
			}
		}
		sawRound <- round
	}()

	// Poll the trace endpoint while traces accumulate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, code := traceBody(t, ts, info.ID); code != http.StatusOK {
				errs <- io.ErrUnexpectedEOF
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	done := waitJob(t, ts, info.ID, "done", func(i service.JobInfo) bool { return i.State == service.StateDone })
	if done.Records != spec.Replicates {
		t.Fatalf("traced job finished with %d records, want %d", done.Records, spec.Replicates)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent stream: %v", err)
	}
	// The first traced round always publishes (throttling starts after
	// it), so the SSE stream must have carried at least one round event.
	if !<-sawRound {
		t.Error("SSE stream carried no round event for the traced job")
	}
	body, code := traceBody(t, ts, info.ID)
	if code != http.StatusOK {
		t.Fatalf("final GET trace: status %d", code)
	}
	traces, skipped, err := obs.ReadTraces(bytes.NewReader(body))
	if err != nil || skipped != 0 {
		t.Fatalf("parsing final traces: err=%v skipped=%d", err, skipped)
	}
	if len(traces) != spec.Replicates {
		t.Fatalf("got %d traces, want %d", len(traces), spec.Replicates)
	}
}
