package service_test

// Black-box tests of GET /metrics: every scrape must parse under the
// strict in-repo promtext parser, the lifecycle gauges must equal a
// walk of the store whenever the server is quiescent, and a crash
// resume must never double-count replicates (executed and resumed are
// separate counters that always sum to the work done exactly once).

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"plurality/internal/service"
	"plurality/internal/service/faultfs"
	"plurality/internal/service/promtext"
)

// scrapeMetrics fetches and certifies one scrape: it must parse under
// the strict parser and pass the family-level invariants.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]*promtext.Family {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d (%s)", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics: Content-Type %q lacks the text-format version", ct)
	}
	fams, err := promtext.Parse(raw)
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, raw)
	}
	if err := promtext.Validate(fams); err != nil {
		t.Fatalf("scrape fails validation: %v\n%s", err, raw)
	}
	return fams
}

// famValue reads one sample, treating an absent sample as 0 (labelled
// counter families only materialize label sets that were incremented).
func famValue(t *testing.T, fams map[string]*promtext.Family, family string, labels map[string]string) float64 {
	t.Helper()
	f, ok := fams[family]
	if !ok {
		t.Fatalf("scrape has no family %q", family)
	}
	v, _ := f.Get(labels)
	return v
}

// TestMetricsScrapeShape pins the exposition contract: every family the
// observability layer documents is present, correctly typed, and
// carries HELP text — on a fresh server and after traffic.
func TestMetricsScrapeShape(t *testing.T) {
	wantType := map[string]string{
		"pluralityd_jobs":                      "gauge",
		"pluralityd_jobs_finished_total":       "counter",
		"pluralityd_jobs_submitted_total":      "counter",
		"pluralityd_rejections_total":          "counter",
		"pluralityd_jobs_deleted_total":        "counter",
		"pluralityd_jobs_evicted_total":        "counter",
		"pluralityd_queue_depth":               "gauge",
		"pluralityd_queue_backlog_limit":       "gauge",
		"pluralityd_sync_slots_in_use":         "gauge",
		"pluralityd_sync_slots_limit":          "gauge",
		"pluralityd_workers":                   "gauge",
		"pluralityd_worker_busy_seconds_total": "counter",
		"pluralityd_worker_tasks_total":        "counter",
		"pluralityd_draining":                  "gauge",
		"pluralityd_replicates_total":          "counter",
		"pluralityd_replicates_resumed_total":  "counter",
		"pluralityd_rounds_total":              "counter",
		"pluralityd_replicate_rounds":          "histogram",
		"pluralityd_round_duration_seconds":    "histogram",
		"pluralityd_journal_fsyncs_total":      "counter",
		"pluralityd_journal_bytes_total":       "counter",
		"pluralityd_journal_repairs_total":     "counter",
		"pluralityd_sse_clients":               "gauge",
		"pluralityd_sse_events_total":          "counter",
		"pluralityd_sse_dropped_total":         "counter",
	}
	s, ts := boot(t, service.Options{Workers: 2})
	defer func() { ts.Close(); s.Close() }()

	check := func(when string) {
		fams := scrapeMetrics(t, ts)
		for name, typ := range wantType {
			f, ok := fams[name]
			if !ok {
				t.Fatalf("%s: scrape is missing family %q", when, name)
			}
			if f.Type != typ {
				t.Fatalf("%s: family %q has type %q, want %q", when, name, f.Type, typ)
			}
			if f.Help == "" {
				t.Fatalf("%s: family %q has no HELP text", when, name)
			}
		}
		for name := range fams {
			if _, ok := wantType[name]; !ok {
				t.Fatalf("%s: scrape exposes undocumented family %q", when, name)
			}
		}
	}
	check("fresh server")

	spec := service.JobSpec{N: 100_000, K: 8, Seed: 3, Replicates: 5, MaxRounds: 2000}
	status, info, raw := submit(t, ts, spec, "?wait=1")
	if status != http.StatusOK || info.State != service.StateDone {
		t.Fatalf("sync submit: status %d state %s (%s)", status, info.State, raw)
	}
	check("after traffic")

	// The one completed job must show up in the run counters: 5 executed
	// replicates on the multinomial engine (auto-resolved for 3majority),
	// none resumed, and a histogram count to match.
	fams := scrapeMetrics(t, ts)
	labels := map[string]string{"engine": "multinomial", "rule": "3majority"}
	if got := famValue(t, fams, "pluralityd_replicates_total", labels); got != 5 {
		t.Fatalf("replicates_total = %v, want 5", got)
	}
	if got := famValue(t, fams, "pluralityd_replicates_resumed_total", labels); got != 0 {
		t.Fatalf("replicates_resumed_total = %v, want 0", got)
	}
	if got, ok := fams["pluralityd_replicate_rounds"].Value("pluralityd_replicate_rounds_count", nil); !ok || got != 5 {
		t.Fatalf("replicate_rounds_count = %v, %v; want 5", got, ok)
	}
	if got := famValue(t, fams, "pluralityd_jobs_submitted_total", map[string]string{"path": "sync"}); got != 1 {
		t.Fatalf("jobs_submitted_total{path=sync} = %v, want 1", got)
	}
	// The pool utilization counters are cumulative over the process-wide
	// shared pool, so other tests may have contributed — but the 5
	// replicates just executed must be included.
	var poolTasks float64
	for _, s := range fams["pluralityd_worker_tasks_total"].Samples {
		poolTasks += s.Value
	}
	if poolTasks < 5 {
		t.Fatalf("sum of worker_tasks_total = %v, want >= 5", poolTasks)
	}
	// An untraced job must not feed the round-duration histogram.
	if got, ok := fams["pluralityd_round_duration_seconds"].Value("pluralityd_round_duration_seconds_count", nil); !ok || got != 0 {
		t.Fatalf("round_duration_seconds_count = %v, %v; want 0 without traced jobs", got, ok)
	}
}

// TestMetricsGaugeStoreConsistency runs a randomized workload —
// sync and async submissions, cancellations, deletions — and asserts
// that once the server quiesces, the lifecycle gauges equal a walk of
// the job store and the monotone counters equal the history the test
// drove. Seeded: failures reproduce.
func TestMetricsGaugeStoreConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, ts := boot(t, service.Options{Workers: 2, Executors: 2, Backlog: 64})
	defer func() { ts.Close(); s.Close() }()

	const jobs = 18
	var ids []string
	wantSync, wantAsync, wantDeleted := 0, 0, 0
	wantRecords := 0
	for i := 0; i < jobs; i++ {
		spec := service.JobSpec{N: 50_000, K: 2 + rng.Intn(7),
			Seed: uint64(100 + i), Replicates: 1 + rng.Intn(4), MaxRounds: 500}
		if rng.Intn(3) == 0 {
			status, info, raw := submit(t, ts, spec, "?wait=1")
			if status != http.StatusOK {
				t.Fatalf("sync submit %d: status %d (%s)", i, status, raw)
			}
			wantSync++
			ids = append(ids, info.ID)
		} else {
			status, info, raw := submit(t, ts, spec, "?wait=0")
			if status != http.StatusAccepted {
				t.Fatalf("async submit %d: status %d (%s)", i, status, raw)
			}
			wantAsync++
			ids = append(ids, info.ID)
			if rng.Intn(4) == 0 {
				resp, err := http.Post(ts.URL+"/v1/jobs/"+info.ID+"/cancel", "", nil)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
			}
		}
	}
	// Quiesce: every job terminal. Then thin the store with a few deletes.
	for _, id := range ids {
		info := waitJob(t, ts, id, "terminal", func(i service.JobInfo) bool { return i.State.Terminal() })
		wantRecords += info.Records
	}
	for i, id := range ids {
		if i%5 != 0 {
			continue
		}
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("DELETE %s: status %d", id, resp.StatusCode)
		}
		wantDeleted++
	}

	// The store walk is the ground truth the gauges must equal.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []service.JobInfo `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	storeCount := map[service.State]int{}
	for _, j := range listing.Jobs {
		storeCount[j.State]++
	}

	fams := scrapeMetrics(t, ts)
	states := []service.State{service.StateQueued, service.StateRunning,
		service.StateDone, service.StateFailed, service.StateCancelled}
	for _, st := range states {
		got := famValue(t, fams, "pluralityd_jobs", map[string]string{"state": string(st)})
		if got != float64(storeCount[st]) {
			t.Errorf("pluralityd_jobs{state=%s} = %v, store has %d", st, got, storeCount[st])
		}
	}
	if got := famValue(t, fams, "pluralityd_jobs_submitted_total", map[string]string{"path": "sync"}); got != float64(wantSync) {
		t.Errorf("jobs_submitted_total{path=sync} = %v, want %d", got, wantSync)
	}
	if got := famValue(t, fams, "pluralityd_jobs_submitted_total", map[string]string{"path": "async"}); got != float64(wantAsync) {
		t.Errorf("jobs_submitted_total{path=async} = %v, want %d", got, wantAsync)
	}
	if got := famValue(t, fams, "pluralityd_jobs_deleted_total", nil); got != float64(wantDeleted) {
		t.Errorf("jobs_deleted_total = %v, want %d", got, wantDeleted)
	}
	// Finished counters are monotone history: deletion must not erase them.
	var finished float64
	for _, st := range []service.State{service.StateDone, service.StateFailed, service.StateCancelled} {
		finished += famValue(t, fams, "pluralityd_jobs_finished_total", map[string]string{"state": string(st)})
	}
	if finished != float64(jobs) {
		t.Errorf("sum of jobs_finished_total = %v, want %d", finished, jobs)
	}
	// Every record that ever cleared the sink was counted exactly once,
	// deletions included; no journal is configured so nothing is resumed.
	var executed, resumed float64
	for _, s := range fams["pluralityd_replicates_total"].Samples {
		executed += s.Value
	}
	for _, s := range fams["pluralityd_replicates_resumed_total"].Samples {
		resumed += s.Value
	}
	if executed != float64(wantRecords) || resumed != 0 {
		t.Errorf("replicates executed=%v resumed=%v, want %d and 0", executed, resumed, wantRecords)
	}
}

// TestMetricsNoDoubleCountAfterCrash is the crash/replay half of the
// accounting contract: kill the daemon mid-job, restart on the same
// disk image, and require executed + resumed replicates to sum to the
// job's replicate count exactly — the journaled prefix is adopted, not
// re-counted.
func TestMetricsNoDoubleCountAfterCrash(t *testing.T) {
	spec := resumableSpec() // engine "sampled", rule "3majority", 12 replicates
	fs := faultfs.New()
	s1, ts1 := boot(t, durableOpts(fs))
	status, info, raw := submit(t, ts1, spec, "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", status, raw)
	}
	waitJob(t, ts1, info.ID, ">=3 records", func(i service.JobInfo) bool { return i.Records >= 3 })
	post := fs.Crash()
	ts1.Close()
	s1.Close()

	s2, ts2 := boot(t, durableOpts(post))
	defer func() { ts2.Close(); s2.Close() }()
	done := waitJob(t, ts2, info.ID, "done", func(i service.JobInfo) bool { return i.State == service.StateDone })
	if done.Records != spec.Replicates {
		t.Fatalf("resumed job finished with %d records, want %d", done.Records, spec.Replicates)
	}

	fams := scrapeMetrics(t, ts2)
	labels := map[string]string{"engine": "sampled", "rule": "3majority"}
	executed := famValue(t, fams, "pluralityd_replicates_total", labels)
	resumed := famValue(t, fams, "pluralityd_replicates_resumed_total", labels)
	if executed+resumed != float64(spec.Replicates) {
		t.Fatalf("executed (%v) + resumed (%v) = %v, want exactly %d: a resumed replicate was double-counted or lost",
			executed, resumed, executed+resumed, spec.Replicates)
	}
	// The crash landed after >=3 records with SyncEvery=2, so at least 2
	// were durable and must have been adopted rather than re-executed.
	if resumed < 2 {
		t.Fatalf("resumed = %v, want >= 2 (journaled prefix was re-executed)", resumed)
	}
	// The restarted process's terminal counter must count the resumed
	// job's completion once (it performed the transition) even though the
	// job was submitted by the previous process.
	if got := famValue(t, fams, "pluralityd_jobs_finished_total", map[string]string{"state": "done"}); got != 1 {
		t.Fatalf("jobs_finished_total{state=done} = %v, want 1", got)
	}
}
