package service

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/graph"
	"plurality/internal/mc"
	"plurality/internal/obs"
	"plurality/internal/rng"
	"plurality/internal/topo"
)

// Resource caps enforced by JobSpec.Validate. They bound what a single
// request can pin in memory or burn in CPU, so a hostile or typo'd spec
// is rejected at admission instead of wedging the shared worker pool.
const (
	// MaxK bounds the number of colors (the engines hold O(k) state per
	// replicate; the alias tables are rebuilt per round).
	MaxK = 4096
	// MaxReplicates bounds the Monte Carlo fan-out of one job.
	MaxReplicates = 100_000
	// MaxMaxRounds bounds the per-replicate round budget.
	MaxMaxRounds = 10_000_000
	// MaxNExact bounds n for the O(k)-per-round count-based engines
	// (multinomial, markov, undecided): n only enters the arithmetic, so
	// the bound is generous.
	MaxNExact = 1_000_000_000
	// MaxNSampled bounds n for the O(n)-per-round agent-level engines
	// (sampled, population).
	MaxNSampled = 100_000_000
	// MaxNGraph bounds n for the graph engine on materialized families,
	// which hold the full adjacency in RAM; the per-family adjacency memory
	// is capped separately by topo.MaxAdjEntries inside the registry
	// validation. The CSR-sharded engine sustains rounds at this scale in
	// well under 2 GB.
	MaxNGraph = 10_000_000
	// MaxNGraphImplicit bounds n for the graph engine on implicit families
	// (topo.IsImplicit: complete, cycle, star, torus, hypercube), whose
	// neighbors are computed rather than stored — the only per-agent memory
	// is the color arrays, so the cap matches the exact engines'.
	MaxNGraphImplicit = 1_000_000_000
	// DefaultMaxRounds is applied when a spec omits max_rounds.
	DefaultMaxRounds = 200_000
)

// JobSpec is the wire format of one simulation job: the same knobs the
// cmd/plurality and cmd/sweep CLIs expose, as a JSON object. The zero
// value of every optional field means "default" (see Normalize).
//
// Determinism contract: the per-replicate records of a job are a pure
// function of the spec — replicate i runs on rng.New(mc.RepSeeds(Seed,
// Replicates)[i]) and nothing else — so resubmitting a spec yields
// byte-identical JSONL regardless of the server's worker count, executor
// count, or scheduling.
type JobSpec struct {
	// Rule is the dynamics: 3majority | 3majority-utie | median | polling |
	// 2choices | hplurality:H | 2choices-keepown | undecided.
	Rule string `json:"rule,omitempty"`
	// Engine is the simulation engine: auto | multinomial | sampled |
	// graph | population. The stateful rules (2choices-keepown, undecided)
	// carry their own engines and require auto.
	Engine string `json:"engine,omitempty"`
	// Graph is the topology spec for Engine == "graph", resolved through
	// the internal/topo registry (topo.FamilyUsages lists the families:
	// complete, cycle, star, torus[:DIMS], hypercube, regular:D, gnp:P,
	// smallworld:K:BETA, ba:M, sbm:B:PIN:POUT, barbell:D).
	Graph string `json:"graph,omitempty"`
	// GraphSeed seeds the topology generator for Engine == "graph". All
	// replicates of a job share the one graph built from it (quenched
	// randomness: the Monte Carlo averages over process noise on a fixed
	// structure). Zero means "derive from Seed" (see Normalize).
	GraphSeed uint64 `json:"graph_seed,omitempty"`
	// N is the number of agents.
	N int64 `json:"n"`
	// K is the number of colors.
	K int `json:"k"`
	// Bias is the initial additive bias toward color 0: a non-negative
	// integer, or "auto" for the Corollary 1 threshold.
	Bias string `json:"bias,omitempty"`
	// Replicates is the number of independent Monte Carlo executions.
	Replicates int `json:"replicates,omitempty"`
	// Seed is the base seed all replicate seeds derive from.
	Seed uint64 `json:"seed"`
	// MaxRounds is the per-replicate round budget.
	MaxRounds int `json:"max_rounds,omitempty"`
	// Sampler selects the graph engine's rng draw discipline: "default"
	// (the per-draw byte contract pinned by the golden traces) or "batch"
	// (bulk Uint64-block generation — deterministic, certified by its own
	// golden, but not draw-compatible with default). Only meaningful for
	// Engine == "graph".
	Sampler string `json:"sampler,omitempty"`
	// Trace enables run-level telemetry capture: the first replicates of
	// the job run with an obs.Recorder attached and their JSONL traces are
	// served by GET /v1/jobs/{id}/trace. Tracing never influences the
	// records (observers consume zero rng — see internal/obs), so Trace is
	// deliberately excluded from Name(): a traced job's record stream is
	// byte-identical to the untraced submission. Traces live in memory
	// only — they are not journaled, and a crash-resumed job does not
	// recreate the prefix it adopted.
	Trace bool `json:"trace,omitempty"`
}

// Normalize fills defaulted fields in place. It is idempotent and must be
// called before Validate.
func (s *JobSpec) Normalize() {
	if s.Rule == "" {
		s.Rule = "3majority"
	}
	if s.Engine == "" {
		s.Engine = "auto"
	}
	if s.Graph == "" {
		s.Graph = "complete"
	}
	if s.GraphSeed == 0 {
		s.GraphSeed = s.Seed
	}
	if s.Bias == "" {
		s.Bias = "auto"
	}
	if s.Replicates == 0 {
		s.Replicates = 1
	}
	if s.MaxRounds == 0 {
		s.MaxRounds = DefaultMaxRounds
	}
	if s.Sampler == "" {
		s.Sampler = "default"
	}
}

// statefulEngines maps the rules that carry their own engine and accept
// only Engine == "auto".
var statefulEngines = map[string]bool{"undecided": true, "2choices-keepown": true}

// resolveEngine maps Engine == "auto" to the concrete engine for the rule
// and checks rule/engine compatibility.
func (s *JobSpec) resolveEngine() (string, error) {
	if statefulEngines[s.Rule] {
		if s.Engine != "auto" {
			return "", fmt.Errorf("rule %q carries its own engine; use engine \"auto\"", s.Rule)
		}
		return s.Rule, nil
	}
	rule, err := dynamics.ParseRule(s.Rule)
	if err != nil {
		return "", err
	}
	_, isProb := rule.(dynamics.ProbModel)
	eng := s.Engine
	if eng == "auto" {
		if isProb {
			eng = "multinomial"
		} else {
			eng = "sampled"
		}
	}
	switch eng {
	case "multinomial":
		if !isProb {
			return "", fmt.Errorf("rule %q has no closed-form adoption probabilities; use engine \"sampled\"", s.Rule)
		}
	case "sampled", "population":
	case "graph":
		if err := s.checkGraph(); err != nil {
			return "", err
		}
	default:
		return "", fmt.Errorf("unknown engine %q", s.Engine)
	}
	return eng, nil
}

// graphMaxN is the n cap for the spec's graph family: implicit families
// carry no adjacency and get the generous cap; anything else (including an
// unknown family — topo.Validate reports those) gets the materialized cap.
func (s *JobSpec) graphMaxN() int64 {
	if implicit, err := topo.IsImplicit(s.Graph); err == nil && implicit {
		return MaxNGraphImplicit
	}
	return MaxNGraph
}

// checkGraph validates the Graph field through the topo registry so a bad
// topology is a 400, not a crash. The n cap comes first: it bounds every
// number the registry's constant-time validation arithmetic sees, so a
// hostile spec can neither overflow nor spin. A registry size-cap
// rejection (topo.ErrTooLarge) gets a remediation hint appended — the
// client asked for something well-formed that simply does not fit in RAM.
func (s *JobSpec) checkGraph() error {
	if maxN := s.graphMaxN(); s.N < 1 || s.N > maxN {
		return fmt.Errorf("graph engine needs n in [1, %d] for family %q, got %d", maxN, s.Graph, s.N)
	}
	if err := topo.Validate(s.Graph, s.N); err != nil {
		if errors.Is(err, topo.ErrTooLarge) {
			return fmt.Errorf("%w (hint: use an implicit family — complete, cycle, star, torus, hypercube — which materializes nothing, or build the graph to disk and run it with mmap mode via cmd/plurality -graph-mode mmap)", err)
		}
		return err
	}
	return nil
}

// biasValue parses the Bias field; "auto" resolves to the Corollary 1
// threshold clamped to n (tiny populations can sit below the threshold).
func (s *JobSpec) biasValue() (int64, error) {
	if s.Bias == "auto" {
		b := core.Corollary1Bias(s.N, s.K, 1.0)
		if b > s.N {
			b = s.N
		}
		return b, nil
	}
	v, err := strconv.ParseInt(s.Bias, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad bias %q (want \"auto\" or an integer)", s.Bias)
	}
	if v < 0 || v > s.N {
		return 0, fmt.Errorf("bias %d outside [0, n=%d]", v, s.N)
	}
	return v, nil
}

// Validate checks the (normalized) spec against the engine and graph
// preconditions and the service resource caps. All problems are reported
// at once, joined into one error.
func (s *JobSpec) Validate() error {
	var errs []error
	if s.N < 1 {
		errs = append(errs, fmt.Errorf("n must be >= 1, got %d", s.N))
	}
	if s.K < 2 || s.K > MaxK {
		errs = append(errs, fmt.Errorf("k must be in [2, %d], got %d", MaxK, s.K))
	}
	if s.Replicates < 1 || s.Replicates > MaxReplicates {
		errs = append(errs, fmt.Errorf("replicates must be in [1, %d], got %d", MaxReplicates, s.Replicates))
	}
	if s.MaxRounds < 1 || s.MaxRounds > MaxMaxRounds {
		errs = append(errs, fmt.Errorf("max_rounds must be in [1, %d], got %d", MaxMaxRounds, s.MaxRounds))
	}
	if s.N >= 1 {
		if _, err := s.biasValue(); err != nil {
			errs = append(errs, err)
		}
	}
	sampler, samplerErr := engine.ParseSampler(s.Sampler)
	if samplerErr != nil {
		errs = append(errs, samplerErr)
	}
	eng, err := s.resolveEngine()
	if err != nil {
		errs = append(errs, err)
	} else if samplerErr == nil && sampler == engine.SamplerBatch && eng != "graph" {
		errs = append(errs, fmt.Errorf("sampler \"batch\" applies only to the graph engine, not %q", eng))
	} else if s.N >= 1 {
		maxN := int64(MaxNExact)
		switch eng {
		case "sampled", "population":
			maxN = MaxNSampled
		case "graph":
			maxN = s.graphMaxN()
		}
		if s.N > maxN {
			errs = append(errs, fmt.Errorf("n = %d exceeds the %s-engine cap %d", s.N, eng, maxN))
		}
	}
	if s.K >= 2 && s.N >= 1 && int64(s.K) > s.N {
		errs = append(errs, fmt.Errorf("k = %d exceeds n = %d", s.K, s.N))
	}
	return errors.Join(errs...)
}

// Name is the canonical job identifier stored in every mc.Record. It
// covers every spec field that influences the records, so two JSONL
// streams with equal names are byte-identical.
func (s *JobSpec) Name() string {
	eng, err := s.resolveEngine()
	if err != nil {
		eng = "invalid"
	}
	name := fmt.Sprintf("%s/%s/n=%d/k=%d/bias=%s/rounds=%d/seed=%d",
		s.Rule, eng, s.N, s.K, s.Bias, s.MaxRounds, s.Seed)
	if eng == "graph" {
		// The generator seed is part of the identity: the same spec with
		// a different graph_seed runs on a different quenched topology.
		name = fmt.Sprintf("%s/graph=%s/gseed=%d", name, s.Graph, s.GraphSeed)
		// The relaxed sampler changes the per-replicate rng streams, so it
		// is part of the identity too; the default is omitted to keep
		// pre-existing job names (and resumable journals) stable.
		if sampler, err := engine.ParseSampler(s.Sampler); err == nil && sampler == engine.SamplerBatch {
			name += "/sampler=batch"
		}
	}
	return name
}

// Cost estimates the total work of the job in "agent updates" — the unit
// the sync/async routing threshold is expressed in. Count-based engines
// advance a whole round in O(k); agent-based engines touch all n agents.
// The product saturates at MaxInt64 instead of wrapping, so a huge (but
// individually-capped) spec can never route onto the synchronous path.
func (s *JobSpec) Cost() int64 {
	perRound := int64(s.K)
	if eng, err := s.resolveEngine(); err == nil && (eng == "sampled" || eng == "graph" || eng == "population") {
		perRound = s.N
	}
	cost := float64(s.Replicates) * float64(s.MaxRounds) * float64(perRound)
	if cost >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(cost)
}

// buildEngine constructs the replicate's engine. The spec must have
// passed Validate; r is the replicate's private generator (graph layout
// and engine seeds draw from it, keeping the replicate a pure function of
// its seed), and g is the job's shared quenched topology (nil for
// non-graph engines).
func (s *JobSpec) buildEngine(init colorcfg.Config, g graph.Graph, r *rng.Rand) engine.Engine {
	if s.Rule == "undecided" {
		return engine.NewUndecidedExact(init)
	}
	if s.Rule == "2choices-keepown" {
		return engine.NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, init)
	}
	rule, err := dynamics.ParseRule(s.Rule)
	if err != nil {
		panic(fmt.Sprintf("service: buildEngine on unvalidated spec: %v", err))
	}
	eng, err := s.resolveEngine()
	if err != nil {
		panic(fmt.Sprintf("service: buildEngine on unvalidated spec: %v", err))
	}
	switch eng {
	case "multinomial":
		return engine.NewCliqueMultinomial(rule, init)
	case "sampled":
		// Replicates already fan out across the pool; keep the agent-level
		// engine single-worker per replicate (matches cmd/sweep).
		return engine.NewCliqueSampled(rule, init, 1, r.Uint64())
	case "population":
		return engine.NewPopulation(rule, init)
	case "graph":
		sampler, err := engine.ParseSampler(s.Sampler)
		if err != nil {
			panic(fmt.Sprintf("service: buildEngine on unvalidated spec: %v", err))
		}
		return engine.NewGraphEngineOpts(rule, g, init, 1, r.Uint64(), r,
			engine.GraphOpts{Sampler: sampler})
	}
	panic(fmt.Sprintf("service: unreachable engine %q", eng))
}

// mustGraph builds the validated topology from GraphSeed. CSR structures
// are read-only during stepping, so one instance is safely shared by all
// concurrently running replicates of a job.
func (s *JobSpec) mustGraph() graph.Graph {
	g, err := topo.Build(s.Graph, s.N, rng.New(s.GraphSeed))
	if err != nil {
		panic(fmt.Sprintf("service: mustGraph on unvalidated spec: %v", err))
	}
	return g
}

// MCJob compiles the spec into the mc.Job executed on the worker pool.
// The spec must have passed Validate.
func (s *JobSpec) MCJob() mc.Job {
	return s.mcJob(nil)
}

// MCJobTraced is MCJob with per-replicate telemetry: each replicate asks
// obsFor for an observer keyed by its private seed and, when one is
// returned, runs with it attached. Because observers consume zero rng
// (the obs.Observer contract), the records are byte-identical to
// MCJob's — only the side-channel telemetry differs.
func (s *JobSpec) MCJobTraced(obsFor func(seed uint64) obs.Observer) mc.Job {
	return s.mcJob(obsFor)
}

func (s *JobSpec) mcJob(obsFor func(seed uint64) obs.Observer) mc.Job {
	spec := *s // detach from the caller's copy
	bias, err := spec.biasValue()
	if err != nil {
		panic(fmt.Sprintf("service: MCJob on unvalidated spec: %v", err))
	}
	job := mc.Job{
		Name:       spec.Name(),
		Seed:       spec.Seed,
		Replicates: spec.Replicates,
		MaxRounds:  spec.MaxRounds,
	}
	// The quenched topology is built once, lazily (on the first replicate
	// that needs it, off the admission path), and shared by every
	// replicate: graph generation can dominate a short job, and the
	// structure is immutable during stepping.
	var sharedGraph func() graph.Graph
	if eng, err := spec.resolveEngine(); err == nil && eng == "graph" {
		sharedGraph = sync.OnceValue(spec.mustGraph)
	}
	job.New = func(seed uint64) mc.Run {
		maxRounds := job.MaxRounds
		return func() mc.Record {
			r := rng.New(seed)
			init := colorcfg.Biased(spec.N, spec.K, bias)
			var g graph.Graph
			if sharedGraph != nil {
				g = sharedGraph()
			}
			eng := spec.buildEngine(init, g, r)
			defer eng.Close()
			opts := core.Options{MaxRounds: maxRounds, Rand: r}
			if obsFor != nil {
				opts.Observer = obsFor(seed)
			}
			res := core.Run(eng, opts)
			return mc.Record{Rounds: res.Rounds, Success: res.WonInitialPlurality}
		}
	}
	return job
}
