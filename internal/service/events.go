package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"plurality/internal/mc"
)

// The SSE broadcast hub behind GET /v1/events: job lifecycle events and
// throttled per-job progress, live-streamed to any number of clients.
//
// Delivery contract:
//
//   - every broadcast event carries a globally ordered sequence number,
//     assigned under the hub lock, so two concurrent clients observe
//     identical ordered event sequences (modulo where each joined);
//   - each client has a bounded send buffer; a client that stops
//     draining it is dropped — its channel is closed and the drop is
//     counted in pluralityd_sse_dropped_total — instead of ever
//     blocking the serving path (publish never waits on a client);
//   - on drain/shutdown every client receives a terminal "shutdown"
//     event and its stream ends cleanly.
//
// The dashboard served at GET / renders entirely off this stream.

// Event is one SSE payload (the data: line, JSON-encoded). Type is one
// of:
//
//	hello     initial snapshot sent to a new subscriber (Jobs, Backlog)
//	job       a job changed lifecycle state (Job holds the snapshot)
//	progress  a running job completed replicates (throttled; Done/Total)
//	round     sampled round-level progress of a traced job's replicate 0
//	          (throttled; Round/Bias/CMax — see trace.go)
//	deleted   a job was deleted (ID)
//	shutdown  the server is draining; the stream ends after this event
type Event struct {
	// Seq is the global broadcast sequence number. The hello snapshot is
	// Seq 0: it is per-subscriber, not part of the broadcast order.
	Seq  int64  `json:"seq"`
	Type string `json:"type"`
	// Job rides on "job" events: the same snapshot the status API serves.
	Job *JobInfo `json:"job,omitempty"`
	// Jobs rides on the "hello" snapshot.
	Jobs []JobInfo `json:"jobs,omitempty"`
	// ID names the job on "progress" and "deleted" events.
	ID string `json:"id,omitempty"`
	// Done/Total are the replicates completed so far (resumed prefix
	// included) and the job's replicate count, on "progress" events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Rounds is the round count of the replicate that triggered this
	// progress event (throughput numerator for rounds/sec).
	Rounds int `json:"rounds,omitempty"`
	// Round/Bias/CMax ride on "round" events: the completed round number
	// and convergence state of a traced job's replicate 0.
	Round int   `json:"round,omitempty"`
	Bias  int64 `json:"bias,omitempty"`
	CMax  int64 `json:"c_max,omitempty"`
	// Engine/Rule label progress events for per-engine throughput.
	Engine string `json:"engine,omitempty"`
	Rule   string `json:"rule,omitempty"`
	// Backlog is the async queue depth at publish time.
	Backlog int `json:"backlog"`
}

// subscriber is one connected client: a buffered channel of
// pre-rendered SSE frames.
type subscriber struct {
	ch chan []byte
}

// hub fans broadcast events out to the subscribers.
type hub struct {
	met    *serverMetrics
	buffer int

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	seq    int64
	closed bool
}

func newHub(buffer int, met *serverMetrics) *hub {
	return &hub{met: met, buffer: buffer, subs: map[*subscriber]struct{}{}}
}

// frame renders one SSE frame. The id: field carries the sequence
// number so a reconnecting client can detect the gap.
func frame(ev Event) []byte {
	data, err := json.Marshal(ev)
	if err != nil {
		// Event is a plain struct of encodable fields; this cannot fail.
		panic(fmt.Sprintf("service: encoding SSE event: %v", err))
	}
	return []byte(fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data))
}

// subscribe registers a new client. It returns nil once the hub has
// shut down (the caller then emits the terminal shutdown frame itself).
func (h *hub) subscribe() *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	sub := &subscriber{ch: make(chan []byte, h.buffer)}
	h.subs[sub] = struct{}{}
	return sub
}

// unsubscribe removes a client (no-op if the hub already dropped it).
func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, sub)
}

// clients reports the current subscriber count (a scrape-time gauge).
func (h *hub) clients() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// publish assigns the event its sequence number and offers it to every
// subscriber without ever blocking: a subscriber whose buffer is full
// is dropped on the spot (channel closed, so its handler ends the
// response after writing what it already has).
func (h *hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev.Seq = h.seq
	b := frame(ev)
	h.met.sseEvent()
	for sub := range h.subs {
		select {
		case sub.ch <- b:
		default:
			delete(h.subs, sub)
			close(sub.ch)
			h.met.sseDrop()
		}
	}
}

// shutdown broadcasts the terminal shutdown event and closes every
// subscriber channel; a buffered subscriber receives its queued frames
// and then the shutdown frame before its stream ends. Idempotent.
func (h *hub) shutdown() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	h.seq++
	b := frame(Event{Seq: h.seq, Type: "shutdown"})
	h.met.sseEvent()
	for sub := range h.subs {
		select {
		case sub.ch <- b:
		default:
			// A full buffer loses the marker; the closed channel still ends
			// the stream.
			h.met.sseDrop()
		}
		close(sub.ch)
		delete(h.subs, sub)
	}
}

// publishJob broadcasts a job's current lifecycle snapshot.
func (s *Server) publishJob(j *jobState) {
	info := j.info()
	s.hub.publish(Event{Type: "job", Job: &info, Backlog: s.queue.Backlog()})
}

// progressStride is the throttle for per-job progress events: at most
// ~64 progress events per job (plus the final one), so a 100k-replicate
// job cannot flood the stream.
func progressStride(total int) int {
	stride := total / 64
	if stride < 1 {
		stride = 1
	}
	return stride
}

// jobProgress builds the mc.RunOpts.OnProgress hook for one job: every
// newly executed replicate feeds the throughput counters; every
// stride-th (and the final) replicate additionally broadcasts a
// progress event.
func (s *Server) jobProgress(j *jobState) func(rec mc.Record, done, total int) {
	stride := progressStride(j.spec.Replicates)
	return func(rec mc.Record, done, total int) {
		s.met.replicateDone(j.engLabel, j.ruleLabel, rec.Rounds)
		if done%stride == 0 || done == total {
			s.hub.publish(Event{
				Type:    "progress",
				ID:      j.id,
				Done:    done,
				Total:   total,
				Rounds:  rec.Rounds,
				Engine:  j.engLabel,
				Rule:    j.ruleLabel,
				Backlog: s.queue.Backlog(),
			})
		}
	}
}

// handleEvents serves GET /v1/events: an SSE stream of the hub's
// broadcast, prefixed by a per-subscriber hello snapshot of the current
// job table. The stream ends when the client goes away, when the
// subscriber is dropped for not keeping up, or — via the shutdown
// event — when the server drains.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	sub := s.hub.subscribe()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if sub == nil {
		// Hub already shut down (drain raced the subscription): emit the
		// terminal marker so the client sees an orderly end, not a cut.
		_, _ = w.Write(frame(Event{Type: "shutdown"}))
		fl.Flush()
		return
	}
	defer s.hub.unsubscribe(sub)
	// The snapshot is rendered after subscribing, so no transition can
	// fall between snapshot and stream; an event may appear in both,
	// which consumers absorb because job events carry full snapshots.
	_, _ = w.Write(frame(Event{Type: "hello", Jobs: s.store.list(), Backlog: s.queue.Backlog()}))
	fl.Flush()
	for {
		select {
		case b, ok := <-sub.ch:
			if !ok {
				return // dropped as a slow consumer, or hub shutdown
			}
			if _, err := w.Write(b); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
