package service_test

// Scrape-cost benchmark and allocation audit for GET /metrics: the
// exposition is rebuilt per scrape from the registry and the live
// gauges, so this pins what a Prometheus server at a typical 15s
// interval costs pluralityd. The measured number (and allocs/op) is
// recorded in BENCH_BASELINE.txt; the CI bench job watches it for
// regressions like any other benchmark.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"plurality/internal/service"
)

// BenchmarkMetricsScrape measures one full /metrics render through the
// handler — registry encode, worker-utilization snapshot, and the
// response write — on a server that has seen real traffic, so every
// labelled family is materialized.
func BenchmarkMetricsScrape(b *testing.B) {
	s, err := service.New(service.Options{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Seed the registry: one traced sync job materializes the per-engine
	// counters, both histograms, and the submission/finish families.
	spec := service.JobSpec{Rule: "3majority", Engine: "sampled", N: 10_000, K: 3,
		Bias: "0", Seed: 7, Replicates: 3, MaxRounds: 20, Trace: true}
	body, _ := json.Marshal(spec)
	sub := httptest.NewRecorder()
	s.ServeHTTP(sub, httptest.NewRequest(http.MethodPost, "/v1/jobs?wait=1", bytes.NewReader(body)))
	if sub.Code != http.StatusOK {
		b.Fatalf("seed job: status %d (%s)", sub.Code, sub.Body)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if w.Code != http.StatusOK {
			b.Fatalf("scrape: status %d", w.Code)
		}
	}
}
