package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"plurality/internal/mc"
)

// The durable job journal. Everything the daemon must not forget lives
// in two kinds of append-only JSONL files under the data directory:
//
//	<data-dir>/journal.jsonl      the meta journal: one entry per job
//	                              submission, state transition, delete,
//	                              and clean-shutdown marker
//	<data-dir>/records/<id>.jsonl the job's per-replicate records, in
//	                              the exact mc JSONL format — so the mc
//	                              resume machinery is the replay reader
//
// Durability contract (see DESIGN.md §9):
//
//   - Submissions and terminal transitions are fsynced immediately; the
//     "running" transition is appended without an fsync (losing it only
//     replays the job as queued, which is harmless).
//   - Record appends are fsynced every syncEvery records, and always
//     before the job's terminal meta entry — a journaled "done" implies
//     every record is on stable storage.
//   - A torn trailing write in any file (crash mid-append, OS crash
//     losing an unsynced tail) is recovered by truncating to the last
//     valid line on replay; the lost suffix is re-executed
//     deterministically, so the final record stream is byte-identical
//     to a crash-free run.
//   - Transient write failures are retried with exponential backoff;
//     each retry first repairs the file (truncate to the last known
//     good offset, reopen) so a partial write never leaves interior
//     garbage. Only after the whole retry budget is spent does the
//     error surface — latching the job to failed.

// File is one append-only journal file: the write/sync/close surface a
// fault-injection layer (internal/service/faultfs) can interpose on.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the journal's filesystem seam. The default implementation is
// the real filesystem (OSFS); tests swap in faulty ones.
type FS interface {
	MkdirAll(dir string) error
	// OpenAppend opens path for appending, creating it if missing.
	OpenAppend(path string) (File, error)
	// ReadFile reads the whole file; a missing file returns an error
	// satisfying os.IsNotExist.
	ReadFile(path string) ([]byte, error)
	Truncate(path string, size int64) error
	Remove(path string) error
}

// OSFS returns the real-filesystem FS.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }
func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (osFS) ReadFile(path string) ([]byte, error)   { return os.ReadFile(path) }
func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }
func (osFS) Remove(path string) error               { return os.Remove(path) }

// journalEntry is one meta-journal line.
type journalEntry struct {
	// Type is "submit", "state", "delete" or "shutdown".
	Type string `json:"type"`
	// ID is the job the entry is about (absent on shutdown markers).
	ID string `json:"id,omitempty"`
	// Spec rides on submit entries: the canonical, normalized job spec.
	Spec *JobSpec `json:"spec,omitempty"`
	// State rides on state entries.
	State State `json:"state,omitempty"`
	// Error carries the failure/cancellation detail on terminal states.
	Error string `json:"error,omitempty"`
}

// jobID pins the set of ids the journal will touch the filesystem for:
// ids are server-generated ("j1", "j2", …), and replay refuses anything
// else so a tampered journal can never name a path outside records/.
var jobID = regexp.MustCompile(`^j[1-9][0-9]*$`)

// errJournalClosed latches appends attempted after shutdown.
var errJournalClosed = errors.New("service: journal is closed")

// retryPolicy bounds the transient-failure retries of journal writes.
type retryPolicy struct {
	attempts int
	backoff  time.Duration
}

// do runs op up to attempts times; after each failure it calls repair
// (fix the file so the retry starts from a clean state) and sleeps an
// exponentially growing backoff. The last error is returned once the
// budget is spent.
func (p retryPolicy) do(op func() error, repair func()) error {
	var err error
	backoff := p.backoff
	for a := 0; a < p.attempts; a++ {
		if a > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = op(); err == nil {
			return nil
		}
		if repair != nil {
			repair()
		}
	}
	return err
}

// recAppender is one job's open records file.
type recAppender struct {
	mu      sync.Mutex
	f       File
	path    string
	valid   int64 // bytes of complete, well-formed lines known to be on disk
	pending int   // appends since the last Sync
	// broken marks a failed repair (f is closed, the file may carry a
	// torn tail); the next append must re-repair before writing.
	broken bool
}

// repair truncates the records file to its last known-good offset and
// reopens the append handle. The caller holds ra.mu and has already
// closed the old handle.
func (ra *recAppender) repair(fs FS) error {
	if err := fs.Truncate(ra.path, ra.valid); err != nil {
		return err
	}
	f, err := fs.OpenAppend(ra.path)
	if err != nil {
		return err
	}
	ra.f = f
	return nil
}

// journal is the daemon's durable job store.
type journal struct {
	fs        FS
	dir       string
	syncEvery int
	retry     retryPolicy
	// met counts fsyncs, durable bytes and repairs; set by the server
	// right after openJournal (all methods are nil-safe before that).
	met *serverMetrics

	closed atomic.Bool

	mu        sync.Mutex // guards meta file state and the appender map
	meta      File
	metaValid int64
	// metaBroken marks a failed meta repair (meta is closed, the file
	// may carry a torn tail); the next append must re-repair first.
	metaBroken bool
	recs       map[string]*recAppender
	recValid   map[string]int64 // valid byte length of records files found at replay
}

func (jr *journal) metaPath() string   { return filepath.Join(jr.dir, "journal.jsonl") }
func (jr *journal) recordsDir() string { return filepath.Join(jr.dir, "records") }
func (jr *journal) recordsPath(id string) string {
	return filepath.Join(jr.recordsDir(), id+".jsonl")
}

// replayedJob is one job reconstructed from the journal: its spec, last
// journaled state, and the intact, seed-validated record prefix already
// on disk.
type replayedJob struct {
	id      string
	spec    JobSpec
	state   State
	errmsg  string
	records []mc.Record
}

// replayState is everything openJournal learned from the data dir.
type replayState struct {
	jobs []*replayedJob // in journal (≈ submission) order
	next int            // highest numeric job id ever journaled
	// clean reports whether the journal's last entry is a clean-shutdown
	// marker (the previous process fully drained before exiting).
	clean bool
	// dropped counts semantically invalid entries that were skipped and
	// truncated counts bytes of torn/corrupt tails cut from files.
	dropped   int
	truncated int64
}

// openJournal replays the data directory and returns the journal ready
// for appending plus the replayed jobs. Only real I/O failures are
// errors: every corruption shape (torn tails, interior garbage, bogus
// entries, foreign records) degrades to truncation or skipping, never a
// panic or a wedged daemon.
func openJournal(fs FS, dir string, syncEvery int, retry retryPolicy) (*journal, *replayState, error) {
	jr := &journal{
		fs:        fs,
		dir:       dir,
		syncEvery: syncEvery,
		retry:     retry,
		recs:      map[string]*recAppender{},
		recValid:  map[string]int64{},
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("service: journal dir: %w", err)
	}
	if err := fs.MkdirAll(jr.recordsDir()); err != nil {
		return nil, nil, fmt.Errorf("service: records dir: %w", err)
	}
	rs, metaValid, err := jr.replayMeta()
	if err != nil {
		return nil, nil, err
	}
	jr.metaValid = metaValid
	for _, rj := range rs.jobs {
		if err := jr.loadRecords(rj, rs); err != nil {
			return nil, nil, err
		}
	}
	meta, err := fs.OpenAppend(jr.metaPath())
	if err != nil {
		return nil, nil, fmt.Errorf("service: open journal: %w", err)
	}
	jr.meta = meta
	return jr, rs, nil
}

// replayMeta parses the meta journal: the longest prefix of complete,
// well-formed lines is applied (semantically bogus entries are skipped),
// and a torn or corrupt tail is truncated away on disk so subsequent
// appends extend a clean line boundary.
func (jr *journal) replayMeta() (*replayState, int64, error) {
	rs := &replayState{}
	data, err := jr.fs.ReadFile(jr.metaPath())
	if err != nil {
		if os.IsNotExist(err) {
			return rs, 0, nil
		}
		return nil, 0, fmt.Errorf("service: read journal: %w", err)
	}
	byID := map[string]*replayedJob{}
	deleted := map[string]bool{}
	var valid int64
	for int(valid) < len(data) {
		rest := data[valid:]
		nl := -1
		for i, b := range rest {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // torn trailing write
		}
		line := rest[:nl]
		if len(line) > 0 {
			var e journalEntry
			if err := json.Unmarshal(line, &e); err != nil {
				break // corrupt line: discard it and everything after
			}
			rs.applyEntry(e, byID, deleted)
		}
		valid += int64(nl) + 1
	}
	rs.truncated += int64(len(data)) - valid
	if int(valid) < len(data) {
		if err := jr.fs.Truncate(jr.metaPath(), valid); err != nil {
			return nil, 0, fmt.Errorf("service: truncate torn journal tail: %w", err)
		}
	}
	// Drop deleted jobs from the replay set, preserving order.
	kept := rs.jobs[:0]
	for _, rj := range rs.jobs {
		if !deleted[rj.id] {
			kept = append(kept, rj)
		}
	}
	rs.jobs = kept
	return rs, valid, nil
}

// applyEntry folds one well-formed entry into the replay state. Entries
// that don't make sense (unknown ids, invalid specs, malformed ids) are
// counted and skipped — replay must make progress on any input.
func (rs *replayState) applyEntry(e journalEntry, byID map[string]*replayedJob, deleted map[string]bool) {
	clean := false
	defer func() { rs.clean = clean }()
	switch e.Type {
	case "submit":
		if e.Spec == nil || !jobID.MatchString(e.ID) || byID[e.ID] != nil || deleted[e.ID] {
			rs.dropped++
			return
		}
		spec := *e.Spec
		spec.Normalize()
		if spec.Validate() != nil {
			rs.dropped++
			return
		}
		var n int
		fmt.Sscanf(e.ID, "j%d", &n)
		if n > rs.next {
			rs.next = n
		}
		rj := &replayedJob{id: e.ID, spec: spec, state: StateQueued}
		byID[e.ID] = rj
		rs.jobs = append(rs.jobs, rj)
	case "state":
		rj := byID[e.ID]
		switch e.State {
		case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		default:
			rj = nil
		}
		if rj == nil {
			rs.dropped++
			return
		}
		rj.state = e.State
		rj.errmsg = e.Error
	case "delete":
		if byID[e.ID] == nil {
			rs.dropped++
			return
		}
		deleted[e.ID] = true
		delete(byID, e.ID)
	case "shutdown":
		clean = true
	default:
		rs.dropped++
	}
}

// loadRecords reads a replayed job's records file, keeps the longest
// prefix that is well-formed, contiguous (rep i on line i), stamped with
// the job's canonical name, and carries the job's derived seeds — and
// truncates the file to that prefix so appends resume cleanly. Anything
// cut is re-executed; nothing wrong is ever trusted.
func (jr *journal) loadRecords(rj *replayedJob, rs *replayState) error {
	path := jr.recordsPath(rj.id)
	data, err := jr.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("service: read records of %s: %w", rj.id, err)
	}
	recs, ends := mc.ScanRecords(data)
	seeds := mc.RepSeeds(rj.spec.Seed, rj.spec.Replicates)
	name := rj.spec.Name()
	keep := 0
	for keep < len(recs) && keep < len(seeds) &&
		recs[keep].Rep == keep && recs[keep].Seed == seeds[keep] && recs[keep].Job == name {
		keep++
	}
	valid := int64(0)
	if keep > 0 {
		valid = ends[keep-1]
	}
	rs.truncated += int64(len(data)) - valid
	if valid < int64(len(data)) {
		if err := jr.fs.Truncate(path, valid); err != nil {
			return fmt.Errorf("service: truncate records of %s: %w", rj.id, err)
		}
	}
	rj.records = recs[:keep]
	jr.mu.Lock()
	jr.recValid[rj.id] = valid
	jr.mu.Unlock()
	return nil
}

// repairMeta truncates the meta journal to its last known-good offset
// and reopens the append handle. The caller holds jr.mu and has already
// closed the old handle.
func (jr *journal) repairMeta() error {
	if err := jr.fs.Truncate(jr.metaPath(), jr.metaValid); err != nil {
		return err
	}
	f, err := jr.fs.OpenAppend(jr.metaPath())
	if err != nil {
		return err
	}
	jr.meta = f
	return nil
}

// appendMeta journals one entry, retrying transient failures with the
// file repaired (truncated to the last good offset and reopened) between
// attempts. sync forces an fsync after the append.
func (jr *journal) appendMeta(e journalEntry, sync bool) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	jr.mu.Lock()
	defer jr.mu.Unlock()
	if jr.closed.Load() {
		return errJournalClosed
	}
	op := func() error {
		if jr.metaBroken {
			// A previous repair failed and the handle is closed; finish the
			// repair before writing so the real truncate/open error
			// surfaces instead of "file already closed".
			if err := jr.repairMeta(); err != nil {
				return err
			}
			jr.metaBroken = false
		}
		if _, err := jr.meta.Write(b); err != nil {
			return err
		}
		if sync {
			return jr.meta.Sync()
		}
		return nil
	}
	repair := func() {
		if jr.closed.Load() {
			return
		}
		jr.met.journalRepair()
		jr.meta.Close()
		jr.metaBroken = jr.repairMeta() != nil
	}
	if err := jr.retry.do(op, repair); err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	jr.metaValid += int64(len(b))
	jr.met.journalWrote(len(b))
	if sync {
		jr.met.journalFsync()
	}
	return nil
}

// submit journals a job submission (fsynced before the caller admits
// the job, so an acknowledged job is never forgotten).
func (jr *journal) submit(id string, spec JobSpec) error {
	return jr.appendMeta(journalEntry{Type: "submit", ID: id, Spec: &spec}, true)
}

// state journals a transition. Terminal states are fsynced; "running"
// is not (losing it replays the job as queued — harmless).
func (jr *journal) state(id string, st State, errmsg string) error {
	return jr.appendMeta(journalEntry{Type: "state", ID: id, State: st, Error: errmsg}, st.Terminal())
}

// appender returns the job's records appender, opening the file lazily.
func (jr *journal) appender(id string) (*recAppender, error) {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	if jr.closed.Load() {
		return nil, errJournalClosed
	}
	ra := jr.recs[id]
	if ra == nil {
		path := jr.recordsPath(id)
		f, err := jr.fs.OpenAppend(path)
		if err != nil {
			return nil, err
		}
		ra = &recAppender{f: f, path: path, valid: jr.recValid[id]}
		jr.recs[id] = ra
	}
	return ra, nil
}

// appendRecord appends one replicate record to the job's records file,
// fsync-batched every syncEvery appends. Transient failures are retried
// with the file truncated back to its last good line between attempts,
// so a partial append can never leave interior garbage.
func (jr *journal) appendRecord(id string, rec mc.Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	ra, err := jr.appender(id)
	if err != nil {
		return err
	}
	ra.mu.Lock()
	defer ra.mu.Unlock()
	op := func() error {
		if jr.closed.Load() {
			return errJournalClosed
		}
		if ra.broken {
			// Same as appendMeta: finish the failed repair first so the
			// real error surfaces, not "file already closed".
			if err := ra.repair(jr.fs); err != nil {
				return err
			}
			ra.broken = false
		}
		if _, err := ra.f.Write(b); err != nil {
			return err
		}
		return nil
	}
	repair := func() {
		if jr.closed.Load() {
			return
		}
		jr.met.journalRepair()
		ra.f.Close()
		ra.broken = ra.repair(jr.fs) != nil
	}
	if err := jr.retry.do(op, repair); err != nil {
		return fmt.Errorf("service: journal records of %s: %w", id, err)
	}
	ra.valid += int64(len(b))
	jr.met.journalWrote(len(b))
	ra.pending++
	if ra.pending >= jr.syncEvery {
		if err := jr.retry.do(func() error { return ra.f.Sync() }, nil); err != nil {
			return fmt.Errorf("service: journal records sync of %s: %w", id, err)
		}
		ra.pending = 0
		jr.met.journalFsync()
	}
	return nil
}

// jobTerminal records a terminal transition: the job's records file is
// fsynced and closed first, then the terminal meta entry is fsynced —
// so a journaled terminal state implies every record is durable.
func (jr *journal) jobTerminal(id string, st State, errmsg string) error {
	jr.mu.Lock()
	ra := jr.recs[id]
	delete(jr.recs, id)
	if ra != nil {
		jr.recValid[id] = ra.valid
	}
	jr.mu.Unlock()
	if ra != nil {
		ra.mu.Lock()
		err := jr.retry.do(func() error { return ra.f.Sync() }, nil)
		ra.f.Close()
		ra.mu.Unlock()
		if err != nil {
			return fmt.Errorf("service: journal records sync of %s: %w", id, err)
		}
		jr.met.journalFsync()
	}
	return jr.state(id, st, errmsg)
}

// readRecords returns the raw bytes of a job's records file (empty for
// a job that never produced one), for serving evicted jobs' records.
func (jr *journal) readRecords(id string) ([]byte, error) {
	data, err := jr.fs.ReadFile(jr.recordsPath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

// deleteJob journals a delete entry and removes the records file.
func (jr *journal) deleteJob(id string) error {
	jr.mu.Lock()
	ra := jr.recs[id]
	delete(jr.recs, id)
	delete(jr.recValid, id)
	jr.mu.Unlock()
	if ra != nil {
		ra.mu.Lock()
		ra.f.Close()
		ra.mu.Unlock()
	}
	if err := jr.appendMeta(journalEntry{Type: "delete", ID: id}, true); err != nil {
		return err
	}
	if err := jr.fs.Remove(jr.recordsPath(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// close syncs and closes every open file. With clean set it first
// appends the clean-shutdown marker — only a fully drained daemon may
// pass clean=true. Idempotent; appends racing close surface
// errJournalClosed.
func (jr *journal) close(clean bool) {
	if jr.closed.Load() {
		return
	}
	if clean {
		// Best-effort: a failed marker write just means the next start
		// replays (and finds nothing to do).
		_ = jr.appendMeta(journalEntry{Type: "shutdown"}, false)
	}
	jr.mu.Lock()
	if jr.closed.Swap(true) {
		jr.mu.Unlock()
		return
	}
	ras := make([]*recAppender, 0, len(jr.recs))
	for _, ra := range jr.recs {
		ras = append(ras, ra)
	}
	jr.recs = map[string]*recAppender{}
	meta := jr.meta
	jr.mu.Unlock()
	for _, ra := range ras {
		ra.mu.Lock()
		_ = ra.f.Sync()
		_ = ra.f.Close()
		ra.mu.Unlock()
	}
	if meta != nil {
		_ = meta.Sync()
		_ = meta.Close()
	}
}
