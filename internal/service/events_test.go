package service_test

// Black-box tests of GET /v1/events: the SSE delivery contract. Two
// concurrent clients observe identical, globally ordered event
// sequences; a client that stops reading is dropped without ever
// delaying job execution; disconnecting clients leak nothing; and a
// drain ends every stream with a terminal "shutdown" event.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"testing"
	"time"

	"plurality/internal/service"
)

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id    string
	event string
	ev    service.Event
}

// sseConnect opens an SSE stream and feeds parsed frames to the
// returned channel until the stream ends (server shutdown, drop, or ctx
// cancellation); then the channel closes.
func sseConnect(t *testing.T, ctx context.Context, ts *httptest.Server) <-chan sseFrame {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET /v1/events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("GET /v1/events: Content-Type %q", ct)
	}
	ch := make(chan sseFrame, 1024)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var f sseFrame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if f.event != "" {
					ch <- f
				}
				f = sseFrame{}
			case strings.HasPrefix(line, "id: "):
				f.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f.ev); err != nil {
					t.Errorf("bad SSE data line %q: %v", line, err)
				}
			}
		}
	}()
	return ch
}

// nextFrame reads one frame with a deadline. ok is false once the
// stream has ended.
func nextFrame(t *testing.T, ch <-chan sseFrame, what string) (sseFrame, bool) {
	t.Helper()
	select {
	case f, ok := <-ch:
		return f, ok
	case <-time.After(15 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return sseFrame{}, false
	}
}

// collectAll drains the stream to its end and returns every frame.
func collectAll(t *testing.T, ch <-chan sseFrame, what string) []sseFrame {
	t.Helper()
	var out []sseFrame
	for {
		f, ok := nextFrame(t, ch, what)
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

// TestEventsTwoClientsIdenticalOrder is the ordering half of the SSE
// contract: two clients subscribed before any traffic observe the
// exact same broadcast sequence — same events, same values, same
// global order — ending in the same terminal shutdown event.
func TestEventsTwoClientsIdenticalOrder(t *testing.T) {
	s, ts := boot(t, service.Options{Workers: 2, Executors: 2, Backlog: 8})
	defer func() { ts.Close(); s.Close() }()

	ctx := context.Background()
	chA := sseConnect(t, ctx, ts)
	chB := sseConnect(t, ctx, ts)
	for name, ch := range map[string]<-chan sseFrame{"A": chA, "B": chB} {
		hello, ok := nextFrame(t, ch, "hello for "+name)
		if !ok || hello.event != "hello" {
			t.Fatalf("client %s: first frame %+v, want hello", name, hello)
		}
		if hello.ev.Seq != 0 {
			t.Fatalf("client %s: hello has Seq %d, want 0 (snapshots are outside the broadcast order)", name, hello.ev.Seq)
		}
	}

	var ids []string
	for i := 0; i < 3; i++ {
		spec := service.JobSpec{N: 100_000, K: 4, Seed: uint64(40 + i), Replicates: 4, MaxRounds: 2000}
		status, info, raw := submit(t, ts, spec, "?wait=0")
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d (%s)", i, status, raw)
		}
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		waitJob(t, ts, id, "done", func(i service.JobInfo) bool { return i.State == service.StateDone })
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	seqA := collectAll(t, chA, "stream A to end")
	seqB := collectAll(t, chB, "stream B to end")
	if len(seqA) == 0 || len(seqA) != len(seqB) {
		t.Fatalf("clients saw %d and %d events — sequences must be non-empty and identical", len(seqA), len(seqB))
	}
	for i := range seqA {
		a, b := seqA[i], seqB[i]
		ja, _ := json.Marshal(a.ev)
		jb, _ := json.Marshal(b.ev)
		if a.event != b.event || a.id != b.id || string(ja) != string(jb) {
			t.Fatalf("event %d differs between clients:\n A: %s %s %s\n B: %s %s %s",
				i, a.event, a.id, ja, b.event, b.id, jb)
		}
	}
	last := int64(0)
	for i, f := range seqA {
		if f.ev.Seq <= last {
			t.Fatalf("event %d: Seq %d not strictly increasing after %d", i, f.ev.Seq, last)
		}
		last = f.ev.Seq
		if f.id != fmt.Sprint(f.ev.Seq) {
			t.Fatalf("event %d: SSE id %q != payload seq %d", i, f.id, f.ev.Seq)
		}
	}
	if final := seqA[len(seqA)-1]; final.event != "shutdown" {
		t.Fatalf("final event is %q, want shutdown", final.event)
	}
	// Every job's lifecycle must appear: at least one running and one
	// done snapshot per job, and progress events carrying its id.
	for _, id := range ids {
		sawDone, sawProgress := false, false
		for _, f := range seqA {
			if f.event == "job" && f.ev.Job != nil && f.ev.Job.ID == id && f.ev.Job.State == service.StateDone {
				sawDone = true
			}
			if f.event == "progress" && f.ev.ID == id {
				sawProgress = true
			}
		}
		if !sawDone || !sawProgress {
			t.Fatalf("job %s: done snapshot seen %v, progress seen %v — want both", id, sawDone, sawProgress)
		}
	}
}

// TestEventsSubscribeAfterShutdown: a client that connects once the hub
// has shut down still gets an orderly terminal frame, not a cut stream.
func TestEventsSubscribeAfterShutdown(t *testing.T) {
	s, ts := boot(t, service.Options{Workers: 1})
	defer func() { ts.Close(); s.Close() }()
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	frames := collectAll(t, sseConnect(t, context.Background(), ts), "post-shutdown stream")
	if len(frames) != 1 || frames[0].event != "shutdown" {
		t.Fatalf("post-shutdown client got %+v, want exactly one shutdown frame", frames)
	}
}

// TestEventsClientDisconnectNoLeak: clients that come and go leave no
// goroutines and no subscriber-gauge residue behind.
func TestEventsClientDisconnectNoLeak(t *testing.T) {
	s, ts := boot(t, service.Options{Workers: 1})
	defer func() { ts.Close(); s.Close() }()

	// Warm up the HTTP plumbing (transport pools, scanner buffers) so the
	// baseline is stable before measuring.
	warmCtx, warmCancel := context.WithCancel(context.Background())
	warm := sseConnect(t, warmCtx, ts)
	nextFrame(t, warm, "warmup hello")
	warmCancel()
	collectAll(t, warm, "warmup stream end")
	waitForZeroClients(t, ts)
	base := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var chans []<-chan sseFrame
		for i := 0; i < 8; i++ {
			ch := sseConnect(t, ctx, ts)
			nextFrame(t, ch, "hello")
			chans = append(chans, ch)
		}
		cancel()
		for _, ch := range chans {
			collectAll(t, ch, "stream end after disconnect")
		}
	}
	waitForZeroClients(t, ts)

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finalizer-held conns
		n := runtime.NumGoroutine()
		if n <= base+2 { // tolerate transient runtime/net goroutines
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d after disconnects, baseline %d — SSE handlers leaked", n, base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitForZeroClients polls the sse_clients gauge until the hub reports
// no subscribers.
func waitForZeroClients(t *testing.T, ts *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		fams := scrapeMetrics(t, ts)
		if v := famValue(t, fams, "pluralityd_sse_clients", nil); v == 0 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("sse_clients gauge stuck at %v", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEventsSlowConsumerDropped is the backpressure half of the SSE
// contract, end to end: a client that stops reading its socket is
// dropped (counted in sse_dropped_total) while job execution and a
// healthy client proceed undisturbed. The deterministic unit-level
// version of the drop rule lives in the package's hub tests; this test
// proves the property through real sockets.
func TestEventsSlowConsumerDropped(t *testing.T) {
	// EventBuffer must be small enough that a stalled socket overflows it
	// quickly, but big enough that a draining client rides out bursts.
	s, ts := boot(t, service.Options{Workers: 2, EventBuffer: 256})
	defer func() { ts.Close(); s.Close() }()

	healthyCtx, healthyCancel := context.WithCancel(context.Background())
	defer healthyCancel()
	healthy := sseConnect(t, healthyCtx, ts)
	nextFrame(t, healthy, "healthy hello")
	go func() {
		// Keep the healthy client draining so only the stalled one backs up.
		for range healthy {
		}
	}()

	// The stalled client: a raw socket with a tiny receive buffer that
	// sends the request and then never reads, so the server-side write
	// eventually blocks, its 1-slot buffer fills, and the hub drops it.
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(256) // shrink the advertised window
	}
	if _, err := fmt.Fprintf(conn, "GET /v1/events HTTP/1.1\r\nHost: %s\r\n\r\n", u.Host); err != nil {
		t.Fatal(err)
	}

	spec := service.JobSpec{N: 100_000, K: 8, Seed: 9, Replicates: 64, MaxRounds: 2000}
	deadline := time.Now().Add(30 * time.Second)
	dropped := false
	for i := 0; !dropped; i++ {
		start := time.Now()
		status, info, raw := submit(t, ts, spec, "?wait=1")
		if status != http.StatusOK || info.State != service.StateDone {
			t.Fatalf("job %d: status %d state %s (%s) — a stalled subscriber delayed execution", i, status, info.State, raw)
		}
		if d := time.Since(start); d > 10*time.Second {
			t.Fatalf("job %d took %s with a stalled subscriber attached", i, d)
		}
		fams := scrapeMetrics(t, ts)
		dropped = famValue(t, fams, "pluralityd_sse_dropped_total", nil) >= 1
		if time.Now().After(deadline) {
			t.Fatalf("stalled client never dropped after %d jobs", i+1)
		}
		spec.Seed++
	}

	// The healthy client must still be subscribed: the drop hit only the
	// stalled consumer.
	fams := scrapeMetrics(t, ts)
	if v := famValue(t, fams, "pluralityd_sse_clients", nil); v < 1 {
		t.Fatalf("sse_clients = %v after the drop, want the healthy client still connected", v)
	}
}

// TestEventsDeleteBroadcast: deleting a job emits a deleted event so
// dashboards converge without polling.
func TestEventsDeleteBroadcast(t *testing.T) {
	s, ts := boot(t, service.Options{Workers: 1})
	defer func() { ts.Close(); s.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := sseConnect(t, ctx, ts)
	nextFrame(t, ch, "hello")

	spec := service.JobSpec{N: 100_000, K: 4, Seed: 77, Replicates: 2, MaxRounds: 2000}
	status, info, raw := submit(t, ts, spec, "?wait=1")
	if status != http.StatusOK {
		t.Fatalf("submit: status %d (%s)", status, raw)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	for {
		f, ok := nextFrame(t, ch, "deleted event")
		if !ok {
			t.Fatal("stream ended before the deleted event")
		}
		if f.event == "deleted" {
			if f.ev.ID != info.ID {
				t.Fatalf("deleted event names %q, want %q", f.ev.ID, info.ID)
			}
			return
		}
	}
}
