package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"plurality/internal/mc"
	"plurality/internal/stats"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle: Queued → Running → one of the terminal states. A job
// cancelled while still queued goes straight to Cancelled without running.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further state transitions or records can
// occur.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Aggregate is the terminal summary of a job's completed records.
type Aggregate struct {
	Replicates  int           `json:"replicates"`
	SuccessRate float64       `json:"success_rate"`
	WilsonLo    float64       `json:"wilson_lo"`
	WilsonHi    float64       `json:"wilson_hi"`
	Rounds      stats.Summary `json:"rounds"`
}

// JobInfo is the JSON snapshot of a job served by the status endpoints.
type JobInfo struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Name is the canonical spec name stamped into every record.
	Name string  `json:"name"`
	Spec JobSpec `json:"spec"`
	// Records is the number of replicate records completed so far.
	Records int    `json:"records"`
	Error   string `json:"error,omitempty"`
	// Aggregate summarizes the completed records once the job is terminal
	// (partial on cancellation).
	Aggregate *Aggregate `json:"aggregate,omitempty"`
	// Evicted marks a tombstoned job: its records were dropped from memory
	// to bound retention and are only servable from the journal.
	Evicted bool `json:"evicted,omitempty"`
}

// jobState is one tracked job. recs only grows, and only before the state
// turns terminal; cond is broadcast on every append and state change,
// which is what the JSONL follow-streaming waits on.
type jobState struct {
	id     string
	spec   JobSpec
	cancel context.CancelFunc
	// syncPath marks jobs running on a request goroutine: their lifetime
	// is the request's, so shutdown cancellation is terminal for them.
	syncPath bool
	// met receives lifecycle gauge transitions; engLabel/ruleLabel are the
	// resolved engine and rule this job's replicate counters are labelled
	// with (computed once at creation — resolveEngine is pure).
	met       *serverMetrics
	engLabel  string
	ruleLabel string

	mu    sync.Mutex
	cond  *sync.Cond
	state State
	recs  []mc.Record
	// trace accumulates the JSONL traces of a traced job's finished
	// replicates (spec.Trace; see trace.go). In-memory only: never
	// journaled, dropped on eviction.
	trace []byte
	err   error
	// userCancel records that cancellation was requested through the API
	// (as opposed to server drain/shutdown, which must stay resumable).
	userCancel bool
	// evicted jobs have dropped their records to bound memory; tomb is
	// the terminal snapshot that keeps the info endpoint serving.
	evicted bool
	tomb    *JobInfo
}

// newJobState builds a queued job and counts it into the queued gauge.
func newJobState(id string, spec JobSpec, cancel context.CancelFunc, met *serverMetrics) *jobState {
	j := &jobState{id: id, spec: spec, cancel: cancel, state: StateQueued, met: met}
	j.cond = sync.NewCond(&j.mu)
	j.engLabel = "invalid"
	if eng, err := spec.resolveEngine(); err == nil {
		j.engLabel = eng
	}
	j.ruleLabel = spec.Rule
	met.jobTransition("", StateQueued)
	return j
}

// setRunning marks the queued job as picked up. It is a no-op once the
// job is terminal (a cancelled-in-queue job stays cancelled).
func (j *jobState) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		j.met.jobTransition(j.state, StateRunning)
		j.state = StateRunning
		j.cond.Broadcast()
	}
}

// appendRecord is the mc sink: records arrive in replicate order.
func (j *jobState) appendRecord(rec mc.Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, rec)
	j.cond.Broadcast()
	return nil
}

// appendTrace folds one finished traced replicate's JSONL trace into
// the job's in-memory trace buffer.
func (j *jobState) appendTrace(b []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.trace = append(j.trace, b...)
}

// traceSnapshot copies the traces captured so far (empty when nothing
// has finished yet, or after eviction).
func (j *jobState) traceSnapshot() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]byte(nil), j.trace...)
}

// finish moves the job to its terminal state from the run's outcome.
// It reports the state it settled on and whether this call performed
// the transition (false when the job was already terminal).
func (j *jobState) finish(err error) (State, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return j.state, false
	}
	from := j.state
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	j.met.jobFinished(from, j.state)
	j.cond.Broadcast()
	return j.state, true
}

// requestCancel cancels the job's context; a still-queued job is marked
// cancelled immediately so polls never see it running afterwards (the
// return value reports that immediate transition). user distinguishes
// an API cancellation (terminal, journaled) from server drain/shutdown
// (resumable: the job replays after a restart).
func (j *jobState) requestCancel(user bool) bool {
	j.mu.Lock()
	if user {
		j.userCancel = true
	}
	transitioned := false
	if j.state == StateQueued {
		j.met.jobFinished(StateQueued, StateCancelled)
		j.state = StateCancelled
		j.err = context.Canceled
		j.cond.Broadcast()
		transitioned = true
	}
	j.mu.Unlock()
	j.cancel()
	return transitioned
}

// userCancelled reports whether cancellation came through the API.
func (j *jobState) userCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancel
}

// adopt restores replayed state: the already-journaled record prefix
// and, for terminal jobs, the final state. Called before the job is
// visible to any handler or executor.
func (j *jobState) adopt(recs []mc.Record, st State, errmsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = recs
	if st.Terminal() {
		// Gauge only: this process did not perform the terminal transition,
		// so jobs_finished_total must not count it.
		j.met.jobTransition(StateQueued, st)
		j.state = st
		if errmsg != "" {
			j.err = errors.New(errmsg)
		}
	}
	j.met.replicatesResumed(j.engLabel, j.ruleLabel, len(recs))
}

// evict drops a terminal job's records to bound memory, leaving a
// tombstone snapshot (aggregate included) for the info endpoints. The
// records themselves stay servable from the journal. No-op on
// non-terminal jobs.
func (j *jobState) evict() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() || j.evicted {
		return
	}
	info := j.infoLocked()
	info.Evicted = true
	j.tomb = &info
	j.recs = nil
	j.trace = nil // traces have no journal backing; eviction is final
	j.evicted = true
	j.met.jobEvicted()
}

// forget removes the job from the lifecycle gauges (deletion or
// queue-full rollback).
func (j *jobState) forget() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.met.jobTransition(j.state, "")
}

// isEvicted reports whether the job's records were dropped from memory.
func (j *jobState) isEvicted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.evicted
}

// info snapshots the job for the status API.
func (j *jobState) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.infoLocked()
}

func (j *jobState) infoLocked() JobInfo {
	if j.evicted {
		return *j.tomb
	}
	info := JobInfo{
		ID:      j.id,
		State:   j.state,
		Name:    j.spec.Name(),
		Spec:    j.spec,
		Records: len(j.recs),
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	if j.state.Terminal() && len(j.recs) > 0 {
		agg := mc.Aggregate(j.recs)
		lo, hi := agg.Wilson(1.96)
		info.Aggregate = &Aggregate{
			Replicates:  agg.N,
			SuccessRate: agg.SuccessRate(),
			WilsonLo:    lo,
			WilsonHi:    hi,
			Rounds:      agg.Rounds(),
		}
	}
	return info
}

// streamRecords writes the job's records to w as JSONL in replicate
// order. With follow set it keeps the stream open, emitting records as
// they complete (calling flush, if non-nil, after each batch) until the
// job is terminal or ctx is cancelled (a follow client going away);
// otherwise it writes the current snapshot and returns.
func (j *jobState) streamRecords(ctx context.Context, w io.Writer, follow bool, flush func()) error {
	if follow {
		// A waiter blocked in cond.Wait only re-checks its predicate on a
		// broadcast; wake it when the client disconnects.
		stop := context.AfterFunc(ctx, func() {
			j.mu.Lock()
			j.cond.Broadcast()
			j.mu.Unlock()
		})
		defer stop()
	}
	sent := 0
	for {
		j.mu.Lock()
		for follow && sent == len(j.recs) && !j.state.Terminal() && ctx.Err() == nil {
			j.cond.Wait()
		}
		batch := j.recs[sent:]
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, rec := range batch {
			if err := mc.AppendRecord(w, rec); err != nil {
				return err
			}
		}
		sent += len(batch)
		if flush != nil && len(batch) > 0 {
			flush()
		}
		if !follow || terminal {
			return nil
		}
	}
}

// store tracks all jobs the server has accepted, in submission order. Job
// IDs are a deterministic counter ("j1", "j2", …) so a replayed request
// sequence produces an identical API surface. Terminal jobs are bounded:
// beyond retain of them, the least-recently-touched are evicted to
// tombstones (their records stay servable from the journal).
type store struct {
	met *serverMetrics

	mu     sync.Mutex
	jobs   map[string]*jobState
	order  []string
	next   int
	retain int // max non-evicted terminal jobs; <= 0 means unlimited
	lru    []string
}

func newStore(retain int, met *serverMetrics) *store {
	return &store{met: met, jobs: map[string]*jobState{}, retain: retain}
}

// create registers a new queued job.
func (s *store) create(spec JobSpec, cancel context.CancelFunc) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := fmt.Sprintf("j%d", s.next)
	j := newJobState(id, spec, cancel, s.met)
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

// setNext seeds the ID counter so newly created jobs never reuse an ID
// the journal has ever issued — including deleted ones: a reused ID's
// submit entry would sit after its delete entry in the journal, and
// replay would silently drop the new job.
func (s *store) setNext(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.next {
		s.next = n
	}
}

// restore re-registers a replayed job under its original ID, keeping the
// ID counter ahead of every restored job. Only called during New, before
// any request can race it.
func (s *store) restore(id string, spec JobSpec, cancel context.CancelFunc) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > s.next {
		s.next = n
	}
	j := newJobState(id, spec, cancel, s.met)
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

// noteTerminal registers a terminal transition with the retention LRU,
// evicting the least-recently-touched terminal jobs beyond the cap.
func (s *store) noteTerminal(id string) {
	s.mu.Lock()
	var evict []*jobState
	if _, ok := s.jobs[id]; ok {
		s.lru = append(s.lru, id)
	}
	if s.retain > 0 {
		for len(s.lru) > s.retain {
			if j, ok := s.jobs[s.lru[0]]; ok {
				evict = append(evict, j)
			}
			s.lru = s.lru[1:]
		}
	}
	s.mu.Unlock()
	for _, j := range evict {
		j.evict()
	}
}

// touch refreshes a job's position in the retention LRU.
func (s *store) touch(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, other := range s.lru {
		if other == id {
			s.lru = append(append(s.lru[:i:i], s.lru[i+1:]...), id)
			return
		}
	}
}

// deleteTerminal removes a terminal job entirely. It reports whether the
// job existed and, if so, whether it was terminal (non-terminal jobs are
// not deletable — cancel first).
func (s *store) deleteTerminal(id string) (found, deleted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false, false
	}
	if !j.info().State.Terminal() {
		return true, false
	}
	delete(s.jobs, id)
	for i, other := range s.order {
		if other == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	for i, other := range s.lru {
		if other == id {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			break
		}
	}
	j.forget()
	return true, true
}

// remove forgets a job that was never admitted (queue-full rollback), so
// a rejected submission leaves no trace and no dangling ID.
func (s *store) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	delete(s.jobs, id)
	for i, other := range s.order {
		if other == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	j.forget()
}

// get looks a job up by ID.
func (s *store) get(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list snapshots all jobs in submission order.
func (s *store) list() []JobInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*jobState, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobInfo, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.info())
	}
	return out
}

// cancelAll requests cancellation of every job (server shutdown).
func (s *store) cancelAll() {
	s.mu.Lock()
	jobs := make([]*jobState, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.requestCancel(false)
	}
}
