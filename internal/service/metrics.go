package service

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"plurality/internal/service/promtext"
)

// This file is the observability registry behind GET /metrics: a
// hand-rolled counter/gauge/histogram store instrumented at the seams
// that already exist — job lifecycle transitions in the store, queue
// depth and load-shed rejections, sync-slot occupancy, journal fsync
// and repair activity, and per-engine replicate throughput fed from the
// mc.RunOpts.OnProgress hook. Everything is stdlib-only and encoded in
// the Prometheus text exposition format (version 0.0.4); the matching
// strict parser lives in internal/service/promtext and certifies every
// scrape in the test harness.
//
// Two kinds of values appear in a scrape:
//
//   - registry-owned: transition-maintained gauges and monotone
//     counters, updated inside the same critical sections that change
//     the state they describe (so a quiesced server's gauges equal a
//     walk of the store — the consistency invariant the tests assert);
//   - scrape-time: values read live from the server (queue depth,
//     sync-slot occupancy, SSE client count, draining flag).
//
// Resumed replicates are counted separately (replicates_resumed_total)
// from executed ones (replicates_total): a crash-resume adopts its
// journaled prefix without re-firing OnProgress, so the two counters
// always sum to the work done exactly once.

// engineRule keys the per-engine throughput counters.
type engineRule struct{ engine, rule string }

// roundsBuckets are the replicate-rounds histogram bounds: powers of 4
// up to just past MaxMaxRounds.
var roundsBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}

// roundDurBuckets are the per-round wall-time histogram bounds in
// seconds: decades from 1µs (a count-based engine round) to 100s (a
// worst-case n=10⁹ agent-level round).
var roundDurBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}

// histogram is a fixed-bucket histogram; counts are per-bucket and
// cumulated at encode time.
type histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// merge folds another histogram with identical bounds into this one —
// how per-replicate round-duration histograms (filled lock-free on the
// worker) land in the registry with one lock acquisition per replicate.
func (h *histogram) merge(o *histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
	h.count += o.count
}

// serverMetrics is the registry. All methods are nil-safe so bare
// stores and jobStates built by unit tests need no registry. The mutex
// is a leaf lock: it is taken inside jobState/store critical sections
// and never the other way around.
type serverMetrics struct {
	mu sync.Mutex

	jobs       map[State]int64  // current store composition
	finished   map[State]int64  // terminal transitions performed by this process
	submitted  map[string]int64 // accepted submissions by path (sync|async)
	rejected   map[string]int64 // load-shed responses by reason
	deleted    int64            // DELETE /v1/jobs/{id} successes
	evictions  int64            // terminal jobs evicted to tombstones
	replicates map[engineRule]int64
	resumed    map[engineRule]int64
	rounds     map[engineRule]int64
	roundsHist *histogram
	roundDur   *histogram // per-round wall time of traced replicates, seconds

	journalFsyncs  int64
	journalBytes   int64
	journalRepairs int64

	sseEvents  int64
	sseDropped int64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		jobs:       map[State]int64{},
		finished:   map[State]int64{},
		submitted:  map[string]int64{},
		rejected:   map[string]int64{},
		replicates: map[engineRule]int64{},
		resumed:    map[engineRule]int64{},
		rounds:     map[engineRule]int64{},
		roundsHist: newHistogram(roundsBuckets),
		roundDur:   newHistogram(roundDurBuckets),
	}
}

// mergeRoundDur folds one traced replicate's round-duration histogram
// into the registry (fired once per finished traced replicate, from the
// mc coordinating goroutine).
func (m *serverMetrics) mergeRoundDur(h *histogram) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.roundDur.merge(h)
}

// jobTransition moves one job between lifecycle gauge states; an empty
// from means "newly created", an empty to means "forgotten".
func (m *serverMetrics) jobTransition(from, to State) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if from != "" {
		m.jobs[from]--
	}
	if to != "" {
		m.jobs[to]++
	}
}

// jobFinished is jobTransition plus the monotone terminal counter (only
// transitions this process performed — restored terminal jobs move the
// gauge via jobTransition but never re-count here).
func (m *serverMetrics) jobFinished(from, to State) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[from]--
	m.jobs[to]++
	m.finished[to]++
}

func (m *serverMetrics) jobDeleted() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deleted++
}

func (m *serverMetrics) jobEvicted() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictions++
}

func (m *serverMetrics) submittedJob(path string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted[path]++
}

func (m *serverMetrics) rejectedJob(reason string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected[reason]++
}

// replicateDone records one newly executed replicate (the OnProgress
// feed): throughput counters labelled by engine/rule plus the rounds
// histogram.
func (m *serverMetrics) replicateDone(engine, rule string, rounds int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := engineRule{engine, rule}
	m.replicates[key]++
	m.rounds[key] += int64(rounds)
	m.roundsHist.observe(float64(rounds))
}

// replicatesResumed records n replicates adopted from the journal on
// restart — counted apart from executed ones so a crash-resume never
// double-counts work.
func (m *serverMetrics) replicatesResumed(engine, rule string, n int) {
	if m == nil || n == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resumed[engineRule{engine, rule}] += int64(n)
}

func (m *serverMetrics) journalFsync() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalFsyncs++
}

func (m *serverMetrics) journalWrote(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalBytes += int64(n)
}

func (m *serverMetrics) journalRepair() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalRepairs++
}

func (m *serverMetrics) sseEvent() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sseEvents++
}

func (m *serverMetrics) sseDrop() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sseDropped++
}

// --- text exposition encoding ---

// sample is one encoded metric line.
type sample struct {
	suffix string // appended to the family name ("_bucket", …)
	labels [][2]string
	value  float64
}

// writeFamily emits one family: HELP, TYPE, then the samples sorted by
// (suffix, labels) for a deterministic scrape.
func writeFamily(b *strings.Builder, name, typ, help string, samples []sample) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, promtext.EscapeHelp(help))
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].suffix != samples[j].suffix {
			return samples[i].suffix < samples[j].suffix
		}
		li, lj := samples[i].labels, samples[j].labels
		for k := 0; k < len(li) && k < len(lj); k++ {
			if li[k] != lj[k] {
				// Histogram buckets must stay in ascending bound order, so
				// the le label sorts numerically ("+Inf" parses as +Inf).
				if li[k][0] == "le" && lj[k][0] == "le" {
					vi, ei := strconv.ParseFloat(li[k][1], 64)
					vj, ej := strconv.ParseFloat(lj[k][1], 64)
					if ei == nil && ej == nil {
						return vi < vj
					}
				}
				return li[k][0]+"\x00"+li[k][1] < lj[k][0]+"\x00"+lj[k][1]
			}
		}
		return len(li) < len(lj)
	})
	for _, s := range samples {
		b.WriteString(name)
		b.WriteString(s.suffix)
		if len(s.labels) > 0 {
			b.WriteByte('{')
			for i, l := range s.labels {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(b, `%s="%s"`, l[0], promtext.EscapeLabel(l[1]))
			}
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(formatValue(s.value))
		b.WriteByte('\n')
	}
}

// formatValue renders a sample value (Prometheus accepts Go's shortest
// float form; +Inf renders as "+Inf").
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// stateSamples renders a per-state map over a fixed state order so
// every state always appears (zeros included — dashboards and the
// consistency tests want stable series).
func stateSamples(m map[State]int64, states ...State) []sample {
	out := make([]sample, 0, len(states))
	for _, st := range states {
		out = append(out, sample{labels: [][2]string{{"state", string(st)}}, value: float64(m[st])})
	}
	return out
}

// engineRuleSamples renders an engine/rule-keyed counter map.
func engineRuleSamples(m map[engineRule]int64) []sample {
	out := make([]sample, 0, len(m))
	for k, v := range m {
		out = append(out, sample{labels: [][2]string{{"engine", k.engine}, {"rule", k.rule}}, value: float64(v)})
	}
	return out
}

// mapSamples renders a string-keyed counter map under one label name.
func mapSamples(label string, m map[string]int64, keys ...string) []sample {
	out := make([]sample, 0, len(keys))
	for _, k := range keys {
		out = append(out, sample{labels: [][2]string{{label, k}}, value: float64(m[k])})
	}
	return out
}

// histSamples renders a histogram's _bucket/_sum/_count samples.
func histSamples(h *histogram) []sample {
	out := make([]sample, 0, len(h.bounds)+3)
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		out = append(out, sample{suffix: "_bucket", labels: [][2]string{{"le", formatValue(bound)}}, value: float64(cum)})
	}
	cum += h.counts[len(h.bounds)]
	out = append(out, sample{suffix: "_bucket", labels: [][2]string{{"le", "+Inf"}}, value: float64(cum)})
	out = append(out, sample{suffix: "_sum", value: h.sum})
	out = append(out, sample{suffix: "_count", value: float64(h.count)})
	return out
}

// scrapeGauges are the values read live from the server at scrape time.
type scrapeGauges struct {
	queueDepth   int
	queueBacklog int
	syncInUse    int
	syncMax      int
	workers      int
	draining     bool
	sseClients   int
	// workerBusy/workerTasks are the pool's cumulative per-worker
	// utilization counters (mc.Pool.WorkerBusy / WorkerTasks), read at
	// scrape time like the other live values.
	workerBusy  []time.Duration
	workerTasks []int64
}

// encode renders the whole scrape.
func (m *serverMetrics) encode(b *strings.Builder, g scrapeGauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	bool01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	writeFamily(b, "pluralityd_jobs", "gauge",
		"Jobs currently tracked by the store, by lifecycle state.",
		stateSamples(m.jobs, StateQueued, StateRunning, StateDone, StateFailed, StateCancelled))
	writeFamily(b, "pluralityd_jobs_finished_total", "counter",
		"Terminal transitions performed by this process, by final state (restored terminal jobs are not re-counted).",
		stateSamples(m.finished, StateDone, StateFailed, StateCancelled))
	writeFamily(b, "pluralityd_jobs_submitted_total", "counter",
		"Accepted submissions, by execution path.",
		mapSamples("path", m.submitted, "sync", "async"))
	writeFamily(b, "pluralityd_rejections_total", "counter",
		"Load-shed submissions, by reason (backlog_full and sync_slots_busy are HTTP 429, draining is 503).",
		mapSamples("reason", m.rejected, "backlog_full", "sync_slots_busy", "draining"))
	writeFamily(b, "pluralityd_jobs_deleted_total", "counter",
		"Jobs removed through DELETE /v1/jobs/{id}.",
		[]sample{{value: float64(m.deleted)}})
	writeFamily(b, "pluralityd_jobs_evicted_total", "counter",
		"Terminal jobs evicted from memory to tombstones by the retention cap.",
		[]sample{{value: float64(m.evictions)}})

	writeFamily(b, "pluralityd_queue_depth", "gauge",
		"Async jobs admitted but not yet picked up by an executor.",
		[]sample{{value: float64(g.queueDepth)}})
	writeFamily(b, "pluralityd_queue_backlog_limit", "gauge",
		"Capacity of the async backlog (admissions beyond it are rejected).",
		[]sample{{value: float64(g.queueBacklog)}})
	writeFamily(b, "pluralityd_sync_slots_in_use", "gauge",
		"Synchronous submissions executing right now.",
		[]sample{{value: float64(g.syncInUse)}})
	writeFamily(b, "pluralityd_sync_slots_limit", "gauge",
		"Capacity of the synchronous-execution semaphore.",
		[]sample{{value: float64(g.syncMax)}})
	writeFamily(b, "pluralityd_workers", "gauge",
		"Parallelism of the shared replicate pool.",
		[]sample{{value: float64(g.workers)}})
	busySamples := make([]sample, 0, len(g.workerBusy))
	taskSamples := make([]sample, 0, len(g.workerTasks))
	for w, d := range g.workerBusy {
		busySamples = append(busySamples, sample{
			labels: [][2]string{{"worker", strconv.Itoa(w)}}, value: d.Seconds()})
	}
	for w, n := range g.workerTasks {
		taskSamples = append(taskSamples, sample{
			labels: [][2]string{{"worker", strconv.Itoa(w)}}, value: float64(n)})
	}
	writeFamily(b, "pluralityd_worker_busy_seconds_total", "counter",
		"Cumulative busy time of each pool worker (rate against wall time for per-worker utilization).",
		busySamples)
	writeFamily(b, "pluralityd_worker_tasks_total", "counter",
		"Cumulative replicates executed by each pool worker.",
		taskSamples)
	writeFamily(b, "pluralityd_draining", "gauge",
		"1 while the server refuses new submissions ahead of shutdown.",
		[]sample{{value: bool01(g.draining)}})

	writeFamily(b, "pluralityd_replicates_total", "counter",
		"Replicates executed by this process, by engine and rule (fed from the mc progress hook; resumed replicates are counted in pluralityd_replicates_resumed_total instead).",
		engineRuleSamples(m.replicates))
	writeFamily(b, "pluralityd_replicates_resumed_total", "counter",
		"Replicates adopted from the journal on restart instead of re-executed, by engine and rule.",
		engineRuleSamples(m.resumed))
	writeFamily(b, "pluralityd_rounds_total", "counter",
		"Simulated rounds completed by this process, by engine and rule.",
		engineRuleSamples(m.rounds))
	writeFamily(b, "pluralityd_replicate_rounds", "histogram",
		"Rounds per executed replicate.",
		histSamples(m.roundsHist))
	writeFamily(b, "pluralityd_round_duration_seconds", "histogram",
		"Wall time per simulated round of traced replicates (jobs submitted with \"trace\": true).",
		histSamples(m.roundDur))

	writeFamily(b, "pluralityd_journal_fsyncs_total", "counter",
		"Successful journal fsync barriers (submission acks, batched record syncs, terminal transitions).",
		[]sample{{value: float64(m.journalFsyncs)}})
	writeFamily(b, "pluralityd_journal_bytes_total", "counter",
		"Bytes appended durably to the meta journal and record streams.",
		[]sample{{value: float64(m.journalBytes)}})
	writeFamily(b, "pluralityd_journal_repairs_total", "counter",
		"Truncate-and-reopen repairs triggered by failed journal writes.",
		[]sample{{value: float64(m.journalRepairs)}})

	writeFamily(b, "pluralityd_sse_clients", "gauge",
		"Live /v1/events subscribers.",
		[]sample{{value: float64(g.sseClients)}})
	writeFamily(b, "pluralityd_sse_events_total", "counter",
		"Events broadcast on the /v1/events stream.",
		[]sample{{value: float64(m.sseEvents)}})
	writeFamily(b, "pluralityd_sse_dropped_total", "counter",
		"Subscribers disconnected for not draining their send buffer.",
		[]sample{{value: float64(m.sseDropped)}})
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	s.met.encode(&b, scrapeGauges{
		queueDepth:   s.queue.Backlog(),
		queueBacklog: s.opts.Backlog,
		syncInUse:    len(s.syncSem),
		syncMax:      s.opts.MaxSync,
		workers:      s.pool.Workers(),
		draining:     s.draining.Load(),
		sseClients:   s.hub.clients(),
		workerBusy:   s.pool.WorkerBusy(),
		workerTasks:  s.pool.WorkerTasks(),
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
