// Package faultfs is an in-memory filesystem with scriptable fault
// injection, built to prove the crash-recovery claims of the
// internal/service journal. It implements the service.FS seam and
// models exactly the failure surface the journal's durability contract
// is written against:
//
//   - Crash() — power cut: returns the disk image the cut would leave
//     behind, with every byte not covered by a Sync lost; CrashKeep(n)
//     additionally keeps n unsynced bytes per file, which is how a
//     torn trailing write is manufactured.
//   - FailWrites / FailSyncs — transient or permanent I/O errors on
//     the nth matching operation, optionally landing a partial write
//     first (interior torn write), to drive the journal's
//     retry-with-repair path.
//   - Corrupt — in-place byte flips, for bit-rot and tampered-journal
//     scenarios.
//
// A test restarts the service on the post-crash disk image by calling
// service.New again with the FS that Crash returned; the dying
// server's goroutines keep writing to the old FS, and — exactly like
// the writes of a SIGKILLed process that never reached the platter —
// none of it lands on the image the restart sees.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
	"sync"

	"plurality/internal/service"
)

// ErrInjected is the error every scripted fault returns.
var ErrInjected = errors.New("faultfs: injected fault")

// fault is one armed write/sync failure.
type fault struct {
	substr  string // operations on paths containing this arm the fault
	nth     int    // 1-based countdown among matching operations
	times   int    // how many consecutive operations fail once armed
	partial int    // bytes of a failing write that still land (torn write)
}

// file is one in-memory file: data is what a reader sees now, synced is
// the prefix guaranteed to survive a Crash.
type file struct {
	data   []byte
	synced int
}

// FS is the fault-injecting filesystem. The zero value is not usable;
// call New.
type FS struct {
	mu         sync.Mutex
	files      map[string]*file
	dirs       map[string]bool
	writeFault []*fault
	syncFault  []*fault
	truncFault []*fault

	// Writes and Syncs count every attempted operation, for tests that
	// want to assert how much work the journal performed.
	writes int
	syncs  int
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: map[string]*file{}, dirs: map[string]bool{}}
}

// --- service.FS implementation ---

// MkdirAll records the directory; in-memory files don't need parents,
// but tests can assert the journal created its layout.
func (fs *FS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirs[path.Clean(dir)] = true
	return nil
}

// OpenAppend opens p for appending, creating it if missing.
func (fs *FS) OpenAppend(p string) (service.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = path.Clean(p)
	if fs.files[p] == nil {
		fs.files[p] = &file{}
	}
	return &appendFile{fs: fs, path: p}, nil
}

// ReadFile returns a copy of the file's current content; a missing file
// satisfies os.IsNotExist.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[path.Clean(p)]
	if f == nil {
		return nil, &os.PathError{Op: "open", Path: p, Err: os.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// Truncate cuts the file to size (missing files satisfy os.IsNotExist).
func (fs *FS) Truncate(p string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[path.Clean(p)]
	if f == nil {
		return &os.PathError{Op: "truncate", Path: p, Err: os.ErrNotExist}
	}
	if ft := trigger(&fs.truncFault, p); ft != nil {
		return fmt.Errorf("truncate %s: %w", p, ErrInjected)
	}
	if size < int64(len(f.data)) {
		f.data = f.data[:size]
	}
	if int64(f.synced) > size {
		f.synced = int(size)
	}
	return nil
}

// Remove deletes the file (missing files satisfy os.IsNotExist).
func (fs *FS) Remove(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = path.Clean(p)
	if fs.files[p] == nil {
		return &os.PathError{Op: "remove", Path: p, Err: os.ErrNotExist}
	}
	delete(fs.files, p)
	return nil
}

// appendFile is one open append handle.
type appendFile struct {
	fs     *FS
	path   string
	closed bool
}

func (a *appendFile) Write(p []byte) (int, error) {
	a.fs.mu.Lock()
	defer a.fs.mu.Unlock()
	a.fs.writes++
	f := a.fs.files[a.path]
	if a.closed || f == nil {
		return 0, fmt.Errorf("faultfs: write to closed or removed %s", a.path)
	}
	if ft := trigger(&a.fs.writeFault, a.path); ft != nil {
		keep := min(ft.partial, len(p))
		f.data = append(f.data, p[:keep]...)
		return keep, fmt.Errorf("write %s: %w", a.path, ErrInjected)
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (a *appendFile) Sync() error {
	a.fs.mu.Lock()
	defer a.fs.mu.Unlock()
	a.fs.syncs++
	f := a.fs.files[a.path]
	if a.closed || f == nil {
		return fmt.Errorf("faultfs: sync of closed or removed %s", a.path)
	}
	if ft := trigger(&a.fs.syncFault, a.path); ft != nil {
		return fmt.Errorf("sync %s: %w", a.path, ErrInjected)
	}
	f.synced = len(f.data)
	return nil
}

func (a *appendFile) Close() error {
	a.fs.mu.Lock()
	defer a.fs.mu.Unlock()
	a.closed = true
	return nil
}

// trigger advances every armed fault matching p and returns the first
// one whose countdown hit zero, consuming one of its failure repeats.
func trigger(faults *[]*fault, p string) *fault {
	var fired *fault
	kept := (*faults)[:0]
	for _, ft := range *faults {
		if !strings.Contains(p, ft.substr) {
			kept = append(kept, ft)
			continue
		}
		if fired == nil {
			ft.nth--
			if ft.nth <= 0 {
				fired = ft
				ft.times--
				ft.nth = 1 // stay armed for the next matching op
				if ft.times <= 0 {
					continue // exhausted: drop it
				}
			}
		}
		kept = append(kept, ft)
	}
	*faults = kept
	return fired
}

// --- fault scripting ---

// FailWrites arms a write fault: among future writes to paths
// containing substr, the nth (1-based) and the times-1 after it fail
// with ErrInjected after landing partial bytes each. times <= 1 means a
// single transient failure; a large times models a permanently broken
// disk.
func (fs *FS) FailWrites(substr string, nth, times, partial int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if nth < 1 {
		nth = 1
	}
	if times < 1 {
		times = 1
	}
	fs.writeFault = append(fs.writeFault, &fault{substr: substr, nth: nth, times: times, partial: partial})
}

// FailTruncates arms a truncate fault analogous to FailWrites (the
// failing truncate leaves the file untouched). It is how tests break
// the journal's repair path itself.
func (fs *FS) FailTruncates(substr string, nth, times int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if nth < 1 {
		nth = 1
	}
	if times < 1 {
		times = 1
	}
	fs.truncFault = append(fs.truncFault, &fault{substr: substr, nth: nth, times: times})
}

// FailSyncs arms a sync fault analogous to FailWrites.
func (fs *FS) FailSyncs(substr string, nth, times int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if nth < 1 {
		nth = 1
	}
	if times < 1 {
		times = 1
	}
	fs.syncFault = append(fs.syncFault, &fault{substr: substr, nth: nth, times: times})
}

// ClearFaults disarms every scripted fault.
func (fs *FS) ClearFaults() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeFault, fs.syncFault, fs.truncFault = nil, nil, nil
}

// --- crash simulation ---

// Crash simulates a power cut, returning the disk image it leaves
// behind: a fresh FS in which every file is truncated to its synced
// prefix. The receiver stays usable, so a still-running server being
// "killed" keeps writing to it without affecting the image a restart
// boots from.
func (fs *FS) Crash() *FS { return fs.CrashKeep(0) }

// CrashKeep is Crash, except each file keeps up to extra unsynced bytes
// — the deterministic way to manufacture a torn trailing write.
func (fs *FS) CrashKeep(extra int) *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	post := New()
	for p, f := range fs.files {
		keep := min(f.synced+extra, len(f.data))
		post.files[p] = &file{data: append([]byte(nil), f.data[:keep]...), synced: keep}
	}
	for d := range fs.dirs {
		post.dirs[d] = true
	}
	return post
}

// --- inspection and tampering ---

// Bytes returns a copy of the file's current content (nil if missing).
func (fs *FS) Bytes(p string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[path.Clean(p)]
	if f == nil {
		return nil
	}
	return append([]byte(nil), f.data...)
}

// Corrupt overwrites the file's bytes at off in place (bit rot, or a
// tampered journal); offsets beyond EOF are ignored.
func (fs *FS) Corrupt(p string, off int64, b []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[path.Clean(p)]
	if f == nil {
		return
	}
	for i, c := range b {
		if at := off + int64(i); at >= 0 && at < int64(len(f.data)) {
			f.data[at] = c
		}
	}
}

// Paths lists every existing file, sorted, for layout assertions.
func (fs *FS) Paths() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Counts reports the attempted write and sync operations so far.
func (fs *FS) Counts() (writes, syncs int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes, fs.syncs
}
