package service

import (
	"encoding/json"
	"testing"

	"plurality/internal/mc"
)

// FuzzSpecJSON feeds arbitrary request bodies through the exact
// admission path the server uses (decode → Normalize → Validate) and
// checks the validation contract: whatever JSON arrives, validation
// never panics, and any spec it accepts can be compiled to an mc.Job —
// and, for small populations, executed — without panicking. This is the
// property that keeps a hostile request from crashing the shared worker
// pool.
func FuzzSpecJSON(f *testing.F) {
	f.Add([]byte(`{"n": 100000, "k": 8, "seed": 1, "replicates": 5}`))
	f.Add([]byte(`{"rule": "median", "engine": "sampled", "n": 1000, "k": 4, "bias": "17"}`))
	f.Add([]byte(`{"rule": "hplurality:3", "n": 500, "k": 3, "max_rounds": 50}`))
	f.Add([]byte(`{"engine": "graph", "graph": "torus", "n": 100, "k": 2}`))
	f.Add([]byte(`{"engine": "graph", "graph": "regular:4", "n": 64, "k": 4}`))
	f.Add([]byte(`{"engine": "graph", "graph": "gnp:0.5", "n": 32, "k": 2}`))
	f.Add([]byte(`{"rule": "undecided", "n": 1000, "k": 4}`))
	f.Add([]byte(`{"rule": "2choices-keepown", "n": 100, "k": 2}`))
	f.Add([]byte(`{"n": -1, "k": 0, "bias": "zillions"}`))
	f.Add([]byte(`{"engine": "graph", "graph": "regular:-0", "n": 9, "k": 2, "bias": "9"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		spec.Normalize()
		if err := spec.Validate(); err != nil {
			return
		}
		// An accepted spec must compile…
		job := spec.MCJob()
		if job.Name == "" || job.Replicates != spec.Replicates {
			t.Fatalf("accepted spec compiled to a malformed job: %+v", job)
		}
		if spec.Cost() < 0 {
			t.Fatalf("accepted spec has negative cost %d", spec.Cost())
		}
		// …and, when the population is small enough to afford it, one
		// clipped replicate must execute without panicking (this drives the
		// engine and graph constructors with fuzzer-chosen dimensions).
		if spec.N > 512 {
			return
		}
		clipped := spec
		clipped.Replicates = 1
		clipped.MaxRounds = 2
		if err := clipped.Validate(); err != nil {
			t.Fatalf("clipping a valid spec invalidated it: %v", err)
		}
		rec := clipped.MCJob().New(mc.RepSeeds(clipped.Seed, 1)[0])()
		if rec.Rounds < 0 || rec.Rounds > 2 {
			t.Fatalf("clipped replicate reported %d rounds", rec.Rounds)
		}
	})
}
