package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"plurality/internal/mc"
)

// FuzzSpecJSON feeds arbitrary request bodies through the exact
// admission path the server uses (decode → Normalize → Validate) and
// checks the validation contract: whatever JSON arrives, validation
// never panics, and any spec it accepts can be compiled to an mc.Job —
// and, for small populations, executed — without panicking. This is the
// property that keeps a hostile request from crashing the shared worker
// pool.
func FuzzSpecJSON(f *testing.F) {
	f.Add([]byte(`{"n": 100000, "k": 8, "seed": 1, "replicates": 5}`))
	f.Add([]byte(`{"rule": "median", "engine": "sampled", "n": 1000, "k": 4, "bias": "17"}`))
	f.Add([]byte(`{"rule": "hplurality:3", "n": 500, "k": 3, "max_rounds": 50}`))
	f.Add([]byte(`{"engine": "graph", "graph": "torus", "n": 100, "k": 2}`))
	f.Add([]byte(`{"engine": "graph", "graph": "regular:4", "n": 64, "k": 4}`))
	f.Add([]byte(`{"engine": "graph", "graph": "gnp:0.5", "n": 32, "k": 2}`))
	f.Add([]byte(`{"rule": "undecided", "n": 1000, "k": 4}`))
	f.Add([]byte(`{"rule": "2choices-keepown", "n": 100, "k": 2}`))
	f.Add([]byte(`{"n": -1, "k": 0, "bias": "zillions"}`))
	f.Add([]byte(`{"engine": "graph", "graph": "regular:-0", "n": 9, "k": 2, "bias": "9"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		spec.Normalize()
		if err := spec.Validate(); err != nil {
			return
		}
		// An accepted spec must compile…
		job := spec.MCJob()
		if job.Name == "" || job.Replicates != spec.Replicates {
			t.Fatalf("accepted spec compiled to a malformed job: %+v", job)
		}
		if spec.Cost() < 0 {
			t.Fatalf("accepted spec has negative cost %d", spec.Cost())
		}
		// …and, when the population is small enough to afford it, one
		// clipped replicate must execute without panicking (this drives the
		// engine and graph constructors with fuzzer-chosen dimensions).
		if spec.N > 512 {
			return
		}
		clipped := spec
		clipped.Replicates = 1
		clipped.MaxRounds = 2
		if err := clipped.Validate(); err != nil {
			t.Fatalf("clipping a valid spec invalidated it: %v", err)
		}
		rec := clipped.MCJob().New(mc.RepSeeds(clipped.Seed, 1)[0])()
		if rec.Rounds < 0 || rec.Rounds > 2 {
			t.Fatalf("clipped replicate reported %d rounds", rec.Rounds)
		}
	})
}

// memFS is the minimal in-memory FS the fuzz target runs against. The
// real-filesystem behavior is covered by the journal unit tests; the
// fuzzer avoids the disk so an exec costs microseconds instead of
// fsync-bound milliseconds (the coverage-minimization phase re-runs the
// body thousands of times per interesting input, which makes real
// fsyncs prohibitive).
type memFS struct{ files map[string][]byte }

func (m *memFS) MkdirAll(string) error { return nil }
func (m *memFS) OpenAppend(p string) (File, error) {
	if _, ok := m.files[p]; !ok {
		m.files[p] = []byte{}
	}
	return &memFile{fs: m, path: p}, nil
}
func (m *memFS) ReadFile(p string) ([]byte, error) {
	b, ok := m.files[p]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: p, Err: os.ErrNotExist}
	}
	return append([]byte(nil), b...), nil
}
func (m *memFS) Truncate(p string, size int64) error {
	b, ok := m.files[p]
	if !ok {
		return &os.PathError{Op: "truncate", Path: p, Err: os.ErrNotExist}
	}
	if size < int64(len(b)) {
		m.files[p] = b[:size]
	}
	return nil
}
func (m *memFS) Remove(p string) error {
	if _, ok := m.files[p]; !ok {
		return &os.PathError{Op: "remove", Path: p, Err: os.ErrNotExist}
	}
	delete(m.files, p)
	return nil
}

type memFile struct {
	fs   *memFS
	path string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.files[f.path] = append(f.fs.files[f.path], p...)
	return len(p), nil
}
func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

// FuzzJournalReplay throws arbitrary bytes at the crash-recovery
// reader: whatever is on disk as the meta journal and a job's records
// file, openJournal must neither panic nor error (every corruption
// shape degrades to truncation or skipping), every record it trusts
// must carry the job's derived seed, and recovery must be idempotent —
// a second open of the repaired directory finds nothing left to cut.
func FuzzJournalReplay(f *testing.F) {
	// Seed the corpus with a realistic journal produced by the real
	// writer: one finished job with records, one still queued.
	seedDir := f.TempDir()
	spec := smallSpec()
	spec.Normalize()
	jr, _, err := openJournal(OSFS(), seedDir, 4, testRetry)
	if err != nil {
		f.Fatal(err)
	}
	if err := jr.submit("j1", spec); err != nil {
		f.Fatal(err)
	}
	for _, rec := range specRecords(spec, 3) {
		if err := jr.appendRecord("j1", rec); err != nil {
			f.Fatal(err)
		}
	}
	if err := jr.jobTerminal("j1", StateDone, ""); err != nil {
		f.Fatal(err)
	}
	if err := jr.submit("j2", spec); err != nil {
		f.Fatal(err)
	}
	jr.close(true)
	meta, err := os.ReadFile(filepath.Join(seedDir, "journal.jsonl"))
	if err != nil {
		f.Fatal(err)
	}
	recs, err := os.ReadFile(filepath.Join(seedDir, "records", "j1.jsonl"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(meta, recs)
	f.Add(meta[:len(meta)-9], recs[:len(recs)-5]) // torn tails
	f.Add([]byte(`{"type":"submit","id":"j1"}`+"\n"), []byte("garbage\n"))
	f.Add([]byte("\x00\xff\n{}\n"), []byte{})

	f.Fuzz(func(t *testing.T, meta, recs []byte) {
		const dir = "data"
		mfs := &memFS{files: map[string][]byte{
			filepath.Join(dir, "journal.jsonl"):       append([]byte(nil), meta...),
			filepath.Join(dir, "records", "j1.jsonl"): append([]byte(nil), recs...),
		}}
		jr1, rs1, err := openJournal(mfs, dir, 4, testRetry)
		if err != nil {
			t.Fatalf("recovery errored on corrupt input: %v", err)
		}
		jr1.close(false)
		for _, rj := range rs1.jobs {
			seeds := mc.RepSeeds(rj.spec.Seed, rj.spec.Replicates)
			for i, rec := range rj.records {
				if rec.Rep != i || rec.Seed != seeds[i] || rec.Job != rj.spec.Name() {
					t.Fatalf("trusted record %d of %s fails validation: %+v", i, rj.id, rec)
				}
			}
		}
		// Second open: the repaired directory replays identically with
		// nothing further to truncate.
		jr2, rs2, err := openJournal(mfs, dir, 4, testRetry)
		if err != nil {
			t.Fatalf("reopen after recovery errored: %v", err)
		}
		jr2.close(false)
		if rs2.truncated != 0 {
			t.Fatalf("recovery not idempotent: second open truncated %d more bytes", rs2.truncated)
		}
		if len(rs2.jobs) != len(rs1.jobs) || rs2.clean != rs1.clean {
			t.Fatalf("second replay diverged: %d vs %d jobs, clean %v vs %v",
				len(rs2.jobs), len(rs1.jobs), rs2.clean, rs1.clean)
		}
		for i, rj := range rs2.jobs {
			if rj.id != rs1.jobs[i].id || rj.state != rs1.jobs[i].state || len(rj.records) != len(rs1.jobs[i].records) {
				t.Fatalf("job %d diverged across replays", i)
			}
		}
	})
}
