package service

// Golden tests pinning the JobInfo JSON surface — the payload served by
// every status endpoint and carried on SSE job events. One golden file
// per lifecycle state (plus the evicted tombstone), exercising every
// conditional field: Error only on failures/cancellations, Aggregate
// only on terminal states with records, Evicted only on tombstones.
// Regenerate with: go test ./internal/service -run TestJobInfoGolden -update

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"plurality/internal/mc"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSpec is a fixed, fully normalized spec so golden bytes are
// stable across spec-default changes (a default change then shows up as
// an explicit golden diff, not silent drift).
func goldenSpec() JobSpec {
	s := JobSpec{Rule: "3majority", Engine: "multinomial", N: 10_000, K: 4,
		Bias: "auto", Seed: 42, Replicates: 3, MaxRounds: 500}
	s.Normalize()
	return s
}

// goldenRecords are hand-fixed records (not simulator output) so the
// aggregate block is a pure function of these literals.
func goldenRecords(name string, seeds []uint64) []mc.Record {
	return []mc.Record{
		{Job: name, Rep: 0, Seed: seeds[0], Rounds: 7, Success: true},
		{Job: name, Rep: 1, Seed: seeds[1], Rounds: 9, Success: true},
		{Job: name, Rep: 2, Seed: seeds[2], Rounds: 11, Success: false},
	}
}

func TestJobInfoGolden(t *testing.T) {
	spec := goldenSpec()
	seeds := mc.RepSeeds(spec.Seed, spec.Replicates)
	recs := goldenRecords(spec.Name(), seeds)
	build := map[string]func() *jobState{
		"queued": func() *jobState {
			return newJobState("j1", spec, func() {}, nil)
		},
		"running": func() *jobState {
			j := newJobState("j2", spec, func() {}, nil)
			j.setRunning()
			_ = j.appendRecord(recs[0])
			return j
		},
		"done": func() *jobState {
			j := newJobState("j3", spec, func() {}, nil)
			j.setRunning()
			for _, rec := range recs {
				_ = j.appendRecord(rec)
			}
			j.finish(nil)
			return j
		},
		"failed": func() *jobState {
			j := newJobState("j4", spec, func() {}, nil)
			j.setRunning()
			_ = j.appendRecord(recs[0])
			j.finish(errors.New("service: journal records of j4: disk gone"))
			return j
		},
		"cancelled": func() *jobState {
			j := newJobState("j5", spec, func() {}, nil)
			j.setRunning()
			_ = j.appendRecord(recs[0])
			_ = j.appendRecord(recs[1])
			j.finish(context.Canceled)
			return j
		},
		"evicted": func() *jobState {
			j := newJobState("j6", spec, func() {}, nil)
			j.setRunning()
			for _, rec := range recs {
				_ = j.appendRecord(rec)
			}
			j.finish(nil)
			j.evict()
			return j
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			info := mk().info()
			got, err := json.MarshalIndent(info, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "jobinfo", name+".golden.json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("JobInfo JSON for %s drifted from golden:\n got: %s\nwant: %s\n(run with -update if intended)", name, got, want)
			}
		})
	}
}

// TestJobInfoOmitemptyContract asserts the conditional fields stay
// conditional: a queued job's JSON must not mention error, aggregate or
// evicted at all, and a round-trip through the wire type is lossless.
func TestJobInfoOmitemptyContract(t *testing.T) {
	j := newJobState("j1", goldenSpec(), func() {}, nil)
	raw, err := json.Marshal(j.info())
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{`"error"`, `"aggregate"`, `"evicted"`} {
		if bytes.Contains(raw, []byte(absent)) {
			t.Errorf("queued JobInfo JSON %s carries %s — omitempty drifted", raw, absent)
		}
	}
	var back JobInfo
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "j1" || back.State != StateQueued || back.Spec != goldenSpec() {
		t.Errorf("JobInfo did not survive a JSON round-trip: %+v", back)
	}
}
