package service

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"plurality/internal/mc"
)

// testRetry is a tight retry budget so failing tests don't sleep long.
var testRetry = retryPolicy{attempts: 3, backoff: time.Millisecond}

func openTestJournal(t *testing.T, dir string) (*journal, *replayState) {
	t.Helper()
	jr, rs, err := openJournal(OSFS(), dir, 4, testRetry)
	if err != nil {
		t.Fatal(err)
	}
	return jr, rs
}

// specRecords fabricates the records a real run of spec would produce,
// with the correct name and per-replicate seeds.
func specRecords(spec JobSpec, n int) []mc.Record {
	seeds := mc.RepSeeds(spec.Seed, spec.Replicates)
	recs := make([]mc.Record, n)
	for i := range recs {
		recs[i] = mc.Record{Job: spec.Name(), Rep: i, Seed: seeds[i], Rounds: 5 + i, Success: true}
	}
	return recs
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()
	spec.Normalize()

	jr, rs := openTestJournal(t, dir)
	if len(rs.jobs) != 0 || rs.clean {
		t.Fatalf("fresh dir replayed %d jobs, clean=%v", len(rs.jobs), rs.clean)
	}
	if err := jr.submit("j1", spec); err != nil {
		t.Fatal(err)
	}
	if err := jr.state("j1", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	recs := specRecords(spec, 3)
	for _, rec := range recs {
		if err := jr.appendRecord("j1", rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.jobTerminal("j1", StateDone, ""); err != nil {
		t.Fatal(err)
	}
	jr.close(false)

	jr2, rs2 := openTestJournal(t, dir)
	defer jr2.close(false)
	if len(rs2.jobs) != 1 || rs2.clean || rs2.dropped != 0 || rs2.truncated != 0 {
		t.Fatalf("replay: %d jobs clean=%v dropped=%d truncated=%d", len(rs2.jobs), rs2.clean, rs2.dropped, rs2.truncated)
	}
	rj := rs2.jobs[0]
	if rj.id != "j1" || rj.state != StateDone || len(rj.records) != 3 {
		t.Fatalf("replayed job: id=%s state=%s records=%d", rj.id, rj.state, len(rj.records))
	}
	for i, rec := range rj.records {
		if rec != recs[i] {
			t.Fatalf("record %d replayed as %+v", i, rec)
		}
	}
	if rs2.next != 1 {
		t.Fatalf("next counter %d, want 1", rs2.next)
	}
}

func TestJournalCleanShutdownMarker(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()
	spec.Normalize()

	jr, _ := openTestJournal(t, dir)
	if err := jr.submit("j1", spec); err != nil {
		t.Fatal(err)
	}
	jr.close(true)

	_, rs := openTestJournal(t, dir)
	if !rs.clean {
		t.Fatal("clean close not reflected by replay")
	}
	// Any activity after the marker makes the journal dirty again: the
	// marker only certifies the *last* shutdown.
	jr2, _ := openTestJournal(t, dir)
	if err := jr2.state("j1", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	jr2.close(false)
	_, rs = openTestJournal(t, dir)
	if rs.clean {
		t.Fatal("journal still reads clean after post-marker activity")
	}
}

func TestJournalReplayTruncatesTornMetaTail(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()
	spec.Normalize()
	jr, _ := openTestJournal(t, dir)
	if err := jr.submit("j1", spec); err != nil {
		t.Fatal(err)
	}
	jr.close(false)

	metaPath := filepath.Join(dir, "journal.jsonl")
	intact, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, intact...), []byte(`{"type":"state","id":"j1","sta`)...)
	if err := os.WriteFile(metaPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	jr2, rs := openTestJournal(t, dir)
	defer jr2.close(false)
	if len(rs.jobs) != 1 || rs.jobs[0].state != StateQueued {
		t.Fatalf("torn tail replay: %d jobs, state %v", len(rs.jobs), rs.jobs)
	}
	if rs.truncated == 0 {
		t.Fatal("torn bytes not counted")
	}
	onDisk, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != string(intact) {
		t.Fatalf("torn tail not truncated on disk: %q", onDisk)
	}
}

func TestJournalReplaySkipsBogusEntries(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()
	spec.Normalize()
	jr, _ := openTestJournal(t, dir)
	if err := jr.submit("j2", spec); err != nil {
		t.Fatal(err)
	}
	jr.close(false)

	metaPath := filepath.Join(dir, "journal.jsonl")
	bogus := []string{
		`{"type":"frobnicate"}`,                                    // unknown type
		`{"type":"state","id":"j99","state":"done"}`,               // state for unknown job
		`{"type":"state","id":"j2","state":"exploded"}`,            // unknown state value
		`{"type":"submit","id":"../../etc/passwd","spec":{"n":1}}`, // malicious id
		`{"type":"submit","id":"j3","spec":{"n":-5,"k":1}}`,        // invalid spec
		`{"type":"submit","id":"j2","spec":{"n":1000,"k":2}}`,      // duplicate id
		`{"type":"delete","id":"j77"}`,                             // delete of unknown job
	}
	f, err := os.OpenFile(metaPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bogus {
		if _, err := f.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	jr2, rs := openTestJournal(t, dir)
	defer jr2.close(false)
	if len(rs.jobs) != 1 || rs.jobs[0].id != "j2" {
		t.Fatalf("bogus entries changed the replay set: %+v", rs.jobs)
	}
	if rs.dropped != len(bogus) {
		t.Fatalf("dropped %d entries, want %d", rs.dropped, len(bogus))
	}
	if rs.next != 2 {
		t.Fatalf("next counter %d, want 2 (malicious ids must not advance it)", rs.next)
	}
}

func TestJournalRecordsPrefixValidation(t *testing.T) {
	spec := smallSpec()
	spec.Normalize()
	good := specRecords(spec, 4)

	cases := []struct {
		name   string
		mutate func(recs []mc.Record) []mc.Record
		keep   int
	}{
		{"wrong seed", func(r []mc.Record) []mc.Record { r[2].Seed++; return r }, 2},
		{"wrong name", func(r []mc.Record) []mc.Record { r[1].Job = "someone-else"; return r }, 1},
		{"rep gap", func(r []mc.Record) []mc.Record { r[3].Rep = 7; return r }, 3},
		{"foreign prefix", func(r []mc.Record) []mc.Record { r[0].Rep = 1; return r }, 0},
		{"all good", func(r []mc.Record) []mc.Record { return r }, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			jr, _ := openTestJournal(t, dir)
			if err := jr.submit("j1", spec); err != nil {
				t.Fatal(err)
			}
			recs := tc.mutate(append([]mc.Record(nil), good...))
			for _, rec := range recs {
				if err := jr.appendRecord("j1", rec); err != nil {
					t.Fatal(err)
				}
			}
			jr.close(false)

			jr2, rs := openTestJournal(t, dir)
			defer jr2.close(false)
			if len(rs.jobs) != 1 || len(rs.jobs[0].records) != tc.keep {
				t.Fatalf("kept %d records, want %d", len(rs.jobs[0].records), tc.keep)
			}
			// The file itself was cut to the trusted prefix, so appends
			// resume on a clean boundary.
			data, err := os.ReadFile(filepath.Join(dir, "records", "j1.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			kept, ends := mc.ScanRecords(data)
			if len(kept) != tc.keep || mc.ValidPrefix(ends) != int64(len(data)) {
				t.Fatalf("on-disk records: %d entries, %d of %d bytes valid", len(kept), mc.ValidPrefix(ends), len(data))
			}
		})
	}
}

func TestJournalDeleteReplay(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()
	spec.Normalize()
	jr, _ := openTestJournal(t, dir)
	if err := jr.submit("j1", spec); err != nil {
		t.Fatal(err)
	}
	for _, rec := range specRecords(spec, 2) {
		if err := jr.appendRecord("j1", rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.jobTerminal("j1", StateDone, ""); err != nil {
		t.Fatal(err)
	}
	if err := jr.deleteJob("j1"); err != nil {
		t.Fatal(err)
	}
	jr.close(false)

	if _, err := os.Stat(filepath.Join(dir, "records", "j1.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("records file survived delete: %v", err)
	}
	jr2, rs := openTestJournal(t, dir)
	defer jr2.close(false)
	if len(rs.jobs) != 0 {
		t.Fatalf("deleted job replayed: %+v", rs.jobs)
	}
	if rs.next != 1 {
		t.Fatalf("next counter %d, want 1 (deleted ids must never be reused)", rs.next)
	}
}

func TestJournalAppendAfterCloseErrors(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()
	spec.Normalize()
	jr, _ := openTestJournal(t, dir)
	jr.close(false)
	if err := jr.submit("j1", spec); !errors.Is(err, errJournalClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := jr.appendRecord("j1", mc.Record{}); !errors.Is(err, errJournalClosed) {
		t.Fatalf("record append after close: %v", err)
	}
}

func TestRetryPolicy(t *testing.T) {
	boom := errors.New("boom")
	fails, repairs := 2, 0
	err := testRetry.do(func() error {
		if fails > 0 {
			fails--
			return boom
		}
		return nil
	}, func() { repairs++ })
	if err != nil || repairs != 2 {
		t.Fatalf("transient failure: err=%v repairs=%d", err, repairs)
	}

	calls := 0
	err = testRetry.do(func() error { calls++; return boom }, nil)
	if !errors.Is(err, boom) || calls != testRetry.attempts {
		t.Fatalf("budget spent: err=%v calls=%d", err, calls)
	}
}
